//===- ir/IRParser.cpp ----------------------------------------------------===//

#include "ir/IRParser.h"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

using namespace privateer;
using namespace privateer::ir;

namespace {

/// A fixup for a value reference that may be defined later in the
/// function (phi operands, mutually recursive uses).
struct ValueFixup {
  Instruction *Inst;
  unsigned OperandIndex;
  std::string Name;
  unsigned Line;
};

class Parser {
public:
  Parser(const std::string &Text, std::string &Error)
      : Error(Error) {
    std::istringstream In(Text);
    std::string L;
    while (std::getline(In, L))
      Lines.push_back(L);
  }

  std::unique_ptr<Module> run() {
    auto M = std::make_unique<Module>();
    Mod = M.get();
    // Pass 0: declare all functions so calls can be forward.
    for (unsigned I = 0; I < Lines.size(); ++I) {
      std::string L = stripped(Lines[I]);
      if (L.rfind("define ", 0) == 0)
        if (!predeclareFunction(L, I + 1))
          return nullptr;
    }
    // Pass 1: full parse.
    for (Pos = 0; Pos < Lines.size();) {
      std::string L = stripped(Lines[Pos]);
      if (L.empty()) {
        ++Pos;
        continue;
      }
      if (L.rfind("global ", 0) == 0) {
        if (!parseGlobal(L))
          return nullptr;
        ++Pos;
        continue;
      }
      if (L.rfind("define ", 0) == 0) {
        if (!parseFunction())
          return nullptr;
        continue;
      }
      return fail("expected 'global' or 'define'");
    }
    return M;
  }

private:
  std::unique_ptr<Module> fail(const std::string &Msg) {
    Error = "line " + std::to_string(Pos + 1) + ": " + Msg;
    return nullptr;
  }
  bool failB(const std::string &Msg) {
    Error = "line " + std::to_string(Pos + 1) + ": " + Msg;
    return false;
  }

  static std::string stripped(const std::string &L) {
    size_t Begin = L.find_first_not_of(" \t");
    if (Begin == std::string::npos)
      return "";
    size_t Semi = L.find(';');
    // Don't treat ';' inside a string literal as a comment.
    size_t Quote = L.find('"');
    if (Semi != std::string::npos && (Quote == std::string::npos ||
                                      Semi < Quote)) {
      size_t End = L.find_last_not_of(" \t", Semi == 0 ? 0 : Semi - 1);
      if (Semi == Begin)
        return "";
      return L.substr(Begin, End - Begin + 1);
    }
    size_t End = L.find_last_not_of(" \t");
    return L.substr(Begin, End - Begin + 1);
  }

  static std::optional<HeapKind> heapFromToken(const std::string &T) {
    for (unsigned I = 0; I < kNumHeapKinds; ++I) {
      HeapKind K = static_cast<HeapKind>(I);
      if (T == heapKindName(K))
        return K;
    }
    return std::nullopt;
  }

  static std::optional<Type> typeFromToken(const std::string &T) {
    if (T == "void")
      return Type::Void;
    if (T == "i64")
      return Type::I64;
    if (T == "f64")
      return Type::F64;
    if (T == "ptr")
      return Type::Ptr;
    return std::nullopt;
  }

  bool parseGlobal(const std::string &L) {
    std::istringstream S(L);
    std::string Kw, Name, Heap;
    uint64_t Size = 0;
    S >> Kw >> Name >> Size;
    if (Name.empty() || Name[0] != '@' || Size == 0)
      return failB("malformed global (want: global @name <bytes>)");
    GlobalVariable *G = Mod->createGlobal(Name.substr(1), Size);
    if (S >> Heap) {
      auto K = heapFromToken(Heap);
      if (!K)
        return failB("unknown heap '" + Heap + "'");
      G->assignHeap(*K);
    }
    return true;
  }

  bool predeclareFunction(const std::string &L, unsigned LineNo) {
    // define <type> @name(...)
    std::istringstream S(L);
    std::string Kw, TyTok;
    S >> Kw >> TyTok;
    auto Ty = typeFromToken(TyTok);
    if (!Ty) {
      Error = "line " + std::to_string(LineNo) + ": bad return type";
      return false;
    }
    size_t At = L.find('@');
    size_t Paren = L.find('(', At);
    if (At == std::string::npos || Paren == std::string::npos) {
      Error = "line " + std::to_string(LineNo) + ": malformed define";
      return false;
    }
    std::string Name = L.substr(At + 1, Paren - At - 1);
    Mod->createFunction(Name, *Ty);
    return true;
  }

  bool parseFunction() {
    std::string L = stripped(Lines[Pos]);
    size_t At = L.find('@');
    size_t Open = L.find('(', At);
    size_t Close = L.find(')', Open);
    if (Close == std::string::npos || L.find('{', Close) == std::string::npos)
      return failB("malformed function header");
    Func = Mod->functionByName(L.substr(At + 1, Open - At - 1));

    // Arguments: "<type> %name" comma-separated.
    std::string ArgText = L.substr(Open + 1, Close - Open - 1);
    std::istringstream AS(ArgText);
    std::string Piece;
    while (std::getline(AS, Piece, ',')) {
      std::istringstream PS(Piece);
      std::string TyTok, NameTok;
      PS >> TyTok >> NameTok;
      if (TyTok.empty())
        continue;
      auto Ty = typeFromToken(TyTok);
      if (!Ty || NameTok.empty() || NameTok[0] != '%')
        return failB("malformed argument '" + Piece + "'");
      Argument *A = Func->addArgument(*Ty, NameTok.substr(1));
      Values[A->name()] = A;
    }
    ++Pos;

    // Pre-scan labels so branches can be forward.
    for (unsigned Scan = Pos; Scan < Lines.size(); ++Scan) {
      std::string SL = stripped(Lines[Scan]);
      if (SL == "}")
        break;
      if (!SL.empty() && SL.back() == ':' &&
          SL.find(' ') == std::string::npos)
        Func->createBlock(SL.substr(0, SL.size() - 1));
    }

    CurBlock = nullptr;
    Fixups.clear();
    for (; Pos < Lines.size(); ++Pos) {
      std::string IL = stripped(Lines[Pos]);
      if (IL.empty())
        continue;
      if (IL == "}") {
        ++Pos;
        if (!resolveFixups())
          return false;
        // Keep argument/instruction names from leaking across functions.
        Values.clear();
        return true;
      }
      if (IL.back() == ':' && IL.find(' ') == std::string::npos) {
        CurBlock = Func->blockByName(IL.substr(0, IL.size() - 1));
        continue;
      }
      if (!CurBlock)
        return failB("instruction before first block label");
      if (!parseInstruction(IL))
        return false;
    }
    return failB("missing '}'");
  }

  bool resolveFixups() {
    for (const ValueFixup &F : Fixups) {
      auto It = Values.find(F.Name);
      if (It == Values.end()) {
        Error = "line " + std::to_string(F.Line) + ": unknown value %" +
                F.Name;
        return false;
      }
      F.Inst->setOperand(F.OperandIndex, It->second);
    }
    Fixups.clear();
    return true;
  }

  /// Parses one value token; for not-yet-defined %names, registers a
  /// fixup against \p I's operand slot about to be added.
  Value *valueToken(const std::string &T, Instruction *I) {
    if (T.empty())
      return nullptr;
    if (T[0] == '%') {
      std::string N = T.substr(1);
      auto It = Values.find(N);
      if (It != Values.end())
        return It->second;
      Fixups.push_back(ValueFixup{I, I->numOperands(), N, Pos + 1});
      return Mod->constInt(0); // Placeholder patched by resolveFixups.
    }
    if (T[0] == '@') {
      if (GlobalVariable *G = Mod->globalByName(T.substr(1)))
        return G;
      return nullptr;
    }
    if (T.find('.') != std::string::npos ||
        T.find('e') != std::string::npos ||
        T.find("inf") != std::string::npos)
      return Mod->constFloat(std::stod(T));
    try {
      return Mod->constInt(std::stoll(T));
    } catch (...) {
      return nullptr;
    }
  }

  /// Splits "a, b, c" at top-level commas (no nesting in this IR except
  /// phi brackets, handled by the phi parser directly).
  static std::vector<std::string> splitArgs(const std::string &S) {
    std::vector<std::string> Out;
    std::string Cur;
    int Depth = 0;
    bool InStr = false;
    for (char C : S) {
      if (C == '"' )
        InStr = !InStr;
      if (!InStr) {
        if (C == '[' || C == '(')
          ++Depth;
        if (C == ']' || C == ')')
          --Depth;
        if (C == ',' && Depth == 0) {
          Out.push_back(trim(Cur));
          Cur.clear();
          continue;
        }
      }
      Cur += C;
    }
    if (!trim(Cur).empty())
      Out.push_back(trim(Cur));
    return Out;
  }

  static std::string trim(const std::string &S) {
    size_t B = S.find_first_not_of(" \t");
    if (B == std::string::npos)
      return "";
    size_t E = S.find_last_not_of(" \t");
    return S.substr(B, E - B + 1);
  }

  bool addValueOperand(Instruction *I, const std::string &Tok) {
    Value *V = valueToken(Tok, I);
    if (!V)
      return failB("bad value '" + Tok + "'");
    I->addOperand(V);
    return true;
  }

  bool parseInstruction(const std::string &L) {
    std::string Rest = L;
    std::string ResultName;
    size_t Eq = L.find(" = ");
    size_t Quote = L.find('"');
    if (Eq != std::string::npos &&
        (Quote == std::string::npos || Eq < Quote) && L[0] == '%') {
      ResultName = trim(L.substr(1, Eq - 1));
      Rest = trim(L.substr(Eq + 3));
    }
    std::istringstream S(Rest);
    std::string Mn;
    S >> Mn;
    std::string Tail = trim(Rest.substr(Mn.size()));

    auto Create = [&](Opcode Op, Type Ty) {
      auto I = std::make_unique<Instruction>(Op, Ty, ResultName);
      Instruction *P = CurBlock->append(std::move(I));
      if (!ResultName.empty())
        Values[ResultName] = P;
      return P;
    };

    static const std::map<std::string, Opcode> BinOps = {
        {"add", Opcode::Add},   {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},   {"sdiv", Opcode::SDiv},
        {"srem", Opcode::SRem}, {"and", Opcode::And},
        {"or", Opcode::Or},     {"xor", Opcode::Xor},
        {"shl", Opcode::Shl},   {"shr", Opcode::Shr},
        {"fadd", Opcode::FAdd}, {"fsub", Opcode::FSub},
        {"fmul", Opcode::FMul}, {"fdiv", Opcode::FDiv}};

    if (auto It = BinOps.find(Mn); It != BinOps.end()) {
      auto Args = splitArgs(Tail);
      if (Args.size() != 2)
        return failB(Mn + " wants 2 operands");
      Type Ty = (Mn[0] == 'f') ? Type::F64 : Type::I64;
      Instruction *I = Create(It->second, Ty);
      return addValueOperand(I, Args[0]) && addValueOperand(I, Args[1]);
    }

    if (Mn == "alloca") {
      Instruction *I = Create(Opcode::Alloca, Type::Ptr);
      I->setAccessBytes(std::stoull(Tail));
      return true;
    }
    if (Mn == "malloc") {
      auto Args = splitArgs(Tail);
      if (Args.empty() || Args.size() > 2)
        return failB("malloc wants 1 operand (+ optional heap)");
      Instruction *I = Create(Opcode::Malloc, Type::Ptr);
      if (!addValueOperand(I, Args[0]))
        return false;
      if (Args.size() == 2) {
        auto K = heapFromToken(Args[1]);
        if (!K)
          return failB("unknown heap '" + Args[1] + "'");
        I->setAllocHeap(*K);
      }
      return true;
    }
    if (Mn == "free") {
      Instruction *I = Create(Opcode::Free, Type::Void);
      return addValueOperand(I, Tail);
    }
    if (Mn == "load") {
      auto Args = splitArgs(Tail);
      if (Args.size() != 3)
        return failB("load wants: load <type>, <ptr>, <bytes>");
      auto Ty = typeFromToken(Args[0]);
      if (!Ty)
        return failB("bad load type");
      Instruction *I = Create(Opcode::Load, *Ty);
      if (!addValueOperand(I, Args[1]))
        return false;
      I->setAccessBytes(std::stoull(Args[2]));
      return true;
    }
    if (Mn == "store") {
      auto Args = splitArgs(Tail);
      if (Args.size() != 3)
        return failB("store wants: store <val>, <ptr>, <bytes>");
      Instruction *I = Create(Opcode::Store, Type::Void);
      if (!addValueOperand(I, Args[0]) || !addValueOperand(I, Args[1]))
        return false;
      I->setAccessBytes(std::stoull(Args[2]));
      return true;
    }
    if (Mn == "gep") {
      auto Args = splitArgs(Tail);
      if (Args.size() != 2)
        return failB("gep wants 2 operands");
      Instruction *I = Create(Opcode::Gep, Type::Ptr);
      return addValueOperand(I, Args[0]) && addValueOperand(I, Args[1]);
    }
    if (Mn == "sitofp" || Mn == "fptosi") {
      Instruction *I = Create(Mn == "sitofp" ? Opcode::SiToFp
                                             : Opcode::FpToSi,
                              Mn == "sitofp" ? Type::F64 : Type::I64);
      return addValueOperand(I, Tail);
    }
    if (Mn == "icmp" || Mn == "fcmp") {
      auto Args = splitArgs(Tail);
      if (Args.size() != 3)
        return failB(Mn + " wants: <pred>, <a>, <b>");
      Instruction *I =
          Create(Mn == "icmp" ? Opcode::ICmp : Opcode::FCmp, Type::I64);
      static const std::map<std::string, CmpPred> Preds = {
          {"eq", CmpPred::Eq}, {"ne", CmpPred::Ne}, {"lt", CmpPred::Lt},
          {"le", CmpPred::Le}, {"gt", CmpPred::Gt}, {"ge", CmpPred::Ge}};
      auto P = Preds.find(Args[0]);
      if (P == Preds.end())
        return failB("bad predicate '" + Args[0] + "'");
      I->setCmpPred(P->second);
      return addValueOperand(I, Args[1]) && addValueOperand(I, Args[2]);
    }
    if (Mn == "br") {
      BasicBlock *T = Func->blockByName(Tail);
      if (!T)
        return failB("unknown block '" + Tail + "'");
      Create(Opcode::Br, Type::Void)->addBlockRef(T);
      return true;
    }
    if (Mn == "condbr") {
      auto Args = splitArgs(Tail);
      if (Args.size() != 3)
        return failB("condbr wants: <cond>, <then>, <else>");
      Instruction *I = Create(Opcode::CondBr, Type::Void);
      if (!addValueOperand(I, Args[0]))
        return false;
      BasicBlock *T = Func->blockByName(Args[1]);
      BasicBlock *F = Func->blockByName(Args[2]);
      if (!T || !F)
        return failB("unknown branch target");
      I->addBlockRef(T);
      I->addBlockRef(F);
      return true;
    }
    if (Mn == "ret") {
      Instruction *I = Create(Opcode::Ret, Type::Void);
      if (!Tail.empty())
        return addValueOperand(I, Tail);
      return true;
    }
    if (Mn == "call" || Tail.rfind("call", 0) == 0) {
      std::string CallText = Mn == "call" ? Tail : Tail;
      size_t At = CallText.find('@');
      size_t Open = CallText.find('(', At);
      size_t Close = CallText.rfind(')');
      if (At == std::string::npos || Open == std::string::npos ||
          Close == std::string::npos)
        return failB("malformed call");
      Function *Callee =
          Mod->functionByName(CallText.substr(At + 1, Open - At - 1));
      if (!Callee)
        return failB("unknown callee");
      Instruction *I = Create(Opcode::Call, Callee->returnType());
      I->setCallee(Callee);
      for (const std::string &A :
           splitArgs(CallText.substr(Open + 1, Close - Open - 1)))
        if (!addValueOperand(I, A))
          return false;
      return true;
    }
    if (Mn == "phi") {
      // phi [block: value], ...
      Type Ty = Type::I64; // Refined below from incoming constants? Keep
                           // i64 unless a float or pointer flows in.
      Instruction *I = Create(Opcode::Phi, Ty);
      for (const std::string &Piece : splitArgs(Tail)) {
        if (Piece.size() < 4 || Piece.front() != '[' || Piece.back() != ']')
          return failB("malformed phi arm '" + Piece + "'");
        std::string Inner = Piece.substr(1, Piece.size() - 2);
        size_t Colon = Inner.find(':');
        if (Colon == std::string::npos)
          return failB("malformed phi arm '" + Piece + "'");
        BasicBlock *B = Func->blockByName(trim(Inner.substr(0, Colon)));
        if (!B)
          return failB("unknown phi block");
        if (!addValueOperand(I, trim(Inner.substr(Colon + 1))))
          return false;
        I->addBlockRef(B);
      }
      return true;
    }
    if (Mn == "select") {
      auto Args = splitArgs(Tail);
      if (Args.size() != 3)
        return failB("select wants 3 operands");
      Instruction *I = Create(Opcode::Select, Type::I64);
      return addValueOperand(I, Args[0]) && addValueOperand(I, Args[1]) &&
             addValueOperand(I, Args[2]);
    }
    if (Mn == "print") {
      size_t Q1 = Tail.find('"');
      size_t Q2 = Tail.rfind('"');
      if (Q1 == std::string::npos || Q2 <= Q1)
        return failB("print wants a quoted format");
      Instruction *I = Create(Opcode::Print, Type::Void);
      I->setPrintFormat(unescape(Tail.substr(Q1 + 1, Q2 - Q1 - 1)));
      std::string After = trim(Tail.substr(Q2 + 1));
      if (!After.empty() && After[0] == ',')
        After = trim(After.substr(1));
      if (!After.empty())
        for (const std::string &A : splitArgs(After))
          if (!addValueOperand(I, A))
            return false;
      return true;
    }
    if (Mn == "checkheap") {
      auto Args = splitArgs(Tail);
      if (Args.size() != 2)
        return failB("checkheap wants: <ptr>, <heap>");
      auto K = heapFromToken(Args[1]);
      if (!K)
        return failB("unknown heap '" + Args[1] + "'");
      Instruction *I = Create(Opcode::CheckHeap, Type::Void);
      I->setExpectedHeap(*K);
      return addValueOperand(I, Args[0]);
    }
    if (Mn == "privread" || Mn == "privwrite") {
      auto Args = splitArgs(Tail);
      if (Args.size() != 2)
        return failB(Mn + " wants: <ptr>, <bytes>");
      Instruction *I = Create(Mn == "privread" ? Opcode::PrivateRead
                                               : Opcode::PrivateWrite,
                              Type::Void);
      if (!addValueOperand(I, Args[0]))
        return false;
      I->setAccessBytes(std::stoull(Args[1]));
      return true;
    }
    if (Mn == "postdep") {
      auto Args = splitArgs(Tail);
      if (Args.size() != 3)
        return failB("postdep wants: <iter>, <value>, <chan>");
      Instruction *I = Create(Opcode::PostDep, Type::Void);
      if (!addValueOperand(I, Args[0]) || !addValueOperand(I, Args[1]))
        return false;
      I->setAccessBytes(std::stoull(Args[2]));
      return true;
    }
    if (Mn == "waitdep") {
      auto Args = splitArgs(Tail);
      if (Args.size() != 2)
        return failB("waitdep wants: <iter>, <chan>");
      Instruction *I = Create(Opcode::WaitDep, Type::I64);
      if (!addValueOperand(I, Args[0]))
        return false;
      I->setAccessBytes(std::stoull(Args[1]));
      return true;
    }
    if (Mn == "comupdate") {
      auto Args = splitArgs(Tail);
      if (Args.size() != 4)
        return failB("comupdate wants: <op>, <value>, <ptr>, <bytes>");
      static const std::map<std::string, ComOp> ComOps = {
          {"add", ComOp::Add}, {"mul", ComOp::Mul}, {"and", ComOp::And},
          {"or", ComOp::Or},   {"xor", ComOp::Xor}, {"min", ComOp::Min},
          {"max", ComOp::Max}};
      auto O = ComOps.find(Args[0]);
      if (O == ComOps.end())
        return failB("unknown commutative op '" + Args[0] + "'");
      Instruction *I = Create(Opcode::ComUpdate, Type::Void);
      I->setComOp(O->second);
      if (!addValueOperand(I, Args[1]) || !addValueOperand(I, Args[2]))
        return false;
      I->setAccessBytes(std::stoull(Args[3]));
      return true;
    }
    if (Mn == "speculate_eq") {
      auto Args = splitArgs(Tail);
      if (Args.size() != 2)
        return failB("speculate_eq wants 2 operands");
      Instruction *I = Create(Opcode::SpeculateEq, Type::Void);
      return addValueOperand(I, Args[0]) && addValueOperand(I, Args[1]);
    }
    return failB("unknown mnemonic '" + Mn + "'");
  }

  static std::string unescape(const std::string &S) {
    std::string Out;
    for (size_t I = 0; I < S.size(); ++I) {
      if (S[I] == '\\' && I + 1 < S.size()) {
        ++I;
        if (S[I] == 'n')
          Out += '\n';
        else if (S[I] == 't')
          Out += '\t';
        else
          Out += S[I];
      } else {
        Out += S[I];
      }
    }
    return Out;
  }

  std::string &Error;
  std::vector<std::string> Lines;
  unsigned Pos = 0;
  Module *Mod = nullptr;
  Function *Func = nullptr;
  BasicBlock *CurBlock = nullptr;
  std::map<std::string, Value *> Values;
  std::vector<ValueFixup> Fixups;
};

} // namespace

std::unique_ptr<Module> ir::parseModule(const std::string &Text,
                                        std::string &Error) {
  Parser P(Text, Error);
  return P.run();
}
