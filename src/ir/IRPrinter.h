//===- ir/IRPrinter.h - Textual IR output -----------------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints modules in the textual form IRParser reads back (round-trip
/// tested).  Unnamed instruction results are auto-named %tN.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_IR_IRPRINTER_H
#define PRIVATEER_IR_IRPRINTER_H

#include "ir/IR.h"

#include <string>

namespace privateer {
namespace ir {

/// Renders \p M as parseable text.  Assigns fresh %tN names to unnamed
/// instruction results as a side effect (so printing is stable).
std::string printModule(Module &M);

std::string printFunction(Function &F);

} // namespace ir
} // namespace privateer

#endif // PRIVATEER_IR_IRPRINTER_H
