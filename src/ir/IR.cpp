//===- ir/IR.cpp ----------------------------------------------------------===//

#include "ir/IR.h"

#include "support/ErrorHandling.h"

using namespace privateer;
using namespace privateer::ir;

const char *ir::typeName(Type T) {
  switch (T) {
  case Type::Void:
    return "void";
  case Type::I64:
    return "i64";
  case Type::F64:
    return "f64";
  case Type::Ptr:
    return "ptr";
  }
  return "<bad-type>";
}

const char *ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Alloca:
    return "alloca";
  case Opcode::Malloc:
    return "malloc";
  case Opcode::Free:
    return "free";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Gep:
    return "gep";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::SDiv:
    return "sdiv";
  case Opcode::SRem:
    return "srem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::SiToFp:
    return "sitofp";
  case Opcode::FpToSi:
    return "fptosi";
  case Opcode::ICmp:
    return "icmp";
  case Opcode::FCmp:
    return "fcmp";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Ret:
    return "ret";
  case Opcode::Call:
    return "call";
  case Opcode::Phi:
    return "phi";
  case Opcode::Select:
    return "select";
  case Opcode::Print:
    return "print";
  case Opcode::CheckHeap:
    return "checkheap";
  case Opcode::PrivateRead:
    return "privread";
  case Opcode::PrivateWrite:
    return "privwrite";
  case Opcode::SpeculateEq:
    return "speculate_eq";
  case Opcode::PostDep:
    return "postdep";
  case Opcode::WaitDep:
    return "waitdep";
  case Opcode::ComUpdate:
    return "comupdate";
  }
  return "<bad-opcode>";
}

const char *ir::cmpPredName(CmpPred P) {
  switch (P) {
  case CmpPred::Eq:
    return "eq";
  case CmpPred::Ne:
    return "ne";
  case CmpPred::Lt:
    return "lt";
  case CmpPred::Le:
    return "le";
  case CmpPred::Gt:
    return "gt";
  case CmpPred::Ge:
    return "ge";
  }
  return "<bad-pred>";
}

size_t BasicBlock::indexOf(const Instruction *I) const {
  for (size_t Idx = 0; Idx < Insts.size(); ++Idx)
    if (Insts[Idx].get() == I)
      return Idx;
  PRIVATEER_UNREACHABLE("instruction not in block");
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  Instruction *T = terminator();
  if (!T || T->opcode() == Opcode::Ret)
    return {};
  return T->blockRefs();
}

BasicBlock *Function::blockByName(const std::string &N) const {
  for (const auto &B : Blocks)
    if (B->name() == N)
      return B.get();
  return nullptr;
}

ConstantInt *Module::constInt(int64_t V) {
  auto C = std::make_unique<ConstantInt>(V);
  ConstantInt *P = C.get();
  Constants.push_back(std::move(C));
  return P;
}

ConstantFloat *Module::constFloat(double V) {
  auto C = std::make_unique<ConstantFloat>(V);
  ConstantFloat *P = C.get();
  Constants.push_back(std::move(C));
  return P;
}

Function *Module::functionByName(const std::string &N) const {
  for (const auto &F : Functions)
    if (F->name() == N)
      return F.get();
  return nullptr;
}

GlobalVariable *Module::globalByName(const std::string &N) const {
  for (const auto &G : Globals)
    if (G->name() == N)
      return G.get();
  return nullptr;
}
