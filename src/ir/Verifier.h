//===- ir/Verifier.h - IR well-formedness checks ----------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verification: every block ends in exactly one terminator,
/// phis lead their block and cover each predecessor exactly once, operand
/// types fit their opcode, calls match arity, and memory access sizes are
/// sane.  Returns all diagnostics rather than stopping at the first.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_IR_VERIFIER_H
#define PRIVATEER_IR_VERIFIER_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace privateer {
namespace ir {

std::vector<std::string> verifyModule(const Module &M);

inline bool isWellFormed(const Module &M) { return verifyModule(M).empty(); }

} // namespace ir
} // namespace privateer

#endif // PRIVATEER_IR_VERIFIER_H
