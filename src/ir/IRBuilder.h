//===- ir/IRBuilder.h - Instruction construction helpers --------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience construction of IR, in the spirit of llvm::IRBuilder.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_IR_IRBUILDER_H
#define PRIVATEER_IR_IRBUILDER_H

#include "ir/IR.h"

namespace privateer {
namespace ir {

class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  void setInsertPoint(BasicBlock *B) { Block = B; }
  BasicBlock *insertBlock() const { return Block; }
  Module &module() { return M; }

  ConstantInt *i64(int64_t V) { return M.constInt(V); }
  ConstantFloat *f64(double V) { return M.constFloat(V); }

  Instruction *alloca_(uint64_t Bytes, std::string Name) {
    auto I = make(Opcode::Alloca, Type::Ptr, std::move(Name));
    I->setAccessBytes(Bytes);
    return append(std::move(I));
  }

  Instruction *malloc_(Value *Bytes, std::string Name) {
    auto I = make(Opcode::Malloc, Type::Ptr, std::move(Name));
    I->addOperand(Bytes);
    return append(std::move(I));
  }

  Instruction *free_(Value *Ptr) {
    auto I = make(Opcode::Free, Type::Void);
    I->addOperand(Ptr);
    return append(std::move(I));
  }

  Instruction *load(Type Ty, Value *Ptr, uint64_t Bytes, std::string Name) {
    auto I = make(Opcode::Load, Ty, std::move(Name));
    I->addOperand(Ptr);
    I->setAccessBytes(Bytes);
    return append(std::move(I));
  }

  Instruction *store(Value *V, Value *Ptr, uint64_t Bytes) {
    auto I = make(Opcode::Store, Type::Void);
    I->addOperand(V);
    I->addOperand(Ptr);
    I->setAccessBytes(Bytes);
    return append(std::move(I));
  }

  Instruction *gep(Value *Ptr, Value *Offset, std::string Name) {
    auto I = make(Opcode::Gep, Type::Ptr, std::move(Name));
    I->addOperand(Ptr);
    I->addOperand(Offset);
    return append(std::move(I));
  }

  Instruction *binop(Opcode Op, Value *A, Value *B, std::string Name) {
    Type Ty = (Op >= Opcode::FAdd && Op <= Opcode::FDiv) ? Type::F64
                                                         : Type::I64;
    auto I = make(Op, Ty, std::move(Name));
    I->addOperand(A);
    I->addOperand(B);
    return append(std::move(I));
  }

  Instruction *icmp(CmpPred P, Value *A, Value *B, std::string Name) {
    auto I = make(Opcode::ICmp, Type::I64, std::move(Name));
    I->setCmpPred(P);
    I->addOperand(A);
    I->addOperand(B);
    return append(std::move(I));
  }

  Instruction *fcmp(CmpPred P, Value *A, Value *B, std::string Name) {
    auto I = make(Opcode::FCmp, Type::I64, std::move(Name));
    I->setCmpPred(P);
    I->addOperand(A);
    I->addOperand(B);
    return append(std::move(I));
  }

  Instruction *br(BasicBlock *Target) {
    auto I = make(Opcode::Br, Type::Void);
    I->addBlockRef(Target);
    return append(std::move(I));
  }

  Instruction *condBr(Value *Cond, BasicBlock *T, BasicBlock *F) {
    auto I = make(Opcode::CondBr, Type::Void);
    I->addOperand(Cond);
    I->addBlockRef(T);
    I->addBlockRef(F);
    return append(std::move(I));
  }

  Instruction *ret(Value *V = nullptr) {
    auto I = make(Opcode::Ret, Type::Void);
    if (V)
      I->addOperand(V);
    return append(std::move(I));
  }

  Instruction *call(Function *Callee, std::vector<Value *> Args,
                    std::string Name = "") {
    auto I = make(Opcode::Call, Callee->returnType(), std::move(Name));
    I->setCallee(Callee);
    for (Value *A : Args)
      I->addOperand(A);
    return append(std::move(I));
  }

  /// Phi with incoming (block, value) pairs; may be extended later with
  /// addIncoming-style calls on the instruction.
  Instruction *phi(Type Ty, std::string Name) {
    auto I = make(Opcode::Phi, Ty, std::move(Name));
    return append(std::move(I));
  }

  Instruction *select(Value *Cond, Value *A, Value *B, std::string Name) {
    auto I = make(Opcode::Select, A->type(), std::move(Name));
    I->addOperand(Cond);
    I->addOperand(A);
    I->addOperand(B);
    return append(std::move(I));
  }

  Instruction *print(std::string Format, std::vector<Value *> Args) {
    auto I = make(Opcode::Print, Type::Void);
    I->setPrintFormat(std::move(Format));
    for (Value *A : Args)
      I->addOperand(A);
    return append(std::move(I));
  }

  Instruction *sitofp(Value *V, std::string Name) {
    auto I = make(Opcode::SiToFp, Type::F64, std::move(Name));
    I->addOperand(V);
    return append(std::move(I));
  }

  Instruction *fptosi(Value *V, std::string Name) {
    auto I = make(Opcode::FpToSi, Type::I64, std::move(Name));
    I->addOperand(V);
    return append(std::move(I));
  }

  static void addIncoming(Instruction *Phi, BasicBlock *From, Value *V) {
    assert(Phi->opcode() == Opcode::Phi && "not a phi");
    Phi->addOperand(V);
    Phi->addBlockRef(From);
  }

private:
  std::unique_ptr<Instruction> make(Opcode Op, Type Ty,
                                    std::string Name = "") {
    return std::make_unique<Instruction>(Op, Ty, std::move(Name));
  }

  Instruction *append(std::unique_ptr<Instruction> I) {
    assert(Block && "no insertion point");
    return Block->append(std::move(I));
  }

  Module &M;
  BasicBlock *Block = nullptr;
};

} // namespace ir
} // namespace privateer

#endif // PRIVATEER_IR_IRBUILDER_H
