//===- ir/IR.h - Mini compiler IR -------------------------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small typed SSA-style IR standing in for the paper's LLVM substrate
/// (DESIGN.md substitution #1).  It is deliberately rich in exactly the
/// ways that defeat prior privatization schemes: raw pointers with byte
/// arithmetic (Gep), untyped memory (loads/stores carry an access size, so
/// reinterpreting bytes — "type casts" — is the default), dynamic
/// allocation (Malloc/Free), recursion, and indirect data structures.
///
/// Instructions form one class with an opcode and checked accessors (a
/// pragmatic compression of LLVM's Instruction hierarchy).  Privateer's
/// transformation inserts the intrinsic opcodes CheckHeap, PrivateRead,
/// PrivateWrite, and SpeculateEq, which the interpreter lowers onto the
/// runtime (Figure 2b's check_heap / private_read / private_write /
/// misspec sites).
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_IR_IR_H
#define PRIVATEER_IR_IR_H

#include "runtime/CommutativeLog.h"
#include "runtime/HeapKind.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace privateer {
namespace ir {

enum class Type : uint8_t { Void, I64, F64, Ptr };

const char *typeName(Type T);

enum class ValueKind : uint8_t {
  ConstInt,
  ConstFloat,
  Global,
  Argument,
  Instruction,
};

class Value {
public:
  Value(ValueKind K, Type T, std::string N)
      : Kind(K), Ty(T), Name(std::move(N)) {}
  virtual ~Value() = default;

  ValueKind kind() const { return Kind; }
  Type type() const { return Ty; }
  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

private:
  ValueKind Kind;
  Type Ty;
  std::string Name;
};

class ConstantInt : public Value {
public:
  explicit ConstantInt(int64_t V)
      : Value(ValueKind::ConstInt, Type::I64, ""), Val(V) {}
  int64_t value() const { return Val; }

private:
  int64_t Val;
};

class ConstantFloat : public Value {
public:
  explicit ConstantFloat(double V)
      : Value(ValueKind::ConstFloat, Type::F64, ""), Val(V) {}
  double value() const { return Val; }

private:
  double Val;
};

/// A named global memory object, zero-initialized, \p SizeBytes long.
/// Its value is the object's address (Type::Ptr).  The heap assignment
/// (paper §4.2) is recorded here by the transformation (§4.4).
class GlobalVariable : public Value {
public:
  GlobalVariable(std::string N, uint64_t SizeBytes)
      : Value(ValueKind::Global, Type::Ptr, std::move(N)),
        Size(SizeBytes) {}
  uint64_t sizeBytes() const { return Size; }

  bool hasAssignedHeap() const { return HasHeap; }
  HeapKind assignedHeap() const {
    assert(HasHeap && "global has no heap assignment");
    return Heap;
  }
  void assignHeap(HeapKind K) {
    Heap = K;
    HasHeap = true;
  }

private:
  uint64_t Size;
  HeapKind Heap = HeapKind::Unrestricted;
  bool HasHeap = false;
};

class Function;

class Argument : public Value {
public:
  Argument(Type T, std::string N, unsigned Idx, Function *F)
      : Value(ValueKind::Argument, T, std::move(N)), Index(Idx), Parent(F) {}
  unsigned index() const { return Index; }
  Function *parent() const { return Parent; }

private:
  unsigned Index;
  Function *Parent;
};

enum class Opcode : uint8_t {
  // Memory.
  Alloca, // Fixed-size stack slot (operand-free; bytes in payload).
  Malloc, // Operand 0: byte count (i64).
  Free,   // Operand 0: pointer.
  Load,   // Operand 0: pointer; payload: access bytes; result: type().
  Store,  // Operand 0: value, operand 1: pointer; payload: access bytes.
  Gep,    // Operand 0: pointer, operand 1: byte offset (i64) -> ptr.
  // Integer arithmetic (i64).
  Add, Sub, Mul, SDiv, SRem, And, Or, Xor, Shl, Shr,
  // Floating point (f64).
  FAdd, FSub, FMul, FDiv,
  // Conversions.
  SiToFp, FpToSi,
  // Comparison (result i64: 0/1); payload: predicate.
  ICmp, FCmp,
  // Control flow.
  Br,     // Successor 0.
  CondBr, // Operand 0: condition; successors 0 (true), 1 (false).
  Ret,    // Optional operand 0.
  Call,   // Payload: callee; operands: arguments.
  Phi,    // Operands parallel to incoming blocks.
  Select, // Operand 0: cond, 1: true value, 2: false value.
  // Output (deferred I/O in speculative execution).
  Print, // Payload: printf-style format; operands: arguments.
  // Privateer intrinsics (inserted by the transformation, §4.5-4.6).
  CheckHeap,   // Operand 0: pointer; payload: expected heap.
  PrivateRead, // Operand 0: pointer; payload: bytes.
  PrivateWrite,
  SpeculateEq, // Operands 0, 1: values; misspec when unequal.
  // Cross-iteration dependence forwarding (DOACROSS / pipeline).  The
  // channel id travels in the access-bytes payload slot.
  PostDep, // Operands 0, 1: iteration, value; payload: channel.
  WaitDep, // Operand 0: target iteration; payload: channel; yields i64.
  // Deferred commutative update: a recognized load-op-store cluster on a
  // Commutative-classified object folded into one instruction.  In
  // speculative workers the update is appended to the per-worker log and
  // combined at commit; everywhere else it applies immediately.
  ComUpdate, // Operand 0: value (i64), operand 1: pointer; payload:
             // commutative op + access bytes.
};

const char *opcodeName(Opcode Op);

enum class CmpPred : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

const char *cmpPredName(CmpPred P);

class BasicBlock;

class Instruction : public Value {
public:
  Instruction(Opcode Op, Type T, std::string N = "")
      : Value(ValueKind::Instruction, T, std::move(N)), Op(Op) {}

  Opcode opcode() const { return Op; }
  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *B) { Parent = B; }

  // Operands.
  unsigned numOperands() const { return Operands.size(); }
  Value *operand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void addOperand(Value *V) { Operands.push_back(V); }
  void setOperand(unsigned I, Value *V) {
    assert(I < Operands.size() && "operand index out of range");
    Operands[I] = V;
  }
  const std::vector<Value *> &operands() const { return Operands; }

  // Successors (Br/CondBr) and Phi incoming blocks.
  unsigned numBlockRefs() const { return Blocks.size(); }
  BasicBlock *blockRef(unsigned I) const {
    assert(I < Blocks.size() && "block ref index out of range");
    return Blocks[I];
  }
  void addBlockRef(BasicBlock *B) { Blocks.push_back(B); }
  const std::vector<BasicBlock *> &blockRefs() const { return Blocks; }

  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
  }

  // Payload accessors, asserted by opcode.
  uint64_t accessBytes() const {
    assert((Op == Opcode::Load || Op == Opcode::Store ||
            Op == Opcode::Alloca || Op == Opcode::PrivateRead ||
            Op == Opcode::PrivateWrite || Op == Opcode::ComUpdate) &&
           "opcode carries no byte count");
    return Bytes;
  }
  void setAccessBytes(uint64_t B) { Bytes = B; }

  ComOp comOp() const {
    assert(Op == Opcode::ComUpdate && "not a commutative update");
    return COp;
  }
  void setComOp(ComOp O) { COp = O; }

  CmpPred cmpPred() const {
    assert((Op == Opcode::ICmp || Op == Opcode::FCmp) && "not a compare");
    return Pred;
  }
  void setCmpPred(CmpPred P) { Pred = P; }

  Function *callee() const {
    assert(Op == Opcode::Call && "not a call");
    return Callee;
  }
  void setCallee(Function *F) { Callee = F; }

  const std::string &printFormat() const {
    assert(Op == Opcode::Print && "not a print");
    return Format;
  }
  void setPrintFormat(std::string F) { Format = std::move(F); }

  HeapKind expectedHeap() const {
    assert(Op == Opcode::CheckHeap && "not a heap check");
    return Heap;
  }
  void setExpectedHeap(HeapKind K) { Heap = K; }

  /// Heap assignment of an allocation site (Malloc/Alloca); set by the
  /// transformation's Replace Allocation step (§4.4).
  bool hasAllocHeap() const { return HasAllocHeap; }
  HeapKind allocHeap() const {
    assert(HasAllocHeap && "allocation site has no heap assignment");
    return Heap;
  }
  void setAllocHeap(HeapKind K) {
    Heap = K;
    HasAllocHeap = true;
  }

private:
  Opcode Op;
  BasicBlock *Parent = nullptr;
  std::vector<Value *> Operands;
  std::vector<BasicBlock *> Blocks;
  uint64_t Bytes = 0;
  CmpPred Pred = CmpPred::Eq;
  ComOp COp = ComOp::Add;
  Function *Callee = nullptr;
  std::string Format;
  HeapKind Heap = HeapKind::Unrestricted;
  bool HasAllocHeap = false;
};

class BasicBlock {
public:
  BasicBlock(std::string N, Function *F) : Name(std::move(N)), Parent(F) {}

  const std::string &name() const { return Name; }
  Function *parent() const { return Parent; }

  const std::vector<std::unique_ptr<Instruction>> &instructions() const {
    return Insts;
  }
  bool empty() const { return Insts.empty(); }
  Instruction *terminator() const {
    if (Insts.empty() || !Insts.back()->isTerminator())
      return nullptr;
    return Insts.back().get();
  }

  Instruction *append(std::unique_ptr<Instruction> I) {
    I->setParent(this);
    Insts.push_back(std::move(I));
    return Insts.back().get();
  }

  /// Inserts \p I before position \p Pos (instruction index).
  Instruction *insertAt(size_t Pos, std::unique_ptr<Instruction> I) {
    assert(Pos <= Insts.size() && "insertion position out of range");
    I->setParent(this);
    auto It = Insts.insert(Insts.begin() + Pos, std::move(I));
    return It->get();
  }

  /// Index of \p I within this block; asserts if absent.
  size_t indexOf(const Instruction *I) const;

  /// Removes and destroys the instruction at \p Pos.  The caller must have
  /// replaced every use first (the DOACROSS pre-pass deletes rewritten
  /// loop-carried phis this way).
  void removeAt(size_t Pos) {
    assert(Pos < Insts.size() && "removal position out of range");
    Insts.erase(Insts.begin() + Pos);
  }

  /// Successor blocks, derived from the terminator.
  std::vector<BasicBlock *> successors() const;

private:
  std::string Name;
  Function *Parent;
  std::vector<std::unique_ptr<Instruction>> Insts;
};

class Module;

class Function {
public:
  Function(std::string N, Type RetTy, Module *M)
      : Name(std::move(N)), ReturnType(RetTy), Parent(M) {}

  const std::string &name() const { return Name; }
  Type returnType() const { return ReturnType; }
  Module *parent() const { return Parent; }

  Argument *addArgument(Type T, std::string N) {
    Args.push_back(std::make_unique<Argument>(
        T, std::move(N), static_cast<unsigned>(Args.size()), this));
    return Args.back().get();
  }
  const std::vector<std::unique_ptr<Argument>> &arguments() const {
    return Args;
  }

  BasicBlock *createBlock(std::string N) {
    Blocks.push_back(std::make_unique<BasicBlock>(std::move(N), this));
    return Blocks.back().get();
  }
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }
  BasicBlock *blockByName(const std::string &N) const;

private:
  std::string Name;
  Type ReturnType;
  Module *Parent;
  std::vector<std::unique_ptr<Argument>> Args;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

class Module {
public:
  Function *createFunction(std::string N, Type RetTy) {
    Functions.push_back(std::make_unique<Function>(std::move(N), RetTy, this));
    return Functions.back().get();
  }
  GlobalVariable *createGlobal(std::string N, uint64_t SizeBytes) {
    Globals.push_back(
        std::make_unique<GlobalVariable>(std::move(N), SizeBytes));
    return Globals.back().get();
  }

  ConstantInt *constInt(int64_t V);
  ConstantFloat *constFloat(double V);

  Function *functionByName(const std::string &N) const;
  GlobalVariable *globalByName(const std::string &N) const;

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }
  const std::vector<std::unique_ptr<GlobalVariable>> &globals() const {
    return Globals;
  }

private:
  std::vector<std::unique_ptr<Function>> Functions;
  std::vector<std::unique_ptr<GlobalVariable>> Globals;
  std::vector<std::unique_ptr<Value>> Constants;
};

} // namespace ir
} // namespace privateer

#endif // PRIVATEER_IR_IR_H
