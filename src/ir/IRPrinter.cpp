//===- ir/IRPrinter.cpp ---------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "support/ErrorHandling.h"

#include <cstdio>

using namespace privateer;
using namespace privateer::ir;

namespace {

void ensureNames(Function &F) {
  unsigned Next = 0;
  for (const auto &B : F.blocks())
    for (const auto &I : B->instructions())
      if (I->type() != Type::Void && I->name().empty())
        I->setName("t" + std::to_string(Next++));
}

std::string valueRef(const Value *V) {
  switch (V->kind()) {
  case ValueKind::ConstInt:
    return std::to_string(static_cast<const ConstantInt *>(V)->value());
  case ValueKind::ConstFloat: {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g",
                  static_cast<const ConstantFloat *>(V)->value());
    std::string S = Buf;
    // Guarantee the parser sees a float, not an int literal.
    if (S.find('.') == std::string::npos &&
        S.find('e') == std::string::npos &&
        S.find("inf") == std::string::npos &&
        S.find("nan") == std::string::npos)
      S += ".0";
    return S;
  }
  case ValueKind::Global:
    return "@" + V->name();
  case ValueKind::Argument:
  case ValueKind::Instruction:
    return "%" + V->name();
  }
  PRIVATEER_UNREACHABLE("bad value kind");
}

std::string escapeString(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '\n')
      Out += "\\n";
    else if (C == '\t')
      Out += "\\t";
    else if (C == '"')
      Out += "\\\"";
    else if (C == '\\')
      Out += "\\\\";
    else
      Out += C;
  }
  return Out;
}

std::string heapToken(HeapKind K) { return heapKindName(K); }

void printInstruction(const Instruction &I, std::string &Out) {
  Out += "  ";
  if (I.type() != Type::Void) {
    Out += "%" + I.name() + " = ";
  }
  switch (I.opcode()) {
  case Opcode::Alloca:
    Out += "alloca " + std::to_string(I.accessBytes());
    break;
  case Opcode::Malloc:
    Out += "malloc " + valueRef(I.operand(0));
    if (I.hasAllocHeap())
      Out += ", " + heapToken(I.allocHeap());
    break;
  case Opcode::Free:
    Out += "free " + valueRef(I.operand(0));
    break;
  case Opcode::Load:
    Out += std::string("load ") + typeName(I.type()) + ", " +
           valueRef(I.operand(0)) + ", " + std::to_string(I.accessBytes());
    break;
  case Opcode::Store:
    Out += "store " + valueRef(I.operand(0)) + ", " +
           valueRef(I.operand(1)) + ", " + std::to_string(I.accessBytes());
    break;
  case Opcode::Gep:
    Out += "gep " + valueRef(I.operand(0)) + ", " + valueRef(I.operand(1));
    break;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::SDiv:
  case Opcode::SRem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
    Out += std::string(opcodeName(I.opcode())) + " " +
           valueRef(I.operand(0)) + ", " + valueRef(I.operand(1));
    break;
  case Opcode::SiToFp:
  case Opcode::FpToSi:
    Out += std::string(opcodeName(I.opcode())) + " " +
           valueRef(I.operand(0));
    break;
  case Opcode::ICmp:
  case Opcode::FCmp:
    Out += std::string(opcodeName(I.opcode())) + " " +
           cmpPredName(I.cmpPred()) + ", " + valueRef(I.operand(0)) + ", " +
           valueRef(I.operand(1));
    break;
  case Opcode::Br:
    Out += "br " + I.blockRef(0)->name();
    break;
  case Opcode::CondBr:
    Out += "condbr " + valueRef(I.operand(0)) + ", " +
           I.blockRef(0)->name() + ", " + I.blockRef(1)->name();
    break;
  case Opcode::Ret:
    Out += "ret";
    if (I.numOperands() > 0)
      Out += " " + valueRef(I.operand(0));
    break;
  case Opcode::Call: {
    Out += "call @" + I.callee()->name() + "(";
    for (unsigned A = 0; A < I.numOperands(); ++A) {
      if (A)
        Out += ", ";
      Out += valueRef(I.operand(A));
    }
    Out += ")";
    break;
  }
  case Opcode::Phi: {
    Out += "phi";
    for (unsigned A = 0; A < I.numOperands(); ++A) {
      Out += (A ? ", [" : " [") + I.blockRef(A)->name() + ": " +
             valueRef(I.operand(A)) + "]";
    }
    break;
  }
  case Opcode::Select:
    Out += "select " + valueRef(I.operand(0)) + ", " +
           valueRef(I.operand(1)) + ", " + valueRef(I.operand(2));
    break;
  case Opcode::Print: {
    Out += "print \"" + escapeString(I.printFormat()) + "\"";
    for (unsigned A = 0; A < I.numOperands(); ++A)
      Out += ", " + valueRef(I.operand(A));
    break;
  }
  case Opcode::CheckHeap:
    Out += "checkheap " + valueRef(I.operand(0)) + ", " +
           heapToken(I.expectedHeap());
    break;
  case Opcode::PrivateRead:
  case Opcode::PrivateWrite:
    Out += std::string(opcodeName(I.opcode())) + " " +
           valueRef(I.operand(0)) + ", " + std::to_string(I.accessBytes());
    break;
  case Opcode::SpeculateEq:
    Out += "speculate_eq " + valueRef(I.operand(0)) + ", " +
           valueRef(I.operand(1));
    break;
  case Opcode::PostDep:
    Out += "postdep " + valueRef(I.operand(0)) + ", " +
           valueRef(I.operand(1)) + ", " + std::to_string(I.accessBytes());
    break;
  case Opcode::WaitDep:
    Out += "waitdep " + valueRef(I.operand(0)) + ", " +
           std::to_string(I.accessBytes());
    break;
  case Opcode::ComUpdate:
    Out += std::string("comupdate ") + comOpName(I.comOp()) + ", " +
           valueRef(I.operand(0)) + ", " + valueRef(I.operand(1)) + ", " +
           std::to_string(I.accessBytes());
    break;
  }
  Out += "\n";
}

} // namespace

std::string ir::printFunction(Function &F) {
  ensureNames(F);
  std::string Out = "define " + std::string(typeName(F.returnType())) +
                    " @" + F.name() + "(";
  for (size_t A = 0; A < F.arguments().size(); ++A) {
    if (A)
      Out += ", ";
    const Argument *Arg = F.arguments()[A].get();
    Out += std::string(typeName(Arg->type())) + " %" + Arg->name();
  }
  Out += ") {\n";
  for (const auto &B : F.blocks()) {
    Out += B->name() + ":\n";
    for (const auto &I : B->instructions())
      printInstruction(*I, Out);
  }
  Out += "}\n";
  return Out;
}

std::string ir::printModule(Module &M) {
  std::string Out;
  for (const auto &G : M.globals()) {
    Out += "global @" + G->name() + " " + std::to_string(G->sizeBytes());
    if (G->hasAssignedHeap())
      Out += std::string(" ") + heapKindName(G->assignedHeap());
    Out += "\n";
  }
  if (!M.globals().empty())
    Out += "\n";
  for (const auto &F : M.functions()) {
    Out += printFunction(*F);
    Out += "\n";
  }
  return Out;
}
