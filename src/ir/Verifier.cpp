//===- ir/Verifier.cpp ----------------------------------------------------===//

#include "ir/Verifier.h"

#include <map>
#include <set>

using namespace privateer;
using namespace privateer::ir;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Module &M) : M(M) {}

  std::vector<std::string> run() {
    for (const auto &F : M.functions())
      verifyFunction(*F);
    return std::move(Errors);
  }

private:
  void error(const Function &F, const BasicBlock *B, const std::string &Msg) {
    std::string Where = "@" + F.name();
    if (B)
      Where += "/" + B->name();
    Errors.push_back(Where + ": " + Msg);
  }

  void verifyFunction(const Function &F) {
    if (F.blocks().empty()) {
      error(F, nullptr, "function has no blocks");
      return;
    }
    std::map<const BasicBlock *, std::vector<const BasicBlock *>> Preds;
    for (const auto &B : F.blocks())
      for (BasicBlock *S : B->successors())
        Preds[S].push_back(B.get());

    for (const auto &B : F.blocks()) {
      if (!B->terminator()) {
        error(F, B.get(), "block does not end with a terminator");
        continue;
      }
      bool SeenNonPhi = false;
      for (size_t Idx = 0; Idx < B->instructions().size(); ++Idx) {
        const Instruction &I = *B->instructions()[Idx];
        bool IsLast = Idx + 1 == B->instructions().size();
        if (I.isTerminator() && !IsLast)
          error(F, B.get(), "terminator in the middle of a block");
        if (I.opcode() == Opcode::Phi) {
          if (SeenNonPhi)
            error(F, B.get(), "phi after non-phi instruction");
          verifyPhi(F, *B, I, Preds[B.get()]);
        } else {
          SeenNonPhi = true;
        }
        verifyInstruction(F, *B, I);
      }
    }
  }

  void verifyPhi(const Function &F, const BasicBlock &B,
                 const Instruction &I,
                 const std::vector<const BasicBlock *> &Preds) {
    if (I.numOperands() != I.numBlockRefs()) {
      error(F, &B, "phi operand/block count mismatch");
      return;
    }
    std::set<const BasicBlock *> Seen;
    for (unsigned A = 0; A < I.numBlockRefs(); ++A) {
      const BasicBlock *In = I.blockRef(A);
      if (!Seen.insert(In).second)
        error(F, &B, "phi lists predecessor '" + In->name() + "' twice");
      bool IsPred = false;
      for (const BasicBlock *P : Preds)
        IsPred |= P == In;
      if (!IsPred)
        error(F, &B,
              "phi incoming block '" + In->name() + "' is not a predecessor");
    }
    for (const BasicBlock *P : Preds)
      if (!Seen.count(P))
        error(F, &B, "phi misses predecessor '" + P->name() + "'");
  }

  void verifyInstruction(const Function &F, const BasicBlock &B,
                         const Instruction &I) {
    auto WantOperands = [&](unsigned N) {
      if (I.numOperands() != N)
        error(F, &B,
              std::string(opcodeName(I.opcode())) + " expects " +
                  std::to_string(N) + " operands, has " +
                  std::to_string(I.numOperands()));
    };
    auto WantAccessSize = [&]() {
      uint64_t Sz = I.accessBytes();
      if (Sz != 1 && Sz != 2 && Sz != 4 && Sz != 8)
        error(F, &B,
              std::string(opcodeName(I.opcode())) +
                  " access size must be 1/2/4/8 bytes");
    };
    switch (I.opcode()) {
    case Opcode::Load:
      WantOperands(1);
      WantAccessSize();
      if (I.operand(0)->type() != Type::Ptr)
        error(F, &B, "load pointer operand is not ptr-typed");
      break;
    case Opcode::Store:
      WantOperands(2);
      WantAccessSize();
      if (I.operand(1)->type() != Type::Ptr)
        error(F, &B, "store pointer operand is not ptr-typed");
      break;
    case Opcode::Gep:
      WantOperands(2);
      if (I.operand(0)->type() != Type::Ptr)
        error(F, &B, "gep base is not ptr-typed");
      break;
    case Opcode::Malloc:
    case Opcode::Free:
    case Opcode::SiToFp:
    case Opcode::FpToSi:
      WantOperands(1);
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::SDiv:
    case Opcode::SRem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
    case Opcode::ICmp:
    case Opcode::FCmp:
    case Opcode::SpeculateEq:
      WantOperands(2);
      break;
    case Opcode::CondBr:
      WantOperands(1);
      if (I.numBlockRefs() != 2)
        error(F, &B, "condbr needs two successors");
      break;
    case Opcode::Br:
      WantOperands(0);
      if (I.numBlockRefs() != 1)
        error(F, &B, "br needs one successor");
      break;
    case Opcode::Ret:
      if (F.returnType() == Type::Void && I.numOperands() != 0)
        error(F, &B, "void function returns a value");
      if (F.returnType() != Type::Void && I.numOperands() != 1)
        error(F, &B, "non-void function returns nothing");
      break;
    case Opcode::Call:
      if (!I.callee())
        error(F, &B, "call without callee");
      else if (I.numOperands() != I.callee()->arguments().size())
        error(F, &B,
              "call to @" + I.callee()->name() + " passes " +
                  std::to_string(I.numOperands()) + " args, wants " +
                  std::to_string(I.callee()->arguments().size()));
      break;
    case Opcode::CheckHeap:
      WantOperands(1);
      break;
    case Opcode::PrivateRead:
    case Opcode::PrivateWrite:
      WantOperands(1);
      if (I.accessBytes() == 0)
        error(F, &B, "privacy check covers zero bytes");
      break;
    case Opcode::Alloca:
      if (I.accessBytes() == 0)
        error(F, &B, "alloca of zero bytes");
      break;
    case Opcode::Select:
      WantOperands(3);
      break;
    case Opcode::PostDep:
      WantOperands(2);
      break;
    case Opcode::WaitDep:
      WantOperands(1);
      break;
    case Opcode::ComUpdate:
      WantOperands(2);
      WantAccessSize();
      if (I.numOperands() == 2 && I.operand(1)->type() != Type::Ptr)
        error(F, &B, "comupdate pointer operand is not ptr-typed");
      break;
    case Opcode::Phi:
    case Opcode::Print:
      break;
    }
  }

  const Module &M;
  std::vector<std::string> Errors;
};

} // namespace

std::vector<std::string> ir::verifyModule(const Module &M) {
  return VerifierImpl(M).run();
}
