//===- ir/IRParser.h - Textual IR input -------------------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual form produced by IRPrinter.  Returns null and an
/// error message (with a line number) on malformed input.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_IR_IRPARSER_H
#define PRIVATEER_IR_IRPARSER_H

#include "ir/IR.h"

#include <memory>
#include <string>

namespace privateer {
namespace ir {

std::unique_ptr<Module> parseModule(const std::string &Text,
                                    std::string &Error);

} // namespace ir
} // namespace privateer

#endif // PRIVATEER_IR_IRPARSER_H
