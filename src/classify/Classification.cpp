//===- classify/Classification.cpp ----------------------------------------===//

#include "classify/Classification.h"

#include <algorithm>
#include <optional>

using namespace privateer;
using namespace privateer::classify;
using namespace privateer::analysis;
using namespace privateer::profiling;
using namespace privateer::ir;

namespace {

/// All instructions executed by the loop: its body blocks plus every
/// function reachable through calls from them ("if I is of the form
/// r := call f(...) then recur on f", Algorithm 2).
std::vector<const Instruction *> loopInstructions(const Loop &L,
                                                  const FunctionAnalyses &FA) {
  std::vector<const Instruction *> Out;
  for (BasicBlock *B : L.blocks())
    for (const auto &I : B->instructions())
      Out.push_back(I.get());
  std::set<BasicBlock *> Body(L.blocks().begin(), L.blocks().end());
  for (Function *F : FA.callGraph().reachableFromBlocks(Body))
    for (const auto &B : F->blocks())
      for (const auto &I : B->instructions())
        Out.push_back(I.get());
  return Out;
}

bool isReduxOpcode(Opcode Op) {
  return Op == Opcode::Add || Op == Opcode::FAdd || Op == Opcode::Mul ||
         Op == Opcode::FMul;
}

/// Recognizes the syntactic reduction pattern of Algorithm 2: a store of
/// `v = op(r, x)` back through the same pointer SSA value a load `r` used,
/// with an associative and commutative `op`.
bool isReductionPair(const Instruction *Store, const Instruction **LoadOut) {
  Value *V = Store->operand(0);
  Value *P = Store->operand(1);
  if (V->kind() != ValueKind::Instruction)
    return false;
  auto *Op = static_cast<Instruction *>(V);
  if (!isReduxOpcode(Op->opcode()))
    return false;
  for (unsigned A = 0; A < 2; ++A) {
    Value *Side = Op->operand(A);
    if (Side->kind() != ValueKind::Instruction)
      continue;
    auto *Ld = static_cast<Instruction *>(Side);
    if (Ld->opcode() == Opcode::Load && Ld->operand(0) == P &&
        Ld->accessBytes() == Store->accessBytes()) {
      *LoadOut = Ld;
      return true;
    }
  }
  return false;
}

/// Structural address equality: the same SSA value, or geps recomputing
/// the same address (equal bases, equal offsets).  The reduction
/// recognizer insists on pointer *identity*; recomputed geps are one of
/// the shapes that push an update to the commutative class instead.
bool sameAddress(const Value *A, const Value *B) {
  if (A == B)
    return true;
  if (A->kind() == ValueKind::ConstInt && B->kind() == ValueKind::ConstInt)
    return static_cast<const ConstantInt *>(A)->value() ==
           static_cast<const ConstantInt *>(B)->value();
  if (A->kind() != ValueKind::Instruction ||
      B->kind() != ValueKind::Instruction)
    return false;
  auto *IA = static_cast<const Instruction *>(A);
  auto *IB = static_cast<const Instruction *>(B);
  if (IA->opcode() != Opcode::Gep || IB->opcode() != Opcode::Gep)
    return false;
  return sameAddress(IA->operand(0), IB->operand(0)) &&
         sameAddress(IA->operand(1), IB->operand(1));
}

/// Number of operand slots referencing each value, across the whole
/// module.  Cluster recognition needs single-use guarantees: the loaded
/// value must feed only the combine, and the combine only the store —
/// otherwise the old cell value escapes and the update is not a pure fold.
std::map<const Value *, unsigned> countUses(const ir::Module &M) {
  std::map<const Value *, unsigned> Uses;
  for (const auto &F : M.functions())
    for (const auto &B : F->blocks())
      for (const auto &I : B->instructions())
        for (const Value *Op : I->operands())
          ++Uses[Op];
  return Uses;
}

std::optional<ComOp> comOpForOpcode(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return ComOp::Add;
  case Opcode::Mul:
    return ComOp::Mul;
  case Opcode::And:
    return ComOp::And;
  case Opcode::Or:
    return ComOp::Or;
  case Opcode::Xor:
    return ComOp::Xor;
  default:
    return std::nullopt;
  }
}

/// Recognizes the commutative-update cluster ending at \p Store.
///
/// Pattern A (integer fold):   r = load p; v = op(r, x); store v, q
/// with op in {add, mul, and, or, xor} and p, q the same address.
///
/// Pattern B (min/max map):    r = load p; c = icmp pred, a, b;
///                             v = select c, t, f; store v, q
/// where {a,b} = {t,f} = {r,x} and pred is an ordering, so v is exactly
/// min(r,x) or max(r,x).
///
/// Both demand: i64-typed sign-extending loads (floats are not byte-exact
/// under reassociation), matching access widths, and single-use chains so
/// the old value cannot escape.  x must be independent of r — guaranteed
/// by the use counts: r's only uses are inside the cluster.
bool matchComCluster(const Instruction *Store,
                     const std::map<const Value *, unsigned> &Uses,
                     const std::set<const Instruction *> &InLoop,
                     ComCluster &Out) {
  auto UseCount = [&](const Value *V) {
    auto It = Uses.find(V);
    return It == Uses.end() ? 0u : It->second;
  };
  auto IsClusterLoad = [&](const Value *V, unsigned WantUses,
                           const Instruction **LdOut) {
    if (V->kind() != ValueKind::Instruction)
      return false;
    auto *Ld = static_cast<const Instruction *>(V);
    if (Ld->opcode() != Opcode::Load || Ld->type() != Type::I64 ||
        !InLoop.count(Ld) || UseCount(Ld) != WantUses ||
        Ld->accessBytes() != Store->accessBytes() ||
        !sameAddress(Ld->operand(0), Store->operand(1)))
      return false;
    *LdOut = Ld;
    return true;
  };

  Value *V = Store->operand(0);
  if (V->kind() != ValueKind::Instruction)
    return false;
  auto *Comb = static_cast<Instruction *>(V);
  if (!InLoop.count(Comb) || UseCount(Comb) != 1)
    return false;

  if (auto COp = comOpForOpcode(Comb->opcode())) {
    // Pattern A.  The load feeds only the combine.
    for (unsigned A = 0; A < 2; ++A) {
      const Instruction *Ld = nullptr;
      if (IsClusterLoad(Comb->operand(A), 1, &Ld)) {
        Out = ComCluster{Ld, Store, Comb, nullptr, Comb->operand(1 - A),
                         *COp};
        return true;
      }
    }
    return false;
  }

  if (Comb->opcode() != Opcode::Select)
    return false;
  Value *CondV = Comb->operand(0);
  if (CondV->kind() != ValueKind::Instruction)
    return false;
  auto *Cmp = static_cast<Instruction *>(CondV);
  if (Cmp->opcode() != Opcode::ICmp || !InLoop.count(Cmp) ||
      UseCount(Cmp) != 1)
    return false;
  CmpPred Pred = Cmp->cmpPred();
  if (Pred != CmpPred::Lt && Pred != CmpPred::Le && Pred != CmpPred::Gt &&
      Pred != CmpPred::Ge)
    return false;
  Value *A = Cmp->operand(0), *B = Cmp->operand(1);
  Value *T = Comb->operand(1), *F = Comb->operand(2);
  bool Straight = T == A && F == B; // select picks the compare's lhs.
  bool Swapped = T == B && F == A;
  if (!Straight && !Swapped)
    return false;
  // "a < b ? a : b" is min; swapping either the predicate direction or
  // the select arms flips it.
  bool PredIsLess = Pred == CmpPred::Lt || Pred == CmpPred::Le;
  ComOp MinMax = (PredIsLess == Straight) ? ComOp::Min : ComOp::Max;
  // One compare operand is the cluster load (used by compare + select),
  // the other is the folded-in value.
  const Instruction *Ld = nullptr;
  if (IsClusterLoad(A, 2, &Ld) && UseCount(A) == 2) {
    Out = ComCluster{Ld, Store, Comb, Cmp, B, MinMax};
    return true;
  }
  if (IsClusterLoad(B, 2, &Ld) && UseCount(B) == 2) {
    Out = ComCluster{Ld, Store, Comb, Cmp, A, MinMax};
    return true;
  }
  return false;
}

/// Instruction-level footprint for the dependence-refinement loop of
/// Algorithm 1: (Ra, Wa, Xa) of one instruction.
struct InstFootprint {
  std::set<ObjectKey> R, W, X;
};

InstFootprint instFootprint(const Instruction *I, const Footprint &Fp,
                            const Profile &P) {
  InstFootprint Out;
  const std::set<ObjectKey> &Objs = P.objectsAccessedBy(I);
  if (Fp.ReduxAccesses.count(I) || Fp.ComAccesses.count(I)) {
    Out.X = Objs;
    return Out;
  }
  if (I->opcode() == Opcode::Load)
    Out.R = Objs;
  else if (I->opcode() == Opcode::Store)
    Out.W = Objs;
  return Out;
}

std::set<ObjectKey> setUnion(const std::set<ObjectKey> &A,
                             const std::set<ObjectKey> &B) {
  std::set<ObjectKey> Out = A;
  Out.insert(B.begin(), B.end());
  return Out;
}

std::set<ObjectKey> setIntersect(const std::set<ObjectKey> &A,
                                 const std::set<ObjectKey> &B) {
  std::set<ObjectKey> Out;
  std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                        std::inserter(Out, Out.begin()));
  return Out;
}

void setSubtract(std::set<ObjectKey> &A, const std::set<ObjectKey> &B) {
  for (const ObjectKey &K : B)
    A.erase(K);
}

} // namespace

Footprint classify::getFootprint(const Loop &L, const FunctionAnalyses &FA,
                                 const Profile &P) {
  Footprint Out;
  std::vector<const Instruction *> Insts = loopInstructions(L, FA);
  std::set<const Instruction *> InLoop(Insts.begin(), Insts.end());

  // Recognize reduction pairs first.
  for (const Instruction *I : Insts) {
    if (I->opcode() != Opcode::Store)
      continue;
    const Instruction *Ld = nullptr;
    if (isReductionPair(I, &Ld) && InLoop.count(Ld)) {
      Out.ReduxAccesses.insert(I);
      Out.ReduxAccesses.insert(Ld);
      const auto &Objs = P.objectsAccessedBy(I);
      Out.Redux.insert(Objs.begin(), Objs.end());
      const auto &LdObjs = P.objectsAccessedBy(Ld);
      Out.Redux.insert(LdObjs.begin(), LdObjs.end());
    }
  }
  // Then commutative-update clusters among the stores the reduction
  // recognizer passed over (recomputed pointers, bitwise ops, min/max).
  std::map<const Value *, unsigned> Uses =
      countUses(*L.header()->parent()->parent());
  for (const Instruction *I : Insts) {
    if (I->opcode() != Opcode::Store || Out.ReduxAccesses.count(I))
      continue;
    ComCluster C;
    if (matchComCluster(I, Uses, InLoop, C) &&
        !Out.ReduxAccesses.count(C.Load)) {
      Out.ComClusters.push_back(C);
      Out.ComAccesses.insert(C.Store);
      Out.ComAccesses.insert(C.Load);
      const auto &StObjs = P.objectsAccessedBy(C.Store);
      Out.Com.insert(StObjs.begin(), StObjs.end());
      const auto &LdObjs = P.objectsAccessedBy(C.Load);
      Out.Com.insert(LdObjs.begin(), LdObjs.end());
    }
  }
  // Remaining accesses populate the read and write footprints.
  for (const Instruction *I : Insts) {
    if (Out.ReduxAccesses.count(I) || Out.ComAccesses.count(I))
      continue;
    const auto &Objs = P.objectsAccessedBy(I);
    if (I->opcode() == Opcode::Load)
      Out.Read.insert(Objs.begin(), Objs.end());
    else if (I->opcode() == Opcode::Store)
      Out.Write.insert(Objs.begin(), Objs.end());
  }
  return Out;
}

HeapAssignment classify::classifyLoop(const Loop &L,
                                      const FunctionAnalyses &FA,
                                      const Profile &P,
                                      const std::set<FlowDep> *CoveredDeps,
                                      bool EnableCommutative) {
  HeapAssignment HA;
  HA.TheLoop = &L;
  HA.Fp = getFootprint(L, FA, P);
  const Footprint &Fp = HA.Fp;

  // Short-lived: allocated and freed within one iteration of L.
  std::set<ObjectKey> ShortLived;
  for (const ObjectKey &O : setUnion(Fp.Read, Fp.Write))
    if (P.isShortLived(O, &L))
      ShortLived.insert(O);
  for (const ObjectKey &O : Fp.Redux)
    if (P.isShortLived(O, &L))
      ShortLived.insert(O);

  // Reduction heap: objects accessed *only* through reduction operations.
  // (The paper's Algorithm 1 pseudo-code tests membership in the
  // read/write footprints, but §4.2's prose — "If the compiler does not
  // expect an object in the reduction set to be accessed by loads or
  // stores elsewhere in the loop" — makes the intent clear; the
  // conference text's condition appears to have lost a negation.)
  std::set<ObjectKey> Redux;
  for (const ObjectKey &O : Fp.Redux)
    if (!Fp.Read.count(O) && !Fp.Write.count(O) && !Fp.Com.count(O) &&
        !ShortLived.count(O))
      Redux.insert(O);

  // Commutative heap: objects accessed *only* through recognized
  // commutative-update clusters, all agreeing on operator and width (a
  // cell folded with add here and max there is order-sensitive across
  // the two operators, so mixed objects are rejected).
  std::set<ObjectKey> Com;
  if (EnableCommutative) {
    std::map<ObjectKey, std::pair<ComOp, uint8_t>> Want;
    std::set<ObjectKey> Mixed;
    for (const ComCluster &C : Fp.ComClusters) {
      std::pair<ComOp, uint8_t> OpW{
          C.Op, static_cast<uint8_t>(C.Store->accessBytes())};
      for (const Instruction *Acc : {C.Store, C.Load})
        for (const ObjectKey &O : P.objectsAccessedBy(Acc)) {
          auto [It, New] = Want.try_emplace(O, OpW);
          if (!New && It->second != OpW)
            Mixed.insert(O);
        }
    }
    for (const ObjectKey &O : Fp.Com)
      if (!Fp.Read.count(O) && !Fp.Write.count(O) && !Fp.Redux.count(O) &&
          !ShortLived.count(O) && !Mixed.count(O)) {
        Com.insert(O);
        HA.ComOps[O] = Want[O];
      }
  }
  // Rejected cluster objects (or all of them when commutative
  // classification is off) fall back into the ordinary footprints and
  // classify as the paper's five classes would — typically private, where
  // cross-worker bumps of one cell surface as benign misspeculation.
  std::set<ObjectKey> ReadFp = Fp.Read;
  std::set<ObjectKey> WriteFp = Fp.Write;
  for (const ObjectKey &O : Fp.Com)
    if (!Com.count(O)) {
      ReadFp.insert(O);
      WriteFp.insert(O);
    }

  // Cross-iteration flow dependences: privatization cannot remove them;
  // value prediction sometimes can (§4.3 refinement, used by dijkstra's
  // empty-queue speculation).
  std::set<ObjectKey> Unrestricted;
  std::map<std::pair<const GlobalVariable *, uint64_t>, ValuePrediction>
      Preds;
  for (const FlowDep &D : P.crossIterationFlowDeps(&L)) {
    // DOACROSS carve-out: dependences the token-forwarding rewrite covers
    // are satisfied by the rings, not by memory; their objects privatize
    // normally (the store still merges by timestamp at commit).
    if (CoveredDeps && CoveredDeps->count(D)) {
      HA.Notes.push_back("flow dep %" + D.Src->name() + " -> %" +
                         D.Dst->name() + " forwarded by doacross tokens");
      continue;
    }
    InstFootprint A = instFootprint(D.Src, Fp, P);
    InstFootprint B = instFootprint(D.Dst, Fp, P);
    std::set<ObjectKey> F = setIntersect(setUnion(A.W, A.X),
                                         setUnion(B.R, B.X));
    setSubtract(F, ShortLived);
    setSubtract(F, Redux);
    setSubtract(F, Com);
    if (F.empty())
      continue;

    // Value-prediction refinement: if the consuming load's first read per
    // iteration is a constant at a statically known address, speculate it
    // and drop the dependence (the runtime still validates).
    if (const PredictableLoad *PL = P.predictableFirstRead(D.Dst, &L)) {
      const GlobalVariable *G = nullptr;
      uint64_t Offset = 0;
      for (const ObjectKey &O : P.objectsAccessedBy(D.Dst))
        if (O.Global && PL->Address >= P.globalBase(O.Global) &&
            PL->Address + PL->Bytes <=
                P.globalBase(O.Global) + O.Global->sizeBytes()) {
          G = O.Global;
          Offset = PL->Address - P.globalBase(O.Global);
          break;
        }
      if (G) {
        auto [It, Inserted] = Preds.try_emplace(
            {G, Offset},
            ValuePrediction{D.Dst, G, Offset, PL->Bytes, PL->Value});
        if (Inserted || (It->second.Value == PL->Value &&
                         It->second.Bytes == PL->Bytes)) {
          HA.Notes.push_back("value-predicted @" + G->name() + "+" +
                             std::to_string(Offset) + " == " +
                             std::to_string(PL->Value));
          continue;
        }
      }
    }
    Unrestricted.insert(F.begin(), F.end());
  }

  // Com objects with a profiled (uncovered) cross-iteration dep through
  // their clusters keep commutative semantics — the fold is
  // order-independent, which is the whole point — so Com was subtracted
  // above; anything else that surfaced a dep is unrestricted.
  setSubtract(Unrestricted, Com);

  // Private: everything else written.  Read-only: everything else read.
  std::set<ObjectKey> Private = WriteFp;
  setSubtract(Private, ShortLived);
  setSubtract(Private, Unrestricted);
  setSubtract(Private, Redux);
  std::set<ObjectKey> ReadOnly = ReadFp;
  setSubtract(ReadOnly, ShortLived);
  setSubtract(ReadOnly, Unrestricted);
  setSubtract(ReadOnly, Redux);
  setSubtract(ReadOnly, Private);

  for (const ObjectKey &O : ShortLived)
    HA.ObjectHeaps[O] = HeapKind::ShortLived;
  for (const ObjectKey &O : Redux)
    HA.ObjectHeaps[O] = HeapKind::Redux;
  for (const ObjectKey &O : Com)
    HA.ObjectHeaps[O] = HeapKind::Commutative;
  for (const ObjectKey &O : Unrestricted)
    HA.ObjectHeaps[O] = HeapKind::Unrestricted;
  for (const ObjectKey &O : Private)
    HA.ObjectHeaps[O] = HeapKind::Private;
  for (const ObjectKey &O : ReadOnly)
    HA.ObjectHeaps[O] = HeapKind::ReadOnly;

  for (const auto &[GO, Pred] : Preds) {
    (void)GO;
    HA.Predictions.push_back(Pred);
  }

  // Record each reduction object's element type and operator for runtime
  // registration: taken from the store half of its load-op-store pattern.
  for (const Instruction *I : Fp.ReduxAccesses) {
    if (I->opcode() != Opcode::Store)
      continue;
    auto *Op = static_cast<const Instruction *>(I->operand(0));
    bool IsFloat =
        Op->opcode() == Opcode::FAdd || Op->opcode() == Opcode::FMul;
    bool IsMul =
        Op->opcode() == Opcode::Mul || Op->opcode() == Opcode::FMul;
    ReduxElem Elem = I->accessBytes() == 8
                         ? (IsFloat ? ReduxElem::F64 : ReduxElem::I64)
                         : (IsFloat ? ReduxElem::F32 : ReduxElem::I32);
    ReduxOp ROp = IsMul ? ReduxOp::Mul : ReduxOp::Add;
    for (const ObjectKey &O : P.objectsAccessedBy(I))
      if (Redux.count(O))
        HA.ReduxOps[O] = {Elem, ROp};
  }

  // Keep only the clusters whose every touched object classified
  // Commutative: those the privatizer folds into ComUpdate.  The rest
  // stay plain load-op-store and get ordinary privacy checks.
  for (const ComCluster &C : Fp.ComClusters) {
    bool AllCom = true;
    for (const Instruction *Acc : {C.Store, C.Load})
      for (const ObjectKey &O : P.objectsAccessedBy(Acc))
        AllCom &= Com.count(O) != 0;
    if (AllCom)
      HA.ComClusters.push_back(C);
  }
  for (const ObjectKey &O : Com)
    HA.Notes.push_back(
        std::string("commutative ") + O.str() + ": " +
        comOpName(HA.ComOps[O].first) + "/" +
        std::to_string(HA.ComOps[O].second) + "B, deferred combine");

  HA.Parallelizable = Unrestricted.empty();
  if (!HA.Parallelizable)
    HA.Notes.push_back("unrestricted objects remain: " +
                       std::to_string(Unrestricted.size()));
  return HA;
}

std::vector<HeapAssignment>
classify::selectLoops(const std::vector<HeapAssignment> &Candidates,
                      const FunctionAnalyses &FA, const Profile &P) {
  // Heaviest (by profiled weight) parallelizable loops first.
  std::vector<const HeapAssignment *> Order;
  for (const HeapAssignment &HA : Candidates)
    if (HA.Parallelizable)
      Order.push_back(&HA);
  std::sort(Order.begin(), Order.end(),
            [&](const HeapAssignment *A, const HeapAssignment *B) {
              return P.loopStats(A->TheLoop).Weight >
                     P.loopStats(B->TheLoop).Weight;
            });

  auto MayBeSimultaneouslyActive = [&](const Loop *A, const Loop *B) {
    // Nested in the same function?
    for (BasicBlock *Blk : A->blocks())
      if (B->contains(Blk))
        return true;
    for (BasicBlock *Blk : B->blocks())
      if (A->contains(Blk))
        return true;
    // Or reachable through calls from the other's body?
    std::set<BasicBlock *> ABody(A->blocks().begin(), A->blocks().end());
    for (Function *F : FA.callGraph().reachableFromBlocks(ABody))
      if (F == B->header()->parent())
        return true;
    std::set<BasicBlock *> BBody(B->blocks().begin(), B->blocks().end());
    for (Function *F : FA.callGraph().reachableFromBlocks(BBody))
      if (F == A->header()->parent())
        return true;
    return false;
  };

  auto HeapsConflict = [](const HeapAssignment &A, const HeapAssignment &B) {
    for (const auto &[O, K] : A.ObjectHeaps) {
      auto It = B.ObjectHeaps.find(O);
      if (It != B.ObjectHeaps.end() && It->second != K)
        return true;
    }
    return false;
  };

  std::vector<HeapAssignment> Selected;
  for (const HeapAssignment *HA : Order) {
    bool Compatible = true;
    for (const HeapAssignment &S : Selected) {
      if (MayBeSimultaneouslyActive(HA->TheLoop, S.TheLoop) ||
          HeapsConflict(*HA, S)) {
        Compatible = false;
        break;
      }
    }
    if (Compatible)
      Selected.push_back(*HA);
  }
  return Selected;
}
