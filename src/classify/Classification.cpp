//===- classify/Classification.cpp ----------------------------------------===//

#include "classify/Classification.h"

#include <algorithm>

using namespace privateer;
using namespace privateer::classify;
using namespace privateer::analysis;
using namespace privateer::profiling;
using namespace privateer::ir;

namespace {

/// All instructions executed by the loop: its body blocks plus every
/// function reachable through calls from them ("if I is of the form
/// r := call f(...) then recur on f", Algorithm 2).
std::vector<const Instruction *> loopInstructions(const Loop &L,
                                                  const FunctionAnalyses &FA) {
  std::vector<const Instruction *> Out;
  for (BasicBlock *B : L.blocks())
    for (const auto &I : B->instructions())
      Out.push_back(I.get());
  std::set<BasicBlock *> Body(L.blocks().begin(), L.blocks().end());
  for (Function *F : FA.callGraph().reachableFromBlocks(Body))
    for (const auto &B : F->blocks())
      for (const auto &I : B->instructions())
        Out.push_back(I.get());
  return Out;
}

bool isReduxOpcode(Opcode Op) {
  return Op == Opcode::Add || Op == Opcode::FAdd || Op == Opcode::Mul ||
         Op == Opcode::FMul;
}

/// Recognizes the syntactic reduction pattern of Algorithm 2: a store of
/// `v = op(r, x)` back through the same pointer SSA value a load `r` used,
/// with an associative and commutative `op`.
bool isReductionPair(const Instruction *Store, const Instruction **LoadOut) {
  Value *V = Store->operand(0);
  Value *P = Store->operand(1);
  if (V->kind() != ValueKind::Instruction)
    return false;
  auto *Op = static_cast<Instruction *>(V);
  if (!isReduxOpcode(Op->opcode()))
    return false;
  for (unsigned A = 0; A < 2; ++A) {
    Value *Side = Op->operand(A);
    if (Side->kind() != ValueKind::Instruction)
      continue;
    auto *Ld = static_cast<Instruction *>(Side);
    if (Ld->opcode() == Opcode::Load && Ld->operand(0) == P &&
        Ld->accessBytes() == Store->accessBytes()) {
      *LoadOut = Ld;
      return true;
    }
  }
  return false;
}

/// Instruction-level footprint for the dependence-refinement loop of
/// Algorithm 1: (Ra, Wa, Xa) of one instruction.
struct InstFootprint {
  std::set<ObjectKey> R, W, X;
};

InstFootprint instFootprint(const Instruction *I, const Footprint &Fp,
                            const Profile &P) {
  InstFootprint Out;
  const std::set<ObjectKey> &Objs = P.objectsAccessedBy(I);
  if (Fp.ReduxAccesses.count(I)) {
    Out.X = Objs;
    return Out;
  }
  if (I->opcode() == Opcode::Load)
    Out.R = Objs;
  else if (I->opcode() == Opcode::Store)
    Out.W = Objs;
  return Out;
}

std::set<ObjectKey> setUnion(const std::set<ObjectKey> &A,
                             const std::set<ObjectKey> &B) {
  std::set<ObjectKey> Out = A;
  Out.insert(B.begin(), B.end());
  return Out;
}

std::set<ObjectKey> setIntersect(const std::set<ObjectKey> &A,
                                 const std::set<ObjectKey> &B) {
  std::set<ObjectKey> Out;
  std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                        std::inserter(Out, Out.begin()));
  return Out;
}

void setSubtract(std::set<ObjectKey> &A, const std::set<ObjectKey> &B) {
  for (const ObjectKey &K : B)
    A.erase(K);
}

} // namespace

Footprint classify::getFootprint(const Loop &L, const FunctionAnalyses &FA,
                                 const Profile &P) {
  Footprint Out;
  std::vector<const Instruction *> Insts = loopInstructions(L, FA);
  std::set<const Instruction *> InLoop(Insts.begin(), Insts.end());

  // Recognize reduction pairs first.
  for (const Instruction *I : Insts) {
    if (I->opcode() != Opcode::Store)
      continue;
    const Instruction *Ld = nullptr;
    if (isReductionPair(I, &Ld) && InLoop.count(Ld)) {
      Out.ReduxAccesses.insert(I);
      Out.ReduxAccesses.insert(Ld);
      const auto &Objs = P.objectsAccessedBy(I);
      Out.Redux.insert(Objs.begin(), Objs.end());
      const auto &LdObjs = P.objectsAccessedBy(Ld);
      Out.Redux.insert(LdObjs.begin(), LdObjs.end());
    }
  }
  // Remaining accesses populate the read and write footprints.
  for (const Instruction *I : Insts) {
    if (Out.ReduxAccesses.count(I))
      continue;
    const auto &Objs = P.objectsAccessedBy(I);
    if (I->opcode() == Opcode::Load)
      Out.Read.insert(Objs.begin(), Objs.end());
    else if (I->opcode() == Opcode::Store)
      Out.Write.insert(Objs.begin(), Objs.end());
  }
  return Out;
}

HeapAssignment classify::classifyLoop(const Loop &L,
                                      const FunctionAnalyses &FA,
                                      const Profile &P,
                                      const std::set<FlowDep> *CoveredDeps) {
  HeapAssignment HA;
  HA.TheLoop = &L;
  HA.Fp = getFootprint(L, FA, P);
  const Footprint &Fp = HA.Fp;

  // Short-lived: allocated and freed within one iteration of L.
  std::set<ObjectKey> ShortLived;
  for (const ObjectKey &O : setUnion(Fp.Read, Fp.Write))
    if (P.isShortLived(O, &L))
      ShortLived.insert(O);
  for (const ObjectKey &O : Fp.Redux)
    if (P.isShortLived(O, &L))
      ShortLived.insert(O);

  // Reduction heap: objects accessed *only* through reduction operations.
  // (The paper's Algorithm 1 pseudo-code tests membership in the
  // read/write footprints, but §4.2's prose — "If the compiler does not
  // expect an object in the reduction set to be accessed by loads or
  // stores elsewhere in the loop" — makes the intent clear; the
  // conference text's condition appears to have lost a negation.)
  std::set<ObjectKey> Redux;
  for (const ObjectKey &O : Fp.Redux)
    if (!Fp.Read.count(O) && !Fp.Write.count(O) && !ShortLived.count(O))
      Redux.insert(O);

  // Cross-iteration flow dependences: privatization cannot remove them;
  // value prediction sometimes can (§4.3 refinement, used by dijkstra's
  // empty-queue speculation).
  std::set<ObjectKey> Unrestricted;
  std::map<std::pair<const GlobalVariable *, uint64_t>, ValuePrediction>
      Preds;
  for (const FlowDep &D : P.crossIterationFlowDeps(&L)) {
    // DOACROSS carve-out: dependences the token-forwarding rewrite covers
    // are satisfied by the rings, not by memory; their objects privatize
    // normally (the store still merges by timestamp at commit).
    if (CoveredDeps && CoveredDeps->count(D)) {
      HA.Notes.push_back("flow dep %" + D.Src->name() + " -> %" +
                         D.Dst->name() + " forwarded by doacross tokens");
      continue;
    }
    InstFootprint A = instFootprint(D.Src, Fp, P);
    InstFootprint B = instFootprint(D.Dst, Fp, P);
    std::set<ObjectKey> F = setIntersect(setUnion(A.W, A.X),
                                         setUnion(B.R, B.X));
    setSubtract(F, ShortLived);
    setSubtract(F, Redux);
    if (F.empty())
      continue;

    // Value-prediction refinement: if the consuming load's first read per
    // iteration is a constant at a statically known address, speculate it
    // and drop the dependence (the runtime still validates).
    if (const PredictableLoad *PL = P.predictableFirstRead(D.Dst, &L)) {
      const GlobalVariable *G = nullptr;
      uint64_t Offset = 0;
      for (const ObjectKey &O : P.objectsAccessedBy(D.Dst))
        if (O.Global && PL->Address >= P.globalBase(O.Global) &&
            PL->Address + PL->Bytes <=
                P.globalBase(O.Global) + O.Global->sizeBytes()) {
          G = O.Global;
          Offset = PL->Address - P.globalBase(O.Global);
          break;
        }
      if (G) {
        auto [It, Inserted] = Preds.try_emplace(
            {G, Offset},
            ValuePrediction{D.Dst, G, Offset, PL->Bytes, PL->Value});
        if (Inserted || (It->second.Value == PL->Value &&
                         It->second.Bytes == PL->Bytes)) {
          HA.Notes.push_back("value-predicted @" + G->name() + "+" +
                             std::to_string(Offset) + " == " +
                             std::to_string(PL->Value));
          continue;
        }
      }
    }
    Unrestricted.insert(F.begin(), F.end());
  }

  // Private: everything else written.  Read-only: everything else read.
  std::set<ObjectKey> Private = Fp.Write;
  setSubtract(Private, ShortLived);
  setSubtract(Private, Unrestricted);
  setSubtract(Private, Redux);
  std::set<ObjectKey> ReadOnly = Fp.Read;
  setSubtract(ReadOnly, ShortLived);
  setSubtract(ReadOnly, Unrestricted);
  setSubtract(ReadOnly, Redux);
  setSubtract(ReadOnly, Private);

  for (const ObjectKey &O : ShortLived)
    HA.ObjectHeaps[O] = HeapKind::ShortLived;
  for (const ObjectKey &O : Redux)
    HA.ObjectHeaps[O] = HeapKind::Redux;
  for (const ObjectKey &O : Unrestricted)
    HA.ObjectHeaps[O] = HeapKind::Unrestricted;
  for (const ObjectKey &O : Private)
    HA.ObjectHeaps[O] = HeapKind::Private;
  for (const ObjectKey &O : ReadOnly)
    HA.ObjectHeaps[O] = HeapKind::ReadOnly;

  for (const auto &[GO, Pred] : Preds) {
    (void)GO;
    HA.Predictions.push_back(Pred);
  }

  // Record each reduction object's element type and operator for runtime
  // registration: taken from the store half of its load-op-store pattern.
  for (const Instruction *I : Fp.ReduxAccesses) {
    if (I->opcode() != Opcode::Store)
      continue;
    auto *Op = static_cast<const Instruction *>(I->operand(0));
    bool IsFloat =
        Op->opcode() == Opcode::FAdd || Op->opcode() == Opcode::FMul;
    bool IsMul =
        Op->opcode() == Opcode::Mul || Op->opcode() == Opcode::FMul;
    ReduxElem Elem = I->accessBytes() == 8
                         ? (IsFloat ? ReduxElem::F64 : ReduxElem::I64)
                         : (IsFloat ? ReduxElem::F32 : ReduxElem::I32);
    ReduxOp ROp = IsMul ? ReduxOp::Mul : ReduxOp::Add;
    for (const ObjectKey &O : P.objectsAccessedBy(I))
      if (Redux.count(O))
        HA.ReduxOps[O] = {Elem, ROp};
  }
  HA.Parallelizable = Unrestricted.empty();
  if (!HA.Parallelizable)
    HA.Notes.push_back("unrestricted objects remain: " +
                       std::to_string(Unrestricted.size()));
  return HA;
}

std::vector<HeapAssignment>
classify::selectLoops(const std::vector<HeapAssignment> &Candidates,
                      const FunctionAnalyses &FA, const Profile &P) {
  // Heaviest (by profiled weight) parallelizable loops first.
  std::vector<const HeapAssignment *> Order;
  for (const HeapAssignment &HA : Candidates)
    if (HA.Parallelizable)
      Order.push_back(&HA);
  std::sort(Order.begin(), Order.end(),
            [&](const HeapAssignment *A, const HeapAssignment *B) {
              return P.loopStats(A->TheLoop).Weight >
                     P.loopStats(B->TheLoop).Weight;
            });

  auto MayBeSimultaneouslyActive = [&](const Loop *A, const Loop *B) {
    // Nested in the same function?
    for (BasicBlock *Blk : A->blocks())
      if (B->contains(Blk))
        return true;
    for (BasicBlock *Blk : B->blocks())
      if (A->contains(Blk))
        return true;
    // Or reachable through calls from the other's body?
    std::set<BasicBlock *> ABody(A->blocks().begin(), A->blocks().end());
    for (Function *F : FA.callGraph().reachableFromBlocks(ABody))
      if (F == B->header()->parent())
        return true;
    std::set<BasicBlock *> BBody(B->blocks().begin(), B->blocks().end());
    for (Function *F : FA.callGraph().reachableFromBlocks(BBody))
      if (F == A->header()->parent())
        return true;
    return false;
  };

  auto HeapsConflict = [](const HeapAssignment &A, const HeapAssignment &B) {
    for (const auto &[O, K] : A.ObjectHeaps) {
      auto It = B.ObjectHeaps.find(O);
      if (It != B.ObjectHeaps.end() && It->second != K)
        return true;
    }
    return false;
  };

  std::vector<HeapAssignment> Selected;
  for (const HeapAssignment *HA : Order) {
    bool Compatible = true;
    for (const HeapAssignment &S : Selected) {
      if (MayBeSimultaneouslyActive(HA->TheLoop, S.TheLoop) ||
          HeapsConflict(*HA, S)) {
        Compatible = false;
        break;
      }
    }
    if (Compatible)
      Selected.push_back(*HA);
  }
  return Selected;
}
