//===- classify/Classification.h - Heap assignment --------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §4.2: getFootprint (Algorithm 2) and classify (Algorithm 1),
/// partitioning a hot loop's memory footprint across the five logical
/// heaps — private, reduction, short-lived, read-only, unrestricted —
/// refined by value prediction (§4.3: "dependences are refined with
/// standard rules for value prediction"), plus the loop selection step.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_CLASSIFY_CLASSIFICATION_H
#define PRIVATEER_CLASSIFY_CLASSIFICATION_H

#include "analysis/FunctionAnalyses.h"
#include "profiling/Profile.h"
#include "runtime/Reduction.h"

namespace privateer {
namespace classify {

/// A recognized commutative-update cluster: a load-op-store of the same
/// address that the reduction recognizer rejects (recomputed pointer,
/// bitwise operator, or a min/max compare+select).  If every access to an
/// object is such a cluster with one agreed operator, the object can live
/// on the commutative heap and the privatizer folds each cluster into a
/// single ComUpdate instruction.
struct ComCluster {
  const ir::Instruction *Load = nullptr;
  const ir::Instruction *Store = nullptr;
  /// The combining instruction: a binop (pattern A) or the select of a
  /// compare+select min/max (pattern B, where Cmp is the icmp).
  const ir::Instruction *Combine = nullptr;
  const ir::Instruction *Cmp = nullptr;
  ir::Value *X = nullptr; ///< The folded-in operand (independent of Load).
  ComOp Op = ComOp::Add;
};

/// Per-loop footprints of Algorithm 2, as sets of object names.
struct Footprint {
  std::set<profiling::ObjectKey> Read;
  std::set<profiling::ObjectKey> Write;
  std::set<profiling::ObjectKey> Redux;
  /// Objects touched by commutative-update clusters (candidates for
  /// HeapKind::Commutative; rejected ones fall back to Read/Write).
  std::set<profiling::ObjectKey> Com;
  /// Loads/stores recognized as parts of reduction (load-op-store)
  /// patterns; the transformation skips privacy checks for them.
  std::set<const ir::Instruction *> ReduxAccesses;
  /// Loads/stores belonging to commutative-update clusters.
  std::set<const ir::Instruction *> ComAccesses;
  std::vector<ComCluster> ComClusters;
};

/// A value prediction the transformation must install: the first read of
/// this address each iteration is speculated to be \p Value (Figure 2b
/// lines 78-80 for dijkstra's empty queue).
struct ValuePrediction {
  const ir::Instruction *Load;
  const ir::GlobalVariable *Global; ///< Base object (statically known).
  uint64_t Offset;                  ///< Byte offset within the global.
  uint64_t Bytes;
  int64_t Value;
};

/// The result of classify(L) (Algorithm 1): a heap assignment.
struct HeapAssignment {
  const analysis::Loop *TheLoop = nullptr;
  std::map<profiling::ObjectKey, HeapKind> ObjectHeaps;
  std::vector<ValuePrediction> Predictions;
  /// Element type and operator of each reduction-heap object, for runtime
  /// registration (identity init + checkpoint combine).
  std::map<profiling::ObjectKey, std::pair<ReduxElem, ReduxOp>> ReduxOps;
  /// Operator and element width of each commutative-heap object (every
  /// cluster on the object agrees on both; mixed objects are rejected).
  std::map<profiling::ObjectKey, std::pair<ComOp, uint8_t>> ComOps;
  /// The clusters the privatizer must fold into ComUpdate instructions —
  /// only those whose every touched object classified Commutative.
  std::vector<ComCluster> ComClusters;
  Footprint Fp;

  /// True when no object is unrestricted: every profiled cross-iteration
  /// dependence was removed by privatization, reduction, short-lived
  /// lifetime, or value prediction.
  bool Parallelizable = false;
  std::vector<std::string> Notes;

  /// Set by the pipeline when the DOACROSS pre-pass rewrote this loop:
  /// token channels the runtime must map, the smallest forwarded
  /// distance (the loop's pipeline slack), and loads whose privacy
  /// checks the privatizer must elide (the pre-loop fallback arm of a
  /// forwarding select reads private-heap bytes that are deliberately
  /// discarded, and must not be validated).
  uint32_t DoacrossChannels = 0;
  uint64_t DoacrossMinDistance = 0;
  std::set<const ir::Instruction *> PrivacyElides;

  std::set<profiling::ObjectKey> objectsIn(HeapKind K) const {
    std::set<profiling::ObjectKey> Out;
    for (const auto &[O, H] : ObjectHeaps)
      if (H == K)
        Out.insert(O);
    return Out;
  }
};

/// Algorithm 2 over the loop body and everything reachable through calls.
Footprint getFootprint(const analysis::Loop &L,
                       const analysis::FunctionAnalyses &FA,
                       const profiling::Profile &P);

/// Algorithm 1 plus value-prediction refinement.  \p CoveredDeps names
/// profiled flow dependences the DOACROSS pre-pass forwards through token
/// rings; they are carved out of the unrestricted set.  When
/// \p EnableCommutative is false, recognized commutative clusters fall
/// back into the ordinary footprints and classify as the paper's five
/// classes would (typically private — the A/B arm of the bench gate).
HeapAssignment classifyLoop(const analysis::Loop &L,
                            const analysis::FunctionAnalyses &FA,
                            const profiling::Profile &P,
                            const std::set<profiling::FlowDep> *CoveredDeps =
                                nullptr,
                            bool EnableCommutative = true);

/// §4.3 selection: among \p Candidates, keep parallelizable canonical
/// loops, drop loops incompatible with a heavier selection (simultaneously
/// active, or assigning one object to different heaps), and return the
/// chosen assignments ordered by descending profiled weight.
std::vector<HeapAssignment>
selectLoops(const std::vector<HeapAssignment> &Candidates,
            const analysis::FunctionAnalyses &FA,
            const profiling::Profile &P);

} // namespace classify
} // namespace privateer

#endif // PRIVATEER_CLASSIFY_CLASSIFICATION_H
