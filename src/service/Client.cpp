//===- service/Client.cpp -------------------------------------------------===//

#include "service/Client.h"

#include "support/Timing.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <random>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace privateer;
using namespace privateer::service;

bool Client::connect(const std::string &Path, std::string &Err,
                     double TimeoutSec) {
  close();
  SocketPath = Path;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + SocketPath;
    return false;
  }
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);

  double Deadline = wallSeconds() + TimeoutSec;
  while (true) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Fd < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0) {
      // v4 handshake: announce tenant + capabilities.  A plain anonymous
      // in-band client skips it and is indistinguishable from v2/v3.
      if (!Tenant.empty() || UseMemfd) {
        std::string HErr;
        if (!sendHello(HErr)) {
          // A daemon that cannot answer Hello still serves submissions;
          // degrade to the in-band anonymous path rather than failing.
          MemfdNegotiated = false;
        }
      }
      return true;
    }
    int E = errno;
    ::close(Fd);
    Fd = -1;
    if (wallSeconds() >= Deadline) {
      Err = "connect " + SocketPath + ": " + std::strerror(E);
      return false;
    }
    ::usleep(20'000); // daemon may still be binding
  }
}

void Client::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
  MemfdNegotiated = false;
}

bool Client::sendHello(std::string &Err) {
  HelloRequest H;
  H.Version = kProtocolVersion;
  H.TenantId = Tenant;
  H.WantMemfd = UseMemfd;
  std::string ReplyBody;
  if (!roundTrip(MsgType::Hello, encodeHello(H), MsgType::HelloReply,
                 ReplyBody, Err, 5 * timeoutScale()))
    return false;
  HelloReply HR;
  if (!decodeHelloReply(ReplyBody, HR, Err))
    return false;
  MemfdNegotiated = UseMemfd && HR.MemfdOk;
  return true;
}

Client::RtStatus Client::roundTripStatus(MsgType Send,
                                         const std::string &Body,
                                         MsgType Expect,
                                         std::string &ReplyBody,
                                         std::string &Err,
                                         double TimeoutSec, const int *Fds,
                                         size_t NumFds) {
  if (Fd < 0) {
    Err = "not connected";
    return RtStatus::Transport;
  }
  bool Sent = NumFds > 0 ? writeFrameWithFds(Fd, Send, Body, Fds, NumFds, Err)
                         : writeFrame(Fd, Send, Body, Err);
  if (!Sent)
    return RtStatus::Transport;
  MsgType Type;
  ReadStatus S = readFrame(Fd, Type, ReplyBody, Err, TimeoutSec);
  if (S == ReadStatus::Eof) {
    Err = "daemon closed the connection";
    return RtStatus::Transport;
  }
  if (S == ReadStatus::Timeout) {
    Err = "timed out waiting for reply";
    return RtStatus::Fatal;
  }
  if (S != ReadStatus::Ok)
    return RtStatus::Transport;
  if (Type == MsgType::Error) {
    Err = "daemon: " + ReplyBody;
    return RtStatus::Fatal;
  }
  if (Type != Expect) {
    Err = "unexpected reply frame type " +
          std::to_string(static_cast<unsigned>(Type));
    return RtStatus::Fatal;
  }
  return RtStatus::Ok;
}

bool Client::roundTrip(MsgType Send, const std::string &Body, MsgType Expect,
                       std::string &ReplyBody, std::string &Err,
                       double TimeoutSec) {
  return roundTripStatus(Send, Body, Expect, ReplyBody, Err, TimeoutSec) ==
         RtStatus::Ok;
}

uint64_t Client::nextRand() {
  if (RngState == 0) {
    std::random_device Rd;
    RngState = (static_cast<uint64_t>(Rd()) << 32) ^ Rd() ^
               (static_cast<uint64_t>(::getpid()) << 16) ^
               static_cast<uint64_t>(wallSeconds() * 1e6);
    if (RngState == 0)
      RngState = 0x9e3779b97f4a7c15ULL;
  }
  // splitmix64
  RngState += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = RngState;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

bool Client::submit(const JobRequest &Req, JobReply &Reply, std::string &Err,
                    double TimeoutSec) {
  // Stamp an idempotency key so a resubmission after a lost reply replays
  // the remembered answer instead of executing twice.  The caller's own
  // key (if any) is respected.
  JobRequest Stamped = Req;
  if (Retry.Enabled && Stamped.IdempotencyKey == 0) {
    Stamped.IdempotencyKey = nextRand();
    if (Stamped.IdempotencyKey == 0)
      Stamped.IdempotencyKey = 1;
  }
  if (Stamped.TenantId.empty())
    Stamped.TenantId = Tenant;
  const std::string Body = encodeJobRequest(Stamped);

  // Zero-copy alternative: the module text sealed in a memfd, the frame
  // body carrying everything else.  Built lazily on the first attempt
  // that has the capability; the fd survives retries (SCM_RIGHTS dups it
  // into the kernel per send), and any attempt on a connection that lost
  // the negotiation falls back to the in-band body.
  int ModuleFd = -1;
  std::string MemfdBody;
  struct FdGuard {
    int &Fd;
    ~FdGuard() {
      if (Fd >= 0)
        ::close(Fd);
    }
  } Guard{ModuleFd};

  double Budget = Retry.Enabled && Retry.BudgetSec > 0
                      ? wallSeconds() + Retry.BudgetSec * timeoutScale()
                      : 0;
  double Backoff = Retry.InitialBackoffSec;
  unsigned Attempt = 0;
  while (true) {
    ++Attempt;
    bool ViaMemfd = MemfdNegotiated;
    if (ViaMemfd && ModuleFd < 0) {
      std::string MErr;
      ModuleFd = sealedMemfd("privateer-module", Stamped.ModuleText.data(),
                             Stamped.ModuleText.size(), MErr);
      if (ModuleFd >= 0) {
        JobRequest Slim = Stamped;
        Slim.ModuleText.clear();
        Slim.Submit = static_cast<uint8_t>(SubmitMode::Memfd);
        MemfdBody = encodeJobRequest(Slim);
      } else {
        ViaMemfd = false; // no memfd support here: stay in-band
      }
    }
    std::string ReplyBody;
    RtStatus S = RtStatus::Transport;
    if (Fd >= 0) {
      if (ViaMemfd && ModuleFd >= 0) {
        S = roundTripStatus(MsgType::SubmitJob, MemfdBody,
                            MsgType::JobResult, ReplyBody, Err, TimeoutSec,
                            &ModuleFd, 1);
        if (S == RtStatus::Ok)
          ++MemfdSubmits;
      } else {
        S = roundTripStatus(MsgType::SubmitJob, Body, MsgType::JobResult,
                            ReplyBody, Err, TimeoutSec);
      }
    }
    if (S == RtStatus::Ok)
      return decodeJobReply(ReplyBody, Reply, Err);
    if (S == RtStatus::Fatal || !Retry.Enabled || SocketPath.empty())
      return false;
    if (Attempt >= Retry.MaxAttempts ||
        (Budget > 0 && wallSeconds() >= Budget)) {
      Err = "submit failed after " + std::to_string(Attempt) +
            " attempt(s): " + Err;
      return false;
    }
    // Capped exponential backoff with +/-50% jitter, then reconnect.
    double Sleep =
        Backoff * (0.5 + static_cast<double>(nextRand() % 1000) / 1000.0);
    if (Budget > 0)
      Sleep = std::min(Sleep, std::max(0.0, Budget - wallSeconds()));
    if (Sleep > 0)
      ::usleep(static_cast<useconds_t>(Sleep * 1e6));
    Backoff = std::min(Backoff * 2, Retry.MaxBackoffSec);
    ++Reconnects;
    double Window = Retry.ReconnectSec;
    if (Budget > 0)
      Window = std::min(Window, std::max(0.05, Budget - wallSeconds()));
    std::string CErr;
    std::string Path = SocketPath; // connect() resets members via close()
    if (!connect(Path, CErr, Window))
      Err = "reconnect: " + CErr;
  }
}

bool Client::status(std::string &Json, std::string &Err, double TimeoutSec) {
  return roundTrip(MsgType::StatusRequest, "", MsgType::StatusReply, Json,
                   Err, TimeoutSec);
}

bool Client::drain(std::string &Err, double TimeoutSec) {
  std::string Body;
  return roundTrip(MsgType::Drain, "", MsgType::Ack, Body, Err, TimeoutSec);
}

bool Client::shutdownServer(std::string &Err, double TimeoutSec) {
  std::string Body;
  return roundTrip(MsgType::Shutdown, "", MsgType::Ack, Body, Err,
                   TimeoutSec);
}
