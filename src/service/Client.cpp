//===- service/Client.cpp -------------------------------------------------===//

#include "service/Client.h"

#include "support/Timing.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace privateer;
using namespace privateer::service;

bool Client::connect(const std::string &SocketPath, std::string &Err,
                     double TimeoutSec) {
  close();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + SocketPath;
    return false;
  }
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);

  double Deadline = wallSeconds() + TimeoutSec;
  while (true) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Fd < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0)
      return true;
    int E = errno;
    ::close(Fd);
    Fd = -1;
    if (wallSeconds() >= Deadline) {
      Err = "connect " + SocketPath + ": " + std::strerror(E);
      return false;
    }
    ::usleep(20'000); // daemon may still be binding
  }
}

void Client::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}

bool Client::roundTrip(MsgType Send, const std::string &Body, MsgType Expect,
                       std::string &ReplyBody, std::string &Err,
                       double TimeoutSec) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  if (!writeFrame(Fd, Send, Body, Err))
    return false;
  MsgType Type;
  ReadStatus S = readFrame(Fd, Type, ReplyBody, Err, TimeoutSec);
  if (S == ReadStatus::Eof) {
    Err = "daemon closed the connection";
    return false;
  }
  if (S == ReadStatus::Timeout) {
    Err = "timed out waiting for reply";
    return false;
  }
  if (S != ReadStatus::Ok)
    return false;
  if (Type == MsgType::Error) {
    Err = "daemon: " + ReplyBody;
    return false;
  }
  if (Type != Expect) {
    Err = "unexpected reply frame type " +
          std::to_string(static_cast<unsigned>(Type));
    return false;
  }
  return true;
}

bool Client::submit(const JobRequest &Req, JobReply &Reply, std::string &Err,
                    double TimeoutSec) {
  std::string Body;
  if (!roundTrip(MsgType::SubmitJob, encodeJobRequest(Req),
                 MsgType::JobResult, Body, Err, TimeoutSec))
    return false;
  return decodeJobReply(Body, Reply, Err);
}

bool Client::status(std::string &Json, std::string &Err, double TimeoutSec) {
  return roundTrip(MsgType::StatusRequest, "", MsgType::StatusReply, Json,
                   Err, TimeoutSec);
}

bool Client::drain(std::string &Err, double TimeoutSec) {
  std::string Body;
  return roundTrip(MsgType::Drain, "", MsgType::Ack, Body, Err, TimeoutSec);
}

bool Client::shutdownServer(std::string &Err, double TimeoutSec) {
  std::string Body;
  return roundTrip(MsgType::Shutdown, "", MsgType::Ack, Body, Err,
                   TimeoutSec);
}
