//===- service/Protocol.cpp -----------------------------------------------===//

#include "service/Protocol.h"

#include "runtime/Runtime.h"
#include "support/Timing.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

using namespace privateer;
using namespace privateer::service;

const char *service::jobStatusName(JobStatus S) {
  switch (S) {
  case JobStatus::Ok:
    return "ok";
  case JobStatus::Rejected:
    return "rejected";
  case JobStatus::ParseError:
    return "parse-error";
  case JobStatus::NotParallelizable:
    return "not-parallelizable";
  case JobStatus::Crashed:
    return "crashed";
  case JobStatus::TimedOut:
    return "timed-out";
  case JobStatus::Canceled:
    return "canceled";
  case JobStatus::Draining:
    return "draining";
  case JobStatus::InternalError:
    return "internal-error";
  case JobStatus::ResourceLimit:
    return "resource-limit";
  }
  return "unknown";
}

const char *service::failureCauseName(FailureCause C) {
  switch (C) {
  case FailureCause::None:
    return "none";
  case FailureCause::Deadline:
    return "deadline";
  case FailureCause::ClientGone:
    return "client-gone";
  case FailureCause::OutOfMemory:
    return "out-of-memory";
  case FailureCause::CpuLimit:
    return "cpu-limit";
  case FailureCause::Signal:
    return "signal";
  case FailureCause::NonzeroExit:
    return "nonzero-exit";
  case FailureCause::InfraFork:
    return "infra-fork";
  case FailureCause::ResultTruncated:
    return "result-truncated";
  case FailureCause::Shutdown:
    return "shutdown";
  }
  return "unknown";
}

// --- Flat field encoding -------------------------------------------------

namespace {

void putU8(std::string &B, uint8_t V) { B.push_back(static_cast<char>(V)); }

void putU32(std::string &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putF64(std::string &B, double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  putU64(B, Bits);
}

void putStr(std::string &B, const std::string &S) {
  putU32(B, static_cast<uint32_t>(S.size()));
  B.append(S);
}

/// Bounds-checked sequential reader over a body.  Every get* returns
/// false once the body is exhausted, so truncated frames decode to a
/// clean error rather than UB.
struct Cursor {
  const uint8_t *P;
  size_t Left;

  explicit Cursor(const std::string &B)
      : P(reinterpret_cast<const uint8_t *>(B.data())), Left(B.size()) {}

  bool getU8(uint8_t &V) {
    if (Left < 1)
      return false;
    V = *P++;
    --Left;
    return true;
  }

  bool getU32(uint32_t &V) {
    if (Left < 4)
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(P[I]) << (8 * I);
    P += 4;
    Left -= 4;
    return true;
  }

  bool getU64(uint64_t &V) {
    if (Left < 8)
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(P[I]) << (8 * I);
    P += 8;
    Left -= 8;
    return true;
  }

  bool getF64(double &V) {
    uint64_t Bits;
    if (!getU64(Bits))
      return false;
    std::memcpy(&V, &Bits, sizeof(V));
    return true;
  }

  bool getStr(std::string &S) {
    uint32_t Len;
    if (!getU32(Len) || Left < Len)
      return false;
    S.assign(reinterpret_cast<const char *>(P), Len);
    P += Len;
    Left -= Len;
    return true;
  }
};

} // namespace

std::string service::encodeJobRequest(const JobRequest &R) {
  std::string B;
  putU8(B, kProtocolVersion);
  putStr(B, R.ModuleText);
  putU8(B, static_cast<uint8_t>(R.Mode));
  putU8(B, R.Engine); // v3+

  putU32(B, R.NumWorkers);
  putU64(B, R.CheckpointPeriod);
  putU64(B, R.MaxSlotsPerEpoch);
  putF64(B, R.InjectMisspecRate);
  putU64(B, R.InjectSeed);
  putU8(B, R.EagerCommit ? 1 : 0);
  putF64(B, R.StallTimeoutSec);
  putF64(B, R.DeadlineSec);
  putStr(B, R.TracePath);
  putU64(B, R.IdempotencyKey);
  putU64(B, R.MaxMemoryBytes);
  putU32(B, R.MaxCpuSec);
  putU32(B, R.MaxOpenFiles);
  putU8(B, R.FaultKillSupervisor ? 1 : 0);
  putU32(B, R.FaultKillWorker);
  putU64(B, R.FaultKillAtIter);
  putU32(B, R.FaultStallWorker);
  putU64(B, R.FaultStallAtIter);
  putF64(B, R.FaultStallSeconds);
  putF64(B, R.FaultKillRate);
  putU64(B, R.FaultSeed);
  putU32(B, R.FaultSupervisorSignal);
  putU32(B, R.FaultSupervisorExit);
  putU32(B, R.FaultOomAttempts);
  putU64(B, R.FaultAllocBytes);
  putF64(B, R.FaultBurnCpuSec);
  putStr(B, R.TenantId); // v4+
  putU8(B, R.Submit);    // v4+
  putU8(B, R.Strat);     // v5+
  putU32(B, R.NumStages); // v5+
  return B;
}

bool service::decodeJobRequest(const std::string &Body, JobRequest &R,
                               std::string &Err) {
  Cursor C(Body);
  uint8_t Version = 0, Mode = 0, Eager = 0, KillSup = 0;
  if (!C.getU8(Version)) {
    Err = "empty SubmitJob body";
    return false;
  }
  // Version-gated decode: fields appended by later protocol revisions are
  // simply absent from older bodies and keep their defaults, so a v2 or v3
  // client's submission still lands (in-band, anonymous tenant).
  if (Version < kMinProtocolVersion || Version > kProtocolVersion) {
    Err = "unsupported protocol version " + std::to_string(Version);
    return false;
  }
  bool Ok = C.getStr(R.ModuleText) && C.getU8(Mode);
  if (Ok && Version >= 3)
    Ok = C.getU8(R.Engine);
  Ok = Ok && C.getU32(R.NumWorkers) &&
       C.getU64(R.CheckpointPeriod) && C.getU64(R.MaxSlotsPerEpoch) &&
       C.getF64(R.InjectMisspecRate) && C.getU64(R.InjectSeed) &&
       C.getU8(Eager) && C.getF64(R.StallTimeoutSec) &&
       C.getF64(R.DeadlineSec) && C.getStr(R.TracePath) &&
       C.getU64(R.IdempotencyKey) && C.getU64(R.MaxMemoryBytes) &&
       C.getU32(R.MaxCpuSec) && C.getU32(R.MaxOpenFiles) &&
       C.getU8(KillSup) && C.getU32(R.FaultKillWorker) &&
       C.getU64(R.FaultKillAtIter) && C.getU32(R.FaultStallWorker) &&
       C.getU64(R.FaultStallAtIter) && C.getF64(R.FaultStallSeconds) &&
       C.getF64(R.FaultKillRate) && C.getU64(R.FaultSeed) &&
       C.getU32(R.FaultSupervisorSignal) && C.getU32(R.FaultSupervisorExit) &&
       C.getU32(R.FaultOomAttempts) && C.getU64(R.FaultAllocBytes) &&
       C.getF64(R.FaultBurnCpuSec);
  if (Ok && Version >= 4)
    Ok = C.getStr(R.TenantId) && C.getU8(R.Submit);
  if (Ok && Version >= 5)
    Ok = C.getU8(R.Strat) && C.getU32(R.NumStages);
  if (!Ok) {
    Err = "truncated SubmitJob body";
    return false;
  }
  if (Mode > static_cast<uint8_t>(JobMode::Sequential)) {
    Err = "bad job mode " + std::to_string(Mode);
    return false;
  }
  if (R.Engine > 1) {
    Err = "bad engine " + std::to_string(R.Engine);
    return false;
  }
  if (R.Submit > static_cast<uint8_t>(SubmitMode::Memfd)) {
    Err = "bad submit mode " + std::to_string(R.Submit);
    return false;
  }
  if (R.Strat > static_cast<uint8_t>(Strategy::Pipeline)) {
    Err = "bad strategy " + std::to_string(R.Strat);
    return false;
  }
  R.Mode = static_cast<JobMode>(Mode);
  R.EagerCommit = Eager != 0;
  R.FaultKillSupervisor = KillSup != 0;
  return true;
}

std::string service::encodeJobReply(const JobReply &R) {
  std::string B;
  putU8(B, kProtocolVersion);
  putU8(B, static_cast<uint8_t>(R.Status));
  putU8(B, static_cast<uint8_t>(R.Cause));
  putU32(B, R.TermSignal);
  putU32(B, R.SupExitCode);
  putU32(B, R.Attempts);
  putU8(B, R.IdempotentReplay ? 1 : 0);
  putStr(B, R.Error);
  putStr(B, R.Output);
  putU64(B, static_cast<uint64_t>(R.ExitValue));
  putU8(B, R.CacheHit ? 1 : 0);
  putU64(B, R.Iterations);
  putU64(B, R.Checkpoints);
  putU64(B, R.Misspecs);
  putU64(B, R.RecoveredIterations);
  putStr(B, R.MisspecReason);
  putF64(B, R.PipelineSec);
  putF64(B, R.ExecSec);
  putF64(B, R.QueueSec);
  putF64(B, R.WallSec);
  putU64(B, R.ComUpdates);
  putU64(B, R.ComRecordsCommitted);
  return B;
}

bool service::decodeJobReply(const std::string &Body, JobReply &R,
                             std::string &Err) {
  Cursor C(Body);
  uint8_t Version = 0, Status = 0, Cause = 0, Replay = 0, CacheHit = 0;
  uint64_t Exit = 0;
  if (!C.getU8(Version)) {
    Err = "empty JobResult body";
    return false;
  }
  // Replies kept the same shape across v2..v4, so any supported version
  // decodes identically (old clients read new daemons and vice versa).
  if (Version < kMinProtocolVersion || Version > kProtocolVersion) {
    Err = "unsupported protocol version " + std::to_string(Version);
    return false;
  }
  if (!C.getU8(Status) || !C.getU8(Cause) || !C.getU32(R.TermSignal) ||
      !C.getU32(R.SupExitCode) || !C.getU32(R.Attempts) ||
      !C.getU8(Replay) || !C.getStr(R.Error) || !C.getStr(R.Output) ||
      !C.getU64(Exit) || !C.getU8(CacheHit) || !C.getU64(R.Iterations) ||
      !C.getU64(R.Checkpoints) || !C.getU64(R.Misspecs) ||
      !C.getU64(R.RecoveredIterations) || !C.getStr(R.MisspecReason) ||
      !C.getF64(R.PipelineSec) || !C.getF64(R.ExecSec) ||
      !C.getF64(R.QueueSec) || !C.getF64(R.WallSec) ||
      !C.getU64(R.ComUpdates) || !C.getU64(R.ComRecordsCommitted)) {
    Err = "truncated JobResult body";
    return false;
  }
  if (Status > static_cast<uint8_t>(JobStatus::ResourceLimit)) {
    Err = "bad job status " + std::to_string(Status);
    return false;
  }
  if (Cause > static_cast<uint8_t>(FailureCause::Shutdown)) {
    Err = "bad failure cause " + std::to_string(Cause);
    return false;
  }
  R.Status = static_cast<JobStatus>(Status);
  R.Cause = static_cast<FailureCause>(Cause);
  R.IdempotentReplay = Replay != 0;
  R.ExitValue = static_cast<int64_t>(Exit);
  R.CacheHit = CacheHit != 0;
  return true;
}

// --- Hello / HelloReply --------------------------------------------------

std::string service::encodeHello(const HelloRequest &H) {
  std::string B;
  putU8(B, H.Version);
  putStr(B, H.TenantId);
  putU8(B, H.WantMemfd ? 1 : 0);
  return B;
}

bool service::decodeHello(const std::string &Body, HelloRequest &H,
                          std::string &Err) {
  Cursor C(Body);
  uint8_t Want = 0;
  if (!C.getU8(H.Version)) {
    Err = "empty Hello body";
    return false;
  }
  if (H.Version < kMinProtocolVersion || H.Version > kProtocolVersion) {
    Err = "unsupported protocol version " + std::to_string(H.Version);
    return false;
  }
  if (!C.getStr(H.TenantId) || !C.getU8(Want)) {
    Err = "truncated Hello body";
    return false;
  }
  H.WantMemfd = Want != 0;
  return true;
}

std::string service::encodeHelloReply(const HelloReply &H) {
  std::string B;
  putU8(B, H.Version);
  putU8(B, H.MemfdOk ? 1 : 0);
  return B;
}

bool service::decodeHelloReply(const std::string &Body, HelloReply &H,
                               std::string &Err) {
  Cursor C(Body);
  uint8_t Ok = 0;
  if (!C.getU8(H.Version) || !C.getU8(Ok)) {
    Err = "truncated HelloReply body";
    return false;
  }
  if (H.Version < kMinProtocolVersion || H.Version > kProtocolVersion) {
    Err = "unsupported protocol version " + std::to_string(H.Version);
    return false;
  }
  H.MemfdOk = Ok != 0;
  return true;
}

// --- ExecAssign ----------------------------------------------------------

std::string service::encodeExecAssign(const ExecAssignment &A) {
  std::string B;
  putU64(B, A.ProgramKey);
  putU64(B, A.Generation);
  putU8(B, A.UseParallel ? 1 : 0);
  putU32(B, A.Attempt);
  putStr(B, encodeJobRequest(A.Req));
  return B;
}

bool service::decodeExecAssign(const std::string &Body, ExecAssignment &A,
                               std::string &Err) {
  Cursor C(Body);
  uint8_t Par = 0;
  std::string ReqBody;
  if (!C.getU64(A.ProgramKey) || !C.getU64(A.Generation) || !C.getU8(Par) ||
      !C.getU32(A.Attempt) || !C.getStr(ReqBody)) {
    Err = "truncated ExecAssign body";
    return false;
  }
  A.UseParallel = Par != 0;
  return decodeJobRequest(ReqBody, A.Req, Err);
}

// --- Frame I/O -----------------------------------------------------------

bool service::writeFrame(int Fd, MsgType Type, const std::string &Body,
                         std::string &Err) {
  std::string Frame;
  Frame.reserve(5 + Body.size());
  putU32(Frame, static_cast<uint32_t>(1 + Body.size()));
  putU8(Frame, static_cast<uint8_t>(Type));
  Frame.append(Body);

  size_t Done = 0;
  while (Done < Frame.size()) {
    // MSG_NOSIGNAL: a peer that died mid-conversation must surface as
    // EPIPE for the reconnect path, not as a process-killing SIGPIPE.
    // Supervisor result pipes are not sockets; fall back to write().
    ssize_t N = ::send(Fd, Frame.data() + Done, Frame.size() - Done,
                       MSG_NOSIGNAL);
    if (N < 0 && errno == ENOTSOCK)
      N = ::write(Fd, Frame.data() + Done, Frame.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Callers use blocking fds; a non-blocking fd that fills mid-frame
        // waits for drain rather than corrupting the stream.
        pollfd P{Fd, POLLOUT, 0};
        ::poll(&P, 1, 100);
        continue;
      }
      Err = std::string("write: ") + std::strerror(errno);
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

bool service::writeFrameWithFds(int Fd, MsgType Type, const std::string &Body,
                                const int *Fds, size_t NumFds,
                                std::string &Err) {
  if (NumFds == 0)
    return writeFrame(Fd, Type, Body, Err);

  std::string Frame;
  Frame.reserve(5 + Body.size());
  putU32(Frame, static_cast<uint32_t>(1 + Body.size()));
  putU8(Frame, static_cast<uint8_t>(Type));
  Frame.append(Body);

  // The SCM_RIGHTS cmsg rides on the first byte only: the kernel delivers
  // the descriptors with whichever recvmsg() consumes that byte, and the
  // receiver's recvWithFds collects them regardless of how the rest of the
  // frame is segmented.
  alignas(cmsghdr) char Ctrl[CMSG_SPACE(sizeof(int) * 8)];
  if (NumFds > 8) {
    Err = "too many fds for one frame";
    return false;
  }
  std::memset(Ctrl, 0, sizeof(Ctrl));
  iovec Iov{const_cast<char *>(Frame.data()), 1};
  msghdr Msg{};
  Msg.msg_iov = &Iov;
  Msg.msg_iovlen = 1;
  Msg.msg_control = Ctrl;
  Msg.msg_controllen = CMSG_SPACE(sizeof(int) * NumFds);
  cmsghdr *Cm = CMSG_FIRSTHDR(&Msg);
  Cm->cmsg_level = SOL_SOCKET;
  Cm->cmsg_type = SCM_RIGHTS;
  Cm->cmsg_len = CMSG_LEN(sizeof(int) * NumFds);
  std::memcpy(CMSG_DATA(Cm), Fds, sizeof(int) * NumFds);

  for (;;) {
    ssize_t N = ::sendmsg(Fd, &Msg, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd P{Fd, POLLOUT, 0};
        ::poll(&P, 1, 100);
        continue;
      }
      Err = std::string("sendmsg: ") + std::strerror(errno);
      return false;
    }
    break;
  }

  // Remainder of the frame goes out as ordinary stream bytes.
  size_t Done = 1;
  while (Done < Frame.size()) {
    ssize_t N = ::send(Fd, Frame.data() + Done, Frame.size() - Done,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd P{Fd, POLLOUT, 0};
        ::poll(&P, 1, 100);
        continue;
      }
      Err = std::string("write: ") + std::strerror(errno);
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

ssize_t service::recvWithFds(int Fd, void *Buf, size_t Len,
                             std::vector<int> &Fds, bool &Truncated) {
  Truncated = false;
  alignas(cmsghdr) char Ctrl[CMSG_SPACE(sizeof(int) * 8)];
  iovec Iov{Buf, Len};
  msghdr Msg{};
  Msg.msg_iov = &Iov;
  Msg.msg_iovlen = 1;
  Msg.msg_control = Ctrl;
  Msg.msg_controllen = sizeof(Ctrl);

  ssize_t N;
  do {
    N = ::recvmsg(Fd, &Msg, MSG_CMSG_CLOEXEC);
  } while (N < 0 && errno == EINTR);
  if (N < 0)
    return N;

  if (Msg.msg_flags & MSG_CTRUNC)
    Truncated = true; // the kernel dropped fds; the stream state is suspect
  for (cmsghdr *Cm = CMSG_FIRSTHDR(&Msg); Cm; Cm = CMSG_NXTHDR(&Msg, Cm)) {
    if (Cm->cmsg_level != SOL_SOCKET || Cm->cmsg_type != SCM_RIGHTS)
      continue;
    size_t Count = (Cm->cmsg_len - CMSG_LEN(0)) / sizeof(int);
    int Got[8];
    std::memcpy(Got, CMSG_DATA(Cm), sizeof(int) * std::min<size_t>(Count, 8));
    for (size_t I = 0; I < Count && I < 8; ++I)
      Fds.push_back(Got[I]);
  }
  return N;
}

int service::sealedMemfd(const char *Name, const void *Data, size_t Bytes,
                         std::string &Err) {
  int MemFd = static_cast<int>(
      ::syscall(SYS_memfd_create, Name, MFD_CLOEXEC | MFD_ALLOW_SEALING));
  if (MemFd < 0) {
    Err = std::string("memfd_create: ") + std::strerror(errno);
    return -1;
  }
  size_t Done = 0;
  const char *P = static_cast<const char *>(Data);
  while (Done < Bytes) {
    ssize_t N = ::write(MemFd, P + Done, Bytes - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("memfd write: ") + std::strerror(errno);
      ::close(MemFd);
      return -1;
    }
    Done += static_cast<size_t>(N);
  }
  if (::fcntl(MemFd, F_ADD_SEALS,
              F_SEAL_SHRINK | F_SEAL_GROW | F_SEAL_WRITE | F_SEAL_SEAL) < 0) {
    Err = std::string("F_ADD_SEALS: ") + std::strerror(errno);
    ::close(MemFd);
    return -1;
  }
  return MemFd;
}

bool service::memfdIsSealed(int MemFd) {
  int Seals = ::fcntl(MemFd, F_GET_SEALS);
  if (Seals < 0)
    return false;
  return (Seals & F_SEAL_WRITE) && (Seals & F_SEAL_SHRINK);
}

ReadStatus service::readFrame(int Fd, MsgType &Type, std::string &Body,
                              std::string &Err, double TimeoutSec,
                              size_t MaxFrame) {
  double Deadline = TimeoutSec > 0 ? wallSeconds() + TimeoutSec : 0;
  auto ReadExact = [&](void *Dst, size_t Len, bool &SawAny) -> ReadStatus {
    size_t Done = 0;
    while (Done < Len) {
      if (Deadline > 0) {
        double Left = Deadline - wallSeconds();
        if (Left <= 0)
          return ReadStatus::Timeout;
        pollfd P{Fd, POLLIN, 0};
        int R = ::poll(&P, 1, static_cast<int>(Left * 1000) + 1);
        if (R < 0 && errno != EINTR) {
          Err = std::string("poll: ") + std::strerror(errno);
          return ReadStatus::Error;
        }
        if (R <= 0)
          continue;
      }
      ssize_t N = ::read(Fd, static_cast<char *>(Dst) + Done, Len - Done);
      if (N < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
          continue;
        Err = std::string("read: ") + std::strerror(errno);
        return ReadStatus::Error;
      }
      if (N == 0) {
        if (!SawAny && Done == 0)
          return ReadStatus::Eof;
        Err = "connection closed mid-frame";
        return ReadStatus::Error;
      }
      SawAny = true;
      Done += static_cast<size_t>(N);
    }
    return ReadStatus::Ok;
  };

  bool SawAny = false;
  uint8_t Hdr[4];
  ReadStatus S = ReadExact(Hdr, 4, SawAny);
  if (S != ReadStatus::Ok)
    return S;
  uint32_t PayloadLen = 0;
  for (int I = 0; I < 4; ++I)
    PayloadLen |= static_cast<uint32_t>(Hdr[I]) << (8 * I);
  if (PayloadLen == 0 || PayloadLen > MaxFrame) {
    Err = "bad frame length " + std::to_string(PayloadLen);
    return ReadStatus::Error;
  }
  uint8_t TypeByte;
  S = ReadExact(&TypeByte, 1, SawAny);
  if (S != ReadStatus::Ok)
    return S == ReadStatus::Eof ? ReadStatus::Error : S;
  Body.resize(PayloadLen - 1);
  if (PayloadLen > 1) {
    S = ReadExact(Body.data(), PayloadLen - 1, SawAny);
    if (S != ReadStatus::Ok)
      return S == ReadStatus::Eof ? ReadStatus::Error : S;
  }
  Type = static_cast<MsgType>(TypeByte);
  return ReadStatus::Ok;
}

FrameAssembler::Result FrameAssembler::next(MsgType &Type, std::string &Body,
                                            std::string &Err) {
  if (Buf.size() < 4)
    return Result::NeedMore;
  uint32_t PayloadLen = 0;
  for (int I = 0; I < 4; ++I)
    PayloadLen |= static_cast<uint32_t>(static_cast<uint8_t>(Buf[I]))
                  << (8 * I);
  if (PayloadLen == 0 || PayloadLen > MaxFrame) {
    Err = "bad frame length " + std::to_string(PayloadLen);
    return Result::Malformed;
  }
  if (Buf.size() < 4 + static_cast<size_t>(PayloadLen))
    return Result::NeedMore;
  Type = static_cast<MsgType>(static_cast<uint8_t>(Buf[4]));
  Body.assign(Buf, 5, PayloadLen - 1);
  Buf.erase(0, 4 + static_cast<size_t>(PayloadLen));
  return Result::Frame;
}
