//===- service/Protocol.cpp -----------------------------------------------===//

#include "service/Protocol.h"

#include "support/Timing.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace privateer;
using namespace privateer::service;

const char *service::jobStatusName(JobStatus S) {
  switch (S) {
  case JobStatus::Ok:
    return "ok";
  case JobStatus::Rejected:
    return "rejected";
  case JobStatus::ParseError:
    return "parse-error";
  case JobStatus::NotParallelizable:
    return "not-parallelizable";
  case JobStatus::Crashed:
    return "crashed";
  case JobStatus::TimedOut:
    return "timed-out";
  case JobStatus::Canceled:
    return "canceled";
  case JobStatus::Draining:
    return "draining";
  case JobStatus::InternalError:
    return "internal-error";
  case JobStatus::ResourceLimit:
    return "resource-limit";
  }
  return "unknown";
}

const char *service::failureCauseName(FailureCause C) {
  switch (C) {
  case FailureCause::None:
    return "none";
  case FailureCause::Deadline:
    return "deadline";
  case FailureCause::ClientGone:
    return "client-gone";
  case FailureCause::OutOfMemory:
    return "out-of-memory";
  case FailureCause::CpuLimit:
    return "cpu-limit";
  case FailureCause::Signal:
    return "signal";
  case FailureCause::NonzeroExit:
    return "nonzero-exit";
  case FailureCause::InfraFork:
    return "infra-fork";
  case FailureCause::ResultTruncated:
    return "result-truncated";
  case FailureCause::Shutdown:
    return "shutdown";
  }
  return "unknown";
}

// --- Flat field encoding -------------------------------------------------

namespace {

void putU8(std::string &B, uint8_t V) { B.push_back(static_cast<char>(V)); }

void putU32(std::string &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putF64(std::string &B, double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  putU64(B, Bits);
}

void putStr(std::string &B, const std::string &S) {
  putU32(B, static_cast<uint32_t>(S.size()));
  B.append(S);
}

/// Bounds-checked sequential reader over a body.  Every get* returns
/// false once the body is exhausted, so truncated frames decode to a
/// clean error rather than UB.
struct Cursor {
  const uint8_t *P;
  size_t Left;

  explicit Cursor(const std::string &B)
      : P(reinterpret_cast<const uint8_t *>(B.data())), Left(B.size()) {}

  bool getU8(uint8_t &V) {
    if (Left < 1)
      return false;
    V = *P++;
    --Left;
    return true;
  }

  bool getU32(uint32_t &V) {
    if (Left < 4)
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(P[I]) << (8 * I);
    P += 4;
    Left -= 4;
    return true;
  }

  bool getU64(uint64_t &V) {
    if (Left < 8)
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(P[I]) << (8 * I);
    P += 8;
    Left -= 8;
    return true;
  }

  bool getF64(double &V) {
    uint64_t Bits;
    if (!getU64(Bits))
      return false;
    std::memcpy(&V, &Bits, sizeof(V));
    return true;
  }

  bool getStr(std::string &S) {
    uint32_t Len;
    if (!getU32(Len) || Left < Len)
      return false;
    S.assign(reinterpret_cast<const char *>(P), Len);
    P += Len;
    Left -= Len;
    return true;
  }
};

} // namespace

std::string service::encodeJobRequest(const JobRequest &R) {
  std::string B;
  putU8(B, kProtocolVersion);
  putStr(B, R.ModuleText);
  putU8(B, static_cast<uint8_t>(R.Mode));
  putU8(B, R.Engine);
  putU32(B, R.NumWorkers);
  putU64(B, R.CheckpointPeriod);
  putU64(B, R.MaxSlotsPerEpoch);
  putF64(B, R.InjectMisspecRate);
  putU64(B, R.InjectSeed);
  putU8(B, R.EagerCommit ? 1 : 0);
  putF64(B, R.StallTimeoutSec);
  putF64(B, R.DeadlineSec);
  putStr(B, R.TracePath);
  putU64(B, R.IdempotencyKey);
  putU64(B, R.MaxMemoryBytes);
  putU32(B, R.MaxCpuSec);
  putU32(B, R.MaxOpenFiles);
  putU8(B, R.FaultKillSupervisor ? 1 : 0);
  putU32(B, R.FaultKillWorker);
  putU64(B, R.FaultKillAtIter);
  putU32(B, R.FaultStallWorker);
  putU64(B, R.FaultStallAtIter);
  putF64(B, R.FaultStallSeconds);
  putF64(B, R.FaultKillRate);
  putU64(B, R.FaultSeed);
  putU32(B, R.FaultSupervisorSignal);
  putU32(B, R.FaultSupervisorExit);
  putU32(B, R.FaultOomAttempts);
  putU64(B, R.FaultAllocBytes);
  putF64(B, R.FaultBurnCpuSec);
  return B;
}

bool service::decodeJobRequest(const std::string &Body, JobRequest &R,
                               std::string &Err) {
  Cursor C(Body);
  uint8_t Version = 0, Mode = 0, Eager = 0, KillSup = 0;
  if (!C.getU8(Version)) {
    Err = "empty SubmitJob body";
    return false;
  }
  if (Version != kProtocolVersion) {
    Err = "unsupported protocol version " + std::to_string(Version);
    return false;
  }
  if (!C.getStr(R.ModuleText) || !C.getU8(Mode) || !C.getU8(R.Engine) ||
      !C.getU32(R.NumWorkers) ||
      !C.getU64(R.CheckpointPeriod) || !C.getU64(R.MaxSlotsPerEpoch) ||
      !C.getF64(R.InjectMisspecRate) || !C.getU64(R.InjectSeed) ||
      !C.getU8(Eager) || !C.getF64(R.StallTimeoutSec) ||
      !C.getF64(R.DeadlineSec) || !C.getStr(R.TracePath) ||
      !C.getU64(R.IdempotencyKey) || !C.getU64(R.MaxMemoryBytes) ||
      !C.getU32(R.MaxCpuSec) || !C.getU32(R.MaxOpenFiles) ||
      !C.getU8(KillSup) || !C.getU32(R.FaultKillWorker) ||
      !C.getU64(R.FaultKillAtIter) || !C.getU32(R.FaultStallWorker) ||
      !C.getU64(R.FaultStallAtIter) || !C.getF64(R.FaultStallSeconds) ||
      !C.getF64(R.FaultKillRate) || !C.getU64(R.FaultSeed) ||
      !C.getU32(R.FaultSupervisorSignal) || !C.getU32(R.FaultSupervisorExit) ||
      !C.getU32(R.FaultOomAttempts) || !C.getU64(R.FaultAllocBytes) ||
      !C.getF64(R.FaultBurnCpuSec)) {
    Err = "truncated SubmitJob body";
    return false;
  }
  if (Mode > static_cast<uint8_t>(JobMode::Sequential)) {
    Err = "bad job mode " + std::to_string(Mode);
    return false;
  }
  if (R.Engine > 1) {
    Err = "bad engine " + std::to_string(R.Engine);
    return false;
  }
  R.Mode = static_cast<JobMode>(Mode);
  R.EagerCommit = Eager != 0;
  R.FaultKillSupervisor = KillSup != 0;
  return true;
}

std::string service::encodeJobReply(const JobReply &R) {
  std::string B;
  putU8(B, kProtocolVersion);
  putU8(B, static_cast<uint8_t>(R.Status));
  putU8(B, static_cast<uint8_t>(R.Cause));
  putU32(B, R.TermSignal);
  putU32(B, R.SupExitCode);
  putU32(B, R.Attempts);
  putU8(B, R.IdempotentReplay ? 1 : 0);
  putStr(B, R.Error);
  putStr(B, R.Output);
  putU64(B, static_cast<uint64_t>(R.ExitValue));
  putU8(B, R.CacheHit ? 1 : 0);
  putU64(B, R.Iterations);
  putU64(B, R.Checkpoints);
  putU64(B, R.Misspecs);
  putU64(B, R.RecoveredIterations);
  putStr(B, R.MisspecReason);
  putF64(B, R.PipelineSec);
  putF64(B, R.ExecSec);
  putF64(B, R.QueueSec);
  putF64(B, R.WallSec);
  return B;
}

bool service::decodeJobReply(const std::string &Body, JobReply &R,
                             std::string &Err) {
  Cursor C(Body);
  uint8_t Version = 0, Status = 0, Cause = 0, Replay = 0, CacheHit = 0;
  uint64_t Exit = 0;
  if (!C.getU8(Version)) {
    Err = "empty JobResult body";
    return false;
  }
  if (Version != kProtocolVersion) {
    Err = "unsupported protocol version " + std::to_string(Version);
    return false;
  }
  if (!C.getU8(Status) || !C.getU8(Cause) || !C.getU32(R.TermSignal) ||
      !C.getU32(R.SupExitCode) || !C.getU32(R.Attempts) ||
      !C.getU8(Replay) || !C.getStr(R.Error) || !C.getStr(R.Output) ||
      !C.getU64(Exit) || !C.getU8(CacheHit) || !C.getU64(R.Iterations) ||
      !C.getU64(R.Checkpoints) || !C.getU64(R.Misspecs) ||
      !C.getU64(R.RecoveredIterations) || !C.getStr(R.MisspecReason) ||
      !C.getF64(R.PipelineSec) || !C.getF64(R.ExecSec) ||
      !C.getF64(R.QueueSec) || !C.getF64(R.WallSec)) {
    Err = "truncated JobResult body";
    return false;
  }
  if (Status > static_cast<uint8_t>(JobStatus::ResourceLimit)) {
    Err = "bad job status " + std::to_string(Status);
    return false;
  }
  if (Cause > static_cast<uint8_t>(FailureCause::Shutdown)) {
    Err = "bad failure cause " + std::to_string(Cause);
    return false;
  }
  R.Status = static_cast<JobStatus>(Status);
  R.Cause = static_cast<FailureCause>(Cause);
  R.IdempotentReplay = Replay != 0;
  R.ExitValue = static_cast<int64_t>(Exit);
  R.CacheHit = CacheHit != 0;
  return true;
}

// --- Frame I/O -----------------------------------------------------------

bool service::writeFrame(int Fd, MsgType Type, const std::string &Body,
                         std::string &Err) {
  std::string Frame;
  Frame.reserve(5 + Body.size());
  putU32(Frame, static_cast<uint32_t>(1 + Body.size()));
  putU8(Frame, static_cast<uint8_t>(Type));
  Frame.append(Body);

  size_t Done = 0;
  while (Done < Frame.size()) {
    // MSG_NOSIGNAL: a peer that died mid-conversation must surface as
    // EPIPE for the reconnect path, not as a process-killing SIGPIPE.
    // Supervisor result pipes are not sockets; fall back to write().
    ssize_t N = ::send(Fd, Frame.data() + Done, Frame.size() - Done,
                       MSG_NOSIGNAL);
    if (N < 0 && errno == ENOTSOCK)
      N = ::write(Fd, Frame.data() + Done, Frame.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Callers use blocking fds; a non-blocking fd that fills mid-frame
        // waits for drain rather than corrupting the stream.
        pollfd P{Fd, POLLOUT, 0};
        ::poll(&P, 1, 100);
        continue;
      }
      Err = std::string("write: ") + std::strerror(errno);
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

ReadStatus service::readFrame(int Fd, MsgType &Type, std::string &Body,
                              std::string &Err, double TimeoutSec,
                              size_t MaxFrame) {
  double Deadline = TimeoutSec > 0 ? wallSeconds() + TimeoutSec : 0;
  auto ReadExact = [&](void *Dst, size_t Len, bool &SawAny) -> ReadStatus {
    size_t Done = 0;
    while (Done < Len) {
      if (Deadline > 0) {
        double Left = Deadline - wallSeconds();
        if (Left <= 0)
          return ReadStatus::Timeout;
        pollfd P{Fd, POLLIN, 0};
        int R = ::poll(&P, 1, static_cast<int>(Left * 1000) + 1);
        if (R < 0 && errno != EINTR) {
          Err = std::string("poll: ") + std::strerror(errno);
          return ReadStatus::Error;
        }
        if (R <= 0)
          continue;
      }
      ssize_t N = ::read(Fd, static_cast<char *>(Dst) + Done, Len - Done);
      if (N < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
          continue;
        Err = std::string("read: ") + std::strerror(errno);
        return ReadStatus::Error;
      }
      if (N == 0) {
        if (!SawAny && Done == 0)
          return ReadStatus::Eof;
        Err = "connection closed mid-frame";
        return ReadStatus::Error;
      }
      SawAny = true;
      Done += static_cast<size_t>(N);
    }
    return ReadStatus::Ok;
  };

  bool SawAny = false;
  uint8_t Hdr[4];
  ReadStatus S = ReadExact(Hdr, 4, SawAny);
  if (S != ReadStatus::Ok)
    return S;
  uint32_t PayloadLen = 0;
  for (int I = 0; I < 4; ++I)
    PayloadLen |= static_cast<uint32_t>(Hdr[I]) << (8 * I);
  if (PayloadLen == 0 || PayloadLen > MaxFrame) {
    Err = "bad frame length " + std::to_string(PayloadLen);
    return ReadStatus::Error;
  }
  uint8_t TypeByte;
  S = ReadExact(&TypeByte, 1, SawAny);
  if (S != ReadStatus::Ok)
    return S == ReadStatus::Eof ? ReadStatus::Error : S;
  Body.resize(PayloadLen - 1);
  if (PayloadLen > 1) {
    S = ReadExact(Body.data(), PayloadLen - 1, SawAny);
    if (S != ReadStatus::Ok)
      return S == ReadStatus::Eof ? ReadStatus::Error : S;
  }
  Type = static_cast<MsgType>(TypeByte);
  return ReadStatus::Ok;
}

FrameAssembler::Result FrameAssembler::next(MsgType &Type, std::string &Body,
                                            std::string &Err) {
  if (Buf.size() < 4)
    return Result::NeedMore;
  uint32_t PayloadLen = 0;
  for (int I = 0; I < 4; ++I)
    PayloadLen |= static_cast<uint32_t>(static_cast<uint8_t>(Buf[I]))
                  << (8 * I);
  if (PayloadLen == 0 || PayloadLen > MaxFrame) {
    Err = "bad frame length " + std::to_string(PayloadLen);
    return Result::Malformed;
  }
  if (Buf.size() < 4 + static_cast<size_t>(PayloadLen))
    return Result::NeedMore;
  Type = static_cast<MsgType>(static_cast<uint8_t>(Buf[4]));
  Body.assign(Buf, 5, PayloadLen - 1);
  Buf.erase(0, 4 + static_cast<size_t>(PayloadLen));
  return Result::Frame;
}
