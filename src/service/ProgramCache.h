//===- service/ProgramCache.h - Warm compiled-program cache -----*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's warm program cache: module text is hashed with FNV-1a and
/// the expensive front half of a Privateer run — parse, verify, training
/// profile, classification, transformation — executes at most once per
/// distinct program.  The cached transformed module, its analyses, and
/// the heap assignment are then reused by every subsequent job: the
/// per-job supervisor process inherits them read-only across fork(), so
/// a warm submit pays only fork + execution.
///
/// Entries are handed out as shared_ptr: eviction (bounded LRU, keyed by
/// last hit) drops the cache's reference, while jobs still queued against
/// the entry keep it alive until dispatch.
///
/// For the pre-warmed executive pool the cache also serializes each
/// lowered program into a sealed memfd (bytecode/Image.h): dispatching a
/// warm job to an executive is then one SCM_RIGHTS hand-off, with no
/// fork, no parse, and no lowering anywhere on the path.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_SERVICE_PROGRAMCACHE_H
#define PRIVATEER_SERVICE_PROGRAMCACHE_H

#include "analysis/FunctionAnalyses.h"
#include "ir/IR.h"
#include "service/Protocol.h"
#include "transform/Pipeline.h"

#include <list>
#include <map>
#include <memory>
#include <string>

namespace privateer {
namespace service {

/// One fully prepared program.  The PipelineResult's loop / global
/// pointers point into *M, and FA holds analyses over *M, so the three
/// must live and die together.
struct CachedProgram {
  uint64_t Key = 0;
  std::string Text; ///< verbatim module text (collision check)
  /// Strategy the pipeline ran under.  A doacross-rewritten module is a
  /// different program from the doall compilation of the same text, so the
  /// strategy participates in both the key and the collision check.
  Strategy Strat = Strategy::Doall;
  std::unique_ptr<ir::Module> M;
  std::unique_ptr<analysis::FunctionAnalyses> FA;
  transform::PipelineResult Pipeline;
  /// Bytecode programs lowered once at cache-fill time (borrowing *M), so
  /// warm submits skip parse, pipeline, AND lowering: supervisors inherit
  /// them read-only across fork().  Null when lowering declined — the
  /// supervisor then lowers on the spot or falls back to the interpreter.
  std::shared_ptr<const bytecode::BytecodeProgram> LoweredPar;
  std::shared_ptr<const bytecode::BytecodeProgram> LoweredSeq;
  /// Sealed memfds holding the serialized lowered programs (-1 = lowering
  /// declined).  The daemon hands these to executives via SCM_RIGHTS; the
  /// seals let the executive trust size and contents without copying.
  int ImagePar = -1;
  int ImageSeq = -1;
  /// Monotonic fill ordinal: executives key their local caches by
  /// (Key, Generation), so a rebuilt entry (evicted, or a hash collision
  /// replacing different text) never aliases a stale cached program.
  uint64_t Generation = 0;
  double PipelineSec = 0; ///< cost of the cold half, paid once

  CachedProgram() = default;
  CachedProgram(const CachedProgram &) = delete;
  CachedProgram &operator=(const CachedProgram &) = delete;
  ~CachedProgram();

  /// Negative verdict: set when a supervisor running this exact text died
  /// on a deterministic program-class signal (SIGSEGV/SIGBUS/SIGABRT/
  /// SIGFPE/SIGILL).  Later submits answer from PoisonReply instead of
  /// crashing another supervisor.  M is null for entries caching a parse
  /// or verifier error (ParseError holds the message).
  bool Poisoned = false;
  JobReply PoisonReply;
  std::string ParseError;
};

class ProgramCache {
public:
  explicit ProgramCache(size_t MaxEntries = 32) : MaxEntries(MaxEntries) {}

  /// Looks up (or builds) the prepared program for \p Text compiled under
  /// \p Strat.  On a miss this runs the full pipeline in the calling
  /// process — the training run's output is swallowed.  Returns nullptr
  /// with \p Err set when the text does not parse or verify; a program
  /// whose pipeline finds no parallelizable loop is still cached
  /// (Pipeline.Transformed == false) so repeated submits stay cheap.
  std::shared_ptr<CachedProgram> lookup(const std::string &Text,
                                        Strategy Strat, std::string &Err,
                                        bool &Hit);

  size_t size() const { return Entries.size(); }
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t evictions() const { return Evictions; }

private:
  size_t MaxEntries;
  struct Entry {
    std::shared_ptr<CachedProgram> Prog;
    std::list<uint64_t>::iterator LruIt;
  };
  std::map<uint64_t, Entry> Entries;
  std::list<uint64_t> Lru; ///< front = most recently hit, back = evict next
  uint64_t Hits = 0, Misses = 0, Evictions = 0, NextGeneration = 1;
};

} // namespace service
} // namespace privateer

#endif // PRIVATEER_SERVICE_PROGRAMCACHE_H
