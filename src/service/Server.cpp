//===- service/Server.cpp - privateer-served event loop -------------------===//

#include "service/Server.h"

#include "runtime/ControlBlock.h"
#include "service/Executive.h"
#include "support/Statistics.h"
#include "support/Timing.h"
#include "transform/Pipeline.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <new>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace privateer;
using namespace privateer::service;

// --- Signal plumbing -----------------------------------------------------
//
// Handlers set a flag and poke the self-pipe so poll() wakes promptly;
// all real work happens in the event loop.

namespace {

volatile sig_atomic_t GotSigChld = 0;
volatile sig_atomic_t GotSigTerm = 0;
volatile sig_atomic_t GotSigInt = 0;
int SigWakeFd = -1;

void onSignal(int Sig) {
  if (Sig == SIGCHLD)
    GotSigChld = 1;
  else if (Sig == SIGTERM)
    GotSigTerm = 1;
  else if (Sig == SIGINT)
    GotSigInt = 1;
  if (SigWakeFd >= 0) {
    char B = 1;
    [[maybe_unused]] ssize_t N = ::write(SigWakeFd, &B, 1);
  }
}

void setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

/// True when \p Buf starts with one complete frame.
bool holdsCompleteFrame(const std::string &Buf) {
  if (Buf.size() < 4)
    return false;
  uint32_t Len = 0;
  for (int I = 0; I < 4; ++I)
    Len |= static_cast<uint32_t>(static_cast<uint8_t>(Buf[I])) << (8 * I);
  return Len >= 1 && Len <= kMaxFrameBytes && Buf.size() >= 4 + size_t(Len);
}

/// Binds + listens on \p Path with crash-only stale-socket reclaim: a
/// daemon killed by SIGKILL leaves its socket file behind and a naive
/// bind() fails with EADDRINUSE.  Probe the path first — a live daemon
/// accepts the connect and we refuse to steal its socket; a dead one
/// answers ECONNREFUSED and the stale file is reclaimed.  Shared by the
/// single-process daemon and the shard parent.
int bindListenSocket(const std::string &Path, std::string &Err,
                     bool *Reclaimed) {
  if (Reclaimed)
    *Reclaimed = false;
  if (Path.empty()) {
    Err = "no socket path";
    return -1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return -1;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  struct stat St{};
  if (::lstat(Path.c_str(), &St) == 0) {
    if (!S_ISSOCK(St.st_mode)) {
      Err = Path + " exists and is not a socket";
      ::close(Fd);
      return -1;
    }
    int Probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    bool Alive =
        Probe >= 0 &&
        ::connect(Probe, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
            0;
    if (Probe >= 0)
      ::close(Probe);
    if (Alive) {
      Err = "another daemon is already serving " + Path;
      ::close(Fd);
      return -1;
    }
    ::unlink(Path.c_str());
    if (Reclaimed)
      *Reclaimed = true;
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = "bind " + Path + ": " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  if (::listen(Fd, 64) < 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  setNonBlocking(Fd);
  return Fd;
}

} // namespace

uint64_t &Server::stat(const char *Name) const {
  return StatisticRegistry::instance().counter("service", Name);
}

Server::Server(ServerOptions O)
    : Opts(std::move(O)), Cache(Opts.CacheEntries) {
  // Pre-register every counter so the status JSON always carries the full
  // schema, not just the events that have happened to occur yet.
  for (const char *Name :
       {"connections_accepted", "connections_closed", "malformed_frames",
        "jobs_submitted", "jobs_accepted", "jobs_rejected", "jobs_completed",
        "jobs_failed", "jobs_crashed", "jobs_canceled", "jobs_timeout",
        "jobs_resource_limit", "cache_hits", "cache_misses",
        "cache_evictions", "queue_peak", "retries", "retry_success",
        "slow_client_drops", "idempotent_replays", "negative_verdicts",
        "socket_reclaimed", "supervisor_forks", "pool_dispatches",
        "executives_spawned", "executives_respawned", "memfd_submissions",
        "token_deferrals"})
    stat(Name);
  for (const char *Name : {"updates", "records-committed"})
    StatisticRegistry::instance().counter("com", Name);
  for (const TenantConfig &TC : Opts.Tenants)
    tenantState(TC.Id).Cfg = TC;
}

Server::~Server() {
  if (ListenFd >= 0) {
    ::close(ListenFd);
    if (OwnsSocketFile)
      ::unlink(Opts.SocketPath.c_str());
  }
  for (int Fd : {SigPipe[0], SigPipe[1]})
    if (Fd >= 0)
      ::close(Fd);
  for (auto &[Fd, C] : Conns) {
    for (int PFd : C.PendingFds)
      ::close(PFd);
    ::close(Fd);
  }
  for (auto &[Id, J] : Jobs)
    if (J.ResultFd >= 0)
      ::close(J.ResultFd);
  for (auto &[Id, E] : Pool)
    if (E.ChanFd >= 0)
      ::close(E.ChanFd);
}

bool Server::start(std::string &Err) {
  if (Opts.InheritedListenFd >= 0) {
    // Shard child: the parent bound the socket; we only accept on it (and
    // must not unlink the shared socket file when we exit).
    ListenFd = Opts.InheritedListenFd;
    OwnsSocketFile = false;
  } else {
    bool Reclaimed = false;
    ListenFd = bindListenSocket(Opts.SocketPath, Err, &Reclaimed);
    if (ListenFd < 0)
      return false;
    if (Reclaimed) {
      ++stat("socket_reclaimed");
      if (Opts.Verbose)
        std::fprintf(stderr, "[privateer-served] reclaimed stale socket %s\n",
                     Opts.SocketPath.c_str());
    }
  }

  if (::pipe(SigPipe) < 0) {
    Err = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  setNonBlocking(SigPipe[0]);
  setNonBlocking(SigPipe[1]);
  SigWakeFd = SigPipe[1];

  struct sigaction Sa{};
  Sa.sa_handler = onSignal;
  sigemptyset(&Sa.sa_mask);
  Sa.sa_flags = SA_RESTART;
  ::sigaction(SIGCHLD, &Sa, nullptr);
  ::sigaction(SIGTERM, &Sa, nullptr);
  ::sigaction(SIGINT, &Sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  // Pre-fork the executive pool while the process is still pristine (no
  // client fds, empty cache) — the cheapest possible fork.
  for (unsigned I = 0; I < Opts.Executives; ++I) {
    std::string PoolErr;
    if (!spawnExecutive(PoolErr)) {
      Err = "executive pool: " + PoolErr;
      return false;
    }
  }

  StartTime = wallSeconds();
  if (Opts.Verbose)
    std::fprintf(stderr,
                 "[privateer-served] listening on %s (budget %u, queue %zu, "
                 "executives %zu)\n",
                 Opts.SocketPath.c_str(), Opts.WorkerBudget, Opts.QueueDepth,
                 Pool.size());
  return true;
}

int Server::serve(const ServerOptions &O) {
  if (O.Shards > 1 && O.InheritedListenFd < 0)
    return serveSharded(O);
  Server S(O);
  std::string Err;
  if (!S.start(Err)) {
    std::fprintf(stderr, "privateer-served: %s\n", Err.c_str());
    return 1;
  }
  return S.run();
}

int Server::serveSharded(const ServerOptions &O) {
  std::string Err;
  int Fd = bindListenSocket(O.SocketPath, Err, nullptr);
  if (Fd < 0) {
    std::fprintf(stderr, "privateer-served: %s\n", Err.c_str());
    return 1;
  }

  struct sigaction Sa{};
  Sa.sa_handler = onSignal;
  sigemptyset(&Sa.sa_mask);
  Sa.sa_flags = SA_RESTART;
  ::sigaction(SIGCHLD, &Sa, nullptr);
  ::sigaction(SIGTERM, &Sa, nullptr);
  ::sigaction(SIGINT, &Sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  auto SpawnShard = [&]() -> pid_t {
    pid_t Pid = ::fork();
    if (Pid == 0) {
      ServerOptions CO = O;
      CO.InheritedListenFd = Fd;
      CO.Shards = 1;
      GotSigTerm = 0;
      GotSigInt = 0;
      GotSigChld = 0;
      ::_exit(Server::serve(CO));
    }
    return Pid;
  };

  std::vector<pid_t> Shards;
  for (unsigned I = 0; I < O.Shards; ++I) {
    pid_t Pid = SpawnShard();
    if (Pid < 0) {
      std::fprintf(stderr, "privateer-served: shard fork: %s\n",
                   std::strerror(errno));
      for (pid_t P : Shards)
        ::kill(P, SIGKILL);
      ::close(Fd);
      ::unlink(O.SocketPath.c_str());
      return 1;
    }
    Shards.push_back(Pid);
  }
  if (O.Verbose)
    std::fprintf(stderr, "[privateer-served] shard parent: %u shards on %s\n",
                 O.Shards, O.SocketPath.c_str());

  bool Stopping = false;
  int StopSig = 0;
  int WorstExit = 0;
  size_t Alive = Shards.size();
  while (Alive > 0) {
    if (!Stopping && (GotSigTerm || GotSigInt)) {
      StopSig = GotSigInt ? SIGINT : SIGTERM;
      GotSigTerm = 0;
      GotSigInt = 0;
      Stopping = true;
      for (pid_t P : Shards)
        if (P > 0)
          ::kill(P, StopSig);
    }
    int St = 0;
    pid_t Pid = ::waitpid(-1, &St, Stopping ? 0 : WNOHANG);
    if (Pid > 0) {
      auto It = std::find(Shards.begin(), Shards.end(), Pid);
      if (It == Shards.end())
        continue;
      if (Stopping) {
        *It = -1;
        --Alive;
        if (WIFEXITED(St) && WEXITSTATUS(St) != 0)
          WorstExit = std::max(WorstExit, WEXITSTATUS(St));
        if (WIFSIGNALED(St))
          WorstExit = std::max(WorstExit, 1);
        continue;
      }
      // A shard died underneath us: the others keep serving while a
      // replacement comes up on the same listening fd.
      if (O.Verbose)
        std::fprintf(stderr, "[privateer-served] shard %d died, respawning\n",
                     static_cast<int>(Pid));
      *It = SpawnShard();
      if (*It < 0) {
        *It = -1;
        --Alive;
        WorstExit = std::max(WorstExit, 1);
      }
    } else if (Pid == 0) {
      struct timespec Ts{0, 50 * 1000 * 1000};
      ::nanosleep(&Ts, nullptr);
    } else if (errno != EINTR) {
      break;
    }
  }
  ::close(Fd);
  ::unlink(O.SocketPath.c_str());
  return WorstExit;
}

// --- Executive pool ------------------------------------------------------

bool Server::spawnExecutive(std::string &Err) {
  int Sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, Sv) < 0) {
    Err = std::string("socketpair: ") + std::strerror(errno);
    return false;
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Sv[0]);
    ::close(Sv[1]);
    Err = std::string("fork: ") + std::strerror(errno);
    return false;
  }
  if (Pid == 0) {
    // Executive child: its own process group (deadline kills reach its
    // worker tree without touching the daemon), default signals, and no
    // daemon fds beyond its channel.
    ::setpgid(0, 0);
    ::signal(SIGTERM, SIG_DFL);
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGCHLD, SIG_DFL);
    SigWakeFd = -1;
    ::close(Sv[0]);
    if (ListenFd >= 0)
      ::close(ListenFd);
    for (int PFd : {SigPipe[0], SigPipe[1]})
      if (PFd >= 0)
        ::close(PFd);
    for (auto &[CFd, C] : Conns)
      ::close(CFd);
    for (auto &[Id, J] : Jobs)
      if (J.ResultFd >= 0)
        ::close(J.ResultFd);
    for (auto &[Id, E] : Pool)
      if (E.ChanFd >= 0)
        ::close(E.ChanFd);
    ::_exit(executiveMain(Sv[1]));
  }
  ::close(Sv[1]);
  ::setpgid(Pid, Pid);
  setNonBlocking(Sv[0]);
  Executive E;
  E.Id = NextExecId++;
  E.Pid = Pid;
  E.ChanFd = Sv[0];
  E.Frames = FrameAssembler(Opts.MaxFrameBytes);
  Pool.emplace(E.Id, std::move(E));
  ++stat("executives_spawned");
  return true;
}

void Server::respawnExecutive(uint64_t ExecId) {
  auto It = Pool.find(ExecId);
  if (It != Pool.end()) {
    if (It->second.ChanFd >= 0)
      ::close(It->second.ChanFd);
    Pool.erase(It);
  }
  if (Draining)
    return;
  std::string Err;
  if (spawnExecutive(Err)) {
    ++stat("executives_respawned");
    if (Opts.Verbose)
      std::fprintf(stderr, "[privateer-served] executive %llu replaced\n",
                   static_cast<unsigned long long>(ExecId));
  } else if (Opts.Verbose) {
    std::fprintf(stderr, "[privateer-served] executive respawn failed: %s\n",
                 Err.c_str());
  }
}

void Server::shutdownPool() {
  // Closing the channel is the drain signal: executiveMain returns 0 on
  // EOF.  Stragglers (wedged mid-job) get SIGKILL after a grace window.
  for (auto &[Id, E] : Pool)
    if (E.ChanFd >= 0) {
      ::close(E.ChanFd);
      E.ChanFd = -1;
    }
  double Deadline = wallSeconds() + 2.0 * timeoutScale();
  for (auto &[Id, E] : Pool) {
    if (E.Pid <= 0)
      continue;
    while (true) {
      int St = 0;
      pid_t R = ::waitpid(E.Pid, &St, WNOHANG);
      if (R == E.Pid || (R < 0 && errno == ECHILD))
        break;
      if (wallSeconds() > Deadline) {
        ::kill(-E.Pid, SIGKILL);
        ::kill(E.Pid, SIGKILL);
        ::waitpid(E.Pid, &St, 0);
        break;
      }
      struct timespec Ts{0, 10 * 1000 * 1000};
      ::nanosleep(&Ts, nullptr);
    }
  }
  Pool.clear();
}

Server::Executive *Server::idleExecutive() {
  for (auto &[Id, E] : Pool)
    if (E.ActiveJob == 0 && E.ChanFd >= 0)
      return &E;
  return nullptr;
}

bool Server::poolEligible(const Job &J) const {
  if (Opts.Executives == 0 || Pool.empty())
    return false;
  // Interpreter-engine jobs need the IR module; only lowered bytecode
  // images travel to executives.
  if (J.Req.Engine != 0)
    return false;
  // Per-job rlimits need a disposable process; executives are long-lived.
  if (J.Req.MaxMemoryBytes != 0 || J.Req.MaxCpuSec != 0 ||
      J.Req.MaxOpenFiles != 0 || Opts.MaxMemoryBytes != 0 ||
      Opts.MaxCpuSec != 0 || Opts.MaxOpenFiles != 0)
    return false;
  if (!J.Prog)
    return false;
  int Img = J.Req.Mode == JobMode::Sequential ? J.Prog->ImageSeq
                                              : J.Prog->ImagePar;
  return Img >= 0;
}

bool Server::dispatchToExecutive(Job &J, Executive &E) {
  ExecAssignment A;
  A.ProgramKey = J.Prog->Key;
  A.Generation = J.Prog->Generation;
  A.UseParallel = J.Req.Mode != JobMode::Sequential;
  A.Attempt = J.Attempt;
  A.Req = J.Req;
  A.Req.ModuleText.clear(); // the program travels as an image fd
  int Img = A.UseParallel ? J.Prog->ImagePar : J.Prog->ImageSeq;
  std::string Err;
  if (!writeFrameWithFds(E.ChanFd, MsgType::ExecAssign, encodeExecAssign(A),
                         &Img, 1, Err)) {
    if (Opts.Verbose)
      std::fprintf(stderr,
                   "[privateer-served] dispatch to executive %llu failed: "
                   "%s\n",
                   static_cast<unsigned long long>(E.Id), Err.c_str());
    return false;
  }
  E.ActiveJob = J.Id;
  J.Pooled = true;
  J.ExecId = E.Id;
  J.Pid = E.Pid;
  ++stat("pool_dispatches");
  return true;
}

void Server::readExecutive(Executive &E) {
  char Buf[64 << 10];
  bool Dead = false;
  while (true) {
    ssize_t N = ::read(E.ChanFd, Buf, sizeof(Buf));
    if (N > 0) {
      E.Frames.feed(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N == 0)
      Dead = true;
    else if (errno == EINTR)
      continue;
    else if (errno != EAGAIN && errno != EWOULDBLOCK)
      Dead = true;
    break;
  }

  while (true) {
    MsgType Type;
    std::string Body, Err;
    FrameAssembler::Result R = E.Frames.next(Type, Body, Err);
    if (R == FrameAssembler::Result::NeedMore)
      break;
    if (R == FrameAssembler::Result::Malformed || Type != MsgType::JobResult) {
      Dead = true; // private channel corrupted: replace the executive
      ::kill(E.Pid, SIGKILL);
      break;
    }
    auto It = Jobs.find(E.ActiveJob);
    E.ActiveJob = 0;
    if (It == Jobs.end())
      continue; // job vanished (canceled) while the reply was in flight
    Job &J = It->second;
    // Repackage as the raw frame finishJob expects in ResultBuf, so the
    // pooled path reuses the supervisor path's decode/triage/retry logic
    // verbatim (WaitStatus 0 == clean exit).
    std::string Frame;
    uint32_t Len = static_cast<uint32_t>(1 + Body.size());
    for (int I = 0; I < 4; ++I)
      Frame.push_back(static_cast<char>((Len >> (8 * I)) & 0xff));
    Frame.push_back(static_cast<char>(MsgType::JobResult));
    Frame.append(Body);
    J.ResultBuf = std::move(Frame);
    J.ResultEof = true;
    J.Reaped = true;
    J.WaitStatus = 0;
  }

  if (Dead) {
    // EOF or hard error: the executive is gone.  Its active job (if any)
    // is triaged when SIGCHLD reaps the corpse; here we just stop polling
    // the dead channel.
    ::close(E.ChanFd);
    E.ChanFd = -1;
  }
}

// --- Event loop ----------------------------------------------------------

int Server::run() {
  while (true) {
    if (GotSigChld) {
      GotSigChld = 0;
      reapChildren();
    }
    if (GotSigTerm) {
      GotSigTerm = 0;
      beginDrain();
    }
    if (GotSigInt) {
      GotSigInt = 0;
      beginShutdown();
    }

    double Now = wallSeconds();
    checkDeadlines(Now);
    checkConnHealth(Now);

    // Finalize any job whose supervisor is reaped and whose result pipe
    // has either drained to EOF or already holds a complete frame.
    std::vector<uint64_t> Done;
    for (auto &[Id, J] : Jobs)
      if (J.Running && J.Reaped &&
          (J.ResultEof || holdsCompleteFrame(J.ResultBuf)))
        Done.push_back(Id);
    for (uint64_t Id : Done) {
      auto It = Jobs.find(Id);
      if (It != Jobs.end())
        finishJob(It->second);
    }

    if (Draining && Jobs.empty() && queuedCount() == 0) {
      shutdownPool();
      // Flush straggling replies, then leave.  Sleep in poll(POLLOUT) for
      // the remaining deadline instead of busy-spinning on EAGAIN.
      for (auto &[Fd, C] : Conns) {
        if (!C.Out.empty()) {
          size_t DoneB = 0;
          double Deadline = wallSeconds() + 2.0 * timeoutScale();
          while (DoneB < C.Out.size()) {
            ssize_t N =
                ::write(Fd, C.Out.data() + DoneB, C.Out.size() - DoneB);
            if (N > 0) {
              DoneB += static_cast<size_t>(N);
              continue;
            }
            if (N < 0 && errno == EINTR)
              continue;
            if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
              double Left = Deadline - wallSeconds();
              if (Left <= 0)
                break;
              pollfd P{Fd, POLLOUT, 0};
              int PR = ::poll(&P, 1, static_cast<int>(Left * 1000) + 1);
              if (PR < 0 && errno != EINTR)
                break;
              continue;
            }
            break; // hard error: the client is gone, stop trying
          }
        }
        for (int PFd : C.PendingFds)
          ::close(PFd);
        ::close(Fd);
      }
      Conns.clear();
      if (ListenFd >= 0) {
        ::close(ListenFd);
        ListenFd = -1;
        if (OwnsSocketFile)
          ::unlink(Opts.SocketPath.c_str());
      }
      if (Opts.Verbose)
        std::fprintf(stderr, "[privateer-served] drained, exiting\n");
      return 0;
    }

    std::vector<pollfd> Pfds;
    std::vector<std::pair<char, uint64_t>> What; // ('l'|'s'|'c'|'r'|'e', key)
    if (ListenFd >= 0) {
      Pfds.push_back({ListenFd, POLLIN, 0});
      What.push_back({'l', 0});
    }
    Pfds.push_back({SigPipe[0], POLLIN, 0});
    What.push_back({'s', 0});
    for (auto &[Fd, C] : Conns) {
      short Ev = POLLIN;
      if (!C.Out.empty())
        Ev |= POLLOUT;
      Pfds.push_back({Fd, Ev, 0});
      What.push_back({'c', static_cast<uint64_t>(Fd)});
    }
    for (auto &[Id, J] : Jobs)
      if (J.Running && J.ResultFd >= 0 && !J.ResultEof) {
        Pfds.push_back({J.ResultFd, POLLIN, 0});
        What.push_back({'r', Id});
      }
    for (auto &[Id, E] : Pool)
      if (E.ChanFd >= 0) {
        Pfds.push_back({E.ChanFd, POLLIN, 0});
        What.push_back({'e', Id});
      }

    int TimeoutMs = 500;
    for (auto &[Id, J] : Jobs)
      if (J.Running && J.DeadlineAbs > 0) {
        int Ms = static_cast<int>((J.DeadlineAbs - Now) * 1000) + 1;
        TimeoutMs = std::min(TimeoutMs, std::max(1, Ms));
      }
    // A token-blocked tenant queue needs a wake when its bucket refills.
    for (auto &[TId, T] : Tenants)
      if (!T.Queue.empty() && T.Cfg.RatePerSec > 0 && T.Tokens < 1.0)
        TimeoutMs = std::min(TimeoutMs, 50);

    int R = ::poll(Pfds.data(), Pfds.size(), TimeoutMs);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "privateer-served: poll: %s\n",
                   std::strerror(errno));
      return 1;
    }

    for (size_t I = 0; I < Pfds.size(); ++I) {
      if (Pfds[I].revents == 0)
        continue;
      char Kind = What[I].first;
      if (Kind == 'l') {
        acceptClients();
      } else if (Kind == 's') {
        char Buf[64];
        while (::read(SigPipe[0], Buf, sizeof(Buf)) > 0) {
        }
      } else if (Kind == 'c') {
        int Fd = static_cast<int>(What[I].second);
        auto It = Conns.find(Fd);
        if (It == Conns.end())
          continue;
        if (Pfds[I].revents & (POLLERR | POLLNVAL)) {
          dropConn(Fd, "socket error");
          continue;
        }
        if (Pfds[I].revents & POLLOUT) {
          flushConn(It->second);
          // flushConn may drop the connection (CloseAfterFlush).
          It = Conns.find(Fd);
          if (It == Conns.end())
            continue;
        }
        if (Pfds[I].revents & (POLLIN | POLLHUP)) {
          // readConn may drop the connection; re-find afterwards.
          readConn(It->second);
        }
      } else if (Kind == 'e') {
        auto It = Pool.find(What[I].second);
        if (It == Pool.end() || It->second.ChanFd < 0)
          continue;
        readExecutive(It->second);
      } else if (Kind == 'r') {
        auto It = Jobs.find(What[I].second);
        if (It == Jobs.end())
          continue;
        Job &J = It->second;
        char Buf[64 << 10];
        while (true) {
          ssize_t N = ::read(J.ResultFd, Buf, sizeof(Buf));
          if (N > 0) {
            J.ResultBuf.append(Buf, static_cast<size_t>(N));
            continue;
          }
          if (N == 0)
            J.ResultEof = true;
          else if (errno == EINTR)
            continue;
          else if (errno != EAGAIN && errno != EWOULDBLOCK)
            J.ResultEof = true;
          break;
        }
      }
    }
    // Completed executives / refilled buckets may have opened dispatch
    // room even without a finishJob this pass.
    pumpQueue();
  }
}

// --- Connections ---------------------------------------------------------

void Server::acceptClients() {
  while (true) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0)
      return;
    if (Opts.SendBufBytes > 0)
      ::setsockopt(Fd, SOL_SOCKET, SO_SNDBUF, &Opts.SendBufBytes,
                   sizeof(int));
    Conn C;
    C.Fd = Fd;
    C.Frames = FrameAssembler(Opts.MaxFrameBytes);
    Conns.emplace(Fd, std::move(C));
    ++stat("connections_accepted");
  }
}

void Server::readConn(Conn &C) {
  int Fd = C.Fd;
  char Buf[64 << 10];
  bool Closed = false;
  while (true) {
    bool Truncated = false;
    ssize_t N = recvWithFds(Fd, Buf, sizeof(Buf), C.PendingFds, Truncated);
    if (Truncated) {
      // The kernel dropped SCM_RIGHTS data: fd-to-frame pairing is lost
      // and any in-flight memfd submission would bind the wrong file.
      protocolError(C, "ancillary data truncated (MSG_CTRUNC)");
      return;
    }
    if (N > 0) {
      C.Frames.feed(Buf, static_cast<size_t>(N));
      if (C.PendingFds.size() > 8) {
        protocolError(C, "too many in-flight descriptors");
        return;
      }
      continue;
    }
    if (N == 0)
      Closed = true;
    else if (errno == EINTR)
      continue;
    else if (errno != EAGAIN && errno != EWOULDBLOCK)
      Closed = true;
    break;
  }

  while (true) {
    MsgType Type;
    std::string Body, Err;
    FrameAssembler::Result R = C.Frames.next(Type, Body, Err);
    if (R == FrameAssembler::Result::NeedMore)
      break;
    if (R == FrameAssembler::Result::Malformed) {
      protocolError(C, Err);
      return;
    }
    handleFrame(C, Type, Body);
    if (Conns.find(Fd) == Conns.end())
      return; // handler dropped the connection
  }

  // Descriptors ride the first byte of their frame, so once every
  // complete frame is processed and no partial frame is buffered, any
  // survivors are orphans (fds sent with a non-memfd frame).
  if (C.Frames.buffered() == 0 && !C.PendingFds.empty()) {
    for (int PFd : C.PendingFds)
      ::close(PFd);
    C.PendingFds.clear();
  }

  if (Closed)
    dropConn(Fd, "client closed");
}

void Server::handleFrame(Conn &C, MsgType Type, const std::string &Body) {
  switch (Type) {
  case MsgType::Hello:
    handleHello(C, Body);
    return;
  case MsgType::SubmitJob:
    handleSubmit(C, Body);
    return;
  case MsgType::StatusRequest:
    sendFrame(C, MsgType::StatusReply, statusJson());
    return;
  case MsgType::Drain:
    sendFrame(C, MsgType::Ack, "");
    beginDrain();
    return;
  case MsgType::Shutdown:
    sendFrame(C, MsgType::Ack, "");
    beginShutdown();
    return;
  default:
    protocolError(C, "unexpected frame type " +
                         std::to_string(static_cast<unsigned>(Type)));
    return;
  }
}

void Server::handleHello(Conn &C, const std::string &Body) {
  HelloRequest H;
  std::string Err;
  if (!decodeHello(Body, H, Err)) {
    protocolError(C, Err);
    return;
  }
  C.Tenant = H.TenantId;
  C.MemfdOk = H.WantMemfd; // sealed-memfd submission is always available
  HelloReply Reply;
  Reply.MemfdOk = C.MemfdOk;
  sendFrame(C, MsgType::HelloReply, encodeHelloReply(Reply));
}

void Server::protocolError(Conn &C, const std::string &Why) {
  ++stat("malformed_frames");
  if (Opts.Verbose)
    std::fprintf(stderr, "[privateer-served] protocol error on fd %d: %s\n",
                 C.Fd, Why.c_str());
  // Best-effort courtesy frame; the stream may already be garbage.
  std::string Err;
  writeFrame(C.Fd, MsgType::Error, Why, Err);
  dropConn(C.Fd, "protocol error");
}

void Server::dropConn(int Fd, const char *Why) {
  auto It = Conns.find(Fd);
  if (It == Conns.end())
    return;
  Conn &C = It->second;
  if (C.ActiveJob != 0) {
    auto JIt = Jobs.find(C.ActiveJob);
    if (JIt != Jobs.end()) {
      Job &J = JIt->second;
      if (J.Running) {
        // Mid-invocation disconnect: kill the supervisor tree; the reap
        // path frees the admission slot and counts the cancellation.
        killJob(J, KillCause::ClientGone);
      } else {
        unqueueJob(J);
        ++stat("jobs_canceled");
        Jobs.erase(JIt);
      }
    }
  }
  for (int PFd : C.PendingFds)
    ::close(PFd);
  if (Opts.Verbose)
    std::fprintf(stderr, "[privateer-served] closing fd %d (%s)\n", Fd, Why);
  ::close(Fd);
  Conns.erase(It);
  ++stat("connections_closed");
  pumpQueue();
}

void Server::sendFrame(Conn &C, MsgType Type, const std::string &Body) {
  std::string Frame;
  uint32_t Len = static_cast<uint32_t>(1 + Body.size());
  for (int I = 0; I < 4; ++I)
    Frame.push_back(static_cast<char>((Len >> (8 * I)) & 0xff));
  Frame.push_back(static_cast<char>(Type));
  Frame.append(Body);
  C.Out.append(Frame);
  flushConn(C);
}

void Server::flushConn(Conn &C) {
  while (!C.Out.empty()) {
    ssize_t N = ::write(C.Fd, C.Out.data(), C.Out.size());
    if (N > 0) {
      C.Out.erase(0, static_cast<size_t>(N));
      C.LastWriteProgress = wallSeconds();
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    break; // EAGAIN: wait for POLLOUT; hard errors surface via POLLIN/ERR
  }
  if (C.Out.empty()) {
    C.LastWriteProgress = 0;
    if (C.CloseAfterFlush)
      dropConn(C.Fd, "flushed");
    return;
  }
  // Output is pending: start the stall clock if it isn't running, and mark
  // connections whose backlog outgrew the cap.  The drop itself is
  // deferred to checkConnHealth so reply paths holding this Conn& (and
  // the event loop's iterators) stay valid.
  if (C.LastWriteProgress == 0)
    C.LastWriteProgress = wallSeconds();
  if (Opts.MaxConnBufferBytes > 0 && C.Out.size() > Opts.MaxConnBufferBytes &&
      !C.Doomed) {
    C.Doomed = true;
    C.DoomWhy = "slow reader: output buffer cap exceeded";
  }
}

void Server::checkConnHealth(double Now) {
  std::vector<std::pair<int, const char *>> Drop;
  for (auto &[Fd, C] : Conns) {
    if (C.Doomed) {
      Drop.push_back({Fd, C.DoomWhy});
      continue;
    }
    if (C.Out.empty() || C.LastWriteProgress == 0 || Opts.WriteStallSec <= 0)
      continue;
    if (Now - C.LastWriteProgress > Opts.WriteStallSec * timeoutScale())
      Drop.push_back({Fd, "slow reader: no write progress before deadline"});
  }
  for (auto &[Fd, Why] : Drop) {
    ++stat("slow_client_drops");
    dropConn(Fd, Why);
  }
}

// --- WFQ admission -------------------------------------------------------

Server::TenantState &Server::tenantState(const std::string &Id) {
  auto It = Tenants.find(Id);
  if (It != Tenants.end())
    return It->second;
  TenantState T;
  T.Cfg.Id = Id;
  return Tenants.emplace(Id, std::move(T)).first->second;
}

void Server::refillBucket(TenantState &T, double Now) {
  if (T.Cfg.RatePerSec <= 0)
    return;
  double Burst = T.Cfg.Burst > 0 ? T.Cfg.Burst
                                 : std::max(1.0, 2.0 * T.Cfg.RatePerSec);
  if (!T.BucketPrimed) {
    // A fresh tenant starts with a full bucket: short bursts are the
    // common case the burst allowance exists for.
    T.Tokens = Burst;
    T.LastRefill = Now;
    T.BucketPrimed = true;
    return;
  }
  T.Tokens = std::min(Burst, T.Tokens + T.Cfg.RatePerSec * (Now - T.LastRefill));
  T.LastRefill = Now;
}

size_t Server::queuedCount() const {
  size_t N = 0;
  for (const auto &[Id, T] : Tenants)
    N += T.Queue.size();
  return N;
}

void Server::unqueueJob(const Job &J) {
  auto It = Tenants.find(J.Tenant);
  if (It == Tenants.end())
    return;
  auto &Q = It->second.Queue;
  Q.erase(std::remove(Q.begin(), Q.end(), J.Id), Q.end());
}

// --- Jobs ----------------------------------------------------------------

void Server::handleSubmit(Conn &C, const std::string &Body) {
  ++stat("jobs_submitted");
  JobRequest Req;
  std::string Err;
  if (!decodeJobRequest(Body, Req, Err)) {
    protocolError(C, Err);
    return;
  }
  // Admission identity: the request's own tenant id wins, else whatever
  // the connection negotiated at Hello, else the anonymous tenant.
  std::string TenantId = !Req.TenantId.empty() ? Req.TenantId : C.Tenant;
  TenantState &T = tenantState(TenantId);
  ++T.Submitted;
  auto Reject = [&](JobStatus S, const std::string &Why) {
    if (S == JobStatus::Rejected)
      ++T.Rejected;
    JobReply R;
    R.Status = S;
    R.Error = Why;
    sendFrame(C, MsgType::JobResult, encodeJobReply(R));
  };

  // Zero-copy submission: the module text arrived out-of-band in a sealed
  // memfd (SCM_RIGHTS), attached to this frame's first byte.
  if (Req.Submit == static_cast<uint8_t>(SubmitMode::Memfd)) {
    if (C.PendingFds.empty()) {
      Reject(JobStatus::ParseError,
             "memfd submission carried no file descriptor");
      return;
    }
    int MemFd = C.PendingFds.front();
    C.PendingFds.erase(C.PendingFds.begin());
    for (int Extra : C.PendingFds)
      ::close(Extra);
    C.PendingFds.clear();
    auto BadMemfd = [&](const std::string &Why) {
      ::close(MemFd);
      Reject(JobStatus::ParseError, Why);
    };
    if (!memfdIsSealed(MemFd))
      return BadMemfd("module memfd is not sealed immutable");
    struct stat St{};
    if (::fstat(MemFd, &St) != 0 || St.st_size < 0)
      return BadMemfd("module memfd: fstat failed");
    if (static_cast<size_t>(St.st_size) > Opts.MaxFrameBytes)
      return BadMemfd("module memfd exceeds the frame size limit");
    Req.ModuleText.resize(static_cast<size_t>(St.st_size));
    ssize_t N = St.st_size == 0
                    ? 0
                    : ::pread(MemFd, Req.ModuleText.data(),
                              Req.ModuleText.size(), 0);
    if (N != St.st_size)
      return BadMemfd("module memfd: short read");
    ::close(MemFd);
    ++stat("memfd_submissions");
  }

  // Idempotent resubmission: a client that reconnected after losing the
  // original reply gets the remembered answer instead of a second run.
  // The window is per tenant, so one noisy tenant cannot flush another's
  // replayable replies.
  if (Req.IdempotencyKey != 0) {
    auto RIt = T.Replay.find(Req.IdempotencyKey);
    if (RIt != T.Replay.end()) {
      ++stat("idempotent_replays");
      JobReply R = RIt->second;
      R.IdempotentReplay = true;
      sendFrame(C, MsgType::JobResult, encodeJobReply(R));
      return;
    }
  }
  if (Draining) {
    Reject(JobStatus::Draining, "daemon is draining");
    return;
  }
  if (C.ActiveJob != 0) {
    protocolError(C, "second SubmitJob while a job is outstanding");
    return;
  }
  if (Req.NumWorkers == 0)
    Req.NumWorkers = 1;
  if (Req.NumWorkers > kMaxWorkers)
    Req.NumWorkers = kMaxWorkers;
  unsigned Cost = Req.NumWorkers + 1;
  if (Cost > Opts.WorkerBudget) {
    ++stat("jobs_rejected");
    Reject(JobStatus::Rejected,
           "job needs " + std::to_string(Cost) + " processes, budget is " +
               std::to_string(Opts.WorkerBudget));
    return;
  }
  // Per-tenant backpressure: a tenant that filled its own queue is
  // rejected without consuming anyone else's admission capacity.
  if (T.Queue.size() >= Opts.QueueDepth) {
    ++stat("jobs_rejected");
    Reject(JobStatus::Rejected, "admission queue full");
    return;
  }

  // Warm program cache: parse + pipeline happen at most once per program.
  bool Hit = false;
  std::shared_ptr<CachedProgram> Prog = Cache.lookup(
      Req.ModuleText, static_cast<Strategy>(Req.Strat), Err, Hit);
  stat("cache_hits") = Cache.hits();
  stat("cache_misses") = Cache.misses();
  stat("cache_evictions") = Cache.evictions();
  if (!Prog) {
    ++stat("jobs_failed");
    Reject(JobStatus::ParseError, Err);
    return;
  }
  if (Prog->Poisoned) {
    // This exact program text already killed a supervisor with a
    // deterministic program-class signal; answer from the cached negative
    // verdict instead of crashing another one.
    ++stat("negative_verdicts");
    ++stat("jobs_failed");
    JobReply R = Prog->PoisonReply;
    R.CacheHit = true;
    sendFrame(C, MsgType::JobResult, encodeJobReply(R));
    return;
  }
  if (Req.Mode == JobMode::Speculative && !Prog->Pipeline.Transformed) {
    ++stat("jobs_failed");
    std::string Why = "no parallelizable loop";
    if (!Prog->Pipeline.Log.empty())
      Why += ": " + Prog->Pipeline.Log.back();
    Reject(JobStatus::NotParallelizable, Why);
    return;
  }

  Job J;
  J.Id = NextJobId++;
  J.ConnFd = C.Fd;
  J.Req = std::move(Req);
  J.Tenant = TenantId;
  J.Prog = std::move(Prog);
  J.CacheHit = Hit;
  J.SubmitT = wallSeconds();
  J.Cost = Cost;
  // Start-time fair queuing tags, assigned at enqueue: a backlogged
  // tenant's jobs get consecutive finish tags spaced by cost/weight, so
  // service interleaves tenants in proportion to their weights.
  double W = T.Cfg.Weight > 0 ? T.Cfg.Weight : 1.0;
  J.STag = std::max(VirtualTime, T.LastFinish);
  J.FTag = J.STag + static_cast<double>(Cost) / W;
  T.LastFinish = J.FTag;
  C.ActiveJob = J.Id;
  ++stat("jobs_accepted");
  uint64_t Id = J.Id;
  Jobs.emplace(Id, std::move(J));
  T.Queue.push_back(Id);
  QueuePeak = std::max(QueuePeak, queuedCount());
  stat("queue_peak") = QueuePeak;
  pumpQueue();
}

void Server::pumpQueue() {
  // Weighted fair service: pick the head job with the smallest finish tag
  // within the highest nonempty priority band (token-blocked tenants are
  // skipped until their bucket refills).  The chosen head either fits the
  // remaining budget — and, for pooled jobs, finds an idle executive — or
  // everyone waits: no overtaking, so a wide job cannot starve.  With one
  // tenant this is exact FIFO.
  while (true) {
    double Now = wallSeconds();
    Job *Best = nullptr;
    TenantState *BestT = nullptr;
    for (auto &[TId, T] : Tenants) {
      // Drop stale ids (jobs canceled while queued).
      while (!T.Queue.empty() && Jobs.find(T.Queue.front()) == Jobs.end())
        T.Queue.pop_front();
      if (T.Queue.empty())
        continue;
      refillBucket(T, Now);
      if (T.Cfg.RatePerSec > 0 && T.Tokens < 1.0) {
        ++stat("token_deferrals");
        continue;
      }
      Job &J = Jobs.find(T.Queue.front())->second;
      if (!Best || T.Cfg.Priority > BestT->Cfg.Priority ||
          (T.Cfg.Priority == BestT->Cfg.Priority &&
           (J.FTag < Best->FTag ||
            (J.FTag == Best->FTag && J.Id < Best->Id)))) {
        Best = &J;
        BestT = &T;
      }
    }
    if (!Best)
      return;
    if (WorkersInUse + Best->Cost > Opts.WorkerBudget)
      return;
    if (poolEligible(*Best) && !idleExecutive())
      return; // a pooled head waits for an executive, never forks
    BestT->Queue.pop_front();
    if (BestT->Cfg.RatePerSec > 0)
      BestT->Tokens -= 1.0;
    VirtualTime = std::max(VirtualTime, Best->STag);
    startJob(*Best);
  }
}

void Server::startJob(Job &J) {
  // Fast path: hand the job to a pre-warmed executive.  No fork, no
  // parse, no lowering — the sealed program image travels by fd.
  if (poolEligible(J)) {
    Executive *E = idleExecutive();
    if (E && dispatchToExecutive(J, *E)) {
      J.Running = true;
      J.StartT = wallSeconds();
      double DeadlineSec =
          J.Req.DeadlineSec > 0 ? J.Req.DeadlineSec : Opts.DefaultDeadlineSec;
      if (DeadlineSec > 0)
        J.DeadlineAbs = J.StartT + DeadlineSec * timeoutScale();
      WorkersInUse += J.Cost;
      if (Opts.Verbose)
        std::fprintf(stderr,
                     "[privateer-served] job %llu -> executive %llu (%s, %u "
                     "workers, cache %s)\n",
                     static_cast<unsigned long long>(J.Id),
                     static_cast<unsigned long long>(J.ExecId),
                     J.Req.Mode == JobMode::Sequential ? "seq" : "spec",
                     J.Req.NumWorkers, J.CacheHit ? "hit" : "miss");
      return;
    }
    if (E)
      respawnExecutive(E->Id); // dispatch failed: channel is broken
  }

  // Compatible path: per-job fork supervisor.  pipe/fork failures
  // (EMFILE, EAGAIN/ENOMEM under load) are infra-class: they go through
  // the retry ladder like any other resource exhaustion.
  auto Infra = [&](const char *What) {
    JobReply R;
    R.Status = JobStatus::InternalError;
    R.Cause = FailureCause::InfraFork;
    R.Error = std::string(What) + ": " + std::strerror(errno);
    retryOrFail(J, std::move(R));
  };
  int P[2];
  if (::pipe2(P, O_CLOEXEC) < 0) {
    Infra("pipe");
    return;
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(P[0]);
    ::close(P[1]);
    Infra("fork");
    return;
  }
  if (Pid == 0) {
    ::close(P[0]);
    J.ResultFd = P[1];
    runSupervisor(J); // never returns
  }
  ::close(P[1]);
  ++stat("supervisor_forks");
  // Mirror the child's setpgid so a kill(-pid) that races supervisor
  // startup still finds the group.
  ::setpgid(Pid, Pid);
  setNonBlocking(P[0]);
  J.Running = true;
  J.Pooled = false;
  J.Pid = Pid;
  J.ResultFd = P[0];
  J.StartT = wallSeconds();
  double DeadlineSec =
      J.Req.DeadlineSec > 0 ? J.Req.DeadlineSec : Opts.DefaultDeadlineSec;
  if (DeadlineSec > 0)
    J.DeadlineAbs = J.StartT + DeadlineSec * timeoutScale();
  WorkersInUse += J.Cost;
  if (Opts.Verbose)
    std::fprintf(stderr,
                 "[privateer-served] job %llu -> supervisor %d (%s, %u "
                 "workers, cache %s)\n",
                 static_cast<unsigned long long>(J.Id), Pid,
                 J.Req.Mode == JobMode::Sequential ? "seq" : "spec",
                 J.Req.NumWorkers, J.CacheHit ? "hit" : "miss");
}

void Server::runSupervisor(const Job &J) {
  // Own process group: the daemon kills the whole worker tree with one
  // kill(-pid) when the job is canceled or overruns its deadline.
  ::setpgid(0, 0);
  ::signal(SIGTERM, SIG_DFL);
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGCHLD, SIG_DFL);
  ::signal(SIGPIPE, SIG_IGN);
  SigWakeFd = -1;

  // Drop every daemon fd except this job's result pipe.
  if (ListenFd >= 0)
    ::close(ListenFd);
  for (int Fd : {SigPipe[0], SigPipe[1]})
    if (Fd >= 0)
      ::close(Fd);
  for (auto &[Fd, C] : Conns)
    ::close(Fd);
  for (auto &[Id, Other] : Jobs)
    if (Id != J.Id && Other.ResultFd >= 0)
      ::close(Other.ResultFd);
  for (auto &[Id, E] : Pool)
    if (E.ChanFd >= 0)
      ::close(E.ChanFd);

  applySupervisorLimits(J.Req);

  if (J.Req.FaultKillSupervisor)
    ::raise(SIGKILL); // fault injection: die without a result
  if (J.Req.FaultSupervisorSignal != 0) {
    // Reset first: the daemon may have inherited the runtime's SIGSEGV
    // speculation handler from an in-process training run.
    ::signal(static_cast<int>(J.Req.FaultSupervisorSignal), SIG_DFL);
    ::raise(static_cast<int>(J.Req.FaultSupervisorSignal));
  }
  if (J.Req.FaultSupervisorExit != kNoFaultExit)
    ::_exit(static_cast<int>(J.Req.FaultSupervisorExit));
  if (J.Req.FaultBurnCpuSec > 0) {
    double End = cpuSeconds() + J.Req.FaultBurnCpuSec;
    volatile uint64_t Sink = 0;
    while (cpuSeconds() < End)
      for (int I = 0; I < 4096; ++I)
        Sink = Sink + static_cast<uint64_t>(I) * 2654435761u;
  }

  JobReply R;
  R.CacheHit = J.CacheHit;
  R.PipelineSec = J.CacheHit ? 0 : J.Prog->PipelineSec;

  // Typed out-of-memory reporting: deliver a clean JobResult frame and
  // exit 0 so the daemon triages the failure from the reply body, not from
  // a corpse.  Both fault knobs below funnel through this path, as does
  // any bad_alloc thrown during execution.
  auto ReportOom = [&](const std::string &Why) {
    R.Status = JobStatus::ResourceLimit;
    R.Cause = FailureCause::OutOfMemory;
    R.Error = Why;
    std::string E2;
    writeFrame(J.ResultFd, MsgType::JobResult, encodeJobReply(R), E2);
    ::close(J.ResultFd);
    ::_exit(0);
  };
  if (J.Attempt < J.Req.FaultOomAttempts)
    ReportOom("fault injection: simulated allocation failure on attempt " +
              std::to_string(J.Attempt + 1));
  if (J.Req.FaultAllocBytes > 0) {
    try {
      // Direct operator call: a new[]/delete[] pair is elidable at -O3,
      // which would silently defuse the fault.
      void *P = ::operator new[](J.Req.FaultAllocBytes);
      ::operator delete[](P);
    } catch (const std::bad_alloc &) {
      ReportOom("allocation of " + std::to_string(J.Req.FaultAllocBytes) +
                " bytes failed (bad_alloc)");
    }
  }

  char *OutBuf = nullptr;
  size_t OutLen = 0;
  std::FILE *Out = ::open_memstream(&OutBuf, &OutLen);
  if (!Out)
    ::_exit(3);

  ParallelOptions Par;
  Par.NumWorkers = J.Req.NumWorkers;
  Par.CheckpointPeriod = J.Req.CheckpointPeriod;
  Par.MaxSlotsPerEpoch = J.Req.MaxSlotsPerEpoch;
  Par.InjectMisspecRate = J.Req.InjectMisspecRate;
  Par.InjectSeed = J.Req.InjectSeed;
  Par.EagerCommit = J.Req.EagerCommit;
  // Honor PRIVATEER_TIMEOUT_SCALE here exactly like the per-job deadline:
  // sanitizer builds run several-fold slower and the watchdog must not
  // reap healthy workers.
  Par.StallTimeoutSec = J.Req.StallTimeoutSec * timeoutScale();
  Par.TracePath = J.Req.TracePath;
  Par.Faults.Seed = J.Req.FaultSeed;
  Par.Faults.KillWorker = J.Req.FaultKillWorker;
  Par.Faults.KillAtIter = J.Req.FaultKillAtIter;
  Par.Faults.StallWorker = J.Req.FaultStallWorker;
  Par.Faults.StallAtIter = J.Req.FaultStallAtIter;
  Par.Faults.StallSeconds = J.Req.FaultStallSeconds;
  Par.Faults.KillRate = J.Req.FaultKillRate;
  Par.Strat = static_cast<Strategy>(J.Req.Strat);
  Par.NumStages = J.Req.NumStages;

  transform::PipelineOptions PO;
  PO.Engine = J.Req.Engine == 1 ? transform::ExecEngine::Interp
                                : transform::ExecEngine::Bytecode;
  PO.Strat = static_cast<Strategy>(J.Req.Strat);
  PO.NumStages = J.Req.NumStages;

  double T0 = wallSeconds();
  try {
    if (J.Req.Mode == JobMode::Sequential) {
      interp::Cell V = transform::executeSequential(
          *J.Prog->M, PO, Out, J.Prog->LoweredSeq.get());
      R.ExitValue = V.asInt();
      R.Status = JobStatus::Ok;
    } else {
      transform::ExecutionResult E = transform::executePrivatized(
          *J.Prog->M, *J.Prog->FA, J.Prog->Pipeline.Assignment, PO, Par,
          RuntimeConfig(), Out, J.Prog->LoweredPar.get());
      R.ExitValue = E.ReturnValue.asInt();
      R.Iterations = E.Stats.Iterations;
      R.Checkpoints = E.Stats.Checkpoints;
      R.Misspecs = E.Stats.Misspecs;
      R.RecoveredIterations = E.Stats.RecoveredIterations;
      R.ComUpdates = E.Stats.ComUpdates;
      R.ComRecordsCommitted = E.Stats.ComRecordsCommitted;
      R.MisspecReason = E.Stats.FirstMisspecReason;
      R.Status = JobStatus::Ok;
    }
  } catch (const std::bad_alloc &) {
    R.Status = JobStatus::ResourceLimit;
    R.Cause = FailureCause::OutOfMemory;
    R.Error = "out of memory (bad_alloc) during execution";
  } catch (const std::exception &E) {
    R.Status = JobStatus::InternalError;
    R.Error = E.what();
  }
  R.ExecSec = wallSeconds() - T0;

  std::fclose(Out);
  R.Output.assign(OutBuf, OutLen);
  std::free(OutBuf);

  std::string Err;
  if (!writeFrame(J.ResultFd, MsgType::JobResult, encodeJobReply(R), Err))
    ::_exit(4);
  ::close(J.ResultFd);
  ::_exit(0);
}

void Server::applySupervisorLimits(const JobRequest &Req) {
  // A crashing supervisor must not dump multi-GiB tagged heaps to disk.
  rlimit Core{0, 0};
  ::setrlimit(RLIMIT_CORE, &Core);
  // Effective ceiling: the request can lower the daemon's default but
  // never raise it (0 on either side means "no opinion").
  auto Effective = [](uint64_t Mine, uint64_t Daemon) -> uint64_t {
    if (Mine == 0)
      return Daemon;
    if (Daemon == 0)
      return Mine;
    return std::min(Mine, Daemon);
  };
  if (uint64_t Mem = Effective(Req.MaxMemoryBytes, Opts.MaxMemoryBytes)) {
    rlimit L{static_cast<rlim_t>(Mem), static_cast<rlim_t>(Mem)};
    ::setrlimit(RLIMIT_AS, &L);
  }
  if (uint64_t Cpu = Effective(Req.MaxCpuSec, Opts.MaxCpuSec)) {
    // Scaled like deadlines: sanitizer builds are several-fold slower and
    // must not burn their CPU budget on healthy work.  Hard limit sits a
    // little above the soft one so SIGXCPU fires first, with SIGKILL as
    // the kernel's backstop.
    rlim_t Soft = static_cast<rlim_t>(
        std::max(1.0, std::ceil(static_cast<double>(Cpu) * timeoutScale())));
    rlimit L{Soft, Soft + 2};
    ::setrlimit(RLIMIT_CPU, &L);
  }
  if (uint64_t Files = Effective(Req.MaxOpenFiles, Opts.MaxOpenFiles)) {
    rlim_t V = static_cast<rlim_t>(std::max<uint64_t>(Files, 8));
    rlimit L{V, V};
    ::setrlimit(RLIMIT_NOFILE, &L);
  }
}

void Server::reapChildren() {
  while (true) {
    int St = 0;
    pid_t Pid = ::waitpid(-1, &St, WNOHANG);
    if (Pid <= 0)
      return;
    for (auto &[Id, J] : Jobs)
      if (J.Running && J.Pid == Pid) {
        J.Reaped = true;
        J.WaitStatus = St;
        // Drain whatever the supervisor managed to write.
        char Buf[64 << 10];
        while (J.ResultFd >= 0) {
          ssize_t N = ::read(J.ResultFd, Buf, sizeof(Buf));
          if (N > 0) {
            J.ResultBuf.append(Buf, static_cast<size_t>(N));
            continue;
          }
          if (N == 0)
            J.ResultEof = true;
          else if (errno == EINTR)
            continue;
          break;
        }
        if (J.Pooled)
          J.ResultEof = true; // no pipe to wait for; triage from WaitStatus
        break;
      }
    // A dead executive is replaced immediately; its active job (matched
    // above through J.Pid) is triaged like any dead supervisor.
    for (auto &[EId, E] : Pool)
      if (E.Pid == Pid) {
        respawnExecutive(EId);
        break;
      }
  }
}

void Server::checkDeadlines(double Now) {
  for (auto &[Id, J] : Jobs)
    if (J.Running && !J.Reaped && J.Killed == KillCause::None &&
        J.DeadlineAbs > 0 && Now > J.DeadlineAbs)
      killJob(J, KillCause::Deadline);
}

void Server::killJob(Job &J, KillCause Cause) {
  if (!J.Running || J.Killed != KillCause::None)
    return;
  J.Killed = Cause;
  if (J.Pid > 0) {
    ::kill(-J.Pid, SIGKILL); // the whole supervisor process group
    ::kill(J.Pid, SIGKILL);  // belt and braces if setpgid lost the race
  }
}

void Server::replyToJob(const Job &J, JobReply R) {
  double Now = wallSeconds();
  R.QueueSec = J.StartT > 0 ? J.StartT - J.SubmitT : Now - J.SubmitT;
  R.WallSec = Now - J.SubmitT;
  R.CacheHit = J.CacheHit;
  R.Attempts = J.Attempt + 1;
  // Remember the reply before looking for the connection: an answer
  // computed for a client that vanished mid-send must still be replayable
  // when that client reconnects with the same idempotency key.
  rememberReply(J, R);
  auto It = Conns.find(J.ConnFd);
  if (It == Conns.end())
    return;
  sendFrame(It->second, MsgType::JobResult, encodeJobReply(R));
  // sendFrame may have doomed a slow reader, but the Conn object survives
  // until checkConnHealth, so this write stays valid.
  It->second.ActiveJob = 0;
}

void Server::rememberReply(const Job &J, const JobReply &R) {
  if (J.Req.IdempotencyKey == 0 || Opts.ReplayEntries == 0)
    return;
  // Backpressure and shutdown verdicts are retryable conditions, not
  // outcomes of the job itself; replaying them would wedge the client.
  if (R.Status == JobStatus::Rejected || R.Status == JobStatus::Draining ||
      R.Status == JobStatus::Canceled)
    return;
  TenantState &T = tenantState(J.Tenant);
  if (T.Replay.emplace(J.Req.IdempotencyKey, R).second) {
    T.ReplayOrder.push_back(J.Req.IdempotencyKey);
    while (T.ReplayOrder.size() > Opts.ReplayEntries) {
      T.Replay.erase(T.ReplayOrder.front());
      T.ReplayOrder.pop_front();
    }
  }
}

JobReply Server::triageFailure(const Job &J) {
  JobReply R;
  int St = J.WaitStatus;
  if (WIFSIGNALED(St)) {
    int Sig = WTERMSIG(St);
    R.TermSignal = static_cast<uint32_t>(Sig);
    if (Sig == SIGXCPU) {
      R.Status = JobStatus::ResourceLimit;
      R.Cause = FailureCause::CpuLimit;
      R.Error = "supervisor exceeded its CPU budget (SIGXCPU)";
    } else {
      R.Status = JobStatus::Crashed;
      R.Cause = FailureCause::Signal;
      R.Error = std::string("supervisor killed by signal ") +
                std::to_string(Sig);
      if (const char *Name = ::strsignal(Sig))
        R.Error += std::string(" (") + Name + ")";
    }
  } else if (WIFEXITED(St) && WEXITSTATUS(St) != 0) {
    int Code = WEXITSTATUS(St);
    R.SupExitCode = static_cast<uint32_t>(Code);
    if (Code == 3 || Code == 4) {
      // The supervisor's own _exit codes: open_memstream failed (3) or the
      // result pipe write failed (4) — infrastructure, not the program.
      R.Status = JobStatus::InternalError;
      R.Cause = FailureCause::ResultTruncated;
      R.Error =
          "supervisor could not deliver its result (exit " +
          std::to_string(Code) + ")";
    } else {
      R.Status = JobStatus::Crashed;
      R.Cause = FailureCause::NonzeroExit;
      R.Error =
          "supervisor exited with status " + std::to_string(Code);
    }
  } else {
    // Exited 0 but the result frame never parsed.
    R.Status = JobStatus::Crashed;
    R.Cause = FailureCause::ResultTruncated;
    R.Error = "supervisor result truncated";
  }
  return R;
}

bool Server::retryOrFail(Job &J, JobReply R) {
  if (isInfraFailure(R.Cause) && J.Attempt < Opts.MaxRetries) {
    // Degrade ladder: attempt 1 halves the workers, attempt 2 runs
    // sequentially.  The requeued job goes to the front of its tenant's
    // queue so its client is not re-penalized with another full wait.
    ++J.Attempt;
    ++stat("retries");
    if (J.Req.Mode != JobMode::Sequential) {
      if (J.Attempt >= 2 || J.Req.NumWorkers <= 2) {
        J.Req.Mode = JobMode::Sequential;
        J.Req.NumWorkers = 1;
      } else {
        J.Req.NumWorkers = std::max(1u, J.Req.NumWorkers / 2);
      }
    }
    J.Cost = J.Req.NumWorkers + 1;
    J.Running = false;
    J.Pooled = false;
    J.ExecId = 0;
    J.Pid = -1;
    if (J.ResultFd >= 0) {
      ::close(J.ResultFd);
      J.ResultFd = -1;
    }
    J.ResultBuf.clear();
    J.ResultEof = false;
    J.Reaped = false;
    J.WaitStatus = 0;
    J.Killed = KillCause::None;
    J.DeadlineAbs = 0;
    if (Opts.Verbose)
      std::fprintf(stderr,
                   "[privateer-served] job %llu retry %u (%s): %s — now %s "
                   "with %u workers\n",
                   static_cast<unsigned long long>(J.Id), J.Attempt,
                   failureCauseName(R.Cause), R.Error.c_str(),
                   J.Req.Mode == JobMode::Sequential ? "sequential"
                                                     : "speculative",
                   J.Req.NumWorkers);
    tenantState(J.Tenant).Queue.push_front(J.Id);
    return true;
  }

  switch (R.Status) {
  case JobStatus::Crashed:
    ++stat("jobs_crashed");
    break;
  case JobStatus::ResourceLimit:
    ++stat("jobs_resource_limit");
    break;
  default:
    ++stat("jobs_failed");
    break;
  }
  if (Opts.Verbose)
    std::fprintf(stderr, "[privateer-served] job %llu failed: %s (%s)\n",
                 static_cast<unsigned long long>(J.Id),
                 jobStatusName(R.Status), failureCauseName(R.Cause));
  replyToJob(J, std::move(R));
  Jobs.erase(J.Id);
  return false;
}

void Server::finishJob(Job &J) {
  double Now = wallSeconds();
  StatisticRegistry &Reg = StatisticRegistry::instance();
  Reg.real("service", "exec_sec") += Now - J.StartT;
  Reg.real("service", "queue_wait_sec") += J.StartT - J.SubmitT;

  // Release this attempt's budget and pipe before anything else; a retry
  // re-acquires admission at its (possibly smaller) degraded cost.
  WorkersInUse -= J.Cost;
  if (J.ResultFd >= 0) {
    ::close(J.ResultFd);
    J.ResultFd = -1;
  }
  if (J.Pooled) {
    auto EIt = Pool.find(J.ExecId);
    if (EIt != Pool.end() && EIt->second.ActiveJob == J.Id)
      EIt->second.ActiveJob = 0;
  }
  tenantState(J.Tenant).Completed += 1;

  if (J.Killed == KillCause::ClientGone) {
    ++stat("jobs_canceled");
    auto It = Conns.find(J.ConnFd);
    if (It != Conns.end())
      It->second.ActiveJob = 0;
    Jobs.erase(J.Id);
    pumpQueue();
    return;
  }
  if (J.Killed == KillCause::Deadline || J.Killed == KillCause::Shutdown) {
    JobReply R;
    if (J.Killed == KillCause::Deadline) {
      ++stat("jobs_timeout");
      R.Status = JobStatus::TimedOut;
      R.Cause = FailureCause::Deadline;
      R.Error = "deadline exceeded; supervisor killed";
    } else {
      ++stat("jobs_canceled");
      R.Status = JobStatus::Canceled;
      R.Cause = FailureCause::Shutdown;
      R.Error = "daemon shut down";
    }
    if (Opts.Verbose)
      std::fprintf(stderr, "[privateer-served] job %llu done: %s\n",
                   static_cast<unsigned long long>(J.Id),
                   jobStatusName(R.Status));
    replyToJob(J, std::move(R));
    Jobs.erase(J.Id);
    pumpQueue();
    return;
  }

  // The supervisor finished on its own: decode its result frame, or triage
  // its corpse into a typed failure.
  FrameAssembler A(Opts.MaxFrameBytes);
  A.feed(J.ResultBuf.data(), J.ResultBuf.size());
  MsgType Type;
  std::string Body, Err;
  JobReply R;
  bool Clean = WIFEXITED(J.WaitStatus) && WEXITSTATUS(J.WaitStatus) == 0;
  bool Decoded = Clean &&
                 A.next(Type, Body, Err) == FrameAssembler::Result::Frame &&
                 Type == MsgType::JobResult && decodeJobReply(Body, R, Err);
  if (Decoded && J.Pooled)
    // Executives don't know the daemon-side pipeline cost; patch it in so
    // cold pooled replies carry the same accounting as supervisor ones.
    R.PipelineSec = J.CacheHit || !J.Prog ? 0 : J.Prog->PipelineSec;
  if (Decoded && R.Status == JobStatus::Ok) {
    ++stat("jobs_completed");
    // Jobs execute in supervisor/executive processes, so their runtime
    // registries die with them; fold the reply's commutative-heap stats
    // into the daemon registry so the status JSON aggregates them.
    StatisticRegistry::instance().counter("com", "updates") += R.ComUpdates;
    StatisticRegistry::instance().counter("com", "records-committed") +=
        R.ComRecordsCommitted;
    if (J.Attempt > 0)
      ++stat("retry_success");
    if (Opts.Verbose)
      std::fprintf(stderr, "[privateer-served] job %llu done: ok%s\n",
                   static_cast<unsigned long long>(J.Id),
                   J.Attempt > 0 ? " (after retry)" : "");
    replyToJob(J, std::move(R));
    Jobs.erase(J.Id);
    pumpQueue();
    return;
  }
  if (!Decoded) {
    R = triageFailure(J);
    // Deterministic program-class crash signals poison the cached program:
    // resubmitting the same text answers from the negative verdict instead
    // of crashing another supervisor.  External SIGKILL/SIGTERM say
    // nothing about the program and never poison.
    if (J.Prog && R.Cause == FailureCause::Signal) {
      int Sig = static_cast<int>(R.TermSignal);
      if (Sig == SIGSEGV || Sig == SIGBUS || Sig == SIGABRT ||
          Sig == SIGFPE || Sig == SIGILL) {
        J.Prog->Poisoned = true;
        J.Prog->PoisonReply = JobReply();
        J.Prog->PoisonReply.Status = R.Status;
        J.Prog->PoisonReply.Cause = R.Cause;
        J.Prog->PoisonReply.TermSignal = R.TermSignal;
        J.Prog->PoisonReply.Error = "cached negative verdict: " + R.Error;
      }
    }
  }
  retryOrFail(J, std::move(R));
  pumpQueue();
}

// --- Control plane -------------------------------------------------------

void Server::beginDrain() {
  if (Draining)
    return;
  Draining = true;
  if (Opts.Verbose)
    std::fprintf(stderr, "[privateer-served] draining: %zu queued, %zu "
                 "total jobs\n",
                 queuedCount(), Jobs.size());
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
    if (OwnsSocketFile)
      ::unlink(Opts.SocketPath.c_str());
  }
}

void Server::beginShutdown() {
  // Cancel the queues first so pumpQueue cannot start new supervisors as
  // running jobs die.
  for (auto &[TId, T] : Tenants) {
    for (uint64_t Id : T.Queue) {
      auto It = Jobs.find(Id);
      if (It == Jobs.end())
        continue;
      ++stat("jobs_canceled");
      JobReply R;
      R.Status = JobStatus::Canceled;
      R.Error = "daemon shut down";
      replyToJob(It->second, std::move(R));
      Jobs.erase(It);
    }
    T.Queue.clear();
  }
  for (auto &[Id, J] : Jobs)
    if (J.Running)
      killJob(J, KillCause::Shutdown);
  beginDrain();
}

std::string Server::statusJson() const {
  stat("cache_hits") = Cache.hits();
  stat("cache_misses") = Cache.misses();
  stat("cache_evictions") = Cache.evictions();
  size_t Idle = 0;
  for (const auto &[Id, E] : Pool)
    if (E.ActiveJob == 0 && E.ChanFd >= 0)
      ++Idle;
  char Head[640];
  std::snprintf(Head, sizeof(Head),
                "{\"pid\": %d, \"uptime_sec\": %.3f, \"draining\": %s, "
                "\"queue_depth\": %zu, \"active_jobs\": %zu, "
                "\"workers_in_use\": %u, \"worker_budget\": %u, "
                "\"cache_entries\": %zu, \"executives\": %zu, "
                "\"executives_idle\": %zu, \"tenants\": ",
                static_cast<int>(::getpid()), wallSeconds() - StartTime,
                Draining ? "true" : "false", queuedCount(),
                Jobs.size() - queuedCount(), WorkersInUse, Opts.WorkerBudget,
                Cache.size(), Pool.size(), Idle);
  std::string S(Head);
  S += "{";
  bool First = true;
  for (const auto &[TId, T] : Tenants) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "%s\"%s\": {\"weight\": %.3g, \"priority\": %d, "
                  "\"queued\": %zu, \"submitted\": %llu, "
                  "\"completed\": %llu, \"rejected\": %llu}",
                  First ? "" : ", ",
                  TId.empty() ? "(anonymous)" : TId.c_str(), T.Cfg.Weight,
                  T.Cfg.Priority, T.Queue.size(),
                  static_cast<unsigned long long>(T.Submitted),
                  static_cast<unsigned long long>(T.Completed),
                  static_cast<unsigned long long>(T.Rejected));
    S += Buf;
    First = false;
  }
  S += "}, \"counters\": ";
  return S + StatisticRegistry::instance().toJson() + "}";
}
