//===- service/Protocol.h - privateer-served wire protocol ------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed binary protocol spoken between `privateer-served`
/// and its clients over a Unix-domain socket, and between the daemon and
/// the per-job supervisor processes over a result pipe.
///
/// Frame layout (everything little-endian):
///
///   +----------------+-------------+------------------------+
///   | u32 PayloadLen  | u8 MsgType | PayloadLen-1 body bytes |
///   +----------------+-------------+------------------------+
///
/// PayloadLen counts the type byte plus the body, so a bare control frame
/// (Ack, Drain, ...) has PayloadLen == 1.  A frame whose PayloadLen is 0
/// or exceeds the receiver's limit (kMaxFrameBytes by default) is a
/// protocol violation: the daemon answers with one best-effort Error
/// frame, closes that connection, and keeps serving every other client.
///
/// Bodies are flat field sequences (no tags): u8/u32/u64/f64 fixed-width
/// scalars and u32-length-prefixed strings, decoded by a bounds-checked
/// cursor so truncated or oversized frames fail cleanly instead of
/// reading out of bounds.  A version byte leads every SubmitJob/JobResult
/// body so the format can evolve.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_SERVICE_PROTOCOL_H
#define PRIVATEER_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

namespace privateer {
namespace service {

inline constexpr uint8_t kProtocolVersion = 5;
/// Oldest SubmitJob/JobResult body version still decoded.  v2 (PR 6)
/// predates the Engine byte; v3 (PR 7) added it; v4 adds the tenant id
/// and the submission mode; v5 adds the scheduling strategy and pipeline
/// stage count.  Fields missing from old bodies keep their defaults, so
/// v2-v4 clients ride the in-band DOALL path as anonymous tenants.
inline constexpr uint8_t kMinProtocolVersion = 2;
/// Default ceiling on one frame (module texts and job output both ride in
/// frames; 64 MiB is far above any bundled program).
inline constexpr size_t kMaxFrameBytes = 64u << 20;
/// Sentinel for "no forced supervisor exit" in JobRequest fault knobs.
inline constexpr uint32_t kNoFaultExit = ~0u;

enum class MsgType : uint8_t {
  SubmitJob = 1,   ///< client -> daemon: module text + execution knobs
  JobResult = 2,   ///< daemon -> client (and supervisor -> daemon)
  StatusRequest = 3, ///< client -> daemon
  StatusReply = 4,   ///< daemon -> client: service counters as JSON
  Drain = 5,       ///< client -> daemon: stop accepting, finish the queue
  Shutdown = 6,    ///< client -> daemon: cancel everything and exit
  Ack = 7,         ///< daemon -> client: Drain/Shutdown accepted
  Error = 8,       ///< daemon -> client: protocol violation, closing
  Hello = 9,       ///< client -> daemon: version + tenant + capabilities
  HelloReply = 10, ///< daemon -> client: negotiated capabilities
  ExecAssign = 11, ///< daemon -> executive: run this job (+ image fds)
};

/// How the module text of a SubmitJob travels.
enum class SubmitMode : uint8_t {
  InBand = 0, ///< text inside the frame body (v2/v3 compatible)
  Memfd = 1,  ///< text in a sealed memfd passed via SCM_RIGHTS; the body's
              ///< ModuleText is empty
};

/// How the daemon should execute the submitted module.
enum class JobMode : uint8_t {
  Speculative = 0, ///< full pipeline result run under the parallel runtime
  Sequential = 1,  ///< plain interpretation (baseline / fallback)
};

/// Terminal state of one job, carried in JobResult.
enum class JobStatus : uint8_t {
  Ok = 0,
  Rejected = 1,          ///< admission control: queue full (backpressure)
  ParseError = 2,        ///< module text did not parse / verify
  NotParallelizable = 3, ///< pipeline found no speculatable loop
  Crashed = 4,           ///< supervisor died (signal / truncated result)
  TimedOut = 5,          ///< per-job deadline expired; supervisor killed
  Canceled = 6,          ///< client vanished / shutdown mid-flight
  Draining = 7,          ///< daemon is draining; resubmit elsewhere
  InternalError = 8,
  ResourceLimit = 9,     ///< rlimit / allocation failure (OOM, CPU budget)
};

const char *jobStatusName(JobStatus S);

/// Why a job failed, decoded from the supervisor's waitpid status plus the
/// daemon's own bookkeeping; carried in JobResult so every client sees a
/// typed cause, never just a dead socket.  Infra-class causes (see
/// isInfraFailure) are transient resource exhaustion the daemon retries
/// in-place with a degraded config; program-class causes are properties of
/// the submitted job and are final (and, for deterministic crash signals,
/// cached as negative verdicts against the program).
enum class FailureCause : uint8_t {
  None = 0,        ///< no failure (or the job never started executing)
  Deadline,        ///< daemon killed the supervisor group on its deadline
  ClientGone,      ///< submitting client vanished mid-job
  OutOfMemory,     ///< bad_alloc / fork or mmap ENOMEM / RLIMIT_AS
  CpuLimit,        ///< RLIMIT_CPU exhausted (SIGXCPU)
  Signal,          ///< supervisor killed by TermSignal
  NonzeroExit,     ///< supervisor exited cleanly with SupExitCode != 0
  InfraFork,       ///< daemon could not fork/pipe the supervisor
  ResultTruncated, ///< supervisor's result frame was short or unwritable
  Shutdown,        ///< daemon shut down underneath the job
};

const char *failureCauseName(FailureCause C);

/// Infra-class failures are resource exhaustion that a cheaper retry can
/// dodge (halve the workers, then go sequential); everything else is a
/// property of the program or of the caller and retrying cannot help.
inline bool isInfraFailure(FailureCause C) {
  return C == FailureCause::OutOfMemory || C == FailureCause::InfraFork ||
         C == FailureCause::ResultTruncated;
}

/// A SubmitJob body: the program plus the subset of ParallelOptions and
/// FaultPlan knobs a remote caller may set.  Defaults mirror
/// ParallelOptions so an empty request behaves like local privateer-cc.
struct JobRequest {
  std::string ModuleText;
  /// Multi-tenant admission identity (v4).  Empty = the anonymous tenant,
  /// which is where every v2/v3 submission lands.  Weights, token buckets,
  /// replay windows, and backpressure are all per-tenant.
  std::string TenantId;
  /// How ModuleText travels (v4); see SubmitMode.
  uint8_t Submit = 0;
  JobMode Mode = JobMode::Speculative;
  /// Execution engine (mirrors transform::ExecEngine): 0 = direct-threaded
  /// bytecode VM (default), 1 = tree-walking interpreter (the differential
  /// oracle).  Bytecode silently falls back to the interpreter for
  /// constructs the lowerer declines.
  uint8_t Engine = 0;
  /// Scheduling strategy (mirrors privateer::Strategy): 0 = doall (the
  /// pre-v5 behavior), 1 = doacross, 2 = pipeline.  Non-doall strategies
  /// let the pipeline's dependence-distance pre-pass rewrite provable
  /// carried dependences into token forwarding (v5).
  uint8_t Strat = 0;
  /// Pipeline stage count hint, 0 = derive from the worker count (v5).
  uint32_t NumStages = 0;
  uint32_t NumWorkers = 4;
  uint64_t CheckpointPeriod = 64;
  uint64_t MaxSlotsPerEpoch = 32;
  double InjectMisspecRate = 0.0;
  uint64_t InjectSeed = 1;
  bool EagerCommit = true;
  double StallTimeoutSec = 10.0;
  /// Wall-clock deadline for the whole job once it starts executing; the
  /// daemon multiplies it by timeoutScale() (PRIVATEER_TIMEOUT_SCALE) so
  /// sanitizer CI does not reap slow-but-healthy jobs.  0 = daemon default.
  double DeadlineSec = 0.0;
  /// When non-empty the supervisor records a runtime timeline to this path.
  std::string TracePath;

  /// Client-generated idempotency key (0 = none).  The daemon remembers
  /// the replies of recently finished keyed jobs; a resubmission carrying
  /// the same key — e.g. after a reconnect that raced the original reply —
  /// replays the remembered reply instead of executing the job twice.
  uint64_t IdempotencyKey = 0;

  // --- Per-job resource ceilings (0 = daemon default) --------------------
  /// The supervisor (and, inherited across fork, its whole worker tree)
  /// runs under these rlimits.  A request can lower but never raise the
  /// daemon's configured ceiling.
  uint64_t MaxMemoryBytes = 0; ///< RLIMIT_AS
  uint32_t MaxCpuSec = 0;      ///< RLIMIT_CPU, scaled by timeoutScale()
  uint32_t MaxOpenFiles = 0;   ///< RLIMIT_NOFILE

  // --- Fault injection (tests and bench_service) -------------------------
  /// Supervisor raises SIGKILL on itself mid-job; the daemon must report
  /// the job Crashed and keep serving the same connection.
  bool FaultKillSupervisor = false;
  uint32_t FaultKillWorker = ~0u;
  uint64_t FaultKillAtIter = ~0ULL;
  uint32_t FaultStallWorker = ~0u;
  uint64_t FaultStallAtIter = ~0ULL;
  double FaultStallSeconds = 3600.0;
  double FaultKillRate = 0.0;
  uint64_t FaultSeed = 1;
  /// Supervisor raises this signal on itself before running (0 = off);
  /// drives the supervisor-death signal matrix.
  uint32_t FaultSupervisorSignal = 0;
  /// Supervisor _exit()s with this code before running (kNoFaultExit =
  /// off); exercises the clean-nonzero-exit triage path.
  uint32_t FaultSupervisorExit = kNoFaultExit;
  /// While the job's attempt ordinal is below this, the supervisor reports
  /// a typed out-of-memory failure without running — a deterministic way
  /// to exercise the daemon's infra-retry ladder.
  uint32_t FaultOomAttempts = 0;
  /// Supervisor attempts one allocation of this many bytes before running
  /// (0 = off); sized past the address space it drives the real
  /// bad_alloc -> typed-OOM path.
  uint64_t FaultAllocBytes = 0;
  /// Supervisor burns this much CPU time before running (0 = off); with a
  /// small MaxCpuSec it deterministically draws SIGXCPU.
  double FaultBurnCpuSec = 0.0;
};

/// A JobResult body.
struct JobReply {
  JobStatus Status = JobStatus::InternalError;
  FailureCause Cause = FailureCause::None;
  uint32_t TermSignal = 0;  ///< when Cause is Signal / CpuLimit
  uint32_t SupExitCode = 0; ///< when Cause is NonzeroExit
  /// Execution attempts, counting the daemon's degraded infra retries;
  /// 1 means the first attempt answered.
  uint32_t Attempts = 1;
  /// True when this reply was replayed from the idempotency cache rather
  /// than executed.
  bool IdempotentReplay = false;
  std::string Error;
  std::string Output; ///< the program's (deferred) output, byte-exact
  int64_t ExitValue = 0;
  bool CacheHit = false;
  uint64_t Iterations = 0;
  uint64_t Checkpoints = 0;
  uint64_t Misspecs = 0;
  uint64_t RecoveredIterations = 0;
  /// Commutative-heap activity (sixth heap): deferred updates logged and
  /// records folded at commit.
  uint64_t ComUpdates = 0;
  uint64_t ComRecordsCommitted = 0;
  std::string MisspecReason;
  double PipelineSec = 0; ///< parse+profile+classify+transform (cache miss)
  double ExecSec = 0;     ///< supervisor wall time
  double QueueSec = 0;    ///< admission queue wait
  double WallSec = 0;     ///< submit-to-result, measured by the daemon
};

// --- Body serialization --------------------------------------------------

std::string encodeJobRequest(const JobRequest &R);
bool decodeJobRequest(const std::string &Body, JobRequest &R,
                      std::string &Err);

std::string encodeJobReply(const JobReply &R);
bool decodeJobReply(const std::string &Body, JobReply &R, std::string &Err);

/// A Hello body: version + tenant + capability negotiation.  Sent by v4
/// clients right after connect; the daemon answers with HelloReply.  v2/v3
/// clients never send one and default to the anonymous in-band path.
struct HelloRequest {
  uint8_t Version = kProtocolVersion;
  std::string TenantId;
  bool WantMemfd = false; ///< client can submit via sealed memfd
};

struct HelloReply {
  uint8_t Version = kProtocolVersion;
  bool MemfdOk = false; ///< daemon accepts memfd submission on this conn
};

std::string encodeHello(const HelloRequest &H);
bool decodeHello(const std::string &Body, HelloRequest &H, std::string &Err);
std::string encodeHelloReply(const HelloReply &H);
bool decodeHelloReply(const std::string &Body, HelloReply &H,
                      std::string &Err);

/// An ExecAssign body: daemon -> pre-forked executive.  The program
/// travels out-of-band as a serialized bytecode image in a sealed memfd
/// (SCM_RIGHTS); Key+Generation identify it for the executive's local
/// program cache, so a repeat assignment skips even deserialization.
struct ExecAssignment {
  uint64_t ProgramKey = 0;
  uint64_t Generation = 0;
  bool UseParallel = false; ///< run the planned-DOALL image vs sequential
  uint32_t Attempt = 0;     ///< daemon retry ordinal (FaultOomAttempts)
  JobRequest Req;           ///< execution knobs; ModuleText is empty
};

std::string encodeExecAssign(const ExecAssignment &A);
bool decodeExecAssign(const std::string &Body, ExecAssignment &A,
                      std::string &Err);

// --- Frame I/O -----------------------------------------------------------

/// Blocking frame write (loops over partial writes and EINTR).  \p Body is
/// the payload after the type byte.
bool writeFrame(int Fd, MsgType Type, const std::string &Body,
                std::string &Err);

/// writeFrame with \p NumFds file descriptors attached as SCM_RIGHTS
/// ancillary data on the first byte of the frame (zero-copy submission and
/// executive program hand-off).  \p Fd must be a Unix-domain socket.
bool writeFrameWithFds(int Fd, MsgType Type, const std::string &Body,
                       const int *Fds, size_t NumFds, std::string &Err);

/// recvmsg-based read that also collects any SCM_RIGHTS descriptors
/// (appended to \p Fds, CLOEXEC).  Returns the recv() byte count / -1, and
/// sets \p Truncated when the kernel flagged dropped ancillary data
/// (MSG_CTRUNC) — the caller must treat the stream as poisoned.
ssize_t recvWithFds(int Fd, void *Buf, size_t Len, std::vector<int> &Fds,
                    bool &Truncated);

/// Creates a sealed memfd holding \p Bytes (F_SEAL_SHRINK|GROW|WRITE|SEAL):
/// the receiver can trust both size and contents.  Returns -1 with \p Err
/// set when memfds or sealing are unavailable.
int sealedMemfd(const char *Name, const void *Data, size_t Bytes,
                std::string &Err);

/// True when \p MemFd is sealed immutable (the daemon's acceptance test
/// for client-submitted module texts).
bool memfdIsSealed(int MemFd);

enum class ReadStatus : uint8_t { Ok, Eof, Timeout, Error };

/// Blocking frame read with an optional wall deadline (<= 0: wait
/// forever).  Returns Error (with \p Err set) for malformed length
/// prefixes, Eof for a clean close before any byte of the frame.
ReadStatus readFrame(int Fd, MsgType &Type, std::string &Body,
                     std::string &Err, double TimeoutSec = 0,
                     size_t MaxFrame = kMaxFrameBytes);

/// Incremental frame parser for the daemon's non-blocking reads: feed()
/// appends raw bytes; next() pops one complete frame per call.
class FrameAssembler {
public:
  enum class Result : uint8_t { NeedMore, Frame, Malformed };

  explicit FrameAssembler(size_t MaxFrame = kMaxFrameBytes)
      : MaxFrame(MaxFrame) {}

  void feed(const char *Data, size_t Len) { Buf.append(Data, Len); }

  /// Pops the next complete frame into \p Type / \p Body.  Malformed means
  /// the byte stream is unrecoverable (bad length prefix): the connection
  /// must be dropped.
  Result next(MsgType &Type, std::string &Body, std::string &Err);

  size_t buffered() const { return Buf.size(); }

private:
  std::string Buf;
  size_t MaxFrame;
};

} // namespace service
} // namespace privateer

#endif // PRIVATEER_SERVICE_PROTOCOL_H
