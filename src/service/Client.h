//===- service/Client.h - privateer-served client ---------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small synchronous client for the invocation service: one connection,
/// one outstanding job at a time (the protocol the daemon enforces).
/// privateer-client, `privateer-cc --connect`, the service tests, and
/// bench_service all speak through this class.
///
/// submit() is resilient by default: every request is stamped with a
/// client-generated idempotency key, and a transport failure (daemon
/// restart, dropped socket) triggers reconnect + resubmit under capped
/// exponential backoff with jitter, bounded by an overall deadline
/// budget.  If the original execution finished before the connection
/// died, the daemon replays the remembered reply instead of running the
/// job twice — a daemon restart mid-job is invisible to the caller.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_SERVICE_CLIENT_H
#define PRIVATEER_SERVICE_CLIENT_H

#include "service/Protocol.h"

namespace privateer {
namespace service {

/// Reconnect-and-resubmit policy for Client::submit.
struct RetryPolicy {
  bool Enabled = true;
  /// Total transport attempts (first try included).
  unsigned MaxAttempts = 5;
  /// First backoff sleep; doubled per attempt up to MaxBackoffSec, with
  /// +/-50% jitter so a thundering herd of clients decorrelates.
  double InitialBackoffSec = 0.05;
  double MaxBackoffSec = 2.0;
  /// Overall wall-clock budget across every reconnect + resubmit, scaled
  /// by timeoutScale().  0 = unbounded.
  double BudgetSec = 30.0;
  /// Per-attempt reconnect window (a dead daemon refuses instantly; a
  /// restarting one needs a moment to bind).
  double ReconnectSec = 1.0;
};

class Client {
public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to the daemon socket; retries until \p TimeoutSec so a
  /// just-spawned daemon has time to bind.  Remembers the path for
  /// submit()'s transparent reconnects.  When Tenant or UseMemfd is set
  /// the connection is prefaced with a Hello handshake (protocol v4);
  /// otherwise the client behaves exactly like a v2/v3 caller.
  bool connect(const std::string &SocketPath, std::string &Err,
               double TimeoutSec = 5.0);

  bool connected() const { return Fd >= 0; }
  int fd() const { return Fd; }
  void close();

  /// Submits one job and blocks for its JobResult (0 timeout: forever).
  /// Transport failures reconnect and resubmit per Retry; application
  /// replies (including Rejected/Draining) are returned as-is.
  bool submit(const JobRequest &Req, JobReply &Reply, std::string &Err,
              double TimeoutSec = 0);

  /// Fetches the daemon's status counters as JSON.
  bool status(std::string &Json, std::string &Err, double TimeoutSec = 10);

  /// Asks the daemon to drain (finish queue, then exit) or shut down
  /// (cancel everything, then exit); waits for the Ack.
  bool drain(std::string &Err, double TimeoutSec = 10);
  bool shutdownServer(std::string &Err, double TimeoutSec = 10);

  /// Reconnect + resubmit policy; tests and tools may tighten or disable.
  RetryPolicy Retry;

  /// Multi-tenant identity stamped on every submission and announced in
  /// the Hello handshake.  Empty = the anonymous tenant.  Set before
  /// connect().
  std::string Tenant;

  /// Request zero-copy submission: module text travels in a sealed memfd
  /// via SCM_RIGHTS instead of in the frame body.  Used only when the
  /// daemon's HelloReply grants it; otherwise submissions silently fall
  /// back in-band.  Set before connect().
  bool UseMemfd = false;

  /// Transport-level reconnects performed by submit() so far.
  uint64_t reconnects() const { return Reconnects; }

  /// True when the current connection negotiated memfd submission.
  bool memfdNegotiated() const { return MemfdNegotiated; }

  /// Submissions that actually traveled as sealed memfds.
  uint64_t memfdSubmits() const { return MemfdSubmits; }

private:
  enum class RtStatus : uint8_t {
    Ok,        ///< expected reply frame decoded
    Transport, ///< connection-level failure: reconnect + resubmit may help
    Fatal,     ///< protocol error / timeout: retrying cannot help
  };
  RtStatus roundTripStatus(MsgType Send, const std::string &Body,
                           MsgType Expect, std::string &ReplyBody,
                           std::string &Err, double TimeoutSec,
                           const int *Fds = nullptr, size_t NumFds = 0);
  bool roundTrip(MsgType Send, const std::string &Body, MsgType Expect,
                 std::string &ReplyBody, std::string &Err,
                 double TimeoutSec);
  bool sendHello(std::string &Err);
  uint64_t nextRand();

  int Fd = -1;
  std::string SocketPath;
  uint64_t Reconnects = 0;
  uint64_t RngState = 0;
  bool MemfdNegotiated = false;
  uint64_t MemfdSubmits = 0;
};

} // namespace service
} // namespace privateer

#endif // PRIVATEER_SERVICE_CLIENT_H
