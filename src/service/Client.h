//===- service/Client.h - privateer-served client ---------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small synchronous client for the invocation service: one connection,
/// one outstanding job at a time (the protocol the daemon enforces).
/// privateer-client, `privateer-cc --connect`, the service tests, and
/// bench_service all speak through this class.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_SERVICE_CLIENT_H
#define PRIVATEER_SERVICE_CLIENT_H

#include "service/Protocol.h"

namespace privateer {
namespace service {

class Client {
public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to the daemon socket; retries until \p TimeoutSec so a
  /// just-spawned daemon has time to bind.
  bool connect(const std::string &SocketPath, std::string &Err,
               double TimeoutSec = 5.0);

  bool connected() const { return Fd >= 0; }
  int fd() const { return Fd; }
  void close();

  /// Submits one job and blocks for its JobResult (0 timeout: forever).
  bool submit(const JobRequest &Req, JobReply &Reply, std::string &Err,
              double TimeoutSec = 0);

  /// Fetches the daemon's status counters as JSON.
  bool status(std::string &Json, std::string &Err, double TimeoutSec = 10);

  /// Asks the daemon to drain (finish queue, then exit) or shut down
  /// (cancel everything, then exit); waits for the Ack.
  bool drain(std::string &Err, double TimeoutSec = 10);
  bool shutdownServer(std::string &Err, double TimeoutSec = 10);

private:
  bool roundTrip(MsgType Send, const std::string &Body, MsgType Expect,
                 std::string &ReplyBody, std::string &Err,
                 double TimeoutSec);

  int Fd = -1;
};

} // namespace service
} // namespace privateer

#endif // PRIVATEER_SERVICE_CLIENT_H
