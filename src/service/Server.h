//===- service/Server.h - The privateer-served daemon -----------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent invocation service.  One single-threaded control plane
/// (poll loop over the listening Unix socket, client connections, signal
/// self-pipe, and supervisor result pipes) owns the warm ProgramCache,
/// a bounded FIFO job queue with admission control, and the per-job
/// supervisor processes.
///
/// Why a supervisor *process* per job: the runtime maps its tagged
/// logical heaps at fixed virtual addresses, installs a process-global
/// SIGSEGV handler, and forks its own worker tree — none of which can be
/// shared by concurrent invocations inside one address space.  Each job
/// therefore runs in a forked child (its own process group) that inherits
/// the cached transformed module copy-on-write, executes it, and streams
/// the JobResult back through a pipe.  A supervisor that crashes — or is
/// SIGKILLed by fault injection — is reaped as one failed job; the daemon
/// and every other job keep running.
///
/// Admission control: a job with W workers costs W+1 processes
/// (supervisor + its worker tree).  Jobs start strictly in FIFO order
/// while the total cost of running jobs fits WorkerBudget; when the
/// bounded queue is full, SubmitJob is answered immediately with
/// JobStatus::Rejected (backpressure, the client retries elsewhere).
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_SERVICE_SERVER_H
#define PRIVATEER_SERVICE_SERVER_H

#include "service/ProgramCache.h"
#include "service/Protocol.h"

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <sys/types.h>

namespace privateer {
namespace service {

struct ServerOptions {
  std::string SocketPath;
  /// Total concurrent processes across jobs (each job: NumWorkers + 1
  /// supervisor).  Requests that can never fit are rejected outright.
  unsigned WorkerBudget = 16;
  /// Bounded FIFO admission queue (jobs waiting for budget).
  size_t QueueDepth = 16;
  size_t CacheEntries = 32;
  size_t MaxFrameBytes = kMaxFrameBytes;
  /// Default per-job deadline when the request leaves DeadlineSec at 0;
  /// 0 here means no deadline.  Scaled by timeoutScale() like the
  /// request's own value.
  double DefaultDeadlineSec = 0;
  bool Verbose = false;
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens on Opts.SocketPath and installs signal handlers
  /// (SIGTERM -> drain, SIGINT -> shutdown, SIGCHLD -> reap).
  bool start(std::string &Err);

  /// Serves until drained / shut down.  Returns the process exit code.
  int run();

  /// start() + run() + perror, for forked daemon children in tests and
  /// bench harnesses: `if (fork() == 0) _exit(Server::serve(Opts));`
  static int serve(const ServerOptions &Opts);

private:
  struct Conn {
    int Fd = -1;
    FrameAssembler Frames;
    std::string Out;        ///< bytes waiting for POLLOUT
    uint64_t ActiveJob = 0; ///< one outstanding job per connection
    bool CloseAfterFlush = false;
  };

  enum class KillCause : uint8_t { None, Deadline, ClientGone, Shutdown };

  struct Job {
    uint64_t Id = 0;
    int ConnFd = -1;
    JobRequest Req;
    std::shared_ptr<CachedProgram> Prog;
    bool CacheHit = false;
    bool Running = false;
    pid_t Pid = -1;
    int ResultFd = -1;
    std::string ResultBuf;
    bool ResultEof = false;
    bool Reaped = false;
    int WaitStatus = 0;
    KillCause Killed = KillCause::None;
    double SubmitT = 0, StartT = 0;
    double DeadlineAbs = 0; ///< wallSeconds() deadline; 0 = none
    unsigned Cost = 0;      ///< admission cost: NumWorkers + 1
  };

  // Event handlers.
  void acceptClients();
  void readConn(Conn &C);
  void handleFrame(Conn &C, MsgType Type, const std::string &Body);
  void handleSubmit(Conn &C, const std::string &Body);
  void dropConn(int Fd, const char *Why);
  void protocolError(Conn &C, const std::string &Why);

  // Job lifecycle.
  void pumpQueue();
  void startJob(Job &J);
  [[noreturn]] void runSupervisor(const Job &J);
  void reapChildren();
  void finishJob(Job &J);
  void checkDeadlines(double Now);
  void killJob(Job &J, KillCause Cause);
  void replyToJob(const Job &J, JobReply R);

  // Control plane.
  void beginDrain();
  void beginShutdown();
  std::string statusJson() const;
  void sendFrame(Conn &C, MsgType Type, const std::string &Body);
  void flushConn(Conn &C);
  uint64_t &stat(const char *Name) const;

  ServerOptions Opts;
  ProgramCache Cache;
  int ListenFd = -1;
  int SigPipe[2] = {-1, -1};
  bool Draining = false;
  double StartTime = 0;
  uint64_t NextJobId = 1;
  unsigned WorkersInUse = 0;
  size_t QueuePeak = 0;
  std::map<int, Conn> Conns;
  std::map<uint64_t, Job> Jobs;
  std::deque<uint64_t> Queue; ///< job ids waiting for admission
};

} // namespace service
} // namespace privateer

#endif // PRIVATEER_SERVICE_SERVER_H
