//===- service/Server.h - The privateer-served daemon -----------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent invocation service.  One single-threaded control plane
/// (poll loop over the listening Unix socket, client connections, signal
/// self-pipe, executive channels, and supervisor result pipes) owns the
/// warm ProgramCache, a weighted-fair admission queue, a pool of
/// pre-warmed executive processes, and — for jobs the pool cannot take —
/// per-job supervisor processes.
///
/// Two execution paths:
///
///  - Executive pool (the fast path).  N executives are forked once at
///    startup, each a blank process waiting on a private socketpair.  A
///    warm job is dispatched as one ExecAssign frame whose program rides
///    out-of-band: the ProgramCache's lowered bytecode, serialized into a
///    sealed memfd, handed over via SCM_RIGHTS.  The executive maps and
///    caches the image by (key, generation), so a warm hit pays no fork,
///    no parse, and no lowering — just dispatch and execution.  An
///    executive that crashes mid-job is triaged exactly like a dead
///    supervisor (typed FailureCause, infra retry ladder, negative-verdict
///    poisoning) and replaced.
///
///  - Fork supervisor (the compatible path).  Jobs the pool cannot run —
///    interpreter engine, per-job rlimits, programs whose lowering
///    declined — fork a per-job supervisor exactly as before.
///
/// Admission is weighted fair queuing (start-time fair queuing over
/// per-tenant FIFOs): each tenant carries a weight, a priority band, and
/// an optional token bucket; jobs are served highest-priority-first, then
/// by minimum finish tag, so one chatty tenant cannot starve the rest.
/// With a single (anonymous) tenant this degenerates to exact FIFO.
/// Backpressure is per-tenant: a full tenant queue answers Rejected
/// without touching anyone else's budget.
///
/// Horizontal scaling: with Shards > 1 the parent binds the socket once,
/// then forks N shard children that accept from the shared listening fd
/// (kernel load-balances accepts); each shard is a full daemon with its
/// own cache, pool, and queue.  The parent supervises and respawns
/// shards, and forwards SIGTERM/SIGINT.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_SERVICE_SERVER_H
#define PRIVATEER_SERVICE_SERVER_H

#include "service/ProgramCache.h"
#include "service/Protocol.h"

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <sys/types.h>
#include <vector>

namespace privateer {
namespace service {

/// Static per-tenant admission configuration (--tenant-weight).  Tenants
/// not configured here are created on first submit with defaults.
struct TenantConfig {
  std::string Id;
  double Weight = 1.0;     ///< WFQ share (finish tag = start + cost/weight)
  int Priority = 0;        ///< higher bands are always served first
  double RatePerSec = 0.0; ///< token bucket refill; 0 = unlimited
  double Burst = 0.0;      ///< token bucket depth; 0 = 2*rate or unlimited
};

struct ServerOptions {
  std::string SocketPath;
  /// Total concurrent processes across jobs (each job: NumWorkers + 1
  /// supervisor/executive).  Requests that can never fit are rejected.
  unsigned WorkerBudget = 16;
  /// Bounded per-tenant admission queue (jobs waiting for budget).
  size_t QueueDepth = 16;
  size_t CacheEntries = 32;
  size_t MaxFrameBytes = kMaxFrameBytes;
  /// Default per-job deadline when the request leaves DeadlineSec at 0;
  /// 0 here means no deadline.  Scaled by timeoutScale() like the
  /// request's own value.
  double DefaultDeadlineSec = 0;

  // --- Horizontal scale ---------------------------------------------------
  /// Pre-warmed executive pool size; 0 disables the pool (every job forks
  /// a supervisor, the PR 6 behavior — also the bench baseline).
  unsigned Executives = 4;
  /// Acceptor shards.  1 = single daemon process (default).  N > 1 forks
  /// N full daemons sharing the listening socket.
  unsigned Shards = 1;
  /// Static tenant table; unknown tenants get defaults on first submit.
  std::vector<TenantConfig> Tenants;
  /// Shard child: accept on this inherited fd instead of binding.
  int InheritedListenFd = -1;

  // --- Supervisor resource governance (0 = unlimited) --------------------
  /// Every supervisor (and its worker tree, which inherits the limits
  /// across fork) runs under these rlimits; per-job requests can lower
  /// but never raise them.  RLIMIT_CORE is always 0: a crashing
  /// supervisor must not dump multi-GiB tagged heaps to disk.  Jobs with
  /// any rlimit (daemon-wide or per-request) take the fork-supervisor
  /// path: executives are long-lived and cannot wear per-job limits.
  uint64_t MaxMemoryBytes = 0; ///< RLIMIT_AS
  uint32_t MaxCpuSec = 0;      ///< RLIMIT_CPU (scaled by timeoutScale())
  uint32_t MaxOpenFiles = 0;   ///< RLIMIT_NOFILE

  // --- Client resilience -------------------------------------------------
  /// Per-connection outbound buffer cap: a client whose pending replies
  /// outgrow this is a slow reader and gets dropped instead of ballooning
  /// the daemon's memory.
  size_t MaxConnBufferBytes = 4u << 20;
  /// A connection with pending output that makes no read progress for
  /// this long (scaled by timeoutScale()) is dropped.
  double WriteStallSec = 10.0;
  /// Finished replies remembered for idempotent resubmission (SubmitJob
  /// IdempotencyKey); bounds each tenant's replay cache.
  size_t ReplayEntries = 128;
  /// In-daemon retries of infra-class failures: attempt 1 halves the
  /// workers, attempt 2 runs sequentially.  0 disables retrying.
  unsigned MaxRetries = 2;
  /// Test-only: when nonzero, shrink SO_SNDBUF on accepted connections so
  /// slow-reader backpressure is reachable with small outputs.
  int SendBufBytes = 0;
  bool Verbose = false;
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens on Opts.SocketPath (or adopts InheritedListenFd),
  /// installs signal handlers (SIGTERM -> drain, SIGINT -> shutdown,
  /// SIGCHLD -> reap), and pre-forks the executive pool.
  bool start(std::string &Err);

  /// Serves until drained / shut down.  Returns the process exit code.
  int run();

  /// start() + run() + perror, for forked daemon children in tests and
  /// bench harnesses: `if (fork() == 0) _exit(Server::serve(Opts));`
  /// With Opts.Shards > 1 this becomes the shard parent: it binds once,
  /// forks the shards, supervises them, and returns when they exit.
  static int serve(const ServerOptions &Opts);

private:
  struct Conn {
    int Fd = -1;
    FrameAssembler Frames;
    std::string Out;        ///< bytes waiting for POLLOUT
    uint64_t ActiveJob = 0; ///< one outstanding job per connection
    bool CloseAfterFlush = false;
    /// Slated for dropConn at the top of the next event-loop pass (slow
    /// reader); deferred so reply paths holding a Conn& stay valid.
    bool Doomed = false;
    const char *DoomWhy = "";
    /// wallSeconds() of the last write progress while Out was nonempty;
    /// 0 when Out is empty.
    double LastWriteProgress = 0;
    /// Negotiated by Hello (v4); v2/v3 connections keep the defaults.
    std::string Tenant;
    bool MemfdOk = false;
    /// SCM_RIGHTS descriptors received but not yet claimed by a SubmitJob
    /// (a memfd's frame body may complete on a later read).
    std::vector<int> PendingFds;
  };

  enum class KillCause : uint8_t { None, Deadline, ClientGone, Shutdown };

  struct Job {
    uint64_t Id = 0;
    int ConnFd = -1;
    JobRequest Req;
    std::string Tenant; ///< resolved admission identity
    std::shared_ptr<CachedProgram> Prog;
    bool CacheHit = false;
    bool Running = false;
    /// Dispatched to a pooled executive (Pid is the executive's; result
    /// arrives on its channel, not a per-job pipe).
    bool Pooled = false;
    uint64_t ExecId = 0; ///< owning executive when Pooled
    pid_t Pid = -1;
    int ResultFd = -1;
    std::string ResultBuf;
    bool ResultEof = false;
    bool Reaped = false;
    int WaitStatus = 0;
    KillCause Killed = KillCause::None;
    double SubmitT = 0, StartT = 0;
    double DeadlineAbs = 0; ///< wallSeconds() deadline; 0 = none
    unsigned Cost = 0;      ///< admission cost: NumWorkers + 1
    /// SFQ tags assigned at enqueue: start = max(V, tenant last finish),
    /// finish = start + cost/weight.  Service order is min finish tag
    /// within the highest nonempty priority band.
    double STag = 0, FTag = 0;
    /// Execution attempt ordinal; bumped by in-daemon infra retries
    /// (attempt 1 halves the workers, attempt 2 runs sequentially).
    unsigned Attempt = 0;
  };

  /// One pre-warmed executive process and its dispatch channel.
  struct Executive {
    uint64_t Id = 0;
    pid_t Pid = -1;
    int ChanFd = -1; ///< daemon end of the socketpair
    FrameAssembler Frames;
    uint64_t ActiveJob = 0; ///< 0 = idle
  };

  /// Per-tenant WFQ state: FIFO queue, fair-queuing tags, token bucket,
  /// replay window, and stats.
  struct TenantState {
    TenantConfig Cfg;
    std::deque<uint64_t> Queue;
    double LastFinish = 0; ///< finish tag of the most recent enqueue
    double Tokens = 0;
    double LastRefill = 0;
    bool BucketPrimed = false;
    /// Per-tenant idempotency replay window (bounded by ReplayEntries).
    std::map<uint64_t, JobReply> Replay;
    std::deque<uint64_t> ReplayOrder;
    uint64_t Submitted = 0, Completed = 0, Rejected = 0;
  };

  // Event handlers.
  void acceptClients();
  void readConn(Conn &C);
  void handleFrame(Conn &C, MsgType Type, const std::string &Body);
  void handleHello(Conn &C, const std::string &Body);
  void handleSubmit(Conn &C, const std::string &Body);
  void readExecutive(Executive &E);
  void dropConn(int Fd, const char *Why);
  void protocolError(Conn &C, const std::string &Why);

  // Executive pool.
  bool spawnExecutive(std::string &Err);
  void respawnExecutive(uint64_t ExecId);
  void shutdownPool();
  Executive *idleExecutive();
  /// True when the pool can run \p J: bytecode engine, lowered image
  /// available for the requested mode, and no per-job rlimits.
  bool poolEligible(const Job &J) const;
  /// Hands \p J to \p E (ExecAssign + image fd).  False on send failure —
  /// the executive is respawned and the caller falls back to a fork.
  bool dispatchToExecutive(Job &J, Executive &E);

  // WFQ admission.
  TenantState &tenantState(const std::string &Id);
  void refillBucket(TenantState &T, double Now);
  /// Total jobs waiting across all tenant queues.
  size_t queuedCount() const;
  /// Removes \p Id from its tenant's queue (cancel / disconnect).
  void unqueueJob(const Job &J);

  // Job lifecycle.
  void pumpQueue();
  void startJob(Job &J);
  [[noreturn]] void runSupervisor(const Job &J);
  void applySupervisorLimits(const JobRequest &Req);
  void reapChildren();
  void finishJob(Job &J);
  /// Decodes the supervisor's wait status / result frame into a typed
  /// failure reply (Cause, TermSignal, SupExitCode).
  JobReply triageFailure(const Job &J);
  /// Requeues an infra-failed job with a degraded config, or — when the
  /// retry budget is spent or the cause is program-class — sends \p R as
  /// the final answer.  Returns true when the job was requeued.
  bool retryOrFail(Job &J, JobReply R);
  void checkDeadlines(double Now);
  void checkConnHealth(double Now);
  void killJob(Job &J, KillCause Cause);
  void replyToJob(const Job &J, JobReply R);
  void rememberReply(const Job &J, const JobReply &R);

  // Control plane.
  void beginDrain();
  void beginShutdown();
  std::string statusJson() const;
  void sendFrame(Conn &C, MsgType Type, const std::string &Body);
  void flushConn(Conn &C);
  uint64_t &stat(const char *Name) const;

  /// Shard parent: bind once, fork Opts.Shards children on the shared
  /// listening socket, supervise and respawn them.
  static int serveSharded(const ServerOptions &Opts);

  ServerOptions Opts;
  ProgramCache Cache;
  int ListenFd = -1;
  bool OwnsSocketFile = true; ///< false in shard children
  int SigPipe[2] = {-1, -1};
  bool Draining = false;
  double StartTime = 0;
  uint64_t NextJobId = 1;
  uint64_t NextExecId = 1;
  unsigned WorkersInUse = 0;
  size_t QueuePeak = 0;
  double VirtualTime = 0; ///< SFQ virtual clock (start tag of last dispatch)
  std::map<int, Conn> Conns;
  std::map<uint64_t, Job> Jobs;
  std::map<uint64_t, Executive> Pool;
  std::map<std::string, TenantState> Tenants;
};

} // namespace service
} // namespace privateer

#endif // PRIVATEER_SERVICE_SERVER_H
