//===- service/Server.h - The privateer-served daemon -----------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent invocation service.  One single-threaded control plane
/// (poll loop over the listening Unix socket, client connections, signal
/// self-pipe, and supervisor result pipes) owns the warm ProgramCache,
/// a bounded FIFO job queue with admission control, and the per-job
/// supervisor processes.
///
/// Why a supervisor *process* per job: the runtime maps its tagged
/// logical heaps at fixed virtual addresses, installs a process-global
/// SIGSEGV handler, and forks its own worker tree — none of which can be
/// shared by concurrent invocations inside one address space.  Each job
/// therefore runs in a forked child (its own process group) that inherits
/// the cached transformed module copy-on-write, executes it, and streams
/// the JobResult back through a pipe.  A supervisor that crashes — or is
/// SIGKILLed by fault injection — is reaped as one failed job; the daemon
/// and every other job keep running.
///
/// Admission control: a job with W workers costs W+1 processes
/// (supervisor + its worker tree).  Jobs start strictly in FIFO order
/// while the total cost of running jobs fits WorkerBudget; when the
/// bounded queue is full, SubmitJob is answered immediately with
/// JobStatus::Rejected (backpressure, the client retries elsewhere).
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_SERVICE_SERVER_H
#define PRIVATEER_SERVICE_SERVER_H

#include "service/ProgramCache.h"
#include "service/Protocol.h"

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <sys/types.h>

namespace privateer {
namespace service {

struct ServerOptions {
  std::string SocketPath;
  /// Total concurrent processes across jobs (each job: NumWorkers + 1
  /// supervisor).  Requests that can never fit are rejected outright.
  unsigned WorkerBudget = 16;
  /// Bounded FIFO admission queue (jobs waiting for budget).
  size_t QueueDepth = 16;
  size_t CacheEntries = 32;
  size_t MaxFrameBytes = kMaxFrameBytes;
  /// Default per-job deadline when the request leaves DeadlineSec at 0;
  /// 0 here means no deadline.  Scaled by timeoutScale() like the
  /// request's own value.
  double DefaultDeadlineSec = 0;

  // --- Supervisor resource governance (0 = unlimited) --------------------
  /// Every supervisor (and its worker tree, which inherits the limits
  /// across fork) runs under these rlimits; per-job requests can lower
  /// but never raise them.  RLIMIT_CORE is always 0: a crashing
  /// supervisor must not dump multi-GiB tagged heaps to disk.
  uint64_t MaxMemoryBytes = 0; ///< RLIMIT_AS
  uint32_t MaxCpuSec = 0;      ///< RLIMIT_CPU (scaled by timeoutScale())
  uint32_t MaxOpenFiles = 0;   ///< RLIMIT_NOFILE

  // --- Client resilience -------------------------------------------------
  /// Per-connection outbound buffer cap: a client whose pending replies
  /// outgrow this is a slow reader and gets dropped instead of ballooning
  /// the daemon's memory.
  size_t MaxConnBufferBytes = 4u << 20;
  /// A connection with pending output that makes no read progress for
  /// this long (scaled by timeoutScale()) is dropped.
  double WriteStallSec = 10.0;
  /// Finished replies remembered for idempotent resubmission (SubmitJob
  /// IdempotencyKey); bounds the replay cache.
  size_t ReplayEntries = 128;
  /// In-daemon retries of infra-class failures: attempt 1 halves the
  /// workers, attempt 2 runs sequentially.  0 disables retrying.
  unsigned MaxRetries = 2;
  /// Test-only: when nonzero, shrink SO_SNDBUF on accepted connections so
  /// slow-reader backpressure is reachable with small outputs.
  int SendBufBytes = 0;
  bool Verbose = false;
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens on Opts.SocketPath and installs signal handlers
  /// (SIGTERM -> drain, SIGINT -> shutdown, SIGCHLD -> reap).
  bool start(std::string &Err);

  /// Serves until drained / shut down.  Returns the process exit code.
  int run();

  /// start() + run() + perror, for forked daemon children in tests and
  /// bench harnesses: `if (fork() == 0) _exit(Server::serve(Opts));`
  static int serve(const ServerOptions &Opts);

private:
  struct Conn {
    int Fd = -1;
    FrameAssembler Frames;
    std::string Out;        ///< bytes waiting for POLLOUT
    uint64_t ActiveJob = 0; ///< one outstanding job per connection
    bool CloseAfterFlush = false;
    /// Slated for dropConn at the top of the next event-loop pass (slow
    /// reader); deferred so reply paths holding a Conn& stay valid.
    bool Doomed = false;
    const char *DoomWhy = "";
    /// wallSeconds() of the last write progress while Out was nonempty;
    /// 0 when Out is empty.
    double LastWriteProgress = 0;
  };

  enum class KillCause : uint8_t { None, Deadline, ClientGone, Shutdown };

  struct Job {
    uint64_t Id = 0;
    int ConnFd = -1;
    JobRequest Req;
    std::shared_ptr<CachedProgram> Prog;
    bool CacheHit = false;
    bool Running = false;
    pid_t Pid = -1;
    int ResultFd = -1;
    std::string ResultBuf;
    bool ResultEof = false;
    bool Reaped = false;
    int WaitStatus = 0;
    KillCause Killed = KillCause::None;
    double SubmitT = 0, StartT = 0;
    double DeadlineAbs = 0; ///< wallSeconds() deadline; 0 = none
    unsigned Cost = 0;      ///< admission cost: NumWorkers + 1
    /// Execution attempt ordinal; bumped by in-daemon infra retries
    /// (attempt 1 halves the workers, attempt 2 runs sequentially).
    unsigned Attempt = 0;
  };

  // Event handlers.
  void acceptClients();
  void readConn(Conn &C);
  void handleFrame(Conn &C, MsgType Type, const std::string &Body);
  void handleSubmit(Conn &C, const std::string &Body);
  void dropConn(int Fd, const char *Why);
  void protocolError(Conn &C, const std::string &Why);

  // Job lifecycle.
  void pumpQueue();
  void startJob(Job &J);
  [[noreturn]] void runSupervisor(const Job &J);
  void applySupervisorLimits(const JobRequest &Req);
  void reapChildren();
  void finishJob(Job &J);
  /// Decodes the supervisor's wait status / result frame into a typed
  /// failure reply (Cause, TermSignal, SupExitCode).
  JobReply triageFailure(const Job &J);
  /// Requeues an infra-failed job with a degraded config, or — when the
  /// retry budget is spent or the cause is program-class — sends \p R as
  /// the final answer.  Returns true when the job was requeued.
  bool retryOrFail(Job &J, JobReply R);
  void checkDeadlines(double Now);
  void checkConnHealth(double Now);
  void killJob(Job &J, KillCause Cause);
  void replyToJob(const Job &J, JobReply R);
  void rememberReply(const Job &J, const JobReply &R);

  // Control plane.
  void beginDrain();
  void beginShutdown();
  std::string statusJson() const;
  void sendFrame(Conn &C, MsgType Type, const std::string &Body);
  void flushConn(Conn &C);
  uint64_t &stat(const char *Name) const;

  ServerOptions Opts;
  ProgramCache Cache;
  int ListenFd = -1;
  int SigPipe[2] = {-1, -1};
  bool Draining = false;
  double StartTime = 0;
  uint64_t NextJobId = 1;
  unsigned WorkersInUse = 0;
  size_t QueuePeak = 0;
  std::map<int, Conn> Conns;
  std::map<uint64_t, Job> Jobs;
  std::deque<uint64_t> Queue; ///< job ids waiting for admission
  /// Bounded FIFO of finished replies keyed by IdempotencyKey, replayed
  /// when a reconnecting client resubmits a job whose answer it lost.
  std::map<uint64_t, JobReply> Replay;
  std::deque<uint64_t> ReplayOrder;
};

} // namespace service
} // namespace privateer

#endif // PRIVATEER_SERVICE_SERVER_H
