//===- service/ProgramCache.cpp -------------------------------------------===//

#include "service/ProgramCache.h"

#include "bytecode/Image.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "support/Fnv.h"
#include "support/Statistics.h"
#include "support/Timing.h"

#include <unistd.h>

using namespace privateer;
using namespace privateer::service;

CachedProgram::~CachedProgram() {
  if (ImagePar >= 0)
    ::close(ImagePar);
  if (ImageSeq >= 0)
    ::close(ImageSeq);
}

std::shared_ptr<CachedProgram>
ProgramCache::lookup(const std::string &Text, Strategy Strat, std::string &Err,
                     bool &Hit) {
  // The strategy is part of the program's identity: the doacross pre-pass
  // rewrites the module, so the same text compiles to different programs
  // under different strategies and they must not alias in the cache.
  uint64_t Key = fnv1a(Text) ^
                 (0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(Strat) + 1));
  auto It = Entries.find(Key);
  if (It != Entries.end() && It->second.Prog->Text == Text &&
      It->second.Prog->Strat == Strat) {
    Hit = true;
    ++Hits;
    // LRU: a hit renews the entry's lease.
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    if (!It->second.Prog->ParseError.empty()) {
      // Cached negative verdict: the text is known not to parse/verify.
      Err = It->second.Prog->ParseError;
      return nullptr;
    }
    return It->second.Prog;
  }
  Hit = false;
  ++Misses;

  // Caches the entry (positive or negative) under LRU eviction.
  auto Insert = [this](std::shared_ptr<CachedProgram> E) {
    while (Entries.size() >= MaxEntries && !Lru.empty()) {
      Entries.erase(Lru.back());
      Lru.pop_back();
      ++Evictions;
      StatisticRegistry::instance().counter("service", "cache_evictions") += 1;
    }
    // A hash collision with different text replaces the older entry (jobs
    // already holding it keep their shared_ptr).
    auto [Pos, Inserted] = Entries.try_emplace(E->Key);
    if (Inserted) {
      Lru.push_front(E->Key);
      Pos->second.LruIt = Lru.begin();
    } else {
      Lru.splice(Lru.begin(), Lru, Pos->second.LruIt);
    }
    Pos->second.Prog = std::move(E);
  };

  double T0 = wallSeconds();
  auto Entry = std::make_shared<CachedProgram>();
  Entry->Key = Key;
  Entry->Generation = NextGeneration++;
  Entry->Text = Text;
  Entry->Strat = Strat;
  Entry->M = ir::parseModule(Text, Err);
  if (!Entry->M) {
    Err = "parse error: " + Err;
    Entry->ParseError = Err;
    Insert(Entry);
    return nullptr;
  }
  auto Diags = ir::verifyModule(*Entry->M);
  if (!Diags.empty()) {
    Err = "verifier: " + Diags.front();
    Entry->ParseError = Err;
    Entry->M.reset();
    Insert(Entry);
    return nullptr;
  }

  Entry->FA = std::make_unique<analysis::FunctionAnalyses>(*Entry->M);

  // The training run interprets the whole program; its output must not
  // leak into the daemon's stdout.
  std::FILE *TrainSink = std::tmpfile();
  Runtime::get().setSequentialOutput(TrainSink);
  transform::PipelineOptions PipeOpts;
  PipeOpts.Strat = Strat;
  Entry->Pipeline =
      transform::runPrivateerPipeline(*Entry->M, *Entry->FA, PipeOpts);
  Runtime::get().setSequentialOutput(nullptr);
  if (TrainSink)
    std::fclose(TrainSink);
  // Lower to bytecode once per program; every warm hit reuses the
  // programs across fork.  Failure is not an error — executePrivatized /
  // executeSequential fall back to the interpreter on a null program.
  std::string LowerWhy;
  if (Entry->Pipeline.Transformed)
    Entry->LoweredPar = transform::lowerForPrivatized(
        *Entry->M, *Entry->FA, Entry->Pipeline.Assignment, LowerWhy);
  Entry->LoweredSeq = transform::lowerForSequential(*Entry->M, LowerWhy);

  // Serialize each lowered program into a sealed memfd for the executive
  // pool.  Failure (no memfd support) silently disables pooled dispatch
  // for this entry; the fork-supervisor path still works.
  std::string MemfdErr;
  if (Entry->LoweredPar) {
    std::string Img = bytecode::serializeProgram(*Entry->LoweredPar);
    Entry->ImagePar =
        sealedMemfd("privateer-img-par", Img.data(), Img.size(), MemfdErr);
  }
  if (Entry->LoweredSeq) {
    std::string Img = bytecode::serializeProgram(*Entry->LoweredSeq);
    Entry->ImageSeq =
        sealedMemfd("privateer-img-seq", Img.data(), Img.size(), MemfdErr);
  }

  Entry->PipelineSec = wallSeconds() - T0;
  StatisticRegistry::instance().real("service", "pipeline_sec") +=
      Entry->PipelineSec;

  Insert(Entry);
  return Entry;
}
