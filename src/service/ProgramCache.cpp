//===- service/ProgramCache.cpp -------------------------------------------===//

#include "service/ProgramCache.h"

#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "support/Fnv.h"
#include "support/Statistics.h"
#include "support/Timing.h"

using namespace privateer;
using namespace privateer::service;

std::shared_ptr<CachedProgram>
ProgramCache::lookup(const std::string &Text, std::string &Err, bool &Hit) {
  uint64_t Key = fnv1a(Text);
  auto It = Entries.find(Key);
  if (It != Entries.end() && It->second->Text == Text) {
    Hit = true;
    ++Hits;
    if (!It->second->ParseError.empty()) {
      // Cached negative verdict: the text is known not to parse/verify.
      Err = It->second->ParseError;
      return nullptr;
    }
    return It->second;
  }
  Hit = false;
  ++Misses;

  // Caches the entry (positive or negative) under FIFO eviction.
  auto Insert = [this](std::shared_ptr<CachedProgram> E) {
    while (Entries.size() >= MaxEntries && !InsertionOrder.empty()) {
      Entries.erase(InsertionOrder.front());
      InsertionOrder.pop_front();
      ++Evictions;
    }
    // A hash collision with different text replaces the older entry (jobs
    // already holding it keep their shared_ptr).
    if (Entries.emplace(E->Key, E).second)
      InsertionOrder.push_back(E->Key);
    else
      Entries[E->Key] = E;
  };

  double T0 = wallSeconds();
  auto Entry = std::make_shared<CachedProgram>();
  Entry->Key = Key;
  Entry->Text = Text;
  Entry->M = ir::parseModule(Text, Err);
  if (!Entry->M) {
    Err = "parse error: " + Err;
    Entry->ParseError = Err;
    Insert(Entry);
    return nullptr;
  }
  auto Diags = ir::verifyModule(*Entry->M);
  if (!Diags.empty()) {
    Err = "verifier: " + Diags.front();
    Entry->ParseError = Err;
    Entry->M.reset();
    Insert(Entry);
    return nullptr;
  }

  Entry->FA = std::make_unique<analysis::FunctionAnalyses>(*Entry->M);

  // The training run interprets the whole program; its output must not
  // leak into the daemon's stdout.
  std::FILE *TrainSink = std::tmpfile();
  Runtime::get().setSequentialOutput(TrainSink);
  Entry->Pipeline = transform::runPrivateerPipeline(
      *Entry->M, *Entry->FA, transform::PipelineOptions());
  Runtime::get().setSequentialOutput(nullptr);
  if (TrainSink)
    std::fclose(TrainSink);
  // Lower to bytecode once per program; every warm hit reuses the
  // programs across fork.  Failure is not an error — executePrivatized /
  // executeSequential fall back to the interpreter on a null program.
  std::string LowerWhy;
  if (Entry->Pipeline.Transformed)
    Entry->LoweredPar = transform::lowerForPrivatized(
        *Entry->M, *Entry->FA, Entry->Pipeline.Assignment, LowerWhy);
  Entry->LoweredSeq = transform::lowerForSequential(*Entry->M, LowerWhy);

  Entry->PipelineSec = wallSeconds() - T0;
  StatisticRegistry::instance().real("service", "pipeline_sec") +=
      Entry->PipelineSec;

  Insert(Entry);
  return Entry;
}
