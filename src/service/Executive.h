//===- service/Executive.h - Pre-warmed executive process -------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The body of one pre-warmed executive process.  An executive is forked
/// once by the daemon, then runs jobs forever: it blocks on its private
/// socketpair for ExecAssign frames, each carrying the execution knobs
/// in-band and the program out-of-band — a serialized bytecode image in a
/// sealed memfd passed via SCM_RIGHTS.  Images are cached per executive
/// by (program key, generation), so a repeat assignment skips even
/// deserialization; execution brackets the runtime's initialize/shutdown
/// per job (the logical heaps map and unmap cleanly, see
/// runtime/SharedHeap).
///
/// The executive deliberately mirrors the per-job supervisor's reply
/// contract: a clean JobResult frame for every outcome it can express
/// (including typed out-of-memory), death for the outcomes it cannot —
/// the daemon triages a dead executive exactly like a dead supervisor
/// and replaces it.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_SERVICE_EXECUTIVE_H
#define PRIVATEER_SERVICE_EXECUTIVE_H

namespace privateer {
namespace service {

/// Runs the executive loop on \p ChanFd (the child end of the daemon's
/// socketpair) until EOF.  Returns the process exit code (0 on a clean
/// channel close — the daemon is draining).
int executiveMain(int ChanFd);

} // namespace service
} // namespace privateer

#endif // PRIVATEER_SERVICE_EXECUTIVE_H
