//===- service/Executive.cpp - Pre-warmed executive process ---------------===//

#include "service/Executive.h"

#include "bytecode/Image.h"
#include "service/Protocol.h"
#include "support/Timing.h"
#include "transform/Pipeline.h"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <new>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

using namespace privateer;
using namespace privateer::service;

namespace {

/// Per-executive program cache: (daemon program key, cache generation,
/// parallel-vs-sequential image) -> deserialized program.  Bounded LRU —
/// an executive outlives many daemon cache generations.
class LocalPrograms {
public:
  explicit LocalPrograms(size_t Max = 32) : Max(Max) {}

  using Key = std::tuple<uint64_t, uint64_t, bool>;

  const bytecode::BytecodeProgram *find(const Key &K) {
    auto It = Map.find(K);
    if (It == Map.end())
      return nullptr;
    touch(K);
    return It->second.get();
  }

  const bytecode::BytecodeProgram *
  insert(const Key &K, std::unique_ptr<bytecode::BytecodeProgram> P) {
    while (Map.size() >= Max && !Order.empty()) {
      Map.erase(Order.back());
      Order.pop_back();
    }
    touch(K);
    auto &Slot = Map[K];
    Slot = std::move(P);
    return Slot.get();
  }

private:
  void touch(const Key &K) {
    for (auto It = Order.begin(); It != Order.end(); ++It)
      if (*It == K) {
        Order.erase(It);
        break;
      }
    Order.push_front(K);
  }

  size_t Max;
  std::map<Key, std::unique_ptr<bytecode::BytecodeProgram>> Map;
  std::deque<Key> Order; ///< front = most recently used
};

/// Maps the sealed image memfd, deserializes, closes the fd.
std::unique_ptr<bytecode::BytecodeProgram> loadImage(int MemFd,
                                                     std::string &Err) {
  struct stat St{};
  if (::fstat(MemFd, &St) != 0 || St.st_size <= 0) {
    Err = "image fstat failed";
    ::close(MemFd);
    return nullptr;
  }
  size_t Bytes = static_cast<size_t>(St.st_size);
  void *P = ::mmap(nullptr, Bytes, PROT_READ, MAP_PRIVATE, MemFd, 0);
  if (P == MAP_FAILED) {
    Err = std::string("image mmap: ") + std::strerror(errno);
    ::close(MemFd);
    return nullptr;
  }
  auto Prog = bytecode::deserializeProgram(P, Bytes, Err);
  ::munmap(P, Bytes);
  ::close(MemFd);
  return Prog;
}

/// Executes one assignment against \p BP, producing the supervisor-shaped
/// reply.  Mirrors Server::runSupervisor's execution block.
JobReply runAssignment(const ExecAssignment &A,
                       const bytecode::BytecodeProgram &BP) {
  JobReply R;
  const JobRequest &Req = A.Req;

  char *OutBuf = nullptr;
  size_t OutLen = 0;
  std::FILE *Out = ::open_memstream(&OutBuf, &OutLen);
  if (!Out) {
    R.Status = JobStatus::InternalError;
    R.Error = "open_memstream failed";
    return R;
  }

  ParallelOptions Par;
  Par.NumWorkers = Req.NumWorkers;
  Par.CheckpointPeriod = Req.CheckpointPeriod;
  Par.MaxSlotsPerEpoch = Req.MaxSlotsPerEpoch;
  Par.InjectMisspecRate = Req.InjectMisspecRate;
  Par.InjectSeed = Req.InjectSeed;
  Par.EagerCommit = Req.EagerCommit;
  Par.StallTimeoutSec = Req.StallTimeoutSec * timeoutScale();
  Par.TracePath = Req.TracePath;
  Par.Faults.Seed = Req.FaultSeed;
  Par.Faults.KillWorker = Req.FaultKillWorker;
  Par.Faults.KillAtIter = Req.FaultKillAtIter;
  Par.Faults.StallWorker = Req.FaultStallWorker;
  Par.Faults.StallAtIter = Req.FaultStallAtIter;
  Par.Faults.StallSeconds = Req.FaultStallSeconds;
  Par.Faults.KillRate = Req.FaultKillRate;
  Par.Strat = static_cast<Strategy>(Req.Strat);
  Par.NumStages = Req.NumStages;

  transform::PipelineOptions PO;
  PO.Strat = static_cast<Strategy>(Req.Strat);
  PO.NumStages = Req.NumStages;

  double T0 = wallSeconds();
  try {
    if (A.UseParallel) {
      transform::ExecutionResult E = transform::executeLoadedParallel(
          BP, PO, Par, RuntimeConfig(), Out);
      R.ExitValue = E.ReturnValue.asInt();
      R.Iterations = E.Stats.Iterations;
      R.Checkpoints = E.Stats.Checkpoints;
      R.Misspecs = E.Stats.Misspecs;
      R.RecoveredIterations = E.Stats.RecoveredIterations;
      R.ComUpdates = E.Stats.ComUpdates;
      R.ComRecordsCommitted = E.Stats.ComRecordsCommitted;
      R.MisspecReason = E.Stats.FirstMisspecReason;
      R.Status = JobStatus::Ok;
    } else {
      interp::Cell V = transform::executeLoadedSequential(BP, PO, Out);
      R.ExitValue = V.asInt();
      R.Status = JobStatus::Ok;
    }
  } catch (const std::bad_alloc &) {
    R.Status = JobStatus::ResourceLimit;
    R.Cause = FailureCause::OutOfMemory;
    R.Error = "out of memory (bad_alloc) during execution";
  } catch (const std::exception &E) {
    R.Status = JobStatus::InternalError;
    R.Error = E.what();
  }
  R.ExecSec = wallSeconds() - T0;

  std::fclose(Out);
  R.Output.assign(OutBuf, OutLen);
  std::free(OutBuf);
  return R;
}

} // namespace

int service::executiveMain(int ChanFd) {
  ::signal(SIGPIPE, SIG_IGN);
  LocalPrograms Programs;
  FrameAssembler Frames;
  std::vector<int> Fds;

  auto Reply = [&](const JobReply &R) {
    std::string Err;
    if (!writeFrame(ChanFd, MsgType::JobResult, encodeJobReply(R), Err))
      ::_exit(4); // channel gone mid-reply: let the daemon triage a corpse
  };

  while (true) {
    MsgType Type;
    std::string Body, Err;
    FrameAssembler::Result FR = Frames.next(Type, Body, Err);
    if (FR == FrameAssembler::Result::Malformed)
      return 2; // daemon channel is private; corruption is fatal
    if (FR == FrameAssembler::Result::NeedMore) {
      char Buf[64 << 10];
      bool Truncated = false;
      ssize_t N = recvWithFds(ChanFd, Buf, sizeof(Buf), Fds, Truncated);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        return 0; // EOF: the daemon is draining the pool
      if (Truncated)
        return 2;
      Frames.feed(Buf, static_cast<size_t>(N));
      continue;
    }

    if (Type != MsgType::ExecAssign) {
      for (int Fd : Fds)
        ::close(Fd);
      Fds.clear();
      return 2;
    }
    ExecAssignment A;
    if (!decodeExecAssign(Body, A, Err)) {
      for (int Fd : Fds)
        ::close(Fd);
      Fds.clear();
      return 2;
    }
    const JobRequest &Req = A.Req;

    // Supervisor-equivalent fault injection: process-level faults kill
    // this executive (the daemon triages and respawns); typed failures
    // answer in-band and the executive lives on.
    if (Req.FaultKillSupervisor)
      ::raise(SIGKILL);
    if (Req.FaultSupervisorSignal != 0) {
      ::signal(static_cast<int>(Req.FaultSupervisorSignal), SIG_DFL);
      ::raise(static_cast<int>(Req.FaultSupervisorSignal));
    }
    if (Req.FaultSupervisorExit != kNoFaultExit)
      ::_exit(static_cast<int>(Req.FaultSupervisorExit));
    if (Req.FaultBurnCpuSec > 0) {
      double End = cpuSeconds() + Req.FaultBurnCpuSec;
      volatile uint64_t Sink = 0;
      while (cpuSeconds() < End)
        for (int I = 0; I < 4096; ++I)
          Sink = Sink + static_cast<uint64_t>(I) * 2654435761u;
    }
    if (A.Attempt < Req.FaultOomAttempts) {
      for (int Fd : Fds)
        ::close(Fd);
      Fds.clear();
      JobReply R;
      R.Status = JobStatus::ResourceLimit;
      R.Cause = FailureCause::OutOfMemory;
      R.Error = "fault injection: simulated allocation failure on attempt " +
                std::to_string(A.Attempt + 1);
      Reply(R);
      continue;
    }
    if (Req.FaultAllocBytes > 0) {
      bool Failed = false;
      try {
        void *P = ::operator new[](Req.FaultAllocBytes);
        ::operator delete[](P);
      } catch (const std::bad_alloc &) {
        Failed = true;
      }
      if (Failed) {
        for (int Fd : Fds)
          ::close(Fd);
        Fds.clear();
        JobReply R;
        R.Status = JobStatus::ResourceLimit;
        R.Cause = FailureCause::OutOfMemory;
        R.Error = "allocation of " + std::to_string(Req.FaultAllocBytes) +
                  " bytes failed (bad_alloc)";
        Reply(R);
        continue;
      }
    }

    // Resolve the program: local cache hit, else deserialize the memfd
    // image that rode along.  The daemon always attaches the fd (a kernel
    // dup is cheaper than tracking which executive holds what), so a
    // cache hit just closes it.
    LocalPrograms::Key K{A.ProgramKey, A.Generation, A.UseParallel};
    const bytecode::BytecodeProgram *BP = Programs.find(K);
    if (BP) {
      for (int Fd : Fds)
        ::close(Fd);
      Fds.clear();
    } else {
      if (Fds.empty()) {
        JobReply R;
        R.Status = JobStatus::InternalError;
        R.Error = "executive: assignment without a program image";
        Reply(R);
        continue;
      }
      int ImgFd = Fds.front();
      for (size_t I = 1; I < Fds.size(); ++I)
        ::close(Fds[I]);
      Fds.clear();
      auto Loaded = loadImage(ImgFd, Err);
      if (!Loaded) {
        JobReply R;
        R.Status = JobStatus::InternalError;
        R.Error = "executive: bad program image: " + Err;
        Reply(R);
        continue;
      }
      BP = Programs.insert(K, std::move(Loaded));
    }

    Reply(runAssignment(A, *BP));
  }
}
