//===- runtime/Checkpoint.cpp ---------------------------------------------===//

#include "runtime/Checkpoint.h"

#include "runtime/FaultInjection.h"
#include "runtime/ShadowMetadata.h"
#include "support/ErrorHandling.h"
#include "support/Timing.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <sys/mman.h>

using namespace privateer;

namespace {
constexpr uint64_t kSlotAlign = 64;
uint64_t alignUp(uint64_t N) { return (N + kSlotAlign - 1) & ~(kSlotAlign - 1); }
} // namespace

CheckpointRegion::~CheckpointRegion() { destroy(); }

bool CheckpointRegion::create(const Config &C) {
  assert(!Region && "region already created");
  assert(C.NumSlots > 0 && C.NumWorkers > 0 && "empty checkpoint region");
  Cfg = C;
  NumChunks = dirtyChunkCount(C.PrivateBytes);
  MaskWords = dirtyMaskWords(NumChunks);
  ChunkCap = C.SlotChunkCapacity ? std::min(C.SlotChunkCapacity, NumChunks)
                                 : NumChunks;

  // Sparse slot layout: header, dirty-mask union, chunk directory (one
  // uint32 per footprint chunk, 0 = unallocated else entry index + 1),
  // packed (meta, values) chunk entries, redux partial, deferred output.
  // The region is a fresh zero-filled anonymous mapping each epoch, and
  // entries are materialized only when a chunk is first dirtied, so
  // physical memory tracks bytes touched even though the virtual
  // reservation covers the capacity.
  OffMask = alignUp(sizeof(SlotHeader));
  OffDir = OffMask + alignUp(MaskWords * sizeof(uint64_t));
  OffEntries = OffDir + alignUp(NumChunks * sizeof(uint32_t));
  OffRedux = OffEntries + ChunkCap * (2 * kDirtyChunkBytes);
  OffIo = OffRedux + alignUp(C.ReduxBytes);
  OffCom = OffIo + alignUp(C.IoCapacity);
  SlotStride = OffCom + alignUp(C.ComCapacity);
  RegionBytes = (SlotStride * C.NumSlots + 4095) & ~uint64_t(4095);
  void *P = mmap(nullptr, RegionBytes, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return false;
  Region = static_cast<uint8_t *>(P);
  uint64_t EpochEnd = C.BaseIter + C.EpochIters;
  for (uint64_t S = 0; S < C.NumSlots; ++S) {
    SlotHeader *H = slot(S);
    new (H) SlotHeader();
    H->BaseIter = C.BaseIter + S * C.Period;
    // When NumSlots over-provisions the epoch the nominal slot base lies
    // past the epoch end; clamp to an empty slot instead of letting
    // End - BaseIter wrap to a huge iteration count.
    H->NumIters = H->BaseIter < EpochEnd
                      ? std::min(EpochEnd, H->BaseIter + C.Period) - H->BaseIter
                      : 0;
  }
  return true;
}

void CheckpointRegion::destroy() {
  if (!Region)
    return;
  munmap(Region, RegionBytes);
  Region = nullptr;
}

SlotHeader *CheckpointRegion::slot(uint64_t P) const {
  assert(P < Cfg.NumSlots && "slot index out of range");
  return reinterpret_cast<SlotHeader *>(Region + P * SlotStride);
}

uint64_t *CheckpointRegion::slotDirtyMask(uint64_t P) const {
  return reinterpret_cast<uint64_t *>(Region + P * SlotStride + OffMask);
}

uint32_t *CheckpointRegion::slotChunkDir(uint64_t P) const {
  return reinterpret_cast<uint32_t *>(Region + P * SlotStride + OffDir);
}

uint8_t *CheckpointRegion::slotEntries(uint64_t P) const {
  return Region + P * SlotStride + OffEntries;
}

uint8_t *CheckpointRegion::entryMeta(uint64_t P, uint32_t Entry) const {
  return slotEntries(P) + uint64_t(Entry) * (2 * kDirtyChunkBytes);
}

uint8_t *CheckpointRegion::entryValues(uint64_t P, uint32_t Entry) const {
  return entryMeta(P, Entry) + kDirtyChunkBytes;
}

uint8_t *CheckpointRegion::slotRedux(uint64_t P) const {
  return Region + P * SlotStride + OffRedux;
}

uint8_t *CheckpointRegion::slotIo(uint64_t P) const {
  return Region + P * SlotStride + OffIo;
}

uint8_t *CheckpointRegion::slotCom(uint64_t P) const {
  return Region + P * SlotStride + OffCom;
}

uint64_t CheckpointRegion::chunkSpan(uint64_t C) const {
  uint64_t Base = C << kDirtyChunkShift;
  return std::min(kDirtyChunkBytes, Cfg.PrivateBytes - Base);
}

bool CheckpointRegion::slotStableSane(uint64_t P) const {
  const SlotHeader *H = slot(P);
  uint64_t ExpectBase = Cfg.BaseIter + P * Cfg.Period;
  uint64_t EpochEnd = Cfg.BaseIter + Cfg.EpochIters;
  uint64_t ExpectIters =
      ExpectBase < EpochEnd
          ? std::min(EpochEnd, ExpectBase + Cfg.Period) - ExpectBase
          : 0;
  return H->BaseIter == ExpectBase && H->NumIters == ExpectIters &&
         H->NumIters <= Cfg.Period;
}

bool CheckpointRegion::slotHeaderSane(uint64_t P) const {
  const SlotHeader *H = slot(P);
  uint32_t Merged = H->WorkersMerged.load(std::memory_order_acquire);
  return slotStableSane(P) && H->IoBytes <= Cfg.IoCapacity &&
         H->ComBytes <= Cfg.ComCapacity &&
         Merged <= Cfg.NumWorkers && H->ExecutedMerges <= Merged &&
         H->ChunksUsed <= ChunkCap;
}

void CheckpointRegion::workerMerge(uint64_t P, const uint8_t *LocalShadow,
                                   const uint8_t *LocalPrivate,
                                   const uint64_t *DirtyMask,
                                   const ReductionRegistry &Redux,
                                   uint64_t ReduxBase,
                                   std::vector<IoRecord> &PendingIo,
                                   std::vector<ComRecord> &PendingCom,
                                   bool Executed, const MergeContext &Ctx) {
  SlotHeader *H = slot(P);
  bool Broke = H->Lock.lockOrBreak(Ctx.SelfPid, [&Ctx] {
    if (Ctx.Heartbeat)
      Ctx.Heartbeat->store(monotonicNanos(), std::memory_order_relaxed);
  });
  if (Broke) {
    // The previous holder died mid-merge; its partial update may be torn.
    // Poison the slot so the committer recovers this period sequentially,
    // but keep merging so WorkersMerged stays meaningful for siblings.
    H->Poisoned.store(1, std::memory_order_relaxed);
    if (Ctx.LocksBroken)
      Ctx.LocksBroken->fetch_add(1, std::memory_order_relaxed);
  }
  if (Ctx.Injector)
    Ctx.Injector->onSlotLocked(Ctx.WorkerId, P); // May die holding Lock.

  if (Executed) {
    // Fold this worker's per-byte facts into the slot alphabet, visiting
    // only the chunks this worker's dirty mask names.  Codes >= 2 carry
    // period-local information, and such codes only arise from Table 2
    // transitions applied by instrumented accesses — which also set the
    // dirty bit for the chunk — so skipping clean chunks loses nothing.
    uint64_t *SlotMask = slotDirtyMask(P);
    uint32_t *Dir = slotChunkDir(P);
    uint64_t FoldedChunks = 0, Scanned = 0, Skipped = 0;
    for (uint64_t WI = 0; WI < MaskWords; ++WI) {
      uint64_t M = DirtyMask ? DirtyMask[WI] : 0;
      if (!M)
        continue;
      SlotMask[WI] |= M;
      do {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(M));
        M &= M - 1;
        uint64_t C = WI * 64 + Bit;
        uint32_t E = Dir[C];
        if (E == 0) {
          if (H->ChunksUsed >= ChunkCap) {
            // Capacity exhausted: the slot cannot represent this merge.
            // Mark it incomplete; the committer treats that as
            // misspeculation and re-executes the period sequentially.
            H->ChunkOverflow = 1;
            continue;
          }
          E = ++H->ChunksUsed;
          Dir[C] = E; // Entry index + 1; fresh mapping is already zero.
        }
        ++FoldedChunks;
        uint8_t *Meta = entryMeta(P, E - 1);
        uint8_t *Values = entryValues(P, E - 1);
        uint64_t Base = C << kDirtyChunkShift;
        uint64_t Span = chunkSpan(C);
        const uint8_t *Shadow = LocalShadow + Base;
        const uint8_t *Priv = LocalPrivate + Base;
        uint64_t J = 0;
        auto foldByte = [&](uint64_t I) {
          uint8_t Local = Shadow[I];
          if (Local < shadow::kReadLiveIn)
            return;
          uint8_t &SlotCode = Meta[I];
          if (Local == shadow::kReadLiveIn) {
            if (SlotCode == 0 || SlotCode == shadow::kReadLiveIn)
              SlotCode = shadow::kReadLiveIn;
            else
              SlotCode = kSlotConflict; // Read-live-in meets another's write.
          } else {
            // Local is a write timestamp.
            if (SlotCode == 0) {
              SlotCode = Local;
              Values[I] = Priv[I];
            } else if (SlotCode == shadow::kReadLiveIn ||
                       SlotCode == kSlotConflict) {
              SlotCode = kSlotConflict;
            } else if (Local >= SlotCode) {
              // Output dependence between workers: the later iteration's
              // value survives, exactly as in the sequential program.
              SlotCode = Local;
              Values[I] = Priv[I];
            }
          }
        };
        // Word-at-a-time skip in the style of applyReadRange: heap bases
        // are page-aligned, so every full word inside a chunk is aligned.
        for (; J + 8 <= Span; J += 8) {
          uint64_t W;
          __builtin_memcpy(&W, Shadow + J, 8);
          if (wordAllBelowReadLiveIn(W)) {
            Skipped += 8;
            continue;
          }
          Scanned += 8;
          for (uint64_t K = J; K < J + 8; ++K)
            foldByte(K);
        }
        for (; J < Span; ++J) {
          ++Scanned;
          foldByte(J);
        }
      } while (M);
    }
    if (Ctx.Scan) {
      Ctx.Scan->DirtyChunks += FoldedChunks;
      Ctx.Scan->BytesScanned += Scanned;
      Ctx.Scan->BytesSkipped += Skipped;
    }

    // Reduction partials: first contributor copies, later ones combine.
    if (Cfg.ReduxBytes > 0) {
      int64_t SlotBias = reinterpret_cast<int64_t>(slotRedux(P)) -
                         static_cast<int64_t>(ReduxBase);
      if (H->ExecutedMerges == 0)
        std::memcpy(slotRedux(P), reinterpret_cast<void *>(ReduxBase),
                    Cfg.ReduxBytes);
      else
        Redux.combine(SlotBias, 0);
    }

    // Deferred output.  On overflow the records must stay with the worker:
    // the misspec recovery re-executes the period sequentially and emits
    // its output directly, but dropping them here would lose the text if
    // any later path replayed from the worker's buffer.
    if (!PendingIo.empty()) {
      if (serializeIoRecords(PendingIo, slotIo(P), Cfg.IoCapacity,
                             H->IoBytes))
        PendingIo.clear();
      else
        H->IoOverflow = 1;
    }

    // Deferred commutative updates: append this worker's typed records to
    // the slot's com log (mergers already serialize under the slot lock).
    // Overflowed records stay with the worker for the same reason as
    // overflowed output: the sequential recovery re-executes the period
    // and applies the updates directly.
    if (!PendingCom.empty()) {
      uint64_t Appended = 0;
      if (Cfg.ComCapacity >= H->ComBytes &&
          serializeComRecords(PendingCom, slotCom(P) + H->ComBytes,
                              Cfg.ComCapacity - H->ComBytes, Appended)) {
        H->ComBytes += Appended;
        if (Ctx.Scan)
          Ctx.Scan->ComRecords += PendingCom.size();
        PendingCom.clear();
      } else {
        H->ComOverflow = 1;
      }
    }
    ++H->ExecutedMerges;
  }

  // Publication point for the in-epoch commit pump: release-increment as
  // the final store of the merge so a pump that acquires the count equal to
  // NumWorkers also sees every contributor's folded chunks, redux partial,
  // and serialized output (earlier mergers' data reaches this merger via
  // the lock's release/acquire pair, and travels onward transitively).
  H->WorkersMerged.fetch_add(1, std::memory_order_release);
  H->Lock.unlock();
}

CheckpointRegion::CommitStatus CheckpointRegion::commitSlot(
    uint64_t P, uint8_t *MasterShadow, uint8_t *MasterPrivate,
    const ReductionRegistry &Redux, uint64_t ReduxBase,
    uint64_t ComHeapBase, uint64_t ComHeapSpan,
    std::vector<IoRecord> &OutIo, std::string &MisspecWhy,
    CheckpointScanStats *Scan) const {
  SlotHeader *H = slot(P);
  if (H->ChunkOverflow) {
    MisspecWhy = "checkpoint slot chunk capacity exhausted";
    return CommitStatus::Misspec;
  }
  if (H->IoOverflow) {
    MisspecWhy = "deferred-output buffer overflow";
    return CommitStatus::Misspec;
  }
  if (H->ComOverflow) {
    MisspecWhy = "commutative-log capacity exhausted";
    return CommitStatus::Misspec;
  }

  const uint64_t *SlotMask = slotDirtyMask(P);
  const uint32_t *Dir = slotChunkDir(P);
  uint64_t WalkedChunks = 0, Scanned = 0, Skipped = 0;

  // Pass 1: detect phase-2 privacy violations before mutating master state
  // so a misspeculating slot leaves the committed image untouched.  Only
  // read-live-in (2) and conflict (255) bytes matter here; words carrying
  // neither are skipped.
  for (uint64_t WI = 0; WI < MaskWords; ++WI) {
    uint64_t M = SlotMask[WI];
    if (!M)
      continue;
    do {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(M));
      M &= M - 1;
      uint64_t C = WI * 64 + Bit;
      uint32_t E = Dir[C];
      if (E == 0)
        continue; // Mask bit without an entry: nothing was folded.
      ++WalkedChunks;
      const uint8_t *Meta = entryMeta(P, E - 1);
      uint64_t Base = C << kDirtyChunkShift;
      uint64_t Span = chunkSpan(C);
      uint64_t J = 0;
      for (; J + 8 <= Span; J += 8) {
        uint64_t W;
        __builtin_memcpy(&W, Meta + J, 8);
        if (!wordHasByte(W, shadow::kReadLiveIn) &&
            !wordHasByte(W, kSlotConflict)) {
          Skipped += 8;
          continue;
        }
        Scanned += 8;
        for (uint64_t K = J; K < J + 8; ++K) {
          uint8_t Code = Meta[K];
          if (Code == kSlotConflict) {
            MisspecWhy = "private byte both read live-in and written within "
                         "one checkpoint period (conservative)";
            if (Scan) {
              Scan->DirtyChunks += WalkedChunks;
              Scan->BytesScanned += Scanned;
              Scan->BytesSkipped += Skipped;
            }
            return CommitStatus::Misspec;
          }
          if (Code == shadow::kReadLiveIn &&
              MasterShadow[Base + K] == shadow::kOldWrite) {
            MisspecWhy = "loop-carried flow dependence: read of a value "
                         "written in an earlier checkpoint period";
            if (Scan) {
              Scan->DirtyChunks += WalkedChunks;
              Scan->BytesScanned += Scanned;
              Scan->BytesSkipped += Skipped;
            }
            return CommitStatus::Misspec;
          }
        }
      }
      for (; J < Span; ++J) {
        ++Scanned;
        uint8_t Code = Meta[J];
        if (Code == kSlotConflict) {
          MisspecWhy = "private byte both read live-in and written within "
                       "one checkpoint period (conservative)";
          return CommitStatus::Misspec;
        }
        if (Code == shadow::kReadLiveIn &&
            MasterShadow[Base + J] == shadow::kOldWrite) {
          MisspecWhy = "loop-carried flow dependence: read of a value "
                       "written in an earlier checkpoint period";
          return CommitStatus::Misspec;
        }
      }
    } while (M);
  }

  // Pass 2: apply writes (pass 1 guarantees no conflict codes remain).
  // All-zero meta words (chunks dirtied by reads that resolved to
  // live-in, or by writes folded into a different byte range) skip.
  for (uint64_t WI = 0; WI < MaskWords; ++WI) {
    uint64_t M = SlotMask[WI];
    if (!M)
      continue;
    do {
      unsigned Bit = static_cast<unsigned>(__builtin_ctzll(M));
      M &= M - 1;
      uint64_t C = WI * 64 + Bit;
      uint32_t E = Dir[C];
      if (E == 0)
        continue;
      const uint8_t *Meta = entryMeta(P, E - 1);
      const uint8_t *Values = entryValues(P, E - 1);
      uint64_t Base = C << kDirtyChunkShift;
      uint64_t Span = chunkSpan(C);
      uint64_t J = 0;
      for (; J + 8 <= Span; J += 8) {
        uint64_t W;
        __builtin_memcpy(&W, Meta + J, 8);
        if (W == 0) {
          Skipped += 8;
          continue;
        }
        Scanned += 8;
        for (uint64_t K = J; K < J + 8; ++K) {
          if (shadow::isTimestamp(Meta[K]) && Meta[K] != kSlotConflict) {
            MasterPrivate[Base + K] = Values[K];
            MasterShadow[Base + K] = shadow::kOldWrite;
          }
        }
      }
      for (; J < Span; ++J) {
        ++Scanned;
        if (shadow::isTimestamp(Meta[J]) && Meta[J] != kSlotConflict) {
          MasterPrivate[Base + J] = Values[J];
          MasterShadow[Base + J] = shadow::kOldWrite;
        }
      }
    } while (M);
  }

  if (Scan) {
    Scan->DirtyChunks += WalkedChunks;
    Scan->BytesScanned += Scanned;
    Scan->BytesSkipped += Skipped;
  }

  // Combine reduction partials into the committed accumulators.  A slot
  // nobody executed iterations for holds no partial at all.
  if (Cfg.ReduxBytes > 0 && H->ExecutedMerges > 0) {
    int64_t SlotBias = reinterpret_cast<int64_t>(slotRedux(P)) -
                       static_cast<int64_t>(ReduxBase);
    Redux.combine(0, SlotBias);
  }

  // Fold the slot's commutative log into the master heap.  The operators
  // are associative and commutative over wrapping integers, so the order
  // records were appended in (and the order workers merged in) does not
  // matter; every interleaving yields the sequential bytes.  Validation
  // happens wholesale before the first store.
  if (H->ComBytes > 0) {
    uint64_t Applied = 0;
    if (ComHeapSpan == 0 ||
        !applyComRecords(slotCom(P), H->ComBytes, ComHeapBase, ComHeapSpan,
                         Applied)) {
      MisspecWhy = "corrupted commutative log record";
      return CommitStatus::Misspec;
    }
    if (Scan)
      Scan->ComRecords += Applied;
  }

  deserializeIoRecords(slotIo(P), H->IoBytes, OutIo);
  return CommitStatus::Ok;
}
