//===- runtime/Checkpoint.cpp ---------------------------------------------===//

#include "runtime/Checkpoint.h"

#include "runtime/FaultInjection.h"
#include "runtime/ShadowMetadata.h"
#include "support/ErrorHandling.h"
#include "support/Timing.h"

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <sys/mman.h>

using namespace privateer;

namespace {
constexpr uint64_t kSlotAlign = 64;
uint64_t alignUp(uint64_t N) { return (N + kSlotAlign - 1) & ~(kSlotAlign - 1); }
} // namespace

CheckpointRegion::~CheckpointRegion() { destroy(); }

bool CheckpointRegion::create(const Config &C) {
  assert(!Region && "region already created");
  assert(C.NumSlots > 0 && C.NumWorkers > 0 && "empty checkpoint region");
  Cfg = C;
  SlotStride = alignUp(sizeof(SlotHeader)) + alignUp(C.PrivateBytes) * 2 +
               alignUp(C.ReduxBytes) + alignUp(C.IoCapacity);
  RegionBytes = (SlotStride * C.NumSlots + 4095) & ~uint64_t(4095);
  void *P = mmap(nullptr, RegionBytes, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return false;
  Region = static_cast<uint8_t *>(P);
  for (uint64_t S = 0; S < C.NumSlots; ++S) {
    SlotHeader *H = slot(S);
    new (H) SlotHeader();
    H->BaseIter = C.BaseIter + S * C.Period;
    uint64_t End = std::min(C.BaseIter + C.EpochIters,
                            H->BaseIter + C.Period);
    H->NumIters = End - H->BaseIter;
  }
  return true;
}

void CheckpointRegion::destroy() {
  if (!Region)
    return;
  munmap(Region, RegionBytes);
  Region = nullptr;
}

SlotHeader *CheckpointRegion::slot(uint64_t P) const {
  assert(P < Cfg.NumSlots && "slot index out of range");
  return reinterpret_cast<SlotHeader *>(Region + P * SlotStride);
}

uint8_t *CheckpointRegion::slotMeta(uint64_t P) const {
  return Region + P * SlotStride + alignUp(sizeof(SlotHeader));
}

uint8_t *CheckpointRegion::slotValues(uint64_t P) const {
  return slotMeta(P) + alignUp(Cfg.PrivateBytes);
}

uint8_t *CheckpointRegion::slotRedux(uint64_t P) const {
  return slotValues(P) + alignUp(Cfg.PrivateBytes);
}

uint8_t *CheckpointRegion::slotIo(uint64_t P) const {
  return slotRedux(P) + alignUp(Cfg.ReduxBytes);
}

bool CheckpointRegion::slotHeaderSane(uint64_t P) const {
  const SlotHeader *H = slot(P);
  uint64_t ExpectBase = Cfg.BaseIter + P * Cfg.Period;
  uint64_t ExpectEnd =
      std::min(Cfg.BaseIter + Cfg.EpochIters, ExpectBase + Cfg.Period);
  return H->BaseIter == ExpectBase &&
         H->NumIters == ExpectEnd - ExpectBase &&
         H->IoBytes <= Cfg.IoCapacity &&
         H->WorkersMerged <= Cfg.NumWorkers &&
         H->ExecutedMerges <= H->WorkersMerged;
}

void CheckpointRegion::workerMerge(uint64_t P, const uint8_t *LocalShadow,
                                   const uint8_t *LocalPrivate,
                                   const ReductionRegistry &Redux,
                                   uint64_t ReduxBase,
                                   std::vector<IoRecord> &PendingIo,
                                   bool Executed, const MergeContext &Ctx) {
  SlotHeader *H = slot(P);
  bool Broke = H->Lock.lockOrBreak(Ctx.SelfPid, [&Ctx] {
    if (Ctx.Heartbeat)
      Ctx.Heartbeat->store(monotonicNanos(), std::memory_order_relaxed);
  });
  if (Broke) {
    // The previous holder died mid-merge; its partial update may be torn.
    // Poison the slot so the committer recovers this period sequentially,
    // but keep merging so WorkersMerged stays meaningful for siblings.
    H->Poisoned.store(1, std::memory_order_relaxed);
    if (Ctx.LocksBroken)
      Ctx.LocksBroken->fetch_add(1, std::memory_order_relaxed);
  }
  if (Ctx.Injector)
    Ctx.Injector->onSlotLocked(Ctx.WorkerId, P); // May die holding Lock.

  if (Executed) {
    // Fold this worker's per-byte facts into the slot alphabet.  Only codes
    // >= 2 carry period-local information: 0 is untouched, 1 is an old
    // write already known to the master shadow.
    uint8_t *Meta = slotMeta(P);
    uint8_t *Values = slotValues(P);
    for (uint64_t I = 0; I < Cfg.PrivateBytes; ++I) {
      uint8_t Local = LocalShadow[I];
      if (Local < shadow::kReadLiveIn)
        continue;
      uint8_t &SlotCode = Meta[I];
      if (Local == shadow::kReadLiveIn) {
        if (SlotCode == 0 || SlotCode == shadow::kReadLiveIn)
          SlotCode = shadow::kReadLiveIn;
        else
          SlotCode = kSlotConflict; // Read-live-in meets another's write.
      } else {
        // Local is a write timestamp.
        if (SlotCode == 0) {
          SlotCode = Local;
          Values[I] = LocalPrivate[I];
        } else if (SlotCode == shadow::kReadLiveIn ||
                   SlotCode == kSlotConflict) {
          SlotCode = kSlotConflict;
        } else if (Local >= SlotCode) {
          // Output dependence between workers: the later iteration's value
          // survives, exactly as in the sequential program.
          SlotCode = Local;
          Values[I] = LocalPrivate[I];
        }
      }
    }

    // Reduction partials: first contributor copies, later ones combine.
    if (Cfg.ReduxBytes > 0) {
      int64_t SlotBias = reinterpret_cast<int64_t>(slotRedux(P)) -
                         static_cast<int64_t>(ReduxBase);
      if (H->ExecutedMerges == 0)
        std::memcpy(slotRedux(P), reinterpret_cast<void *>(ReduxBase),
                    Cfg.ReduxBytes);
      else
        Redux.combine(SlotBias, 0);
    }

    // Deferred output.
    if (!PendingIo.empty()) {
      if (!serializeIoRecords(PendingIo, slotIo(P), Cfg.IoCapacity,
                              H->IoBytes))
        H->IoOverflow = 1;
      PendingIo.clear();
    }
    ++H->ExecutedMerges;
  }

  ++H->WorkersMerged;
  H->Lock.unlock();
}

CheckpointRegion::CommitStatus CheckpointRegion::commitSlot(
    uint64_t P, uint8_t *MasterShadow, uint8_t *MasterPrivate,
    const ReductionRegistry &Redux, uint64_t ReduxBase,
    std::vector<IoRecord> &OutIo, std::string &MisspecWhy) const {
  SlotHeader *H = slot(P);
  if (H->IoOverflow) {
    MisspecWhy = "deferred-output buffer overflow";
    return CommitStatus::Misspec;
  }

  const uint8_t *Meta = slotMeta(P);
  const uint8_t *Values = slotValues(P);

  // Pass 1: detect phase-2 privacy violations before mutating master state
  // so a misspeculating slot leaves the committed image untouched.
  for (uint64_t I = 0; I < Cfg.PrivateBytes; ++I) {
    uint8_t Code = Meta[I];
    // kSlotConflict must be tested before the timestamp skip: 255 also
    // satisfies isTimestamp().
    if (Code == kSlotConflict) {
      MisspecWhy = "private byte both read live-in and written within one "
                   "checkpoint period (conservative)";
      return CommitStatus::Misspec;
    }
    if (Code == 0 || shadow::isTimestamp(Code))
      continue;
    assert(Code == shadow::kReadLiveIn && "unexpected slot code");
    if (MasterShadow[I] == shadow::kOldWrite) {
      MisspecWhy = "loop-carried flow dependence: read of a value written "
                   "in an earlier checkpoint period";
      return CommitStatus::Misspec;
    }
  }

  // Pass 2: apply writes (pass 1 guarantees no conflict codes remain).
  for (uint64_t I = 0; I < Cfg.PrivateBytes; ++I) {
    if (shadow::isTimestamp(Meta[I]) && Meta[I] != kSlotConflict) {
      MasterPrivate[I] = Values[I];
      MasterShadow[I] = shadow::kOldWrite;
    }
  }

  // Combine reduction partials into the committed accumulators.  A slot
  // nobody executed iterations for holds no partial at all.
  if (Cfg.ReduxBytes > 0 && H->ExecutedMerges > 0) {
    int64_t SlotBias = reinterpret_cast<int64_t>(slotRedux(P)) -
                       static_cast<int64_t>(ReduxBase);
    Redux.combine(0, SlotBias);
  }

  deserializeIoRecords(slotIo(P), H->IoBytes, OutIo);
  return CommitStatus::Ok;
}
