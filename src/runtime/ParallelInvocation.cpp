//===- runtime/ParallelInvocation.cpp - Fork/join DOALL driver -----------===//
//
// Implements paper §5.2 (checkpoints) and §5.3 (recovery): worker processes
// execute DOALL iterations over copy-on-write views of the logical heaps,
// merge speculative state into checkpoint slots, and the main process
// commits checkpoints in order, re-executing sequentially past the earliest
// misspeculated iteration when validation fails.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "runtime/ShadowMetadata.h"
#include "support/ErrorHandling.h"
#include "support/Timing.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>

#include <csignal>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace privateer;

namespace {

constexpr int kMisspecExit = 42;

/// splitmix64; drives deterministic misspeculation injection (Figure 9).
uint64_t hashIteration(uint64_t Iter, uint64_t Seed) {
  uint64_t Z = Iter + Seed * 0x9e3779b97f4a7c15ULL + 0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

uint64_t injectionThreshold(double Rate) {
  if (Rate <= 0)
    return 0;
  if (Rate >= 1)
    return ~0ULL;
  return static_cast<uint64_t>(Rate * 18446744073709551616.0 /* 2^64 */);
}

/// The runtime whose worker is active in this process; used by the SIGSEGV
/// handler that converts stores to the protected read-only heap into
/// misspeculation.
Runtime *ActiveWorkerRuntime = nullptr;
ControlBlock *ActiveWorkerCb = nullptr;
unsigned ActiveWorkerId = 0;
uint64_t ActiveWorkerPeriodBase = 0;
uint64_t ActiveWorkerPeriodLen = 1;

void workerSegvHandler(int /*Sig*/) {
  // Signal-safe misspeculation report: record position, set flag, die.
  ControlBlock *Cb = ActiveWorkerCb;
  if (Cb) {
    uint64_t Iter =
        Cb->WorkerIter[ActiveWorkerId].load(std::memory_order_relaxed);
    ControlBlock::storeMin(Cb->EarliestMisspecIter, Iter);
    ControlBlock::storeMin(Cb->EarliestMisspecPeriod,
                           (Iter - ActiveWorkerPeriodBase) /
                               ActiveWorkerPeriodLen);
    if (Cb->MisspecFlag.exchange(1, std::memory_order_acq_rel) == 0) {
      static const char Msg[] = "fault: store to a protected heap";
      std::memcpy(Cb->MisspecReason, Msg, sizeof(Msg));
    }
  }
  _exit(kMisspecExit);
}

} // namespace

void Runtime::misspecAbort(const char *Reason) {
  if (Mode != ExecMode::SpeculativeWorker)
    reportFatalError(std::string("misspeculation outside a speculative "
                                 "worker: ") +
                     Reason);
  ControlBlock::storeMin(Cb->EarliestMisspecIter, CurIter);
  ControlBlock::storeMin(Cb->EarliestMisspecPeriod,
                         (CurIter - EpochBase) / PeriodLen);
  Cb->ReasonLock.lock();
  if (Cb->MisspecFlag.load(std::memory_order_relaxed) == 0) {
    std::strncpy(Cb->MisspecReason, Reason, sizeof(Cb->MisspecReason) - 1);
    Cb->MisspecReason[sizeof(Cb->MisspecReason) - 1] = '\0';
  }
  Cb->ReasonLock.unlock();
  Cb->MisspecFlag.store(1, std::memory_order_release);
  // "This worker terminates immediately, squashing all its speculative
  // state created since its last checkpoint" (§5.3).
  LocalStats.EndWall = wallSeconds();
  Cb->Stats[WorkerId] = LocalStats;
  _exit(kMisspecExit);
}

InvocationStats Runtime::runParallel(uint64_t NumIterations,
                                     const ParallelOptions &Options,
                                     const IterationFn &Body) {
  assert(Initialized && "runtime not initialized");
  assert(Mode == ExecMode::Sequential && "nested parallel invocation");
  assert(Options.NumWorkers >= 1 && Options.NumWorkers <= kMaxWorkers &&
         "worker count out of range");

  InvocationStats Stats;
  double WallStart = wallSeconds();

  // Everything in the private heap is live-in when the invocation begins.
  std::memset(reinterpret_cast<void *>(Shadow.base()), shadow::kLiveIn,
              Shadow.size());

  // One below the paper's 253-iteration ceiling: timestamp 255 is
  // reserved as the checkpoint slots' read+write conflict code.
  uint64_t Period = std::max<uint64_t>(
      1, std::min(Options.CheckpointPeriod,
                  shadow::kMaxCheckpointPeriod - 1));
  uint64_t MaxSlots = std::max<uint64_t>(1, Options.MaxSlotsPerEpoch);

  uint64_t Next = 0;
  while (Next < NumIterations) {
    uint64_t Remaining = NumIterations - Next;
    uint64_t Slots =
        std::min(MaxSlots, (Remaining + Period - 1) / Period);
    uint64_t EpochIters = std::min(Remaining, Slots * Period);
    EpochPlan Plan{Next, EpochIters, Period, Slots};
    ++Stats.Epochs;

    EpochResult Res = runEpoch(Plan, Options, Body, Stats);
    if (!Res.Misspec) {
      Next = Res.CommittedEnd;
      continue;
    }

    // Recovery (§5.3): re-execute sequentially from the last committed
    // checkpoint until past the misspeculated period, then resume
    // parallel execution.
    ++Stats.Misspecs;
    if (Stats.FirstMisspecReason.empty())
      Stats.FirstMisspecReason = Res.Reason;
    uint64_t RecoveryEnd = std::min(NumIterations, Res.MisspecPeriodEnd);
    std::FILE *SavedOut = SeqOut;
    SeqOut = Options.Out;
    runSequential(Res.CommittedEnd, RecoveryEnd, Body);
    SeqOut = SavedOut;
    Stats.RecoveredIterations += RecoveryEnd - Res.CommittedEnd;
    Next = RecoveryEnd;
  }

  Stats.Iterations = NumIterations;
  Stats.WallSec = wallSeconds() - WallStart;
  return Stats;
}

Runtime::EpochResult Runtime::runEpoch(const EpochPlan &Plan,
                                       const ParallelOptions &Options,
                                       const IterationFn &Body,
                                       InvocationStats &Stats) {
  unsigned W = Options.NumWorkers;
  bool Spec = !Options.NonSpeculative;

  // Shared coordination state, created before fork so every worker and the
  // main process observe one instance.
  void *CbMem = mmap(nullptr, sizeof(ControlBlock), PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (CbMem == MAP_FAILED)
    reportFatalError(std::string("mmap control block: ") +
                     std::strerror(errno));
  Cb = new (CbMem) ControlBlock();
  for (unsigned I = 0; I < kMaxWorkers; ++I)
    Cb->WorkerIter[I].store(Plan.BaseIter, std::memory_order_relaxed);

  CheckpointRegion TheRegion;
  PrivateHighWater = heap(HeapKind::Private).highWater();
  uint64_t ReduxCovered =
      Redux.spanEnd(heap(HeapKind::Redux).base());
  if (Spec) {
    CheckpointRegion::Config C;
    C.NumSlots = Plan.NumSlots;
    C.PrivateBytes = PrivateHighWater;
    C.ReduxBytes = ReduxCovered;
    C.IoCapacity = Options.IoCapacityPerSlot;
    C.BaseIter = Plan.BaseIter;
    C.Period = Plan.Period;
    C.EpochIters = Plan.EpochIters;
    C.NumWorkers = W;
    TheRegion.create(C);
    Region = &TheRegion;
  }

  // Spawn workers (§5.1: "the Privateer runtime system uses processes and
  // not threads" so each can update its virtual memory map independently).
  std::fflush(nullptr); // Don't duplicate pending stdio buffers into kids.
  std::vector<pid_t> Pids(W);
  for (unsigned I = 0; I < W; ++I) {
    pid_t Pid = fork();
    if (Pid < 0)
      reportFatalError(std::string("fork: ") + std::strerror(errno));
    if (Pid == 0)
      workerMain(I, Plan, Options, Body); // Never returns.
    Pids[I] = Pid;
  }

  // Join and classify worker exits.
  for (unsigned I = 0; I < W; ++I) {
    int Status = 0;
    if (waitpid(Pids[I], &Status, 0) < 0)
      reportFatalError(std::string("waitpid: ") + std::strerror(errno));
    bool Clean = WIFEXITED(Status) && (WEXITSTATUS(Status) == 0 ||
                                       WEXITSTATUS(Status) == kMisspecExit);
    if (!Clean) {
      // A worker died without reporting: treat its last known iteration as
      // misspeculated so recovery re-executes it non-speculatively.
      uint64_t Iter = Cb->WorkerIter[I].load(std::memory_order_relaxed);
      ControlBlock::storeMin(Cb->EarliestMisspecIter, Iter);
      ControlBlock::storeMin(Cb->EarliestMisspecPeriod,
                             (Iter - Plan.BaseIter) / Plan.Period);
      if (Cb->MisspecFlag.exchange(1) == 0)
        std::snprintf(Cb->MisspecReason, sizeof(Cb->MisspecReason),
                      "worker %u terminated abnormally (status 0x%x)", I,
                      Status);
    }
  }

  // Aggregate worker statistics.
  for (unsigned I = 0; I < W; ++I) {
    const WorkerStats &S = Cb->Stats[I];
    Stats.PrivateReadCalls += S.PrivateReadCalls;
    Stats.PrivateReadBytes += S.PrivateReadBytes;
    Stats.PrivateWriteCalls += S.PrivateWriteCalls;
    Stats.PrivateWriteBytes += S.PrivateWriteBytes;
    Stats.SeparationChecks += S.SeparationChecks;
    Stats.UsefulSec += S.UsefulSec;
    Stats.PrivateReadSec += S.PrivateReadSec;
    Stats.PrivateWriteSec += S.PrivateWriteSec;
    Stats.CheckpointSec += S.CheckpointSec;
  }

  EpochResult Res;
  Res.CommittedEnd = Plan.BaseIter;
  Res.Misspec = false;
  Res.MisspecPeriodEnd = Plan.BaseIter + Plan.EpochIters;

  bool Flag = Cb->MisspecFlag.load(std::memory_order_acquire) != 0;
  uint64_t MisspecPeriod =
      Flag ? Cb->EarliestMisspecPeriod.load(std::memory_order_relaxed)
           : kNoMisspec;

  if (Spec) {
    // Commit checkpoints in iteration order (§5.2); stop at the first
    // speculative or incomplete one.
    std::vector<IoRecord> CommittedIo;
    std::string Why;
    uint8_t *MasterShadow = reinterpret_cast<uint8_t *>(Shadow.base());
    uint8_t *MasterPrivate =
        reinterpret_cast<uint8_t *>(heap(HeapKind::Private).base());
    for (uint64_t P = 0; P < Plan.NumSlots; ++P) {
      if (Flag && P >= MisspecPeriod) {
        Res.Misspec = true;
        Res.Reason = Cb->MisspecReason;
        Res.MisspecPeriodEnd = std::min(
            Plan.BaseIter + Plan.EpochIters,
            Plan.BaseIter + (MisspecPeriod + 1) * Plan.Period);
        break;
      }
      SlotHeader *H = TheRegion.slot(P);
      if (H->WorkersMerged != W) {
        Res.Misspec = true;
        Res.Reason = "incomplete checkpoint (worker lost)";
        Res.MisspecPeriodEnd = H->BaseIter + H->NumIters;
        break;
      }
      CheckpointRegion::CommitStatus St = TheRegion.commitSlot(
          P, MasterShadow, MasterPrivate, Redux,
          heap(HeapKind::Redux).base(), CommittedIo, Why);
      if (St == CheckpointRegion::CommitStatus::Misspec) {
        Res.Misspec = true;
        Res.Reason = Why;
        Res.MisspecPeriodEnd = H->BaseIter + H->NumIters;
        break;
      }
      Res.CommittedEnd = H->BaseIter + H->NumIters;
      ++Stats.Checkpoints;
    }
    // "take effect only when the checkpoint is marked non-speculative":
    // only output from committed checkpoints is emitted.
    flushIo(CommittedIo, Options.Out);
  } else {
    if (Flag) {
      Res.Misspec = true;
      Res.Reason = Cb->MisspecReason;
    } else {
      Res.CommittedEnd = Plan.BaseIter + Plan.EpochIters;
    }
  }

  Region = nullptr;
  Cb->~ControlBlock();
  munmap(CbMem, sizeof(ControlBlock));
  Cb = nullptr;
  return Res;
}

void Runtime::workerMain(unsigned Id, const EpochPlan &Plan,
                         const ParallelOptions &Options,
                         const IterationFn &Body) {
  bool Spec = !Options.NonSpeculative;
  WorkerId = Id;
  NumWorkers = Options.NumWorkers;
  EpochBase = Plan.BaseIter;
  PeriodLen = Plan.Period;
  LocalStats = WorkerStats();
  LocalStats.StartWall = wallSeconds();
  PendingIo.clear();
  IoSequence = 0;

  if (Spec) {
    Mode = ExecMode::SpeculativeWorker;
    // Copy-on-write isolation of all speculatively managed heaps (§3.2).
    heap(HeapKind::Private).remapCopyOnWrite();
    heap(HeapKind::ShortLived).remapCopyOnWrite();
    heap(HeapKind::Redux).remapCopyOnWrite();
    heap(HeapKind::Unrestricted).remapCopyOnWrite();
    Shadow.remapCopyOnWrite();
    if (Options.ProtectReadOnly) {
      heap(HeapKind::ReadOnly).protectReadOnly();
      ActiveWorkerRuntime = this;
      ActiveWorkerCb = Cb;
      ActiveWorkerId = Id;
      ActiveWorkerPeriodBase = Plan.BaseIter;
      ActiveWorkerPeriodLen = Plan.Period;
      struct sigaction Sa;
      std::memset(&Sa, 0, sizeof(Sa));
      Sa.sa_handler = workerSegvHandler;
      sigaction(SIGSEGV, &Sa, nullptr);
      sigaction(SIGBUS, &Sa, nullptr);
    }
    // "The reduction heap is replaced and bytes within those pages are
    // initialized with the identity value for the reduction operator."
    Redux.fillIdentity();
  } else {
    Mode = ExecMode::NonSpeculativeWorker;
    SeqOut = Options.Out;
  }

  uint64_t InjectThreshold = injectionThreshold(Options.InjectMisspecRate);
  SharedHeap &SL = heap(HeapKind::ShortLived);
  uint8_t *LocalShadow = reinterpret_cast<uint8_t *>(Shadow.base());
  uint8_t *LocalPrivate =
      reinterpret_cast<uint8_t *>(heap(HeapKind::Private).base());
  uint64_t EpochEnd = Plan.BaseIter + Plan.EpochIters;

  bool Stopped = false;
  for (uint64_t P = 0; P < Plan.NumSlots && !Stopped; ++P) {
    uint64_t PeriodStart = Plan.BaseIter + P * Plan.Period;
    uint64_t PeriodEnd = std::min(EpochEnd, PeriodStart + Plan.Period);
    bool Executed = false;

    // This worker's iterations of period P under cyclic scheduling.
    uint64_t First = PeriodStart;
    uint64_t Phase = (First - Plan.BaseIter) % NumWorkers;
    if (Phase != Id)
      First += (Id + NumWorkers - Phase) % NumWorkers;
    for (uint64_t I = First; I < PeriodEnd; I += NumWorkers) {
      CurIter = I;
      Cb->WorkerIter[Id].store(I, std::memory_order_relaxed);
      CurTs = shadow::timestampFor(I, PeriodStart);
      uint64_t ShortLivedLiveAtStart = SL.liveCount();
      {
        CategoryTimer Timer(LocalStats.UsefulSec);
        Body(I);
      }
      ++LocalStats.Iterations;
      Executed = true;

      if (Spec) {
        // "Each worker counts the number of objects allocated and not
        // freed from its short-lived heap.  If any of these objects is
        // live at the end of an iteration, then lifetime speculation is
        // violated" (§5.1).
        if (SL.liveCount() != ShortLivedLiveAtStart)
          misspecAbort("short-lived object outlived its iteration");
        if (SL.liveCount() == 0)
          SL.resetAllocations();
        if (InjectThreshold &&
            hashIteration(I, Options.InjectSeed) < InjectThreshold)
          misspecAbort("injected misspeculation");
      }

      // "Workers consult the global misspeculation flag after each
      // iteration" (§5.3): terminate only if our checkpoint has been
      // squashed; earlier checkpoints still want our contribution.
      if (Cb->MisspecFlag.load(std::memory_order_acquire) &&
          P >= Cb->EarliestMisspecPeriod.load(std::memory_order_relaxed)) {
        Stopped = true;
        break;
      }
    }

    if (Stopped)
      break;
    if (Spec) {
      CategoryTimer Timer(LocalStats.CheckpointSec);
      Region->workerMerge(P, LocalShadow, LocalPrivate, Redux,
                          heap(HeapKind::Redux).base(), PendingIo, Executed);
      if (Executed) {
        // Local post-checkpoint reset (§5.1): writes age into old-write,
        // validated live-in reads revert to live-in.
        shadow::resetRangeAtCheckpoint(LocalShadow, PrivateHighWater);
        Redux.fillIdentity();
      }
    }
    if (Cb->MisspecFlag.load(std::memory_order_acquire) &&
        P + 1 >= Cb->EarliestMisspecPeriod.load(std::memory_order_relaxed))
      break;
  }

  LocalStats.EndWall = wallSeconds();
  Cb->Stats[Id] = LocalStats;
  _exit(0);
}
