//===- runtime/ParallelInvocation.cpp - Fork/join DOALL driver -----------===//
//
// Implements paper §5.2 (checkpoints) and §5.3 (recovery): worker processes
// execute DOALL iterations over copy-on-write views of the logical heaps,
// merge speculative state into checkpoint slots, and the main process
// commits checkpoints in order, re-executing sequentially past the earliest
// misspeculated iteration when validation fails.
//
// The paper's fault model assumes workers either finish or die loudly.
// This driver hardens that optimism: a watchdog reaps workers whose
// heartbeat goes stale, checkpoint-slot locks orphaned by dead workers are
// broken instead of deadlocking siblings, fork/mmap failures degrade to
// sequential execution instead of aborting, and an adaptive policy backs
// off to sequential windows when consecutive epochs keep misspeculating.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "runtime/ShadowMetadata.h"
#include "support/ErrorHandling.h"
#include "support/Statistics.h"
#include "support/Timing.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>

#include <csignal>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace privateer;

namespace {

constexpr int kMisspecExit = 42;

/// The runtime whose worker is active in this process; used by the SIGSEGV
/// handler that converts stores to the protected read-only heap into
/// misspeculation.
Runtime *ActiveWorkerRuntime = nullptr;
ControlBlock *ActiveWorkerCb = nullptr;
unsigned ActiveWorkerId = 0;
uint64_t ActiveWorkerPeriodBase = 0;
uint64_t ActiveWorkerPeriodLen = 1;

/// Alternate signal stack for the worker's SIGSEGV/SIGBUS handler: a
/// stack-overflowing iteration body must still be classified as
/// misspeculation, and the handler cannot run on the exhausted stack.
/// Static because SIGSTKSZ is no longer a compile-time constant on modern
/// glibc; each forked worker gets its own copy-on-write instance.
alignas(16) char WorkerAltStack[64 * 1024];

void workerSegvHandler(int /*Sig*/) {
  // Signal-safe misspeculation report: record position, set flag, die.
  ControlBlock *Cb = ActiveWorkerCb;
  if (Cb) {
    uint64_t Iter =
        Cb->WorkerIter[ActiveWorkerId].load(std::memory_order_relaxed);
    ControlBlock::storeMin(Cb->EarliestMisspecIter, Iter);
    ControlBlock::storeMin(Cb->EarliestMisspecPeriod,
                           (Iter - ActiveWorkerPeriodBase) /
                               ActiveWorkerPeriodLen);
    if (Cb->MisspecFlag.exchange(1, std::memory_order_acq_rel) == 0) {
      static const char Msg[] = "fault: store to a protected heap";
      std::memcpy(Cb->MisspecReason, Msg, sizeof(Msg));
    }
  }
  _exit(kMisspecExit);
}

} // namespace

void Runtime::misspecAbort(const char *Reason) {
  if (Mode != ExecMode::SpeculativeWorker)
    reportFatalError(std::string("misspeculation outside a speculative "
                                 "worker: ") +
                     Reason);
  ControlBlock::storeMin(Cb->EarliestMisspecIter, CurIter);
  ControlBlock::storeMin(Cb->EarliestMisspecPeriod,
                         (CurIter - EpochBase) / PeriodLen);
  // First-flag-setter wins the reason slot.  The main process only reads
  // the reason after joining every worker, so the write below is complete
  // (this process has _exited) by the time anyone reads it; no lock is
  // needed, and none could be trusted — a worker dying inside a reason
  // lock would wedge its siblings.
  if (Cb->MisspecFlag.exchange(1, std::memory_order_acq_rel) == 0) {
    std::strncpy(Cb->MisspecReason, Reason, sizeof(Cb->MisspecReason) - 1);
    Cb->MisspecReason[sizeof(Cb->MisspecReason) - 1] = '\0';
  }
  // "This worker terminates immediately, squashing all its speculative
  // state created since its last checkpoint" (§5.3).
  LocalStats.EndWall = wallSeconds();
  Cb->Stats[WorkerId] = LocalStats;
  _exit(kMisspecExit);
}

void Runtime::runDegraded(uint64_t Begin, uint64_t End,
                          const ParallelOptions &Options,
                          const IterationFn &Body, InvocationStats &Stats,
                          const char *Reason) {
  std::FILE *SavedOut = SeqOut;
  SeqOut = Options.Out;
  runSequential(Begin, End, Body);
  SeqOut = SavedOut;
  ++Stats.DegradedEpochs;
  Stats.DegradedIterations += End - Begin;
  if (Stats.FirstDegradeReason.empty())
    Stats.FirstDegradeReason = Reason;
}

InvocationStats Runtime::runParallel(uint64_t NumIterations,
                                     const ParallelOptions &Options,
                                     const IterationFn &Body) {
  assert(Initialized && "runtime not initialized");
  assert(Mode == ExecMode::Sequential && "nested parallel invocation");
  assert(Options.NumWorkers >= 1 && Options.NumWorkers <= kMaxWorkers &&
         "worker count out of range");

  InvocationStats Stats;
  double WallStart = wallSeconds();

  // Everything in the private heap is live-in when the invocation begins.
  std::memset(reinterpret_cast<void *>(Shadow.base()), shadow::kLiveIn,
              Shadow.size());

  // One below the paper's 253-iteration ceiling: timestamp 255 is
  // reserved as the checkpoint slots' read+write conflict code.
  uint64_t Period = std::max<uint64_t>(
      1, std::min(Options.CheckpointPeriod,
                  shadow::kMaxCheckpointPeriod - 1));
  uint64_t MaxSlots = std::max<uint64_t>(1, Options.MaxSlotsPerEpoch);

  FaultInjector Fi(Options.Faults);
  Injector = Fi.enabled() ? &Fi : nullptr;

  // Adaptive degradation state: after K consecutive misspeculating epochs,
  // run M periods sequentially before retrying speculation; M backs off
  // exponentially while hostility persists, bounding worst-case slowdown
  // to a constant factor over sequential on adversarial inputs.
  unsigned ConsecMisspecEpochs = 0;
  uint64_t BasePeriods = std::max<uint64_t>(1, Options.DegradeBasePeriods);
  uint64_t MaxPeriods = std::max(BasePeriods, Options.DegradeMaxPeriods);
  uint64_t BackoffPeriods = BasePeriods;

  uint64_t Next = 0;
  while (Next < NumIterations) {
    if (Options.DegradeAfterMisspecEpochs != 0 &&
        ConsecMisspecEpochs >= Options.DegradeAfterMisspecEpochs) {
      uint64_t End =
          std::min(NumIterations, Next + BackoffPeriods * Period);
      runDegraded(Next, End, Options, Body, Stats,
                  "adaptive backoff after consecutive misspeculating "
                  "epochs");
      Next = End;
      BackoffPeriods = std::min(BackoffPeriods * 2, MaxPeriods);
      ConsecMisspecEpochs = 0; // Give speculation another chance.
      continue;
    }

    uint64_t Remaining = NumIterations - Next;
    uint64_t Slots =
        std::min(MaxSlots, (Remaining + Period - 1) / Period);
    uint64_t EpochIters = std::min(Remaining, Slots * Period);
    EpochPlan Plan{Next, EpochIters, Period, Slots};
    ++Stats.Epochs;

    EpochResult Res = runEpoch(Plan, Options, Body, Stats);
    if (Res.Degraded) {
      // Speculation could not start (fork/mmap failure): run this epoch's
      // iterations sequentially and carry on; the next epoch retries
      // speculation in case the resource shortage was transient.
      uint64_t End = Plan.BaseIter + Plan.EpochIters;
      runDegraded(Next, End, Options, Body, Stats, Res.Reason.c_str());
      Next = End;
      continue;
    }
    if (!Res.Misspec) {
      Next = Res.CommittedEnd;
      ConsecMisspecEpochs = 0;
      BackoffPeriods = BasePeriods;
      continue;
    }

    // Recovery (§5.3): re-execute sequentially from the last committed
    // checkpoint until past the misspeculated period, then resume
    // parallel execution.
    ++Stats.Misspecs;
    ++ConsecMisspecEpochs;
    if (Stats.FirstMisspecReason.empty())
      Stats.FirstMisspecReason = Res.Reason;
    uint64_t RecoveryEnd = std::min(NumIterations, Res.MisspecPeriodEnd);
    std::FILE *SavedOut = SeqOut;
    SeqOut = Options.Out;
    runSequential(Res.CommittedEnd, RecoveryEnd, Body);
    SeqOut = SavedOut;
    Stats.RecoveredIterations += RecoveryEnd - Res.CommittedEnd;
    Next = RecoveryEnd;
  }

  Injector = nullptr;
  Stats.Iterations = NumIterations;
  Stats.WallSec = wallSeconds() - WallStart;

  // Surface fault-tolerance events through the global registry so tools
  // and reports see them alongside the Table 3 counters.
  StatisticRegistry &Reg = StatisticRegistry::instance();
  Reg.counter("fault", "stalled-workers-killed") += Stats.StalledWorkersKilled;
  Reg.counter("fault", "locks-broken") += Stats.LocksBroken;
  Reg.counter("fault", "fork-failures") += Stats.ForkFailures;
  Reg.counter("fault", "degraded-epochs") += Stats.DegradedEpochs;
  Reg.counter("fault", "degraded-iterations") += Stats.DegradedIterations;
  Reg.counter("checkpoint", "dirty_chunks") += Stats.CheckpointDirtyChunks;
  Reg.counter("checkpoint", "bytes_scanned") += Stats.CheckpointBytesScanned;
  Reg.counter("checkpoint", "bytes_skipped") += Stats.CheckpointBytesSkipped;
  return Stats;
}

Runtime::EpochResult Runtime::runEpoch(const EpochPlan &Plan,
                                       const ParallelOptions &Options,
                                       const IterationFn &Body,
                                       InvocationStats &Stats) {
  unsigned W = Options.NumWorkers;
  bool Spec = !Options.NonSpeculative;

  EpochResult Res;
  Res.CommittedEnd = Plan.BaseIter;
  Res.Misspec = false;
  Res.MisspecPeriodEnd = Plan.BaseIter + Plan.EpochIters;

  // Shared coordination state, created before fork so every worker and the
  // main process observe one instance.
  void *CbMem = mmap(nullptr, sizeof(ControlBlock), PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (CbMem == MAP_FAILED) {
    Res.Degraded = true;
    Res.Reason = std::string("mmap control block: ") + std::strerror(errno);
    return Res;
  }
  Cb = new (CbMem) ControlBlock();
  uint64_t NowNs = monotonicNanos();
  for (unsigned I = 0; I < kMaxWorkers; ++I) {
    Cb->WorkerIter[I].store(Plan.BaseIter, std::memory_order_relaxed);
    Cb->WorkerHeartbeat[I].store(NowNs, std::memory_order_relaxed);
  }

  CheckpointRegion TheRegion;
  PrivateHighWater = heap(HeapKind::Private).highWater();
  uint64_t ReduxCovered =
      Redux.spanEnd(heap(HeapKind::Redux).base());
  if (Spec) {
    // Per-worker dirty-chunk bitmap, sized before fork so every worker's
    // COW copy covers the footprint; workers set bits from the
    // private_read/private_write fast paths and clear them after merging.
    DirtyChunkLimit = dirtyChunkCount(PrivateHighWater);
    DirtyMask.assign(dirtyMaskWords(DirtyChunkLimit), 0);
    Stats.PrivateFootprintBytes =
        std::max(Stats.PrivateFootprintBytes, PrivateHighWater);
    CheckpointRegion::Config C;
    C.NumSlots = Plan.NumSlots;
    C.PrivateBytes = PrivateHighWater;
    C.ReduxBytes = ReduxCovered;
    C.IoCapacity = Options.IoCapacityPerSlot;
    C.BaseIter = Plan.BaseIter;
    C.Period = Plan.Period;
    C.EpochIters = Plan.EpochIters;
    C.NumWorkers = W;
    C.SlotChunkCapacity = Options.CheckpointSlotChunks;
    if (!TheRegion.create(C)) {
      Cb->~ControlBlock();
      munmap(CbMem, sizeof(ControlBlock));
      Cb = nullptr;
      Res.Degraded = true;
      Res.Reason =
          std::string("mmap checkpoint region: ") + std::strerror(errno);
      return Res;
    }
    Region = &TheRegion;
  }

  // Spawn workers (§5.1: "the Privateer runtime system uses processes and
  // not threads" so each can update its virtual memory map independently).
  // SIGCHLD is blocked across the epoch so the watchdog join can sleep in
  // sigtimedwait and still wake the instant a worker exits.
  std::fflush(nullptr); // Don't duplicate pending stdio buffers into kids.
  sigset_t ChldMask, OldMask;
  sigemptyset(&ChldMask);
  sigaddset(&ChldMask, SIGCHLD);
  sigprocmask(SIG_BLOCK, &ChldMask, &OldMask);
  std::vector<pid_t> Pids(W, -1);
  bool ForkFailed = false;
  for (unsigned I = 0; I < W; ++I) {
    pid_t Pid;
    if (Injector && Injector->shouldFailFork()) {
      Pid = -1;
      errno = EAGAIN;
    } else {
      Pid = fork();
    }
    if (Pid < 0) {
      ForkFailed = true;
      Res.Reason = std::string("fork: ") + std::strerror(errno);
      break;
    }
    if (Pid == 0)
      workerMain(I, Plan, Options, Body); // Never returns.
    Pids[I] = Pid;
  }
  if (ForkFailed) {
    // Fall back to sequential execution: discard the partially spawned
    // worker set (nothing they produced can commit).
    for (pid_t Pid : Pids)
      if (Pid > 0)
        kill(Pid, SIGKILL);
    for (pid_t Pid : Pids)
      if (Pid > 0)
        waitpid(Pid, nullptr, 0);
    sigprocmask(SIG_SETMASK, &OldMask, nullptr);
    Region = nullptr;
    Cb->~ControlBlock();
    munmap(CbMem, sizeof(ControlBlock));
    Cb = nullptr;
    ++Stats.ForkFailures;
    Res.Degraded = true;
    return Res;
  }

  if (Spec && Injector)
    Injector->maybeCorruptSlot(TheRegion);

  // Join with a watchdog: reap exits without blocking, and SIGKILL any
  // worker whose heartbeat goes stale for longer than the stall timeout —
  // its last reported iteration is treated as misspeculated and recovered
  // through the sequential path, exactly like any other abnormal death.
  uint64_t StallNs =
      Options.StallTimeoutSec > 0
          ? static_cast<uint64_t>(Options.StallTimeoutSec * 1e9)
          : 0;
  std::vector<bool> Alive(W, true);
  std::vector<bool> StallKilled(W, false);
  unsigned Remaining = W;
  // Stall checks only need to run a few times per timeout window; between
  // them the join sleeps in sigtimedwait, woken early by any SIGCHLD.
  uint64_t CheckNs =
      StallNs ? std::clamp<uint64_t>(StallNs / 8, 1000000, 50000000) : 0;
  while (Remaining > 0) {
    bool Reaped = false;
    for (unsigned I = 0; I < W; ++I) {
      if (!Alive[I])
        continue;
      int Status = 0;
      pid_t R = waitpid(Pids[I], &Status, StallNs ? WNOHANG : 0);
      if (R == 0)
        continue; // Still running.
      if (R < 0)
        reportFatalError(std::string("waitpid: ") + std::strerror(errno));
      Alive[I] = false;
      --Remaining;
      Reaped = true;
      bool Clean = WIFEXITED(Status) &&
                   (WEXITSTATUS(Status) == 0 ||
                    WEXITSTATUS(Status) == kMisspecExit);
      if (!Clean) {
        // A worker died without reporting: treat its last known iteration
        // as misspeculated so recovery re-executes it non-speculatively.
        uint64_t Iter = Cb->WorkerIter[I].load(std::memory_order_relaxed);
        ControlBlock::storeMin(Cb->EarliestMisspecIter, Iter);
        ControlBlock::storeMin(Cb->EarliestMisspecPeriod,
                               (Iter - Plan.BaseIter) / Plan.Period);
        if (Cb->MisspecFlag.exchange(1) == 0)
          std::snprintf(Cb->MisspecReason, sizeof(Cb->MisspecReason),
                        StallKilled[I]
                            ? "worker %u stalled; killed by watchdog "
                              "(status 0x%x)"
                            : "worker %u terminated abnormally (status "
                              "0x%x)",
                        I, Status);
      }
    }
    if (Remaining == 0)
      break;
    if (StallNs) {
      uint64_t Now = monotonicNanos();
      for (unsigned I = 0; I < W; ++I) {
        if (!Alive[I] || StallKilled[I])
          continue;
        uint64_t Beat =
            Cb->WorkerHeartbeat[I].load(std::memory_order_relaxed);
        if (Now > Beat && Now - Beat > StallNs) {
          // Record the stall before killing so the exit classifier labels
          // the death correctly even if a sibling races on the flag.
          StallKilled[I] = true;
          ++Stats.StalledWorkersKilled;
          kill(Pids[I], SIGKILL);
        }
      }
    }
    if (!Reaped) {
      // A SIGCHLD delivered before this point stays pending (the signal is
      // blocked), so sigtimedwait returns immediately: no lost wake-ups.
      timespec Ts{static_cast<time_t>(CheckNs / 1000000000),
                  static_cast<long>(CheckNs % 1000000000)};
      sigtimedwait(&ChldMask, nullptr, &Ts);
    }
  }
  sigprocmask(SIG_SETMASK, &OldMask, nullptr);

  // Aggregate worker statistics.
  for (unsigned I = 0; I < W; ++I) {
    const WorkerStats &S = Cb->Stats[I];
    Stats.PrivateReadCalls += S.PrivateReadCalls;
    Stats.PrivateReadBytes += S.PrivateReadBytes;
    Stats.PrivateWriteCalls += S.PrivateWriteCalls;
    Stats.PrivateWriteBytes += S.PrivateWriteBytes;
    Stats.SeparationChecks += S.SeparationChecks;
    Stats.CheckpointDirtyChunks += S.CheckpointDirtyChunks;
    Stats.CheckpointBytesScanned += S.CheckpointBytesScanned;
    Stats.CheckpointBytesSkipped += S.CheckpointBytesSkipped;
    Stats.UsefulSec += S.UsefulSec;
    Stats.PrivateReadSec += S.PrivateReadSec;
    Stats.PrivateWriteSec += S.PrivateWriteSec;
    Stats.CheckpointSec += S.CheckpointSec;
  }
  Stats.LocksBroken += Cb->LocksBroken.load(std::memory_order_relaxed);

  bool Flag = Cb->MisspecFlag.load(std::memory_order_acquire) != 0;
  uint64_t MisspecPeriod =
      Flag ? Cb->EarliestMisspecPeriod.load(std::memory_order_relaxed)
           : kNoMisspec;

  if (Spec) {
    // Commit checkpoints in iteration order (§5.2); stop at the first
    // speculative, incomplete, or damaged one.  All workers are reaped by
    // now, so a still-held slot lock is orphaned by definition.
    std::vector<IoRecord> CommittedIo;
    std::string Why;
    CheckpointScanStats CommitScan;
    uint8_t *MasterShadow = reinterpret_cast<uint8_t *>(Shadow.base());
    uint8_t *MasterPrivate =
        reinterpret_cast<uint8_t *>(heap(HeapKind::Private).base());
    for (uint64_t P = 0; P < Plan.NumSlots; ++P) {
      if (Flag && P >= MisspecPeriod) {
        Res.Misspec = true;
        Res.Reason = Cb->MisspecReason;
        Res.MisspecPeriodEnd = std::min(
            Plan.BaseIter + Plan.EpochIters,
            Plan.BaseIter + (MisspecPeriod + 1) * Plan.Period);
        break;
      }
      SlotHeader *H = TheRegion.slot(P);
      uint64_t SlotEnd = std::min(Plan.BaseIter + Plan.EpochIters,
                                  Plan.BaseIter + (P + 1) * Plan.Period);
      if (H->Lock.holder() != 0) {
        H->Lock.forceBreak();
        ++Stats.LocksBroken;
        Res.Misspec = true;
        Res.Reason = "checkpoint slot lock orphaned by a dead worker";
        Res.MisspecPeriodEnd = SlotEnd;
        break;
      }
      if (!TheRegion.slotHeaderSane(P)) {
        Res.Misspec = true;
        Res.Reason = "corrupted checkpoint slot header";
        Res.MisspecPeriodEnd = SlotEnd;
        break;
      }
      if (H->Poisoned.load(std::memory_order_relaxed)) {
        Res.Misspec = true;
        Res.Reason = "checkpoint slot torn by a worker that died holding "
                     "its lock";
        Res.MisspecPeriodEnd = SlotEnd;
        break;
      }
      if (H->WorkersMerged != W) {
        Res.Misspec = true;
        Res.Reason = "incomplete checkpoint (worker lost)";
        Res.MisspecPeriodEnd = H->BaseIter + H->NumIters;
        break;
      }
      CheckpointRegion::CommitStatus St = TheRegion.commitSlot(
          P, MasterShadow, MasterPrivate, Redux,
          heap(HeapKind::Redux).base(), CommittedIo, Why, &CommitScan);
      if (St == CheckpointRegion::CommitStatus::Misspec) {
        Res.Misspec = true;
        Res.Reason = Why;
        Res.MisspecPeriodEnd = H->BaseIter + H->NumIters;
        break;
      }
      Res.CommittedEnd = H->BaseIter + H->NumIters;
      ++Stats.Checkpoints;
    }
    Stats.CheckpointDirtyChunks += CommitScan.DirtyChunks;
    Stats.CheckpointBytesScanned += CommitScan.BytesScanned;
    Stats.CheckpointBytesSkipped += CommitScan.BytesSkipped;
    // "take effect only when the checkpoint is marked non-speculative":
    // only output from committed checkpoints is emitted.
    flushIo(CommittedIo, Options.Out);
  } else {
    if (Flag) {
      Res.Misspec = true;
      Res.Reason = Cb->MisspecReason;
    } else {
      Res.CommittedEnd = Plan.BaseIter + Plan.EpochIters;
    }
  }

  // A worker death can set the misspec flag without the commit loop
  // noticing (e.g. the earliest misspeculated period lies beyond the slots
  // this epoch planned); never report a clean epoch while the flag is up.
  if (Spec && Flag && !Res.Misspec) {
    Res.Misspec = true;
    Res.Reason = Cb->MisspecReason;
  }

  Region = nullptr;
  Cb->~ControlBlock();
  munmap(CbMem, sizeof(ControlBlock));
  Cb = nullptr;
  return Res;
}

void Runtime::workerMain(unsigned Id, const EpochPlan &Plan,
                         const ParallelOptions &Options,
                         const IterationFn &Body) {
  bool Spec = !Options.NonSpeculative;
  WorkerId = Id;
  NumWorkers = Options.NumWorkers;
  EpochBase = Plan.BaseIter;
  PeriodLen = Plan.Period;
  LocalStats = WorkerStats();
  LocalStats.StartWall = wallSeconds();
  PendingIo.clear();
  IoSequence = 0;

  if (Spec) {
    Mode = ExecMode::SpeculativeWorker;
    // Copy-on-write isolation of all speculatively managed heaps (§3.2).
    // A failed remap leaves this worker unable to speculate soundly; it
    // reports misspeculation so the main process recovers sequentially
    // rather than aborting the whole program.
    if (!heap(HeapKind::Private).tryRemapCopyOnWrite() ||
        !heap(HeapKind::ShortLived).tryRemapCopyOnWrite() ||
        !heap(HeapKind::Redux).tryRemapCopyOnWrite() ||
        !heap(HeapKind::Unrestricted).tryRemapCopyOnWrite() ||
        !Shadow.tryRemapCopyOnWrite())
      misspecAbort("copy-on-write remap failed in worker");
    if (Options.ProtectReadOnly) {
      heap(HeapKind::ReadOnly).protectReadOnly();
      ActiveWorkerRuntime = this;
      ActiveWorkerCb = Cb;
      ActiveWorkerId = Id;
      ActiveWorkerPeriodBase = Plan.BaseIter;
      ActiveWorkerPeriodLen = Plan.Period;
      // The handler runs on its own stack (SA_ONSTACK) so an iteration
      // body that overflows the worker stack still reports misspeculation
      // instead of dying unclassified.
      stack_t Ss;
      std::memset(&Ss, 0, sizeof(Ss));
      Ss.ss_sp = WorkerAltStack;
      Ss.ss_size = sizeof(WorkerAltStack);
      sigaltstack(&Ss, nullptr);
      struct sigaction Sa;
      std::memset(&Sa, 0, sizeof(Sa));
      Sa.sa_handler = workerSegvHandler;
      Sa.sa_flags = SA_ONSTACK;
      sigaction(SIGSEGV, &Sa, nullptr);
      sigaction(SIGBUS, &Sa, nullptr);
    }
    // "The reduction heap is replaced and bytes within those pages are
    // initialized with the identity value for the reduction operator."
    Redux.fillIdentity();
  } else {
    Mode = ExecMode::NonSpeculativeWorker;
    SeqOut = Options.Out;
  }

  uint64_t InjectThreshold = faultThreshold(Options.InjectMisspecRate);
  SharedHeap &SL = heap(HeapKind::ShortLived);
  uint8_t *LocalShadow = reinterpret_cast<uint8_t *>(Shadow.base());
  uint8_t *LocalPrivate =
      reinterpret_cast<uint8_t *>(heap(HeapKind::Private).base());
  uint64_t EpochEnd = Plan.BaseIter + Plan.EpochIters;

  MergeContext MergeCtx;
  MergeCtx.SelfPid = static_cast<uint32_t>(getpid());
  MergeCtx.WorkerId = Id;
  MergeCtx.Heartbeat = &Cb->WorkerHeartbeat[Id];
  MergeCtx.LocksBroken = &Cb->LocksBroken;
  MergeCtx.Injector = Injector;
  CheckpointScanStats MergeScan;
  MergeCtx.Scan = &MergeScan;

  bool Stopped = false;
  for (uint64_t P = 0; P < Plan.NumSlots && !Stopped; ++P) {
    uint64_t PeriodStart = Plan.BaseIter + P * Plan.Period;
    uint64_t PeriodEnd = std::min(EpochEnd, PeriodStart + Plan.Period);
    bool Executed = false;

    // This worker's iterations of period P under cyclic scheduling.
    uint64_t First = PeriodStart;
    uint64_t Phase = (First - Plan.BaseIter) % NumWorkers;
    if (Phase != Id)
      First += (Id + NumWorkers - Phase) % NumWorkers;
    for (uint64_t I = First; I < PeriodEnd; I += NumWorkers) {
      CurIter = I;
      Cb->WorkerIter[Id].store(I, std::memory_order_relaxed);
      Cb->WorkerHeartbeat[Id].store(monotonicNanos(),
                                    std::memory_order_relaxed);
      if (Injector)
        Injector->onWorkerIteration(Id, I); // May kill or stall us here.
      CurTs = shadow::timestampFor(I, PeriodStart);
      uint64_t ShortLivedLiveAtStart = SL.liveCount();
      {
        CategoryTimer Timer(LocalStats.UsefulSec);
        Body(I);
      }
      ++LocalStats.Iterations;
      Executed = true;

      if (Spec) {
        // "Each worker counts the number of objects allocated and not
        // freed from its short-lived heap.  If any of these objects is
        // live at the end of an iteration, then lifetime speculation is
        // violated" (§5.1).
        if (SL.liveCount() != ShortLivedLiveAtStart)
          misspecAbort("short-lived object outlived its iteration");
        if (SL.liveCount() == 0)
          SL.resetAllocations();
        if (InjectThreshold &&
            faultHash(I, Options.InjectSeed) < InjectThreshold)
          misspecAbort("injected misspeculation");
      }

      // "Workers consult the global misspeculation flag after each
      // iteration" (§5.3): terminate only if our checkpoint has been
      // squashed; earlier checkpoints still want our contribution.
      if (Cb->MisspecFlag.load(std::memory_order_acquire) &&
          P >= Cb->EarliestMisspecPeriod.load(std::memory_order_relaxed)) {
        Stopped = true;
        break;
      }
    }

    if (Stopped)
      break;
    if (Spec) {
      CategoryTimer Timer(LocalStats.CheckpointSec);
      Cb->WorkerHeartbeat[Id].store(monotonicNanos(),
                                    std::memory_order_relaxed);
      Region->workerMerge(P, LocalShadow, LocalPrivate, DirtyMask.data(),
                          Redux, heap(HeapKind::Redux).base(), PendingIo,
                          Executed, MergeCtx);
      // MergeScan accumulates across periods; snapshot it after every merge
      // so the stats survive a later misspecAbort (which copies LocalStats
      // out and _exits).
      LocalStats.CheckpointDirtyChunks = MergeScan.DirtyChunks;
      LocalStats.CheckpointBytesScanned = MergeScan.BytesScanned;
      LocalStats.CheckpointBytesSkipped = MergeScan.BytesSkipped;
      if (Executed) {
        // Local post-checkpoint reset (§5.1): writes age into old-write,
        // validated live-in reads revert to live-in.  Codes >= 2 can only
        // exist in chunks this period's accesses dirtied (the same
        // argument that makes the sparse merge lossless), so reset walks
        // just those chunks instead of the whole footprint.
        for (uint64_t WI = 0, E = DirtyMask.size(); WI < E; ++WI) {
          uint64_t M = DirtyMask[WI];
          while (M) {
            unsigned Bit = static_cast<unsigned>(__builtin_ctzll(M));
            M &= M - 1;
            uint64_t Base = (WI * 64 + Bit) << kDirtyChunkShift;
            shadow::resetRangeAtCheckpoint(
                LocalShadow + Base,
                std::min(kDirtyChunkBytes, PrivateHighWater - Base));
          }
        }
        std::fill(DirtyMask.begin(), DirtyMask.end(), 0);
        Redux.fillIdentity();
      }
    }
    if (Cb->MisspecFlag.load(std::memory_order_acquire) &&
        P + 1 >= Cb->EarliestMisspecPeriod.load(std::memory_order_relaxed))
      break;
  }

  LocalStats.EndWall = wallSeconds();
  Cb->Stats[Id] = LocalStats;
  _exit(0);
}
