//===- runtime/ParallelInvocation.cpp - Fork/join DOALL driver -----------===//
//
// Implements paper §5.2 (checkpoints) and §5.3 (recovery): worker processes
// execute DOALL iterations over copy-on-write views of the logical heaps,
// merge speculative state into checkpoint slots, and the main process
// commits checkpoints in order, re-executing sequentially past the earliest
// misspeculated iteration when validation fails.
//
// The paper's fault model assumes workers either finish or die loudly.
// This driver hardens that optimism: a watchdog reaps workers whose
// heartbeat goes stale, checkpoint-slot locks orphaned by dead workers are
// broken instead of deadlocking siblings, fork/mmap failures degrade to
// sequential execution instead of aborting, and an adaptive policy backs
// off to sequential windows when consecutive epochs keep misspeculating.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "runtime/ShadowMetadata.h"
#include "support/ErrorHandling.h"
#include "support/Statistics.h"
#include "support/Timing.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>

#include <csignal>
#include <sched.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace privateer;

namespace {

constexpr int kMisspecExit = 42;

/// Runs the enclosing scope at SCHED_IDLE when \p Enable is set, so an
/// overlapped commit walk consumes only CPU capacity the workers leave
/// idle.  On a saturated (or single-core) host an ordinary-priority commit
/// displaces runnable workers and lands right back on the critical path it
/// is trying to hide from; at SCHED_IDLE the kernel preempts the commit
/// the instant any worker wakes.  Restoring the previous policy from
/// SCHED_IDLE needs no privilege on current kernels; if either call fails
/// the commit just runs at whatever priority the process already had.
class ScopedIdlePriority {
public:
  explicit ScopedIdlePriority(bool Enable) {
    if (!Enable)
      return;
    OldPolicy = sched_getscheduler(0);
    sched_param Idle{};
    Lowered = OldPolicy >= 0 && OldPolicy != SCHED_IDLE &&
              sched_setscheduler(0, SCHED_IDLE, &Idle) == 0;
  }
  ~ScopedIdlePriority() {
    if (Lowered) {
      sched_param P{};
      sched_setscheduler(0, OldPolicy, &P);
    }
  }
  ScopedIdlePriority(const ScopedIdlePriority &) = delete;
  ScopedIdlePriority &operator=(const ScopedIdlePriority &) = delete;

private:
  int OldPolicy = -1;
  bool Lowered = false;
};

/// The runtime whose worker is active in this process; used by the SIGSEGV
/// handler that converts stores to the protected read-only heap into
/// misspeculation.
Runtime *ActiveWorkerRuntime = nullptr;
ControlBlock *ActiveWorkerCb = nullptr;
unsigned ActiveWorkerId = 0;
uint64_t ActiveWorkerPeriodBase = 0;
uint64_t ActiveWorkerPeriodLen = 1;
trace::Ring *ActiveWorkerTraceRing = nullptr;

/// Alternate signal stack for the worker's SIGSEGV/SIGBUS handler: a
/// stack-overflowing iteration body must still be classified as
/// misspeculation, and the handler cannot run on the exhausted stack.
/// Static because SIGSTKSZ is no longer a compile-time constant on modern
/// glibc; each forked worker gets its own copy-on-write instance.
alignas(16) char WorkerAltStack[64 * 1024];

void workerSegvHandler(int /*Sig*/) {
  // Signal-safe misspeculation report: record position, set flag, die.
  ControlBlock *Cb = ActiveWorkerCb;
  if (Cb) {
    uint64_t Iter =
        Cb->WorkerIter[ActiveWorkerId].load(std::memory_order_relaxed);
    uint64_t Period =
        (Iter - ActiveWorkerPeriodBase) / ActiveWorkerPeriodLen;
    ControlBlock::storeMin(Cb->EarliestMisspecIter, Iter);
    ControlBlock::storeMin(Cb->EarliestMisspecPeriod, Period);
    if (Cb->MisspecFlag.exchange(1, std::memory_order_acq_rel) == 0) {
      static const char Msg[] = "fault: store to a protected heap";
      std::memcpy(Cb->MisspecReason, Msg, sizeof(Msg));
    }
    // The ring push is atomics + a POD store, so it is as signal-safe as
    // the flag raise above.
    if (ActiveWorkerTraceRing)
      ActiveWorkerTraceRing->push(trace::makeEvent(
          trace::Kind::Misspec, static_cast<uint16_t>(1 + ActiveWorkerId),
          monotonicNanos(), Iter, Period,
          static_cast<uint32_t>(trace::Reason::ProtectedStore)));
  }
  _exit(kMisspecExit);
}

} // namespace

void Runtime::misspecAbort(const char *Reason) {
  if (Mode != ExecMode::SpeculativeWorker)
    reportFatalError(std::string("misspeculation outside a speculative "
                                 "worker: ") +
                     Reason);
  ControlBlock::storeMin(Cb->EarliestMisspecIter, CurIter);
  ControlBlock::storeMin(Cb->EarliestMisspecPeriod,
                         (CurIter - EpochBase) / PeriodLen);
  // First-flag-setter wins the reason slot.  The main process only reads
  // the reason after joining every worker, so the write below is complete
  // (this process has _exited) by the time anyone reads it; no lock is
  // needed, and none could be trusted — a worker dying inside a reason
  // lock would wedge its siblings.
  if (Cb->MisspecFlag.exchange(1, std::memory_order_acq_rel) == 0) {
    std::strncpy(Cb->MisspecReason, Reason, sizeof(Cb->MisspecReason) - 1);
    Cb->MisspecReason[sizeof(Cb->MisspecReason) - 1] = '\0';
  }
  if (TraceRing)
    TraceRing->push(trace::makeEvent(
        trace::Kind::Misspec, static_cast<uint16_t>(1 + WorkerId),
        monotonicNanos(), CurIter, (CurIter - EpochBase) / PeriodLen,
        static_cast<uint32_t>(trace::reasonCode(Reason))));
  // "This worker terminates immediately, squashing all its speculative
  // state created since its last checkpoint" (§5.3).
  LocalStats.EndWall = wallSeconds();
  Cb->Stats[WorkerId] = LocalStats;
  _exit(kMisspecExit);
}

void Runtime::runDegraded(uint64_t Begin, uint64_t End,
                          const ParallelOptions &Options,
                          const IterationFn &Body, InvocationStats &Stats,
                          const char *Reason) {
  uint64_t T0 = TraceOn ? monotonicNanos() : 0;
  std::FILE *SavedOut = SeqOut;
  SeqOut = Options.Out;
  runSequential(Begin, End, Body);
  SeqOut = SavedOut;
  if (TraceOn)
    trace::Collector::instance().record(trace::Kind::Degraded, 0,
                                        monotonicNanos(), T0, End - Begin, 0,
                                        Reason);
  ++Stats.DegradedEpochs;
  Stats.DegradedIterations += End - Begin;
  if (Stats.FirstDegradeReason.empty())
    Stats.FirstDegradeReason = Reason;
}

//===----------------------------------------------------------------------===//
// Dependence-token channels (DOACROSS / pipeline, ROADMAP item 3)
//===----------------------------------------------------------------------===//

void Runtime::ensureLocalDepRings(uint32_t Chan) {
  if (Chan < LocalDepChanCount && LocalDepRings) {
    if (!DepRingsShared) {
      DepRings = LocalDepRings;
      DepChanCount = LocalDepChanCount;
    }
    return;
  }
  uint32_t NewCount =
      std::max<uint32_t>({Chan + 1, LocalDepChanCount * 2, 4});
  // Value-initialization zeroes the atomics: tag 0 means "never posted".
  auto *Grown = new depchan::DepSlot[static_cast<size_t>(NewCount) *
                                     depchan::kRingSlots]();
  for (size_t I = 0,
              E = static_cast<size_t>(LocalDepChanCount) * depchan::kRingSlots;
       I < E; ++I) {
    Grown[I].Tag.store(LocalDepRings[I].Tag.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    Grown[I].Value.store(
        LocalDepRings[I].Value.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  delete[] LocalDepRings;
  LocalDepRings = Grown;
  LocalDepChanCount = NewCount;
  if (!DepRingsShared) {
    DepRings = LocalDepRings;
    DepChanCount = LocalDepChanCount;
  }
}

void Runtime::postDep(uint64_t Iter, uint32_t Chan, uint64_t Value) {
  if (Chan >= DepChanCount) {
    if (DepRingsShared) {
      // The invocation mapped fewer channels than the program uses; the
      // plan is inconsistent with the code.  A worker converts that into
      // misspeculation, the main process must not scribble blindly.
      if (Mode != ExecMode::Sequential)
        misspecAbort("dep channel beyond the invocation's ring region");
      reportFatalError("postDep: channel beyond the invocation's rings");
    }
    ensureLocalDepRings(Chan);
  }
  depchan::post(DepRings, Chan, Iter, Value);
  ++LocalStats.DepPosts;
  // Ring push only when this invocation armed tracing (TraceRing stays
  // null otherwise): the disabled path pays one branch, nothing else.
  if (TraceRing)
    TraceRing->push(trace::makeEvent(trace::Kind::DepPost,
                                     static_cast<uint16_t>(1 + WorkerId),
                                     monotonicNanos(), Iter, Value, Chan));
}

uint64_t Runtime::waitDep(uint64_t Iter, uint32_t Chan) {
  ++LocalStats.DepWaits;
  // Below the loop's first iteration nobody will ever post: the rewritten
  // IR discards this value through a select, so 0 works in every mode and
  // a speculative worker must not spin for it.
  if (static_cast<int64_t>(Iter) < DepFloor)
    return 0;
  if (Chan >= DepChanCount) {
    if (DepRingsShared) {
      if (Mode != ExecMode::Sequential)
        misspecAbort("dep channel beyond the invocation's ring region");
      return 0;
    }
    ensureLocalDepRings(Chan);
  }
  uint64_t V;
  if (depchan::probe(DepRings, Chan, Iter, &V))
    return V;
  if (Mode == ExecMode::Sequential)
    return 0; // Sequential misses are pre-loop targets by construction.

  // Worker slow path: spin until the producer posts, refreshing our
  // heartbeat (a patient consumer is not a hung worker) and watching the
  // misspeculation flag — once an iteration at or before ours is doomed,
  // the token may never arrive and our own period can no longer commit.
  // A bounded wait converts producer loss the flag cannot explain (e.g. a
  // worker wedged before the watchdog notices) into misspeculation.
  const uint64_t StartNs = monotonicNanos();
  uint64_t SleepNs = 1000; // 1us, doubling to 100us.
  for (;;) {
    for (int K = 0; K < 256; ++K)
      if (depchan::probe(DepRings, Chan, Iter, &V)) {
        // Only waits that left the fast path get a span: the token was
        // genuinely late and the stall is worth seeing on the timeline.
        if (TraceRing)
          TraceRing->push(trace::makeEvent(
              trace::Kind::DepWait, static_cast<uint16_t>(1 + WorkerId),
              monotonicNanos(), StartNs, Iter, Chan));
        return V;
      }
    ++LocalStats.DepWaitSpins;
    uint64_t Now = monotonicNanos();
    if (Cb) {
      Cb->WorkerHeartbeat[WorkerId].store(Now, std::memory_order_relaxed);
      if (Cb->MisspecFlag.load(std::memory_order_acquire) &&
          CurIter >=
              Cb->EarliestMisspecIter.load(std::memory_order_relaxed)) {
        if (Mode == ExecMode::SpeculativeWorker)
          misspecAbort("dependence producer misspeculated");
        _exit(kMisspecExit); // Non-speculative worker: same classification.
      }
    }
    if (DepWaitNs && Now - StartNs > DepWaitNs) {
      ++LocalStats.DepWaitTimeouts;
      if (Mode == ExecMode::SpeculativeWorker)
        misspecAbort("dependence wait timed out");
      _exit(kMisspecExit);
    }
    timespec Ts{0, static_cast<long>(SleepNs)};
    nanosleep(&Ts, nullptr);
    if (SleepNs < 100000)
      SleepNs *= 2;
  }
}

InvocationStats Runtime::runParallelStaged(uint64_t NumIterations,
                                           const ParallelOptions &Options,
                                           const StagedIterationFn &Body) {
  ParallelOptions Opt = Options;
  uint32_t S = Opt.NumStages ? Opt.NumStages : Opt.NumWorkers;
  S = std::max<uint32_t>(1, std::min<uint32_t>(S, Opt.NumWorkers));
  Opt.Strat = Strategy::Pipeline;
  Opt.NumStages = S;
  Opt.NumWorkers = S; // One worker per stage.
  Opt.NumDepChannels = std::max(Opt.NumDepChannels, S);
  StageCount = S;
  int64_t SavedFloor = DepFloor;
  DepFloor = 0;
  // In a worker, run this worker's stage of iteration I: wait on the
  // previous stage's token for the same iteration, compute, post ours.
  // Sequentially (recovery, degradation, the baseline), run the whole
  // stage chain of I in order — the token value flows directly, so the
  // re-execution is a legal linearization of the pipeline's two orders
  // (stage order within an iteration, iteration order within a stage).
  IterationFn Wrapper = [this, &Body, S](uint64_t I) {
    if (Mode == ExecMode::Sequential) {
      uint64_t In = 0;
      for (uint32_t St = 0; St < S; ++St)
        In = Body(I, St, In);
      return;
    }
    uint32_t St = CurStage;
    uint64_t In = St == 0 ? 0 : waitDep(I, St - 1);
    postDep(I, St, Body(I, St, In));
  };
  InvocationStats Stats = runParallel(NumIterations, Opt, Wrapper);
  StageCount = 0;
  DepFloor = SavedFloor;
  return Stats;
}

InvocationStats Runtime::runParallel(uint64_t NumIterations,
                                     const ParallelOptions &Options,
                                     const IterationFn &Body) {
  assert(Initialized && "runtime not initialized");
  assert(Mode == ExecMode::Sequential && "nested parallel invocation");
  assert(Options.NumWorkers >= 1 && Options.NumWorkers <= kMaxWorkers &&
         "worker count out of range");

  InvocationStats Stats;
  double WallStart = wallSeconds();

  // Arm tracing for this invocation; workers inherit TraceOn across fork
  // and push into their shared-memory ring, the main process records
  // straight into the collector.  Off (the default) costs one branch here.
  trace::Collector &Tc = trace::Collector::instance();
  TraceOn = !Options.TracePath.empty();
  if (TraceOn)
    Tc.enable(Options.TracePath);
  uint64_t InvStartNs = TraceOn ? monotonicNanos() : 0;

  // Everything in the private heap is live-in when the invocation begins.
  // Stale old-write marks from a previous invocation can only exist below
  // the private allocator's high-water mark: the shadow mapping starts
  // zero-filled (zero is kLiveIn) and the high water never retreats within
  // a runtime lifetime, so resetting up to it is exact even when the
  // footprint grew and then shrank between invocations — no O(heap-size)
  // memset for a kilobyte working set.
  std::memset(reinterpret_cast<void *>(Shadow.base()), shadow::kLiveIn,
              std::min<uint64_t>(Shadow.size(),
                                 heap(HeapKind::Private).highWater()));

  // One below the paper's 253-iteration ceiling: timestamp 255 is
  // reserved as the checkpoint slots' read+write conflict code.
  uint64_t Period = std::max<uint64_t>(
      1, std::min(Options.CheckpointPeriod,
                  shadow::kMaxCheckpointPeriod - 1));
  uint64_t MaxSlots = std::max<uint64_t>(1, Options.MaxSlotsPerEpoch);

  FaultInjector Fi(Options.Faults);
  Injector = Fi.enabled() ? &Fi : nullptr;

  // Dependence-token channels (DOACROSS / pipeline): one MAP_SHARED ring
  // region for the whole invocation.  It must outlive individual epochs —
  // a token committed in epoch k feeds the first iterations of epoch k+1 —
  // and forked workers inherit the mapping, which is how forwarded values
  // cross the copy-on-write isolation boundary.
  depchan::DepSlot *SavedRings = DepRings;
  uint32_t SavedChanCount = DepChanCount;
  bool SavedShared = DepRingsShared;
  void *DepMem = nullptr;
  size_t DepBytes = 0;
  bool DepMapFailed = false;
  if (Options.NumDepChannels > 0) {
    DepBytes = depchan::ringBytes(Options.NumDepChannels);
    DepMem = mmap(nullptr, DepBytes, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (DepMem == MAP_FAILED) {
      DepMem = nullptr;
      DepMapFailed = true;
      ++Stats.ResourceFailures;
    } else {
      DepRings = static_cast<depchan::DepSlot *>(DepMem);
      DepChanCount = Options.NumDepChannels;
      DepRingsShared = true;
    }
  }
  DepWaitNs = Options.StallTimeoutSec > 0
                  ? static_cast<uint64_t>(Options.StallTimeoutSec * 1e9)
                  : 0;
  uint64_t DepPosts0 = LocalStats.DepPosts;
  uint64_t DepWaits0 = LocalStats.DepWaits;
  uint64_t DepSpins0 = LocalStats.DepWaitSpins;
  uint64_t DepTimeouts0 = LocalStats.DepWaitTimeouts;

  // Adaptive degradation state: after K consecutive misspeculating epochs,
  // run M periods sequentially before retrying speculation; M backs off
  // exponentially while hostility persists, bounding worst-case slowdown
  // to a constant factor over sequential on adversarial inputs.
  unsigned ConsecMisspecEpochs = 0;
  uint64_t BasePeriods = std::max<uint64_t>(1, Options.DegradeBasePeriods);
  uint64_t MaxPeriods = std::max(BasePeriods, Options.DegradeMaxPeriods);
  uint64_t BackoffPeriods = BasePeriods;

  uint64_t Next = 0;
  if (DepMapFailed) {
    // Without shared rings the workers cannot forward dependences; run the
    // whole invocation sequentially (local fallback rings serve the
    // post/wait calls).
    runDegraded(0, NumIterations, Options, Body, Stats,
                "out of memory: mmap dep-token rings");
    Next = NumIterations;
  }
  while (Next < NumIterations) {
    if (Options.DegradeAfterMisspecEpochs != 0 &&
        ConsecMisspecEpochs >= Options.DegradeAfterMisspecEpochs) {
      uint64_t End =
          std::min(NumIterations, Next + BackoffPeriods * Period);
      runDegraded(Next, End, Options, Body, Stats,
                  "adaptive backoff after consecutive misspeculating "
                  "epochs");
      Next = End;
      BackoffPeriods = std::min(BackoffPeriods * 2, MaxPeriods);
      ConsecMisspecEpochs = 0; // Give speculation another chance.
      continue;
    }

    uint64_t Remaining = NumIterations - Next;
    uint64_t Slots =
        std::min(MaxSlots, (Remaining + Period - 1) / Period);
    uint64_t EpochIters = std::min(Remaining, Slots * Period);
    EpochPlan Plan{Next, EpochIters, Period, Slots};
    ++Stats.Epochs;

    EpochResult Res = runEpoch(Plan, Options, Body, Stats);
    if (Res.Degraded) {
      // Speculation could not start (fork/mmap failure): run this epoch's
      // iterations sequentially and carry on; the next epoch retries
      // speculation in case the resource shortage was transient.
      uint64_t End = Plan.BaseIter + Plan.EpochIters;
      runDegraded(Next, End, Options, Body, Stats, Res.Reason.c_str());
      Next = End;
      continue;
    }
    if (!Res.Misspec) {
      Next = Res.CommittedEnd;
      ConsecMisspecEpochs = 0;
      BackoffPeriods = BasePeriods;
      continue;
    }

    // Recovery (§5.3): re-execute sequentially from the last committed
    // checkpoint until past the misspeculated period, then resume
    // parallel execution.
    ++Stats.Misspecs;
    ++ConsecMisspecEpochs;
    if (Stats.FirstMisspecReason.empty())
      Stats.FirstMisspecReason = Res.Reason;
    uint64_t RecoveryEnd = std::min(NumIterations, Res.MisspecPeriodEnd);
    uint64_t RecStartNs = TraceOn ? monotonicNanos() : 0;
    std::FILE *SavedOut = SeqOut;
    SeqOut = Options.Out;
    runSequential(Res.CommittedEnd, RecoveryEnd, Body);
    SeqOut = SavedOut;
    if (TraceOn)
      Tc.record(trace::Kind::Recovery, 0, monotonicNanos(), RecStartNs,
                RecoveryEnd - Res.CommittedEnd, 0, Res.Reason);
    Stats.RecoveredIterations += RecoveryEnd - Res.CommittedEnd;
    Next = RecoveryEnd;
  }

  Injector = nullptr;
  if (DepMem)
    munmap(DepMem, DepBytes);
  DepRings = SavedRings;
  DepChanCount = SavedChanCount;
  DepRingsShared = SavedShared;
  // Token traffic from the main process (sequential recovery and degraded
  // windows re-post in order); the workers' share is aggregated per epoch.
  Stats.DepPosts += LocalStats.DepPosts - DepPosts0;
  Stats.DepWaits += LocalStats.DepWaits - DepWaits0;
  Stats.DepWaitSpins += LocalStats.DepWaitSpins - DepSpins0;
  Stats.DepWaitTimeouts += LocalStats.DepWaitTimeouts - DepTimeouts0;
  Stats.Iterations = NumIterations;
  Stats.WallSec = wallSeconds() - WallStart;

  // Surface fault-tolerance events through the global registry so tools
  // and reports see them alongside the Table 3 counters.
  StatisticRegistry &Reg = StatisticRegistry::instance();
  Reg.counter("fault", "stalled-workers-killed") += Stats.StalledWorkersKilled;
  Reg.counter("fault", "locks-broken") += Stats.LocksBroken;
  Reg.counter("fault", "fork-failures") += Stats.ForkFailures;
  Reg.counter("fault", "resource-failures") += Stats.ResourceFailures;
  Reg.counter("fault", "degraded-epochs") += Stats.DegradedEpochs;
  Reg.counter("fault", "degraded-iterations") += Stats.DegradedIterations;
  Reg.counter("checkpoint", "dirty_chunks") += Stats.CheckpointDirtyChunks;
  Reg.counter("checkpoint", "bytes_scanned") += Stats.CheckpointBytesScanned;
  Reg.counter("checkpoint", "bytes_skipped") += Stats.CheckpointBytesSkipped;
  Reg.counter("commit", "eager_slots") += Stats.EagerSlots;
  Reg.counter("commit", "early_cutoffs") += Stats.EarlyCutoffs;
  Reg.counter("commit", "early_cutoff_iters_saved") +=
      Stats.EarlyCutoffItersSaved;
  Reg.real("commit", "overlap_sec") += Stats.OverlapSec;
  if (Stats.DepPosts || Stats.DepWaits) {
    Reg.counter("dep", "posts") += Stats.DepPosts;
    Reg.counter("dep", "waits") += Stats.DepWaits;
    Reg.counter("dep", "wait-spins") += Stats.DepWaitSpins;
    Reg.counter("dep", "wait-timeouts") += Stats.DepWaitTimeouts;
  }
  if (Stats.ComUpdates || Stats.ComRecordsCommitted || Stats.ComOverflows) {
    Reg.counter("com", "updates") += Stats.ComUpdates;
    Reg.counter("com", "records-merged") += Stats.ComRecordsMerged;
    Reg.counter("com", "records-committed") += Stats.ComRecordsCommitted;
    Reg.counter("com", "overflows") += Stats.ComOverflows;
  }
  // Per-heap-class footprint snapshot: live allocations and allocator high
  // water of every logical heap, both in the stats and as registry gauges.
  for (unsigned I = 0; I < kNumHeapKinds; ++I) {
    HeapKind K = static_cast<HeapKind>(I);
    Stats.HeapLiveObjects[I] = heap(K).liveCount();
    Stats.HeapHighWaterBytes[I] = heap(K).highWater();
    Reg.counter("footprint", std::string(heapKindName(K)) + "-live") =
        Stats.HeapLiveObjects[I];
    Reg.counter("footprint", std::string(heapKindName(K)) + "-highwater") =
        Stats.HeapHighWaterBytes[I];
  }

  if (TraceOn) {
    Tc.record(trace::Kind::Invocation, 0, monotonicNanos(), InvStartNs,
              NumIterations, 0);
    std::string Err;
    if (!Tc.flush(Err))
      std::fprintf(stderr, "privateer: %s\n", Err.c_str());
    TraceOn = false;
  }
  return Stats;
}

Runtime::EpochResult Runtime::runEpoch(const EpochPlan &Plan,
                                       const ParallelOptions &Options,
                                       const IterationFn &Body,
                                       InvocationStats &Stats) {
  unsigned W = Options.NumWorkers;
  bool Spec = !Options.NonSpeculative;

  EpochResult Res;
  Res.CommittedEnd = Plan.BaseIter;
  Res.Misspec = false;
  Res.MisspecPeriodEnd = Plan.BaseIter + Plan.EpochIters;

  // Shared coordination state, created before fork so every worker and the
  // main process observe one instance.
  void *CbMem = mmap(nullptr, sizeof(ControlBlock), PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (CbMem == MAP_FAILED) {
    Res.Degraded = true;
    if (errno == ENOMEM) {
      ++Stats.ResourceFailures;
      Res.Reason = "out of memory: mmap control block: ";
    } else {
      Res.Reason = "mmap control block: ";
    }
    Res.Reason += std::strerror(errno);
    return Res;
  }
  Cb = new (CbMem) ControlBlock();
  uint64_t NowNs = monotonicNanos();
  for (unsigned I = 0; I < kMaxWorkers; ++I) {
    Cb->WorkerIter[I].store(Plan.BaseIter, std::memory_order_relaxed);
    Cb->WorkerHeartbeat[I].store(NowNs, std::memory_order_relaxed);
  }

  trace::Collector &Tc = trace::Collector::instance();
  uint64_t EpochStartNs = TraceOn ? NowNs : 0;
  // The main process is the only ring consumer; it drains at every
  // commit-pump pass and at join so worker rings rarely fill.
  auto drainTraceRings = [&] {
    if (!TraceOn)
      return;
    for (unsigned I = 0; I < W; ++I)
      Tc.drainRing(Cb->TraceRings[I]);
  };

  CheckpointRegion TheRegion;
  PrivateHighWater = heap(HeapKind::Private).highWater();
  uint64_t ReduxCovered =
      Redux.spanEnd(heap(HeapKind::Redux).base());
  // Commutative-heap span covered by commit-time record validation; the
  // slot com-log sections are only paid for when the heap is in use.
  uint64_t ComCovered = heap(HeapKind::Commutative).highWater();
  if (Spec) {
    // Per-worker dirty-chunk bitmap, sized before fork so every worker's
    // COW copy covers the footprint; workers set bits from the
    // private_read/private_write fast paths and clear them after merging.
    DirtyChunkLimit = dirtyChunkCount(PrivateHighWater);
    DirtyMask.assign(dirtyMaskWords(DirtyChunkLimit), 0);
    Stats.PrivateFootprintBytes =
        std::max(Stats.PrivateFootprintBytes, PrivateHighWater);
    CheckpointRegion::Config C;
    C.NumSlots = Plan.NumSlots;
    C.PrivateBytes = PrivateHighWater;
    C.ReduxBytes = ReduxCovered;
    C.IoCapacity = Options.IoCapacityPerSlot;
    C.ComCapacity = ComCovered > 0 ? Options.ComCapacityPerSlot : 0;
    C.BaseIter = Plan.BaseIter;
    C.Period = Plan.Period;
    C.EpochIters = Plan.EpochIters;
    C.NumWorkers = W;
    C.SlotChunkCapacity = Options.CheckpointSlotChunks;
    if (!TheRegion.create(C)) {
      Cb->~ControlBlock();
      munmap(CbMem, sizeof(ControlBlock));
      Cb = nullptr;
      Res.Degraded = true;
      if (errno == ENOMEM) {
        ++Stats.ResourceFailures;
        Res.Reason = "out of memory: mmap checkpoint region: ";
      } else {
        Res.Reason = "mmap checkpoint region: ";
      }
      Res.Reason += std::strerror(errno);
      return Res;
    }
    Region = &TheRegion;
  }

  // Spawn workers (§5.1: "the Privateer runtime system uses processes and
  // not threads" so each can update its virtual memory map independently).
  // SIGCHLD is blocked across the epoch so the watchdog join can sleep in
  // sigtimedwait and still wake the instant a worker exits.
  std::fflush(nullptr); // Don't duplicate pending stdio buffers into kids.
  sigset_t ChldMask, OldMask;
  sigemptyset(&ChldMask);
  sigaddset(&ChldMask, SIGCHLD);
  sigprocmask(SIG_BLOCK, &ChldMask, &OldMask);
  std::vector<pid_t> Pids(W, -1);
  bool ForkFailed = false;
  for (unsigned I = 0; I < W; ++I) {
    pid_t Pid;
    if (Injector && Injector->shouldFailFork()) {
      Pid = -1;
      errno = EAGAIN;
    } else {
      Pid = fork();
    }
    if (Pid < 0) {
      ForkFailed = true;
      // EAGAIN from fork means the process/memory budget is exhausted —
      // the same resource class as ENOMEM for triage purposes.
      if (errno == ENOMEM || errno == EAGAIN) {
        ++Stats.ResourceFailures;
        Res.Reason = std::string("out of memory: fork: ") +
                     std::strerror(errno);
      } else {
        Res.Reason = std::string("fork: ") + std::strerror(errno);
      }
      break;
    }
    if (Pid == 0)
      workerMain(I, Plan, Options, Body); // Never returns.
    Pids[I] = Pid;
    if (TraceOn)
      Tc.record(trace::Kind::WorkerFork, 0, monotonicNanos(),
                static_cast<uint64_t>(Pid), 0, I);
  }
  if (ForkFailed) {
    // Fall back to sequential execution: discard the partially spawned
    // worker set (nothing they produced can commit).
    for (pid_t Pid : Pids)
      if (Pid > 0)
        kill(Pid, SIGKILL);
    for (pid_t Pid : Pids)
      if (Pid > 0)
        waitpid(Pid, nullptr, 0);
    sigprocmask(SIG_SETMASK, &OldMask, nullptr);
    Region = nullptr;
    Cb->~ControlBlock();
    munmap(CbMem, sizeof(ControlBlock));
    Cb = nullptr;
    ++Stats.ForkFailures;
    Res.Degraded = true;
    return Res;
  }

  if (Spec && Injector)
    Injector->maybeCorruptSlot(TheRegion);

  // Join and commit as one poll-reap-commit state machine.  The watchdog
  // half reaps exits without blocking and SIGKILLs any worker whose
  // heartbeat goes stale for longer than the stall timeout — its last
  // reported iteration is treated as misspeculated and recovered through
  // the sequential path, exactly like any other abnormal death.  The
  // commit-pump half (EagerCommit) polls slot headers between reaps and
  // commits each checkpoint the moment every worker has published its
  // merge, so the end-of-epoch serial commit tail collapses to at most the
  // last slot, and a commit-time misspeculation raises the global flag
  // while workers are still running instead of after they drained the
  // whole epoch.
  uint64_t StallNs =
      Options.StallTimeoutSec > 0
          ? static_cast<uint64_t>(Options.StallTimeoutSec * 1e9)
          : 0;
  std::vector<bool> Alive(W, true);
  std::vector<bool> StallKilled(W, false);
  unsigned Remaining = W;

  // Commit state shared by the in-epoch pump and the post-join sweep.
  std::vector<IoRecord> CommittedIo;
  CheckpointScanStats CommitScan;
  uint8_t *MasterShadow = reinterpret_cast<uint8_t *>(Shadow.base());
  uint8_t *MasterPrivate =
      reinterpret_cast<uint8_t *>(heap(HeapKind::Private).base());
  uint64_t EpochEnd = Plan.BaseIter + Plan.EpochIters;
  uint64_t NextCommit = 0;    // First slot not yet committed, in order.
  bool CommitStopped = false; // A commit failed; Res carries the verdict.
  bool Pump = Spec && Options.EagerCommit;

  auto slotEnd = [&](uint64_t P) {
    return std::min(EpochEnd, Plan.BaseIter + (P + 1) * Plan.Period);
  };
  // This worker's iterations of [Lo, Hi) under cyclic scheduling.
  auto cyclicShare = [&](uint64_t Lo, uint64_t Hi, unsigned Id) -> uint64_t {
    if (Lo >= Hi)
      return 0;
    uint64_t Phase = (Lo - Plan.BaseIter) % W;
    uint64_t First = Lo + (Id + W - Phase) % W;
    return First >= Hi ? 0 : (Hi - First + W - 1) / W;
  };
  // A commit failure observed by the pump mid-epoch.  Record the verdict,
  // then raise the global flag so live workers stop spending iterations on
  // periods that can no longer commit (§5.3 has them poll after every
  // iteration); without the pump they would only learn after running the
  // epoch to the end.  The iterations the cut-off saves are tallied from
  // each live worker's remaining cyclic share past the doomed period.
  auto failCommit = [&](uint64_t P, const std::string &Why) {
    CommitStopped = true;
    Res.Misspec = true;
    Res.Reason = Why;
    Res.MisspecPeriodEnd = slotEnd(P);
    if (TraceOn)
      Tc.record(trace::Kind::Misspec, 0, monotonicNanos(),
                Plan.BaseIter + P * Plan.Period, P,
                static_cast<uint32_t>(trace::reasonCode(Why.c_str())), Why);
    if (Remaining == 0)
      return;
    ++Stats.EarlyCutoffs;
    uint64_t CutStart = Plan.BaseIter + P * Plan.Period;
    uint64_t SavedBefore = Stats.EarlyCutoffItersSaved;
    for (unsigned I = 0; I < W; ++I) {
      if (!Alive[I])
        continue;
      uint64_t NextIter =
          Cb->WorkerIter[I].load(std::memory_order_relaxed) + 1;
      Stats.EarlyCutoffItersSaved +=
          cyclicShare(std::max(NextIter, CutStart), EpochEnd, I);
    }
    if (TraceOn)
      Tc.record(trace::Kind::EarlyCutoff, 0, monotonicNanos(),
                Stats.EarlyCutoffItersSaved - SavedBefore, 0,
                static_cast<uint32_t>(P));
    ControlBlock::storeMin(Cb->EarliestMisspecPeriod, P);
    ControlBlock::storeMin(Cb->EarliestMisspecIter,
                           Plan.BaseIter + P * Plan.Period);
    if (Cb->MisspecFlag.exchange(1, std::memory_order_acq_rel) == 0) {
      std::strncpy(Cb->MisspecReason, Why.c_str(),
                   sizeof(Cb->MisspecReason) - 1);
      Cb->MisspecReason[sizeof(Cb->MisspecReason) - 1] = '\0';
    }
  };
  // One pump pass: commit every slot that is ready, in iteration order.
  // Never reads Cb->MisspecReason (a worker that just won the flag race may
  // still be writing it); worker-raised misspeculation is classified after
  // join like before.
  auto pumpStep = [&]() {
    while (NextCommit < Plan.NumSlots && !CommitStopped) {
      uint64_t P = NextCommit;
      if (Cb->MisspecFlag.load(std::memory_order_acquire) &&
          P >= Cb->EarliestMisspecPeriod.load(std::memory_order_relaxed))
        return; // This period is doomed by a worker; nothing more commits.
      SlotHeader *H = TheRegion.slot(P);
      // The stable header fields (BaseIter, NumIters) are written once at
      // create() and never by a healthy worker, so they can be checked at
      // any time — this is how the pump catches a scribbled header
      // mid-epoch rather than leaving it to the post-join sweep.
      if (!TheRegion.slotStableSane(P)) {
        failCommit(P, "corrupted checkpoint slot header");
        return;
      }
      if (H->Poisoned.load(std::memory_order_relaxed)) {
        failCommit(P, "checkpoint slot torn by a worker that died holding "
                      "its lock");
        return;
      }
      if (H->WorkersMerged.load(std::memory_order_acquire) != W)
        return; // Not all contributors have published; poll again later.
      // Every contributor has release-published its merge, so the slot is
      // quiescent and fully visible (a still-held lock only means the last
      // merger has not dropped it yet).  Run the full header check now
      // that its dynamic counters are final.
      if (!TheRegion.slotHeaderSane(P)) {
        failCommit(P, "corrupted checkpoint slot header");
        return;
      }
      bool Overlapped = Remaining > 0;
      double T0 = Overlapped ? wallSeconds() : 0;
      uint64_t TraceT0 = TraceOn ? monotonicNanos() : 0;
      uint64_t ScanBefore = CommitScan.BytesScanned;
      std::string Why;
      CheckpointRegion::CommitStatus St;
      {
        ScopedIdlePriority IdleWhileWorkersRun(Overlapped);
        St = TheRegion.commitSlot(P, MasterShadow, MasterPrivate, Redux,
                                  heap(HeapKind::Redux).base(),
                                  heap(HeapKind::Commutative).base(),
                                  ComCovered, CommittedIo, Why, &CommitScan);
      }
      if (Overlapped) {
        Stats.OverlapSec += wallSeconds() - T0;
        ++Stats.EagerSlots;
      }
      if (St == CheckpointRegion::CommitStatus::Misspec) {
        failCommit(P, Why);
        return;
      }
      if (TraceOn)
        Tc.record(trace::Kind::CommitEager, 0, monotonicNanos(), TraceT0,
                  CommitScan.BytesScanned - ScanBefore,
                  static_cast<uint32_t>(P));
      Res.CommittedEnd = slotEnd(P);
      ++Stats.Checkpoints;
      ++NextCommit;
    }
  };

  // Between polls the join sleeps in sigtimedwait, woken early by any
  // SIGCHLD.  Stall checks only need a few passes per timeout window; the
  // pump wants lower commit latency while uncommitted slots remain.
  uint64_t CheckNs =
      StallNs ? std::clamp<uint64_t>(StallNs / 8, 1000000, 50000000) : 0;
  constexpr uint64_t kPumpPollNs = 200000; // 200us
  while (Remaining > 0) {
    bool Reaped = false;
    for (unsigned I = 0; I < W; ++I) {
      if (!Alive[I])
        continue;
      int Status = 0;
      pid_t R = waitpid(Pids[I], &Status, (StallNs || Pump) ? WNOHANG : 0);
      if (R == 0)
        continue; // Still running.
      if (R < 0)
        reportFatalError(std::string("waitpid: ") + std::strerror(errno));
      Alive[I] = false;
      --Remaining;
      Reaped = true;
      bool Clean = WIFEXITED(Status) &&
                   (WEXITSTATUS(Status) == 0 ||
                    WEXITSTATUS(Status) == kMisspecExit);
      if (TraceOn)
        Tc.record(trace::Kind::WorkerExit, 0, monotonicNanos(),
                  static_cast<uint64_t>(Status), Clean, I);
      if (!Clean) {
        // A worker died without reporting: treat its last known iteration
        // as misspeculated so recovery re-executes it non-speculatively.
        uint64_t Iter = Cb->WorkerIter[I].load(std::memory_order_relaxed);
        ControlBlock::storeMin(Cb->EarliestMisspecIter, Iter);
        ControlBlock::storeMin(Cb->EarliestMisspecPeriod,
                               (Iter - Plan.BaseIter) / Plan.Period);
        if (Cb->MisspecFlag.exchange(1) == 0)
          std::snprintf(Cb->MisspecReason, sizeof(Cb->MisspecReason),
                        StallKilled[I]
                            ? "worker %u stalled; killed by watchdog "
                              "(status 0x%x)"
                            : "worker %u terminated abnormally (status "
                              "0x%x)",
                        I, Status);
      }
    }
    if (Remaining == 0)
      break;
    if (StallNs) {
      uint64_t Now = monotonicNanos();
      for (unsigned I = 0; I < W; ++I) {
        if (!Alive[I] || StallKilled[I])
          continue;
        uint64_t Beat =
            Cb->WorkerHeartbeat[I].load(std::memory_order_relaxed);
        if (Now > Beat && Now - Beat > StallNs) {
          // Record the stall before killing so the exit classifier labels
          // the death correctly even if a sibling races on the flag.
          StallKilled[I] = true;
          ++Stats.StalledWorkersKilled;
          if (TraceOn)
            Tc.record(trace::Kind::WorkerStallKill, 0, Now,
                      Cb->WorkerIter[I].load(std::memory_order_relaxed),
                      Now - Beat, I);
          kill(Pids[I], SIGKILL);
        }
      }
    }
    bool Pumping = Pump && !CommitStopped && NextCommit < Plan.NumSlots;
    if (Pumping)
      pumpStep();
    drainTraceRings();
    if (!Reaped) {
      // A SIGCHLD delivered before this point stays pending (the signal is
      // blocked), so sigtimedwait returns immediately: no lost wake-ups.
      uint64_t SleepNs = Pumping ? kPumpPollNs
                         : CheckNs ? CheckNs
                                   : 0;
      if (SleepNs == 0 && Pump) // Pump done, watchdog off: block on exits.
        SleepNs = 50000000;
      timespec Ts{static_cast<time_t>(SleepNs / 1000000000),
                  static_cast<long>(SleepNs % 1000000000)};
      sigtimedwait(&ChldMask, nullptr, &Ts);
    }
  }
  // Final pump pass so an epoch whose last merge landed between the last
  // poll and the last reap still commits everything eagerly (this is also
  // what keeps the post-join sweep's work to at most the final slot).
  if (Pump && !CommitStopped)
    pumpStep();
  drainTraceRings(); // All workers reaped: rings are quiescent from here.
  sigprocmask(SIG_SETMASK, &OldMask, nullptr);

  // Aggregate worker statistics.
  for (unsigned I = 0; I < W; ++I) {
    const WorkerStats &S = Cb->Stats[I];
    Stats.PrivateReadCalls += S.PrivateReadCalls;
    Stats.PrivateReadBytes += S.PrivateReadBytes;
    Stats.PrivateWriteCalls += S.PrivateWriteCalls;
    Stats.PrivateWriteBytes += S.PrivateWriteBytes;
    Stats.SeparationChecks += S.SeparationChecks;
    Stats.CheckpointDirtyChunks += S.CheckpointDirtyChunks;
    Stats.CheckpointBytesScanned += S.CheckpointBytesScanned;
    Stats.CheckpointBytesSkipped += S.CheckpointBytesSkipped;
    Stats.DepPosts += S.DepPosts;
    Stats.DepWaits += S.DepWaits;
    Stats.DepWaitSpins += S.DepWaitSpins;
    Stats.DepWaitTimeouts += S.DepWaitTimeouts;
    Stats.ComUpdates += S.ComUpdates;
    Stats.ComRecordsMerged += S.ComRecordsMerged;
    Stats.UsefulSec += S.UsefulSec;
    Stats.PrivateReadSec += S.PrivateReadSec;
    Stats.PrivateWriteSec += S.PrivateWriteSec;
    Stats.CheckpointSec += S.CheckpointSec;
  }
  Stats.LocksBroken += Cb->LocksBroken.load(std::memory_order_relaxed);

  bool Flag = Cb->MisspecFlag.load(std::memory_order_acquire) != 0;
  uint64_t MisspecPeriod =
      Flag ? Cb->EarliestMisspecPeriod.load(std::memory_order_relaxed)
           : kNoMisspec;

  if (Spec) {
    // Post-join sweep: commit, in iteration order (§5.2), whatever the
    // pump did not get to — at most the final slot when the pump ran, the
    // whole epoch when EagerCommit is off.  All workers are reaped by now,
    // so a still-held slot lock is orphaned by definition, and an
    // incomplete merge count means a worker was lost; neither condition is
    // decidable mid-epoch, which is why only the sweep checks them.
    for (uint64_t P = NextCommit; P < Plan.NumSlots && !CommitStopped;
         ++P) {
      if (Flag && P >= MisspecPeriod) {
        Res.Misspec = true;
        Res.Reason = Cb->MisspecReason;
        Res.MisspecPeriodEnd = std::min(
            Plan.BaseIter + Plan.EpochIters,
            Plan.BaseIter + (MisspecPeriod + 1) * Plan.Period);
        break;
      }
      SlotHeader *H = TheRegion.slot(P);
      uint64_t SlotEnd = std::min(Plan.BaseIter + Plan.EpochIters,
                                  Plan.BaseIter + (P + 1) * Plan.Period);
      if (H->Lock.holder() != 0) {
        H->Lock.forceBreak();
        ++Stats.LocksBroken;
        if (TraceOn)
          Tc.record(trace::Kind::LockBroken, 0, monotonicNanos(), 0, 0,
                    static_cast<uint32_t>(P));
        Res.Misspec = true;
        Res.Reason = "checkpoint slot lock orphaned by a dead worker";
        Res.MisspecPeriodEnd = SlotEnd;
        break;
      }
      if (!TheRegion.slotHeaderSane(P)) {
        Res.Misspec = true;
        Res.Reason = "corrupted checkpoint slot header";
        Res.MisspecPeriodEnd = SlotEnd;
        break;
      }
      if (H->Poisoned.load(std::memory_order_relaxed)) {
        Res.Misspec = true;
        Res.Reason = "checkpoint slot torn by a worker that died holding "
                     "its lock";
        Res.MisspecPeriodEnd = SlotEnd;
        break;
      }
      if (H->WorkersMerged.load(std::memory_order_acquire) != W) {
        Res.Misspec = true;
        Res.Reason = "incomplete checkpoint (worker lost)";
        Res.MisspecPeriodEnd = SlotEnd;
        break;
      }
      std::string Why;
      uint64_t TraceT0 = TraceOn ? monotonicNanos() : 0;
      uint64_t ScanBefore = CommitScan.BytesScanned;
      CheckpointRegion::CommitStatus St = TheRegion.commitSlot(
          P, MasterShadow, MasterPrivate, Redux,
          heap(HeapKind::Redux).base(), heap(HeapKind::Commutative).base(),
          ComCovered, CommittedIo, Why, &CommitScan);
      if (St == CheckpointRegion::CommitStatus::Misspec) {
        Res.Misspec = true;
        Res.Reason = Why;
        Res.MisspecPeriodEnd = SlotEnd;
        break;
      }
      if (TraceOn)
        Tc.record(trace::Kind::CommitPostJoin, 0, monotonicNanos(), TraceT0,
                  CommitScan.BytesScanned - ScanBefore,
                  static_cast<uint32_t>(P));
      Res.CommittedEnd = SlotEnd;
      ++Stats.Checkpoints;
    }
    Stats.CheckpointDirtyChunks += CommitScan.DirtyChunks;
    Stats.CheckpointBytesScanned += CommitScan.BytesScanned;
    Stats.CheckpointBytesSkipped += CommitScan.BytesSkipped;
    Stats.ComRecordsCommitted += CommitScan.ComRecords;
    for (uint64_t P = 0; P < Plan.NumSlots; ++P)
      if (TheRegion.slot(P)->ComOverflow)
        ++Stats.ComOverflows;
    // "take effect only when the checkpoint is marked non-speculative":
    // only output from committed checkpoints is emitted.
    flushIo(CommittedIo, Options.Out);
  } else {
    if (Flag) {
      Res.Misspec = true;
      Res.Reason = Cb->MisspecReason;
    } else {
      Res.CommittedEnd = Plan.BaseIter + Plan.EpochIters;
    }
  }

  // A worker death can set the misspec flag without the commit loop
  // noticing (e.g. the earliest misspeculated period lies beyond the slots
  // this epoch planned); never report a clean epoch while the flag is up.
  if (Spec && Flag && !Res.Misspec) {
    Res.Misspec = true;
    Res.Reason = Cb->MisspecReason;
  }
  // The pump records its own misspecs inside failCommit (CommitStopped);
  // everything classified after join — worker-raised flags, sweep-detected
  // torn/lost slots — gets one consolidated record here, reason attached.
  if (TraceOn && Res.Misspec && !CommitStopped)
    Tc.record(trace::Kind::Misspec, 0, monotonicNanos(),
              Flag ? Cb->EarliestMisspecIter.load(std::memory_order_relaxed)
                   : Res.CommittedEnd,
              Flag ? MisspecPeriod : 0,
              static_cast<uint32_t>(trace::reasonCode(Res.Reason.c_str())),
              Res.Reason);
  // Eager commits can outrun a late, conservative misspeculation
  // classification: a watchdog kill may report its victim's last known
  // iteration inside a period the pump already committed (the worker
  // merged that period and stalled before starting the next one).
  // Committed slots are valid by construction — every worker published its
  // merge and validation passed — so recovery must never restart behind
  // them; clamp the recovery window to begin at the committed frontier.
  if (Res.Misspec) {
    if (TraceOn && Res.MisspecPeriodEnd < Res.CommittedEnd)
      Tc.record(trace::Kind::RecoveryClamp, 0, monotonicNanos(),
                Res.MisspecPeriodEnd, Res.CommittedEnd, 0);
    Res.MisspecPeriodEnd = std::max(Res.MisspecPeriodEnd, Res.CommittedEnd);
  }

  if (TraceOn) {
    for (unsigned I = 0; I < W; ++I)
      Tc.noteDrops(I, Cb->TraceRings[I].dropped());
    Tc.record(trace::Kind::Epoch, 0, monotonicNanos(), EpochStartNs,
              Plan.BaseIter, static_cast<uint32_t>(Plan.NumSlots));
  }

  Region = nullptr;
  Cb->~ControlBlock();
  munmap(CbMem, sizeof(ControlBlock));
  Cb = nullptr;
  return Res;
}

void Runtime::workerMain(unsigned Id, const EpochPlan &Plan,
                         const ParallelOptions &Options,
                         const IterationFn &Body) {
  bool Spec = !Options.NonSpeculative;
  WorkerId = Id;
  NumWorkers = Options.NumWorkers;
  // Pipeline: this worker IS one stage and visits every iteration in
  // order; the cyclic-scheduling arithmetic below is bypassed.
  bool Staged = Options.Strat == Strategy::Pipeline && Options.NumStages > 0;
  CurStage = Staged ? Id : 0;
  EpochBase = Plan.BaseIter;
  PeriodLen = Plan.Period;
  LocalStats = WorkerStats();
  LocalStats.StartWall = wallSeconds();
  PendingIo.clear();
  PendingCom.clear();
  IoSequence = 0;

  // This worker's SPSC trace ring in the shared control block; row 1 + Id
  // on the exported timeline (row 0 is the main process).
  TraceRing = TraceOn ? &Cb->TraceRings[Id] : nullptr;
  const uint16_t TraceRow = static_cast<uint16_t>(1 + Id);
  if (TraceRing)
    TraceRing->push(trace::makeEvent(trace::Kind::WorkerBegin, TraceRow,
                                     monotonicNanos(),
                                     static_cast<uint64_t>(getpid()), 0, Id));

  if (Spec) {
    Mode = ExecMode::SpeculativeWorker;
    // Copy-on-write isolation of all speculatively managed heaps (§3.2).
    // A failed remap leaves this worker unable to speculate soundly; it
    // reports misspeculation so the main process recovers sequentially
    // rather than aborting the whole program.
    if (!heap(HeapKind::Private).tryRemapCopyOnWrite() ||
        !heap(HeapKind::ShortLived).tryRemapCopyOnWrite() ||
        !heap(HeapKind::Redux).tryRemapCopyOnWrite() ||
        !heap(HeapKind::Unrestricted).tryRemapCopyOnWrite() ||
        !heap(HeapKind::Commutative).tryRemapCopyOnWrite() ||
        !Shadow.tryRemapCopyOnWrite())
      misspecAbort("copy-on-write remap failed in worker");
    if (Options.ProtectReadOnly) {
      heap(HeapKind::ReadOnly).protectReadOnly();
      ActiveWorkerRuntime = this;
      ActiveWorkerCb = Cb;
      ActiveWorkerId = Id;
      ActiveWorkerPeriodBase = Plan.BaseIter;
      ActiveWorkerPeriodLen = Plan.Period;
      ActiveWorkerTraceRing = TraceRing;
      // The handler runs on its own stack (SA_ONSTACK) so an iteration
      // body that overflows the worker stack still reports misspeculation
      // instead of dying unclassified.
      stack_t Ss;
      std::memset(&Ss, 0, sizeof(Ss));
      Ss.ss_sp = WorkerAltStack;
      Ss.ss_size = sizeof(WorkerAltStack);
      sigaltstack(&Ss, nullptr);
      struct sigaction Sa;
      std::memset(&Sa, 0, sizeof(Sa));
      Sa.sa_handler = workerSegvHandler;
      Sa.sa_flags = SA_ONSTACK;
      sigaction(SIGSEGV, &Sa, nullptr);
      sigaction(SIGBUS, &Sa, nullptr);
    }
    // "The reduction heap is replaced and bytes within those pages are
    // initialized with the identity value for the reduction operator."
    Redux.fillIdentity();
  } else {
    Mode = ExecMode::NonSpeculativeWorker;
    SeqOut = Options.Out;
  }

  uint64_t InjectThreshold = faultThreshold(Options.InjectMisspecRate);
  // Heartbeat throttling: a monotonicNanos() syscall-ish store per
  // iteration dominates the hot loop for microsecond-scale bodies, yet the
  // watchdog only needs a beat several times per stall window.  Beat every
  // K iterations, doubling K while beats land much faster than the target
  // interval and halving when they fall behind, so slow-iteration phases
  // cannot starve the watchdog.  WorkerIter stays per-iteration — the kill
  // classifier and the pump's cut-off estimate need it exact.
  uint64_t StallNsW =
      Options.StallTimeoutSec > 0
          ? static_cast<uint64_t>(Options.StallTimeoutSec * 1e9)
          : 0;
  uint64_t BeatTargetNs = StallNsW ? StallNsW / 16 : 10000000;
  constexpr uint64_t kBeatEveryMax = 64;
  uint64_t BeatEvery = 1, SinceBeat = 0;
  uint64_t LastBeatNs = monotonicNanos();
  SharedHeap &SL = heap(HeapKind::ShortLived);
  uint8_t *LocalShadow = reinterpret_cast<uint8_t *>(Shadow.base());
  uint8_t *LocalPrivate =
      reinterpret_cast<uint8_t *>(heap(HeapKind::Private).base());
  uint64_t EpochEnd = Plan.BaseIter + Plan.EpochIters;

  MergeContext MergeCtx;
  MergeCtx.SelfPid = static_cast<uint32_t>(getpid());
  MergeCtx.WorkerId = Id;
  MergeCtx.Heartbeat = &Cb->WorkerHeartbeat[Id];
  MergeCtx.LocksBroken = &Cb->LocksBroken;
  MergeCtx.Injector = Injector;
  CheckpointScanStats MergeScan;
  MergeCtx.Scan = &MergeScan;

  bool Stopped = false;
  for (uint64_t P = 0; P < Plan.NumSlots && !Stopped; ++P) {
    uint64_t PeriodStart = Plan.BaseIter + P * Plan.Period;
    uint64_t PeriodEnd = std::min(EpochEnd, PeriodStart + Plan.Period);
    bool Executed = false;

    // This worker's iterations of period P: its cyclic share for DOALL /
    // DOACROSS, every iteration for a pipeline stage.
    uint64_t First = PeriodStart;
    uint64_t Step = Staged ? 1 : NumWorkers;
    if (!Staged) {
      uint64_t Phase = (First - Plan.BaseIter) % NumWorkers;
      if (Phase != Id)
        First += (Id + NumWorkers - Phase) % NumWorkers;
    }
    // One span per stage per period: the stage boundaries (not individual
    // iterations) are what a pipeline timeline needs to show skew and
    // fill/drain.  Zero cost when tracing is off.
    uint64_t StagePassStartNs = Staged && TraceRing ? monotonicNanos() : 0;
    for (uint64_t I = First; I < PeriodEnd; I += Step) {
      CurIter = I;
      Cb->WorkerIter[Id].store(I, std::memory_order_relaxed);
      if (++SinceBeat >= BeatEvery) {
        uint64_t Now = monotonicNanos();
        Cb->WorkerHeartbeat[Id].store(Now, std::memory_order_relaxed);
        if (TraceRing)
          TraceRing->push(
              trace::makeEvent(trace::Kind::Heartbeat, TraceRow, Now, I, 0,
                               Id));
        uint64_t Elapsed = Now - LastBeatNs;
        if (Elapsed * 2 < BeatTargetNs && BeatEvery < kBeatEveryMax)
          BeatEvery *= 2;
        else if (Elapsed > BeatTargetNs && BeatEvery > 1)
          BeatEvery /= 2;
        LastBeatNs = Now;
        SinceBeat = 0;
      }
      if (Injector)
        Injector->onWorkerIteration(Id, I); // May kill or stall us here.
      CurTs = shadow::timestampFor(I, PeriodStart);
      uint64_t ShortLivedLiveAtStart = SL.liveCount();
      {
        CategoryTimer Timer(LocalStats.UsefulSec);
        Body(I);
      }
      ++LocalStats.Iterations;
      Executed = true;

      if (Spec) {
        // "Each worker counts the number of objects allocated and not
        // freed from its short-lived heap.  If any of these objects is
        // live at the end of an iteration, then lifetime speculation is
        // violated" (§5.1).
        if (SL.liveCount() != ShortLivedLiveAtStart)
          misspecAbort("short-lived object outlived its iteration");
        if (SL.liveCount() == 0)
          SL.resetAllocations();
        if (InjectThreshold &&
            faultHash(I, Options.InjectSeed) < InjectThreshold)
          misspecAbort("injected misspeculation");
      }

      // "Workers consult the global misspeculation flag after each
      // iteration" (§5.3): terminate only if our checkpoint has been
      // squashed; earlier checkpoints still want our contribution.
      if (Cb->MisspecFlag.load(std::memory_order_acquire) &&
          P >= Cb->EarliestMisspecPeriod.load(std::memory_order_relaxed)) {
        Stopped = true;
        break;
      }
    }
    if (StagePassStartNs)
      TraceRing->push(trace::makeEvent(
          trace::Kind::StagePass, TraceRow, monotonicNanos(),
          StagePassStartNs, P, CurStage));

    if (Stopped)
      break;
    if (Spec) {
      CategoryTimer Timer(LocalStats.CheckpointSec);
      uint64_t MergeStartNs = monotonicNanos();
      Cb->WorkerHeartbeat[Id].store(MergeStartNs, std::memory_order_relaxed);
      uint64_t ScanBefore = MergeScan.BytesScanned;
      uint64_t SkipBefore = MergeScan.BytesSkipped;
      Region->workerMerge(P, LocalShadow, LocalPrivate, DirtyMask.data(),
                          Redux, heap(HeapKind::Redux).base(), PendingIo,
                          PendingCom, Executed, MergeCtx);
      if (TraceRing) {
        uint64_t MergeEndNs = monotonicNanos();
        TraceRing->push(trace::makeEvent(trace::Kind::SlotMerge, TraceRow,
                                         MergeEndNs, MergeStartNs, Executed,
                                         static_cast<uint32_t>(P)));
        TraceRing->push(trace::makeEvent(
            trace::Kind::CheckpointScan, TraceRow, MergeEndNs,
            MergeScan.BytesScanned - ScanBefore,
            MergeScan.BytesSkipped - SkipBefore, static_cast<uint32_t>(P)));
      }
      // MergeScan accumulates across periods; snapshot it after every merge
      // so the stats survive a later misspecAbort (which copies LocalStats
      // out and _exits).
      LocalStats.CheckpointDirtyChunks = MergeScan.DirtyChunks;
      LocalStats.CheckpointBytesScanned = MergeScan.BytesScanned;
      LocalStats.CheckpointBytesSkipped = MergeScan.BytesSkipped;
      LocalStats.ComRecordsMerged = MergeScan.ComRecords;
      if (Executed) {
        // Local post-checkpoint reset (§5.1): writes age into old-write,
        // validated live-in reads revert to live-in.  Codes >= 2 can only
        // exist in chunks this period's accesses dirtied (the same
        // argument that makes the sparse merge lossless), so reset walks
        // just those chunks instead of the whole footprint.
        for (uint64_t WI = 0, E = DirtyMask.size(); WI < E; ++WI) {
          uint64_t M = DirtyMask[WI];
          while (M) {
            unsigned Bit = static_cast<unsigned>(__builtin_ctzll(M));
            M &= M - 1;
            uint64_t Base = (WI * 64 + Bit) << kDirtyChunkShift;
            shadow::resetRangeAtCheckpoint(
                LocalShadow + Base,
                std::min(kDirtyChunkBytes, PrivateHighWater - Base));
          }
        }
        std::fill(DirtyMask.begin(), DirtyMask.end(), 0);
        Redux.fillIdentity();
      }
    }
    if (Cb->MisspecFlag.load(std::memory_order_acquire) &&
        P + 1 >= Cb->EarliestMisspecPeriod.load(std::memory_order_relaxed))
      break;
  }

  LocalStats.EndWall = wallSeconds();
  Cb->Stats[Id] = LocalStats;
  _exit(0);
}
