//===- runtime/Privateer.h - Public runtime facade --------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing runtime API in the paper's own vocabulary (Figure 2b).
/// Transformed programs — and hand-privatized programs standing in for
/// compiler output — call these thin wrappers over the process-wide
/// Runtime instance.
///
/// \code
///   privateer::Runtime::get().initialize();
///   auto *Costs = static_cast<int *>(
///       privateer::h_alloc(N * sizeof(int), HeapKind::Private));
///   ...
///   privateer::private_write(&Costs[Src], sizeof(int));
///   Costs[Src] = 0;
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_RUNTIME_PRIVATEER_H
#define PRIVATEER_RUNTIME_PRIVATEER_H

#include "runtime/Runtime.h"

namespace privateer {

/// Allocates \p Bytes from logical heap \p K (paper: h_alloc).
inline void *h_alloc(size_t Bytes, HeapKind K) {
  return Runtime::get().heapAlloc(Bytes, K);
}

/// Frees \p P back to logical heap \p K (paper: h_dealloc).
inline void h_dealloc(void *P, HeapKind K) {
  Runtime::get().heapDealloc(P, K);
}

/// Separation check (paper: check_heap, §4.5).
inline void check_heap(const void *P, HeapKind Expected) {
  Runtime::get().checkHeap(P, Expected);
}

/// Privacy check before a load (paper: private_read, §4.6).
inline void private_read(const void *P, size_t Bytes) {
  Runtime::get().privateRead(P, Bytes);
}

/// Privacy check before a store (paper: private_write, §4.6).
inline void private_write(const void *P, size_t Bytes) {
  Runtime::get().privateWrite(P, Bytes);
}

/// Value-prediction misspeculation site (paper Figure 2b lines 79-80).
inline void speculate(bool Cond, const char *What) {
  Runtime::get().speculateTrue(Cond, What);
}

/// Deferred commutative update (com_update): the separation check is fused
/// in, the store is logged and folded at commit, never validated for
/// privacy.
inline void com_update(void *P, ComOp Op, unsigned Bytes, int64_t Value) {
  Runtime::get().comUpdate(P, Op, Bytes, Value);
}

} // namespace privateer

#endif // PRIVATEER_RUNTIME_PRIVATEER_H
