//===- runtime/Checkpoint.h - Checkpoint objects ----------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checkpoint system of paper §5.2.  A parallel epoch owns an array of
/// checkpoint *slots*, one per checkpoint period of `k` iterations, living
/// in shared memory created before fork.  "Workers acquire a lock on a
/// single checkpoint object, not the whole checkpoint system, to avoid
/// barrier penalties": each worker merges its speculative state (private
/// values, shadow metadata, reduction partials, deferred output) into the
/// slot for a period as soon as it finishes its share of that period's
/// iterations, then keeps running.
///
/// Privacy validation is two-phase (§5.1).  Phase 1 is the inline Table 2
/// test in each worker.  Phase 2 happens here: worker merges record
/// cross-worker read/write facts per byte, and the main process commits
/// slots **in iteration order**, checking every read-live-in byte against
/// the master shadow (was this byte written by any earlier committed
/// period?) and flagging same-period read+write combinations as the
/// paper's conservative misspeculation.
///
/// Slot metadata alphabet (per private byte):
///   0          untouched this period
///   2          read as live-in by >=1 worker
///   ts >= 3    written; highest iteration timestamp wins, value plane
///              holds that worker's byte
///   255        read-live-in and written in the same period -> conservative
///              misspeculation at commit (mirrors Table 2's write-to-2 rule)
///
/// Slots are *sparse*: instead of two dense PrivateBytes planes, a slot
/// holds a dirty-chunk bitmap (union of every contributor's per-period
/// dirty mask), a chunk directory, and an array of packed (meta, values)
/// chunk entries allocated on first touch.  Workers fold only the chunks
/// their dirty mask names, and the ordered commit walks only the union
/// mask, so merge + commit cost is O(bytes touched in the period), not
/// O(private footprint).  The masks live in the shared region alongside
/// the headers so the committer and the fault path (poisoned and torn
/// slots) can reason about a dead worker's partial merge.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_RUNTIME_CHECKPOINT_H
#define PRIVATEER_RUNTIME_CHECKPOINT_H

#include "runtime/CommutativeLog.h"
#include "runtime/ControlBlock.h"
#include "runtime/DeferredIO.h"
#include "runtime/DirtyChunks.h"
#include "runtime/Reduction.h"

#include <string>
#include <vector>

namespace privateer {

class FaultInjector;

inline constexpr uint8_t kSlotConflict = 255;

/// Header of one checkpoint slot (in shared memory).
struct SlotHeader {
  /// Owner-tagged so the committer and sibling workers can detect a lock
  /// orphaned by a dead worker and break it instead of deadlocking.
  OwnerLock Lock;
  /// Set when a worker broke this slot's lock away from a dead holder: the
  /// merge data may be torn mid-update, so the committer must treat the
  /// slot as incomplete.
  std::atomic<uint32_t> Poisoned{0};
  /// Count of workers that merged this slot.  This is the publication point
  /// for eager commit: each merger increments it with release order as the
  /// last store of its merge (still under the slot lock), and the main
  /// process's commit pump polls it with acquire order — observing the
  /// value reach NumWorkers therefore makes every contributor's merge data
  /// visible, so the slot can be committed while the epoch is still
  /// running.
  std::atomic<uint32_t> WorkersMerged{0};
  /// Mergers that actually executed iterations; the first of these
  /// initializes the slot's reduction partial.
  uint32_t ExecutedMerges = 0;
  /// Chunk entries allocated so far (bounded by the slot's capacity).
  uint32_t ChunksUsed = 0;
  /// A merge needed more chunk entries than the slot carries; the slot is
  /// incomplete and must be recovered, never committed.
  uint32_t ChunkOverflow = 0;
  uint64_t BaseIter = 0;
  uint64_t NumIters = 0;
  uint64_t IoBytes = 0;
  uint32_t IoOverflow = 0;
  /// Serialized commutative-update records appended by mergers, applied in
  /// one fold by the committer.  Overflow marks the slot unrepresentable,
  /// exactly like ChunkOverflow.
  uint64_t ComBytes = 0;
  uint32_t ComOverflow = 0;
};

/// Byte-walk accounting for one merge or commit: how many dirty chunks
/// were folded/walked, and within them how many bytes took the per-byte
/// path vs the word-skip fast path.  Feeds the `checkpoint.*` statistics
/// and the perfmodel's dirty-byte checkpoint cost term.
struct CheckpointScanStats {
  uint64_t DirtyChunks = 0;
  uint64_t BytesScanned = 0;
  uint64_t BytesSkipped = 0;
  /// Commutative-update records serialized (merge) or folded (commit).
  uint64_t ComRecords = 0;
};

/// Identity and plumbing a worker carries into workerMerge so the slot lock
/// can be owner-tagged, the watchdog keeps seeing heartbeats while the
/// worker waits, and fault injection can fire inside the critical section.
struct MergeContext {
  uint32_t SelfPid = 0;
  unsigned WorkerId = 0;
  std::atomic<uint64_t> *Heartbeat = nullptr;
  std::atomic<uint64_t> *LocksBroken = nullptr;
  FaultInjector *Injector = nullptr;
  /// Accumulates merge scan accounting when non-null.
  CheckpointScanStats *Scan = nullptr;
};

class CheckpointRegion {
public:
  struct Config {
    uint64_t NumSlots = 0;
    uint64_t PrivateBytes = 0; ///< Bytes of private heap covered (high water).
    uint64_t ReduxBytes = 0;   ///< Bytes of redux heap covered.
    uint64_t IoCapacity = 0;   ///< Per-slot deferred-output capacity.
    /// Per-slot commutative-log capacity in bytes (a multiple of
    /// kComRecordBytes); 0 when the invocation uses no commutative heap.
    uint64_t ComCapacity = 0;
    uint64_t BaseIter = 0;     ///< First iteration of the epoch.
    uint64_t Period = 0;       ///< Checkpoint period k.
    uint64_t EpochIters = 0;   ///< Iterations in this epoch.
    unsigned NumWorkers = 0;
    /// Distinct dirty chunks one slot can hold.  0 (the default) covers
    /// the full footprint, so merges can never overflow; a smaller cap
    /// shrinks SlotStride (and the region) for huge footprints, at the
    /// price of a conservative misspeculation if a period out-dirties it.
    uint64_t SlotChunkCapacity = 0;
  };

  CheckpointRegion() = default;
  CheckpointRegion(const CheckpointRegion &) = delete;
  CheckpointRegion &operator=(const CheckpointRegion &) = delete;
  ~CheckpointRegion();

  /// Maps the region (MAP_SHARED | MAP_ANONYMOUS); must run before fork.
  /// Returns false (with the region left uncreated) if the mapping fails,
  /// so the driver can degrade to sequential execution instead of dying.
  [[nodiscard]] bool create(const Config &C);
  void destroy();

  const Config &config() const { return Cfg; }
  SlotHeader *slot(uint64_t P) const;

  /// Chunks covering the private footprint / entries one slot can hold.
  uint64_t chunkCount() const { return NumChunks; }
  uint64_t slotChunkCapacity() const { return ChunkCap; }
  uint64_t slotStride() const { return SlotStride; }

  /// Union of the contributors' dirty-chunk masks for slot \p P
  /// (dirtyMaskWords(chunkCount()) words, in the shared region).
  uint64_t *slotDirtyMask(uint64_t P) const;

  /// True when slot \p P's header is consistent with the epoch plan.  A
  /// header torn by a crashed writer (or the fault injector) fails this
  /// and must be treated as misspeculation, not walked.  Only valid once
  /// the slot is quiescent (all workers merged it, or all workers reaped):
  /// the dynamic counters it checks are legitimately in motion before then.
  bool slotHeaderSane(uint64_t P) const;

  /// Subset of slotHeaderSane that checks only the fields no healthy worker
  /// ever writes (BaseIter, NumIters — fixed at create()).  Safe to poll at
  /// any time, so the in-epoch commit pump can catch a scribbled header the
  /// moment it appears instead of waiting for the post-join sweep.
  bool slotStableSane(uint64_t P) const;

  /// Worker side: merges this worker's period-\p P state into slot P.
  /// \p LocalShadow / \p LocalPrivate point at the worker's COW views of
  /// the covered byte range; \p DirtyMask names the chunks this worker
  /// touched during the period (only those are folded); \p ReduxBase is
  /// the redux heap base address.  \p PendingIo is consumed (moved into
  /// the slot) unless the slot's I/O buffer overflows, in which case the
  /// records stay with the worker and the slot is marked overflowed so the
  /// misspec recovery re-executes (and re-emits) the period.  When
  /// \p Executed is false the worker ran no iterations of P and only
  /// registers presence.
  /// \p PendingCom is consumed the same way as \p PendingIo: serialized
  /// into the slot's com-log section, or left with the worker (slot marked
  /// overflowed) when it does not fit.
  void workerMerge(uint64_t P, const uint8_t *LocalShadow,
                   const uint8_t *LocalPrivate, const uint64_t *DirtyMask,
                   const ReductionRegistry &Redux, uint64_t ReduxBase,
                   std::vector<IoRecord> &PendingIo,
                   std::vector<ComRecord> &PendingCom, bool Executed,
                   const MergeContext &Ctx);

  enum class CommitStatus { Ok, Misspec };

  /// Main-process side: applies slot \p P to the committed master state.
  /// \p MasterShadow and \p MasterPrivate are the main process's
  /// MAP_SHARED views of the covered range; redux partials are combined
  /// into the master redux heap; deferred output is appended to \p OutIo.
  /// Detects phase-2 privacy violations, reported through \p MisspecWhy.
  /// Walks only the slot's dirty chunks; \p Scan, when non-null, receives
  /// the walk accounting.  \p ComHeapBase / \p ComHeapSpan bound the
  /// commutative heap: every logged record is validated against them
  /// before the slot's com section is folded into the master heap (a
  /// record outside the heap means the shared log was corrupted — treated
  /// as misspeculation before anything is applied).  Span 0 disables the
  /// com fold.
  CommitStatus commitSlot(uint64_t P, uint8_t *MasterShadow,
                          uint8_t *MasterPrivate,
                          const ReductionRegistry &Redux, uint64_t ReduxBase,
                          uint64_t ComHeapBase, uint64_t ComHeapSpan,
                          std::vector<IoRecord> &OutIo, std::string &MisspecWhy,
                          CheckpointScanStats *Scan = nullptr) const;

private:
  uint32_t *slotChunkDir(uint64_t P) const;
  uint8_t *slotEntries(uint64_t P) const;
  uint8_t *entryMeta(uint64_t P, uint32_t Entry) const;
  uint8_t *entryValues(uint64_t P, uint32_t Entry) const;
  uint8_t *slotRedux(uint64_t P) const;
  uint8_t *slotIo(uint64_t P) const;
  uint8_t *slotCom(uint64_t P) const;

  /// Bytes of chunk \p C that lie inside the covered footprint.
  uint64_t chunkSpan(uint64_t C) const;

  Config Cfg;
  uint8_t *Region = nullptr;
  uint64_t NumChunks = 0;
  uint64_t MaskWords = 0;
  uint64_t ChunkCap = 0;
  uint64_t OffMask = 0;
  uint64_t OffDir = 0;
  uint64_t OffEntries = 0;
  uint64_t OffRedux = 0;
  uint64_t OffIo = 0;
  uint64_t OffCom = 0;
  uint64_t SlotStride = 0;
  uint64_t RegionBytes = 0;
};

} // namespace privateer

#endif // PRIVATEER_RUNTIME_CHECKPOINT_H
