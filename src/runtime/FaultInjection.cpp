//===- runtime/FaultInjection.cpp -----------------------------------------===//

#include "runtime/FaultInjection.h"

#include "runtime/Checkpoint.h"

#include <csignal>
#include <ctime>

#include <unistd.h>

using namespace privateer;

namespace {

[[noreturn]] void killSelf() {
  kill(getpid(), SIGKILL);
  for (;;) // SIGKILL cannot be observed; never execute past it.
    pause();
}

void stallFor(double Seconds) {
  timespec Ts;
  Ts.tv_sec = static_cast<time_t>(Seconds);
  Ts.tv_nsec = static_cast<long>((Seconds - static_cast<double>(Ts.tv_sec)) *
                                 1e9);
  // Restart after EINTR: the stall must only end when the watchdog kills
  // this process or the full duration elapses.
  while (nanosleep(&Ts, &Ts) != 0) {
  }
}

} // namespace

FaultInjector::FaultInjector(const FaultPlan &P)
    : Plan(P), KillThreshold(faultThreshold(P.KillRate)),
      StallThreshold(faultThreshold(P.StallRate)) {}

void FaultInjector::onWorkerIteration(unsigned Worker, uint64_t Iter) {
  if (Worker == Plan.KillWorker && Iter == Plan.KillAtIter)
    killSelf();
  if (Worker == Plan.StallWorker && Iter == Plan.StallAtIter)
    stallFor(Plan.StallSeconds);
  // Randomized faults hash the iteration only: cyclic scheduling gives each
  // iteration exactly one executing worker, so the set of doomed iterations
  // is a pure function of the seed.
  if (KillThreshold && faultHash(Iter, Plan.Seed ^ 0xdead) < KillThreshold)
    killSelf();
  if (StallThreshold && faultHash(Iter, Plan.Seed ^ 0x57a11) < StallThreshold)
    stallFor(Plan.StallSeconds);
}

void FaultInjector::onSlotLocked(unsigned Worker, uint64_t Slot) {
  if (Worker == Plan.LockDeathWorker && Slot == Plan.LockDeathSlot)
    killSelf();
}

bool FaultInjector::shouldFailFork() {
  ++ForkCount;
  return Plan.FailForkN != 0 && ForkCount == Plan.FailForkN;
}

void FaultInjector::maybeCorruptSlot(CheckpointRegion &Region) {
  if (Plan.CorruptSlot == kNoFaultIter || CorruptDone)
    return;
  if (Plan.CorruptSlot >= Region.config().NumSlots)
    return;
  CorruptDone = true;
  SlotHeader *H = Region.slot(Plan.CorruptSlot);
  // A torn header: iteration range and I/O cursor no longer agree with the
  // epoch plan.  The committer's sanity check must catch this instead of
  // walking garbage.
  H->BaseIter = faultHash(H->BaseIter, Plan.Seed);
  H->NumIters = ~0ULL;
  H->IoBytes = ~0ULL;
}
