//===- runtime/Runtime.h - The Privateer runtime system ---------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Privateer runtime support system (paper §5): logical heap
/// management, speculative-separation and privacy validation, checkpoints,
/// misspeculation recovery, and the process-based DOALL driver.
///
/// The speculation interface mirrors the calls the Privateer compiler
/// inserts (Figure 2b): `heapAlloc`/`heapDealloc` (h_alloc/h_dealloc),
/// `checkHeap` (check_heap), `privateRead`/`privateWrite` (private_read /
/// private_write), `speculateTrue` (value-prediction misspec sites), and
/// `deferPrintf` (deferred I/O).  Outside a parallel invocation, and during
/// non-speculative recovery, every check is a no-op and the heaps behave as
/// ordinary memory ("Before or after the invocation of a parallel region,
/// these logical heaps behave as normal program memory", §3.2).
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_RUNTIME_RUNTIME_H
#define PRIVATEER_RUNTIME_RUNTIME_H

#include "runtime/Checkpoint.h"
#include "runtime/CommutativeLog.h"
#include "runtime/ControlBlock.h"
#include "runtime/DepChannel.h"
#include "runtime/FaultInjection.h"
#include "runtime/HeapKind.h"
#include "runtime/Reduction.h"
#include "runtime/SharedHeap.h"

#include <cstdarg>
#include <cstdio>
#include <functional>
#include <string>

namespace privateer {

/// Sizes of the logical heaps.  Defaults suit the bundled workloads; the
/// paper's tag scheme would allow up to 16 TB per heap.
struct RuntimeConfig {
  size_t ReadOnlyBytes = 16u << 20;
  size_t PrivateBytes = 8u << 20;
  size_t ReduxBytes = 1u << 20;
  size_t ShortLivedBytes = 8u << 20;
  size_t UnrestrictedBytes = 4u << 20;
  size_t CommutativeBytes = 1u << 20;
};

/// How a parallel invocation schedules its iterations (ROADMAP item 3).
enum class Strategy : uint8_t {
  /// Independent iterations, the paper's model: cross-iteration
  /// dependences must be speculated away entirely.
  Doall = 0,
  /// The DOALL scheduler plus explicit value forwarding: cross-iteration
  /// dependences flow through post/wait token channels (postDep/waitDep)
  /// at their analyzed dependence distance.
  Doacross = 1,
  /// Staged pipeline: the body is split into NumStages stages, one per
  /// worker; every stage visits every iteration in order and tokens flow
  /// between consecutive stages (runParallelStaged).
  Pipeline = 2,
};

inline const char *strategyName(Strategy S) {
  switch (S) {
  case Strategy::Doall:
    return "doall";
  case Strategy::Doacross:
    return "doacross";
  case Strategy::Pipeline:
    return "pipeline";
  }
  return "?";
}

/// Parses a --strategy value; returns false on an unknown name.
inline bool strategyFromName(const std::string &Name, Strategy &Out) {
  if (Name == "doall")
    Out = Strategy::Doall;
  else if (Name == "doacross")
    Out = Strategy::Doacross;
  else if (Name == "pipeline")
    Out = Strategy::Pipeline;
  else
    return false;
  return true;
}

/// Execution context of the current process.
enum class ExecMode : uint8_t {
  Sequential,           ///< Main process, outside or between invocations.
  SpeculativeWorker,    ///< Forked worker with COW heaps and validation.
  NonSpeculativeWorker, ///< DOALL-only worker: shared heaps, no checks.
};

struct ParallelOptions {
  unsigned NumWorkers = 4;
  /// Checkpoint period k; clamped to the paper's 253-iteration maximum.
  uint64_t CheckpointPeriod = 64;
  /// Upper bound on checkpoint slots per fork/join epoch; a long loop runs
  /// as several consecutive epochs.
  uint64_t MaxSlotsPerEpoch = 32;
  /// Fraction of iterations that artificially misspeculate (Figure 9).
  double InjectMisspecRate = 0.0;
  uint64_t InjectSeed = 1;
  /// DOALL-only (Figure 7 baseline): no speculation, no validation, no
  /// checkpoints; heaps stay shared.  Only sound for loops that are truly
  /// independent.
  bool NonSpeculative = false;
  /// Write-protect the read-only heap in workers; a stray store becomes a
  /// SIGSEGV which the worker converts into misspeculation.
  bool ProtectReadOnly = true;
  size_t IoCapacityPerSlot = 1u << 20;
  /// Per-slot commutative-log capacity in bytes (65536 records by
  /// default); only charged when the invocation's commutative heap holds
  /// allocations.  Overflow is a conservative misspeculation.
  size_t ComCapacityPerSlot = 1u << 20;
  /// Distinct dirty 4 KiB chunks one checkpoint slot can hold.  0 (the
  /// default) sizes slots for the whole private footprint, so merges can
  /// never overflow; a smaller bound shrinks the checkpoint region for
  /// huge footprints at the price of a conservative misspeculation when a
  /// period dirties more chunks than the slot can represent.
  uint64_t CheckpointSlotChunks = 0;
  /// In-epoch commit pump: the main process polls slot headers while the
  /// workers are still running and commits each checkpoint the moment all
  /// workers have merged it, overlapping the commit walk with speculative
  /// execution and raising the misspeculation flag mid-epoch when a
  /// commit-time (phase-2) violation is found.  Off reproduces the paper's
  /// literal join-then-commit sequence, which stays useful as a baseline.
  bool EagerCommit = true;
  /// Deferred-output sink; nullptr means stdout.
  std::FILE *Out = nullptr;

  // --- Execution strategy (DOACROSS / pipeline, ROADMAP item 3) ----------

  /// Scheduling strategy.  Doacross and Pipeline need NumDepChannels > 0
  /// to map the shared token rings.
  Strategy Strat = Strategy::Doall;
  /// Dep-token channels the invocation uses: one per forwarded dependence
  /// (DOACROSS) or per stage boundary (pipeline).  >0 maps a MAP_SHARED
  /// ring region inherited by workers; 0 keeps DOALL behavior.
  uint32_t NumDepChannels = 0;
  /// Minimum analyzed/proved dependence distance.  Informational: bounds
  /// the attainable DOACROSS overlap (distance >= workers keeps every
  /// worker busy).
  uint32_t DepDistance = 0;
  /// Pipeline stage count for runParallelStaged; clamped to NumWorkers.
  uint32_t NumStages = 0;

  // --- Fault tolerance ---------------------------------------------------

  /// Watchdog: seconds a worker may go without a heartbeat before the main
  /// process presumes it hung, SIGKILLs it, and recovers its iterations
  /// sequentially.  0 disables the watchdog (join blocks forever, as the
  /// paper's optimistic fault model assumes).
  double StallTimeoutSec = 10.0;
  /// Graceful degradation: after this many consecutive misspeculating
  /// epochs, run the next backoff window sequentially before retrying
  /// speculation.  0 disables adaptive degradation.
  unsigned DegradeAfterMisspecEpochs = 3;
  /// Initial sequential backoff window, in checkpoint periods; doubles on
  /// every consecutive degradation (exponential backoff) up to the cap.
  uint64_t DegradeBasePeriods = 1;
  uint64_t DegradeMaxPeriods = 64;
  /// Deterministic fault injection (tests and bench_fault); inert by
  /// default.
  FaultPlan Faults;

  /// When non-empty, the invocation records a runtime event timeline
  /// (epochs, forks, merges, commits, misspecs, recovery — see
  /// support/Trace.h) and writes it to this path as Chrome-trace /
  /// Perfetto JSON after every invocation.  Empty (the default) keeps
  /// tracing fully off: workers skip the ring pushes entirely.
  std::string TracePath;
};

/// Dynamic counters of one invocation; the raw material for Table 3 and
/// Figure 8.
struct InvocationStats {
  uint64_t Iterations = 0;
  uint64_t Checkpoints = 0; ///< Committed (non-speculative) checkpoints.
  uint64_t Misspecs = 0;
  uint64_t RecoveredIterations = 0; ///< Re-executed sequentially.
  uint64_t Epochs = 0;
  uint64_t PrivateReadCalls = 0;
  uint64_t PrivateReadBytes = 0;
  uint64_t PrivateWriteCalls = 0;
  uint64_t PrivateWriteBytes = 0;
  uint64_t SeparationChecks = 0;
  /// Dirty-range checkpoint accounting: chunks folded/walked by merges and
  /// commits, and bytes inside them taken by the per-byte path vs skipped
  /// word-at-a-time.  Mirrored to StatisticRegistry group "checkpoint".
  uint64_t CheckpointDirtyChunks = 0;
  uint64_t CheckpointBytesScanned = 0;
  uint64_t CheckpointBytesSkipped = 0;
  /// Private-heap high water covered by checkpoints (max over epochs).
  uint64_t PrivateFootprintBytes = 0;
  /// Commit-pump accounting (mirrored to StatisticRegistry group "commit"):
  /// slots committed while at least one worker was still alive, epochs the
  /// pump cut short by raising the misspec flag before join, and the
  /// worker iterations that cut-off saved from being wasted on doomed
  /// periods.
  uint64_t EagerSlots = 0;
  uint64_t EarlyCutoffs = 0;
  uint64_t EarlyCutoffItersSaved = 0;
  /// Wall seconds of commit work the pump overlapped with live workers.
  double OverlapSec = 0;
  double UsefulSec = 0;
  double PrivateReadSec = 0;
  double PrivateWriteSec = 0;
  double CheckpointSec = 0;
  double WallSec = 0;
  std::string FirstMisspecReason;

  // --- Fault-tolerance counters ------------------------------------------
  uint64_t StalledWorkersKilled = 0; ///< Hung workers SIGKILLed by watchdog.
  uint64_t LocksBroken = 0; ///< Slot locks reclaimed from dead holders.
  uint64_t ForkFailures = 0;
  /// fork/mmap failures whose errno was ENOMEM/EAGAIN — memory pressure,
  /// reported distinctly so the service tier can triage OOM as such.
  uint64_t ResourceFailures = 0;
  uint64_t DegradedEpochs = 0; ///< Windows run sequentially by fallback.
  uint64_t DegradedIterations = 0;
  std::string FirstDegradeReason;

  // --- DOACROSS / pipeline counters (StatisticRegistry group "dep") ------
  uint64_t DepPosts = 0;        ///< Tokens published by postDep.
  uint64_t DepWaits = 0;        ///< Tokens consumed by waitDep.
  uint64_t DepWaitSpins = 0;    ///< Spin rounds spent blocked on a token.
  uint64_t DepWaitTimeouts = 0; ///< Waits that gave up and misspeculated.

  // --- Commutative-update heap (StatisticRegistry group "com") -----------
  uint64_t ComUpdates = 0;          ///< Deferred updates logged by workers.
  uint64_t ComRecordsMerged = 0;    ///< Records serialized into slots.
  uint64_t ComRecordsCommitted = 0; ///< Records folded into the master heap.
  uint64_t ComOverflows = 0;        ///< Slot com-log sections that overflowed.

  // --- Per-heap-class footprint (observability satellite) ----------------
  /// Live allocations and allocator high water of each logical heap at the
  /// end of the invocation, indexed by HeapKind.
  uint64_t HeapLiveObjects[kNumHeapKinds] = {};
  uint64_t HeapHighWaterBytes[kNumHeapKinds] = {};
};

using IterationFn = std::function<void(uint64_t)>;

class Runtime {
public:
  /// The process-wide runtime instance (workers inherit it across fork).
  static Runtime &get();

  Runtime() = default;
  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;
  ~Runtime();

  /// Creates and maps all logical heaps at their tagged addresses.
  void initialize(const RuntimeConfig &Config = RuntimeConfig());
  void shutdown();
  bool isInitialized() const { return Initialized; }

  // --- Memory layout (paper §4.4 "Replace Allocation") -------------------

  /// h_alloc: allocates \p Bytes from logical heap \p K; the returned
  /// pointer carries K's tag in bits 44-46.  Aborts on heap exhaustion.
  void *heapAlloc(size_t Bytes, HeapKind K);

  /// h_dealloc.
  void heapDealloc(void *P, HeapKind K);

  SharedHeap &heap(HeapKind K);
  SharedHeap &shadowHeap() { return Shadow; }

  /// Declares a reduction-privatized object (must lie in the redux heap)
  /// with its element type and associative/commutative operator.
  void registerReduction(void *P, size_t Bytes, ReduxElem Elem, ReduxOp Op);
  ReductionRegistry &reductions() { return Redux; }

  /// Declares a commutative-update object (must lie in the commutative
  /// heap) with its agreed operator and element width.  Pure observability
  /// metadata: the deferred records carry their own addresses, so unlike
  /// reductions no identity fill or registry-driven combine is needed.
  void registerCommutative(void *P, size_t Bytes, ComOp Op,
                           uint8_t ElemBytes);
  CommutativeRegistry &commutatives() { return Com; }

  // --- Speculation interface (inserted by the compiler, §4.5-4.6) --------

  /// check_heap: separation check.  In a speculative worker, a tag
  /// mismatch reports misspeculation; otherwise a no-op.
  void checkHeap(const void *P, HeapKind Expected);

  /// private_read: validates and records a read of private memory
  /// (Table 2 "Read" rules on the shadow bytes).
  void privateRead(const void *P, size_t Bytes);

  /// private_write: records a write to private memory (Table 2 "Write").
  void privateWrite(const void *P, size_t Bytes);

  /// Value-prediction / control-speculation misspec site: in a speculative
  /// worker, reports misspeculation when \p Cond is false.  Sequential and
  /// non-speculative execution ignore it (the surrounding code must be
  /// semantically complete without the prediction).
  void speculateTrue(bool Cond, const char *What);

  /// Unconditional misspeculation report from a speculative worker.
  [[noreturn]] void misspecAbort(const char *Reason);

  /// com_update: deferred commutative update of \p Bytes at \p P with
  /// operator \p Op and operand \p Value.  The separation check is fused
  /// in: a speculative worker verifies the commutative-heap tag (misspec on
  /// mismatch) and appends a typed record to its pending log — the store
  /// itself is deferred until commit, so no privacy validation runs.
  /// Everywhere else (sequential, recovery, non-speculative workers) the
  /// update applies immediately with the same load-combine-store fold.
  void comUpdate(void *P, ComOp Op, unsigned Bytes, int64_t Value);

  // --- Fast-path speculation entry points (bytecode VM) ------------------
  //
  // The bytecode engine hoists the per-call mode test out of its inlined
  // check handlers (one speculating() read per body invocation) and
  // performs the tag compare itself as the single mask-AND+compare of
  // paper §5.1, so these entry points skip both and only do the part that
  // needs runtime state.  They must only be called from a speculative
  // worker on a pointer whose tag was already validated.

  /// True when this process is a speculative worker (checks are armed).
  bool speculating() const { return Mode == ExecMode::SpeculativeWorker; }

  /// Counts one separation check that the caller already performed
  /// (tag compare inlined in the VM); keeps stats parity with checkHeap.
  void countSeparationCheck() { ++LocalStats.SeparationChecks; }

  /// privateRead with the mode test and private-heap tag check already
  /// done by the caller: counters, dirty-chunk marking, shadow Read rules.
  void privateReadTagged(uint64_t Addr, size_t Bytes);

  /// privateWrite counterpart of privateReadTagged.
  void privateWriteTagged(uint64_t Addr, size_t Bytes);

  /// comUpdate with the mode test and commutative-heap tag check already
  /// done by the caller: counts the update and appends the record to the
  /// worker's pending log.
  void comUpdateTagged(uint64_t Addr, ComOp Op, unsigned Bytes,
                       int64_t Value) {
    ++LocalStats.ComUpdates;
    PendingCom.push_back(
        ComRecord{Addr, Value, Op, static_cast<uint8_t>(Bytes)});
  }

  /// Deferred printf (I/O deferral): buffered and committed in iteration
  /// order with the enclosing checkpoint; immediate elsewhere.
  void deferPrintf(const char *Fmt, ...)
      __attribute__((format(printf, 2, 3)));

  /// Sink for immediate output produced outside a speculative worker
  /// (sequential runs and recovery); nullptr restores stdout.
  void setSequentialOutput(std::FILE *Out) { SeqOut = Out; }

  // --- Parallel invocation (§5.2-5.3) -------------------------------------

  /// Runs iterations [0, NumIterations) of \p Body as a speculative DOALL
  /// (or a non-speculative DOALL when Options.NonSpeculative), including
  /// checkpointing, validation, and sequential recovery on
  /// misspeculation.  Returns the invocation's statistics.
  InvocationStats runParallel(uint64_t NumIterations,
                              const ParallelOptions &Options,
                              const IterationFn &Body);

  /// Plain sequential execution of [Begin, End); the baseline and the
  /// recovery engine.
  void runSequential(uint64_t Begin, uint64_t End, const IterationFn &Body);

  // --- Dependence forwarding (DOACROSS / pipeline, ROADMAP item 3) -------

  /// post: publishes the cross-iteration value produced by iteration
  /// \p Iter on channel \p Chan.  Inside an invocation the token lands in
  /// the shared ring every worker inherits; sequential execution
  /// (including recovery, which re-posts in order, overwriting doomed
  /// speculative tokens) uses the same ring, and plain sequential runs
  /// outside any invocation fall back to process-local rings so a
  /// rewritten module keeps its original semantics.
  void postDep(uint64_t Iter, uint32_t Chan, uint64_t Value);

  /// wait: returns the token iteration \p Iter posted on \p Chan.  A
  /// speculative worker spins — refreshing its heartbeat, polling the
  /// misspeculation flag, bounded by StallTimeoutSec — and converts a
  /// hopeless wait into misspeculation.  Everywhere else a missing token
  /// returns 0 immediately; by construction that only happens for
  /// pre-loop targets, whose value the rewritten IR discards via select.
  uint64_t waitDep(uint64_t Iter, uint32_t Chan);

  /// Lowest iteration number that will ever post a token (the loop's
  /// begin): speculative waits below the floor return 0 instead of
  /// spinning.  The execution engines set it right before entering the
  /// planned loop.
  void setDepFloor(int64_t Floor) { DepFloor = Floor; }

  /// Stage body for runParallelStaged: (iteration, stage, token from the
  /// previous stage) -> token for the next stage.  Stage 0 receives 0.
  using StagedIterationFn =
      std::function<uint64_t(uint64_t, uint32_t, uint64_t)>;

  /// Pipeline driver: stage s (one per worker, NumStages clamped to
  /// NumWorkers) processes every iteration in order, waiting on stage
  /// s-1's token for the same iteration and posting its own on channel s.
  /// Shares the DOALL epoch/checkpoint machinery — checkpoint slots act
  /// as stage-commit points (a slot commits only once every stage has
  /// merged its period) — so misspeculation rolls back the stage suffix
  /// past the committed frontier and re-runs the remaining (iteration,
  /// stage) pairs sequentially in order.
  InvocationStats runParallelStaged(uint64_t NumIterations,
                                    const ParallelOptions &Options,
                                    const StagedIterationFn &Body);

  ExecMode mode() const { return Mode; }

private:
  friend struct WorkerContext;

  struct EpochPlan {
    uint64_t BaseIter;
    uint64_t EpochIters;
    uint64_t Period;
    uint64_t NumSlots;
  };

  /// Runs one fork/join epoch; returns iterations committed and whether a
  /// misspeculation stopped the epoch early.
  struct EpochResult {
    uint64_t CommittedEnd;  ///< First uncommitted iteration.
    bool Misspec;
    /// Speculative execution could not even start (fork or mmap failure);
    /// the caller must run this epoch sequentially.  Nothing committed.
    bool Degraded = false;
    uint64_t MisspecPeriodEnd; ///< First iteration after the bad period.
    std::string Reason;
  };
  EpochResult runEpoch(const EpochPlan &Plan, const ParallelOptions &Options,
                       const IterationFn &Body, InvocationStats &Stats);

  /// Sequential fallback for [Begin, End) with the invocation's output
  /// sink; records the degradation in \p Stats.
  void runDegraded(uint64_t Begin, uint64_t End,
                   const ParallelOptions &Options, const IterationFn &Body,
                   InvocationStats &Stats, const char *Reason);

  [[noreturn]] void workerMain(unsigned WorkerId, const EpochPlan &Plan,
                               const ParallelOptions &Options,
                               const IterationFn &Body);

  void flushIo(std::vector<IoRecord> &Records, std::FILE *Out);

  bool Initialized = false;
  RuntimeConfig Config;
  SharedHeap Heaps[kNumHeapKinds];
  SharedHeap Shadow;
  ReductionRegistry Redux;
  CommutativeRegistry Com;

  // Invocation-scoped state (valid between runEpoch set-up and tear-down).
  ExecMode Mode = ExecMode::Sequential;
  ControlBlock *Cb = nullptr;
  CheckpointRegion *Region = nullptr;
  /// Active fault injector, set for the duration of runParallel; workers
  /// inherit the pointer (and the injector it addresses) across fork.
  FaultInjector *Injector = nullptr;
  unsigned WorkerId = 0;
  unsigned NumWorkers = 0;
  uint64_t CurIter = 0;
  uint8_t CurTs = 0;
  uint64_t EpochBase = 0;
  uint64_t PeriodLen = 1;
  uint64_t PrivateHighWater = 0;
  /// Per-worker dirty-chunk bitmap of the private heap for the current
  /// checkpoint period, set by the privateRead/privateWrite fast paths.
  /// Sized in runEpoch before fork; each worker mutates its own COW copy
  /// and clears it after every merge.
  std::vector<uint64_t> DirtyMask;
  uint64_t DirtyChunkLimit = 0;
  std::vector<IoRecord> PendingIo;
  uint32_t IoSequence = 0;
  /// Deferred commutative updates of the current checkpoint period;
  /// serialized into the slot's com-log section at merge time.
  std::vector<ComRecord> PendingCom;
  WorkerStats LocalStats;
  /// Tracing, armed per invocation by ParallelOptions::TracePath.  In a
  /// worker process TraceRing points at this worker's SPSC ring inside the
  /// shared control block; in the main process it stays null and events go
  /// straight to the trace::Collector.
  bool TraceOn = false;
  trace::Ring *TraceRing = nullptr;
  std::FILE *SeqOut = nullptr; ///< Sink for immediate (sequential) output.

  // --- Dependence-token channels (DOACROSS / pipeline) -------------------
  /// Base of the channel rings.  During an invocation this is the
  /// MAP_SHARED region created by runParallel (workers inherit the
  /// mapping); outside invocations it may point at lazily grown
  /// process-local rings for plain sequential execution.
  depchan::DepSlot *DepRings = nullptr;
  uint32_t DepChanCount = 0;
  bool DepRingsShared = false; ///< True while runParallel owns the region.
  /// Process-local fallback rings for sequential execution outside an
  /// invocation; grown lazily, freed at shutdown.
  depchan::DepSlot *LocalDepRings = nullptr;
  uint32_t LocalDepChanCount = 0;
  int64_t DepFloor = INT64_MIN;
  uint64_t DepWaitNs = 0; ///< Spin bound for speculative waits (0 = none).
  /// Staged-pipeline state, live only inside runParallelStaged.
  const StagedIterationFn *StagedBody = nullptr;
  uint32_t StageCount = 0;
  uint32_t CurStage = 0; ///< This worker's stage.
  /// Grows the process-local fallback rings to cover \p Chan.
  void ensureLocalDepRings(uint32_t Chan);
};

} // namespace privateer

#endif // PRIVATEER_RUNTIME_RUNTIME_H
