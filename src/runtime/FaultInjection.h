//===- runtime/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault-injection harness for the process-based DOALL
/// driver.  The recovery story of paper §5.3 assumes workers either finish
/// or die loudly; this harness manufactures the quieter failures — a worker
/// SIGKILLed mid-iteration, a worker that stalls instead of progressing, a
/// failed fork, a torn checkpoint-slot header, a worker that dies while
/// holding a slot lock — so the watchdog, orphaned-lock recovery, and
/// graceful-degradation paths can be tested and benchmarked reproducibly.
///
/// All randomized faults are driven by a splitmix64 hash of (iteration,
/// seed), the same scheme `InjectMisspecRate` uses, so a given seed always
/// fails the same iterations regardless of worker scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_RUNTIME_FAULTINJECTION_H
#define PRIVATEER_RUNTIME_FAULTINJECTION_H

#include <cstdint>

namespace privateer {

class CheckpointRegion;

inline constexpr uint64_t kNoFaultIter = ~0ULL;
inline constexpr unsigned kNoFaultWorker = ~0u;

/// splitmix64 of (\p Iter, \p Seed); drives deterministic misspeculation
/// and fault injection (Figure 9's injection scheme).
inline uint64_t faultHash(uint64_t Iter, uint64_t Seed) {
  uint64_t Z = Iter + Seed * 0x9e3779b97f4a7c15ULL + 0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// Maps a probability in [0, 1] onto the uint64 hash space.
inline uint64_t faultThreshold(double Rate) {
  if (Rate <= 0)
    return 0;
  if (Rate >= 1)
    return ~0ULL;
  return static_cast<uint64_t>(Rate * 18446744073709551616.0 /* 2^64 */);
}

/// What to break, where.  Targeted faults name a (worker, iteration) or a
/// fork/slot ordinal; randomized faults fire per iteration with the given
/// probability, derived deterministically from \p Seed.
struct FaultPlan {
  uint64_t Seed = 1;

  /// SIGKILL worker \p KillWorker when it reaches iteration \p KillAtIter.
  unsigned KillWorker = kNoFaultWorker;
  uint64_t KillAtIter = kNoFaultIter;

  /// Stall worker \p StallWorker at iteration \p StallAtIter for
  /// \p StallSeconds (long enough that only the watchdog ends it).
  unsigned StallWorker = kNoFaultWorker;
  uint64_t StallAtIter = kNoFaultIter;
  double StallSeconds = 3600.0;

  /// Worker \p LockDeathWorker SIGKILLs itself immediately after acquiring
  /// the lock of checkpoint slot \p LockDeathSlot, orphaning it.
  unsigned LockDeathWorker = kNoFaultWorker;
  uint64_t LockDeathSlot = 0;

  /// Fail the Nth fork() of the invocation (1-based; 0 never fails).
  uint64_t FailForkN = 0;

  /// Scribble over the header of this checkpoint slot once per invocation
  /// (kNoFaultIter: never), simulating a torn header.
  uint64_t CorruptSlot = kNoFaultIter;

  /// Per-iteration probability that the executing worker SIGKILLs itself /
  /// stalls, hashed from (iteration, Seed).
  double KillRate = 0.0;
  double StallRate = 0.0;

  bool any() const {
    return KillWorker != kNoFaultWorker || StallWorker != kNoFaultWorker ||
           LockDeathWorker != kNoFaultWorker || FailForkN != 0 ||
           CorruptSlot != kNoFaultIter || KillRate > 0 || StallRate > 0;
  }
};

/// Executes a FaultPlan.  One instance lives in the main process for the
/// whole parallel invocation; workers inherit it across fork, so
/// worker-side hooks see the plan without extra shared state.
class FaultInjector {
public:
  explicit FaultInjector(const FaultPlan &Plan);

  bool enabled() const { return Plan.any(); }

  /// Worker-side, top of every iteration.  May SIGKILL or stall the
  /// calling process.
  void onWorkerIteration(unsigned Worker, uint64_t Iter);

  /// Worker-side, immediately after acquiring slot \p Slot's lock.  May
  /// SIGKILL the calling process while it holds the lock.
  void onSlotLocked(unsigned Worker, uint64_t Slot);

  /// Main-process-side, before each fork(); true means the driver must
  /// treat the fork as failed (EAGAIN).
  bool shouldFailFork();

  /// Main-process-side, after spawning an epoch's workers: tears up the
  /// chosen slot header (once per invocation).
  void maybeCorruptSlot(CheckpointRegion &Region);

private:
  FaultPlan Plan;
  uint64_t ForkCount = 0;
  bool CorruptDone = false;
  uint64_t KillThreshold = 0;
  uint64_t StallThreshold = 0;
};

} // namespace privateer

#endif // PRIVATEER_RUNTIME_FAULTINJECTION_H
