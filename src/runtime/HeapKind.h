//===- runtime/HeapKind.h - Logical heaps and tagged addresses --*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five logical heaps of paper §4.2 and the tagged-address scheme of
/// §5.1: "Bits 44-46 of the address hold a 3-bit heap tag, allowing the
/// runtime to quickly determine if a pointer references an address within
/// the correct heap. ... The bit patterns for the private and shadow heaps
/// are chosen so they differ by only one bit.  For a byte at address p
/// within the private heap, the system computes the address of the
/// corresponding byte of metadata in the shadow heap with a single bit-wise
/// OR instruction."
///
/// Tag assignment (bits 46..44):
///   0b001 ReadOnly      0b010 Private       0b011 Shadow (= Private|bit44)
///   0b100 Redux         0b101 ShortLived    0b110 Unrestricted
///   0b111 Commutative
///
/// Commutative is the sixth classification (beyond the paper's five):
/// objects whose every loop access is a recognized read-modify-write with a
/// commutative-associative integer operator.  Speculative stores to it are
/// deferred into per-worker update logs and folded into the master heap at
/// checkpoint-commit time (runtime/CommutativeLog.h), so cross-worker
/// updates to the same cell never misspeculate.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_RUNTIME_HEAPKIND_H
#define PRIVATEER_RUNTIME_HEAPKIND_H

#include <cstdint>

namespace privateer {

/// The access-pattern classifications of paper §4.2 plus the commutative
/// extension.  Shadow is an internal region holding privacy metadata; it is
/// never a classification.
enum class HeapKind : uint8_t {
  ReadOnly = 0,
  Private = 1,
  Redux = 2,
  ShortLived = 3,
  Unrestricted = 4,
  Commutative = 5,
};

/// Must track the enum above: every HeapKind switch in the tree is audited
/// to cover all kinds with no default, so adding a kind without growing
/// this count (or vice versa) fails to compile right here.
inline constexpr unsigned kNumHeapKinds = 6;
static_assert(static_cast<unsigned>(HeapKind::Commutative) + 1 ==
                  kNumHeapKinds,
              "kNumHeapKinds must cover the last HeapKind enumerator");

inline constexpr const char *heapKindName(HeapKind K) {
  switch (K) {
  case HeapKind::ReadOnly:
    return "read-only";
  case HeapKind::Private:
    return "private";
  case HeapKind::Redux:
    return "redux";
  case HeapKind::ShortLived:
    return "short-lived";
  case HeapKind::Unrestricted:
    return "unrestricted";
  case HeapKind::Commutative:
    return "commutative";
  }
  // Unreachable for in-range kinds; out-of-range bytes (e.g. a corrupted
  // image) must be rejected by the caller before casting to HeapKind.
  return "<invalid>";
}

/// Bit position of the least-significant tag bit (paper: bits 44-46).
inline constexpr unsigned kHeapTagShift = 44;
inline constexpr uint64_t kHeapTagMask = 0x7ULL << kHeapTagShift;

/// The single bit by which the private and shadow tags differ, enabling
/// shadowAddress() to be one OR instruction.
inline constexpr uint64_t kShadowBit = 1ULL << kHeapTagShift;

/// 3-bit tag for each logical heap.  Private=0b010 and Shadow=0b011 differ
/// only in bit 44.
inline constexpr uint64_t heapTag(HeapKind K) {
  switch (K) {
  case HeapKind::ReadOnly:
    return 0b001;
  case HeapKind::Private:
    return 0b010;
  case HeapKind::Redux:
    return 0b100;
  case HeapKind::ShortLived:
    return 0b101;
  case HeapKind::Unrestricted:
    return 0b110;
  case HeapKind::Commutative:
    return 0b111;
  }
  return 0;
}

static_assert(heapTag(HeapKind::Commutative) == 0b111 &&
                  heapTag(HeapKind::ReadOnly) == 0b001,
              "every logical heap must own a distinct non-zero 3-bit tag");

inline constexpr uint64_t kShadowTag = 0b011;

/// AddressSanitizer reserves fixed regions that overlap the paper's bare
/// tag bases: its high shadow covers 0x100000000000 (tag 0b001) and its
/// allocator space covers 0x600000000000 (tag 0b110).  Sanitizer builds
/// therefore slide every heap by a uniform offset below the tag bits; the
/// tag extraction and the private->shadow OR are unaffected because the
/// slide keeps bits 44-46 intact and is identical across heaps.
#if defined(__SANITIZE_ADDRESS__)
#define PRIVATEER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PRIVATEER_ASAN 1
#endif
#endif
#ifndef PRIVATEER_ASAN
#define PRIVATEER_ASAN 0
#endif
inline constexpr uint64_t kHeapSlide =
    PRIVATEER_ASAN ? (1ULL << 43) : 0; // 8 TB, strictly below the tag bits.

/// Base virtual address of a logical heap; every object allocated from the
/// heap inherits its tag because the heap is subdivided by allocation.
inline constexpr uint64_t heapBase(HeapKind K) {
  return (heapTag(K) << kHeapTagShift) + kHeapSlide;
}

inline constexpr uint64_t shadowHeapBase() {
  return (kShadowTag << kHeapTagShift) + kHeapSlide;
}

/// Extracts the 3-bit tag of \p Addr.
inline constexpr uint64_t addressTag(uint64_t Addr) {
  return (Addr & kHeapTagMask) >> kHeapTagShift;
}

/// The separation check of §5.1: does \p Addr carry the tag of heap \p K?
/// "The runtime tests the pointer's heap tag via bit arithmetic, reporting
/// misspeculation upon mismatch."
inline constexpr bool addressInHeap(uint64_t Addr, HeapKind K) {
  return (Addr & kHeapTagMask) == (heapTag(K) << kHeapTagShift);
}

/// Address of the metadata byte for private byte \p PrivateAddr: a single
/// bit-wise OR, as in the paper.
inline constexpr uint64_t shadowAddress(uint64_t PrivateAddr) {
  return PrivateAddr | kShadowBit;
}

} // namespace privateer

#endif // PRIVATEER_RUNTIME_HEAPKIND_H
