//===- runtime/CommutativeLog.h - Deferred commutative updates --*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The commutative-update heap class (HeapKind::Commutative, the sixth
/// logical heap).  Objects whose every loop access is a recognized
/// read-modify-write with a commutative-associative integer operator — a
/// histogram bump, a degree counter, a set-membership OR, a min/max map —
/// never need privacy validation: any application order of the updates
/// yields the same bytes.  Following "Flexible Support for Fast Parallel
/// Commutative Updates" (arXiv 1709.09491), a speculative worker defers
/// each update into a per-worker typed log; workerMerge serializes the
/// period's log into the checkpoint slot, and commitSlot folds the records
/// into the master heap with the operator — combine at commit, exactly the
/// shape the reduction merge already has, but sparse: cost is O(updates),
/// not O(object bytes).
///
/// Operators are integer-only on purpose.  Wrapping two's-complement add,
/// mul, and the bitwise/min/max family are associative and commutative bit
/// for bit, so the deferred fold is byte-identical to sequential execution
/// in any application order — which is what lets the randomized
/// differential sweep compare parallel against sequential with memcmp.
/// Floating-point reductions stay on the dense redux heap where the paper
/// put them.
///
/// Update semantics (shared by the interpreter, the bytecode VM, and the
/// commit fold through applyComUpdate): load Bytes at Addr, sign-extend to
/// 64 bits (the IR's i64 load semantics), apply the operator in 64-bit
/// wrapping arithmetic, store back the low Bytes.
///
/// Misspeculation interaction: a log is squashed with its worker (records
/// die with the process) and a slot whose log section overflows is marked
/// ComOverflow, which commitSlot converts into ordinary misspeculation —
/// the period is then recovered sequentially, where updates apply directly.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_RUNTIME_COMMUTATIVELOG_H
#define PRIVATEER_RUNTIME_COMMUTATIVELOG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace privateer {

/// The recognized commutative-associative update operators.  All wrap in
/// 64-bit two's complement; Min/Max compare signed (matching the IR's
/// sign-extending i64 loads).
enum class ComOp : uint8_t {
  Add = 0,
  Mul = 1,
  And = 2,
  Or = 3,
  Xor = 4,
  Min = 5,
  Max = 6,
};

inline constexpr unsigned kNumComOps = 7;

const char *comOpName(ComOp Op);

/// One deferred update: "fold Value into the Bytes-wide cell at Addr with
/// Op".  Addr is the absolute tagged address in the commutative heap, valid
/// in every process of the invocation (the heaps live at fixed bases).
struct ComRecord {
  uint64_t Addr = 0;
  int64_t Value = 0;
  ComOp Op = ComOp::Add;
  uint8_t Bytes = 8;
};

/// Applies one update to live memory.  The single definition every engine
/// and the commit fold share — byte-exactness across sequential, worker,
/// and recovery execution holds by construction.
void applyComUpdate(uint64_t Addr, ComOp Op, unsigned Bytes, int64_t Value);

/// The combine itself, without the memory access: Cur op Value in 64-bit
/// wrapping arithmetic.
int64_t combineComValues(ComOp Op, int64_t Cur, int64_t Value);

//===----------------------------------------------------------------------===//
// Slot wire format
//===----------------------------------------------------------------------===//
//
// Fixed 16-byte records so the slot section needs no parsing state:
//   word0 = Addr (bits 0..47) | Op (bits 48..55) | Bytes (bits 56..63)
//   word1 = Value
// Addresses fit 48 bits: the tag bits live at 44-46 and the sanitizer
// slide stays below bit 44, so every heap address is < 2^47.

inline constexpr uint64_t kComRecordBytes = 16;

/// Serializes \p Records into \p Buf (capacity \p Cap bytes), setting
/// \p Used.  Returns false (and leaves \p Used at 0) when they do not fit —
/// the caller marks the slot overflowed and keeps the records.
bool serializeComRecords(const std::vector<ComRecord> &Records, uint8_t *Buf,
                         uint64_t Cap, uint64_t &Used);

/// Decodes and applies \p Used bytes of records from \p Buf to live memory.
/// Every record is validated against [HeapLo, HeapLo + HeapSpan) before one
/// byte is written: a corrupted slot must become misspeculation, never a
/// scribble over master state.  Returns false on a malformed or
/// out-of-range record; \p Applied counts records folded in.
bool applyComRecords(const uint8_t *Buf, uint64_t Used, uint64_t HeapLo,
                     uint64_t HeapSpan, uint64_t &Applied);

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// One registered commutative object (a global the classifier routed to
/// the commutative heap).  Registration is observability and bounds
/// metadata: unlike reductions there is no identity fill and no per-object
/// combine walk — the log records carry everything commit needs.
struct ComObject {
  uint64_t Addr = 0;
  uint64_t SizeBytes = 0;
  ComOp Op = ComOp::Add;
  uint8_t ElemBytes = 8;
};

class CommutativeRegistry {
public:
  void registerObject(void *Addr, uint64_t SizeBytes, ComOp Op,
                      uint8_t ElemBytes) {
    Objects.push_back({reinterpret_cast<uint64_t>(Addr), SizeBytes, Op,
                       ElemBytes});
  }

  void clear() { Objects.clear(); }
  size_t objectCount() const { return Objects.size(); }
  uint64_t totalBytes() const {
    uint64_t N = 0;
    for (const ComObject &O : Objects)
      N += O.SizeBytes;
    return N;
  }
  const std::vector<ComObject> &objects() const { return Objects; }

private:
  std::vector<ComObject> Objects;
};

} // namespace privateer

#endif // PRIVATEER_RUNTIME_COMMUTATIVELOG_H
