//===- runtime/SharedHeap.cpp ---------------------------------------------===//

#include "runtime/SharedHeap.h"

#include "support/ErrorHandling.h"

#include <cassert>
#include <cerrno>
#include <cstring>
#include <string>

#include <sys/mman.h>
#include <unistd.h>

using namespace privateer;

namespace {

/// Allocator bookkeeping stored at the base of every allocator-managed heap.
/// Because it lives in heap pages it is privatized by copy-on-write exactly
/// like the data it manages.
struct HeapHeader {
  uint64_t Magic;
  uint64_t Bump;      ///< Offset of the next fresh byte.
  uint64_t Live;      ///< Currently live allocations.
  uint64_t FreeHead;  ///< Offset of first free block, 0 if none.
  uint64_t HighWater; ///< Max Bump ever reached.
  uint64_t Pad[3];
};

/// Prefix of every allocated block.
struct BlockHeader {
  uint64_t Size;     ///< Payload bytes (16-byte aligned).
  uint64_t NextFree; ///< Offset of next free block while on the free list.
};

constexpr uint64_t kHeapMagic = 0x50524956415445ULL; // "PRIVATE"
constexpr size_t kAlign = 16;

size_t alignUp(size_t N) { return (N + kAlign - 1) & ~(kAlign - 1); }

} // namespace

SharedHeap::~SharedHeap() { destroy(); }

size_t SharedHeap::dataStartOffset() { return alignUp(sizeof(HeapHeader)); }

void SharedHeap::create(uint64_t BaseAddr, size_t Size, bool WithAllocator) {
  assert(!isCreated() && "heap already created");
  assert(Size % 4096 == 0 && "heap size must be page aligned");
  Fd = memfd_create("privateer-heap", 0);
  if (Fd < 0)
    reportFatalError(std::string("memfd_create: ") + std::strerror(errno));
  if (ftruncate(Fd, static_cast<off_t>(Size)) != 0)
    reportFatalError(std::string("ftruncate: ") + std::strerror(errno));
  void *Got =
      mmap(reinterpret_cast<void *>(BaseAddr), Size, PROT_READ | PROT_WRITE,
           MAP_SHARED | MAP_FIXED_NOREPLACE, Fd, 0);
  if (Got != reinterpret_cast<void *>(BaseAddr))
    reportFatalError(std::string("mmap heap at fixed address: ") +
                     std::strerror(errno));
  Base = BaseAddr;
  Bytes = Size;
  HasAllocator = WithAllocator;
  if (HasAllocator) {
    auto *H = reinterpret_cast<HeapHeader *>(Base);
    H->Magic = kHeapMagic;
    H->Bump = dataStartOffset();
    H->Live = 0;
    H->FreeHead = 0;
    H->HighWater = H->Bump;
  }
}

void SharedHeap::destroy() {
  if (!isCreated())
    return;
  munmap(reinterpret_cast<void *>(Base), Bytes);
  close(Fd);
  Base = 0;
  Bytes = 0;
  Fd = -1;
}

void *SharedHeap::allocate(size_t N) {
  assert(HasAllocator && "allocation from a raw heap");
  auto *H = reinterpret_cast<HeapHeader *>(Base);
  assert(H->Magic == kHeapMagic && "corrupted heap header");
  size_t Need = alignUp(N == 0 ? 1 : N);

  // First-fit search of the free list.
  uint64_t PrevOff = 0;
  for (uint64_t Off = H->FreeHead; Off != 0;) {
    auto *B = reinterpret_cast<BlockHeader *>(Base + Off);
    if (B->Size >= Need) {
      if (PrevOff == 0)
        H->FreeHead = B->NextFree;
      else
        reinterpret_cast<BlockHeader *>(Base + PrevOff)->NextFree =
            B->NextFree;
      B->NextFree = 0;
      ++H->Live;
      return reinterpret_cast<void *>(Base + Off + sizeof(BlockHeader));
    }
    PrevOff = Off;
    Off = B->NextFree;
  }

  // Carve a fresh block.
  uint64_t Off = H->Bump;
  uint64_t NewBump = Off + sizeof(BlockHeader) + Need;
  if (NewBump > Bytes)
    return nullptr;
  auto *B = reinterpret_cast<BlockHeader *>(Base + Off);
  B->Size = Need;
  B->NextFree = 0;
  H->Bump = NewBump;
  if (NewBump > H->HighWater)
    H->HighWater = NewBump;
  ++H->Live;
  return reinterpret_cast<void *>(Base + Off + sizeof(BlockHeader));
}

void SharedHeap::deallocate(void *P) {
  assert(HasAllocator && "deallocation into a raw heap");
  assert(contains(P) && "pointer not from this heap");
  auto *H = reinterpret_cast<HeapHeader *>(Base);
  auto *B = reinterpret_cast<BlockHeader *>(reinterpret_cast<uint64_t>(P) -
                                            sizeof(BlockHeader));
  uint64_t Off = reinterpret_cast<uint64_t>(B) - Base;
  B->NextFree = H->FreeHead;
  H->FreeHead = Off;
  assert(H->Live > 0 && "double free");
  --H->Live;
}

uint64_t SharedHeap::liveCount() const {
  if (!HasAllocator)
    return 0;
  return reinterpret_cast<const HeapHeader *>(Base)->Live;
}

size_t SharedHeap::highWater() const {
  if (!HasAllocator)
    return Bytes;
  return reinterpret_cast<const HeapHeader *>(Base)->HighWater;
}

void SharedHeap::resetAllocations() {
  assert(HasAllocator && "resetting a raw heap");
  auto *H = reinterpret_cast<HeapHeader *>(Base);
  H->Bump = dataStartOffset();
  H->Live = 0;
  H->FreeHead = 0;
}

bool SharedHeap::tryRemapCopyOnWrite() {
  assert(isCreated() && "heap not created");
  void *Got = mmap(reinterpret_cast<void *>(Base), Bytes,
                   PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_FIXED, Fd, 0);
  return Got == reinterpret_cast<void *>(Base);
}

void SharedHeap::remapCopyOnWrite() {
  if (!tryRemapCopyOnWrite())
    reportFatalError(std::string("mmap COW remap: ") + std::strerror(errno));
}

void SharedHeap::remapShared() {
  assert(isCreated() && "heap not created");
  void *Got = mmap(reinterpret_cast<void *>(Base), Bytes,
                   PROT_READ | PROT_WRITE, MAP_SHARED | MAP_FIXED, Fd, 0);
  if (Got != reinterpret_cast<void *>(Base))
    reportFatalError(std::string("mmap shared remap: ") +
                     std::strerror(errno));
}

void SharedHeap::protectReadOnly() {
  assert(isCreated() && "heap not created");
  if (mprotect(reinterpret_cast<void *>(Base), Bytes, PROT_READ) != 0)
    reportFatalError(std::string("mprotect read-only: ") +
                     std::strerror(errno));
}
