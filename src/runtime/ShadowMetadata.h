//===- runtime/ShadowMetadata.h - Table 2 transition rules ------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-byte privacy metadata codes and the transition rules of the
/// paper's Table 2.  "Every byte of metadata contains one of four codes:
/// live-in (0), old-write (1), read-live-in (2), or a timestamp 3+(i-i0)
/// encoding the iteration i after the most recent checkpoint i0."
///
/// Table 2 (op, metadata before -> after), where B is the timestamp for the
/// current iteration and a a timestamp for an earlier iteration:
///
///   Read   0            -> 2        read a live-in value
///   Read   1            -> misspec  loop-carried flow dependence
///   Read   2            -> 2        read a live-in value
///   Read   a (2<a<B)    -> misspec  loop-carried flow dependence
///   Read   B            -> B        intra-iteration (private) flow
///   Write  0            -> B        overwrite a live-in value
///   Write  1            -> B        overwrite an old write
///   Write  2            -> misspec  conservative false positive
///   Write  a (2<a<=B)   -> B        overwrite a recent write
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_RUNTIME_SHADOWMETADATA_H
#define PRIVATEER_RUNTIME_SHADOWMETADATA_H

#include <algorithm>
#include <cstdint>

namespace privateer {
namespace shadow {

inline constexpr uint8_t kLiveIn = 0;
inline constexpr uint8_t kOldWrite = 1;
inline constexpr uint8_t kReadLiveIn = 2;
/// Timestamp code of iteration \p I after the most recent checkpoint \p I0.
inline constexpr uint8_t kFirstTimestamp = 3;

/// "Privateer triggers a checkpoint operation at least every 253
/// iterations" so that 3+(i-i0) never overflows a byte.
inline constexpr uint64_t kMaxCheckpointPeriod = 253;

inline constexpr uint8_t timestampFor(uint64_t Iter, uint64_t PeriodBase) {
  return static_cast<uint8_t>(kFirstTimestamp + (Iter - PeriodBase));
}

inline constexpr bool isTimestamp(uint8_t Code) {
  return Code >= kFirstTimestamp;
}

struct Transition {
  uint8_t After;
  bool Misspec;
};

/// Applies the "Read" half of Table 2 for current-iteration timestamp
/// \p CurrentTs (which must itself be a timestamp code).
inline constexpr Transition applyRead(uint8_t Before, uint8_t CurrentTs) {
  if (Before == kLiveIn)
    return {kReadLiveIn, false}; // Read a live-in value.
  if (Before == kOldWrite)
    return {Before, true}; // Loop-carried flow dependence.
  if (Before == kReadLiveIn)
    return {kReadLiveIn, false}; // Read a live-in value.
  if (Before == CurrentTs)
    return {CurrentTs, false}; // Intra-iteration (private) flow.
  return {Before, true};       // Earlier iteration: loop-carried flow.
}

/// Applies the "Write" half of Table 2.
inline constexpr Transition applyWrite(uint8_t Before, uint8_t CurrentTs) {
  if (Before == kLiveIn)
    return {CurrentTs, false}; // Overwrite a live-in value.
  if (Before == kOldWrite)
    return {CurrentTs, false}; // Overwrite an old write.
  if (Before == kReadLiveIn)
    return {Before, true}; // Conservative false positive.
  return {CurrentTs, false}; // Overwrite a recent write.
}

/// Applies the Read rule to \p N consecutive metadata bytes with a
/// word-at-a-time fast path for the two overwhelmingly common states (all
/// bytes current-timestamp; all bytes live-in).  Returns false on the
/// first misspeculating byte.  This is the loop behind private_read — a
/// few instructions per word in the common case, as the paper requires.
inline bool applyReadRange(uint8_t *Meta, uint64_t N, uint8_t CurrentTs) {
  const uint64_t TsWord = 0x0101010101010101ULL * CurrentTs;
  const uint64_t ReadLiveInWord = 0x0101010101010101ULL * kReadLiveIn;
  uint64_t I = 0;
  auto Slow = [&](uint64_t End) {
    for (; I < End; ++I) {
      Transition T = applyRead(Meta[I], CurrentTs);
      if (T.Misspec)
        return false;
      Meta[I] = T.After;
    }
    return true;
  };
  uint64_t Head = std::min<uint64_t>(
      N, (8 - (reinterpret_cast<uintptr_t>(Meta) & 7)) & 7);
  if (!Slow(Head))
    return false;
  while (I + 8 <= N) {
    uint64_t W;
    __builtin_memcpy(&W, Meta + I, 8);
    if (W == TsWord) { // Intra-iteration flow on every byte.
      I += 8;
      continue;
    }
    if (W == 0) { // All live-in.
      __builtin_memcpy(Meta + I, &ReadLiveInWord, 8);
      I += 8;
      continue;
    }
    if (!Slow(I + 8)) // Mixed word: per-byte rules (advances I).
      return false;
  }
  return Slow(N);
}

/// Applies the Write rule to \p N consecutive metadata bytes; same fast
/// path as applyReadRange.  Returns false on the first misspeculating
/// (read-live-in) byte.
inline bool applyWriteRange(uint8_t *Meta, uint64_t N, uint8_t CurrentTs) {
  const uint64_t TsWord = 0x0101010101010101ULL * CurrentTs;
  const uint64_t OldWriteWord = 0x0101010101010101ULL * kOldWrite;
  uint64_t I = 0;
  auto Slow = [&](uint64_t End) {
    for (; I < End; ++I) {
      Transition T = applyWrite(Meta[I], CurrentTs);
      if (T.Misspec)
        return false;
      Meta[I] = T.After;
    }
    return true;
  };
  uint64_t Head = std::min<uint64_t>(
      N, (8 - (reinterpret_cast<uintptr_t>(Meta) & 7)) & 7);
  if (!Slow(Head))
    return false;
  while (I + 8 <= N) {
    uint64_t W;
    __builtin_memcpy(&W, Meta + I, 8);
    if (W == TsWord || W == 0 || W == OldWriteWord) {
      __builtin_memcpy(Meta + I, &TsWord, 8);
      I += 8;
      continue;
    }
    if (!Slow(I + 8)) // Mixed word: per-byte rules (advances I).
      return false;
  }
  return Slow(N);
}

/// Checkpoint-time reset (paper §5.1): "A checkpoint resets the metadata
/// range by replacing all writes before the checkpoint (metadata a >= 3)
/// with old-write (1)."  Validated read-live-in bytes revert to live-in:
/// their privacy for the finished period has been established, and any
/// later-period read still sees the original live-in value (worker copies
/// are never refreshed mid-invocation).
inline constexpr uint8_t resetAtCheckpoint(uint8_t Code) {
  if (isTimestamp(Code))
    return kOldWrite;
  if (Code == kReadLiveIn)
    return kLiveIn;
  return Code;
}

/// Applies resetAtCheckpoint over a range, skipping all-live-in and
/// all-old-write words (the overwhelmingly common states).
inline void resetRangeAtCheckpoint(uint8_t *Meta, uint64_t N) {
  const uint64_t OldWriteWord = 0x0101010101010101ULL * kOldWrite;
  uint64_t I = 0;
  for (; I + 8 <= N; I += 8) {
    uint64_t W;
    __builtin_memcpy(&W, Meta + I, 8);
    if (W == 0 || W == OldWriteWord)
      continue;
    for (uint64_t J = I; J < I + 8; ++J)
      Meta[J] = resetAtCheckpoint(Meta[J]);
  }
  for (; I < N; ++I)
    Meta[I] = resetAtCheckpoint(Meta[I]);
}

} // namespace shadow
} // namespace privateer

#endif // PRIVATEER_RUNTIME_SHADOWMETADATA_H
