//===- runtime/Reduction.cpp ----------------------------------------------===//

#include "runtime/Reduction.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <type_traits>

using namespace privateer;

namespace {

template <typename T> T identityFor(ReduxOp Op) {
  switch (Op) {
  case ReduxOp::Add:
    return T(0);
  case ReduxOp::Mul:
    return T(1);
  case ReduxOp::Min:
    // Floating-point min/max identities must be the infinities, not the
    // finite extremes: a sequential result of +-inf (or an inf produced in
    // one worker's partial) would otherwise clamp to max()/lowest() after
    // combine and diverge from sequential execution.
    if constexpr (std::is_floating_point_v<T>)
      return std::numeric_limits<T>::infinity();
    else
      return std::numeric_limits<T>::max();
  case ReduxOp::Max:
    if constexpr (std::is_floating_point_v<T>)
      return -std::numeric_limits<T>::infinity();
    else
      return std::numeric_limits<T>::lowest();
  }
  return T(0);
}

template <typename T> T combineOne(ReduxOp Op, T A, T B) {
  switch (Op) {
  case ReduxOp::Add:
    return A + B;
  case ReduxOp::Mul:
    return A * B;
  case ReduxOp::Min:
    return std::min(A, B);
  case ReduxOp::Max:
    return std::max(A, B);
  }
  return A;
}

template <typename T>
void fillIdentityTyped(uint64_t Addr, size_t Bytes, ReduxOp Op) {
  T Identity = identityFor<T>(Op);
  T *P = reinterpret_cast<T *>(Addr);
  for (size_t I = 0, E = Bytes / sizeof(T); I < E; ++I)
    P[I] = Identity;
}

template <typename T>
void combineTyped(uint64_t Dst, uint64_t Src, size_t Bytes, ReduxOp Op) {
  T *D = reinterpret_cast<T *>(Dst);
  const T *S = reinterpret_cast<const T *>(Src);
  for (size_t I = 0, E = Bytes / sizeof(T); I < E; ++I)
    D[I] = combineOne(Op, D[I], S[I]);
}

} // namespace

void ReductionRegistry::registerObject(void *Address, size_t Bytes,
                                       ReduxElem Elem, ReduxOp Op) {
  assert(Bytes % reduxElemSize(Elem) == 0 &&
         "reduction object size not a multiple of element size");
  Objects.push_back(
      ReduxObject{reinterpret_cast<uint64_t>(Address), Bytes, Elem, Op});
}

void ReductionRegistry::fillIdentity(int64_t Bias) const {
  for (const ReduxObject &O : Objects) {
    uint64_t Addr = O.Address + Bias;
    switch (O.Elem) {
    case ReduxElem::I32:
      fillIdentityTyped<int32_t>(Addr, O.Bytes, O.Op);
      break;
    case ReduxElem::I64:
      fillIdentityTyped<int64_t>(Addr, O.Bytes, O.Op);
      break;
    case ReduxElem::F32:
      fillIdentityTyped<float>(Addr, O.Bytes, O.Op);
      break;
    case ReduxElem::F64:
      fillIdentityTyped<double>(Addr, O.Bytes, O.Op);
      break;
    }
  }
}

void ReductionRegistry::combine(int64_t DstBias, int64_t SrcBias) const {
  for (const ReduxObject &O : Objects) {
    uint64_t Dst = O.Address + DstBias;
    uint64_t Src = O.Address + SrcBias;
    switch (O.Elem) {
    case ReduxElem::I32:
      combineTyped<int32_t>(Dst, Src, O.Bytes, O.Op);
      break;
    case ReduxElem::I64:
      combineTyped<int64_t>(Dst, Src, O.Bytes, O.Op);
      break;
    case ReduxElem::F32:
      combineTyped<float>(Dst, Src, O.Bytes, O.Op);
      break;
    case ReduxElem::F64:
      combineTyped<double>(Dst, Src, O.Bytes, O.Op);
      break;
    }
  }
}

size_t ReductionRegistry::spanEnd(uint64_t HeapBase) const {
  size_t End = 0;
  for (const ReduxObject &O : Objects) {
    assert(O.Address >= HeapBase && "redux object below heap base");
    End = std::max(End, static_cast<size_t>(O.Address - HeapBase + O.Bytes));
  }
  return End;
}
