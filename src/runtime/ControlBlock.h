//===- runtime/ControlBlock.h - Shared worker coordination ------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-shared state for a parallel invocation: the global
/// misspeculation flag and earliest-misspeculation record (paper §5.3), a
/// per-worker progress word and heartbeat feeding the main process's
/// watchdog, and per-worker statistics feeding Table 3 and Figure 8.
/// Lives in a MAP_SHARED|MAP_ANONYMOUS region created before fork so all
/// workers see one instance.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_RUNTIME_CONTROLBLOCK_H
#define PRIVATEER_RUNTIME_CONTROLBLOCK_H

#include "support/Trace.h"

#include <atomic>
#include <cerrno>
#include <cstdint>

#include <sched.h>
#include <signal.h>

namespace privateer {

inline constexpr unsigned kMaxWorkers = 64;
inline constexpr uint64_t kNoMisspec = ~0ULL;

/// A process-shared mutex whose holder is identified by PID, so that a
/// survivor can detect a lock orphaned by a dead process and break it
/// instead of deadlocking.  Workers are processes, potentially timesharing
/// one core, so the slow path yields rather than spinning; every so often
/// it probes the holder with kill(pid, 0) and steals the lock if the
/// holder is gone.
class OwnerLock {
public:
  /// Acquires the lock for \p SelfPid.  Returns true if acquisition
  /// required breaking a dead holder's lock — the caller must assume the
  /// protected data is torn.  \p Heartbeat, when given, is refreshed with
  /// \p HeartbeatValue() while waiting so a watchdog does not mistake a
  /// patient waiter for a hung worker.
  template <typename BeatFn>
  bool lockOrBreak(uint32_t SelfPid, BeatFn Beat) {
    unsigned Spins = 0;
    for (;;) {
      uint32_t Cur = 0;
      if (Holder.compare_exchange_weak(Cur, SelfPid,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed))
        return false;
      if (++Spins % 256 == 0) {
        Beat();
        // Probe the holder; ESRCH means it died while holding the lock.
        uint32_t Owner = Holder.load(std::memory_order_relaxed);
        if (Owner != 0 && kill(static_cast<pid_t>(Owner), 0) != 0 &&
            errno == ESRCH) {
          if (Holder.compare_exchange_strong(Owner, SelfPid,
                                             std::memory_order_acquire))
            return true;
        }
      }
      sched_yield();
    }
  }

  bool lockOrBreak(uint32_t SelfPid) {
    return lockOrBreak(SelfPid, [] {});
  }

  void unlock() { Holder.store(0, std::memory_order_release); }

  /// PID of the current holder, 0 when free.
  uint32_t holder() const { return Holder.load(std::memory_order_acquire); }

  /// Main-process-side: clears a lock known to be orphaned (all workers
  /// already reaped).
  void forceBreak() { Holder.store(0, std::memory_order_release); }

private:
  std::atomic<uint32_t> Holder{0};
};

/// Per-worker counters; each worker writes only its own entry.
struct WorkerStats {
  uint64_t Iterations = 0;
  uint64_t PrivateReadCalls = 0;
  uint64_t PrivateReadBytes = 0;
  uint64_t PrivateWriteCalls = 0;
  uint64_t PrivateWriteBytes = 0;
  uint64_t SeparationChecks = 0;
  /// Checkpoint-merge scan accounting (dirty-range tracking): chunks this
  /// worker folded into slots, and bytes taken by the per-byte vs word-skip
  /// paths inside them.  Travel through the shared block because the
  /// worker process's own statistics die with it.
  uint64_t CheckpointDirtyChunks = 0;
  uint64_t CheckpointBytesScanned = 0;
  uint64_t CheckpointBytesSkipped = 0;
  /// DOACROSS / pipeline token traffic (postDep/waitDep).
  uint64_t DepPosts = 0;
  uint64_t DepWaits = 0;
  uint64_t DepWaitSpins = 0;
  uint64_t DepWaitTimeouts = 0;
  /// Commutative-update traffic: deferred updates this worker logged and
  /// records it serialized into checkpoint slots.
  uint64_t ComUpdates = 0;
  uint64_t ComRecordsMerged = 0;
  double UsefulSec = 0;
  double PrivateReadSec = 0;
  double PrivateWriteSec = 0;
  double CheckpointSec = 0;
  double StartWall = 0;
  double EndWall = 0;
};

struct ControlBlock {
  std::atomic<uint32_t> MisspecFlag{0};
  std::atomic<uint64_t> EarliestMisspecIter{kNoMisspec};
  std::atomic<uint64_t> EarliestMisspecPeriod{kNoMisspec};
  /// First writer wins; readable only after the writer exited (the main
  /// process reads it post-join, workers never read it).
  char MisspecReason[160] = {};
  /// Iteration each worker is currently executing; consulted when a worker
  /// dies without recording a misspeculation (e.g. a SIGSEGV from the
  /// write-protected read-only heap).
  std::atomic<uint64_t> WorkerIter[kMaxWorkers];
  /// Monotonic-clock nanoseconds of each worker's last sign of progress;
  /// the watchdog SIGKILLs workers whose heartbeat goes stale.
  std::atomic<uint64_t> WorkerHeartbeat[kMaxWorkers];
  /// Checkpoint-slot locks broken by workers after their holder died.
  std::atomic<uint64_t> LocksBroken{0};
  WorkerStats Stats[kMaxWorkers];
  /// Per-worker SPSC trace rings (worker produces, main process drains at
  /// commit/join points).  Untouched pages when tracing is off, so the
  /// ~4 MiB they add to the shared mapping costs address space only.
  trace::Ring TraceRings[kMaxWorkers];

  /// Atomically lowers \p Target to \p Value if smaller.
  static void storeMin(std::atomic<uint64_t> &Target, uint64_t Value) {
    uint64_t Cur = Target.load(std::memory_order_relaxed);
    while (Value < Cur &&
           !Target.compare_exchange_weak(Cur, Value,
                                         std::memory_order_acq_rel)) {
    }
  }
};

static_assert(std::atomic<uint64_t>::is_always_lock_free,
              "control block requires lock-free 64-bit atomics");

} // namespace privateer

#endif // PRIVATEER_RUNTIME_CONTROLBLOCK_H
