//===- runtime/ControlBlock.h - Shared worker coordination ------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-shared state for a parallel invocation: the global
/// misspeculation flag and earliest-misspeculation record (paper §5.3), a
/// per-worker progress word, and per-worker statistics feeding Table 3 and
/// Figure 8.  Lives in a MAP_SHARED|MAP_ANONYMOUS region created before
/// fork so all workers see one instance.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_RUNTIME_CONTROLBLOCK_H
#define PRIVATEER_RUNTIME_CONTROLBLOCK_H

#include <atomic>
#include <cstdint>

#include <sched.h>

namespace privateer {

inline constexpr unsigned kMaxWorkers = 64;
inline constexpr uint64_t kNoMisspec = ~0ULL;

/// A tiny process-shared mutex.  Workers are processes, potentially
/// timesharing one core, so the slow path yields rather than spinning.
class SpinLock {
public:
  void lock() {
    while (State.exchange(1, std::memory_order_acquire) != 0)
      sched_yield();
  }
  void unlock() { State.store(0, std::memory_order_release); }

private:
  std::atomic<uint32_t> State{0};
};

/// Per-worker counters; each worker writes only its own entry.
struct WorkerStats {
  uint64_t Iterations = 0;
  uint64_t PrivateReadCalls = 0;
  uint64_t PrivateReadBytes = 0;
  uint64_t PrivateWriteCalls = 0;
  uint64_t PrivateWriteBytes = 0;
  uint64_t SeparationChecks = 0;
  double UsefulSec = 0;
  double PrivateReadSec = 0;
  double PrivateWriteSec = 0;
  double CheckpointSec = 0;
  double StartWall = 0;
  double EndWall = 0;
};

struct ControlBlock {
  std::atomic<uint32_t> MisspecFlag{0};
  std::atomic<uint64_t> EarliestMisspecIter{kNoMisspec};
  std::atomic<uint64_t> EarliestMisspecPeriod{kNoMisspec};
  SpinLock ReasonLock;
  char MisspecReason[160] = {};
  /// Iteration each worker is currently executing; consulted when a worker
  /// dies without recording a misspeculation (e.g. a SIGSEGV from the
  /// write-protected read-only heap).
  std::atomic<uint64_t> WorkerIter[kMaxWorkers];
  WorkerStats Stats[kMaxWorkers];

  /// Atomically lowers \p Target to \p Value if smaller.
  static void storeMin(std::atomic<uint64_t> &Target, uint64_t Value) {
    uint64_t Cur = Target.load(std::memory_order_relaxed);
    while (Value < Cur &&
           !Target.compare_exchange_weak(Cur, Value,
                                         std::memory_order_acq_rel)) {
    }
  }
};

static_assert(std::atomic<uint64_t>::is_always_lock_free,
              "control block requires lock-free 64-bit atomics");

} // namespace privateer

#endif // PRIVATEER_RUNTIME_CONTROLBLOCK_H
