//===- runtime/SharedHeap.h - One logical heap ------------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A logical heap backed by an anonymous shared-memory object, mapped at
/// its fixed tag-encoded virtual address (paper §5.1: "Heaps are created
/// via shm open.  Each process maps them into its address space via mmap
/// with read-only, read-write or copy-on-write protections.  The mmap
/// facility allows the system to select a fixed, absolute virtual address
/// for these heaps.").
///
/// The allocator state lives *inside* the heap (at its base), so a worker's
/// copy-on-write view privatizes allocator metadata together with the data:
/// workers can allocate/free short-lived objects without coordinating.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_RUNTIME_SHAREDHEAP_H
#define PRIVATEER_RUNTIME_SHAREDHEAP_H

#include "runtime/HeapKind.h"

#include <cstddef>
#include <cstdint>

namespace privateer {

class SharedHeap {
public:
  SharedHeap() = default;
  SharedHeap(const SharedHeap &) = delete;
  SharedHeap &operator=(const SharedHeap &) = delete;
  ~SharedHeap();

  /// Creates the backing object and maps it MAP_SHARED at \p BaseAddr.
  /// If \p WithAllocator is false the region is raw storage (the shadow
  /// heap), otherwise an in-heap allocator header is initialized.
  void create(uint64_t BaseAddr, size_t Size, bool WithAllocator);
  void destroy();

  bool isCreated() const { return Base != 0; }
  uint64_t base() const { return Base; }
  size_t size() const { return Bytes; }
  int fd() const { return Fd; }
  bool contains(const void *P) const {
    uint64_t A = reinterpret_cast<uint64_t>(P);
    return A >= Base && A < Base + Bytes;
  }

  /// Allocates \p N bytes (16-byte aligned) from the in-heap allocator.
  /// Returns nullptr only on exhaustion.
  void *allocate(size_t N);

  /// Returns a block to the in-heap free list.
  void deallocate(void *P);

  /// Number of currently-live allocations (used by short-lived lifetime
  /// validation, paper §5.1 "Validating Short-Lived Objects").
  uint64_t liveCount() const;

  /// Highest byte offset ever used by the allocator; checkpoints copy only
  /// [0, highWater).  Raw heaps report their full size.
  size_t highWater() const;

  /// Drops all allocations: bump pointer and free list reset.  Used to
  /// recycle the short-lived arena at iteration boundaries once the live
  /// count reached zero.
  void resetAllocations();

  /// Offset of the first allocatable byte (after the allocator header).
  static size_t dataStartOffset();

  /// Replaces this process's view with a copy-on-write (MAP_PRIVATE)
  /// mapping of the same backing object at the same address.  "the OS traps
  /// updates to the private heap and silently duplicates those pages, thus
  /// isolating each worker's updates" (§3.2).
  void remapCopyOnWrite();

  /// Like remapCopyOnWrite but reports failure instead of aborting, so a
  /// worker that cannot isolate itself can degrade to misspeculation
  /// (sequential re-execution) rather than kill the whole program.
  [[nodiscard]] bool tryRemapCopyOnWrite();

  /// Replaces this process's view with a fresh MAP_SHARED mapping (used by
  /// the main process; also restores write-through after a COW remap).
  void remapShared();

  /// Write-protects the current mapping; any store raises SIGSEGV, which
  /// the worker translates into misspeculation.
  void protectReadOnly();

private:
  uint64_t Base = 0;
  size_t Bytes = 0;
  int Fd = -1;
  bool HasAllocator = false;
};

} // namespace privateer

#endif // PRIVATEER_RUNTIME_SHAREDHEAP_H
