//===- runtime/CommutativeLog.cpp - Deferred commutative updates ----------===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "CommutativeLog.h"

#include <cstring>

namespace privateer {

const char *comOpName(ComOp Op) {
  switch (Op) {
  case ComOp::Add:
    return "add";
  case ComOp::Mul:
    return "mul";
  case ComOp::And:
    return "and";
  case ComOp::Or:
    return "or";
  case ComOp::Xor:
    return "xor";
  case ComOp::Min:
    return "min";
  case ComOp::Max:
    return "max";
  }
  return "<invalid>";
}

int64_t combineComValues(ComOp Op, int64_t Cur, int64_t Value) {
  // Arithmetic in uint64_t so overflow wraps (two's complement) instead of
  // being UB; wrapping add/mul are what make the fold order-independent
  // bit for bit.
  uint64_t A = static_cast<uint64_t>(Cur);
  uint64_t B = static_cast<uint64_t>(Value);
  switch (Op) {
  case ComOp::Add:
    return static_cast<int64_t>(A + B);
  case ComOp::Mul:
    return static_cast<int64_t>(A * B);
  case ComOp::And:
    return static_cast<int64_t>(A & B);
  case ComOp::Or:
    return static_cast<int64_t>(A | B);
  case ComOp::Xor:
    return static_cast<int64_t>(A ^ B);
  case ComOp::Min:
    return Cur < Value ? Cur : Value;
  case ComOp::Max:
    return Cur > Value ? Cur : Value;
  }
  return Cur;
}

/// Sign-extending sub-word load — the IR's i64 load semantics, which is
/// what the recognized load-op-store cluster did before rewriting.
static int64_t loadComCell(uint64_t Addr, unsigned Bytes) {
  uint64_t Raw = 0;
  std::memcpy(&Raw, reinterpret_cast<const void *>(Addr), Bytes);
  if (Bytes < 8) {
    unsigned Shift = 64 - 8 * Bytes;
    return static_cast<int64_t>(Raw << Shift) >> Shift;
  }
  return static_cast<int64_t>(Raw);
}

void applyComUpdate(uint64_t Addr, ComOp Op, unsigned Bytes, int64_t Value) {
  int64_t Next = combineComValues(Op, loadComCell(Addr, Bytes), Value);
  std::memcpy(reinterpret_cast<void *>(Addr), &Next, Bytes);
}

bool serializeComRecords(const std::vector<ComRecord> &Records, uint8_t *Buf,
                         uint64_t Cap, uint64_t &Used) {
  Used = 0;
  uint64_t Need = Records.size() * kComRecordBytes;
  if (Need > Cap)
    return false;
  for (const ComRecord &R : Records) {
    uint64_t Word0 = (R.Addr & 0xFFFFFFFFFFFFULL) |
                     (static_cast<uint64_t>(R.Op) << 48) |
                     (static_cast<uint64_t>(R.Bytes) << 56);
    std::memcpy(Buf + Used, &Word0, 8);
    std::memcpy(Buf + Used + 8, &R.Value, 8);
    Used += kComRecordBytes;
  }
  return true;
}

bool applyComRecords(const uint8_t *Buf, uint64_t Used, uint64_t HeapLo,
                     uint64_t HeapSpan, uint64_t &Applied) {
  Applied = 0;
  if (Used % kComRecordBytes != 0)
    return false;
  // Two passes: validate the whole log, then apply.  A corrupted record
  // must surface as misspeculation with the master heap untouched, never
  // as a wild store or a half-applied log.
  for (int Pass = 0; Pass < 2; ++Pass) {
    for (uint64_t Off = 0; Off < Used; Off += kComRecordBytes) {
      uint64_t Word0;
      int64_t Value;
      std::memcpy(&Word0, Buf + Off, 8);
      std::memcpy(&Value, Buf + Off + 8, 8);
      uint64_t Addr = Word0 & 0xFFFFFFFFFFFFULL;
      unsigned OpByte = (Word0 >> 48) & 0xFF;
      unsigned Bytes = (Word0 >> 56) & 0xFF;
      if (Pass == 0) {
        if (OpByte >= kNumComOps)
          return false;
        if (Bytes != 1 && Bytes != 2 && Bytes != 4 && Bytes != 8)
          return false;
        if (Addr < HeapLo || Addr + Bytes > HeapLo + HeapSpan)
          return false;
      } else {
        applyComUpdate(Addr, static_cast<ComOp>(OpByte), Bytes, Value);
        ++Applied;
      }
    }
  }
  return true;
}

} // namespace privateer
