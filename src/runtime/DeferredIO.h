//===- runtime/DeferredIO.h - Iteration-tagged output records ---*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deferred I/O (paper §6.1: "calls to printf ... are deferred into the
/// speculative system, so that they may issue in any order yet commit
/// in-order"; "The side effects of stream output functions are issued
/// through the checkpoint system and take effect only when the checkpoint
/// is marked non-speculative").  Each record is the formatted text produced
/// by one deferred call, tagged with its iteration so commits replay
/// sequential order.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_RUNTIME_DEFERREDIO_H
#define PRIVATEER_RUNTIME_DEFERREDIO_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace privateer {

struct IoRecord {
  uint64_t Iteration;
  uint32_t Sequence; ///< Order among records of the same iteration.
  std::string Text;
};

/// Serializes \p Records into \p Buf (capacity \p Cap) starting at offset
/// \p Used; returns false if the buffer would overflow.  Wire format per
/// record: u64 iteration, u32 sequence, u32 length, bytes.
bool serializeIoRecords(const std::vector<IoRecord> &Records, uint8_t *Buf,
                        uint64_t Cap, uint64_t &Used);

/// Parses all records out of \p Buf[0, Used) and appends them to \p Out.
void deserializeIoRecords(const uint8_t *Buf, uint64_t Used,
                          std::vector<IoRecord> &Out);

/// Orders records by (iteration, sequence) — the order the sequential
/// program would have produced them in.
void sortIoRecords(std::vector<IoRecord> &Records);

} // namespace privateer

#endif // PRIVATEER_RUNTIME_DEFERREDIO_H
