//===- runtime/DeferredIO.cpp ---------------------------------------------===//

#include "runtime/DeferredIO.h"

#include <algorithm>

using namespace privateer;

bool privateer::serializeIoRecords(const std::vector<IoRecord> &Records,
                                   uint8_t *Buf, uint64_t Cap,
                                   uint64_t &Used) {
  for (const IoRecord &R : Records) {
    uint64_t Need = 8 + 4 + 4 + R.Text.size();
    if (Used + Need > Cap)
      return false;
    std::memcpy(Buf + Used, &R.Iteration, 8);
    Used += 8;
    std::memcpy(Buf + Used, &R.Sequence, 4);
    Used += 4;
    uint32_t Len = static_cast<uint32_t>(R.Text.size());
    std::memcpy(Buf + Used, &Len, 4);
    Used += 4;
    std::memcpy(Buf + Used, R.Text.data(), Len);
    Used += Len;
  }
  return true;
}

void privateer::deserializeIoRecords(const uint8_t *Buf, uint64_t Used,
                                     std::vector<IoRecord> &Out) {
  uint64_t Off = 0;
  while (Off + 16 <= Used) {
    IoRecord R;
    std::memcpy(&R.Iteration, Buf + Off, 8);
    Off += 8;
    std::memcpy(&R.Sequence, Buf + Off, 4);
    Off += 4;
    uint32_t Len = 0;
    std::memcpy(&Len, Buf + Off, 4);
    Off += 4;
    if (Off + Len > Used)
      return; // Truncated record; drop it.
    R.Text.assign(reinterpret_cast<const char *>(Buf + Off), Len);
    Off += Len;
    Out.push_back(std::move(R));
  }
}

void privateer::sortIoRecords(std::vector<IoRecord> &Records) {
  std::stable_sort(Records.begin(), Records.end(),
                   [](const IoRecord &A, const IoRecord &B) {
                     if (A.Iteration != B.Iteration)
                       return A.Iteration < B.Iteration;
                     return A.Sequence < B.Sequence;
                   });
}
