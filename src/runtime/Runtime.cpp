//===- runtime/Runtime.cpp - Heap management and validation --------------===//

#include "runtime/Runtime.h"

#include "runtime/ShadowMetadata.h"
#include "support/ErrorHandling.h"
#include "support/Statistics.h"
#include "support/Timing.h"

#include <cassert>
#include <cstring>

#include <unistd.h>

using namespace privateer;

Runtime &Runtime::get() {
  static Runtime TheRuntime;
  return TheRuntime;
}

Runtime::~Runtime() {
  shutdown();
  delete[] LocalDepRings;
  LocalDepRings = nullptr;
  LocalDepChanCount = 0;
  DepRings = nullptr;
  DepChanCount = 0;
}

void Runtime::initialize(const RuntimeConfig &C) {
  assert(!Initialized && "runtime already initialized");
  Config = C;
  // Covering switch, no default: adding a HeapKind without a size here is
  // a compile error (-Wswitch), not a silently zero-byte heap.
  auto SizeOf = [&](HeapKind K) -> size_t {
    switch (K) {
    case HeapKind::ReadOnly:
      return C.ReadOnlyBytes;
    case HeapKind::Private:
      return C.PrivateBytes;
    case HeapKind::Redux:
      return C.ReduxBytes;
    case HeapKind::ShortLived:
      return C.ShortLivedBytes;
    case HeapKind::Unrestricted:
      return C.UnrestrictedBytes;
    case HeapKind::Commutative:
      return C.CommutativeBytes;
    }
    reportFatalError("unknown heap kind in initialize()");
  };
  for (unsigned I = 0; I < kNumHeapKinds; ++I) {
    HeapKind K = static_cast<HeapKind>(I);
    Heaps[I].create(heapBase(K), SizeOf(K), /*WithAllocator=*/true);
  }
  // "the runtime also creates a shadow heap ... which has the same size as
  // the private heap" (§5.1).
  Shadow.create(shadowHeapBase(), C.PrivateBytes, /*WithAllocator=*/false);
  Mode = ExecMode::Sequential;
  Initialized = true;
}

void Runtime::shutdown() {
  if (!Initialized)
    return;
  // A traced session gets one final serialization, so events recorded
  // after the last invocation's own flush are not lost.
  if (trace::Collector::instance().enabled()) {
    std::string Err;
    trace::Collector::instance().flush(Err);
  }
  for (SharedHeap &H : Heaps)
    H.destroy();
  Shadow.destroy();
  Redux.clear();
  Com.clear();
  Initialized = false;
}

SharedHeap &Runtime::heap(HeapKind K) {
  return Heaps[static_cast<unsigned>(K)];
}

void *Runtime::heapAlloc(size_t Bytes, HeapKind K) {
  assert(Initialized && "runtime not initialized");
  ++StatisticRegistry::instance().counter("heap-alloc", heapKindName(K));
  void *P = heap(K).allocate(Bytes);
  if (!P)
    reportFatalError(std::string("logical heap exhausted: ") +
                     heapKindName(K));
  assert(addressInHeap(reinterpret_cast<uint64_t>(P), K) &&
         "allocated pointer lost its heap tag");
  return P;
}

void Runtime::heapDealloc(void *P, HeapKind K) {
  assert(Initialized && "runtime not initialized");
  assert(addressInHeap(reinterpret_cast<uint64_t>(P), K) &&
         "pointer freed into the wrong logical heap");
  heap(K).deallocate(P);
}

void Runtime::registerReduction(void *P, size_t Bytes, ReduxElem Elem,
                                ReduxOp Op) {
  assert(heap(HeapKind::Redux).contains(P) &&
         "reduction object must live in the redux heap");
  Redux.registerObject(P, Bytes, Elem, Op);
}

void Runtime::registerCommutative(void *P, size_t Bytes, ComOp Op,
                                  uint8_t ElemBytes) {
  assert(heap(HeapKind::Commutative).contains(P) &&
         "commutative object must live in the commutative heap");
  Com.registerObject(P, Bytes, Op, ElemBytes);
}

void Runtime::comUpdate(void *P, ComOp Op, unsigned Bytes, int64_t Value) {
  uint64_t Addr = reinterpret_cast<uint64_t>(P);
  if (Mode != ExecMode::SpeculativeWorker) {
    // Sequential execution, recovery, and non-speculative workers apply
    // the fold immediately; the heaps behave as ordinary memory (§3.2).
    applyComUpdate(Addr, Op, Bytes, Value);
    return;
  }
  // The separation check is fused into the update: one tag compare, then
  // append to the pending log instead of touching the heap.
  ++LocalStats.SeparationChecks;
  if (!addressInHeap(Addr, HeapKind::Commutative))
    misspecAbort("comupdate of a pointer outside the commutative heap");
  comUpdateTagged(Addr, Op, Bytes, Value);
}

void Runtime::checkHeap(const void *P, HeapKind Expected) {
  if (Mode != ExecMode::SpeculativeWorker)
    return;
  ++LocalStats.SeparationChecks;
  if (!addressInHeap(reinterpret_cast<uint64_t>(P), Expected))
    misspecAbort("separation check failed: pointer outside assumed heap");
}

void Runtime::privateRead(const void *P, size_t Bytes) {
  if (Mode != ExecMode::SpeculativeWorker)
    return;
  uint64_t Addr = reinterpret_cast<uint64_t>(P);
  if (!addressInHeap(Addr, HeapKind::Private))
    misspecAbort("private_read of a pointer outside the private heap");
  privateReadTagged(Addr, Bytes);
}

void Runtime::privateReadTagged(uint64_t Addr, size_t Bytes) {
  // No per-call timing here: the check must stay a handful of
  // instructions, as in the paper.  Costs are attributed through call and
  // byte counters priced by perfmodel calibration (Figure 8).
  ++LocalStats.PrivateReadCalls;
  LocalStats.PrivateReadBytes += Bytes;
  // Dirty-range tracking: one shift+OR on the already-computed heap
  // offset; checkpoint merges fold only the chunks marked here.
  markDirtyChunks(DirtyMask.data(), DirtyChunkLimit,
                  Addr - heap(HeapKind::Private).base(), Bytes);
  uint8_t *Meta = reinterpret_cast<uint8_t *>(shadowAddress(Addr));
  if (!shadow::applyReadRange(Meta, Bytes, CurTs))
    misspecAbort("privacy violation: read of a value written in an "
                 "earlier iteration");
}

void Runtime::privateWrite(const void *P, size_t Bytes) {
  if (Mode != ExecMode::SpeculativeWorker)
    return;
  uint64_t Addr = reinterpret_cast<uint64_t>(P);
  if (!addressInHeap(Addr, HeapKind::Private))
    misspecAbort("private_write of a pointer outside the private heap");
  privateWriteTagged(Addr, Bytes);
}

void Runtime::privateWriteTagged(uint64_t Addr, size_t Bytes) {
  ++LocalStats.PrivateWriteCalls;
  LocalStats.PrivateWriteBytes += Bytes;
  markDirtyChunks(DirtyMask.data(), DirtyChunkLimit,
                  Addr - heap(HeapKind::Private).base(), Bytes);
  uint8_t *Meta = reinterpret_cast<uint8_t *>(shadowAddress(Addr));
  if (!shadow::applyWriteRange(Meta, Bytes, CurTs))
    misspecAbort("privacy violation: overwrite of a byte previously read "
                 "as live-in (conservative)");
}

void Runtime::speculateTrue(bool Cond, const char *What) {
  if (Mode != ExecMode::SpeculativeWorker)
    return;
  if (!Cond)
    misspecAbort(What);
}

void Runtime::deferPrintf(const char *Fmt, ...) {
  char Buf[4096];
  va_list Args;
  va_start(Args, Fmt);
  int Len = std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  if (Len < 0)
    return;
  size_t N = std::min(static_cast<size_t>(Len), sizeof(Buf) - 1);
  if (Mode == ExecMode::SpeculativeWorker) {
    PendingIo.push_back(IoRecord{CurIter, IoSequence++, std::string(Buf, N)});
    return;
  }
  if (Mode == ExecMode::NonSpeculativeWorker) {
    // DOALL-only workers bypass stdio buffering: the process exits with
    // _exit() and must not lose or duplicate buffered output.
    [[maybe_unused]] ssize_t Rc =
        write(fileno(SeqOut ? SeqOut : stdout), Buf, N);
    return;
  }
  std::FILE *Out = SeqOut ? SeqOut : stdout;
  std::fwrite(Buf, 1, N, Out);
}

void Runtime::runSequential(uint64_t Begin, uint64_t End,
                            const IterationFn &Body) {
  assert(Mode == ExecMode::Sequential && "nested execution modes");
  for (uint64_t I = Begin; I < End; ++I) {
    Body(I);
    // Recycle the short-lived arena exactly as the sequential program's
    // allocator would once everything allocated this iteration was freed.
    SharedHeap &SL = heap(HeapKind::ShortLived);
    if (SL.liveCount() == 0)
      SL.resetAllocations();
  }
}

void Runtime::flushIo(std::vector<IoRecord> &Records, std::FILE *Out) {
  sortIoRecords(Records);
  std::FILE *Sink = Out ? Out : stdout;
  for (const IoRecord &R : Records)
    std::fwrite(R.Text.data(), 1, R.Text.size(), Sink);
  Records.clear();
}
