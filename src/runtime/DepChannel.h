//===- runtime/DepChannel.h - Cross-iteration token rings -------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Post/wait token channels for speculative DOACROSS and pipeline
/// scheduling (ROADMAP item 3).  A channel is a fixed-size ring of
/// (tag, value) slots indexed by iteration number; the producer of a
/// cross-iteration value posts it under tag Iter+1 and consumers accept a
/// slot only on an exact tag match, so a slot left over from an earlier
/// loop, epoch, or ring wrap reads as "not yet posted" instead of as a
/// stale value.
///
/// The rings live in one MAP_SHARED region created by runParallel and
/// inherited by every forked worker, which is what lets values cross the
/// copy-on-write isolation boundary that the rest of the speculation
/// system relies on.  Sequential execution (including misspeculation
/// recovery) posts into the same ring in iteration order, overwriting any
/// doomed speculative tokens before a re-executed consumer can read them.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_RUNTIME_DEPCHANNEL_H
#define PRIVATEER_RUNTIME_DEPCHANNEL_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace privateer {
namespace depchan {

/// Slots per channel ring (power of two).  Correctness requires the ring
/// to out-span the maximum iteration skew between a token's producer and
/// its consumers: one epoch of in-flight iterations (CheckpointPeriod *
/// MaxSlotsPerEpoch, 2048 at the defaults) plus the dependence distance.
/// The dependence-distance analysis rejects loops whose distance bound
/// reaches kRingSlots.
constexpr uint32_t kRingSlots = 16384;

/// One token slot.  Tag holds Iter+1 (0 = never posted).
struct DepSlot {
  std::atomic<uint64_t> Tag;
  std::atomic<uint64_t> Value;
};
static_assert(sizeof(DepSlot) == 16, "DepSlot must stay two words");

inline size_t ringBytes(uint32_t Channels) {
  return static_cast<size_t>(Channels) * kRingSlots * sizeof(DepSlot);
}

inline DepSlot &slotFor(DepSlot *Base, uint32_t Chan, uint64_t Iter) {
  return Base[static_cast<size_t>(Chan) * kRingSlots +
              (Iter & (kRingSlots - 1))];
}

inline void post(DepSlot *Base, uint32_t Chan, uint64_t Iter, uint64_t V) {
  DepSlot &S = slotFor(Base, Chan, Iter);
  S.Value.store(V, std::memory_order_relaxed);
  S.Tag.store(Iter + 1, std::memory_order_release);
}

/// Non-blocking probe: true (with *V filled in) when iteration \p Iter's
/// token is present on \p Chan.  The relaxed value read is ordered by the
/// acquire tag load; a producer kRingSlots iterations ahead could in
/// principle overwrite Value between the two loads, but the epoch
/// structure bounds producer/consumer skew far below the ring size.
inline bool probe(DepSlot *Base, uint32_t Chan, uint64_t Iter, uint64_t *V) {
  DepSlot &S = slotFor(Base, Chan, Iter);
  if (S.Tag.load(std::memory_order_acquire) != Iter + 1)
    return false;
  *V = S.Value.load(std::memory_order_relaxed);
  return true;
}

} // namespace depchan
} // namespace privateer

#endif // PRIVATEER_RUNTIME_DEPCHANNEL_H
