//===- runtime/Reduction.h - Reduction objects and operators ----*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of reduction-privatized objects (paper Reduction Criterion):
/// "The accumulator variable is expanded into multiple copies, each updated
/// independently across iterations of the loop, after which all copies are
/// merged to the final result."  On entering a parallel region each
/// worker's copy of the reduction heap is "initialized with the identity
/// value for the reduction operator" (§3.2); checkpoints combine partials.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_RUNTIME_REDUCTION_H
#define PRIVATEER_RUNTIME_REDUCTION_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace privateer {

/// Supported associative & commutative reduction operators.
enum class ReduxOp : uint8_t { Add, Mul, Min, Max };

/// Element type of a reduction object (a scalar or an array of these).
enum class ReduxElem : uint8_t { I32, I64, F32, F64 };

inline constexpr const char *reduxOpName(ReduxOp Op) {
  switch (Op) {
  case ReduxOp::Add:
    return "add";
  case ReduxOp::Mul:
    return "mul";
  case ReduxOp::Min:
    return "min";
  case ReduxOp::Max:
    return "max";
  }
  return "<invalid>";
}

inline constexpr size_t reduxElemSize(ReduxElem E) {
  switch (E) {
  case ReduxElem::I32:
  case ReduxElem::F32:
    return 4;
  case ReduxElem::I64:
  case ReduxElem::F64:
    return 8;
  }
  return 0;
}

/// One registered reduction object living in the reduction heap.
struct ReduxObject {
  uint64_t Address; ///< Base address within the redux heap.
  size_t Bytes;     ///< Total size (multiple of element size).
  ReduxElem Elem;
  ReduxOp Op;
};

/// Tracks every reduction object registered for the current invocation and
/// implements identity initialization and element-wise combination.
class ReductionRegistry {
public:
  void registerObject(void *Address, size_t Bytes, ReduxElem Elem, ReduxOp Op);
  void clear() { Objects.clear(); }
  const std::vector<ReduxObject> &objects() const { return Objects; }

  /// Overwrites every registered object (addressed relative to \p HeapBase
  /// with objects recorded relative to their registered addresses) with the
  /// identity of its operator.  \p Bias is added to each object's address,
  /// allowing the same registry to initialize a checkpoint-slot copy.
  void fillIdentity(int64_t Bias = 0) const;

  /// Element-wise Dst = Dst op Src for every registered object, where both
  /// buffers hold images of the redux heap region [HeapBase, HeapBase+N).
  /// \p DstBias / \p SrcBias translate registered addresses into the two
  /// buffers.
  void combine(int64_t DstBias, int64_t SrcBias) const;

  /// Total bytes spanned by registered objects, measured from \p HeapBase
  /// to the end of the last object (0 when empty).
  size_t spanEnd(uint64_t HeapBase) const;

private:
  std::vector<ReduxObject> Objects;
};

} // namespace privateer

#endif // PRIVATEER_RUNTIME_REDUCTION_H
