//===- runtime/DirtyChunks.h - Dirty-range tracking primitives --*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chunk geometry and bitmap helpers for dirty-range checkpoint tracking.
/// The private heap is divided into fixed 4 KiB chunks; each speculative
/// worker keeps one bit per chunk, set from the private_read/private_write
/// fast paths (a shift and an OR on the already-computed heap offset).
/// Checkpoint merges fold only dirty chunks into the slot, and the ordered
/// commit walks only the union of the contributors' masks, so checkpoint
/// cost is O(bytes actually touched in the period) instead of
/// O(private-footprint x slots x workers).
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_RUNTIME_DIRTYCHUNKS_H
#define PRIVATEER_RUNTIME_DIRTYCHUNKS_H

#include <cstdint>

namespace privateer {

/// Chunk granularity of dirty tracking: 4 KiB, one page.  Coarse enough
/// that the per-access bookkeeping is one shift+OR, fine enough that a
/// period touching a few cache lines skips almost the whole footprint.
inline constexpr unsigned kDirtyChunkShift = 12;
inline constexpr uint64_t kDirtyChunkBytes = 1ULL << kDirtyChunkShift;

inline constexpr uint64_t dirtyChunkCount(uint64_t Bytes) {
  return (Bytes + kDirtyChunkBytes - 1) >> kDirtyChunkShift;
}

inline constexpr uint64_t dirtyMaskWords(uint64_t Chunks) {
  return (Chunks + 63) / 64;
}

/// Marks the chunks covering [Offset, Offset+Bytes) of the private heap in
/// \p Mask (which covers \p Chunks chunks).  The overwhelmingly common
/// case — an access inside one chunk — is a shift, a mask, and an OR.
inline void markDirtyChunks(uint64_t *Mask, uint64_t Chunks, uint64_t Offset,
                            uint64_t Bytes) {
  if (Bytes == 0)
    return;
  uint64_t First = Offset >> kDirtyChunkShift;
  uint64_t Last = (Offset + Bytes - 1) >> kDirtyChunkShift;
  if (First >= Chunks)
    return;
  if (Last >= Chunks)
    Last = Chunks - 1;
  Mask[First >> 6] |= 1ULL << (First & 63);
  for (uint64_t C = First + 1; C <= Last; ++C)
    Mask[C >> 6] |= 1ULL << (C & 63);
}

// --- Word-at-a-time byte predicates (skip loops over shadow codes) ------

inline constexpr uint64_t kByteLowBits = 0x0101010101010101ULL;
inline constexpr uint64_t kByteHighBits = 0x8080808080808080ULL;

/// True when some byte of \p W equals \p V (the classic haszero trick).
inline constexpr bool wordHasByte(uint64_t W, uint8_t V) {
  uint64_t X = W ^ (kByteLowBits * V);
  return ((X - kByteLowBits) & ~X & kByteHighBits) != 0;
}

/// True when every byte of \p W is live-in (0) or old-write (1) — i.e. the
/// word carries no period-local information and a checkpoint merge can
/// skip it.
inline constexpr bool wordAllBelowReadLiveIn(uint64_t W) {
  return (W & ~kByteLowBits) == 0;
}

} // namespace privateer

#endif // PRIVATEER_RUNTIME_DIRTYCHUNKS_H
