//===- analysis/CallGraph.cpp ---------------------------------------------===//

#include "analysis/CallGraph.h"

using namespace privateer;
using namespace privateer::analysis;
using namespace privateer::ir;

CallGraph::CallGraph(const Module &M) {
  for (const auto &F : M.functions()) {
    auto &Out = Callees[F.get()];
    for (const auto &B : F->blocks())
      for (const auto &I : B->instructions())
        if (I->opcode() == Opcode::Call)
          Out.insert(I->callee());
  }
}

const std::set<Function *> &CallGraph::callees(const Function *F) const {
  static const std::set<Function *> Empty;
  auto It = Callees.find(F);
  return It == Callees.end() ? Empty : It->second;
}

std::set<Function *> CallGraph::reachableFromBlocks(
    const std::set<BasicBlock *> &Blocks) const {
  std::set<Function *> Out;
  std::vector<Function *> Work;
  for (BasicBlock *B : Blocks)
    for (const auto &I : B->instructions())
      if (I->opcode() == Opcode::Call && Out.insert(I->callee()).second)
        Work.push_back(I->callee());
  while (!Work.empty()) {
    Function *F = Work.back();
    Work.pop_back();
    for (Function *C : callees(F))
      if (Out.insert(C).second)
        Work.push_back(C);
  }
  return Out;
}

std::set<Function *> CallGraph::reachableFrom(Function *F) const {
  std::set<Function *> Out{F};
  std::vector<Function *> Work{F};
  while (!Work.empty()) {
    Function *Cur = Work.back();
    Work.pop_back();
    for (Function *C : callees(Cur))
      if (Out.insert(C).second)
        Work.push_back(C);
  }
  return Out;
}
