//===- analysis/Cfg.cpp ---------------------------------------------------===//

#include "analysis/Cfg.h"

#include <algorithm>
#include <set>

using namespace privateer;
using namespace privateer::analysis;
using namespace privateer::ir;

Cfg::Cfg(const Function &F) : Func(F) {
  for (const auto &B : F.blocks()) {
    Succs[B.get()] = B->successors();
    for (BasicBlock *S : Succs[B.get()])
      Preds[S].push_back(B.get());
  }

  // Iterative post-order DFS from the entry.
  std::vector<BasicBlock *> PostOrder;
  std::set<const BasicBlock *> Visited;
  struct Frame {
    BasicBlock *Block;
    size_t NextSucc;
  };
  std::vector<Frame> Stack;
  if (!F.blocks().empty()) {
    Stack.push_back(Frame{F.entry(), 0});
    Visited.insert(F.entry());
  }
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    const auto &S = Succs[Top.Block];
    if (Top.NextSucc < S.size()) {
      BasicBlock *Next = S[Top.NextSucc++];
      if (Visited.insert(Next).second)
        Stack.push_back(Frame{Next, 0});
      continue;
    }
    PostOrder.push_back(Top.Block);
    Stack.pop_back();
  }
  Rpo.assign(PostOrder.rbegin(), PostOrder.rend());
  for (unsigned I = 0; I < Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;
}

const std::vector<BasicBlock *> &
Cfg::predecessors(const BasicBlock *B) const {
  static const std::vector<BasicBlock *> Empty;
  auto It = Preds.find(B);
  return It == Preds.end() ? Empty : It->second;
}

const std::vector<BasicBlock *> &Cfg::successors(const BasicBlock *B) const {
  static const std::vector<BasicBlock *> Empty;
  auto It = Succs.find(B);
  return It == Succs.end() ? Empty : It->second;
}
