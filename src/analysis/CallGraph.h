//===- analysis/CallGraph.h - Call graph ------------------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct-call graph over a module.  getFootprint (Algorithm 2) recurses
/// through calls, and the transformation instruments every function
/// reachable from a selected loop.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_ANALYSIS_CALLGRAPH_H
#define PRIVATEER_ANALYSIS_CALLGRAPH_H

#include "ir/IR.h"

#include <map>
#include <set>
#include <vector>

namespace privateer {
namespace analysis {

class CallGraph {
public:
  explicit CallGraph(const ir::Module &M);

  const std::set<ir::Function *> &callees(const ir::Function *F) const;

  /// All functions reachable through calls from the blocks of \p Blocks
  /// (not including the containing function itself unless it is called).
  std::set<ir::Function *>
  reachableFromBlocks(const std::set<ir::BasicBlock *> &Blocks) const;

  /// Transitive closure of callees from \p F, including \p F.
  std::set<ir::Function *> reachableFrom(ir::Function *F) const;

private:
  std::map<const ir::Function *, std::set<ir::Function *>> Callees;
};

} // namespace analysis
} // namespace privateer

#endif // PRIVATEER_ANALYSIS_CALLGRAPH_H
