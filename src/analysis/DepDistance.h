//===- analysis/DepDistance.h - DOACROSS dependence planning ----*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dependence-distance analysis for speculative DOACROSS / pipeline
/// scheduling.  Where classification (§4.2) rejects a loop because a
/// cross-iteration flow dependence survives privatization, this planner
/// asks whether the dependence has a *provable iteration distance*:
///
///  - a loop-carried scalar recurrence (a non-IV header phi) always has
///    distance one;
///  - an array recurrence A[i] = f(A[i - x]) has distance x whenever the
///    store indexes the array by the canonical IV, the load by IV - x,
///    and a small interval analysis proves x in [1, kMaxPlannedDistance].
///
/// Each such dependence becomes a token channel: the producing iteration
/// posts its value into a shared-memory ring (runtime/DepChannel.h) and
/// the consuming iteration waits for it, turning the loop into a
/// DOALL-shaped body the rest of the pipeline handles unchanged.  The
/// profiler's observed distances (profiling::DepDistance) corroborate the
/// static proof but never substitute for it.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_ANALYSIS_DEPDISTANCE_H
#define PRIVATEER_ANALYSIS_DEPDISTANCE_H

#include "analysis/FunctionAnalyses.h"
#include "profiling/Profile.h"

#include <set>
#include <string>
#include <vector>

namespace privateer {
namespace analysis {

/// Rings hold 16384 slots; keep the planned window well below that so a
/// worker running an entire ring ahead of a stalled consumer (which would
/// recycle the consumer's slot and force a timeout misspeculation) needs
/// pathological skew.
inline constexpr uint64_t kMaxPlannedDistance = 4096;

/// One loop-carried scalar recurrence: a non-IV header phi, forwarded at
/// distance one.  Iteration i posts the latch-incoming value and
/// iteration i+1 waits for it; the first iteration selects the preheader
/// incoming value instead.
struct ScalarCarry {
  ir::Instruction *Phi = nullptr;
  ir::Value *Init = nullptr; ///< Preheader-incoming value.
  ir::Value *Next = nullptr; ///< Latch-incoming value.
  uint32_t Channel = 0;
};

/// One array recurrence: \p Load reads the element \p Store wrote
/// [MinDistance, MaxDistance] iterations earlier.  \p TargetIter is the
/// SSA value of the producing iteration (the element index, which equals
/// the IV value of the iteration that stored it).
struct ArrayCarry {
  ir::Instruction *Store = nullptr;
  ir::Instruction *Load = nullptr;
  ir::Value *TargetIter = nullptr;
  uint32_t Channel = 0;
  uint64_t MinDistance = 1;
  uint64_t MaxDistance = 1;
};

/// The planner's verdict for one loop.
struct DoacrossPlan {
  const Loop *TheLoop = nullptr;
  Loop::CanonicalIv Iv;
  std::vector<ScalarCarry> Scalars;
  std::vector<ArrayCarry> Arrays;
  /// Profiled flow dependences the token channels cover; classification
  /// carves these out when re-judging the loop.
  std::set<profiling::FlowDep> Covered;
  uint32_t NumChannels = 0;
  /// Smallest planned distance: the loop's pipeline slack.
  uint64_t MinDistance = 0;
  std::vector<std::string> WhyNot;

  bool viable() const {
    return NumChannels > 0 && WhyNot.empty();
  }
};

/// Plans token forwarding for \p L.  Returns a non-viable plan (with
/// human-readable reasons) when the loop has no rewritable carried
/// dependences or when one of them defeats the distance proof.
DoacrossPlan planDoacross(const Loop &L, const FunctionAnalyses &FA,
                          const profiling::Profile &P);

} // namespace analysis
} // namespace privateer

#endif // PRIVATEER_ANALYSIS_DEPDISTANCE_H
