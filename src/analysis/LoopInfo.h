//===- analysis/LoopInfo.h - Natural loop detection -------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loops from back edges (latch -> dominating header), with
/// nesting, preheaders, exits, and canonical induction-variable
/// recognition.  Privateer keys everything on loops: profiling contexts
/// (§4.1), classification (§4.2), selection (§4.3), and the DOALL
/// transformation all take a Loop.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_ANALYSIS_LOOPINFO_H
#define PRIVATEER_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"

#include <memory>
#include <optional>
#include <set>

namespace privateer {
namespace analysis {

class Loop {
public:
  Loop(ir::BasicBlock *Header, unsigned Id) : Hdr(Header), LoopId(Id) {}

  unsigned id() const { return LoopId; }
  ir::BasicBlock *header() const { return Hdr; }
  const std::set<ir::BasicBlock *> &blocks() const { return Body; }
  bool contains(const ir::BasicBlock *B) const {
    return Body.count(const_cast<ir::BasicBlock *>(B)) != 0;
  }
  bool contains(const ir::Instruction *I) const {
    return contains(I->parent());
  }

  const std::vector<ir::BasicBlock *> &latches() const { return Latches; }

  Loop *parent() const { return ParentLoop; }
  const std::vector<Loop *> &subLoops() const { return Children; }
  unsigned depth() const {
    unsigned D = 1;
    for (Loop *P = ParentLoop; P; P = P->ParentLoop)
      ++D;
    return D;
  }

  /// The unique out-of-loop predecessor of the header, if any.
  ir::BasicBlock *preheader(const Cfg &C) const;

  /// Blocks outside the loop that a loop block branches to.
  std::vector<ir::BasicBlock *> exitBlocks(const Cfg &C) const;

  /// A canonical counted loop: header phi IV with incoming 0-or-konstant
  /// from the preheader and IV+1 from the latch, and a header condbr on
  /// icmp lt IV, Bound leaving the loop on false.
  struct CanonicalIv {
    ir::Instruction *Phi = nullptr;      ///< The IV.
    ir::Value *Begin = nullptr;          ///< Initial value.
    ir::Value *Bound = nullptr;          ///< Exclusive upper bound.
    ir::Instruction *Increment = nullptr;
    ir::BasicBlock *ExitBlock = nullptr;
  };
  /// Recognizes the canonical form; nullopt if this loop is shaped
  /// differently.
  std::optional<CanonicalIv> canonicalIv(const Cfg &C) const;

private:
  friend class LoopInfo;
  ir::BasicBlock *Hdr;
  unsigned LoopId;
  std::set<ir::BasicBlock *> Body;
  std::vector<ir::BasicBlock *> Latches;
  Loop *ParentLoop = nullptr;
  std::vector<Loop *> Children;
};

class LoopInfo {
public:
  LoopInfo(const Cfg &C, const DominatorTree &DT);

  const std::vector<std::unique_ptr<Loop>> &loops() const { return Loops; }

  /// Innermost loop containing \p B, or null.
  Loop *loopFor(const ir::BasicBlock *B) const;

  /// Top-level (outermost) loops.
  std::vector<Loop *> topLevel() const;

private:
  std::vector<std::unique_ptr<Loop>> Loops;
  std::map<const ir::BasicBlock *, Loop *> Innermost;
};

} // namespace analysis
} // namespace privateer

#endif // PRIVATEER_ANALYSIS_LOOPINFO_H
