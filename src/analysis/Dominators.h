//===- analysis/Dominators.h - Dominator tree -------------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooper-Harvey-Kennedy iterative dominator computation over the CFG's
/// reverse post order.  Natural-loop detection (LoopInfo) builds on this.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_ANALYSIS_DOMINATORS_H
#define PRIVATEER_ANALYSIS_DOMINATORS_H

#include "analysis/Cfg.h"

namespace privateer {
namespace analysis {

class DominatorTree {
public:
  explicit DominatorTree(const Cfg &C);

  /// Immediate dominator; null for the entry and unreachable blocks.
  ir::BasicBlock *immediateDominator(const ir::BasicBlock *B) const;

  /// Does \p A dominate \p B (reflexively)?
  bool dominates(const ir::BasicBlock *A, const ir::BasicBlock *B) const;

private:
  const Cfg &C;
  std::map<const ir::BasicBlock *, ir::BasicBlock *> IDom;
};

} // namespace analysis
} // namespace privateer

#endif // PRIVATEER_ANALYSIS_DOMINATORS_H
