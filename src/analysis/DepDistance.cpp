//===- analysis/DepDistance.cpp -------------------------------------------===//

#include "analysis/DepDistance.h"

#include <algorithm>

using namespace privateer;
using namespace privateer::analysis;
using namespace privateer::ir;
using namespace privateer::profiling;

namespace {

/// A signed-i64 interval, or "unknown".
struct Interval {
  int64_t Lo = 0;
  int64_t Hi = 0;
  bool Known = false;
};

Interval unknown() { return Interval(); }
Interval exact(int64_t V) { return Interval{V, V, true}; }

bool addOverflows(int64_t A, int64_t B, int64_t &Out) {
  return __builtin_add_overflow(A, B, &Out);
}

/// Tiny interval analysis over the index expression: just enough to prove
/// the dependence-distance term of a generated recurrence (masks, moduli,
/// and small affine combinations) lies in [1, kMaxPlannedDistance].
Interval intervalOf(const Value *V, unsigned Depth = 0) {
  if (Depth > 8)
    return unknown();
  if (V->kind() == ValueKind::ConstInt)
    return exact(static_cast<const ConstantInt *>(V)->value());
  if (V->kind() != ValueKind::Instruction)
    return unknown();
  const auto *I = static_cast<const Instruction *>(V);
  auto Op = [&](unsigned N) { return intervalOf(I->operand(N), Depth + 1); };
  auto ConstOp = [&](unsigned N, int64_t &C) {
    if (I->operand(N)->kind() != ValueKind::ConstInt)
      return false;
    C = static_cast<const ConstantInt *>(I->operand(N))->value();
    return true;
  };
  switch (I->opcode()) {
  case Opcode::And: {
    // x & m with m >= 0 lands in [0, m] for any x.
    int64_t M;
    if ((ConstOp(1, M) || ConstOp(0, M)) && M >= 0)
      return Interval{0, M, true};
    return unknown();
  }
  case Opcode::SRem: {
    int64_t C;
    if (!ConstOp(1, C) || C <= 0)
      return unknown();
    Interval L = Op(0);
    if (L.Known && L.Lo >= 0)
      return Interval{0, std::min(C - 1, L.Hi), true};
    return Interval{-(C - 1), C - 1, true};
  }
  case Opcode::Add: {
    Interval A = Op(0), B = Op(1);
    int64_t Lo, Hi;
    if (!A.Known || !B.Known || addOverflows(A.Lo, B.Lo, Lo) ||
        addOverflows(A.Hi, B.Hi, Hi))
      return unknown();
    return Interval{Lo, Hi, true};
  }
  case Opcode::Sub: {
    Interval A = Op(0), B = Op(1);
    int64_t Lo, Hi;
    if (!A.Known || !B.Known || __builtin_sub_overflow(A.Lo, B.Hi, &Lo) ||
        __builtin_sub_overflow(A.Hi, B.Lo, &Hi))
      return unknown();
    return Interval{Lo, Hi, true};
  }
  case Opcode::Mul: {
    int64_t C;
    unsigned Other;
    if (ConstOp(1, C))
      Other = 0;
    else if (ConstOp(0, C))
      Other = 1;
    else
      return unknown();
    Interval A = Op(Other);
    int64_t Lo, Hi;
    if (C < 0 || !A.Known || A.Lo < 0 ||
        __builtin_mul_overflow(A.Lo, C, &Lo) ||
        __builtin_mul_overflow(A.Hi, C, &Hi))
      return unknown();
    return Interval{Lo, Hi, true};
  }
  case Opcode::Shr: {
    int64_t S;
    Interval A = Op(0);
    if (!ConstOp(1, S) || S < 0 || S > 63 || !A.Known || A.Lo < 0)
      return unknown();
    return Interval{A.Lo >> S, A.Hi >> S, true};
  }
  default:
    return unknown();
  }
}

/// Matches \p Off as Scale * Index (Mul/Shl by a constant, or the index
/// itself at scale one).
bool matchScaled(Value *Off, Value *&Index, uint64_t &Scale) {
  if (Off->kind() == ValueKind::Instruction) {
    auto *I = static_cast<Instruction *>(Off);
    if (I->opcode() == Opcode::Mul) {
      for (unsigned A = 0; A < 2; ++A)
        if (I->operand(A)->kind() == ValueKind::ConstInt) {
          int64_t C = static_cast<ConstantInt *>(I->operand(A))->value();
          if (C > 0) {
            Index = I->operand(1 - A);
            Scale = static_cast<uint64_t>(C);
            return true;
          }
        }
    }
    if (I->opcode() == Opcode::Shl &&
        I->operand(1)->kind() == ValueKind::ConstInt) {
      int64_t S = static_cast<ConstantInt *>(I->operand(1))->value();
      if (S >= 0 && S < 32) {
        Index = I->operand(0);
        Scale = 1ull << S;
        return true;
      }
    }
  }
  Index = Off;
  Scale = 1;
  return true;
}

/// Matches \p J as IV - x with x statically proven in
/// [1, kMaxPlannedDistance]; reports the proven [DMin, DMax].
bool matchBackIndex(Value *J, const Instruction *IvPhi, uint64_t &DMin,
                    uint64_t &DMax) {
  if (J->kind() != ValueKind::Instruction)
    return false;
  auto *I = static_cast<Instruction *>(J);
  Interval X = unknown();
  if (I->opcode() == Opcode::Sub && I->operand(0) == IvPhi)
    X = intervalOf(I->operand(1));
  else if (I->opcode() == Opcode::Add && I->operand(0) == IvPhi &&
           I->operand(1)->kind() == ValueKind::ConstInt)
    X = exact(-static_cast<ConstantInt *>(I->operand(1))->value());
  else if (I->opcode() == Opcode::Add && I->operand(1) == IvPhi &&
           I->operand(0)->kind() == ValueKind::ConstInt)
    X = exact(-static_cast<ConstantInt *>(I->operand(0))->value());
  if (!X.Known || X.Lo < 1 ||
      X.Hi > static_cast<int64_t>(kMaxPlannedDistance))
    return false;
  DMin = static_cast<uint64_t>(X.Lo);
  DMax = static_cast<uint64_t>(X.Hi);
  return true;
}

/// The gep underneath a memory access's pointer operand, or null.
Instruction *gepOf(Value *Ptr) {
  if (Ptr->kind() != ValueKind::Instruction)
    return nullptr;
  auto *I = static_cast<Instruction *>(Ptr);
  return I->opcode() == Opcode::Gep ? I : nullptr;
}

/// All memory instructions the loop can execute: body blocks plus
/// functions reachable through calls (mirrors the privatizer's
/// instrumentation scope).
std::vector<Instruction *> memoryScope(const Loop &L,
                                       const FunctionAnalyses &FA) {
  std::vector<Instruction *> Out;
  auto Collect = [&](const BasicBlock &B) {
    for (const auto &I : B.instructions())
      if (I->opcode() == Opcode::Load || I->opcode() == Opcode::Store)
        Out.push_back(I.get());
  };
  for (BasicBlock *B : L.blocks())
    Collect(*B);
  std::set<BasicBlock *> Body(L.blocks().begin(), L.blocks().end());
  for (Function *F : FA.callGraph().reachableFromBlocks(Body))
    for (const auto &B : F->blocks())
      Collect(*B);
  return Out;
}

bool intersects(const std::set<ObjectKey> &A, const std::set<ObjectKey> &B) {
  for (const ObjectKey &K : A)
    if (B.count(K))
      return true;
  return false;
}

} // namespace

DoacrossPlan analysis::planDoacross(const Loop &L, const FunctionAnalyses &FA,
                                    const Profile &P) {
  DoacrossPlan Plan;
  Plan.TheLoop = &L;
  const Function *F = L.header()->parent();
  const Cfg &C = FA.cfg(F);
  const DominatorTree &DT = FA.domTree(F);
  auto Reject = [&](const std::string &Why) {
    Plan.WhyNot.push_back(Why);
    return Plan;
  };

  auto Iv = L.canonicalIv(C);
  if (!Iv)
    return Reject("no canonical induction variable");
  Plan.Iv = *Iv;
  if (L.latches().size() != 1)
    return Reject("multiple latches");
  BasicBlock *Latch = L.latches().front();
  // Every exit must leave through the header's bound check: the rewrite
  // assumes each iteration that starts also reaches the latch (and so
  // posts its tokens).
  for (BasicBlock *B : L.blocks())
    for (BasicBlock *S : B->successors())
      if (!L.contains(S) && B != L.header())
        return Reject("side exit from block " + B->name());
  Instruction *HeaderTerm = L.header()->terminator();
  BasicBlock *BodyEntry = HeaderTerm->blockRef(0);
  if (!L.contains(BodyEntry))
    return Reject("header's true successor leaves the loop");

  uint32_t NextChannel = 0;
  uint64_t MinDist = UINT64_MAX;

  // --- Loop-carried scalar recurrences: non-IV header phis. ---------------
  for (const auto &I : L.header()->instructions()) {
    if (I->opcode() != Opcode::Phi)
      break;
    Instruction *Phi = I.get();
    if (Phi == Plan.Iv.Phi)
      continue;
    if (Phi->type() != Type::I64)
      return Reject("carried phi %" + Phi->name() + " is not i64");
    Value *Init = nullptr, *Next = nullptr;
    for (unsigned A = 0; A < Phi->numBlockRefs(); ++A) {
      if (L.contains(Phi->blockRef(A)))
        Next = Phi->operand(A);
      else
        Init = Phi->operand(A);
    }
    if (!Init || !Next)
      return Reject("carried phi %" + Phi->name() +
                    " lacks a preheader or latch incoming");
    // Every use must be reachable from the forwarded value's definition
    // at the top of the body-entry block.  Uses in other header phis are
    // latch-incoming by SSA and therefore fine.
    for (const auto &B : F->blocks())
      for (const auto &U : B->instructions()) {
        if (U.get() == Phi)
          continue;
        bool Uses = false;
        for (Value *Op : U->operands())
          Uses |= Op == Phi;
        if (!Uses)
          continue;
        if (!L.contains(U.get()))
          return Reject("carried phi %" + Phi->name() +
                        " is live out of the loop");
        bool HeaderPhi = U->opcode() == Opcode::Phi &&
                         U->parent() == L.header();
        if (!HeaderPhi && !DT.dominates(BodyEntry, U->parent()))
          return Reject("carried phi %" + Phi->name() +
                        " is used outside the iteration body");
      }
    ScalarCarry SC;
    SC.Phi = Phi;
    SC.Init = Init;
    SC.Next = Next;
    SC.Channel = NextChannel++;
    Plan.Scalars.push_back(SC);
    MinDist = std::min<uint64_t>(MinDist, 1);
  }

  // --- Array recurrences: profiled flow deps with provable distance. ------
  std::vector<Instruction *> Mem = memoryScope(L, FA);
  std::map<const Instruction *, uint32_t> StoreChannel;
  for (const FlowDep &D : P.crossIterationFlowDeps(&L)) {
    if (D.Src->opcode() != Opcode::Store || D.Dst->opcode() != Opcode::Load)
      continue;
    if (!L.contains(D.Src) || !L.contains(D.Dst))
      continue; // In a callee: the IV is out of reach there.
    if (D.Src->accessBytes() != 8 || D.Dst->accessBytes() != 8 ||
        D.Dst->type() != Type::I64)
      continue; // Tokens carry one raw 64-bit value.
    // The producing iteration must always post: its store has to run on
    // every path through an iteration.
    if (!DT.dominates(D.Src->parent(), Latch))
      continue;

    Instruction *SGep = gepOf(D.Src->operand(1));
    Instruction *LGep = gepOf(D.Dst->operand(0));
    if (!SGep || !LGep || SGep->operand(0) != LGep->operand(0))
      continue;
    Value *SIdx = nullptr, *LIdx = nullptr;
    uint64_t SScale = 0, LScale = 0;
    matchScaled(SGep->operand(1), SIdx, SScale);
    matchScaled(LGep->operand(1), LIdx, LScale);
    // The store must index by the IV itself (element j written exactly by
    // iteration j), the load by IV - x, with non-overlapping elements.
    if (SIdx != Plan.Iv.Phi || SScale != LScale || SScale < 8)
      continue;
    uint64_t DMin = 0, DMax = 0;
    if (!matchBackIndex(LIdx, Plan.Iv.Phi, DMin, DMax))
      continue;

    // Single writer: no other store in the loop's scope may touch the
    // objects this dependence flows through.
    const std::set<ObjectKey> &SrcObjs = P.objectsAccessedBy(D.Src);
    bool Clobbered = false;
    for (Instruction *M : Mem)
      if (M != D.Src && M->opcode() == Opcode::Store &&
          intersects(P.objectsAccessedBy(M), SrcObjs))
        Clobbered = true;
    if (Clobbered)
      continue;

    auto [It, Inserted] = StoreChannel.try_emplace(D.Src, NextChannel);
    if (Inserted)
      ++NextChannel;
    ArrayCarry AC;
    AC.Store = const_cast<Instruction *>(D.Src);
    AC.Load = const_cast<Instruction *>(D.Dst);
    AC.TargetIter = LIdx;
    AC.Channel = It->second;
    AC.MinDistance = DMin;
    AC.MaxDistance = DMax;
    Plan.Arrays.push_back(AC);
    Plan.Covered.insert(D);
    MinDist = std::min(MinDist, DMin);
  }

  Plan.NumChannels = NextChannel;
  Plan.MinDistance = MinDist == UINT64_MAX ? 0 : MinDist;
  if (Plan.NumChannels == 0)
    Plan.WhyNot.push_back("no rewritable carried dependences");
  return Plan;
}
