//===- analysis/FunctionAnalyses.h - Per-function analysis cache -*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns Cfg, DominatorTree, and LoopInfo for every function of a module;
/// profilers, classification, and the transformation all share one
/// instance so Loop pointers stay stable across the pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_ANALYSIS_FUNCTIONANALYSES_H
#define PRIVATEER_ANALYSIS_FUNCTIONANALYSES_H

#include "analysis/CallGraph.h"
#include "analysis/LoopInfo.h"

#include <memory>

namespace privateer {
namespace analysis {

class FunctionAnalyses {
public:
  explicit FunctionAnalyses(const ir::Module &M) : Callgraph(M) {
    for (const auto &F : M.functions()) {
      auto E = std::make_unique<Entry>(*F);
      Entries[F.get()] = std::move(E);
    }
  }

  const Cfg &cfg(const ir::Function *F) const { return Entries.at(F)->C; }
  const DominatorTree &domTree(const ir::Function *F) const {
    return Entries.at(F)->DT;
  }
  const LoopInfo &loops(const ir::Function *F) const {
    return Entries.at(F)->LI;
  }
  const CallGraph &callGraph() const { return Callgraph; }

  /// Every loop in the module.
  std::vector<Loop *> allLoops() const {
    std::vector<Loop *> Out;
    for (const auto &[F, E] : Entries)
      for (const auto &L : E->LI.loops())
        Out.push_back(L.get());
    return Out;
  }

private:
  struct Entry {
    explicit Entry(const ir::Function &F) : C(F), DT(C), LI(C, DT) {}
    Cfg C;
    DominatorTree DT;
    LoopInfo LI;
  };
  std::map<const ir::Function *, std::unique_ptr<Entry>> Entries;
  CallGraph Callgraph;
};

} // namespace analysis
} // namespace privateer

#endif // PRIVATEER_ANALYSIS_FUNCTIONANALYSES_H
