//===- analysis/LoopInfo.cpp ----------------------------------------------===//

#include "analysis/LoopInfo.h"

#include <algorithm>

using namespace privateer;
using namespace privateer::analysis;
using namespace privateer::ir;

LoopInfo::LoopInfo(const Cfg &C, const DominatorTree &DT) {
  // Find back edges: T -> H where H dominates T.
  std::map<BasicBlock *, std::vector<BasicBlock *>> BackEdges;
  for (BasicBlock *B : C.reversePostOrder())
    for (BasicBlock *S : C.successors(B))
      if (DT.dominates(S, B))
        BackEdges[S].push_back(B);

  // One natural loop per header; merge bodies of multiple back edges.
  unsigned NextId = 0;
  for (auto &[Header, Latches] : BackEdges) {
    auto L = std::make_unique<Loop>(Header, NextId++);
    L->Latches = Latches;
    L->Body.insert(Header);
    std::vector<BasicBlock *> Work(Latches.begin(), Latches.end());
    while (!Work.empty()) {
      BasicBlock *B = Work.back();
      Work.pop_back();
      if (!L->Body.insert(B).second)
        continue;
      for (BasicBlock *P : C.predecessors(B))
        if (P != Header)
          Work.push_back(P);
    }
    Loops.push_back(std::move(L));
  }

  // Nesting: loop A is inside B iff B's body contains A's header and the
  // loops differ.  Parent = smallest containing loop.
  for (auto &A : Loops) {
    Loop *Best = nullptr;
    for (auto &B : Loops) {
      if (A.get() == B.get() || !B->Body.count(A->Hdr))
        continue;
      if (!Best || B->Body.size() < Best->Body.size())
        Best = B.get();
    }
    A->ParentLoop = Best;
    if (Best)
      Best->Children.push_back(A.get());
  }

  // Innermost map.
  for (auto &L : Loops)
    for (BasicBlock *B : L->Body) {
      auto It = Innermost.find(B);
      if (It == Innermost.end() ||
          It->second->Body.size() > L->Body.size())
        Innermost[B] = L.get();
    }
}

Loop *LoopInfo::loopFor(const BasicBlock *B) const {
  auto It = Innermost.find(B);
  return It == Innermost.end() ? nullptr : It->second;
}

std::vector<Loop *> LoopInfo::topLevel() const {
  std::vector<Loop *> Out;
  for (const auto &L : Loops)
    if (!L->parent())
      Out.push_back(L.get());
  return Out;
}

BasicBlock *Loop::preheader(const Cfg &C) const {
  BasicBlock *Pre = nullptr;
  for (BasicBlock *P : C.predecessors(Hdr)) {
    if (contains(P))
      continue;
    if (Pre)
      return nullptr; // Multiple out-of-loop predecessors.
    Pre = P;
  }
  return Pre;
}

std::vector<BasicBlock *> Loop::exitBlocks(const Cfg &C) const {
  std::vector<BasicBlock *> Out;
  for (BasicBlock *B : Body)
    for (BasicBlock *S : C.successors(B))
      if (!contains(S) && std::find(Out.begin(), Out.end(), S) == Out.end())
        Out.push_back(S);
  return Out;
}

std::optional<Loop::CanonicalIv> Loop::canonicalIv(const Cfg & /*C*/) const {
  // Header terminator: condbr (icmp lt IV, Bound), body, exit.
  Instruction *Term = Hdr->terminator();
  if (!Term || Term->opcode() != Opcode::CondBr)
    return std::nullopt;
  if (contains(Term->blockRef(0)) == contains(Term->blockRef(1)))
    return std::nullopt;
  bool TrueStays = contains(Term->blockRef(0));
  Value *CondV = Term->operand(0);
  if (CondV->kind() != ValueKind::Instruction)
    return std::nullopt;
  auto *Cond = static_cast<Instruction *>(CondV);
  if (Cond->opcode() != Opcode::ICmp || Cond->cmpPred() != CmpPred::Lt ||
      !TrueStays)
    return std::nullopt;

  Value *IvV = Cond->operand(0);
  if (IvV->kind() != ValueKind::Instruction)
    return std::nullopt;
  auto *Iv = static_cast<Instruction *>(IvV);
  if (Iv->opcode() != Opcode::Phi || Iv->parent() != Hdr)
    return std::nullopt;

  CanonicalIv Out;
  Out.Phi = Iv;
  Out.Bound = Cond->operand(1);
  Out.ExitBlock = Term->blockRef(1);
  for (unsigned A = 0; A < Iv->numOperands(); ++A) {
    Value *In = Iv->operand(A);
    if (contains(Iv->blockRef(A))) {
      // Latch value must be IV + 1.
      if (In->kind() != ValueKind::Instruction)
        return std::nullopt;
      auto *Inc = static_cast<Instruction *>(In);
      if (Inc->opcode() != Opcode::Add)
        return std::nullopt;
      Value *A0 = Inc->operand(0), *A1 = Inc->operand(1);
      auto IsOne = [](Value *V) {
        return V->kind() == ValueKind::ConstInt &&
               static_cast<ConstantInt *>(V)->value() == 1;
      };
      if (!((A0 == Iv && IsOne(A1)) || (A1 == Iv && IsOne(A0))))
        return std::nullopt;
      Out.Increment = Inc;
    } else {
      Out.Begin = In;
    }
  }
  if (!Out.Begin || !Out.Increment)
    return std::nullopt;
  return Out;
}
