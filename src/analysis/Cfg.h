//===- analysis/Cfg.h - CFG utilities ---------------------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predecessor maps and reverse-post-order numbering over a function's
/// control-flow graph; the substrate for dominators and loop detection.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_ANALYSIS_CFG_H
#define PRIVATEER_ANALYSIS_CFG_H

#include "ir/IR.h"

#include <map>
#include <vector>

namespace privateer {
namespace analysis {

class Cfg {
public:
  explicit Cfg(const ir::Function &F);

  const ir::Function &function() const { return Func; }

  const std::vector<ir::BasicBlock *> &
  predecessors(const ir::BasicBlock *B) const;
  const std::vector<ir::BasicBlock *> &
  successors(const ir::BasicBlock *B) const;

  /// Blocks in reverse post order from the entry; unreachable blocks are
  /// excluded.
  const std::vector<ir::BasicBlock *> &reversePostOrder() const {
    return Rpo;
  }

  /// RPO index; unreachable blocks report ~0u.
  unsigned rpoIndex(const ir::BasicBlock *B) const {
    auto It = RpoIndex.find(B);
    return It == RpoIndex.end() ? ~0u : It->second;
  }

  bool isReachable(const ir::BasicBlock *B) const {
    return RpoIndex.count(B) != 0;
  }

private:
  const ir::Function &Func;
  std::map<const ir::BasicBlock *, std::vector<ir::BasicBlock *>> Preds;
  std::map<const ir::BasicBlock *, std::vector<ir::BasicBlock *>> Succs;
  std::vector<ir::BasicBlock *> Rpo;
  std::map<const ir::BasicBlock *, unsigned> RpoIndex;
};

} // namespace analysis
} // namespace privateer

#endif // PRIVATEER_ANALYSIS_CFG_H
