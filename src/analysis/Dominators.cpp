//===- analysis/Dominators.cpp --------------------------------------------===//
//
// "A Simple, Fast Dominance Algorithm" (Cooper, Harvey, Kennedy).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

using namespace privateer;
using namespace privateer::analysis;
using namespace privateer::ir;

DominatorTree::DominatorTree(const Cfg &C) : C(C) {
  const auto &Rpo = C.reversePostOrder();
  if (Rpo.empty())
    return;
  BasicBlock *Entry = Rpo.front();
  IDom[Entry] = Entry;

  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (C.rpoIndex(A) > C.rpoIndex(B))
        A = IDom.at(A);
      while (C.rpoIndex(B) > C.rpoIndex(A))
        B = IDom.at(B);
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 1; I < Rpo.size(); ++I) {
      BasicBlock *B = Rpo[I];
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *P : C.predecessors(B)) {
        if (!IDom.count(P))
          continue; // Predecessor not yet processed.
        NewIDom = NewIDom ? Intersect(NewIDom, P) : P;
      }
      if (!NewIDom)
        continue;
      auto It = IDom.find(B);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[B] = NewIDom;
        Changed = true;
      }
    }
  }
}

BasicBlock *DominatorTree::immediateDominator(const BasicBlock *B) const {
  auto It = IDom.find(B);
  if (It == IDom.end() || It->second == B)
    return nullptr;
  return It->second;
}

bool DominatorTree::dominates(const BasicBlock *A,
                              const BasicBlock *B) const {
  if (!C.isReachable(A) || !C.isReachable(B))
    return false;
  const BasicBlock *Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    auto It = IDom.find(Cur);
    if (It == IDom.end() || It->second == Cur)
      return false;
    Cur = It->second;
  }
}
