//===- transform/Pipeline.h - End-to-end Privateer pipeline -----*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fully automatic pipeline of paper Figure 3: profile a training run,
/// classify hot loops into heap assignments, select compatible loops,
/// apply the privatizing transformation, and execute the result
/// speculatively in parallel.  "The compiler system acts fully
/// automatically without any guidance from the programmer."
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_TRANSFORM_PIPELINE_H
#define PRIVATEER_TRANSFORM_PIPELINE_H

#include "interp/Interpreter.h"
#include "transform/Privatizer.h"

#include <memory>

namespace privateer {

namespace bytecode {
struct BytecodeProgram;
} // namespace bytecode

namespace transform {

/// Which engine executes the program.  Bytecode is the default tier (the
/// direct-threaded VM of src/bytecode); the tree-walking interpreter stays
/// available as the differential oracle and as the automatic fallback for
/// anything the lowerer declines.
enum class ExecEngine : uint8_t {
  Bytecode = 0,
  Interp = 1,
};

inline const char *execEngineName(ExecEngine E) {
  return E == ExecEngine::Bytecode ? "bytecode" : "interp";
}

struct PipelineOptions {
  std::string EntryFunction = "main";
  std::vector<interp::Cell> EntryArgs;
  /// Entry point for the profiling run (empty = EntryFunction).  The
  /// paper profiles on a *train* input and evaluates on *ref*; programs
  /// model that with a separate entry that feeds the hot loop a training
  /// workload.  When the training input under-approximates production
  /// behavior, classification optimistically picks cheaper heaps and the
  /// runtime's validation pays the difference as misspeculation.
  std::string TrainingEntryFunction;
  /// Training-run instruction budget.
  uint64_t ProfileBudget = 500'000'000;
  /// Requested execution engine; Bytecode silently falls back to Interp
  /// when lowering declines (ExecutionResult::EngineUsed reports which
  /// engine actually ran).
  ExecEngine Engine = ExecEngine::Bytecode;
  /// Scheduling strategy.  Doall admits only dependence-free loops (the
  /// seed behavior).  Doacross and Pipeline additionally run the
  /// dependence-distance pre-pass (analysis/DepDistance.h), rewriting
  /// provable carried dependences into token forwarding before
  /// classification judges the loop.
  Strategy Strat = Strategy::Doall;
  /// Stage count hint for Strategy::Pipeline (0 = pick from the worker
  /// count at execution time).
  uint32_t NumStages = 0;
  /// When false, recognized commutative clusters are ignored and their
  /// objects classify as the paper's five heaps would (the fallback arm of
  /// the commutative bench gate).
  bool EnableCommutative = true;
};

struct PipelineResult {
  bool Transformed = false;
  const analysis::Loop *SelectedLoop = nullptr;
  classify::HeapAssignment Assignment;
  TransformStats Stats;
  profiling::Profile TrainingProfile;
  std::vector<std::string> Log;
};

/// Profiles @EntryFunction on the training input (its arguments), ranks
/// loops by profiled weight, classifies and selects, and transforms the
/// module in place for the heaviest parallelizable DOALL loop.
PipelineResult runPrivateerPipeline(ir::Module &M,
                                    const analysis::FunctionAnalyses &FA,
                                    const PipelineOptions &Options);

struct ExecutionResult {
  interp::Cell ReturnValue;
  InvocationStats Stats;
  /// The engine that actually ran (Interp when bytecode lowering fell
  /// back); EngineNote carries the fallback reason.
  ExecEngine EngineUsed = ExecEngine::Interp;
  std::string EngineNote;
};

/// Lowers \p M to bytecode for privatized execution: the HA's selected
/// loop is compiled into the program as its parallel-interception site.
/// Null (with \p WhyNot set) means callers must run the interpreter.
/// The ProgramCache calls this once per program so warm daemon hits skip
/// both parse and lowering.  The HA's reduction registrations are baked
/// into the program (ReduxGlobals), making it self-contained: the
/// executeLoaded* entry points below run it with no IR or classification
/// state at all — that is what lets the service serialize programs and
/// ship them to pre-forked executive processes.
std::shared_ptr<const bytecode::BytecodeProgram>
lowerForPrivatized(const ir::Module &M, const analysis::FunctionAnalyses &FA,
                   const classify::HeapAssignment &HA, std::string &WhyNot);

/// Lowers \p M to bytecode for plain sequential execution (no loop
/// interception).  Null (with \p WhyNot set) means interpreter fallback.
std::shared_ptr<const bytecode::BytecodeProgram>
lowerForSequential(const ir::Module &M, std::string &WhyNot);

/// Executes the transformed module speculatively: logical heaps, tagged
/// allocation, reduction registration, and the selected loop
/// DOALL-parallelized across forked workers.  Initializes and shuts down
/// the runtime internally.  Deferred output goes to \p Out (nullptr =
/// stdout).  \p Prelowered (from lowerForPrivatized) skips lowering on
/// warm cache hits; null lowers on the spot when Options.Engine is
/// Bytecode.
ExecutionResult executePrivatized(ir::Module &M,
                                  const analysis::FunctionAnalyses &FA,
                                  const classify::HeapAssignment &HA,
                                  const PipelineOptions &Options,
                                  const ParallelOptions &ParOpts,
                                  const RuntimeConfig &Config,
                                  std::FILE *Out,
                                  const bytecode::BytecodeProgram *Prelowered =
                                      nullptr);

/// Plain sequential execution over host memory (works for original and
/// transformed modules alike; checks are no-ops).  Output to \p Out.
/// Honors Options.Engine with the same interpreter fallback;
/// \p EngineUsed (optional) reports which engine ran.
interp::Cell executeSequential(ir::Module &M, const PipelineOptions &Options,
                               std::FILE *Out,
                               const bytecode::BytecodeProgram *Prelowered =
                                   nullptr,
                               ExecEngine *EngineUsed = nullptr);

/// Speculative execution of a self-contained prelowered program (from
/// lowerForPrivatized, possibly deserialized from a bytecode::Image): no
/// Module, analyses, or HeapAssignment needed.  Brackets the runtime's
/// initialize/shutdown, so a long-lived executive process can call it for
/// job after job.
ExecutionResult executeLoadedParallel(const bytecode::BytecodeProgram &BP,
                                      const PipelineOptions &Options,
                                      const ParallelOptions &ParOpts,
                                      const RuntimeConfig &Config,
                                      std::FILE *Out);

/// Sequential counterpart of executeLoadedParallel (plain host memory, no
/// runtime bring-up).
interp::Cell executeLoadedSequential(const bytecode::BytecodeProgram &BP,
                                     const PipelineOptions &Options,
                                     std::FILE *Out);

} // namespace transform
} // namespace privateer

#endif // PRIVATEER_TRANSFORM_PIPELINE_H
