//===- transform/Pipeline.h - End-to-end Privateer pipeline -----*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fully automatic pipeline of paper Figure 3: profile a training run,
/// classify hot loops into heap assignments, select compatible loops,
/// apply the privatizing transformation, and execute the result
/// speculatively in parallel.  "The compiler system acts fully
/// automatically without any guidance from the programmer."
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_TRANSFORM_PIPELINE_H
#define PRIVATEER_TRANSFORM_PIPELINE_H

#include "interp/Interpreter.h"
#include "transform/Privatizer.h"

namespace privateer {
namespace transform {

struct PipelineOptions {
  std::string EntryFunction = "main";
  std::vector<interp::Cell> EntryArgs;
  /// Training-run instruction budget.
  uint64_t ProfileBudget = 500'000'000;
};

struct PipelineResult {
  bool Transformed = false;
  const analysis::Loop *SelectedLoop = nullptr;
  classify::HeapAssignment Assignment;
  TransformStats Stats;
  profiling::Profile TrainingProfile;
  std::vector<std::string> Log;
};

/// Profiles @EntryFunction on the training input (its arguments), ranks
/// loops by profiled weight, classifies and selects, and transforms the
/// module in place for the heaviest parallelizable DOALL loop.
PipelineResult runPrivateerPipeline(ir::Module &M,
                                    const analysis::FunctionAnalyses &FA,
                                    const PipelineOptions &Options);

struct ExecutionResult {
  interp::Cell ReturnValue;
  InvocationStats Stats;
};

/// Executes the transformed module speculatively: logical heaps, tagged
/// allocation, reduction registration, and the selected loop
/// DOALL-parallelized across forked workers.  Initializes and shuts down
/// the runtime internally.  Deferred output goes to \p Out (nullptr =
/// stdout).
ExecutionResult executePrivatized(ir::Module &M,
                                  const analysis::FunctionAnalyses &FA,
                                  const classify::HeapAssignment &HA,
                                  const PipelineOptions &Options,
                                  const ParallelOptions &ParOpts,
                                  const RuntimeConfig &Config,
                                  std::FILE *Out);

/// Plain sequential execution over host memory (works for original and
/// transformed modules alike; checks are no-ops).  Output to \p Out.
interp::Cell executeSequential(ir::Module &M, const PipelineOptions &Options,
                               std::FILE *Out);

} // namespace transform
} // namespace privateer

#endif // PRIVATEER_TRANSFORM_PIPELINE_H
