//===- transform/Doacross.h - DOACROSS token-forwarding rewrite -*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DOACROSS pre-pass: rewrites the carried dependences a DoacrossPlan
/// proved (analysis/DepDistance.h) into explicit postdep/waitdep token
/// traffic, leaving a DOALL-shaped loop for classification and the
/// privatizing transformation to handle unchanged.
///
/// A scalar recurrence  x = phi [pre: init], [latch: next]  becomes
///
///   %first = icmp eq %i, Begin
///   %prev  = sub %i, 1
///   %tok   = waitdep %prev, chan
///   %x     = select %first, init, %tok        ; phi deleted
///   ...
///   postdep %i, %next, chan                   ; in the latch
///
/// An array recurrence  v = load A[j], j = i - x  keeps the load as the
/// pre-loop fallback and forwards in-loop values through the ring:
///
///   %pre = icmp lt %j, Begin
///   %v0  = load A[j]                          ; original, checks elided
///   %tok = waitdep %j, chan
///   %v   = select %pre, %v0, %tok
///   ...
///   store %s, A[i]
///   postdep %i, %s, chan
///
/// The rewrite is unconditionally semantics-preserving: under sequential
/// execution (and misspeculation recovery) iterations run in order, so
/// every waitdep's token was already posted — the runtime keeps
/// process-local rings for exactly this case — and pre-loop targets
/// select the memory value.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_TRANSFORM_DOACROSS_H
#define PRIVATEER_TRANSFORM_DOACROSS_H

#include "analysis/DepDistance.h"

namespace privateer {
namespace transform {

struct DoacrossStats {
  unsigned ScalarCarries = 0;
  unsigned ArrayCarries = 0;
  unsigned Channels = 0;
  std::vector<std::string> Errors;
  bool ok() const { return Errors.empty(); }
};

/// Applies \p Plan to the module in place.  Only touches straight-line
/// instructions (no CFG edges), so cached analyses stay valid.
DoacrossStats applyDoacross(ir::Module &M,
                            const analysis::DoacrossPlan &Plan);

} // namespace transform
} // namespace privateer

#endif // PRIVATEER_TRANSFORM_DOACROSS_H
