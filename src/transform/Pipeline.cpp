//===- transform/Pipeline.cpp ---------------------------------------------===//

#include "transform/Pipeline.h"

#include "analysis/DepDistance.h"
#include "bytecode/Lower.h"
#include "bytecode/VM.h"
#include "profiling/ProfileCollector.h"
#include "support/ErrorHandling.h"
#include "transform/Doacross.h"

#include <algorithm>

using namespace privateer;
using namespace privateer::transform;
using namespace privateer::analysis;
using namespace privateer::classify;
using namespace privateer::interp;
using namespace privateer::ir;

PipelineResult transform::runPrivateerPipeline(Module &M,
                                               const FunctionAnalyses &FA,
                                               const PipelineOptions &Opt) {
  PipelineResult R;

  // --- §4.1 Profiling: one instrumented training run. ---------------------
  {
    profiling::ProfileCollector Collector(FA);
    PlainMemoryManager MM;
    Interpreter Interp(M, MM, &Collector);
    Interp.setInstructionBudget(Opt.ProfileBudget);
    Interp.initializeGlobals();
    const std::string &TrainEntry = Opt.TrainingEntryFunction.empty()
                                        ? Opt.EntryFunction
                                        : Opt.TrainingEntryFunction;
    Interp.run(TrainEntry, TrainEntry == Opt.EntryFunction
                               ? Opt.EntryArgs
                               : std::vector<interp::Cell>());
    R.TrainingProfile = Collector.finish();
    R.Log.push_back("profiled @" + TrainEntry + ": " +
                    std::to_string(Interp.instructionsExecuted()) +
                    " instructions");
  }

  // --- Hot loops, classification (§4.2), selection (§4.3). ----------------
  std::vector<Loop *> Loops = FA.allLoops();
  std::sort(Loops.begin(), Loops.end(), [&](Loop *A, Loop *B) {
    return R.TrainingProfile.loopStats(A).Weight >
           R.TrainingProfile.loopStats(B).Weight;
  });

  std::vector<HeapAssignment> Candidates;
  for (Loop *L : Loops) {
    profiling::LoopStats S = R.TrainingProfile.loopStats(L);
    if (S.Iterations == 0)
      continue;
    std::vector<std::string> WhyNot;
    bool Ready = isDoallReady(*L, FA, WhyNot);
    HeapAssignment HA;
    if (Ready)
      HA = classifyLoop(*L, FA, R.TrainingProfile, nullptr,
                        Opt.EnableCommutative);

    // DOACROSS pre-pass: when the strategy allows it and plain DOALL is
    // off the table, try to rewrite the loop's carried dependences into
    // token forwarding.  The trial classification (with the covered deps
    // carved out) runs before the IR is touched, so a loop the tokens
    // cannot fully cover is left unmodified.
    if (Opt.Strat != Strategy::Doall && (!Ready || !HA.Parallelizable)) {
      analysis::DoacrossPlan DP =
          analysis::planDoacross(*L, FA, R.TrainingProfile);
      if (!DP.viable()) {
        R.Log.push_back("loop@" + L->header()->name() + ": no doacross (" +
                        (DP.WhyNot.empty() ? "?" : DP.WhyNot.front()) + ")");
      } else {
        HeapAssignment Trial = classifyLoop(*L, FA, R.TrainingProfile,
                                            &DP.Covered, Opt.EnableCommutative);
        if (!Trial.Parallelizable) {
          R.Log.push_back("loop@" + L->header()->name() +
                          ": doacross tokens cover too little");
        } else {
          DoacrossStats DS = applyDoacross(M, DP);
          for (const std::string &E : DS.Errors)
            R.Log.push_back("doacross error: " + E);
          WhyNot.clear();
          if (DS.ok() && isDoallReady(*L, FA, WhyNot)) {
            HA = std::move(Trial);
            HA.DoacrossChannels = DP.NumChannels;
            HA.DoacrossMinDistance = DP.MinDistance;
            for (const analysis::ArrayCarry &AC : DP.Arrays)
              HA.PrivacyElides.insert(AC.Load);
            Ready = true;
            R.Log.push_back(
                "loop@" + L->header()->name() + ": doacross rewrite, " +
                std::to_string(DS.ScalarCarries) + " scalar + " +
                std::to_string(DS.ArrayCarries) + " array carries over " +
                std::to_string(DP.NumChannels) + " channels, min distance " +
                std::to_string(DP.MinDistance));
          }
        }
      }
    }

    if (!Ready) {
      R.Log.push_back("loop@" + L->header()->name() + ": not DOALL (" +
                      (WhyNot.empty() ? "?" : WhyNot.front()) + ")");
      continue;
    }
    R.Log.push_back("loop@" + L->header()->name() + ": " +
                    (HA.Parallelizable ? "parallelizable"
                                       : "NOT parallelizable") +
                    ", weight=" + std::to_string(S.Weight));
    for (const std::string &N : HA.Notes)
      R.Log.push_back("  " + N);
    Candidates.push_back(std::move(HA));
  }

  std::vector<HeapAssignment> Selected =
      selectLoops(Candidates, FA, R.TrainingProfile);
  if (Selected.empty()) {
    R.Log.push_back("no parallelizable loop selected");
    return R;
  }

  // --- §4.4-4.6 Transformation of the heaviest selected loop. -------------
  R.Assignment = Selected.front();
  R.SelectedLoop = R.Assignment.TheLoop;
  R.Stats = applyPrivatization(M, R.Assignment, FA, R.TrainingProfile);
  for (const std::string &E : R.Stats.Errors)
    R.Log.push_back("transform error: " + E);
  R.Transformed = R.Stats.ok();
  if (R.Transformed)
    R.Log.push_back(
        "selected loop@" + R.SelectedLoop->header()->name() + ": " +
        std::to_string(R.Stats.PrivacyChecks) + " privacy checks, " +
        std::to_string(R.Stats.SeparationChecks) + " separation checks (" +
        std::to_string(R.Stats.SeparationChecksElided) + " elided), " +
        std::to_string(R.Stats.PredictionsInstalled) + " value predictions");
  return R;
}

std::shared_ptr<const bytecode::BytecodeProgram>
transform::lowerForPrivatized(const Module &M, const FunctionAnalyses &FA,
                              const HeapAssignment &HA, std::string &WhyNot) {
  const Loop *L = HA.TheLoop;
  if (!L) {
    WhyNot = "no selected loop";
    return nullptr;
  }
  auto Iv = L->canonicalIv(FA.cfg(L->header()->parent()));
  if (!Iv) {
    WhyNot = "selected loop lost its canonical IV";
    return nullptr;
  }
  bytecode::LowerOptions LO;
  LO.PlanLoop = L;
  LO.Iv = *Iv;
  std::unique_ptr<bytecode::BytecodeProgram> Prog =
      bytecode::lowerModule(M, LO, WhyNot);
  if (!Prog)
    return nullptr;
  // Bake the reduction registrations into the program: executing a
  // prelowered program (the service's executive pool ships them as flat
  // images) must not require the classification results at exec time.
  for (const auto &[O, ElemOp] : HA.ReduxOps) {
    if (!O.Global)
      continue;
    auto It = Prog->GlobalIdx.find(O.Global->name());
    if (It == Prog->GlobalIdx.end()) {
      WhyNot = "reduction global '" + O.Global->name() +
               "' missing from lowered program";
      return nullptr;
    }
    bytecode::BcReduxGlobal RG;
    RG.GlobalIdx = It->second;
    RG.Elem = ElemOp.first;
    RG.Op = ElemOp.second;
    Prog->ReduxGlobals.push_back(RG);
  }
  // Commutative-heap registrations ride along for the same reason: a warm
  // executive folding com logs at commit needs the object bounds with no
  // classification state in the process.
  for (const auto &[O, OpBytes] : HA.ComOps) {
    if (!O.Global)
      continue;
    auto It = Prog->GlobalIdx.find(O.Global->name());
    if (It == Prog->GlobalIdx.end()) {
      WhyNot = "commutative global '" + O.Global->name() +
               "' missing from lowered program";
      return nullptr;
    }
    bytecode::BcComGlobal CG;
    CG.GlobalIdx = It->second;
    CG.Op = OpBytes.first;
    CG.ElemBytes = OpBytes.second;
    Prog->ComGlobals.push_back(CG);
  }
  // Same self-containment for token rings: a warm executive sizes them
  // from the image alone.
  Prog->NumDepChannels = HA.DoacrossChannels;
  return Prog;
}

std::shared_ptr<const bytecode::BytecodeProgram>
transform::lowerForSequential(const Module &M, std::string &WhyNot) {
  return bytecode::lowerModule(M, bytecode::LowerOptions(), WhyNot);
}

ExecutionResult transform::executePrivatized(
    Module &M, const FunctionAnalyses &FA, const HeapAssignment &HA,
    const PipelineOptions &Opt, const ParallelOptions &ParOpts,
    const RuntimeConfig &Config, std::FILE *Out,
    const bytecode::BytecodeProgram *Prelowered) {
  const Loop *L = HA.TheLoop;

  // Engine selection before the runtime comes up: lower (or accept the
  // cache's prelowered program), falling back to the interpreter when the
  // lowerer declines.
  std::shared_ptr<const bytecode::BytecodeProgram> Owned;
  const bytecode::BytecodeProgram *BP = nullptr;
  std::string EngineNote;
  if (Opt.Engine == ExecEngine::Bytecode) {
    if (Prelowered)
      BP = Prelowered;
    else {
      Owned = lowerForPrivatized(M, FA, HA, EngineNote);
      BP = Owned.get();
    }
  }

  Runtime &Rt = Runtime::get();
  Rt.initialize(Config);
  Rt.setSequentialOutput(Out);

  ExecutionResult R;
  R.EngineUsed = BP ? ExecEngine::Bytecode : ExecEngine::Interp;
  if (Opt.Engine == ExecEngine::Bytecode && !BP)
    R.EngineNote = "bytecode lowering fell back to interpreter: " +
                   EngineNote;
  if (BP) {
    PrivateerMemoryManager MM;
    bytecode::VM Vm(*BP, MM);
    bytecode::VM::ParallelPlan Plan;
    Plan.Options = ParOpts;
    Plan.Options.Out = Out;
    Plan.Options.NumDepChannels =
        std::max(Plan.Options.NumDepChannels, BP->NumDepChannels);
    Plan.Options.DepDistance = std::max<uint32_t>(
        Plan.Options.DepDistance,
        static_cast<uint32_t>(HA.DoacrossMinDistance));
    Vm.setParallelPlan(&Plan);
    Vm.initializeGlobals();
    for (const bytecode::BcReduxGlobal &RG : BP->ReduxGlobals)
      Rt.registerReduction(
          reinterpret_cast<void *>(Vm.globalAddress(RG.GlobalIdx)),
          BP->Globals[RG.GlobalIdx].SizeBytes, RG.Elem, RG.Op);
    for (const bytecode::BcComGlobal &CG : BP->ComGlobals)
      Rt.registerCommutative(
          reinterpret_cast<void *>(Vm.globalAddress(CG.GlobalIdx)),
          BP->Globals[CG.GlobalIdx].SizeBytes, CG.Op, CG.ElemBytes);
    R.ReturnValue = Vm.run(Opt.EntryFunction, Opt.EntryArgs);
    R.Stats = Plan.Stats;
  } else {
    PrivateerMemoryManager MM;
    Interpreter Interp(M, MM);
    Interpreter::ParallelPlan Plan;
    Plan.TheLoop = L;
    auto Iv = L->canonicalIv(FA.cfg(L->header()->parent()));
    if (!Iv)
      reportFatalError("selected loop lost its canonical IV");
    Plan.Iv = *Iv;
    Plan.Options = ParOpts;
    Plan.Options.Out = Out;
    Plan.Options.NumDepChannels =
        std::max(Plan.Options.NumDepChannels, HA.DoacrossChannels);
    Plan.Options.DepDistance = std::max<uint32_t>(
        Plan.Options.DepDistance,
        static_cast<uint32_t>(HA.DoacrossMinDistance));
    Interp.setParallelPlan(&Plan);
    Interp.initializeGlobals();

    // Register reduction-heap globals so workers start from the identity
    // and checkpoints combine partials (§3.2).
    for (const auto &[O, ElemOp] : HA.ReduxOps) {
      if (!O.Global)
        continue;
      Rt.registerReduction(
          reinterpret_cast<void *>(Interp.globalAddress(O.Global)),
          O.Global->sizeBytes(), ElemOp.first, ElemOp.second);
    }
    // Commutative-heap globals: registration is bounds metadata for
    // observability; the deferred records themselves carry addresses.
    for (const auto &[O, OpBytes] : HA.ComOps) {
      if (!O.Global)
        continue;
      Rt.registerCommutative(
          reinterpret_cast<void *>(Interp.globalAddress(O.Global)),
          O.Global->sizeBytes(), OpBytes.first, OpBytes.second);
    }

    R.ReturnValue = Interp.run(Opt.EntryFunction, Opt.EntryArgs);
    R.Stats = Plan.Stats;
  }

  Rt.setSequentialOutput(nullptr);
  Rt.shutdown();
  return R;
}

ExecutionResult transform::executeLoadedParallel(
    const bytecode::BytecodeProgram &BP, const PipelineOptions &Opt,
    const ParallelOptions &ParOpts, const RuntimeConfig &Config,
    std::FILE *Out) {
  Runtime &Rt = Runtime::get();
  Rt.initialize(Config);
  Rt.setSequentialOutput(Out);

  ExecutionResult R;
  R.EngineUsed = ExecEngine::Bytecode;
  {
    PrivateerMemoryManager MM;
    bytecode::VM Vm(BP, MM);
    bytecode::VM::ParallelPlan Plan;
    Plan.Options = ParOpts;
    Plan.Options.Out = Out;
    Plan.Options.NumDepChannels =
        std::max(Plan.Options.NumDepChannels, BP.NumDepChannels);
    Vm.setParallelPlan(&Plan);
    Vm.initializeGlobals();
    for (const bytecode::BcReduxGlobal &RG : BP.ReduxGlobals)
      Rt.registerReduction(
          reinterpret_cast<void *>(Vm.globalAddress(RG.GlobalIdx)),
          BP.Globals[RG.GlobalIdx].SizeBytes, RG.Elem, RG.Op);
    for (const bytecode::BcComGlobal &CG : BP.ComGlobals)
      Rt.registerCommutative(
          reinterpret_cast<void *>(Vm.globalAddress(CG.GlobalIdx)),
          BP.Globals[CG.GlobalIdx].SizeBytes, CG.Op, CG.ElemBytes);
    R.ReturnValue = Vm.run(Opt.EntryFunction, Opt.EntryArgs);
    R.Stats = Plan.Stats;
  }

  Rt.setSequentialOutput(nullptr);
  Rt.shutdown();
  return R;
}

Cell transform::executeLoadedSequential(const bytecode::BytecodeProgram &BP,
                                        const PipelineOptions &Opt,
                                        std::FILE *Out) {
  Runtime &Rt = Runtime::get();
  Rt.setSequentialOutput(Out);
  Cell Result;
  {
    PlainMemoryManager MM;
    bytecode::VM Vm(BP, MM);
    Vm.initializeGlobals();
    Result = Vm.run(Opt.EntryFunction, Opt.EntryArgs);
  }
  Rt.setSequentialOutput(nullptr);
  return Result;
}

Cell transform::executeSequential(Module &M, const PipelineOptions &Opt,
                                  std::FILE *Out,
                                  const bytecode::BytecodeProgram *Prelowered,
                                  ExecEngine *EngineUsed) {
  std::shared_ptr<const bytecode::BytecodeProgram> Owned;
  const bytecode::BytecodeProgram *BP = nullptr;
  if (Opt.Engine == ExecEngine::Bytecode) {
    if (Prelowered)
      BP = Prelowered;
    else {
      std::string WhyNot;
      Owned = lowerForSequential(M, WhyNot);
      BP = Owned.get();
    }
  }
  if (EngineUsed)
    *EngineUsed = BP ? ExecEngine::Bytecode : ExecEngine::Interp;

  Runtime &Rt = Runtime::get();
  bool OwnRuntime = !Rt.isInitialized();
  Rt.setSequentialOutput(Out);
  Cell Result;
  if (BP) {
    PlainMemoryManager MM;
    bytecode::VM Vm(*BP, MM);
    Vm.initializeGlobals();
    Result = Vm.run(Opt.EntryFunction, Opt.EntryArgs);
  } else {
    PlainMemoryManager MM;
    Interpreter Interp(M, MM);
    Interp.initializeGlobals();
    Result = Interp.run(Opt.EntryFunction, Opt.EntryArgs);
  }
  Rt.setSequentialOutput(nullptr);
  (void)OwnRuntime;
  return Result;
}
