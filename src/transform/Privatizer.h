//===- transform/Privatizer.h - The privatizing transformation --*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The speculative privatization transformation of paper §4.4-4.6,
/// producing code like Figure 2b:
///
///  - Replace Allocation (§4.4): globals and allocation sites receive
///    their logical-heap assignment, so the privatized interpreter's
///    memory manager allocates them from tagged heaps;
///  - Add Separation Checks (§4.5): checkheap on pointers whose heap
///    membership is not provable from their static definition;
///  - Add Privacy Checks (§4.6): privread/privwrite around every access
///    to a private-heap object;
///  - Value prediction: predicted first-reads become iteration-prologue
///    stores of the predicted constant plus end-of-iteration speculate_eq
///    validation (Figure 2b lines 78-80).
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_TRANSFORM_PRIVATIZER_H
#define PRIVATEER_TRANSFORM_PRIVATIZER_H

#include "classify/Classification.h"

namespace privateer {
namespace transform {

struct TransformStats {
  unsigned GlobalsAssigned = 0;
  unsigned AllocSitesAssigned = 0;
  unsigned SeparationChecks = 0;
  unsigned SeparationChecksElided = 0;
  unsigned PrivacyChecks = 0;
  unsigned PrivacyChecksElided = 0;
  unsigned PredictionsInstalled = 0;
  /// Recognized load-op-store clusters folded into ComUpdate instructions
  /// (the separation check is fused into the update itself).
  unsigned ComUpdatesInstalled = 0;
  std::vector<std::string> Errors;
  bool ok() const { return Errors.empty(); }
};

/// Applies \p HA to the module in place.  The loop must be parallelizable
/// per classification; returns accumulated statistics and any errors
/// (e.g. an access whose object set spans several heaps).
TransformStats applyPrivatization(ir::Module &M,
                                  const classify::HeapAssignment &HA,
                                  const analysis::FunctionAnalyses &FA,
                                  const profiling::Profile &P);

/// DOALL-readiness of the privatized loop: canonical induction variable,
/// no other loop-carried phis, and no SSA values flowing out of the loop.
/// Appends human-readable reasons to \p WhyNot on failure.
bool isDoallReady(const analysis::Loop &L, const analysis::FunctionAnalyses &FA,
                  std::vector<std::string> &WhyNot);

} // namespace transform
} // namespace privateer

#endif // PRIVATEER_TRANSFORM_PRIVATIZER_H
