//===- transform/Privatizer.cpp -------------------------------------------===//

#include "transform/Privatizer.h"

#include <algorithm>
#include <functional>
#include <map>

using namespace privateer;
using namespace privateer::transform;
using namespace privateer::classify;
using namespace privateer::analysis;
using namespace privateer::profiling;
using namespace privateer::ir;

namespace {

/// Instructions the loop executes: body blocks plus functions reachable
/// through calls (which also run outside the loop; the inserted checks
/// are no-ops there).
std::vector<Instruction *> instrumentationScope(const Loop &L,
                                                const FunctionAnalyses &FA) {
  std::vector<Instruction *> Out;
  for (BasicBlock *B : L.blocks())
    for (const auto &I : B->instructions())
      Out.push_back(I.get());
  std::set<BasicBlock *> Body(L.blocks().begin(), L.blocks().end());
  for (Function *F : FA.callGraph().reachableFromBlocks(Body))
    for (const auto &B : F->blocks())
      for (const auto &I : B->instructions())
        Out.push_back(I.get());
  return Out;
}

/// §4.5: "the compiler finds every static use of a pointer within the
/// parallel region and traces back to the static definition of that
/// pointer" — checks provable at compile time are elided.
bool provablyInHeap(const Value *Ptr, HeapKind K) {
  while (true) {
    switch (Ptr->kind()) {
    case ValueKind::Global: {
      const auto *G = static_cast<const GlobalVariable *>(Ptr);
      return G->hasAssignedHeap() && G->assignedHeap() == K;
    }
    case ValueKind::Instruction: {
      const auto *I = static_cast<const Instruction *>(Ptr);
      if (I->opcode() == Opcode::Gep) {
        Ptr = I->operand(0); // Within-object arithmetic keeps the tag.
        continue;
      }
      if (I->opcode() == Opcode::Malloc || I->opcode() == Opcode::Alloca)
        return I->hasAllocHeap() && I->allocHeap() == K;
      return false; // Loads, phis, calls: runtime check required.
    }
    default:
      return false;
    }
  }
}

/// Deferred insertion of new instructions before existing ones, applied
/// back-to-front so recorded positions stay valid.
class Inserter {
public:
  void before(Instruction *Anchor, std::unique_ptr<Instruction> NewInst) {
    Pending.push_back({Anchor, std::move(NewInst)});
  }

  void apply() {
    // Group by block, then insert in reverse position order.
    std::map<BasicBlock *, std::vector<std::pair<size_t, size_t>>> ByBlock;
    for (size_t N = 0; N < Pending.size(); ++N)
      ByBlock[Pending[N].Anchor->parent()].push_back(
          {Pending[N].Anchor->parent()->indexOf(Pending[N].Anchor), N});
    for (auto &[Block, Items] : ByBlock) {
      std::stable_sort(Items.begin(), Items.end());
      for (auto It = Items.rbegin(); It != Items.rend(); ++It)
        Block->insertAt(It->first, std::move(Pending[It->second].Inst));
    }
    Pending.clear();
  }

private:
  struct Item {
    Instruction *Anchor;
    std::unique_ptr<Instruction> Inst;
  };
  std::vector<Item> Pending;
};

std::unique_ptr<Instruction> makePrivacyCheck(bool IsRead, Value *Ptr,
                                              uint64_t Bytes) {
  auto I = std::make_unique<Instruction>(
      IsRead ? Opcode::PrivateRead : Opcode::PrivateWrite, Type::Void);
  I->addOperand(Ptr);
  I->setAccessBytes(Bytes);
  return I;
}

std::unique_ptr<Instruction> makeHeapCheck(Value *Ptr, HeapKind K) {
  auto I = std::make_unique<Instruction>(Opcode::CheckHeap, Type::Void);
  I->addOperand(Ptr);
  I->setExpectedHeap(K);
  return I;
}

} // namespace

TransformStats transform::applyPrivatization(Module &M,
                                             const HeapAssignment &HA,
                                             const FunctionAnalyses &FA,
                                             const Profile &P) {
  TransformStats Stats;
  const Loop &L = *HA.TheLoop;

  // --- §4.4 Replace Allocation. ------------------------------------------
  std::map<const Instruction *, std::set<HeapKind>> SiteKinds;
  for (const auto &[O, K] : HA.ObjectHeaps) {
    if (O.Global) {
      // The classification owns these objects; writing the assignment
      // back into the IR is the transformation's job.
      const_cast<GlobalVariable *>(O.Global)->assignHeap(K);
      ++Stats.GlobalsAssigned;
    } else if (O.AllocSite) {
      SiteKinds[O.AllocSite].insert(K);
    }
  }
  for (const auto &[Site, Kinds] : SiteKinds) {
    if (Kinds.size() != 1) {
      Stats.Errors.push_back(
          "allocation site %" + Site->name() +
          " produces objects classified into different heaps");
      continue;
    }
    const_cast<Instruction *>(Site)->setAllocHeap(*Kinds.begin());
    ++Stats.AllocSitesAssigned;
  }
  if (!Stats.ok())
    return Stats;

  // --- §4.5 / §4.6: separation and privacy checks. ------------------------
  // Commutative-cluster members are rewritten below, not instrumented: the
  // ComUpdate that replaces them fuses its own separation check, and the
  // cluster's load/store must not be privacy-validated (deferred updates
  // make cross-worker writes to one cell legal by construction).
  std::set<const Instruction *> ComMembers;
  for (const ComCluster &C : HA.ComClusters) {
    ComMembers.insert(C.Load);
    ComMembers.insert(C.Store);
    ComMembers.insert(C.Combine);
    if (C.Cmp)
      ComMembers.insert(C.Cmp);
  }

  Inserter Ins;
  for (Instruction *I : instrumentationScope(L, FA)) {
    bool IsLoad = I->opcode() == Opcode::Load;
    bool IsStore = I->opcode() == Opcode::Store;
    if (!IsLoad && !IsStore)
      continue;
    const std::set<ObjectKey> &Objs = P.objectsAccessedBy(I);
    if (Objs.empty())
      continue; // Never executed during training (cold path).

    std::set<HeapKind> Kinds;
    for (const ObjectKey &O : Objs) {
      auto It = HA.ObjectHeaps.find(O);
      if (It == HA.ObjectHeaps.end()) {
        Stats.Errors.push_back("access %" + I->name() +
                               " touches an unclassified object " + O.str());
        continue;
      }
      Kinds.insert(It->second);
    }
    if (Kinds.size() != 1) {
      Stats.Errors.push_back(
          "access touches objects from several heaps (speculative "
          "separation would always fail)");
      continue;
    }
    HeapKind K = *Kinds.begin();
    Value *Ptr = I->operand(IsLoad ? 0 : 1);

    if (K == HeapKind::Commutative) {
      if (!ComMembers.count(I))
        Stats.Errors.push_back(
            "access %" + I->name() +
            " touches a commutative object outside a recognized cluster");
      continue;
    }
    if (K == HeapKind::Private) {
      // DOACROSS fallback loads read private-heap bytes that the
      // forwarding select discards for in-loop targets; validating them
      // would misspeculate on garbage that is never used.
      if (HA.PrivacyElides.count(I)) {
        ++Stats.PrivacyChecksElided;
        continue;
      }
      // private_read / private_write validate the heap tag themselves, so
      // no separate separation check is needed (§5.1: the privacy check's
      // tag test doubles as the separation check).
      Ins.before(I, makePrivacyCheck(IsLoad, Ptr, I->accessBytes()));
      ++Stats.PrivacyChecks;
      continue;
    }
    if (provablyInHeap(Ptr, K)) {
      ++Stats.SeparationChecksElided;
      continue;
    }
    Ins.before(I, makeHeapCheck(Ptr, K));
    ++Stats.SeparationChecks;
  }
  if (!Stats.ok())
    return Stats;

  // --- Commutative-cluster rewrite: load-op-store -> comupdate. -----------
  // The update's operands (the folded-in value and the pointer) dominate
  // the store by SSA dominance through the single-use chain, so inserting
  // at the store's position is always legal.
  for (const ComCluster &C : HA.ComClusters) {
    auto *Store = const_cast<Instruction *>(C.Store);
    auto CU = std::make_unique<Instruction>(Opcode::ComUpdate, Type::Void);
    CU->setComOp(C.Op);
    CU->addOperand(C.X);
    CU->addOperand(Store->operand(1));
    CU->setAccessBytes(Store->accessBytes());
    Ins.before(Store, std::move(CU));
    ++Stats.ComUpdatesInstalled;
  }

  // --- Value prediction (§4.3 refinement; Figure 2b lines 78-80). --------
  if (!HA.Predictions.empty()) {
    BasicBlock *Header = L.header();
    Instruction *HeaderTerm = Header->terminator();
    BasicBlock *BodyEntry = HeaderTerm->blockRef(0);

    for (const ValuePrediction &VP : HA.Predictions) {
      auto *G = const_cast<GlobalVariable *>(VP.Global);

      // Prologue: define the predicted value, making later reads
      // intra-iteration flow.
      size_t Lead = 0;
      while (Lead < BodyEntry->instructions().size() &&
             BodyEntry->instructions()[Lead]->opcode() == Opcode::Phi)
        ++Lead;
      Value *Addr = G;
      if (VP.Offset != 0) {
        auto Gep = std::make_unique<Instruction>(Opcode::Gep, Type::Ptr,
                                                 "vp.addr");
        Gep->addOperand(G);
        Gep->addOperand(M.constInt(static_cast<int64_t>(VP.Offset)));
        Addr = BodyEntry->insertAt(Lead++, std::move(Gep));
      }
      BodyEntry->insertAt(Lead++,
                          makePrivacyCheck(/*IsRead=*/false, Addr, VP.Bytes));
      auto St = std::make_unique<Instruction>(Opcode::Store, Type::Void);
      St->addOperand(M.constInt(VP.Value));
      St->addOperand(Addr);
      St->setAccessBytes(VP.Bytes);
      BodyEntry->insertAt(Lead++, std::move(St));

      // Epilogue in every latch: validate the prediction holds for the
      // next iteration's live-in.
      for (BasicBlock *Latch : L.latches()) {
        size_t Term = Latch->indexOf(Latch->terminator());
        Value *LatchAddr = G;
        if (VP.Offset != 0) {
          auto Gep = std::make_unique<Instruction>(Opcode::Gep, Type::Ptr,
                                                   "vp.check.addr");
          Gep->addOperand(G);
          Gep->addOperand(M.constInt(static_cast<int64_t>(VP.Offset)));
          LatchAddr = Latch->insertAt(Term++, std::move(Gep));
        }
        Latch->insertAt(Term++, makePrivacyCheck(/*IsRead=*/true, LatchAddr,
                                                 VP.Bytes));
        auto Ld = std::make_unique<Instruction>(Opcode::Load, Type::I64,
                                                "vp.check");
        Ld->addOperand(LatchAddr);
        Ld->setAccessBytes(VP.Bytes);
        Instruction *LdI = Latch->insertAt(Term++, std::move(Ld));
        auto Spec =
            std::make_unique<Instruction>(Opcode::SpeculateEq, Type::Void);
        Spec->addOperand(LdI);
        Spec->addOperand(M.constInt(VP.Value));
        Latch->insertAt(Term++, std::move(Spec));
      }
      ++Stats.PredictionsInstalled;
    }
  }

  Ins.apply();

  // Delete the replaced cluster instructions (back-to-front per block so
  // recorded indices stay valid).  Their only uses were inside the
  // cluster, so nothing dangles.
  std::map<BasicBlock *, std::vector<size_t>> Removals;
  for (const ComCluster &C : HA.ComClusters)
    for (const Instruction *Dead :
         {C.Store, C.Combine, C.Cmp, C.Load}) {
      if (!Dead)
        continue;
      BasicBlock *B = Dead->parent();
      Removals[B].push_back(B->indexOf(Dead));
    }
  for (auto &[B, Idxs] : Removals) {
    std::sort(Idxs.begin(), Idxs.end(), std::greater<size_t>());
    for (size_t Idx : Idxs)
      B->removeAt(Idx);
  }
  return Stats;
}

bool transform::isDoallReady(const Loop &L, const FunctionAnalyses &FA,
                             std::vector<std::string> &WhyNot) {
  const Cfg &C = FA.cfg(L.header()->parent());
  auto Iv = L.canonicalIv(C);
  if (!Iv) {
    WhyNot.push_back("no canonical induction variable");
    return false;
  }
  // The IV must be the only loop-carried phi.
  for (const auto &I : L.header()->instructions()) {
    if (I->opcode() != Opcode::Phi)
      break;
    if (I.get() != Iv->Phi) {
      WhyNot.push_back("loop-carried phi %" + I->name() +
                       " besides the induction variable");
      return false;
    }
  }
  // No SSA value defined in the loop may be used outside it (live-outs
  // must flow through memory, which privatization handles).
  const Function *F = L.header()->parent();
  bool Ok = true;
  for (const auto &B : F->blocks()) {
    if (L.contains(B.get()))
      continue;
    for (const auto &I : B->instructions())
      for (Value *Op : I->operands()) {
        if (Op->kind() != ValueKind::Instruction)
          continue;
        auto *Def = static_cast<Instruction *>(Op);
        if (L.contains(Def) && Def != Iv->Phi) {
          WhyNot.push_back("value %" + Def->name() +
                           " defined in the loop is used outside it");
          Ok = false;
        }
      }
  }
  return Ok;
}
