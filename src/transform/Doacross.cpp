//===- transform/Doacross.cpp ---------------------------------------------===//

#include "transform/Doacross.h"

using namespace privateer;
using namespace privateer::transform;
using namespace privateer::analysis;
using namespace privateer::ir;

namespace {

/// Replaces every operand use of \p From in \p F with \p To, except in
/// \p Keep (the select that reads the original value as its fallback arm).
void replaceUses(Function &F, Value *From, Value *To,
                 const Instruction *Keep) {
  for (const auto &B : F.blocks())
    for (const auto &I : B->instructions()) {
      if (I.get() == From || I.get() == Keep)
        continue;
      for (unsigned A = 0; A < I->numOperands(); ++A)
        if (I->operand(A) == From)
          I->setOperand(A, To);
    }
}

std::unique_ptr<Instruction> makeWaitDep(Value *Iter, uint32_t Chan,
                                         std::string Name) {
  auto W = std::make_unique<Instruction>(Opcode::WaitDep, Type::I64,
                                         std::move(Name));
  W->addOperand(Iter);
  W->setAccessBytes(Chan);
  return W;
}

std::unique_ptr<Instruction> makePostDep(Value *Iter, Value *V,
                                         uint32_t Chan) {
  auto P = std::make_unique<Instruction>(Opcode::PostDep, Type::Void);
  P->addOperand(Iter);
  P->addOperand(V);
  P->setAccessBytes(Chan);
  return P;
}

} // namespace

DoacrossStats transform::applyDoacross(Module &M, const DoacrossPlan &Plan) {
  DoacrossStats Stats;
  if (!Plan.TheLoop) {
    Stats.Errors.push_back("doacross plan has no loop");
    return Stats;
  }
  const Loop &L = *Plan.TheLoop;
  Function &F = *L.header()->parent();
  Instruction *Iv = Plan.Iv.Phi;
  Value *Begin = Plan.Iv.Begin;
  BasicBlock *BodyEntry = L.header()->terminator()->blockRef(0);
  BasicBlock *Latch = L.latches().empty() ? nullptr : L.latches().front();
  if (!Latch || !L.contains(BodyEntry)) {
    Stats.Errors.push_back("doacross plan lost its loop shape");
    return Stats;
  }
  Stats.Channels = Plan.NumChannels;

  // --- Scalar recurrences. ------------------------------------------------
  // Insert every carry's forwarding code first, then reroute uses, then
  // delete the phis: one carry's latch-incoming value may be another
  // carried phi, and the postdep referencing it must be rerouted to that
  // phi's select before the phi dies.
  size_t Pos = 0;
  while (Pos < BodyEntry->instructions().size() &&
         BodyEntry->instructions()[Pos]->opcode() == Opcode::Phi)
    ++Pos;
  std::vector<std::pair<Instruction *, Instruction *>> Retired; // phi, sel
  for (const ScalarCarry &SC : Plan.Scalars) {
    std::string Tag = "dx" + std::to_string(SC.Channel);

    auto First = std::make_unique<Instruction>(Opcode::ICmp, Type::I64,
                                               Tag + ".first");
    First->setCmpPred(CmpPred::Eq);
    First->addOperand(Iv);
    First->addOperand(Begin);
    Instruction *FirstI = BodyEntry->insertAt(Pos++, std::move(First));

    auto Prev =
        std::make_unique<Instruction>(Opcode::Sub, Type::I64, Tag + ".prev");
    Prev->addOperand(Iv);
    Prev->addOperand(M.constInt(1));
    Instruction *PrevI = BodyEntry->insertAt(Pos++, std::move(Prev));

    Instruction *TokI = BodyEntry->insertAt(
        Pos++, makeWaitDep(PrevI, SC.Channel, Tag + ".tok"));

    auto Sel = std::make_unique<Instruction>(Opcode::Select, Type::I64,
                                             Tag + ".carry");
    Sel->addOperand(FirstI);
    Sel->addOperand(SC.Init);
    Sel->addOperand(TokI);
    Instruction *SelI = BodyEntry->insertAt(Pos++, std::move(Sel));

    // Post the next iteration's live-in where every iteration passes.
    Latch->insertAt(Latch->indexOf(Latch->terminator()),
                    makePostDep(Iv, SC.Next, SC.Channel));

    Retired.push_back({SC.Phi, SelI});
    ++Stats.ScalarCarries;
  }
  for (const auto &[Phi, Sel] : Retired)
    replaceUses(F, Phi, Sel, nullptr);
  for (const auto &[Phi, Sel] : Retired) {
    (void)Sel;
    L.header()->removeAt(L.header()->indexOf(Phi));
  }

  // --- Array recurrences. -------------------------------------------------
  std::set<const Instruction *> Posted;
  for (const ArrayCarry &AC : Plan.Arrays) {
    std::string Tag = "da" + std::to_string(AC.Channel);
    BasicBlock *B = AC.Load->parent();

    auto Pre =
        std::make_unique<Instruction>(Opcode::ICmp, Type::I64, Tag + ".pre");
    Pre->setCmpPred(CmpPred::Lt);
    Pre->addOperand(AC.TargetIter);
    Pre->addOperand(Begin);
    Instruction *PreI =
        B->insertAt(B->indexOf(AC.Load), std::move(Pre));

    Instruction *TokI =
        B->insertAt(B->indexOf(AC.Load) + 1,
                    makeWaitDep(AC.TargetIter, AC.Channel, Tag + ".tok"));

    auto Sel = std::make_unique<Instruction>(Opcode::Select, Type::I64,
                                             Tag + ".fwd");
    Sel->addOperand(PreI);
    Sel->addOperand(AC.Load);
    Sel->addOperand(TokI);
    Instruction *SelI =
        B->insertAt(B->indexOf(TokI) + 1, std::move(Sel));

    replaceUses(F, AC.Load, SelI, SelI);

    if (Posted.insert(AC.Store).second) {
      BasicBlock *SB = AC.Store->parent();
      SB->insertAt(SB->indexOf(AC.Store) + 1,
                   makePostDep(Iv, AC.Store->operand(0), AC.Channel));
    }
    ++Stats.ArrayCarries;
  }

  return Stats;
}
