//===- perfmodel/PerfModel.h - Multicore execution model --------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A discrete-event model of Privateer's parallel execution on a W-core
/// shared-memory machine, standing in for the paper's 24-core Xeon X7460
/// testbed (this reproduction host has a single core; see DESIGN.md
/// substitution #2).
///
/// Calibration has two halves:
///  - per-workload *counts* (useful seconds per iteration, private
///    read/write calls and bytes per iteration, checkpoint footprint) come
///    from real sequential and single-worker speculative executions;
///  - per-primitive *costs* (Table 2 transition per byte, check-call
///    overhead, fork/join latency) come from microbenchmarks on this host.
///
/// Because the bundled synthetic inputs are orders of magnitude smaller
/// than the paper's reference inputs (whose hot loops run for minutes),
/// the model replays the measured iteration mix enough times to reach a
/// reference-scale hot-loop duration; otherwise fork latency — amortized
/// to nothing in the paper's runs — would dominate microsecond loops.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_PERFMODEL_PERFMODEL_H
#define PRIVATEER_PERFMODEL_PERFMODEL_H

#include "workloads/Workload.h"

#include <string>

namespace privateer {

/// Host-level primitive costs, independent of workload.
struct MachineModel {
  /// Wall seconds to spawn a parallel region: Spawn(W) = SpawnBaseSec +
  /// W * SpawnPerWorkerSec ("mostly determined by the latency of the
  /// operating system's implementation of fork").
  double SpawnBaseSec = 1.5e-3;
  double SpawnPerWorkerSec = 0.4e-3;
  double JoinBaseSec = 0.5e-3;
  /// Fixed overhead of one private_read/private_write call (tag test,
  /// shadow-address OR, call).
  double PrivCallSec = 5e-9;
  /// Per-byte Table 2 transition cost on read / write.
  double PrivReadByteSec = 1e-9;
  double PrivWriteByteSec = 1e-9;
  /// Checkpoint cost of one side of a period (worker merge, or the main
  /// process's ordered commit): CheckpointFixedSec + DirtyBytes *
  /// CheckpointDirtyByteSec.  DirtyBytes is the bytes of dirty 4 KiB
  /// chunks walked — since the sparse slot re-layout this tracks the
  /// period's touched working set, not the private footprint.
  double CheckpointFixedSec = 2e-6;
  double CheckpointDirtyByteSec = 0.5e-9;

  /// Measures every field with real fork/join epochs and tight loops over
  /// the shipping validation code on this host.
  static MachineModel calibrate();
};

/// Per-workload parameters measured from real executions.
struct WorkloadModel {
  std::string Name;
  uint64_t Invocations = 1;
  uint64_t ItersPerInvocation = 0; ///< After reference scaling.
  uint64_t MeasuredIters = 0;      ///< As actually executed on this host.
  /// Average seconds of *original* (useful) work per hot-loop iteration.
  double SeqIterSec = 0;
  /// Validation work per iteration (counts; priced by MachineModel).
  double PrivReadCallsPerIter = 0;
  double PrivReadBytesPerIter = 0;
  double PrivWriteCallsPerIter = 0;
  double PrivWriteBytesPerIter = 0;
  /// Checkpoint merge/commit wall cost per period as directly measured;
  /// fallback when the dirty-byte telemetry below is absent.
  double MergeSecPerPeriod = 0;
  double CommitSecPerPeriod = 0;
  /// Dirty-chunk telemetry from the measuring run: bytes of dirty chunks
  /// walked per period by one side (merge or commit), and the private
  /// footprint they are sparse against.  Zero for hand-built models.
  double DirtyBytesPerPeriod = 0;
  double DirtyChunksPerPeriod = 0;
  uint64_t FootprintBytes = 0;
  /// Coefficient of variation of iteration latency; drives the worker
  /// imbalance the paper's Join overhead reflects (§6.2).
  double IterCov = 0.05;
  /// Fraction of whole-program time inside the Privateer-parallelized
  /// loop(s); the remainder stays sequential (Amdahl term).
  double Coverage = 0.99;
  DoallOnlyShape Doall;

  /// Per-iteration validation cost under \p M.
  double privReadSecPerIter(const MachineModel &M) const {
    return PrivReadCallsPerIter * M.PrivCallSec +
           PrivReadBytesPerIter * M.PrivReadByteSec;
  }
  double privWriteSecPerIter(const MachineModel &M) const {
    return PrivWriteCallsPerIter * M.PrivCallSec +
           PrivWriteBytesPerIter * M.PrivWriteByteSec;
  }

  /// Checkpoint cost per period for one side, keyed on the measured dirty
  /// bytes when the runtime reported them; hand-built models without
  /// telemetry fall back to the directly measured wall costs.
  double mergeSecPerPeriod(const MachineModel &M) const {
    if (DirtyBytesPerPeriod > 0)
      return M.CheckpointFixedSec +
             DirtyBytesPerPeriod * M.CheckpointDirtyByteSec;
    return MergeSecPerPeriod;
  }
  double commitSecPerPeriod(const MachineModel &M) const {
    if (DirtyBytesPerPeriod > 0)
      return M.CheckpointFixedSec +
             DirtyBytesPerPeriod * M.CheckpointDirtyByteSec;
    return CommitSecPerPeriod;
  }

  /// Whole-program best-sequential seconds at model scale.
  double totalSequentialSec() const {
    double Hot = SeqIterSec * static_cast<double>(ItersPerInvocation) *
                 static_cast<double>(Invocations);
    return Hot / Coverage;
  }

  /// Builds the model by running \p W sequentially (useful time) and with
  /// one speculative worker (counts), then scales the iteration count so
  /// the simulated hot loop lasts about \p TargetHotSec — a
  /// reference-input-sized run.  The runtime must be uninitialized on
  /// entry and is left uninitialized.
  static WorkloadModel measure(Workload &W, uint64_t CheckpointPeriod = 64,
                               double TargetHotSec = 30.0);
};

struct SimOptions {
  unsigned Workers = 24;
  /// "Checkpoints are only collected and validated after a large number
  /// of iterations" (§3.2); the paper's ceiling is 253.
  uint64_t CheckpointPeriod = 200;
  /// Fraction of iterations that misspeculate (Figure 9 injection).
  double MisspecRate = 0.0;
  uint64_t Seed = 7;
  /// Model the runtime's in-epoch commit pump: each slot's commit starts
  /// as soon as its last merge lands (pipelined behind the previous
  /// commit), so only the part of the commit stream that outlives the
  /// slowest worker shows up as end-of-epoch tail.  Off reproduces the
  /// join-then-commit serial tail of the paper's literal §5.2 sequence.
  bool EagerCommit = true;
};

/// Capacity accounting in the units of paper Figure 8: CPU-seconds of the
/// parallel region, normalized against Workers x wall duration.
struct SimBreakdown {
  double WallSec = 0;     ///< Parallel-region wall time (all invocations).
  double UsefulSec = 0;   ///< Original-program instructions.
  double PrivReadSec = 0; ///< Metadata updates for private reads.
  double PrivWriteSec = 0;
  double CheckpointSec = 0; ///< Collect + validate + combine.
  double SpawnJoinSec = 0;  ///< Spawn latency, imbalance, final join.
  double RecoverySec = 0;   ///< Sequential re-execution after misspec.
  uint64_t Misspecs = 0;

  double capacitySec(unsigned Workers) const {
    return WallSec * static_cast<double>(Workers);
  }
};

/// Simulates the speculative Privateer execution (Figures 6, 8, 9).
SimBreakdown simulatePrivateer(const MachineModel &M, const WorkloadModel &W,
                               const SimOptions &Opt);

/// Whole-program speedup of the Privateer execution vs best sequential.
double privateerSpeedup(const MachineModel &M, const WorkloadModel &W,
                        const SimOptions &Opt);

/// Whole-program speedup of the non-speculative DOALL-only baseline
/// (Figure 7): parallelizes only what static analysis can prove.
double doallOnlySpeedup(const MachineModel &M, const WorkloadModel &W,
                        unsigned Workers);

} // namespace privateer

#endif // PRIVATEER_PERFMODEL_PERFMODEL_H
