//===- perfmodel/PerfModel.cpp --------------------------------------------===//

#include "perfmodel/PerfModel.h"

#include "runtime/Checkpoint.h"
#include "runtime/Runtime.h"
#include "runtime/ShadowMetadata.h"
#include "support/DeterministicRng.h"
#include "support/Timing.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <unistd.h>

using namespace privateer;

namespace {

/// Replica of the privateRead/privateWrite fast paths (tag test + the
/// shipping range-transition loops), used to price a check without
/// instrumenting the shipping code.
__attribute__((noinline)) bool
checkReplicaRead(uint64_t Addr, uint8_t *ShadowBase, size_t Bytes,
                 uint8_t Ts) {
  if (!addressInHeap(Addr, HeapKind::Private))
    return false;
  return shadow::applyReadRange(ShadowBase + (Addr & 0xfffff), Bytes, Ts);
}

__attribute__((noinline)) bool
checkReplicaWrite(uint64_t Addr, uint8_t *ShadowBase, size_t Bytes,
                  uint8_t Ts) {
  if (!addressInHeap(Addr, HeapKind::Private))
    return false;
  return shadow::applyWriteRange(ShadowBase + (Addr & 0xfffff), Bytes, Ts);
}

/// Times Fn(bytes) over many calls; returns seconds per call.
template <typename Fn> double timePerCall(Fn F, int Calls) {
  // Warm up, then take the best of three trials to dodge scheduler noise.
  F();
  double Best = 1e9;
  for (int Trial = 0; Trial < 3; ++Trial) {
    double T0 = cpuSeconds();
    for (int I = 0; I < Calls; ++I)
      F();
    Best = std::min(Best, (cpuSeconds() - T0) / Calls);
  }
  return Best;
}

} // namespace

MachineModel MachineModel::calibrate() {
  MachineModel M;

  // --- Check-primitive costs: solve Call + B*Byte from two sizes. -------
  std::vector<uint8_t> Shadow(1u << 20, shadow::kLiveIn);
  uint64_t Addr = heapBase(HeapKind::Private) + 64;
  uint8_t Ts = shadow::timestampFor(3, 0);
  auto Price = [&](bool IsRead) {
    auto Run = [&](size_t Bytes) {
      return timePerCall(
          [&] {
            // Write first so reads see current-timestamp bytes (no
            // misspec), mirroring steady-state program behavior.
            checkReplicaWrite(Addr, Shadow.data(), Bytes, Ts);
            if (IsRead)
              checkReplicaRead(Addr, Shadow.data(), Bytes, Ts);
          },
          200000);
    };
    double C8 = Run(8);
    double C64 = Run(64);
    double PerByte = std::max(1e-11, (C64 - C8) / 56.0);
    double PerCall = std::max(1e-10, C8 - 8 * PerByte);
    if (IsRead) {
      // The loop above ran a write+read pair; halve to approximate one.
      PerByte /= 2;
      PerCall /= 2;
    }
    return std::pair<double, double>(PerCall, PerByte);
  };
  auto [WCall, WByte] = Price(false);
  auto [RCall, RByte] = Price(true);
  M.PrivCallSec = (RCall + WCall) / 2;
  M.PrivReadByteSec = RByte;
  M.PrivWriteByteSec = WByte;

  // --- Checkpoint costs: solve Fixed + DirtyBytes*PerByte by running the
  // shipping merge+commit on a real sparse region at two dirty working
  // sets.  Region create/destroy is timed separately and subtracted: it
  // happens once per epoch, not once per period. --------------------------
  {
    const uint64_t Footprint = 4u << 20;
    const uint64_t Chunks = dirtyChunkCount(Footprint);
    ReductionRegistry NoRedux;
    std::vector<uint8_t> LocalShadow(Footprint, shadow::kLiveIn);
    std::vector<uint8_t> LocalPriv(Footprint, 0x5a);
    std::vector<uint8_t> MasterShadow(Footprint, shadow::kLiveIn);
    std::vector<uint8_t> MasterPriv(Footprint, 0);
    std::vector<uint64_t> Mask(dirtyMaskWords(Chunks), 0);
    CheckpointRegion::Config C;
    C.NumSlots = 1;
    C.PrivateBytes = Footprint;
    C.ReduxBytes = 0;
    C.IoCapacity = 4096;
    C.Period = 64;
    C.EpochIters = 64;
    C.NumWorkers = 1;
    MergeContext Ctx;
    Ctx.SelfPid = static_cast<uint32_t>(getpid());
    uint8_t CkTs = shadow::timestampFor(3, 0);
    auto RoundTrip = [&](uint64_t Dirty, int Calls) {
      std::fill(Mask.begin(), Mask.end(), 0);
      std::fill(LocalShadow.begin(), LocalShadow.end(), shadow::kLiveIn);
      for (uint64_t Ch = 0; Ch < Dirty; ++Ch) {
        uint64_t Off = Ch * kDirtyChunkBytes;
        std::fill(LocalShadow.begin() + Off,
                  LocalShadow.begin() + Off + kDirtyChunkBytes, CkTs);
        markDirtyChunks(Mask.data(), Chunks, Off, kDirtyChunkBytes);
      }
      return timePerCall(
          [&] {
            CheckpointRegion R;
            if (!R.create(C))
              return;
            std::vector<IoRecord> Io;
            std::vector<ComRecord> Com;
            std::string Why;
            R.workerMerge(0, LocalShadow.data(), LocalPriv.data(),
                          Mask.data(), NoRedux, 0, Io, Com, true, Ctx);
            R.commitSlot(0, MasterShadow.data(), MasterPriv.data(), NoRedux,
                         0, 0, 0, Io, Why);
            R.destroy();
          },
          Calls);
    };
    double Create = timePerCall(
        [&] {
          CheckpointRegion R;
          if (R.create(C))
            R.destroy();
        },
        400);
    const uint64_t D1 = 8, D2 = 128;
    double T1 = RoundTrip(D1, 200);
    double T2 = RoundTrip(D2, 60);
    double Slope = std::max(
        1e-11, (T2 - T1) / (static_cast<double>((D2 - D1) * kDirtyChunkBytes)));
    double Fixed = std::max(
        1e-8, T1 - Create - static_cast<double>(D1 * kDirtyChunkBytes) * Slope);
    // The round trip runs both sides (merge then commit); halve for one.
    M.CheckpointDirtyByteSec = Slope / 2;
    M.CheckpointFixedSec = Fixed / 2;
  }

  // --- Fork/join latency from real empty epochs. -------------------------
  Runtime &Rt = Runtime::get();
  RuntimeConfig Small;
  Small.PrivateBytes = 1u << 16;
  Small.ReadOnlyBytes = 1u << 16;
  Small.ReduxBytes = 1u << 16;
  Small.ShortLivedBytes = 1u << 16;
  Small.UnrestrictedBytes = 1u << 16;
  Rt.initialize(Small);
  auto EpochWall = [&](unsigned Workers) {
    ParallelOptions Opt;
    Opt.NumWorkers = Workers;
    Opt.CheckpointPeriod = 64;
    Opt.ProtectReadOnly = false;
    double Best = 1e9;
    for (int Rep = 0; Rep < 3; ++Rep) {
      InvocationStats S = Rt.runParallel(Workers, Opt, [](uint64_t) {});
      Best = std::min(Best, S.WallSec);
    }
    return Best;
  };
  double W1 = EpochWall(1);
  double W4 = EpochWall(4);
  M.SpawnPerWorkerSec = std::max(1e-5, (W4 - W1) / 3.0);
  M.SpawnBaseSec = std::max(1e-5, W1 - M.SpawnPerWorkerSec);
  M.JoinBaseSec = M.SpawnBaseSec * 0.3;
  Rt.shutdown();
  return M;
}

WorkloadModel WorkloadModel::measure(Workload &W, uint64_t CheckpointPeriod,
                                     double TargetHotSec) {
  WorkloadModel Model;
  Model.Name = W.name();
  Model.Invocations = W.invocations();
  Model.Doall = W.doallOnly();

  Runtime &Rt = Runtime::get();
  double MeasuredIters = static_cast<double>(Model.Invocations) *
                         static_cast<double>(W.iterationsPerInvocation());
  Model.MeasuredIters = static_cast<uint64_t>(MeasuredIters);

  // Useful time per iteration from a plain sequential run (checks no-op).
  Rt.initialize(W.runtimeConfig());
  W.setUp();
  double SeqSec = 0;
  runWorkloadSequential(W, &SeqSec);
  W.tearDown();
  Rt.shutdown();
  Model.SeqIterSec = SeqSec / MeasuredIters;

  // Validation counts and checkpoint costs from a one-worker speculative
  // run.
  Rt.initialize(W.runtimeConfig());
  W.setUp();
  ParallelOptions Opt;
  Opt.NumWorkers = 1;
  Opt.CheckpointPeriod = CheckpointPeriod;
  InvocationStats S;
  runWorkloadParallel(W, Opt, &S);
  W.tearDown();
  Rt.shutdown();

  Model.PrivReadCallsPerIter = S.PrivateReadCalls / MeasuredIters;
  Model.PrivReadBytesPerIter = S.PrivateReadBytes / MeasuredIters;
  Model.PrivWriteCallsPerIter = S.PrivateWriteCalls / MeasuredIters;
  Model.PrivWriteBytesPerIter = S.PrivateWriteBytes / MeasuredIters;
  double Periods = std::max<double>(1.0, static_cast<double>(S.Checkpoints));
  Model.MergeSecPerPeriod = S.CheckpointSec / Periods;
  // The main process's ordered commit scans the same byte ranges the
  // worker-side merge does; model it as an equal cost.
  Model.CommitSecPerPeriod = Model.MergeSecPerPeriod;
  // Dirty-chunk telemetry keys the checkpoint cost term on the period's
  // touched working set.  The runtime counters sum the merge-side and
  // commit-side walks over the same chunks, so halve for one side.
  Model.DirtyBytesPerPeriod =
      static_cast<double>(S.CheckpointBytesScanned + S.CheckpointBytesSkipped) /
      (2.0 * Periods);
  Model.DirtyChunksPerPeriod =
      static_cast<double>(S.CheckpointDirtyChunks) / (2.0 * Periods);
  Model.FootprintBytes = S.PrivateFootprintBytes;

  // Reference-input scaling: replay the measured iteration mix until the
  // hot loop lasts ~TargetHotSec in total, as the paper's ref inputs do.
  double HotSec = Model.SeqIterSec * MeasuredIters;
  double Scale = std::clamp(TargetHotSec / std::max(HotSec, 1e-9), 1.0,
                            5e6);
  Model.ItersPerInvocation = static_cast<uint64_t>(
      static_cast<double>(W.iterationsPerInvocation()) * Scale);

  // Program-specific shape parameters (paper §6.1-6.2): iteration-latency
  // imbalance drives Join overhead; coverage is the Amdahl remainder.
  if (Model.Name == "alvinn") {
    Model.Coverage = 0.95;
    Model.IterCov = 0.45; // "052.alvinn ... waste[s] significant time
                          // joining their workers" (imbalance).
  } else if (Model.Name == "dijkstra") {
    Model.Coverage = 0.99;
    Model.IterCov = 0.50; // Queue work varies strongly per source.
  } else if (Model.Name == "enc-md5") {
    Model.Coverage = 0.98;
    Model.IterCov = 0.05;
  } else {
    Model.Coverage = 0.99;
    Model.IterCov = 0.10;
  }
  return Model;
}

SimBreakdown privateer::simulatePrivateer(const MachineModel &M,
                                          const WorkloadModel &W,
                                          const SimOptions &Opt) {
  SimBreakdown B;
  unsigned Workers = Opt.Workers;
  uint64_t K = std::max<uint64_t>(1, Opt.CheckpointPeriod);
  double PrivR = W.privReadSecPerIter(M);
  double PrivW = W.privWriteSecPerIter(M);
  double MergeP = W.mergeSecPerPeriod(M);
  double CommitP = W.commitSecPerPeriod(M);
  double IterCost = W.SeqIterSec + PrivR + PrivW;
  DeterministicRng Rng(Opt.Seed);

  for (uint64_t Inv = 0; Inv < W.Invocations; ++Inv) {
    uint64_t N = W.ItersPerInvocation;
    uint64_t Next = 0;
    while (Next < N) {
      // --- One fork/join epoch over [Next, N). -------------------------
      double SpawnSec = M.SpawnBaseSec + Workers * M.SpawnPerWorkerSec;
      B.SpawnJoinSec += SpawnSec * Workers; // Capacity idled while forking.

      std::vector<double> Clock(Workers, SpawnSec);
      uint64_t NumPeriods = (N - Next + K - 1) / K;
      bool Misspec = false;
      uint64_t MisspecPeriod = 0;
      uint64_t Committed = Next;
      double SlotCommitWall = 0;
      // Eager pump: the main process's commit pipeline.  Slot P's commit
      // begins when its last merge lands and the previous commit is done.
      double CommitClock = SpawnSec;

      for (uint64_t P = 0; P < NumPeriods && !Misspec; ++P) {
        uint64_t PeriodStart = Next + P * K;
        uint64_t PeriodIters = std::min(K, N - PeriodStart);

        // Does any iteration of this period misspeculate?
        if (Opt.MisspecRate > 0) {
          double PAll = std::pow(1.0 - Opt.MisspecRate,
                                 static_cast<double>(PeriodIters));
          if (Rng.nextDouble() > PAll) {
            Misspec = true;
            MisspecPeriod = P;
          }
        }

        // Workers execute their cyclic shares (with per-worker latency
        // imbalance), then serialize on the slot lock to merge.
        double SlotFree = 0;
        for (unsigned Wk = 0; Wk < Workers; ++Wk) {
          uint64_t Share = PeriodIters / Workers +
                           (Wk < PeriodIters % Workers ? 1 : 0);
          double Skew = 1.0 + W.IterCov * (2.0 * Rng.nextDouble() - 1.0);
          double Work = static_cast<double>(Share) * IterCost * Skew;
          Clock[Wk] += Work;
          B.UsefulSec +=
              static_cast<double>(Share) * W.SeqIterSec * Skew;
          B.PrivReadSec += static_cast<double>(Share) * PrivR * Skew;
          B.PrivWriteSec += static_cast<double>(Share) * PrivW * Skew;
          if (Misspec && P == MisspecPeriod)
            continue; // Squashed: no merge for the failing period.
          double MergeStart = std::max(SlotFree, Clock[Wk]);
          B.SpawnJoinSec += MergeStart - Clock[Wk]; // Lock wait is idle.
          Clock[Wk] = MergeStart + MergeP;
          SlotFree = Clock[Wk];
          B.CheckpointSec += MergeP;
        }
        if (!Misspec || P != MisspecPeriod) {
          Committed = PeriodStart + PeriodIters;
          if (Opt.EagerCommit)
            CommitClock = std::max(CommitClock, SlotFree) + CommitP;
          else
            SlotCommitWall += CommitP;
          B.CheckpointSec += CommitP;
        }
      }

      double Last = *std::max_element(Clock.begin(), Clock.end());
      // Straggler imbalance: capacity other workers idle while the last
      // one finishes ("Join ... imbalance among the workers").
      for (double C : Clock)
        B.SpawnJoinSec += Last - C;
      // With the pump, only the commit stream's overhang past the slowest
      // worker stalls the join; commits hidden under execution cost no
      // worker capacity (they run in the otherwise-idle main process).
      double CommitTail = Opt.EagerCommit
                              ? std::max(0.0, CommitClock - Last)
                              : SlotCommitWall;
      double EpochWall = Last + CommitTail + M.JoinBaseSec;
      B.SpawnJoinSec += (CommitTail + M.JoinBaseSec) * Workers;
      B.WallSec += EpochWall;

      if (!Misspec) {
        Next = N;
        continue;
      }

      // Recovery: sequential re-execution through the squashed period.
      ++B.Misspecs;
      uint64_t RecoveryEnd = std::min(N, Next + (MisspecPeriod + 1) * K);
      double RecoverSec =
          static_cast<double>(RecoveryEnd - Committed) * W.SeqIterSec;
      B.RecoverySec += RecoverSec;
      B.WallSec += RecoverSec;
      B.SpawnJoinSec += RecoverSec * (Workers - 1); // Others idle.
      B.UsefulSec += RecoverSec;
      Next = RecoveryEnd;
    }
  }
  return B;
}

double privateer::privateerSpeedup(const MachineModel &M,
                                   const WorkloadModel &W,
                                   const SimOptions &Opt) {
  SimBreakdown B = simulatePrivateer(M, W, Opt);
  double SeqTotal = W.totalSequentialSec();
  double SeqPart = SeqTotal - SeqTotal * W.Coverage;
  double ParallelTotal = SeqPart + B.WallSec;
  return SeqTotal / ParallelTotal;
}

double privateer::doallOnlySpeedup(const MachineModel &M,
                                   const WorkloadModel &W, unsigned Workers) {
  const DoallOnlyShape &D = W.Doall;
  if (!D.Parallelizable)
    return 1.0;
  double SeqTotal = W.totalSequentialSec();
  double ParallelPart = SeqTotal * D.ParallelFraction;
  double SpawnSec =
      (M.SpawnBaseSec + Workers * M.SpawnPerWorkerSec + M.JoinBaseSec) *
      static_cast<double>(D.Invocations);
  double ParallelTotal =
      (SeqTotal - ParallelPart) + ParallelPart / Workers + SpawnSec;
  return SeqTotal / ParallelTotal;
}
