//===- interp/Semantics.h - Defined IR arithmetic semantics -----*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single definition of the IR's arithmetic edge-case semantics, shared
/// by the tree-walking interpreter and the bytecode VM.  The interpreter is
/// the differential oracle for the compiled tier, so "whatever the host CPU
/// or C++ compiler does" is not an acceptable answer anywhere the two could
/// legally diverge:
///
///  - add/sub/mul/shl wrap modulo 2^64 (computed on uint64_t; signed
///    overflow in C++ is UB and hardware-dependent under optimization);
///  - sdiv/srem define INT64_MIN / -1 == INT64_MIN and INT64_MIN % -1 == 0
///    (the hardware idiv traps with SIGFPE, which previously killed the
///    executing supervisor as an untyped Signal failure);
///  - fptosi saturates out-of-range values to INT64_MIN/INT64_MAX and maps
///    NaN to 0 (the raw static_cast is UB);
///  - shr is logical on the 64-bit pattern; both shifts mask the count
///    to 0..63.
///
/// Division by zero remains a fatal program error in both engines.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_INTERP_SEMANTICS_H
#define PRIVATEER_INTERP_SEMANTICS_H

#include "interp/Interpreter.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace privateer {
namespace interp {
namespace sem {

inline int64_t addWrap(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}

inline int64_t subWrap(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}

inline int64_t mulWrap(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

/// INT64_MIN / -1 wraps to INT64_MIN instead of executing a trapping idiv.
/// Callers must reject a zero divisor first (fatal error, not UB).
inline int64_t sdivWrap(int64_t A, int64_t B) {
  if (B == -1 && A == std::numeric_limits<int64_t>::min())
    return A;
  return A / B;
}

/// Companion of sdivWrap: INT64_MIN % -1 == 0.
inline int64_t sremWrap(int64_t A, int64_t B) {
  if (B == -1)
    return 0;
  return A % B;
}

inline int64_t shlWrap(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A)
                              << (static_cast<uint64_t>(B) & 63));
}

inline int64_t shrLogical(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) >>
                              (static_cast<uint64_t>(B) & 63));
}

/// Saturating float-to-int: NaN -> 0, values at or beyond the int64 range
/// clamp to INT64_MIN/INT64_MAX, everything else truncates toward zero.
inline int64_t fpToSiSat(double V) {
  if (std::isnan(V))
    return 0;
  // 2^63 as a double is exact; any value >= it is unrepresentable.
  if (V >= 9223372036854775808.0)
    return std::numeric_limits<int64_t>::max();
  // -2^63 itself is exactly representable and in range.
  if (V < -9223372036854775808.0)
    return std::numeric_limits<int64_t>::min();
  return static_cast<int64_t>(V);
}

/// Formats one Print instruction's output from its format string and
/// pre-evaluated arguments.  Fatal on malformed formats: unknown
/// conversions, too few arguments, and (unlike the pre-oracle interpreter,
/// which silently truncated) a format ending in a bare '%' or an
/// unterminated conversion spec.
std::string formatPrintedText(const std::string &Fmt,
                              const std::vector<Cell> &Args);

} // namespace sem
} // namespace interp
} // namespace privateer

#endif // PRIVATEER_INTERP_SEMANTICS_H
