//===- interp/Interpreter.cpp ---------------------------------------------===//

#include "interp/Interpreter.h"

#include "interp/Semantics.h"
#include "support/ErrorHandling.h"

#include <cinttypes>

using namespace privateer;
using namespace privateer::interp;
using namespace privateer::ir;

Interpreter::Interpreter(Module &M, MemoryManager &MM, InterpObserver *Obs)
    : M(M), MM(MM), Obs(Obs) {}

void Interpreter::initializeGlobals() {
  for (const auto &G : M.globals()) {
    void *P = MM.allocate(G->sizeBytes(), nullptr, G.get());
    std::memset(P, 0, G->sizeBytes());
    GlobalAddrs[G.get()] = reinterpret_cast<uint64_t>(P);
    if (Obs)
      Obs->onGlobalAlloc(G.get(), reinterpret_cast<uint64_t>(P),
                         G->sizeBytes());
  }
}

uint64_t Interpreter::globalAddress(const GlobalVariable *G) const {
  auto It = GlobalAddrs.find(G);
  if (It == GlobalAddrs.end())
    reportFatalError("global '" + G->name() + "' not initialized");
  return It->second;
}

Cell Interpreter::run(const std::string &Name,
                      const std::vector<Cell> &Args) {
  Function *F = M.functionByName(Name);
  if (!F)
    reportFatalError("no function named @" + Name);
  return callFunction(F, Args);
}

Cell Interpreter::eval(const Value *V, Frame &F) const {
  switch (V->kind()) {
  case ValueKind::ConstInt:
    return Cell::fromInt(static_cast<const ConstantInt *>(V)->value());
  case ValueKind::ConstFloat:
    return Cell::fromFloat(static_cast<const ConstantFloat *>(V)->value());
  case ValueKind::Global:
    return Cell::fromPtr(
        globalAddress(static_cast<const GlobalVariable *>(V)));
  case ValueKind::Argument:
  case ValueKind::Instruction: {
    auto It = F.Values.find(V);
    if (It == F.Values.end())
      reportFatalError("use of undefined value %" + V->name());
    return It->second;
  }
  }
  PRIVATEER_UNREACHABLE("bad value kind");
}

Cell Interpreter::callFunction(Function *F, const std::vector<Cell> &Args) {
  if (Args.size() != F->arguments().size())
    reportFatalError("call arity mismatch for @" + F->name());
  Frame Frm;
  for (size_t I = 0; I < Args.size(); ++I)
    Frm.Values[F->arguments()[I].get()] = Args[I];
  Cell Ret;
  bool Returned = runBlocks(F->entry(), nullptr, nullptr, Frm, Ret);
  if (!Returned)
    reportFatalError("function @" + F->name() + " fell off the end");
  // §4.4: "a corresponding deallocation is inserted at all function
  // exits" for replaced stack allocations.
  for (auto It = Frm.Allocas.rbegin(); It != Frm.Allocas.rend(); ++It)
    MM.deallocate(*It);
  return Ret;
}

bool Interpreter::runBlocks(BasicBlock *Start, const BasicBlock *Prev,
                            const BasicBlock *StopAt, Frame &F,
                            Cell &RetValue) {
  BasicBlock *B = Start;
  const BasicBlock *From = Prev;

  while (true) {
    // Speculative-DOALL intercept: entering the planned loop's header
    // from outside the loop hands all iterations to the runtime.
    if (Plan && !InParallelBody && B == Plan->TheLoop->header() &&
        (!From || !Plan->TheLoop->contains(From))) {
      BasicBlock *Exit = runPlannedLoop(F);
      From = Plan->TheLoop->header();
      B = Exit;
      if (StopAt && B == StopAt)
        return false;
      continue;
    }

    if (Obs)
      Obs->onBlockEnter(B, From);

    // Phis first, all reading the pre-transfer state.
    std::vector<std::pair<const Value *, Cell>> PhiUpdates;
    size_t FirstNonPhi = 0;
    const auto &Insts = B->instructions();
    for (; FirstNonPhi < Insts.size(); ++FirstNonPhi) {
      const Instruction &I = *Insts[FirstNonPhi];
      if (I.opcode() != Opcode::Phi)
        break;
      bool Found = false;
      for (unsigned A = 0; A < I.numBlockRefs(); ++A) {
        if (I.blockRef(A) == From) {
          PhiUpdates.emplace_back(&I, eval(I.operand(A), F));
          Found = true;
          break;
        }
      }
      if (!Found)
        reportFatalError("phi in '" + B->name() +
                         "' has no arm for predecessor");
    }
    for (auto &[V, C] : PhiUpdates)
      F.Values[V] = C;
    Executed += PhiUpdates.size();

    for (size_t Idx = FirstNonPhi; Idx < Insts.size(); ++Idx) {
      const Instruction &I = *Insts[Idx];
      if (++Executed > Budget)
        reportFatalError("instruction budget exceeded (runaway loop?)");

      if (I.isTerminator()) {
        switch (I.opcode()) {
        case Opcode::Ret:
          RetValue = I.numOperands() ? eval(I.operand(0), F) : Cell();
          return true;
        case Opcode::Br:
          From = B;
          B = I.blockRef(0);
          break;
        case Opcode::CondBr:
          From = B;
          B = eval(I.operand(0), F).asInt() != 0 ? I.blockRef(0)
                                                 : I.blockRef(1);
          break;
        default:
          PRIVATEER_UNREACHABLE("bad terminator");
        }
        break;
      }
      Cell Result = execute(I, F);
      if (I.type() != Type::Void)
        F.Values[&I] = Result;
    }
    if (StopAt && B == StopAt)
      return false;
  }
}

Cell Interpreter::execute(const Instruction &I, Frame &F) {
  Runtime &Rt = Runtime::get();
  switch (I.opcode()) {
  case Opcode::Alloca: {
    void *P = MM.allocate(I.accessBytes(), &I, nullptr);
    std::memset(P, 0, I.accessBytes());
    F.Allocas.push_back(P);
    if (Obs)
      Obs->onAlloc(&I, reinterpret_cast<uint64_t>(P), I.accessBytes());
    return Cell::fromPtr(reinterpret_cast<uint64_t>(P));
  }
  case Opcode::Malloc: {
    uint64_t Bytes = static_cast<uint64_t>(eval(I.operand(0), F).asInt());
    void *P = MM.allocate(Bytes, &I, nullptr);
    if (Obs)
      Obs->onAlloc(&I, reinterpret_cast<uint64_t>(P), Bytes);
    return Cell::fromPtr(reinterpret_cast<uint64_t>(P));
  }
  case Opcode::Free: {
    uint64_t P = eval(I.operand(0), F).asPtr();
    if (Obs)
      Obs->onFree(&I, P);
    MM.deallocate(reinterpret_cast<void *>(P));
    return Cell();
  }
  case Opcode::Load: {
    uint64_t Addr = eval(I.operand(0), F).asPtr();
    uint64_t Bytes = I.accessBytes();
    if (Obs)
      Obs->onLoad(&I, Addr, Bytes);
    if (I.type() == Type::F64) {
      assert(Bytes == 8 && "f64 load must be 8 bytes");
      double V;
      std::memcpy(&V, reinterpret_cast<void *>(Addr), 8);
      return Cell::fromFloat(V);
    }
    // Integer/pointer: sign-extend sub-word loads (C-style int fields).
    int64_t V = 0;
    std::memcpy(&V, reinterpret_cast<void *>(Addr), Bytes);
    if (Bytes < 8 && I.type() == Type::I64) {
      unsigned Shift = 64 - 8 * Bytes;
      V = (V << Shift) >> Shift;
    }
    return Cell::fromInt(V);
  }
  case Opcode::Store: {
    Cell V = eval(I.operand(0), F);
    uint64_t Addr = eval(I.operand(1), F).asPtr();
    uint64_t Bytes = I.accessBytes();
    if (Obs)
      Obs->onStore(&I, Addr, Bytes);
    std::memcpy(reinterpret_cast<void *>(Addr), &V.Raw, Bytes);
    return Cell();
  }
  case Opcode::Gep:
    return Cell::fromPtr(eval(I.operand(0), F).asPtr() +
                         static_cast<uint64_t>(eval(I.operand(1), F).asInt()));
  case Opcode::Add:
    return Cell::fromInt(sem::addWrap(eval(I.operand(0), F).asInt(),
                                      eval(I.operand(1), F).asInt()));
  case Opcode::Sub:
    return Cell::fromInt(sem::subWrap(eval(I.operand(0), F).asInt(),
                                      eval(I.operand(1), F).asInt()));
  case Opcode::Mul:
    return Cell::fromInt(sem::mulWrap(eval(I.operand(0), F).asInt(),
                                      eval(I.operand(1), F).asInt()));
  case Opcode::SDiv: {
    int64_t D = eval(I.operand(1), F).asInt();
    if (D == 0)
      reportFatalError("division by zero");
    return Cell::fromInt(sem::sdivWrap(eval(I.operand(0), F).asInt(), D));
  }
  case Opcode::SRem: {
    int64_t D = eval(I.operand(1), F).asInt();
    if (D == 0)
      reportFatalError("remainder by zero");
    return Cell::fromInt(sem::sremWrap(eval(I.operand(0), F).asInt(), D));
  }
  case Opcode::And:
    return Cell::fromInt(eval(I.operand(0), F).asInt() &
                         eval(I.operand(1), F).asInt());
  case Opcode::Or:
    return Cell::fromInt(eval(I.operand(0), F).asInt() |
                         eval(I.operand(1), F).asInt());
  case Opcode::Xor:
    return Cell::fromInt(eval(I.operand(0), F).asInt() ^
                         eval(I.operand(1), F).asInt());
  case Opcode::Shl:
    return Cell::fromInt(sem::shlWrap(eval(I.operand(0), F).asInt(),
                                      eval(I.operand(1), F).asInt()));
  case Opcode::Shr:
    return Cell::fromInt(sem::shrLogical(eval(I.operand(0), F).asInt(),
                                         eval(I.operand(1), F).asInt()));
  case Opcode::FAdd:
    return Cell::fromFloat(eval(I.operand(0), F).asFloat() +
                           eval(I.operand(1), F).asFloat());
  case Opcode::FSub:
    return Cell::fromFloat(eval(I.operand(0), F).asFloat() -
                           eval(I.operand(1), F).asFloat());
  case Opcode::FMul:
    return Cell::fromFloat(eval(I.operand(0), F).asFloat() *
                           eval(I.operand(1), F).asFloat());
  case Opcode::FDiv:
    return Cell::fromFloat(eval(I.operand(0), F).asFloat() /
                           eval(I.operand(1), F).asFloat());
  case Opcode::SiToFp:
    return Cell::fromFloat(
        static_cast<double>(eval(I.operand(0), F).asInt()));
  case Opcode::FpToSi:
    return Cell::fromInt(sem::fpToSiSat(eval(I.operand(0), F).asFloat()));
  case Opcode::ICmp: {
    int64_t A = eval(I.operand(0), F).asInt();
    int64_t B = eval(I.operand(1), F).asInt();
    bool R = false;
    switch (I.cmpPred()) {
    case CmpPred::Eq:
      R = A == B;
      break;
    case CmpPred::Ne:
      R = A != B;
      break;
    case CmpPred::Lt:
      R = A < B;
      break;
    case CmpPred::Le:
      R = A <= B;
      break;
    case CmpPred::Gt:
      R = A > B;
      break;
    case CmpPred::Ge:
      R = A >= B;
      break;
    }
    return Cell::fromInt(R ? 1 : 0);
  }
  case Opcode::FCmp: {
    double A = eval(I.operand(0), F).asFloat();
    double B = eval(I.operand(1), F).asFloat();
    bool R = false;
    switch (I.cmpPred()) {
    case CmpPred::Eq:
      R = A == B;
      break;
    case CmpPred::Ne:
      R = A != B;
      break;
    case CmpPred::Lt:
      R = A < B;
      break;
    case CmpPred::Le:
      R = A <= B;
      break;
    case CmpPred::Gt:
      R = A > B;
      break;
    case CmpPred::Ge:
      R = A >= B;
      break;
    }
    return Cell::fromInt(R ? 1 : 0);
  }
  case Opcode::Select:
    return eval(I.operand(0), F).asInt() != 0 ? eval(I.operand(1), F)
                                              : eval(I.operand(2), F);
  case Opcode::Call: {
    std::vector<Cell> Args;
    Args.reserve(I.numOperands());
    for (unsigned A = 0; A < I.numOperands(); ++A)
      Args.push_back(eval(I.operand(A), F));
    if (Obs)
      Obs->onCall(&I, I.callee());
    Cell R = callFunction(I.callee(), Args);
    if (Obs)
      Obs->onReturn(I.callee());
    return R;
  }
  case Opcode::Print:
    formatPrint(I, F);
    return Cell();
  case Opcode::CheckHeap:
    Rt.checkHeap(reinterpret_cast<void *>(eval(I.operand(0), F).asPtr()),
                 I.expectedHeap());
    return Cell();
  case Opcode::PrivateRead:
    Rt.privateRead(reinterpret_cast<void *>(eval(I.operand(0), F).asPtr()),
                   I.accessBytes());
    return Cell();
  case Opcode::PrivateWrite:
    Rt.privateWrite(reinterpret_cast<void *>(eval(I.operand(0), F).asPtr()),
                    I.accessBytes());
    return Cell();
  case Opcode::SpeculateEq:
    Rt.speculateTrue(eval(I.operand(0), F).Raw == eval(I.operand(1), F).Raw,
                     "value prediction failed");
    return Cell();
  case Opcode::ComUpdate:
    Rt.comUpdate(reinterpret_cast<void *>(eval(I.operand(1), F).asPtr()),
                 I.comOp(), static_cast<unsigned>(I.accessBytes()),
                 eval(I.operand(0), F).asInt());
    return Cell();
  case Opcode::PostDep:
    Rt.postDep(static_cast<uint64_t>(eval(I.operand(0), F).asInt()),
               static_cast<uint32_t>(I.accessBytes()),
               eval(I.operand(1), F).Raw);
    return Cell();
  case Opcode::WaitDep: {
    Cell R;
    R.Raw = Rt.waitDep(static_cast<uint64_t>(eval(I.operand(0), F).asInt()),
                       static_cast<uint32_t>(I.accessBytes()));
    return R;
  }
  case Opcode::Phi:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Ret:
    break;
  }
  PRIVATEER_UNREACHABLE("opcode handled elsewhere");
}

BasicBlock *Interpreter::runPlannedLoop(Frame &F) {
  const analysis::Loop::CanonicalIv &Iv = Plan->Iv;
  int64_t Begin = eval(Iv.Begin, F).asInt();
  int64_t Bound = eval(Iv.Bound, F).asInt();
  BasicBlock *Header = Plan->TheLoop->header();
  BasicBlock *BodyStart = Header->terminator()->blockRef(0);
  uint64_t N = Bound > Begin ? static_cast<uint64_t>(Bound - Begin) : 0;

  if (N > 0) {
    // Speculative waits on a pre-loop iteration must return immediately
    // (the rewritten IR discards the value via select) instead of spinning
    // for a token nobody will post.
    Runtime::get().setDepFloor(Begin);
    // Monolithic iteration body: pipeline strategy degrades to DOACROSS
    // token scheduling (stage-split bodies go through runParallelStaged).
    ParallelOptions POpt = Plan->Options;
    POpt.NumStages = 0;
    InvocationStats S = Runtime::get().runParallel(
        N, POpt, [&](uint64_t I) {
          F.Values[Iv.Phi] = Cell::fromInt(Begin + static_cast<int64_t>(I));
          InParallelBody = true;
          Cell Ret;
          bool Returned = runBlocks(BodyStart, Header, Header, F, Ret);
          InParallelBody = false;
          if (Returned)
            reportFatalError(
                "planned DOALL loop returned out of its body");
        });
    Plan->Stats.Iterations += S.Iterations;
    Plan->Stats.Checkpoints += S.Checkpoints;
    Plan->Stats.Misspecs += S.Misspecs;
    Plan->Stats.RecoveredIterations += S.RecoveredIterations;
    Plan->Stats.Epochs += S.Epochs;
    Plan->Stats.PrivateReadCalls += S.PrivateReadCalls;
    Plan->Stats.PrivateReadBytes += S.PrivateReadBytes;
    Plan->Stats.PrivateWriteCalls += S.PrivateWriteCalls;
    Plan->Stats.PrivateWriteBytes += S.PrivateWriteBytes;
    Plan->Stats.SeparationChecks += S.SeparationChecks;
    Plan->Stats.ComUpdates += S.ComUpdates;
    Plan->Stats.ComRecordsMerged += S.ComRecordsMerged;
    Plan->Stats.ComRecordsCommitted += S.ComRecordsCommitted;
    Plan->Stats.ComOverflows += S.ComOverflows;
    Plan->Stats.DepPosts += S.DepPosts;
    Plan->Stats.DepWaits += S.DepWaits;
    Plan->Stats.DepWaitSpins += S.DepWaitSpins;
    Plan->Stats.DepWaitTimeouts += S.DepWaitTimeouts;
    if (Plan->Stats.FirstMisspecReason.empty())
      Plan->Stats.FirstMisspecReason = S.FirstMisspecReason;
  }

  // After the loop, the IV holds the first value failing the bound check.
  F.Values[Iv.Phi] = Cell::fromInt(Bound > Begin ? Bound : Begin);
  return Iv.ExitBlock;
}

void Interpreter::formatPrint(const Instruction &I, Frame &F) {
  std::vector<Cell> Args;
  Args.reserve(I.numOperands());
  for (unsigned A = 0; A < I.numOperands(); ++A)
    Args.push_back(eval(I.operand(A), F));
  std::string Out = sem::formatPrintedText(I.printFormat(), Args);
  Runtime::get().deferPrintf("%s", Out.c_str());
}
