//===- interp/MemoryManager.cpp -------------------------------------------===//

#include "interp/MemoryManager.h"

#include "runtime/Runtime.h"
#include "support/ErrorHandling.h"

#include <cstdlib>
#include <cstring>

using namespace privateer;
using namespace privateer::interp;
using namespace privateer::ir;

PlainMemoryManager::~PlainMemoryManager() {
  for (void *P : Live)
    std::free(P);
}

void *PlainMemoryManager::allocate(uint64_t Bytes, const Instruction *,
                                   const GlobalVariable *) {
  void *P = std::calloc(1, Bytes ? Bytes : 1);
  if (!P)
    reportFatalError("interpreter out of memory");
  Live.insert(P);
  return P;
}

void PlainMemoryManager::deallocate(void *P) {
  if (!P)
    return;
  if (!Live.erase(P))
    reportFatalError("interpreted program freed an unknown pointer");
  std::free(P);
}

PrivateerMemoryManager::~PrivateerMemoryManager() {
  for (void *P : LivePlain)
    std::free(P);
}

void *PrivateerMemoryManager::allocate(uint64_t Bytes,
                                       const Instruction *Site,
                                       const GlobalVariable *G) {
  Runtime &Rt = Runtime::get();
  if (Site && Site->hasAllocHeap())
    return Rt.heapAlloc(Bytes, Site->allocHeap());
  if (G && G->hasAssignedHeap()) {
    void *P = Rt.heapAlloc(Bytes, G->assignedHeap());
    std::memset(P, 0, Bytes);
    return P;
  }
  void *P = std::calloc(1, Bytes ? Bytes : 1);
  if (!P)
    reportFatalError("interpreter out of memory");
  LivePlain.insert(P);
  return P;
}

void PrivateerMemoryManager::deallocate(void *P) {
  if (!P)
    return;
  uint64_t Tag = addressTag(reinterpret_cast<uint64_t>(P));
  for (unsigned I = 0; I < kNumHeapKinds; ++I) {
    HeapKind K = static_cast<HeapKind>(I);
    if (Tag == heapTag(K)) {
      Runtime::get().heapDealloc(P, K);
      return;
    }
  }
  if (!LivePlain.erase(P))
    reportFatalError("privatized program freed an unknown pointer");
  std::free(P);
}
