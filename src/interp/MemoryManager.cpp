//===- interp/MemoryManager.cpp -------------------------------------------===//

#include "interp/MemoryManager.h"

#include "runtime/Runtime.h"
#include "support/ErrorHandling.h"

#include <cstdlib>
#include <cstring>

using namespace privateer;
using namespace privateer::interp;
using namespace privateer::ir;

namespace {
constexpr uint64_t kLiveMagic = 0x507249764c697645ull; // "PrIvLivE"
constexpr uint64_t kDeadMagic = 0x5072497644454144ull; // "PrIvDEAD"
} // namespace

detail::BlockList::~BlockList() {
  for (BlockHeader *H = Head; H;) {
    BlockHeader *N = H->Next;
    std::free(H);
    H = N;
  }
}

void *detail::BlockList::allocate(uint64_t Bytes) {
  uint64_t UserBytes = Bytes ? Bytes : 1;
  auto *H =
      static_cast<BlockHeader *>(std::malloc(sizeof(BlockHeader) + UserBytes));
  if (!H)
    reportFatalError("interpreter out of memory");
  H->Prev = nullptr;
  H->Next = Head;
  H->Magic = kLiveMagic;
  if (Head)
    Head->Prev = H;
  Head = H;
  void *P = H + 1;
  std::memset(P, 0, UserBytes);
  return P;
}

bool detail::BlockList::deallocate(void *P) {
  auto *H = static_cast<BlockHeader *>(P) - 1;
  if (H->Magic != kLiveMagic)
    return false;
  H->Magic = kDeadMagic;
  if (H->Prev)
    H->Prev->Next = H->Next;
  else
    Head = H->Next;
  if (H->Next)
    H->Next->Prev = H->Prev;
  std::free(H);
  return true;
}

PlainMemoryManager::~PlainMemoryManager() = default;

void *PlainMemoryManager::allocate(uint64_t Bytes, const Instruction *,
                                   const GlobalVariable *) {
  return Live.allocate(Bytes);
}

void *PlainMemoryManager::allocateTagged(uint64_t Bytes, bool, HeapKind,
                                         bool) {
  return Live.allocate(Bytes);
}

void PlainMemoryManager::deallocate(void *P) {
  if (!P)
    return;
  if (!Live.deallocate(P))
    reportFatalError("interpreted program freed an unknown pointer");
}

PrivateerMemoryManager::~PrivateerMemoryManager() = default;

void *PrivateerMemoryManager::allocate(uint64_t Bytes,
                                       const Instruction *Site,
                                       const GlobalVariable *G) {
  Runtime &Rt = Runtime::get();
  if (Site && Site->hasAllocHeap())
    return Rt.heapAlloc(Bytes, Site->allocHeap());
  if (G && G->hasAssignedHeap()) {
    void *P = Rt.heapAlloc(Bytes, G->assignedHeap());
    std::memset(P, 0, Bytes);
    return P;
  }
  return LivePlain.allocate(Bytes);
}

void *PrivateerMemoryManager::allocateTagged(uint64_t Bytes, bool HasHeap,
                                             HeapKind K, bool Zero) {
  if (HasHeap) {
    void *P = Runtime::get().heapAlloc(Bytes, K);
    if (Zero)
      std::memset(P, 0, Bytes);
    return P;
  }
  return LivePlain.allocate(Bytes);
}

void PrivateerMemoryManager::deallocate(void *P) {
  if (!P)
    return;
  uint64_t Tag = addressTag(reinterpret_cast<uint64_t>(P));
  for (unsigned I = 0; I < kNumHeapKinds; ++I) {
    HeapKind K = static_cast<HeapKind>(I);
    if (Tag == heapTag(K)) {
      Runtime::get().heapDealloc(P, K);
      return;
    }
  }
  if (!LivePlain.deallocate(P))
    reportFatalError("privatized program freed an unknown pointer");
}
