//===- interp/Interpreter.h - IR interpreter --------------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes IR modules over real host memory (pointers in the program are
/// host addresses, so heap-tagged pointers work unchanged).  Three roles:
///
///  1. profiling runs — an InterpObserver receives every allocation,
///     access, block transfer, and call, feeding the §4.1 profilers;
///  2. plain sequential execution of original or transformed programs
///     (Privateer intrinsics lower onto the runtime, which ignores them
///     outside a speculative worker);
///  3. speculative DOALL execution — a ParallelPlan intercepts a chosen
///     canonical loop and runs its iterations through
///     Runtime::runParallel, each worker interpreting iterations against
///     its copy-on-write heaps.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_INTERP_INTERPRETER_H
#define PRIVATEER_INTERP_INTERPRETER_H

#include "analysis/LoopInfo.h"
#include "interp/MemoryManager.h"
#include "ir/IR.h"
#include "runtime/Runtime.h"

#include <cstring>
#include <map>
#include <unordered_map>

namespace privateer {
namespace interp {

/// One 64-bit value slot; typing is by use, as in the untyped-memory IR.
struct Cell {
  uint64_t Raw = 0;

  static Cell fromInt(int64_t V) {
    Cell C;
    std::memcpy(&C.Raw, &V, 8);
    return C;
  }
  static Cell fromFloat(double V) {
    Cell C;
    std::memcpy(&C.Raw, &V, 8);
    return C;
  }
  static Cell fromPtr(uint64_t V) {
    Cell C;
    C.Raw = V;
    return C;
  }
  int64_t asInt() const {
    int64_t V;
    std::memcpy(&V, &Raw, 8);
    return V;
  }
  double asFloat() const {
    double V;
    std::memcpy(&V, &Raw, 8);
    return V;
  }
  uint64_t asPtr() const { return Raw; }
};

class InterpObserver {
public:
  virtual ~InterpObserver() = default;
  virtual void onGlobalAlloc(const ir::GlobalVariable *, uint64_t /*Addr*/,
                             uint64_t /*Bytes*/) {}
  virtual void onAlloc(const ir::Instruction *, uint64_t /*Addr*/,
                       uint64_t /*Bytes*/) {}
  virtual void onFree(const ir::Instruction *, uint64_t /*Addr*/) {}
  virtual void onLoad(const ir::Instruction *, uint64_t /*Addr*/,
                      uint64_t /*Bytes*/) {}
  virtual void onStore(const ir::Instruction *, uint64_t /*Addr*/,
                       uint64_t /*Bytes*/) {}
  /// Control transferred into \p B from \p From (null on function entry).
  virtual void onBlockEnter(const ir::BasicBlock *, const ir::BasicBlock *) {
  }
  virtual void onCall(const ir::Instruction *, const ir::Function *) {}
  virtual void onReturn(const ir::Function *) {}
};

class Interpreter {
public:
  /// Speculative-DOALL intercept: when execution reaches \p TheLoop's
  /// header from outside, its iterations run through
  /// Runtime::runParallel.
  struct ParallelPlan {
    const analysis::Loop *TheLoop = nullptr;
    analysis::Loop::CanonicalIv Iv;
    ParallelOptions Options;
    /// Accumulated across invocations of the loop.
    InvocationStats Stats;
  };

  Interpreter(ir::Module &M, MemoryManager &MM,
              InterpObserver *Obs = nullptr);

  /// Allocates and zero-fills all globals.  Must run before execution.
  void initializeGlobals();

  uint64_t globalAddress(const ir::GlobalVariable *G) const;

  /// Calls @\p Name with \p Args; the function must exist.
  Cell run(const std::string &Name, const std::vector<Cell> &Args);

  Cell callFunction(ir::Function *F, const std::vector<Cell> &Args);

  void setParallelPlan(ParallelPlan *P) { Plan = P; }

  /// Hard bound on interpreted instructions (runaway-loop guard).
  void setInstructionBudget(uint64_t N) { Budget = N; }
  uint64_t instructionsExecuted() const { return Executed; }

private:
  struct Frame {
    std::unordered_map<const ir::Value *, Cell> Values;
    std::vector<void *> Allocas;
  };

  Cell eval(const ir::Value *V, Frame &F) const;
  Cell execute(const ir::Instruction &I, Frame &F);

  /// Runs blocks starting at \p Start until a Ret (returns true, value in
  /// RetValue) or until control would enter \p StopAt (returns false).
  /// \p StopAt null means run to Ret.
  bool runBlocks(ir::BasicBlock *Start, const ir::BasicBlock *Prev,
                 const ir::BasicBlock *StopAt, Frame &F, Cell &RetValue);

  /// Executes the planned loop in parallel; frame is left as if the loop
  /// exited normally.  Returns the loop's exit block.
  ir::BasicBlock *runPlannedLoop(Frame &F);

  void formatPrint(const ir::Instruction &I, Frame &F);

  ir::Module &M;
  MemoryManager &MM;
  InterpObserver *Obs;
  ParallelPlan *Plan = nullptr;
  std::map<const ir::GlobalVariable *, uint64_t> GlobalAddrs;
  uint64_t Budget = 2'000'000'000;
  uint64_t Executed = 0;
  bool InParallelBody = false;
};

} // namespace interp
} // namespace privateer

#endif // PRIVATEER_INTERP_INTERPRETER_H
