//===- interp/MemoryManager.h - Interpreter memory backends -----*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory backends for the IR interpreter.  Profiling runs use plain host
/// malloc; privatized (transformed) programs route annotated allocation
/// sites and heap-assigned globals to the Privateer runtime's logical
/// heaps — the operational half of §4.4 Replace Allocation.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_INTERP_MEMORYMANAGER_H
#define PRIVATEER_INTERP_MEMORYMANAGER_H

#include "ir/IR.h"

namespace privateer {
namespace interp {

namespace detail {

/// Intrusive bookkeeping for plain-malloc blocks: each allocation carries
/// a hidden header linked into a doubly-linked list, so tracking a block
/// is O(1) pointer surgery instead of the ordered-set insert/erase this
/// replaced — program malloc/free sits on the hot path of queue-churning
/// workloads (dijkstra enqueues per relaxation) in both execution engines.
/// A magic word in the header keeps frees of untracked or already-freed
/// pointers loudly fatal, and the destructor reclaims leaked blocks.
class BlockList {
public:
  ~BlockList();
  /// Returns zeroed user storage of \p Bytes (malloc'd memory reads as
  /// zero in both engines, like the calloc it replaced).
  void *allocate(uint64_t Bytes);
  /// Unlinks and frees \p P; false if it is not a live tracked block.
  bool deallocate(void *P);

private:
  struct BlockHeader {
    BlockHeader *Prev;
    BlockHeader *Next;
    uint64_t Magic;
    uint64_t Pad; ///< Keeps user storage 16-byte aligned.
  };
  BlockHeader *Head = nullptr;
};

} // namespace detail

class MemoryManager {
public:
  virtual ~MemoryManager() = default;

  /// Allocates storage for an Alloca/Malloc site (\p Site may carry a
  /// heap assignment) or for a global (\p Site null, \p G set).
  virtual void *allocate(uint64_t Bytes, const ir::Instruction *Site,
                         const ir::GlobalVariable *G) = 0;

  /// Same routing decision with the heap assignment already extracted as
  /// plain data — the bytecode VM's entry point, where alloc sites and
  /// globals are IR-free PODs (a BytecodeProgram is relocatable).  \p Zero
  /// requests zero-fill even on the logical-heap path (globals).
  virtual void *allocateTagged(uint64_t Bytes, bool HasHeap, HeapKind K,
                               bool Zero) = 0;
  virtual void deallocate(void *P) = 0;
};

/// Host malloc/free; owns outstanding blocks so leaked program memory is
/// reclaimed when the manager dies (profiling runs execute buggy-looking
/// programs on purpose).
class PlainMemoryManager : public MemoryManager {
public:
  ~PlainMemoryManager() override;
  void *allocate(uint64_t Bytes, const ir::Instruction *Site,
                 const ir::GlobalVariable *G) override;
  void *allocateTagged(uint64_t Bytes, bool HasHeap, HeapKind K,
                       bool Zero) override;
  void deallocate(void *P) override;

private:
  detail::BlockList Live;
};

/// Routes heap-assigned sites and globals into the Privateer runtime's
/// logical heaps; anything unassigned falls back to host malloc.  Frees
/// dispatch on the pointer's heap tag.
class PrivateerMemoryManager : public MemoryManager {
public:
  ~PrivateerMemoryManager() override;
  void *allocate(uint64_t Bytes, const ir::Instruction *Site,
                 const ir::GlobalVariable *G) override;
  void *allocateTagged(uint64_t Bytes, bool HasHeap, HeapKind K,
                       bool Zero) override;
  void deallocate(void *P) override;

private:
  detail::BlockList LivePlain;
};

} // namespace interp
} // namespace privateer

#endif // PRIVATEER_INTERP_MEMORYMANAGER_H
