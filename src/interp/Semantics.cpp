//===- interp/Semantics.cpp -----------------------------------------------===//

#include "interp/Semantics.h"

#include "support/ErrorHandling.h"

#include <cctype>
#include <cstdio>

using namespace privateer;
using namespace privateer::interp;

std::string sem::formatPrintedText(const std::string &Fmt,
                                   const std::vector<Cell> &Args) {
  std::string Out;
  unsigned NextArg = 0;
  for (size_t P = 0; P < Fmt.size(); ++P) {
    if (Fmt[P] != '%') {
      Out += Fmt[P];
      continue;
    }
    if (P + 1 < Fmt.size() && Fmt[P + 1] == '%') {
      Out += '%';
      ++P;
      continue;
    }
    // Collect the conversion spec up to its letter.
    std::string Spec = "%";
    size_t Q = P + 1;
    while (Q < Fmt.size() && !std::isalpha(static_cast<unsigned char>(Fmt[Q])))
      Spec += Fmt[Q++];
    // Skip length modifiers; we re-add our own.
    while (Q < Fmt.size() && (Fmt[Q] == 'l' || Fmt[Q] == 'h' || Fmt[Q] == 'z'))
      ++Q;
    if (Q >= Fmt.size())
      reportFatalError("print format ends inside a conversion spec: \"" +
                       Fmt + "\"");
    char Conv = Fmt[Q];
    P = Q;
    if (NextArg >= Args.size())
      reportFatalError("print format consumes more arguments than given");
    Cell Arg = Args[NextArg++];
    char Buf[64];
    switch (Conv) {
    case 'd':
    case 'i':
      std::snprintf(Buf, sizeof(Buf), (Spec + "lld").c_str(),
                    static_cast<long long>(Arg.asInt()));
      break;
    case 'u':
    case 'x':
    case 'X':
      std::snprintf(Buf, sizeof(Buf), (Spec + "ll" + Conv).c_str(),
                    static_cast<unsigned long long>(Arg.asPtr()));
      break;
    case 'f':
    case 'g':
    case 'e':
      std::snprintf(Buf, sizeof(Buf), (Spec + Conv).c_str(), Arg.asFloat());
      break;
    case 'c':
      std::snprintf(Buf, sizeof(Buf), "%c", static_cast<char>(Arg.asInt()));
      break;
    default:
      reportFatalError(std::string("unsupported print conversion %") + Conv);
    }
    Out += Buf;
  }
  return Out;
}
