//===- bytecode/VM.cpp - Direct-threaded bytecode VM ----------------------===//

#include "bytecode/VM.h"

#include "interp/Semantics.h"
#include "runtime/HeapKind.h"
#include "support/ErrorHandling.h"

#include <cassert>
#include <cstring>

using namespace privateer;
using namespace privateer::bytecode;
using namespace privateer::interp;

#if defined(__GNUC__) || defined(__clang__)
#define PRIVATEER_BC_THREADED 1
#else
#define PRIVATEER_BC_THREADED 0
#endif

namespace {

// Register cells are raw 64-bit patterns, exactly like interp::Cell;
// typing is by use.  memcpy compiles away.
inline int64_t sI(uint64_t V) {
  int64_t R;
  std::memcpy(&R, &V, 8);
  return R;
}
inline uint64_t uI(int64_t V) {
  uint64_t R;
  std::memcpy(&R, &V, 8);
  return R;
}
inline double dF(uint64_t V) {
  double D;
  std::memcpy(&D, &V, 8);
  return D;
}
inline uint64_t uF(double D) {
  uint64_t R;
  std::memcpy(&R, &D, 8);
  return R;
}

} // namespace

VM::VM(const BytecodeProgram &Prog, MemoryManager &MM)
    : Prog(Prog), MM(MM), RegStack(new uint64_t[kRegStackSlots]) {}

void VM::initializeGlobals() {
  GlobalAddrs.resize(Prog.Globals.size(), 0);
  for (size_t Idx = 0; Idx < Prog.Globals.size(); ++Idx) {
    const BcGlobal &G = Prog.Globals[Idx];
    void *P = MM.allocateTagged(G.SizeBytes, G.HasHeap, G.Heap, /*Zero=*/true);
    GlobalAddrs[Idx] = reinterpret_cast<uint64_t>(P);
  }
  // Frame-entry images depend on the global addresses just assigned.
  FrameInit.resize(Prog.Functions.size());
  for (size_t F = 0; F < Prog.Functions.size(); ++F) {
    const BcFunction &Fn = Prog.Functions[F];
    std::vector<uint64_t> &T = FrameInit[F];
    T.assign(Fn.NumRegs, 0);
    for (const auto &[Reg, Bits] : Fn.ConstInit)
      T[Reg] = Bits;
    for (const auto &[Reg, GlobalIdx] : Fn.GlobalInit)
      T[Reg] = GlobalAddrs[GlobalIdx];
  }
}

uint64_t VM::globalAddress(uint32_t Idx) const {
  if (Idx >= GlobalAddrs.size() || !GlobalAddrs[Idx])
    reportFatalError("global #" + std::to_string(Idx) + " not initialized");
  return GlobalAddrs[Idx];
}

Cell VM::run(const std::string &Name, const std::vector<Cell> &Args) {
  auto It = Prog.FunctionIdx.find(Name);
  if (It == Prog.FunctionIdx.end())
    reportFatalError("no function named @" + Name);
  const BcFunction &Fn = Prog.Functions[It->second];
  if (Args.size() != Fn.NumArgs)
    reportFatalError("call arity mismatch for @" + Fn.Name);
  std::vector<uint64_t> Raw(Args.size());
  for (size_t A = 0; A < Args.size(); ++A)
    Raw[A] = Args[A].Raw;
  Cell C;
  C.Raw = callFunction(It->second, Raw.data(), Raw.size());
  return C;
}

uint64_t VM::callFunction(uint32_t FnIdx, const uint64_t *Args,
                          size_t NumArgs) {
  const BcFunction &Fn = Prog.Functions[FnIdx];
  assert(NumArgs == Fn.NumArgs && "lowering guarantees call arity");
  assert(FrameInit.size() == Prog.Functions.size() &&
         "initializeGlobals must run before execution");
  // Carve the frame out of the register arena (no allocation on the call
  // path) and image it from the per-function template in one memcpy.
  const size_t Base = StackTop;
  if (Base + Fn.NumRegs > kRegStackSlots)
    reportFatalError("register stack exhausted (runaway recursion?)");
  StackTop = Base + Fn.NumRegs;
  Frame Frm;
  Frm.R = RegStack.get() + Base;
  if (Fn.NumRegs)
    std::memcpy(Frm.R, FrameInit[FnIdx].data(),
                sizeof(uint64_t) * Fn.NumRegs);
  for (size_t A = 0; A < NumArgs; ++A)
    Frm.R[A] = Args[A];
  uint64_t Ret = 0;
  ExecStatus St = exec(Fn, Frm, 0, /*StopAtIterEnd=*/false, Ret);
  assert(St == ExecStatus::Returned && "only body runs stop at IterEnd");
  (void)St;
  // §4.4: "a corresponding deallocation is inserted at all function
  // exits" for replaced stack allocations.
  for (auto It = Frm.Allocas.rbegin(); It != Frm.Allocas.rend(); ++It)
    MM.deallocate(*It);
  StackTop = Base;
  return Ret;
}

uint32_t VM::runPlannedLoop(const BcFunction &Fn, Frame &Frm,
                            const BcParLoopSite &Site) {
  int64_t Begin = sI(Frm.R[Site.BeginReg]);
  int64_t Bound = sI(Frm.R[Site.BoundReg]);
  uint64_t N = Bound > Begin ? static_cast<uint64_t>(Bound - Begin) : 0;

  if (N > 0) {
    // Dependence tokens are posted in IV space; any iteration below the
    // loop's first IV value was produced before the loop and must not be
    // waited for.
    Runtime::get().setDepFloor(Begin);
    // The planned body is one monolithic iteration; stage-split scheduling
    // (runParallelStaged) needs a per-stage body.  Pipeline strategy over
    // IR loops degrades to DOACROSS token scheduling.
    ParallelOptions POpt = Plan->Options;
    POpt.NumStages = 0;
    InvocationStats S = Runtime::get().runParallel(
        N, POpt, [&](uint64_t It) {
          Frm.R[Site.IvReg] = uI(Begin + static_cast<int64_t>(It));
          InParallelBody = true;
          uint64_t Dummy = 0;
          ExecStatus St =
              exec(Fn, Frm, Site.BodyEntryPc, /*StopAtIterEnd=*/true, Dummy);
          InParallelBody = false;
          if (St == ExecStatus::Returned)
            reportFatalError("planned DOALL loop returned out of its body");
        });
    Plan->Stats.Iterations += S.Iterations;
    Plan->Stats.Checkpoints += S.Checkpoints;
    Plan->Stats.Misspecs += S.Misspecs;
    Plan->Stats.RecoveredIterations += S.RecoveredIterations;
    Plan->Stats.Epochs += S.Epochs;
    Plan->Stats.PrivateReadCalls += S.PrivateReadCalls;
    Plan->Stats.PrivateReadBytes += S.PrivateReadBytes;
    Plan->Stats.PrivateWriteCalls += S.PrivateWriteCalls;
    Plan->Stats.PrivateWriteBytes += S.PrivateWriteBytes;
    Plan->Stats.SeparationChecks += S.SeparationChecks;
    Plan->Stats.ComUpdates += S.ComUpdates;
    Plan->Stats.ComRecordsMerged += S.ComRecordsMerged;
    Plan->Stats.ComRecordsCommitted += S.ComRecordsCommitted;
    Plan->Stats.ComOverflows += S.ComOverflows;
    Plan->Stats.DepPosts += S.DepPosts;
    Plan->Stats.DepWaits += S.DepWaits;
    Plan->Stats.DepWaitSpins += S.DepWaitSpins;
    Plan->Stats.DepWaitTimeouts += S.DepWaitTimeouts;
    if (Plan->Stats.FirstMisspecReason.empty())
      Plan->Stats.FirstMisspecReason = S.FirstMisspecReason;
  }

  // After the loop, the IV holds the first value failing the bound check.
  Frm.R[Site.IvReg] = uI(Bound > Begin ? Bound : Begin);
  return Site.ExitEntryPc;
}

VM::ExecStatus VM::exec(const BcFunction &Fn, Frame &Frm, uint32_t StartPc,
                        bool StopAtIterEnd, uint64_t &RetValue) {
  Runtime &Rt = Runtime::get();
  // One mode read per body/function entry; the mode of a process only
  // changes across fork boundaries, which always enter through a fresh
  // exec invocation.
  const bool Spec = Rt.speculating();
  uint64_t *R = Frm.R;
  const BcInst *Code = Fn.Code.data();
  const BcInst *I = Code + StartPc;
  // The instruction budget is enforced at jumps only — every loop executes
  // one — so straight-line dispatch is just increment + indirect goto.
  // The running count lives in a local, flushed to the Executed member
  // around nested execution (Call, ParLoopEnter) and at every exit.
  uint64_t Exec = Executed;
  const uint64_t Bud = Budget;

#if PRIVATEER_BC_THREADED
  static const void *Handlers[] = {
#define PRIVATEER_BC_LABEL(N) &&H_##N,
      PRIVATEER_BC_OPCODES(PRIVATEER_BC_LABEL)
#undef PRIVATEER_BC_LABEL
  };
  static_assert(sizeof(Handlers) / sizeof(Handlers[0]) == kNumBcOps);
#define BC_HANDLER(N) H_##N:
#define BC_DISPATCH()                                                         \
  do {                                                                        \
    ++Exec;                                                                   \
    goto *Handlers[I->Op];                                                    \
  } while (0)
#else
#define BC_HANDLER(N) case BcOp::N:
#define BC_DISPATCH() goto dispatch
#endif
#define BC_NEXT()                                                             \
  do {                                                                        \
    ++I;                                                                      \
    BC_DISPATCH();                                                            \
  } while (0)
#define BC_JUMP(Target)                                                       \
  do {                                                                        \
    if (Exec > Bud) [[unlikely]]                                              \
      reportFatalError("instruction budget exceeded (runaway loop?)");        \
    I = Code + (Target);                                                      \
    BC_DISPATCH();                                                            \
  } while (0)
#define BC_SKIP2() /* fused pair: step over the replaced second inst */       \
  do {                                                                        \
    I += 2;                                                                   \
    BC_DISPATCH();                                                            \
  } while (0)

#if PRIVATEER_BC_THREADED
  BC_DISPATCH();
#else
dispatch:
  ++Exec;
  switch (static_cast<BcOp>(I->Op)) {
#endif

  BC_HANDLER(Mov) { R[I->A] = R[I->B]; }
  BC_NEXT();
  BC_HANDLER(MovImm) { R[I->A] = uI(I->Imm); }
  BC_NEXT();

  BC_HANDLER(Alloca) {
    uint64_t Bytes = static_cast<uint64_t>(I->Imm);
    const BcAllocSite &S = Fn.AllocSites[I->B];
    void *P = MM.allocateTagged(Bytes, S.HasHeap, S.Heap, /*Zero=*/false);
    std::memset(P, 0, Bytes);
    Frm.Allocas.push_back(P);
    R[I->A] = reinterpret_cast<uint64_t>(P);
  }
  BC_NEXT();
  BC_HANDLER(Malloc) {
    uint64_t Bytes = R[I->C];
    const BcAllocSite &S = Fn.AllocSites[I->B];
    R[I->A] = reinterpret_cast<uint64_t>(
        MM.allocateTagged(Bytes, S.HasHeap, S.Heap, /*Zero=*/false));
  }
  BC_NEXT();
  BC_HANDLER(Free) { MM.deallocate(reinterpret_cast<void *>(R[I->A])); }
  BC_NEXT();

  BC_HANDLER(Load8) {
    std::memcpy(&R[I->A], reinterpret_cast<void *>(R[I->B]), 8);
  }
  BC_NEXT();
  BC_HANDLER(LoadSx) {
    int64_t V = 0;
    std::memcpy(&V, reinterpret_cast<void *>(R[I->B]), I->C);
    unsigned Shift = 64 - 8 * I->C;
    V = (V << Shift) >> Shift;
    R[I->A] = uI(V);
  }
  BC_NEXT();
  BC_HANDLER(LoadZx) {
    uint64_t V = 0;
    std::memcpy(&V, reinterpret_cast<void *>(R[I->B]), I->C);
    R[I->A] = V;
  }
  BC_NEXT();
  BC_HANDLER(Store8) {
    std::memcpy(reinterpret_cast<void *>(R[I->B]), &R[I->A], 8);
  }
  BC_NEXT();
  BC_HANDLER(StoreN) {
    std::memcpy(reinterpret_cast<void *>(R[I->B]), &R[I->A], I->C);
  }
  BC_NEXT();

  BC_HANDLER(Add) { R[I->A] = uI(sem::addWrap(sI(R[I->B]), sI(R[I->C]))); }
  BC_NEXT();
  BC_HANDLER(Sub) { R[I->A] = uI(sem::subWrap(sI(R[I->B]), sI(R[I->C]))); }
  BC_NEXT();
  BC_HANDLER(Mul) { R[I->A] = uI(sem::mulWrap(sI(R[I->B]), sI(R[I->C]))); }
  BC_NEXT();
  BC_HANDLER(SDiv) {
    int64_t D = sI(R[I->C]);
    if (D == 0)
      reportFatalError("division by zero");
    R[I->A] = uI(sem::sdivWrap(sI(R[I->B]), D));
  }
  BC_NEXT();
  BC_HANDLER(SRem) {
    int64_t D = sI(R[I->C]);
    if (D == 0)
      reportFatalError("remainder by zero");
    R[I->A] = uI(sem::sremWrap(sI(R[I->B]), D));
  }
  BC_NEXT();
  BC_HANDLER(And) { R[I->A] = R[I->B] & R[I->C]; }
  BC_NEXT();
  BC_HANDLER(Or) { R[I->A] = R[I->B] | R[I->C]; }
  BC_NEXT();
  BC_HANDLER(Xor) { R[I->A] = R[I->B] ^ R[I->C]; }
  BC_NEXT();
  BC_HANDLER(Shl) { R[I->A] = uI(sem::shlWrap(sI(R[I->B]), sI(R[I->C]))); }
  BC_NEXT();
  BC_HANDLER(Shr) { R[I->A] = uI(sem::shrLogical(sI(R[I->B]), sI(R[I->C]))); }
  BC_NEXT();

  BC_HANDLER(AddImm) { R[I->A] = uI(sem::addWrap(sI(R[I->B]), I->Imm)); }
  BC_NEXT();
  BC_HANDLER(SubImm) { R[I->A] = uI(sem::subWrap(sI(R[I->B]), I->Imm)); }
  BC_NEXT();
  BC_HANDLER(MulImm) { R[I->A] = uI(sem::mulWrap(sI(R[I->B]), I->Imm)); }
  BC_NEXT();
  BC_HANDLER(SDivImm) {
    if (I->Imm == 0)
      reportFatalError("division by zero");
    R[I->A] = uI(sem::sdivWrap(sI(R[I->B]), I->Imm));
  }
  BC_NEXT();
  BC_HANDLER(SRemImm) {
    if (I->Imm == 0)
      reportFatalError("remainder by zero");
    R[I->A] = uI(sem::sremWrap(sI(R[I->B]), I->Imm));
  }
  BC_NEXT();
  BC_HANDLER(AndImm) { R[I->A] = R[I->B] & uI(I->Imm); }
  BC_NEXT();
  BC_HANDLER(OrImm) { R[I->A] = R[I->B] | uI(I->Imm); }
  BC_NEXT();
  BC_HANDLER(XorImm) { R[I->A] = R[I->B] ^ uI(I->Imm); }
  BC_NEXT();
  BC_HANDLER(ShlImm) { R[I->A] = uI(sem::shlWrap(sI(R[I->B]), I->Imm)); }
  BC_NEXT();
  BC_HANDLER(ShrImm) { R[I->A] = uI(sem::shrLogical(sI(R[I->B]), I->Imm)); }
  BC_NEXT();

  BC_HANDLER(FAdd) { R[I->A] = uF(dF(R[I->B]) + dF(R[I->C])); }
  BC_NEXT();
  BC_HANDLER(FSub) { R[I->A] = uF(dF(R[I->B]) - dF(R[I->C])); }
  BC_NEXT();
  BC_HANDLER(FMul) { R[I->A] = uF(dF(R[I->B]) * dF(R[I->C])); }
  BC_NEXT();
  BC_HANDLER(FDiv) { R[I->A] = uF(dF(R[I->B]) / dF(R[I->C])); }
  BC_NEXT();

  BC_HANDLER(SiToFp) { R[I->A] = uF(static_cast<double>(sI(R[I->B]))); }
  BC_NEXT();
  BC_HANDLER(FpToSi) { R[I->A] = uI(sem::fpToSiSat(dF(R[I->B]))); }
  BC_NEXT();

  BC_HANDLER(CmpEq) { R[I->A] = R[I->B] == R[I->C] ? 1 : 0; }
  BC_NEXT();
  BC_HANDLER(CmpNe) { R[I->A] = R[I->B] != R[I->C] ? 1 : 0; }
  BC_NEXT();
  BC_HANDLER(CmpLt) { R[I->A] = sI(R[I->B]) < sI(R[I->C]) ? 1 : 0; }
  BC_NEXT();
  BC_HANDLER(CmpLe) { R[I->A] = sI(R[I->B]) <= sI(R[I->C]) ? 1 : 0; }
  BC_NEXT();
  BC_HANDLER(CmpGt) { R[I->A] = sI(R[I->B]) > sI(R[I->C]) ? 1 : 0; }
  BC_NEXT();
  BC_HANDLER(CmpGe) { R[I->A] = sI(R[I->B]) >= sI(R[I->C]) ? 1 : 0; }
  BC_NEXT();

  BC_HANDLER(CmpEqImm) { R[I->A] = sI(R[I->B]) == I->Imm ? 1 : 0; }
  BC_NEXT();
  BC_HANDLER(CmpNeImm) { R[I->A] = sI(R[I->B]) != I->Imm ? 1 : 0; }
  BC_NEXT();
  BC_HANDLER(CmpLtImm) { R[I->A] = sI(R[I->B]) < I->Imm ? 1 : 0; }
  BC_NEXT();
  BC_HANDLER(CmpLeImm) { R[I->A] = sI(R[I->B]) <= I->Imm ? 1 : 0; }
  BC_NEXT();
  BC_HANDLER(CmpGtImm) { R[I->A] = sI(R[I->B]) > I->Imm ? 1 : 0; }
  BC_NEXT();
  BC_HANDLER(CmpGeImm) { R[I->A] = sI(R[I->B]) >= I->Imm ? 1 : 0; }
  BC_NEXT();

  BC_HANDLER(FCmpEq) { R[I->A] = dF(R[I->B]) == dF(R[I->C]) ? 1 : 0; }
  BC_NEXT();
  BC_HANDLER(FCmpNe) { R[I->A] = dF(R[I->B]) != dF(R[I->C]) ? 1 : 0; }
  BC_NEXT();
  BC_HANDLER(FCmpLt) { R[I->A] = dF(R[I->B]) < dF(R[I->C]) ? 1 : 0; }
  BC_NEXT();
  BC_HANDLER(FCmpLe) { R[I->A] = dF(R[I->B]) <= dF(R[I->C]) ? 1 : 0; }
  BC_NEXT();
  BC_HANDLER(FCmpGt) { R[I->A] = dF(R[I->B]) > dF(R[I->C]) ? 1 : 0; }
  BC_NEXT();
  BC_HANDLER(FCmpGe) { R[I->A] = dF(R[I->B]) >= dF(R[I->C]) ? 1 : 0; }
  BC_NEXT();

  BC_HANDLER(Select) {
    R[I->A] = R[I->B] != 0 ? R[I->C] : R[static_cast<uint16_t>(I->Imm)];
  }
  BC_NEXT();

  BC_HANDLER(Jmp) { BC_JUMP(I->Imm); }
  BC_HANDLER(JmpIfZ) {
    if (R[I->A] == 0)
      BC_JUMP(I->Imm);
  }
  BC_NEXT();
  BC_HANDLER(JmpIfNZ) {
    if (R[I->A] != 0)
      BC_JUMP(I->Imm);
  }
  BC_NEXT();

  BC_HANDLER(Ret) {
    Executed = Exec;
    RetValue = I->C ? R[I->A] : 0;
    return ExecStatus::Returned;
  }

  BC_HANDLER(Call) {
    const BcCallSite &CS = Fn.CallSites[I->Imm];
    const uint16_t *ArgRegs = Fn.RegPool.data() + CS.ArgStart;
    uint64_t Small[16];
    std::vector<uint64_t> Big;
    uint64_t *Args = Small;
    if (CS.ArgCount > 16) {
      Big.resize(CS.ArgCount);
      Args = Big.data();
    }
    for (uint16_t A = 0; A < CS.ArgCount; ++A)
      Args[A] = R[ArgRegs[A]];
    Executed = Exec;
    uint64_t RV = callFunction(CS.Callee, Args, CS.ArgCount);
    Exec = Executed;
    if (I->C)
      R[I->A] = RV;
  }
  BC_NEXT();

  BC_HANDLER(Print) {
    const BcPrintSite &PS = Fn.PrintSites[I->Imm];
    std::vector<Cell> Args(PS.ArgCount);
    for (uint16_t A = 0; A < PS.ArgCount; ++A)
      Args[A].Raw = R[Fn.RegPool[PS.ArgStart + A]];
    std::string Out = sem::formatPrintedText(PS.Format, Args);
    Rt.deferPrintf("%s", Out.c_str());
  }
  BC_NEXT();

  // The five per-heap-class separation checks: the paper's single
  // mask-AND+compare (§5.1), with the expected tag bits folded into Imm.
#define BC_CHECKHEAP_BODY()                                                   \
  do {                                                                        \
    if (Spec) {                                                               \
      Rt.countSeparationCheck();                                              \
      if ((R[I->A] & kHeapTagMask) != static_cast<uint64_t>(I->Imm))          \
        Rt.misspecAbort(                                                      \
            "separation check failed: pointer outside assumed heap");         \
    }                                                                         \
  } while (0)
  BC_HANDLER(CheckHeapRo) { BC_CHECKHEAP_BODY(); }
  BC_NEXT();
  BC_HANDLER(CheckHeapPrivate) { BC_CHECKHEAP_BODY(); }
  BC_NEXT();
  BC_HANDLER(CheckHeapRedux) { BC_CHECKHEAP_BODY(); }
  BC_NEXT();
  BC_HANDLER(CheckHeapShortLived) { BC_CHECKHEAP_BODY(); }
  BC_NEXT();
  BC_HANDLER(CheckHeapUnrestricted) { BC_CHECKHEAP_BODY(); }
  BC_NEXT();
  BC_HANDLER(CheckHeapCommutative) { BC_CHECKHEAP_BODY(); }
  BC_NEXT();
#undef BC_CHECKHEAP_BODY

  BC_HANDLER(PrivRead) {
    if (Spec) {
      uint64_t Addr = R[I->A];
      if ((Addr & kHeapTagMask) !=
          (heapTag(HeapKind::Private) << kHeapTagShift))
        Rt.misspecAbort("private_read of a pointer outside the private heap");
      Rt.privateReadTagged(Addr, static_cast<size_t>(I->Imm));
    }
  }
  BC_NEXT();
  BC_HANDLER(PrivWrite) {
    if (Spec) {
      uint64_t Addr = R[I->A];
      if ((Addr & kHeapTagMask) !=
          (heapTag(HeapKind::Private) << kHeapTagShift))
        Rt.misspecAbort(
            "private_write of a pointer outside the private heap");
      Rt.privateWriteTagged(Addr, static_cast<size_t>(I->Imm));
    }
  }
  BC_NEXT();
  BC_HANDLER(SpecEq) {
    if (Spec && R[I->A] != R[I->B])
      Rt.misspecAbort("value prediction failed");
  }
  BC_NEXT();

  BC_HANDLER(ParLoopEnter) {
    if (Plan && !InParallelBody) {
      Executed = Exec;
      uint32_t Cont = runPlannedLoop(Fn, Frm, Fn.ParSites.front());
      Exec = Executed;
      BC_JUMP(Cont);
    }
  }
  BC_NEXT();
  BC_HANDLER(IterEnd) {
    if (StopAtIterEnd) {
      Executed = Exec;
      RetValue = 0;
      return ExecStatus::IterEnded;
    }
    BC_JUMP(I->Imm);
  }

  // Fused superinstructions (see bytecode::fusePairs): each executes the
  // original pair's effects in order — including the first instruction's
  // register write, which later code may read — then either takes the
  // fused branch or steps over the replaced second instruction.
#define BC_CMPJZ_BODY(Cond, Target)                                           \
  do {                                                                        \
    uint64_t V = (Cond) ? 1 : 0;                                              \
    R[I->A] = V;                                                              \
    if (V == 0)                                                               \
      BC_JUMP(Target);                                                        \
    BC_SKIP2();                                                               \
  } while (0)
  BC_HANDLER(CmpEqJz) { BC_CMPJZ_BODY(R[I->B] == R[I->C], I->Imm); }
  BC_HANDLER(CmpNeJz) { BC_CMPJZ_BODY(R[I->B] != R[I->C], I->Imm); }
  BC_HANDLER(CmpLtJz) { BC_CMPJZ_BODY(sI(R[I->B]) < sI(R[I->C]), I->Imm); }
  BC_HANDLER(CmpLeJz) { BC_CMPJZ_BODY(sI(R[I->B]) <= sI(R[I->C]), I->Imm); }
  BC_HANDLER(CmpGtJz) { BC_CMPJZ_BODY(sI(R[I->B]) > sI(R[I->C]), I->Imm); }
  BC_HANDLER(CmpGeJz) { BC_CMPJZ_BODY(sI(R[I->B]) >= sI(R[I->C]), I->Imm); }
  BC_HANDLER(CmpEqImmJz) { BC_CMPJZ_BODY(sI(R[I->B]) == I->Imm, I->C); }
  BC_HANDLER(CmpNeImmJz) { BC_CMPJZ_BODY(sI(R[I->B]) != I->Imm, I->C); }
  BC_HANDLER(CmpLtImmJz) { BC_CMPJZ_BODY(sI(R[I->B]) < I->Imm, I->C); }
  BC_HANDLER(CmpLeImmJz) { BC_CMPJZ_BODY(sI(R[I->B]) <= I->Imm, I->C); }
  BC_HANDLER(CmpGtImmJz) { BC_CMPJZ_BODY(sI(R[I->B]) > I->Imm, I->C); }
  BC_HANDLER(CmpGeImmJz) { BC_CMPJZ_BODY(sI(R[I->B]) >= I->Imm, I->C); }
#undef BC_CMPJZ_BODY

  BC_HANDLER(AddLoad8) {
    uint64_t P = uI(sem::addWrap(sI(R[I->B]), sI(R[I->C])));
    R[static_cast<uint16_t>(I->Imm)] = P;
    std::memcpy(&R[I->A], reinterpret_cast<void *>(P), 8);
  }
  BC_SKIP2();
  BC_HANDLER(AddImmLoad8) {
    uint64_t P = uI(sem::addWrap(sI(R[I->B]), I->Imm));
    R[I->C] = P;
    std::memcpy(&R[I->A], reinterpret_cast<void *>(P), 8);
  }
  BC_SKIP2();
  BC_HANDLER(AddStore8) {
    uint64_t P = uI(sem::addWrap(sI(R[I->B]), sI(R[I->C])));
    R[static_cast<uint16_t>(I->Imm)] = P;
    std::memcpy(reinterpret_cast<void *>(P), &R[I->A], 8);
  }
  BC_SKIP2();
  BC_HANDLER(AddImmStore8) {
    uint64_t P = uI(sem::addWrap(sI(R[I->B]), I->Imm));
    R[I->C] = P;
    std::memcpy(reinterpret_cast<void *>(P), &R[I->A], 8);
  }
  BC_SKIP2();

  BC_HANDLER(PostDep) {
    Rt.postDep(R[I->A], static_cast<uint32_t>(I->Imm), R[I->B]);
  }
  BC_NEXT();
  BC_HANDLER(WaitDep) {
    R[I->A] = Rt.waitDep(R[I->B], static_cast<uint32_t>(I->Imm));
  }
  BC_NEXT();

  BC_HANDLER(ComUpdate) {
    // C packs width (low nibble) and combining operator (high bits); Imm
    // holds the commutative heap's tag bits so the separation check is one
    // mask-AND+compare, same as the CheckHeap* family.
    unsigned Bytes = I->C & 0xF;
    ComOp Op = static_cast<ComOp>(I->C >> 4);
    if (Spec) {
      Rt.countSeparationCheck();
      if ((R[I->A] & kHeapTagMask) != static_cast<uint64_t>(I->Imm))
        Rt.misspecAbort("comupdate of a pointer outside the commutative heap");
      Rt.comUpdateTagged(R[I->A], Op, Bytes, sI(R[I->B]));
    } else {
      applyComUpdate(R[I->A], Op, Bytes, sI(R[I->B]));
    }
  }
  BC_NEXT();

#if !PRIVATEER_BC_THREADED
  }
  PRIVATEER_UNREACHABLE("bad bytecode opcode");
#endif
#undef BC_HANDLER
#undef BC_DISPATCH
#undef BC_NEXT
#undef BC_JUMP
#undef BC_SKIP2
}
