//===- bytecode/Image.cpp - Relocatable lowered-program images ------------===//

#include "bytecode/Image.h"

#include <cstring>

using namespace privateer;
using namespace privateer::bytecode;

namespace {

constexpr uint64_t kImageMagic = 0x5052495642434947ull; // "PRIVBCIG"
constexpr uint32_t kImageVersion = 3; // v2: + NumDepChannels; v3: + ComGlobals

// Hard ceilings on embedded counts: an image is at most tens of MB, so a
// count beyond these is corruption, not a big program.
constexpr uint64_t kMaxVecElems = 64u << 20;
constexpr uint64_t kMaxStrBytes = 64u << 20;

void putU8(std::string &B, uint8_t V) { B.push_back(static_cast<char>(V)); }
void putU16(std::string &B, uint16_t V) {
  for (int I = 0; I < 2; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}
void putU32(std::string &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}
void putU64(std::string &B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}
void putStr(std::string &B, const std::string &S) {
  putU64(B, S.size());
  B.append(S);
}

/// Bounds-checked reader over the raw image bytes.
struct Cursor {
  const uint8_t *P;
  size_t Len;
  size_t Off = 0;
  bool Fail = false;
  std::string Why;

  bool need(size_t N) {
    if (Fail || Len - Off < N) {
      if (!Fail) {
        Fail = true;
        Why = "truncated image";
      }
      return false;
    }
    return true;
  }
  uint8_t getU8() {
    if (!need(1))
      return 0;
    return P[Off++];
  }
  uint16_t getU16() {
    if (!need(2))
      return 0;
    uint16_t V = 0;
    for (int I = 0; I < 2; ++I)
      V |= static_cast<uint16_t>(P[Off + I]) << (8 * I);
    Off += 2;
    return V;
  }
  uint32_t getU32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(P[Off + I]) << (8 * I);
    Off += 4;
    return V;
  }
  uint64_t getU64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(P[Off + I]) << (8 * I);
    Off += 8;
    return V;
  }
  std::string getStr() {
    uint64_t N = getU64();
    if (N > kMaxStrBytes) {
      Fail = true;
      Why = "string length exceeds image limits";
      return {};
    }
    if (!need(N))
      return {};
    std::string S(reinterpret_cast<const char *>(P + Off), N);
    Off += N;
    return S;
  }
  /// Element count prefix for a fixed-stride vector: checked against both
  /// the sanity ceiling and the bytes actually remaining.
  uint64_t getCount(size_t Stride) {
    uint64_t N = getU64();
    if (N > kMaxVecElems || (Stride && !Fail && Len - Off < N * Stride)) {
      Fail = true;
      Why = "element count exceeds image size";
      return 0;
    }
    return N;
  }
};

void putFunction(std::string &B, const BcFunction &F) {
  putStr(B, F.Name);
  putU16(B, F.NumArgs);
  putU16(B, F.NumRegs);
  putU8(B, F.HasRetValue ? 1 : 0);
  putU64(B, F.Code.size());
  for (const BcInst &I : F.Code) {
    putU16(B, I.Op);
    putU16(B, I.A);
    putU16(B, I.B);
    putU16(B, I.C);
    putU64(B, static_cast<uint64_t>(I.Imm));
  }
  putU64(B, F.ConstInit.size());
  for (const auto &[Reg, Bits] : F.ConstInit) {
    putU16(B, Reg);
    putU64(B, Bits);
  }
  putU64(B, F.GlobalInit.size());
  for (const auto &[Reg, GIdx] : F.GlobalInit) {
    putU16(B, Reg);
    putU32(B, GIdx);
  }
  putU64(B, F.RegPool.size());
  for (uint16_t R : F.RegPool)
    putU16(B, R);
  putU64(B, F.CallSites.size());
  for (const BcCallSite &C : F.CallSites) {
    putU32(B, C.Callee);
    putU32(B, C.ArgStart);
    putU16(B, C.ArgCount);
  }
  putU64(B, F.PrintSites.size());
  for (const BcPrintSite &P : F.PrintSites) {
    putStr(B, P.Format);
    putU32(B, P.ArgStart);
    putU16(B, P.ArgCount);
  }
  putU64(B, F.ParSites.size());
  for (const BcParLoopSite &S : F.ParSites) {
    putU16(B, S.BeginReg);
    putU16(B, S.BoundReg);
    putU16(B, S.IvReg);
    putU32(B, S.BodyEntryPc);
    putU32(B, S.ExitEntryPc);
  }
  putU64(B, F.AllocSites.size());
  for (const BcAllocSite &S : F.AllocSites) {
    putU8(B, S.HasHeap ? 1 : 0);
    putU8(B, static_cast<uint8_t>(S.Heap));
  }
}

bool getHeapKind(Cursor &C, HeapKind &K) {
  uint8_t V = C.getU8();
  if (V >= kNumHeapKinds) {
    C.Fail = true;
    C.Why = "bad heap kind";
    return false;
  }
  K = static_cast<HeapKind>(V);
  return true;
}

bool getFunction(Cursor &C, BcFunction &F, uint32_t NumFunctions,
                 uint32_t NumGlobals) {
  F.Name = C.getStr();
  F.NumArgs = C.getU16();
  F.NumRegs = C.getU16();
  F.HasRetValue = C.getU8() != 0;
  uint64_t NCode = C.getCount(16);
  F.Code.resize(C.Fail ? 0 : NCode);
  for (BcInst &I : F.Code) {
    I.Op = C.getU16();
    I.A = C.getU16();
    I.B = C.getU16();
    I.C = C.getU16();
    I.Imm = static_cast<int64_t>(C.getU64());
    if (I.Op >= kNumBcOps) {
      C.Fail = true;
      C.Why = "bad opcode";
      return false;
    }
  }
  uint64_t NConst = C.getCount(10);
  F.ConstInit.resize(C.Fail ? 0 : NConst);
  for (auto &[Reg, Bits] : F.ConstInit) {
    Reg = C.getU16();
    Bits = C.getU64();
  }
  uint64_t NGlob = C.getCount(6);
  F.GlobalInit.resize(C.Fail ? 0 : NGlob);
  for (auto &[Reg, GIdx] : F.GlobalInit) {
    Reg = C.getU16();
    GIdx = C.getU32();
    if (!C.Fail && GIdx >= NumGlobals) {
      C.Fail = true;
      C.Why = "global index out of range";
      return false;
    }
  }
  uint64_t NPool = C.getCount(2);
  F.RegPool.resize(C.Fail ? 0 : NPool);
  for (uint16_t &R : F.RegPool)
    R = C.getU16();
  uint64_t NCall = C.getCount(10);
  F.CallSites.resize(C.Fail ? 0 : NCall);
  for (BcCallSite &S : F.CallSites) {
    S.Callee = C.getU32();
    S.ArgStart = C.getU32();
    S.ArgCount = C.getU16();
    if (!C.Fail && (S.Callee >= NumFunctions ||
                    uint64_t(S.ArgStart) + S.ArgCount > F.RegPool.size())) {
      C.Fail = true;
      C.Why = "call site out of range";
      return false;
    }
  }
  uint64_t NPrint = C.getCount(8);
  F.PrintSites.resize(C.Fail ? 0 : NPrint);
  for (BcPrintSite &S : F.PrintSites) {
    S.Format = C.getStr();
    S.ArgStart = C.getU32();
    S.ArgCount = C.getU16();
    if (!C.Fail && uint64_t(S.ArgStart) + S.ArgCount > F.RegPool.size()) {
      C.Fail = true;
      C.Why = "print site out of range";
      return false;
    }
  }
  uint64_t NPar = C.getCount(14);
  F.ParSites.resize(C.Fail ? 0 : NPar);
  for (BcParLoopSite &S : F.ParSites) {
    S.BeginReg = C.getU16();
    S.BoundReg = C.getU16();
    S.IvReg = C.getU16();
    S.BodyEntryPc = C.getU32();
    S.ExitEntryPc = C.getU32();
    if (!C.Fail &&
        (S.BodyEntryPc > F.Code.size() || S.ExitEntryPc > F.Code.size())) {
      C.Fail = true;
      C.Why = "parallel site pc out of range";
      return false;
    }
  }
  uint64_t NAlloc = C.getCount(2);
  F.AllocSites.resize(C.Fail ? 0 : NAlloc);
  for (BcAllocSite &S : F.AllocSites) {
    S.HasHeap = C.getU8() != 0;
    if (!getHeapKind(C, S.Heap))
      return false;
  }
  return !C.Fail;
}

} // namespace

std::string bytecode::serializeProgram(const BytecodeProgram &Prog) {
  std::string B;
  putU64(B, kImageMagic);
  putU32(B, kImageVersion);
  putU32(B, Prog.NumDepChannels);
  putU64(B, Prog.Globals.size());
  for (const BcGlobal &G : Prog.Globals) {
    putStr(B, G.Name);
    putU64(B, G.SizeBytes);
    putU8(B, G.HasHeap ? 1 : 0);
    putU8(B, static_cast<uint8_t>(G.Heap));
  }
  putU64(B, Prog.ReduxGlobals.size());
  for (const BcReduxGlobal &R : Prog.ReduxGlobals) {
    putU32(B, R.GlobalIdx);
    putU8(B, static_cast<uint8_t>(R.Elem));
    putU8(B, static_cast<uint8_t>(R.Op));
  }
  putU64(B, Prog.ComGlobals.size());
  for (const BcComGlobal &G : Prog.ComGlobals) {
    putU32(B, G.GlobalIdx);
    putU8(B, static_cast<uint8_t>(G.Op));
    putU8(B, G.ElemBytes);
  }
  putU64(B, Prog.Functions.size());
  for (const BcFunction &F : Prog.Functions)
    putFunction(B, F);
  return B;
}

std::unique_ptr<BytecodeProgram>
bytecode::deserializeProgram(const void *Image, size_t Bytes,
                             std::string &Err) {
  Cursor C{static_cast<const uint8_t *>(Image), Bytes, 0, false, {}};
  auto Bad = [&](const std::string &Why) {
    Err = "bytecode image: " + Why;
    return std::unique_ptr<BytecodeProgram>();
  };
  if (C.getU64() != kImageMagic)
    return Bad("bad magic");
  if (C.getU32() != kImageVersion)
    return Bad("unsupported image version");

  auto Prog = std::make_unique<BytecodeProgram>();
  Prog->NumDepChannels = C.getU32();
  uint64_t NumGlobals = C.getCount(10);
  if (C.Fail)
    return Bad(C.Why);
  Prog->Globals.resize(NumGlobals);
  for (uint64_t I = 0; I < NumGlobals; ++I) {
    BcGlobal &G = Prog->Globals[I];
    G.Name = C.getStr();
    G.SizeBytes = C.getU64();
    G.HasHeap = C.getU8() != 0;
    if (!getHeapKind(C, G.Heap))
      return Bad(C.Why);
    if (Prog->GlobalIdx.count(G.Name))
      return Bad("duplicate global name");
    Prog->GlobalIdx[G.Name] = static_cast<uint32_t>(I);
  }
  uint64_t NumRedux = C.getCount(6);
  if (C.Fail)
    return Bad(C.Why);
  Prog->ReduxGlobals.resize(NumRedux);
  for (BcReduxGlobal &R : Prog->ReduxGlobals) {
    R.GlobalIdx = C.getU32();
    uint8_t Elem = C.getU8(), Op = C.getU8();
    if (C.Fail)
      return Bad(C.Why);
    if (R.GlobalIdx >= NumGlobals || Elem > uint8_t(ReduxElem::F64) ||
        Op > uint8_t(ReduxOp::Max))
      return Bad("bad reduction registration");
    R.Elem = static_cast<ReduxElem>(Elem);
    R.Op = static_cast<ReduxOp>(Op);
  }
  uint64_t NumCom = C.getCount(6);
  if (C.Fail)
    return Bad(C.Why);
  Prog->ComGlobals.resize(NumCom);
  for (BcComGlobal &G : Prog->ComGlobals) {
    G.GlobalIdx = C.getU32();
    uint8_t Op = C.getU8(), ElemBytes = C.getU8();
    if (C.Fail)
      return Bad(C.Why);
    if (G.GlobalIdx >= NumGlobals || Op >= kNumComOps ||
        (ElemBytes != 1 && ElemBytes != 2 && ElemBytes != 4 && ElemBytes != 8))
      return Bad("bad commutative registration");
    G.Op = static_cast<ComOp>(Op);
    G.ElemBytes = ElemBytes;
  }
  uint64_t NumFunctions = C.getCount(0);
  if (C.Fail || NumFunctions > kMaxVecElems)
    return Bad(C.Fail ? C.Why : "function count exceeds image limits");
  Prog->Functions.resize(NumFunctions);
  for (uint64_t I = 0; I < NumFunctions; ++I) {
    if (!getFunction(C, Prog->Functions[I],
                     static_cast<uint32_t>(NumFunctions),
                     static_cast<uint32_t>(NumGlobals)))
      return Bad(C.Why);
    const std::string &Name = Prog->Functions[I].Name;
    if (Prog->FunctionIdx.count(Name))
      return Bad("duplicate function name");
    Prog->FunctionIdx[Name] = static_cast<uint32_t>(I);
  }
  if (C.Off != C.Len)
    return Bad("trailing bytes after program");
  return Prog;
}
