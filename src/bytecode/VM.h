//===- bytecode/VM.h - Direct-threaded bytecode VM --------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a lowered BytecodeProgram over real host memory with a flat
/// register file per frame.  Dispatch is direct-threaded (computed goto)
/// on GCC/Clang with a switch fallback.  The VM mirrors the interpreter's
/// observable semantics exactly — same arithmetic edge cases (via
/// interp/Semantics.h), same fatal-error messages, same deferred-output
/// bytes, same runtime check/stat behavior — because the interpreter is
/// its differential oracle.
///
/// Parallel execution follows the interpreter's ParallelPlan contract:
/// arming a plan makes ParLoopEnter instructions hand the planned loop's
/// iterations to Runtime::runParallel; with no plan armed they fall
/// through to ordinary jumps, which is also what recovery and degraded
/// re-execution rely on inside the runtime.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_BYTECODE_VM_H
#define PRIVATEER_BYTECODE_VM_H

#include "bytecode/Bytecode.h"
#include "interp/MemoryManager.h"
#include "interp/Interpreter.h"
#include "runtime/Runtime.h"

#include <map>
#include <memory>
#include <vector>

namespace privateer {
namespace bytecode {

class VM {
public:
  /// Counterpart of Interpreter::ParallelPlan; the loop itself is already
  /// compiled into the program's BcParLoopSite.
  struct ParallelPlan {
    ParallelOptions Options;
    /// Accumulated across invocations of the loop.
    InvocationStats Stats;
  };

  VM(const BytecodeProgram &Prog, interp::MemoryManager &MM);

  /// Allocates and zero-fills all globals (module order, matching the
  /// interpreter).  Must run before execution.
  void initializeGlobals();

  /// Runtime address of global \p Idx (see BytecodeProgram::GlobalIdx).
  uint64_t globalAddress(uint32_t Idx) const;

  /// Calls @\p Name with \p Args; the function must exist.
  interp::Cell run(const std::string &Name,
                   const std::vector<interp::Cell> &Args);

  void setParallelPlan(ParallelPlan *P) { Plan = P; }

  /// Hard bound on executed bytecode instructions (runaway-loop guard).
  void setInstructionBudget(uint64_t N) { Budget = N; }
  uint64_t instructionsExecuted() const { return Executed; }

private:
  /// A frame is a slice of the preallocated register arena plus the list
  /// of frame allocations to release at return.  The arena never moves,
  /// so nested exec invocations keep raw pointers into it.
  struct Frame {
    uint64_t *R = nullptr;
    std::vector<void *> Allocas;
  };

  /// Register-arena capacity in 64-bit slots (bounds call depth; a frame
  /// costs NumRegs slots, so this allows thousands of nested calls).
  static constexpr size_t kRegStackSlots = 1u << 18;

  enum class ExecStatus : uint8_t {
    Returned, ///< A Ret executed; the return value is valid.
    IterEnded ///< A planned-body run reached its IterEnd.
  };

  uint64_t callFunction(uint32_t FnIdx, const uint64_t *Args, size_t NumArgs);

  /// The dispatch loop.  \p StopAtIterEnd marks a planned-iteration body
  /// run (IterEnd returns instead of jumping back to the header).
  ExecStatus exec(const BcFunction &Fn, Frame &Frm, uint32_t StartPc,
                  bool StopAtIterEnd, uint64_t &RetValue);

  /// ParLoopEnter: run the compiled planned loop through the runtime.
  /// Returns the pc to continue from (the header->exit edge).
  uint32_t runPlannedLoop(const BcFunction &Fn, Frame &Frm,
                          const BcParLoopSite &Site);

  const BytecodeProgram &Prog;
  interp::MemoryManager &MM;
  ParallelPlan *Plan = nullptr;
  std::vector<uint64_t> GlobalAddrs; ///< By global index.
  /// Per-function frame-entry images (zeros + materialized constants +
  /// global addresses), built once in initializeGlobals and applied to a
  /// fresh frame with one memcpy instead of per-entry init loops.
  std::vector<std::vector<uint64_t>> FrameInit;
  /// The register arena backing all frames; deliberately uninitialized
  /// storage (frames are fully imaged from FrameInit on entry).
  std::unique_ptr<uint64_t[]> RegStack;
  size_t StackTop = 0; ///< Arena watermark, in slots.
  uint64_t Budget = 2'000'000'000;
  uint64_t Executed = 0;
  bool InParallelBody = false;
};

} // namespace bytecode
} // namespace privateer

#endif // PRIVATEER_BYTECODE_VM_H
