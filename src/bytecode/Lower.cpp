//===- bytecode/Lower.cpp - IR -> bytecode lowering -----------------------===//

#include "bytecode/Lower.h"

#include "runtime/HeapKind.h"
#include "support/ErrorHandling.h"

#include <cstring>

using namespace privateer;
using namespace privateer::bytecode;
using namespace privateer::ir;

const char *bytecode::bcOpName(BcOp Op) {
  switch (Op) {
#define PRIVATEER_BC_NAME(N)                                                  \
  case BcOp::N:                                                               \
    return #N;
    PRIVATEER_BC_OPCODES(PRIVATEER_BC_NAME)
#undef PRIVATEER_BC_NAME
  }
  return "<invalid>";
}

namespace {

/// Lowering peephole: rewrite common adjacent pairs into fused
/// superinstructions.  The second instruction of each pair stays in place,
/// so absolute jump targets remain valid — a jump into the middle of a
/// fused pair executes the preserved original, while the fused opcode
/// performs both effects and skips it.  Fusion is unconditionally
/// semantics-preserving: the fused handlers replay the pair's register
/// writes in the original order (including the first instruction's
/// destination, which later code may still read), and the candidate first
/// opcodes are never terminators, so control always flows into the pair's
/// second half.  Runs after jump fixups, when every Imm target is final.
void fusePairs(BcFunction &BF) {
  auto Contig = [](BcOp Lo, BcOp Op, BcOp Hi) {
    return static_cast<unsigned>(Op) >= static_cast<unsigned>(Lo) &&
           static_cast<unsigned>(Op) <= static_cast<unsigned>(Hi);
  };
  auto FuseOp = [](BcOp Base, BcOp Op, BcOp Lo) {
    return static_cast<uint16_t>(static_cast<unsigned>(Base) +
                                 (static_cast<unsigned>(Op) -
                                  static_cast<unsigned>(Lo)));
  };
  std::vector<BcInst> &Code = BF.Code;
  for (size_t Pc = 0; Pc + 1 < Code.size(); ++Pc) {
    BcInst &A = Code[Pc];
    const BcInst &B = Code[Pc + 1];
    BcOp AO = static_cast<BcOp>(A.Op);
    BcOp BO = static_cast<BcOp>(B.Op);
    if (BO == BcOp::JmpIfZ && B.A == A.A &&
        Contig(BcOp::CmpEq, AO, BcOp::CmpGe)) {
      // cmp rA,rB,rC ; jz rA,T  ->  Cmp*Jz with T in the free Imm slot.
      A.Op = FuseOp(BcOp::CmpEqJz, AO, BcOp::CmpEq);
      A.Imm = B.Imm;
      ++Pc;
    } else if (BO == BcOp::JmpIfZ && B.A == A.A &&
               Contig(BcOp::CmpEqImm, AO, BcOp::CmpGeImm) && B.Imm >= 0 &&
               B.Imm < 65536) {
      // Imm compares keep the constant in Imm; the target moves into C,
      // so only targets that fit 16 bits fuse.
      A.Op = FuseOp(BcOp::CmpEqImmJz, AO, BcOp::CmpEqImm);
      A.C = static_cast<uint16_t>(B.Imm);
      ++Pc;
    } else if (AO == BcOp::Add && BO == BcOp::Load8 && B.B == A.A) {
      // rX = rB + rC ; rA = load rX  ->  AddLoad8 (addr reg rX in Imm).
      A.Imm = A.A;
      A.A = B.A;
      A.Op = static_cast<uint16_t>(BcOp::AddLoad8);
      ++Pc;
    } else if (AO == BcOp::AddImm && BO == BcOp::Load8 && B.B == A.A) {
      // rX = rB + Imm ; rA = load rX  ->  AddImmLoad8 (rX in free C).
      A.C = A.A;
      A.A = B.A;
      A.Op = static_cast<uint16_t>(BcOp::AddImmLoad8);
      ++Pc;
    } else if (AO == BcOp::Add && BO == BcOp::Store8 && B.B == A.A) {
      // rX = rB + rC ; store rA to rX  ->  AddStore8 (rX in Imm).
      A.Imm = A.A;
      A.A = B.A;
      A.Op = static_cast<uint16_t>(BcOp::AddStore8);
      ++Pc;
    } else if (AO == BcOp::AddImm && BO == BcOp::Store8 && B.B == A.A) {
      // rX = rB + Imm ; store rA to rX  ->  AddImmStore8 (rX in free C).
      A.C = A.A;
      A.A = B.A;
      A.Op = static_cast<uint16_t>(BcOp::AddImmStore8);
      ++Pc;
    }
  }
}

/// The fused-opcode arithmetic above assumes the compare families keep
/// their X-macro order.
static_assert(static_cast<unsigned>(BcOp::CmpGe) -
                      static_cast<unsigned>(BcOp::CmpEq) == 5 &&
                  static_cast<unsigned>(BcOp::CmpGeImm) -
                      static_cast<unsigned>(BcOp::CmpEqImm) == 5 &&
                  static_cast<unsigned>(BcOp::CmpGeJz) -
                      static_cast<unsigned>(BcOp::CmpEqJz) == 5 &&
                  static_cast<unsigned>(BcOp::CmpGeImmJz) -
                      static_cast<unsigned>(BcOp::CmpEqImmJz) == 5,
              "compare opcode families must stay contiguous and ordered");

/// Lowers one function.  Register plan: arguments first, then every
/// value-producing instruction; phis get an extra staging register written
/// on incoming edges and copied at block entry (so all phis of a block read
/// the pre-transfer state, as in the interpreter); constants and global
/// addresses that cannot be folded into an Imm operand get materialized
/// registers preloaded from the frame-entry template.
class FunctionLowerer {
public:
  FunctionLowerer(BytecodeProgram &Prog, BcFunction &BF, const Function &F,
                  const LowerOptions &Opts, std::string &WhyNot)
      : Prog(Prog), BF(BF), F(F), Opts(Opts), WhyNot(WhyNot) {}

  bool lower() {
    if (Opts.PlanLoop && Opts.PlanLoop->header()->parent() == &F &&
        !preparePlan())
      return false;

    // Pass 1: the register plan.
    for (const auto &A : F.arguments())
      Regs[A.get()] = allocReg();
    BF.NumArgs = static_cast<uint16_t>(F.arguments().size());
    for (const auto &B : F.blocks()) {
      if (!B->terminator())
        return fail("block '" + B->name() + "' has no terminator");
      for (const auto &I : B->instructions())
        if (I->type() != Type::Void)
          Regs[I.get()] = allocReg();
    }
    // Phi staging plan.  A block's phis form a parallel copy: incoming
    // edges must write somewhere the block's own phi reads can't observe
    // mid-transfer.  Staging registers (plus a copy at block entry) give
    // that in general, but when no phi of the block uses another phi of
    // the same block as an incoming value, the edge writes can target the
    // phi registers directly and the entry copies disappear — one fewer
    // dispatch per loop iteration for the common single-phi header.
    for (const auto &B : F.blocks()) {
      std::vector<const Instruction *> Phis = leadingPhis(B.get());
      if (Phis.empty())
        continue;
      bool NeedStage = false;
      for (const Instruction *Phi : Phis)
        for (unsigned A = 0; A < Phi->numOperands() && !NeedStage; ++A)
          for (const Instruction *Other : Phis)
            if (Phi->operand(A) == Other) {
              NeedStage = true;
              break;
            }
      for (const Instruction *Phi : Phis)
        Stage[Phi] = NeedStage ? allocReg() : Regs[Phi];
    }
    if (Failed)
      return false;

    // Pass 2: code emission.
    for (const auto &B : F.blocks()) {
      lowerBlock(B.get());
      if (Failed)
        return false;
    }
    for (const auto &[Pc, Target] : Fixups) {
      auto It = BlockPc.find(Target);
      if (It == BlockPc.end())
        return fail("jump to unlowered block '" + Target->name() + "'");
      BF.Code[Pc].Imm = It->second;
    }
    if (PlannedHeader) {
      BcParLoopSite &Site = BF.ParSites.front();
      if (!Site.BodyEntryPc || !Site.ExitEntryPc)
        return fail("planned loop header edges were not lowered");
    }
    BF.NumRegs = static_cast<uint16_t>(NextReg);
    BF.HasRetValue = F.returnType() != Type::Void;
    if (!Failed)
      fusePairs(BF);
    return !Failed;
  }

private:
  BytecodeProgram &Prog;
  BcFunction &BF;
  const Function &F;
  const LowerOptions &Opts;
  std::string &WhyNot;
  bool Failed = false;

  std::map<const Value *, uint16_t> Regs;
  std::map<const Instruction *, uint16_t> Stage;
  std::map<uint64_t, uint16_t> ConstRegs; // raw 64-bit pattern -> register
  std::map<const GlobalVariable *, uint16_t> GlobalRegs;
  std::map<const BasicBlock *, uint32_t> BlockPc;
  std::vector<std::pair<uint32_t, const BasicBlock *>> Fixups;
  uint32_t NextReg = 0;
  const BasicBlock *PlannedHeader = nullptr;

  bool fail(const std::string &Why) {
    if (!Failed)
      WhyNot = "@" + F.name() + ": " + Why;
    Failed = true;
    return false;
  }

  uint16_t allocReg() {
    if (NextReg >= Opts.MaxRegsPerFunction || NextReg >= 65535) {
      fail("virtual register budget exceeded");
      return 0;
    }
    return static_cast<uint16_t>(NextReg++);
  }

  uint32_t emit(BcOp Op, uint16_t A = 0, uint16_t B = 0, uint16_t C = 0,
                int64_t Imm = 0) {
    BcInst I;
    I.Op = static_cast<uint16_t>(Op);
    I.A = A;
    I.B = B;
    I.C = C;
    I.Imm = Imm;
    BF.Code.push_back(I);
    return static_cast<uint32_t>(BF.Code.size() - 1);
  }

  /// Emits a jump-like instruction whose Imm is \p Target's entry pc,
  /// patched after all blocks are laid out.
  uint32_t emitJump(BcOp Op, const BasicBlock *Target, uint16_t A = 0) {
    uint32_t Pc = emit(Op, A);
    Fixups.emplace_back(Pc, Target);
    return Pc;
  }

  uint16_t constReg(uint64_t Bits) {
    auto It = ConstRegs.find(Bits);
    if (It != ConstRegs.end())
      return It->second;
    uint16_t R = allocReg();
    ConstRegs[Bits] = R;
    BF.ConstInit.emplace_back(R, Bits);
    return R;
  }

  uint16_t regFor(const Value *V) {
    switch (V->kind()) {
    case ValueKind::ConstInt: {
      int64_t I = static_cast<const ConstantInt *>(V)->value();
      uint64_t Bits;
      std::memcpy(&Bits, &I, 8);
      return constReg(Bits);
    }
    case ValueKind::ConstFloat: {
      double D = static_cast<const ConstantFloat *>(V)->value();
      uint64_t Bits;
      std::memcpy(&Bits, &D, 8);
      return constReg(Bits);
    }
    case ValueKind::Global: {
      const auto *G = static_cast<const GlobalVariable *>(V);
      auto It = GlobalRegs.find(G);
      if (It != GlobalRegs.end())
        return It->second;
      auto GIt = Prog.GlobalIdx.find(G->name());
      if (GIt == Prog.GlobalIdx.end()) {
        fail("reference to global outside the module");
        return 0;
      }
      uint16_t R = allocReg();
      GlobalRegs[G] = R;
      BF.GlobalInit.emplace_back(R, GIt->second);
      return R;
    }
    case ValueKind::Argument:
    case ValueKind::Instruction: {
      auto It = Regs.find(V);
      if (It == Regs.end()) {
        fail("use of value %" + V->name() + " from another function");
        return 0;
      }
      return It->second;
    }
    }
    PRIVATEER_UNREACHABLE("bad value kind");
  }

  /// Constant-int right-hand sides fold into the instruction's Imm field.
  bool asImm(const Value *V, int64_t &Out) const {
    if (V->kind() != ValueKind::ConstInt)
      return false;
    Out = static_cast<const ConstantInt *>(V)->value();
    return true;
  }

  uint16_t addAllocSite(const Instruction *I) {
    BcAllocSite S;
    S.HasHeap = I->hasAllocHeap();
    if (S.HasHeap)
      S.Heap = I->allocHeap();
    BF.AllocSites.push_back(S);
    if (BF.AllocSites.size() > 65535) {
      fail("too many allocation sites");
      return 0;
    }
    return static_cast<uint16_t>(BF.AllocSites.size() - 1);
  }

  /// Validates the planned loop's shape against what the VM compiles in
  /// (mirrors Interpreter::runPlannedLoop's assumptions) and creates the
  /// function's BcParLoopSite.
  bool preparePlan() {
    PlannedHeader = Opts.PlanLoop->header();
    const Instruction *Term = PlannedHeader->terminator();
    if (PlannedHeader == F.entry())
      return fail("planned loop header is the function entry");
    if (!Term || Term->opcode() != Opcode::CondBr)
      return fail("planned loop header does not end in condbr");
    if (!Opts.PlanLoop->contains(Term->blockRef(0)) ||
        Opts.Iv.ExitBlock != Term->blockRef(1))
      return fail("planned loop header successors do not match its IV");
    if (!Opts.Iv.Phi || !Opts.Iv.Begin || !Opts.Iv.Bound)
      return fail("planned loop has an incomplete canonical IV");
    BF.ParSites.emplace_back();
    return true;
  }

  /// Leading phis of \p B (the interpreter executes exactly these as the
  /// block's phi group).
  static std::vector<const Instruction *> leadingPhis(const BasicBlock *B) {
    std::vector<const Instruction *> Phis;
    for (const auto &I : B->instructions()) {
      if (I->opcode() != Opcode::Phi)
        break;
      Phis.push_back(I.get());
    }
    return Phis;
  }

  /// Emits the \p From -> \p To edge: phi staging writes (reading the
  /// pre-transfer state), then the transfer itself — a plain jump, or the
  /// planned-loop interception instructions on edges touching the planned
  /// header.  Returns the edge's first pc.
  uint32_t emitEdge(const BasicBlock *From, const BasicBlock *To) {
    uint32_t EdgePc = static_cast<uint32_t>(BF.Code.size());
    for (const Instruction *Phi : leadingPhis(To)) {
      int Arm = -1;
      for (unsigned A = 0; A < Phi->numBlockRefs(); ++A)
        if (Phi->blockRef(A) == From) {
          Arm = static_cast<int>(A);
          break;
        }
      if (Arm < 0) {
        fail("phi in '" + To->name() + "' has no arm for predecessor '" +
             From->name() + "'");
        return EdgePc;
      }
      const Value *Src = Phi->operand(static_cast<unsigned>(Arm));
      int64_t Imm;
      if (asImm(Src, Imm))
        emit(BcOp::MovImm, Stage[Phi], 0, 0, Imm);
      else if (Src->kind() == ValueKind::ConstFloat) {
        double D = static_cast<const ConstantFloat *>(Src)->value();
        int64_t Bits;
        std::memcpy(&Bits, &D, 8);
        emit(BcOp::MovImm, Stage[Phi], 0, 0, Bits);
      } else
        emit(BcOp::Mov, Stage[Phi], regFor(Src));
    }
    if (To == PlannedHeader && !Opts.PlanLoop->contains(From)) {
      // Entering the planned loop from outside: hand iterations to the
      // runtime; falls through to the plain jump when no plan is armed.
      emit(BcOp::ParLoopEnter);
      emitJump(BcOp::Jmp, To);
    } else if (To == PlannedHeader) {
      // Back edge: one planned iteration ends here; plain jump otherwise.
      emitJump(BcOp::IterEnd, To);
    } else {
      emitJump(BcOp::Jmp, To);
    }
    return EdgePc;
  }

  void lowerBlock(const BasicBlock *B) {
    BlockPc[B] = static_cast<uint32_t>(BF.Code.size());
    std::vector<const Instruction *> Phis = leadingPhis(B);
    for (const Instruction *Phi : Phis)
      if (Stage[Phi] != Regs[Phi])
        emit(BcOp::Mov, Regs[Phi], Stage[Phi]);

    const auto &Insts = B->instructions();
    for (size_t Idx = Phis.size(); Idx < Insts.size(); ++Idx) {
      const Instruction &I = *Insts[Idx];
      if (Failed)
        return;
      if (!I.isTerminator()) {
        lowerInst(I);
        continue;
      }
      switch (I.opcode()) {
      case Opcode::Ret:
        if (I.numOperands())
          emit(BcOp::Ret, regFor(I.operand(0)), 0, 1);
        else
          emit(BcOp::Ret, 0, 0, 0);
        break;
      case Opcode::Br:
        emitEdge(B, I.blockRef(0));
        break;
      case Opcode::CondBr: {
        uint16_t Cond = regFor(I.operand(0));
        uint32_t SkipPc = emit(BcOp::JmpIfZ, Cond);
        uint32_t ThenPc = emitEdge(B, I.blockRef(0));
        uint32_t ElsePc = static_cast<uint32_t>(BF.Code.size());
        BF.Code[SkipPc].Imm = ElsePc;
        emitEdge(B, I.blockRef(1));
        if (B == PlannedHeader) {
          BcParLoopSite &Site = BF.ParSites.front();
          Site.BodyEntryPc = ThenPc;
          Site.ExitEntryPc = ElsePc;
          Site.BeginReg = regFor(Opts.Iv.Begin);
          Site.BoundReg = regFor(Opts.Iv.Bound);
          Site.IvReg = regFor(Opts.Iv.Phi);
        }
        break;
      }
      default:
        fail("unlowerable terminator");
      }
      return; // Terminator ends the block.
    }
    fail("block '" + B->name() + "' has no terminator");
  }

  void lowerIntBinop(const Instruction &I, BcOp RR, BcOp RI) {
    int64_t Imm;
    if (asImm(I.operand(1), Imm))
      emit(RI, Regs[&I], regFor(I.operand(0)), 0, Imm);
    else
      emit(RR, Regs[&I], regFor(I.operand(0)), regFor(I.operand(1)));
  }

  void lowerInst(const Instruction &I) {
    switch (I.opcode()) {
    case Opcode::Alloca: {
      uint16_t Site = addAllocSite(&I);
      emit(BcOp::Alloca, Regs[&I], Site, 0,
           static_cast<int64_t>(I.accessBytes()));
      return;
    }
    case Opcode::Malloc: {
      uint16_t Site = addAllocSite(&I);
      emit(BcOp::Malloc, Regs[&I], Site, regFor(I.operand(0)));
      return;
    }
    case Opcode::Free:
      emit(BcOp::Free, regFor(I.operand(0)));
      return;
    case Opcode::Load: {
      uint64_t Bytes = I.accessBytes();
      uint16_t Ptr = regFor(I.operand(0));
      if (I.type() == Type::F64) {
        if (Bytes != 8) {
          fail("f64 load must be 8 bytes");
          return;
        }
        emit(BcOp::Load8, Regs[&I], Ptr);
      } else if (Bytes == 8)
        emit(BcOp::Load8, Regs[&I], Ptr);
      else if (I.type() == Type::I64)
        emit(BcOp::LoadSx, Regs[&I], Ptr, static_cast<uint16_t>(Bytes));
      else
        emit(BcOp::LoadZx, Regs[&I], Ptr, static_cast<uint16_t>(Bytes));
      return;
    }
    case Opcode::Store: {
      uint64_t Bytes = I.accessBytes();
      uint16_t Val = regFor(I.operand(0));
      uint16_t Ptr = regFor(I.operand(1));
      if (Bytes == 8)
        emit(BcOp::Store8, Val, Ptr);
      else
        emit(BcOp::StoreN, Val, Ptr, static_cast<uint16_t>(Bytes));
      return;
    }
    case Opcode::Gep: {
      // ptr + byte offset == wrapping 64-bit add.
      int64_t Imm;
      if (asImm(I.operand(1), Imm))
        emit(BcOp::AddImm, Regs[&I], regFor(I.operand(0)), 0, Imm);
      else
        emit(BcOp::Add, Regs[&I], regFor(I.operand(0)),
             regFor(I.operand(1)));
      return;
    }
    case Opcode::Add:
      lowerIntBinop(I, BcOp::Add, BcOp::AddImm);
      return;
    case Opcode::Sub:
      lowerIntBinop(I, BcOp::Sub, BcOp::SubImm);
      return;
    case Opcode::Mul:
      lowerIntBinop(I, BcOp::Mul, BcOp::MulImm);
      return;
    case Opcode::SDiv:
      lowerIntBinop(I, BcOp::SDiv, BcOp::SDivImm);
      return;
    case Opcode::SRem:
      lowerIntBinop(I, BcOp::SRem, BcOp::SRemImm);
      return;
    case Opcode::And:
      lowerIntBinop(I, BcOp::And, BcOp::AndImm);
      return;
    case Opcode::Or:
      lowerIntBinop(I, BcOp::Or, BcOp::OrImm);
      return;
    case Opcode::Xor:
      lowerIntBinop(I, BcOp::Xor, BcOp::XorImm);
      return;
    case Opcode::Shl:
      lowerIntBinop(I, BcOp::Shl, BcOp::ShlImm);
      return;
    case Opcode::Shr:
      lowerIntBinop(I, BcOp::Shr, BcOp::ShrImm);
      return;
    case Opcode::FAdd:
      emit(BcOp::FAdd, Regs[&I], regFor(I.operand(0)), regFor(I.operand(1)));
      return;
    case Opcode::FSub:
      emit(BcOp::FSub, Regs[&I], regFor(I.operand(0)), regFor(I.operand(1)));
      return;
    case Opcode::FMul:
      emit(BcOp::FMul, Regs[&I], regFor(I.operand(0)), regFor(I.operand(1)));
      return;
    case Opcode::FDiv:
      emit(BcOp::FDiv, Regs[&I], regFor(I.operand(0)), regFor(I.operand(1)));
      return;
    case Opcode::SiToFp:
      emit(BcOp::SiToFp, Regs[&I], regFor(I.operand(0)));
      return;
    case Opcode::FpToSi:
      emit(BcOp::FpToSi, Regs[&I], regFor(I.operand(0)));
      return;
    case Opcode::ICmp: {
      static const BcOp RR[] = {BcOp::CmpEq, BcOp::CmpNe, BcOp::CmpLt,
                                BcOp::CmpLe, BcOp::CmpGt, BcOp::CmpGe};
      static const BcOp RI[] = {BcOp::CmpEqImm, BcOp::CmpNeImm,
                                BcOp::CmpLtImm, BcOp::CmpLeImm,
                                BcOp::CmpGtImm, BcOp::CmpGeImm};
      unsigned P = static_cast<unsigned>(I.cmpPred());
      lowerIntBinop(I, RR[P], RI[P]);
      return;
    }
    case Opcode::FCmp: {
      static const BcOp RR[] = {BcOp::FCmpEq, BcOp::FCmpNe, BcOp::FCmpLt,
                                BcOp::FCmpLe, BcOp::FCmpGt, BcOp::FCmpGe};
      unsigned P = static_cast<unsigned>(I.cmpPred());
      emit(RR[P], Regs[&I], regFor(I.operand(0)), regFor(I.operand(1)));
      return;
    }
    case Opcode::Select:
      emit(BcOp::Select, Regs[&I], regFor(I.operand(0)),
           regFor(I.operand(1)), regFor(I.operand(2)));
      return;
    case Opcode::Call: {
      const Function *Callee = I.callee();
      auto It = Prog.FunctionIdx.find(Callee->name());
      if (It == Prog.FunctionIdx.end()) {
        fail("call to function outside the module");
        return;
      }
      if (I.numOperands() != Callee->arguments().size()) {
        fail("call arity mismatch for @" + Callee->name());
        return;
      }
      BcCallSite Site;
      Site.Callee = It->second;
      Site.ArgStart = static_cast<uint32_t>(BF.RegPool.size());
      Site.ArgCount = static_cast<uint16_t>(I.numOperands());
      for (unsigned A = 0; A < I.numOperands(); ++A)
        BF.RegPool.push_back(regFor(I.operand(A)));
      BF.CallSites.push_back(Site);
      bool HasResult = I.type() != Type::Void;
      emit(BcOp::Call, HasResult ? Regs[&I] : 0, 0, HasResult ? 1 : 0,
           static_cast<int64_t>(BF.CallSites.size() - 1));
      return;
    }
    case Opcode::Print: {
      BcPrintSite Site;
      Site.Format = I.printFormat();
      Site.ArgStart = static_cast<uint32_t>(BF.RegPool.size());
      Site.ArgCount = static_cast<uint16_t>(I.numOperands());
      for (unsigned A = 0; A < I.numOperands(); ++A)
        BF.RegPool.push_back(regFor(I.operand(A)));
      BF.PrintSites.push_back(std::move(Site));
      emit(BcOp::Print, 0, 0, 0,
           static_cast<int64_t>(BF.PrintSites.size() - 1));
      return;
    }
    case Opcode::CheckHeap: {
      static const BcOp PerClass[] = {
          BcOp::CheckHeapRo,           BcOp::CheckHeapPrivate,
          BcOp::CheckHeapRedux,        BcOp::CheckHeapShortLived,
          BcOp::CheckHeapUnrestricted, BcOp::CheckHeapCommutative};
      static_assert(sizeof(PerClass) / sizeof(PerClass[0]) == kNumHeapKinds,
                    "per-class check table must cover every heap kind");
      HeapKind K = I.expectedHeap();
      emit(PerClass[static_cast<unsigned>(K)], regFor(I.operand(0)), 0, 0,
           static_cast<int64_t>(heapTag(K) << kHeapTagShift));
      return;
    }
    case Opcode::PrivateRead:
      emit(BcOp::PrivRead, regFor(I.operand(0)), 0, 0,
           static_cast<int64_t>(I.accessBytes()));
      return;
    case Opcode::PrivateWrite:
      emit(BcOp::PrivWrite, regFor(I.operand(0)), 0, 0,
           static_cast<int64_t>(I.accessBytes()));
      return;
    case Opcode::ComUpdate:
      // Separation check is fused into the handler: Imm carries the
      // commutative heap's tag bits, C packs the access width and the
      // combining operator.
      emit(BcOp::ComUpdate, regFor(I.operand(1)), regFor(I.operand(0)),
           static_cast<uint16_t>(I.accessBytes() |
                                 (static_cast<unsigned>(I.comOp()) << 4)),
           static_cast<int64_t>(heapTag(HeapKind::Commutative)
                                << kHeapTagShift));
      return;
    case Opcode::SpeculateEq:
      emit(BcOp::SpecEq, regFor(I.operand(0)), regFor(I.operand(1)));
      return;
    case Opcode::PostDep:
      emit(BcOp::PostDep, regFor(I.operand(0)), regFor(I.operand(1)), 0,
           static_cast<int64_t>(I.accessBytes()));
      return;
    case Opcode::WaitDep:
      emit(BcOp::WaitDep, Regs[&I], regFor(I.operand(0)), 0,
           static_cast<int64_t>(I.accessBytes()));
      return;
    case Opcode::Phi:
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Ret:
      break;
    }
    fail("unlowerable opcode");
  }
};

} // namespace

std::unique_ptr<BytecodeProgram>
bytecode::lowerModule(const Module &M, const LowerOptions &Opts,
                      std::string &WhyNot) {
  auto Prog = std::make_unique<BytecodeProgram>();
  for (const auto &G : M.globals()) {
    Prog->GlobalIdx[G->name()] = static_cast<uint32_t>(Prog->Globals.size());
    BcGlobal BG;
    BG.Name = G->name();
    BG.SizeBytes = G->sizeBytes();
    BG.HasHeap = G->hasAssignedHeap();
    if (BG.HasHeap)
      BG.Heap = G->assignedHeap();
    Prog->Globals.push_back(std::move(BG));
  }
  // Names first so call sites can reference functions lowered later.
  for (const auto &F : M.functions()) {
    Prog->FunctionIdx[F->name()] =
        static_cast<uint32_t>(Prog->Functions.size());
    Prog->Functions.emplace_back();
    Prog->Functions.back().Name = F->name();
  }
  for (size_t Idx = 0; Idx < M.functions().size(); ++Idx) {
    FunctionLowerer FL(*Prog, Prog->Functions[Idx],
                       *M.functions()[Idx], Opts, WhyNot);
    if (!FL.lower())
      return nullptr;
  }
  return Prog;
}
