//===- bytecode/Image.h - Relocatable lowered-program images ----*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Position-independent serialization of a lowered BytecodeProgram.  A
/// BytecodeProgram holds no pointers into other objects (alloc sites,
/// globals, and reduction registrations are plain data), so it flattens
/// into a single byte image and round-trips losslessly.
///
/// The invocation service uses this to decouple program lowering from
/// program execution across processes: the daemon lowers once per cache
/// miss, serializes the result into a sealed memfd, and hands the fd to
/// pre-warmed executive processes over SCM_RIGHTS — a warm-hit job then
/// pays neither fork, nor parse, nor lowering.
///
/// Deserialization is fully bounds-checked (images cross a process
/// boundary; a truncated or corrupt image must fail loudly, never read
/// out of bounds).
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_BYTECODE_IMAGE_H
#define PRIVATEER_BYTECODE_IMAGE_H

#include "bytecode/Bytecode.h"

#include <memory>
#include <string>

namespace privateer {
namespace bytecode {

/// Flattens \p Prog into a self-contained byte image.
std::string serializeProgram(const BytecodeProgram &Prog);

/// Rebuilds a program from \p Image (as produced by serializeProgram).
/// Returns null with \p Err set on any malformed input; never reads past
/// the image or trusts embedded lengths.
std::unique_ptr<BytecodeProgram> deserializeProgram(const void *Image,
                                                    size_t Bytes,
                                                    std::string &Err);

} // namespace bytecode
} // namespace privateer

#endif // PRIVATEER_BYTECODE_IMAGE_H
