//===- bytecode/Lower.h - IR -> bytecode lowering ---------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-pass lowering from the verified IR to the register bytecode of
/// Bytecode.h.  The lowering is total over the current IR; the options
/// carry explicit resource limits so callers always have a correct
/// fallback: on any construct or limit the lowerer will not take, it
/// returns null with a reason and the caller runs the interpreter instead.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_BYTECODE_LOWER_H
#define PRIVATEER_BYTECODE_LOWER_H

#include "analysis/LoopInfo.h"
#include "bytecode/Bytecode.h"

#include <memory>
#include <string>

namespace privateer {
namespace bytecode {

struct LowerOptions {
  /// The pipeline-selected DOALL loop to compile interception for; null
  /// lowers a plain sequential program (every edge is an ordinary jump).
  const analysis::Loop *PlanLoop = nullptr;
  /// Must be PlanLoop's canonical IV when PlanLoop is set.
  analysis::Loop::CanonicalIv Iv;
  /// Virtual-register budget per function; lowering falls back (returns
  /// null) beyond it.  The default is the instruction encoding's limit;
  /// tests shrink it to exercise the interpreter-fallback path.
  unsigned MaxRegsPerFunction = 65535;
};

/// Lowers \p M to bytecode.  Returns null and sets \p WhyNot when any
/// function exceeds the options' limits or uses a shape the lowerer does
/// not cover; the caller must then execute via the interpreter.
std::unique_ptr<BytecodeProgram>
lowerModule(const ir::Module &M, const LowerOptions &Opts, std::string &WhyNot);

} // namespace bytecode
} // namespace privateer

#endif // PRIVATEER_BYTECODE_LOWER_H
