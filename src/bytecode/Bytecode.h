//===- bytecode/Bytecode.h - Direct-threaded bytecode format ----*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled execution tier's program representation: a register-file
/// bytecode lowered from the IR (bytecode::lowerModule) and executed by the
/// direct-threaded VM (bytecode::VM).  Design points:
///
///  - Value names resolve to dense virtual registers at lower time; a frame
///    is a flat uint64_t array instead of the interpreter's hash map.
///  - Constants are folded into the instruction stream: integer binary ops
///    with a constant right-hand side become *Imm forms carrying the value
///    in the instruction, and remaining constants are materialized once per
///    frame from a per-function init template.
///  - The Privateer checks are specialized per logical-heap class
///    (CheckHeapRo/Private/Redux/ShortLived/Unrestricted) with the expected
///    tag bits baked into the instruction, so the separation check executes
///    as the single mask-AND+compare of paper §5.1.
///  - The planned DOALL loop is compiled in: edges entering the loop header
///    from outside carry a ParLoopEnter instruction that hands iterations
///    to Runtime::runParallel, and back edges carry IterEnd; both fall back
///    to plain jumps when no plan is armed, so the same code runs
///    sequentially, speculatively, and during misspeculation recovery.
///
/// A BytecodeProgram is self-contained: alloc sites, globals, and the
/// reduction registrations the transformed program needs are captured as
/// plain data at lower time, with no pointers back into the ir::Module.
/// That makes a lowered program relocatable — bytecode/Image.h serializes
/// it to a flat byte image that the invocation service ships to pre-forked
/// executive processes over sealed memfds.
///
/// The tree-walking interpreter remains the semantic oracle: the randomized
/// differential sweep byte-compares the two engines, and both share the
/// defined arithmetic edge semantics in interp/Semantics.h.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_BYTECODE_BYTECODE_H
#define PRIVATEER_BYTECODE_BYTECODE_H

#include "runtime/CommutativeLog.h"
#include "runtime/HeapKind.h"
#include "runtime/Reduction.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace privateer {
namespace bytecode {

/// Opcodes, one handler label each in the VM's computed-goto table.
/// Register operands live in A/B/C; Imm carries folded constants, jump
/// targets (instruction indices), byte counts, or side-table indices.
#define PRIVATEER_BC_OPCODES(X)                                               \
  /* moves */                                                                 \
  X(Mov)      /* r[A] = r[B] */                                               \
  X(MovImm)   /* r[A] = Imm */                                                \
  /* memory */                                                                \
  X(Alloca)   /* r[A] = zeroed frame alloc of Imm bytes; B = alloc site */    \
  X(Malloc)   /* r[A] = alloc of r[C] bytes; B = alloc site */                \
  X(Free)     /* dealloc r[A] */                                              \
  X(Load8)    /* r[A] = 8-byte load from r[B] (i64/f64/ptr) */                \
  X(LoadSx)   /* r[A] = sign-extended C-byte load from r[B] (i64) */          \
  X(LoadZx)   /* r[A] = zero-extended C-byte load from r[B] (ptr) */          \
  X(Store8)   /* 8-byte store of r[A] to r[B] */                              \
  X(StoreN)   /* store low C bytes of r[A] to r[B] */                         \
  /* integer arithmetic (wrapping, interp/Semantics.h) */                     \
  X(Add) X(Sub) X(Mul) X(SDiv) X(SRem)                                        \
  X(And) X(Or) X(Xor) X(Shl) X(Shr) /* r[A] = r[B] op r[C] */                 \
  X(AddImm) X(SubImm) X(MulImm) X(SDivImm) X(SRemImm)                         \
  X(AndImm) X(OrImm) X(XorImm) X(ShlImm) X(ShrImm) /* r[A] = r[B] op Imm */   \
  /* float arithmetic */                                                      \
  X(FAdd) X(FSub) X(FMul) X(FDiv) /* r[A] = r[B] op r[C] */                   \
  /* conversions */                                                           \
  X(SiToFp)   /* r[A] = (double)(int64)r[B] */                                \
  X(FpToSi)   /* r[A] = saturating (int64)(double)r[B] */                     \
  /* integer compares -> 0/1 */                                               \
  X(CmpEq) X(CmpNe) X(CmpLt) X(CmpLe) X(CmpGt) X(CmpGe)                       \
  X(CmpEqImm) X(CmpNeImm) X(CmpLtImm) X(CmpLeImm) X(CmpGtImm) X(CmpGeImm)     \
  /* float compares -> 0/1 */                                                 \
  X(FCmpEq) X(FCmpNe) X(FCmpLt) X(FCmpLe) X(FCmpGt) X(FCmpGe)                 \
  X(Select)   /* r[A] = r[B] ? r[C] : r[Imm] */                               \
  /* control */                                                               \
  X(Jmp)      /* pc = Imm */                                                  \
  X(JmpIfZ)   /* if (!r[A]) pc = Imm */                                       \
  X(JmpIfNZ)  /* if (r[A]) pc = Imm */                                        \
  X(Ret)      /* return r[A] (C!=0) or void (C==0) */                         \
  X(Call)     /* r[A] = call CallSites[Imm] */                                \
  X(Print)    /* format PrintSites[Imm], defer output */                      \
  /* Privateer intrinsics, checks specialized per heap class */               \
  X(CheckHeapRo) X(CheckHeapPrivate) X(CheckHeapRedux)                        \
  X(CheckHeapShortLived) X(CheckHeapUnrestricted)                             \
              /* if speculating: (r[A] & tagmask) == Imm or misspec */        \
  X(PrivRead)  /* if speculating: validate read of Imm bytes at r[A] */       \
  X(PrivWrite) /* if speculating: record write of Imm bytes at r[A] */        \
  X(SpecEq)    /* if speculating: r[A] == r[B] or misspec */                  \
  /* planned-DOALL interception */                                            \
  X(ParLoopEnter) /* run ParSites[Imm] via the runtime, else fall through */  \
  X(IterEnd)      /* end of one planned iteration; else pc = Imm */           \
  /* fused superinstructions (lowering peephole; see fusePairs).  Each      */\
  /* performs the work of the pair it replaces and skips the second         */\
  /* instruction, which stays in place as a valid jump target.              */\
  X(CmpEqJz) X(CmpNeJz) X(CmpLtJz) X(CmpLeJz) X(CmpGtJz) X(CmpGeJz)           \
              /* r[A] = r[B] op r[C]; if (!r[A]) pc = Imm else pc += 2 */     \
  X(CmpEqImmJz) X(CmpNeImmJz) X(CmpLtImmJz)                                   \
  X(CmpLeImmJz) X(CmpGtImmJz) X(CmpGeImmJz)                                   \
              /* r[A] = r[B] op Imm; if (!r[A]) pc = C else pc += 2 */        \
  X(AddLoad8)     /* r[Imm] = r[B] + r[C]; r[A] = 8-byte load r[Imm] */       \
  X(AddImmLoad8)  /* r[C] = r[B] + Imm;   r[A] = 8-byte load r[C] */          \
  X(AddStore8)    /* r[Imm] = r[B] + r[C]; 8-byte store r[A] to r[Imm] */     \
  X(AddImmStore8) /* r[C] = r[B] + Imm;   8-byte store r[A] to r[C] */        \
  /* DOACROSS / pipeline token forwarding (appended: keeps the fused       */\
  /* compare-family contiguity asserts valid)                              */\
  X(PostDep)      /* post token (iter r[A], value r[B]) on channel Imm */     \
  X(WaitDep)      /* r[A] = wait for iter r[B]'s token on channel Imm */      \
  /* commutative-update heap (appended, keeping prior opcode values) */       \
  X(CheckHeapCommutative) /* same contract as the other CheckHeap* */         \
  X(ComUpdate)    /* deferred update at r[A] with r[B]; C = bytes|op<<4, */   \
                  /* Imm = expected tag bits (check fused in) */

enum class BcOp : uint16_t {
#define PRIVATEER_BC_ENUM(N) N,
  PRIVATEER_BC_OPCODES(PRIVATEER_BC_ENUM)
#undef PRIVATEER_BC_ENUM
};

inline constexpr unsigned kNumBcOps = 0
#define PRIVATEER_BC_COUNT(N) +1
    PRIVATEER_BC_OPCODES(PRIVATEER_BC_COUNT)
#undef PRIVATEER_BC_COUNT
    ;

const char *bcOpName(BcOp Op);

/// One 16-byte instruction.  A/B/C index the frame's register file.
struct BcInst {
  uint16_t Op = 0;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  int64_t Imm = 0;
};

static_assert(sizeof(BcInst) == 16, "keep instructions cache-friendly");

/// Call arguments are register lists in the per-function RegPool.
struct BcCallSite {
  uint32_t Callee = 0; ///< Index into BytecodeProgram::Functions.
  uint32_t ArgStart = 0;
  uint16_t ArgCount = 0;
};

struct BcPrintSite {
  std::string Format;
  uint32_t ArgStart = 0;
  uint16_t ArgCount = 0;
};

/// The compiled-in planned-DOALL loop (at most one per program, matching
/// the pipeline's single selected loop).
struct BcParLoopSite {
  uint16_t BeginReg = 0; ///< Canonical IV begin value.
  uint16_t BoundReg = 0; ///< Canonical IV bound value.
  uint16_t IvReg = 0;    ///< The IV phi's register, set per iteration.
  uint32_t BodyEntryPc = 0; ///< Header->body edge (one iteration's entry).
  uint32_t ExitEntryPc = 0; ///< Header->exit edge (post-loop continuation).
};

/// Heap routing of one Alloca/Malloc site, captured from the privatizer's
/// annotation at lower time (paper §4.4 Replace Allocation).
struct BcAllocSite {
  bool HasHeap = false;
  HeapKind Heap = HeapKind::Private;
};

/// One module global: everything the VM needs to allocate and address it.
struct BcGlobal {
  std::string Name;
  uint64_t SizeBytes = 0;
  bool HasHeap = false;
  HeapKind Heap = HeapKind::Private;
};

/// A reduction-heap global the runtime must be told about before the
/// planned loop runs (identity init + checkpoint-time combine).
struct BcReduxGlobal {
  uint32_t GlobalIdx = 0;
  ReduxElem Elem = ReduxElem::I64;
  ReduxOp Op = ReduxOp::Add;
};

/// A commutative-heap global the runtime is told about before the planned
/// loop runs (observability and bounds metadata; the deferred records carry
/// their own addresses).
struct BcComGlobal {
  uint32_t GlobalIdx = 0;
  ComOp Op = ComOp::Add;
  uint8_t ElemBytes = 8;
};

struct BcFunction {
  std::string Name;
  uint16_t NumArgs = 0;
  uint16_t NumRegs = 0;
  bool HasRetValue = false;
  std::vector<BcInst> Code;
  /// Frame-entry template: registers preloaded with materialized constants.
  std::vector<std::pair<uint16_t, uint64_t>> ConstInit;
  /// Frame-entry global-address loads: (register, global index).
  std::vector<std::pair<uint16_t, uint32_t>> GlobalInit;
  /// Argument-register lists for Call/Print sites.
  std::vector<uint16_t> RegPool;
  std::vector<BcCallSite> CallSites;
  std::vector<BcPrintSite> PrintSites;
  std::vector<BcParLoopSite> ParSites;
  /// Alloc sites (Alloca/Malloc operand B), routed through the
  /// MemoryManager so heap-assigned sites land in their logical heaps.
  std::vector<BcAllocSite> AllocSites;
};

struct BytecodeProgram {
  std::vector<BcFunction> Functions;
  std::map<std::string, uint32_t> FunctionIdx;
  /// Globals in module order; VM allocation order matches the interpreter.
  std::vector<BcGlobal> Globals;
  std::map<std::string, uint32_t> GlobalIdx; ///< Global name -> index.
  /// Reductions the transformed program must register before a parallel
  /// invocation (baked in by lowerForPrivatized from the HeapAssignment,
  /// so executing a prelowered program needs no classification results).
  std::vector<BcReduxGlobal> ReduxGlobals;
  /// Commutative-heap globals, likewise baked in by lowerForPrivatized.
  std::vector<BcComGlobal> ComGlobals;
  /// Dependence-token channels the DOACROSS transform allocated; baked in
  /// so executing a prelowered program (e.g. in a warm executive) can size
  /// the runtime's token rings without the classification results.
  uint32_t NumDepChannels = 0;
  /// Total instructions across functions (Statistic fodder).
  uint64_t totalCode() const {
    uint64_t N = 0;
    for (const BcFunction &F : Functions)
      N += F.Code.size();
    return N;
  }
};

} // namespace bytecode
} // namespace privateer

#endif // PRIVATEER_BYTECODE_BYTECODE_H
