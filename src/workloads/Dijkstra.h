//===- workloads/Dijkstra.h - MiBench-style dijkstra ------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating example (Figure 2, simplified from MiBench
/// dijkstra): the outer loop repeatedly runs Dijkstra's algorithm over a
/// dense adjacency matrix, reusing a global linked-list work queue `Q` and
/// a global `pathcost` array across iterations.  The privatized body is a
/// line-for-line realization of Figure 2b: `Q` and `pathcost` are private,
/// queue nodes are short-lived, `adj` is read-only, the queue's emptiness
/// at iteration boundaries is value-predicted, and the per-source result
/// line is deferred output.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_WORKLOADS_DIJKSTRA_H
#define PRIVATEER_WORKLOADS_DIJKSTRA_H

#include "workloads/Workload.h"

namespace privateer {

class DijkstraWorkload : public Workload {
public:
  explicit DijkstraWorkload(Scale S);

  const char *name() const override { return "dijkstra"; }
  PaperRow paperRow() const override;
  HeapSites ourSites() const override { return {3, 1, 1, 0, 0}; }
  const char *extras() const override { return "Value, Control, I/O"; }
  DoallOnlyShape doallOnly() const override {
    // "DOALL-only does not parallelize any loops in dijkstra because of
    // real, frequent false dependences" (§6.1).
    return DoallOnlyShape{false, 0.0, 0};
  }

  uint64_t iterationsPerInvocation() const override { return NumNodes; }

  void setUp() override;
  void tearDown() override;
  void body(uint64_t Src) override;
  void appendLiveOut(std::string &Out) const override;
  std::string referenceDigest() const override;

private:
  struct Node {
    int Vertex;
    Node *Next;
  };
  struct Queue {
    Node *Head;
    Node *Tail;
  };

  void enqueue(int V);
  int dequeue();
  bool emptyQueue() const;

  unsigned NumNodes;
  // Privatized globals (Figure 2b lines 5-7 keep them behind pointers
  // loaded from heap-allocated storage).
  Queue *Q = nullptr;     // Private heap.
  int *PathCost = nullptr; // Private heap.
  int *Adj = nullptr;      // Read-only heap (NumNodes x NumNodes).
  long *TotalCost = nullptr; // Private heap live-out, one per source.
};

} // namespace privateer

#endif // PRIVATEER_WORKLOADS_DIJKSTRA_H
