//===- workloads/EncMd5.h - Trimaran-style enc-md5 --------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trimaran-style enc-md5: "computes message digests for a large number of
/// data sets and prints each to standard output.  Two factors limit
/// parallelization of the program's outer loop: false dependences on the
/// MD5 state object and digest buffer, and calls to printf.  Privateer
/// privatizes the state object and marks the digest buffer as short-lived.
/// The side effects of stream output functions are issued through the
/// checkpoint system" (§6.1).
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_WORKLOADS_ENCMD5_H
#define PRIVATEER_WORKLOADS_ENCMD5_H

#include "workloads/Md5.h"
#include "workloads/Workload.h"

namespace privateer {

class EncMd5Workload : public Workload {
public:
  explicit EncMd5Workload(Scale S);

  const char *name() const override { return "enc-md5"; }
  PaperRow paperRow() const override {
    return PaperRow{1, 5, "25.5 GB", "30.8 GB", {2, 1, 4, 0, 0},
                    "Control, I/O"};
  }
  HeapSites ourSites() const override { return {2, 1, 1, 0, 0}; }
  const char *extras() const override { return "Control, I/O"; }
  DoallOnlyShape doallOnly() const override {
    // DOALL-only cannot touch the outer loop: real, frequent false
    // dependences on the reused state object (§6.1).
    return DoallOnlyShape{false, 0.0, 0};
  }

  uint64_t iterationsPerInvocation() const override { return NumBuffers; }

  void setUp() override;
  void tearDown() override;
  void body(uint64_t I) override;
  void appendLiveOut(std::string &Out) const override;
  std::string referenceDigest() const override;

private:
  uint64_t NumBuffers;
  size_t BufferBytes;
  uint8_t *Input = nullptr;      // Read-only: all data sets, concatenated.
  Md5Context *State = nullptr;   // Private: the reused MD5 state object.
  uint64_t *DigestSum = nullptr; // Private live-out: folded digests.
};

} // namespace privateer

#endif // PRIVATEER_WORKLOADS_ENCMD5_H
