//===- workloads/Alvinn.cpp -----------------------------------------------===//

#include "workloads/Alvinn.h"

#include "runtime/Privateer.h"
#include "support/DeterministicRng.h"

#include <cmath>
#include <cstring>
#include <vector>

using namespace privateer;

namespace {

constexpr double kLearningRate = 0.05;

double activation(double X) { return std::tanh(X); }

/// Quantizes a gradient contribution to 2^20 fixed point so reduction
/// combination is exactly associative and commutative.
int64_t toFixed(double V) {
  return static_cast<int64_t>(
      std::llround(V * AlvinnWorkload::kFixedOne));
}

double fromFixed(int64_t V) {
  return static_cast<double>(V) / AlvinnWorkload::kFixedOne;
}

} // namespace

AlvinnWorkload::AlvinnWorkload(Scale S)
    : Patterns(S == Scale::Small ? 64 : 256),
      Epochs(S == Scale::Small ? 3 : 20) {}

void AlvinnWorkload::setUp() {
  Inputs = static_cast<double *>(
      h_alloc(Patterns * kIn * sizeof(double), HeapKind::ReadOnly));
  Targets = static_cast<double *>(
      h_alloc(Patterns * kOut * sizeof(double), HeapKind::ReadOnly));
  W1 = static_cast<double *>(
      h_alloc(kIn * kHidden * sizeof(double), HeapKind::ReadOnly));
  W2 = static_cast<double *>(
      h_alloc(kHidden * kOut * sizeof(double), HeapKind::ReadOnly));

  HiddenAct = static_cast<double *>(
      h_alloc(kHidden * sizeof(double), HeapKind::Private));
  OutAct =
      static_cast<double *>(h_alloc(kOut * sizeof(double), HeapKind::Private));
  OutDelta =
      static_cast<double *>(h_alloc(kOut * sizeof(double), HeapKind::Private));
  HiddenDelta = static_cast<double *>(
      h_alloc(kHidden * sizeof(double), HeapKind::Private));
  EpochError = static_cast<double *>(
      h_alloc(Epochs * sizeof(double), HeapKind::Private));
  std::memset(EpochError, 0, Epochs * sizeof(double));

  DW1 = static_cast<int64_t *>(
      h_alloc(kIn * kHidden * sizeof(int64_t), HeapKind::Redux));
  DW2 = static_cast<int64_t *>(
      h_alloc(kHidden * kOut * sizeof(int64_t), HeapKind::Redux));
  ErrorAcc = static_cast<int64_t *>(h_alloc(sizeof(int64_t), HeapKind::Redux));
  Runtime &Rt = Runtime::get();
  Rt.registerReduction(DW1, kIn * kHidden * sizeof(int64_t), ReduxElem::I64,
                       ReduxOp::Add);
  Rt.registerReduction(DW2, kHidden * kOut * sizeof(int64_t), ReduxElem::I64,
                       ReduxOp::Add);
  Rt.registerReduction(ErrorAcc, sizeof(int64_t), ReduxElem::I64,
                       ReduxOp::Add);

  DeterministicRng Rng(0xa1f1);
  for (uint64_t I = 0; I < Patterns * kIn; ++I)
    Inputs[I] = Rng.nextDouble(-1.0, 1.0);
  for (uint64_t I = 0; I < Patterns * kOut; ++I)
    Targets[I] = Rng.nextDouble(-0.9, 0.9);
  for (unsigned I = 0; I < kIn * kHidden; ++I)
    W1[I] = Rng.nextDouble(-0.2, 0.2);
  for (unsigned I = 0; I < kHidden * kOut; ++I)
    W2[I] = Rng.nextDouble(-0.2, 0.2);
}

void AlvinnWorkload::tearDown() {
  h_dealloc(Inputs, HeapKind::ReadOnly);
  h_dealloc(Targets, HeapKind::ReadOnly);
  h_dealloc(W1, HeapKind::ReadOnly);
  h_dealloc(W2, HeapKind::ReadOnly);
  h_dealloc(HiddenAct, HeapKind::Private);
  h_dealloc(OutAct, HeapKind::Private);
  h_dealloc(OutDelta, HeapKind::Private);
  h_dealloc(HiddenDelta, HeapKind::Private);
  h_dealloc(EpochError, HeapKind::Private);
  h_dealloc(DW1, HeapKind::Redux);
  h_dealloc(DW2, HeapKind::Redux);
  h_dealloc(ErrorAcc, HeapKind::Redux);
  Runtime::get().reductions().clear();
  Inputs = Targets = W1 = W2 = nullptr;
  HiddenAct = OutAct = OutDelta = HiddenDelta = EpochError = nullptr;
  DW1 = DW2 = ErrorAcc = nullptr;
}

void AlvinnWorkload::beginInvocation(uint64_t) {
  // Fresh accumulators each epoch (sequential region).
  std::memset(DW1, 0, kIn * kHidden * sizeof(int64_t));
  std::memset(DW2, 0, kHidden * kOut * sizeof(int64_t));
  *ErrorAcc = 0;
}

void AlvinnWorkload::endInvocation(uint64_t K) {
  // Sequential weight update from the combined reductions.
  for (unsigned I = 0; I < kIn * kHidden; ++I)
    W1[I] += kLearningRate * fromFixed(DW1[I]);
  for (unsigned I = 0; I < kHidden * kOut; ++I)
    W2[I] += kLearningRate * fromFixed(DW2[I]);
  EpochError[K] = fromFixed(*ErrorAcc);
}

void AlvinnWorkload::body(uint64_t P) {
  const double *In = &Inputs[P * kIn];
  const double *Target = &Targets[P * kOut];

  // Forward pass into the privatized activation arrays.  Each phase's
  // unconditional affine accesses coalesce into ranged privacy checks, as
  // the compiler's check elision does for provably covered loops (§4.5).
  private_write(HiddenAct, kHidden * sizeof(double));
  for (unsigned H = 0; H < kHidden; ++H) {
    double Acc = 0.0;
    for (unsigned I = 0; I < kIn; ++I)
      Acc += In[I] * W1[I * kHidden + H];
    HiddenAct[H] = activation(Acc);
  }
  private_read(HiddenAct, kHidden * sizeof(double));
  private_write(OutAct, kOut * sizeof(double));
  for (unsigned O = 0; O < kOut; ++O) {
    double Acc = 0.0;
    for (unsigned H = 0; H < kHidden; ++H)
      Acc += HiddenAct[H] * W2[H * kOut + O];
    OutAct[O] = activation(Acc);
  }

  // Backward pass: deltas in private arrays, gradients into reductions.
  check_heap(DW1, HeapKind::Redux);
  check_heap(DW2, HeapKind::Redux);
  double ErrSq = 0.0;
  private_read(OutAct, kOut * sizeof(double));
  private_write(OutDelta, kOut * sizeof(double));
  for (unsigned O = 0; O < kOut; ++O) {
    double Out = OutAct[O];
    double Err = Target[O] - Out;
    ErrSq += Err * Err;
    OutDelta[O] = Err * (1.0 - Out * Out);
  }
  private_read(OutDelta, kOut * sizeof(double));
  private_read(HiddenAct, kHidden * sizeof(double));
  private_write(HiddenDelta, kHidden * sizeof(double));
  for (unsigned H = 0; H < kHidden; ++H) {
    double Acc = 0.0;
    for (unsigned O = 0; O < kOut; ++O)
      Acc += OutDelta[O] * W2[H * kOut + O];
    double Act = HiddenAct[H];
    HiddenDelta[H] = Acc * (1.0 - Act * Act);
  }
  private_read(HiddenAct, kHidden * sizeof(double));
  private_read(OutDelta, kOut * sizeof(double));
  for (unsigned H = 0; H < kHidden; ++H) {
    double Act = HiddenAct[H];
    for (unsigned O = 0; O < kOut; ++O)
      DW2[H * kOut + O] += toFixed(OutDelta[O] * Act);
  }
  private_read(HiddenDelta, kHidden * sizeof(double));
  for (unsigned I = 0; I < kIn; ++I)
    for (unsigned H = 0; H < kHidden; ++H)
      DW1[I * kHidden + H] += toFixed(HiddenDelta[H] * In[I]);
  *ErrorAcc += toFixed(ErrSq);
}

void AlvinnWorkload::appendLiveOut(std::string &Out) const {
  Out.append(reinterpret_cast<const char *>(EpochError),
             Epochs * sizeof(double));
  Out.append(reinterpret_cast<const char *>(W1),
             kIn * kHidden * sizeof(double));
  Out.append(reinterpret_cast<const char *>(W2),
             kHidden * kOut * sizeof(double));
}

std::string AlvinnWorkload::referenceDigest() const {
  // Independent recomputation with plain arrays, same arithmetic order.
  std::vector<double> In(Patterns * kIn), Tg(Patterns * kOut);
  std::vector<double> Rw1(kIn * kHidden), Rw2(kHidden * kOut);
  DeterministicRng Rng(0xa1f1);
  for (auto &V : In)
    V = Rng.nextDouble(-1.0, 1.0);
  for (auto &V : Tg)
    V = Rng.nextDouble(-0.9, 0.9);
  for (auto &V : Rw1)
    V = Rng.nextDouble(-0.2, 0.2);
  for (auto &V : Rw2)
    V = Rng.nextDouble(-0.2, 0.2);

  std::vector<double> EpErr(Epochs);
  std::vector<double> Hid(kHidden), Out(kOut), OutD(kOut), HidD(kHidden);
  for (uint64_t E = 0; E < Epochs; ++E) {
    std::vector<int64_t> D1(kIn * kHidden, 0), D2(kHidden * kOut, 0);
    int64_t ErrAcc = 0;
    for (uint64_t P = 0; P < Patterns; ++P) {
      const double *X = &In[P * kIn];
      const double *T = &Tg[P * kOut];
      for (unsigned H = 0; H < kHidden; ++H) {
        double Acc = 0.0;
        for (unsigned I = 0; I < kIn; ++I)
          Acc += X[I] * Rw1[I * kHidden + H];
        Hid[H] = activation(Acc);
      }
      for (unsigned O = 0; O < kOut; ++O) {
        double Acc = 0.0;
        for (unsigned H = 0; H < kHidden; ++H)
          Acc += Hid[H] * Rw2[H * kOut + O];
        Out[O] = activation(Acc);
      }
      double ErrSq = 0.0;
      for (unsigned O = 0; O < kOut; ++O) {
        double Err = T[O] - Out[O];
        ErrSq += Err * Err;
        OutD[O] = Err * (1.0 - Out[O] * Out[O]);
      }
      for (unsigned H = 0; H < kHidden; ++H) {
        double Acc = 0.0;
        for (unsigned O = 0; O < kOut; ++O)
          Acc += OutD[O] * Rw2[H * kOut + O];
        HidD[H] = Acc * (1.0 - Hid[H] * Hid[H]);
      }
      for (unsigned H = 0; H < kHidden; ++H)
        for (unsigned O = 0; O < kOut; ++O)
          D2[H * kOut + O] += toFixed(OutD[O] * Hid[H]);
      for (unsigned I = 0; I < kIn; ++I)
        for (unsigned H = 0; H < kHidden; ++H)
          D1[I * kHidden + H] += toFixed(HidD[H] * X[I]);
      ErrAcc += toFixed(ErrSq);
    }
    for (unsigned I = 0; I < kIn * kHidden; ++I)
      Rw1[I] += kLearningRate * fromFixed(D1[I]);
    for (unsigned I = 0; I < kHidden * kOut; ++I)
      Rw2[I] += kLearningRate * fromFixed(D2[I]);
    EpErr[E] = fromFixed(ErrAcc);
  }

  std::string LiveOut(reinterpret_cast<const char *>(EpErr.data()),
                      Epochs * sizeof(double));
  LiveOut.append(reinterpret_cast<const char *>(Rw1.data()),
                 kIn * kHidden * sizeof(double));
  LiveOut.append(reinterpret_cast<const char *>(Rw2.data()),
                 kHidden * kOut * sizeof(double));
  return combineDigest(LiveOut, "");
}
