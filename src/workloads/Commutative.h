//===- workloads/Commutative.h - Irregular commutative workloads -*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three irregular update kernels that sit beyond the paper's five
/// programs: a hashed histogram (counter bumps + a min map), graph degree
/// counting over a fixed edge list, and duplicate detection through a
/// shared bitmap.  Each hot iteration read-modify-writes a data-dependent
/// cell of a shared table — not a reduction (the cell varies per
/// iteration, the old value never escapes) and not privatizable (cells
/// collide across iterations), but commutative: the privatized body defers
/// every update through `com_update` and the checkpoint commit folds the
/// logs, so speculation never misspeculates on the collisions.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_WORKLOADS_COMMUTATIVE_H
#define PRIVATEER_WORKLOADS_COMMUTATIVE_H

#include "workloads/Workload.h"

namespace privateer {

class CommutativeWorkload : public Workload {
public:
  enum class Kind { Histogram, Degree, Dedup };

  CommutativeWorkload(Kind K, Scale S);

  const char *name() const override;
  PaperRow paperRow() const override {
    // Not one of the paper's Table 3 programs; the row marks the gap.
    return PaperRow{1, 0, "n/a", "n/a", {0, 0, 0, 0, 0}, "Com"};
  }
  HeapSites ourSites() const override;
  const char *extras() const override { return "Com"; }
  DoallOnlyShape doallOnly() const override {
    // Static analysis sees loop-carried read-modify-writes through
    // data-dependent addresses: DOALL finds nothing.
    return DoallOnlyShape{false, 0.0, 0};
  }

  uint64_t iterationsPerInvocation() const override { return Iterations; }

  void setUp() override;
  void tearDown() override;
  void body(uint64_t I) override;
  void appendLiveOut(std::string &Out) const override;
  std::string referenceDigest() const override;

private:
  Kind K;
  uint64_t Iterations;
  uint64_t Rounds;
  // Histogram: counter and min tables, one hot cell per hashed key.
  uint64_t Buckets = 0;
  int64_t *Hist = nullptr;
  int64_t *HMin = nullptr;
  // Degree: read-only edge endpoints, commutative per-node counters.
  uint64_t Nodes = 0;
  int64_t *Src = nullptr;
  int64_t *Dst = nullptr;
  int64_t *Deg = nullptr;
  // Dedup: shared bitmap of seen keys.
  uint64_t Words = 0;
  int64_t *Seen = nullptr;
};

} // namespace privateer

#endif // PRIVATEER_WORKLOADS_COMMUTATIVE_H
