//===- workloads/EncMd5.cpp -----------------------------------------------===//

#include "workloads/EncMd5.h"

#include "runtime/Privateer.h"
#include "support/DeterministicRng.h"

#include <cstring>
#include <vector>

using namespace privateer;

namespace {

void fillInput(uint8_t *Out, uint64_t NumBuffers, size_t BufferBytes) {
  DeterministicRng Rng(0xed5);
  for (uint64_t I = 0; I < NumBuffers * BufferBytes; I += 8) {
    uint64_t V = Rng.next();
    std::memcpy(Out + I, &V, 8);
  }
}

std::string hexDigest(const uint8_t *Digest) {
  static const char Hex[] = "0123456789abcdef";
  std::string Out(32, '0');
  for (int I = 0; I < 16; ++I) {
    Out[I * 2] = Hex[Digest[I] >> 4];
    Out[I * 2 + 1] = Hex[Digest[I] & 15];
  }
  return Out;
}

} // namespace

EncMd5Workload::EncMd5Workload(Scale S)
    : NumBuffers(S == Scale::Small ? 64 : 512),
      BufferBytes(S == Scale::Small ? 2048 : 8192) {}

void EncMd5Workload::setUp() {
  Input = static_cast<uint8_t *>(
      h_alloc(NumBuffers * BufferBytes, HeapKind::ReadOnly));
  fillInput(Input, NumBuffers, BufferBytes);
  State =
      static_cast<Md5Context *>(h_alloc(sizeof(Md5Context), HeapKind::Private));
  DigestSum = static_cast<uint64_t *>(
      h_alloc(NumBuffers * sizeof(uint64_t), HeapKind::Private));
  std::memset(DigestSum, 0, NumBuffers * sizeof(uint64_t));
}

void EncMd5Workload::tearDown() {
  h_dealloc(Input, HeapKind::ReadOnly);
  h_dealloc(State, HeapKind::Private);
  h_dealloc(DigestSum, HeapKind::Private);
  Input = nullptr;
  State = nullptr;
  DigestSum = nullptr;
}

void EncMd5Workload::body(uint64_t I) {
  Runtime &Rt = Runtime::get();
  // The reused state object: every field is rewritten by md5Init before
  // any read, which is exactly why privatization applies.  One blanket
  // privacy check per phase stands in for the compiler's per-field checks.
  private_write(State, sizeof(Md5Context));
  md5Init(*State);
  private_write(State, sizeof(Md5Context));
  private_read(State, sizeof(Md5Context));
  md5Update(*State, Input + I * BufferBytes, BufferBytes);

  // The digest buffer is short-lived (§6.1).
  auto *Digest = static_cast<uint8_t *>(h_alloc(16, HeapKind::ShortLived));
  private_read(State, sizeof(Md5Context));
  private_write(State, sizeof(Md5Context));
  md5Final(*State, Digest);

  uint64_t Folded = 0;
  for (int B = 0; B < 16; ++B)
    Folded = Folded * 257 + Digest[B];
  private_write(&DigestSum[I], sizeof(uint64_t));
  DigestSum[I] = Folded;

  Rt.deferPrintf("%s  set%04llu\n", hexDigest(Digest).c_str(),
                 static_cast<unsigned long long>(I));
  h_dealloc(Digest, HeapKind::ShortLived);
}

void EncMd5Workload::appendLiveOut(std::string &Out) const {
  Out.append(reinterpret_cast<const char *>(DigestSum),
             NumBuffers * sizeof(uint64_t));
}

std::string EncMd5Workload::referenceDigest() const {
  std::vector<uint8_t> Data(NumBuffers * BufferBytes);
  fillInput(Data.data(), NumBuffers, BufferBytes);
  std::vector<uint64_t> Sums(NumBuffers);
  std::string Io;
  for (uint64_t I = 0; I < NumBuffers; ++I) {
    Md5Context Ctx;
    md5Init(Ctx);
    md5Update(Ctx, Data.data() + I * BufferBytes, BufferBytes);
    uint8_t Digest[16];
    md5Final(Ctx, Digest);
    uint64_t Folded = 0;
    for (int B = 0; B < 16; ++B)
      Folded = Folded * 257 + Digest[B];
    Sums[I] = Folded;
    char Line[64];
    std::snprintf(Line, sizeof(Line), "%s  set%04llu\n",
                  hexDigest(Digest).c_str(),
                  static_cast<unsigned long long>(I));
    Io += Line;
  }
  std::string LiveOut(reinterpret_cast<const char *>(Sums.data()),
                      NumBuffers * sizeof(uint64_t));
  return combineDigest(LiveOut, Io);
}
