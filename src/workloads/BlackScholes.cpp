//===- workloads/BlackScholes.cpp -----------------------------------------===//

#include "workloads/BlackScholes.h"

#include "runtime/Privateer.h"
#include "support/DeterministicRng.h"

#include <cmath>
#include <cstring>
#include <vector>

using namespace privateer;

namespace {

/// Cumulative normal distribution via the polynomial approximation PARSEC
/// blackscholes uses (Abramowitz & Stegun 26.2.17).
double cndf(double X) {
  bool Negative = X < 0.0;
  double Ax = std::fabs(X);
  double K = 1.0 / (1.0 + 0.2316419 * Ax);
  double Poly =
      K * (0.319381530 +
           K * (-0.356563782 +
                K * (1.781477937 + K * (-1.821255978 + K * 1.330274429))));
  double Pdf = std::exp(-0.5 * Ax * Ax) * 0.3989422804014327;
  double Value = 1.0 - Pdf * Poly;
  return Negative ? 1.0 - Value : Value;
}

/// Per-run risk-free-rate shift; deterministic so reference and privatized
/// executions agree bit-for-bit.
double rateShift(uint64_t Run) {
  return 1e-4 * static_cast<double>(Run % 17);
}

} // namespace

double BlackScholesWorkload::priceOption(double Spot, double Strike,
                                         double Rate, double Vol, double Time,
                                         bool IsCall) {
  double SqrtT = std::sqrt(Time);
  double D1 = (std::log(Spot / Strike) + (Rate + 0.5 * Vol * Vol) * Time) /
              (Vol * SqrtT);
  double D2 = D1 - Vol * SqrtT;
  double Disc = Strike * std::exp(-Rate * Time);
  if (IsCall)
    return Spot * cndf(D1) - Disc * cndf(D2);
  return Disc * cndf(-D2) - Spot * cndf(-D1);
}

BlackScholesWorkload::BlackScholesWorkload(Scale S)
    : NumOptions(S == Scale::Small ? 256 : 4096),
      NumRuns(S == Scale::Small ? 40 : 200) {}

void BlackScholesWorkload::setUp() {
  auto AllocRo = [&](size_t Bytes) {
    return h_alloc(Bytes, HeapKind::ReadOnly);
  };
  Spot = static_cast<double *>(AllocRo(NumOptions * sizeof(double)));
  Strike = static_cast<double *>(AllocRo(NumOptions * sizeof(double)));
  Rate = static_cast<double *>(AllocRo(NumOptions * sizeof(double)));
  Vol = static_cast<double *>(AllocRo(NumOptions * sizeof(double)));
  Time = static_cast<double *>(AllocRo(NumOptions * sizeof(double)));
  IsCall = static_cast<int *>(AllocRo(NumOptions * sizeof(int)));
  // "the pricing array ... is allocated in a different function": private.
  Prices = static_cast<double *>(
      h_alloc(NumOptions * sizeof(double), HeapKind::Private));
  RunSummary = static_cast<double *>(
      h_alloc(NumRuns * sizeof(double), HeapKind::Private));
  std::memset(RunSummary, 0, NumRuns * sizeof(double));

  DeterministicRng Rng(0xb1ac5);
  for (uint64_t I = 0; I < NumOptions; ++I) {
    Spot[I] = Rng.nextDouble(10.0, 150.0);
    Strike[I] = Rng.nextDouble(10.0, 150.0);
    Rate[I] = Rng.nextDouble(0.01, 0.08);
    Vol[I] = Rng.nextDouble(0.05, 0.65);
    Time[I] = Rng.nextDouble(0.1, 3.0);
    IsCall[I] = (Rng.next() & 1) ? 1 : 0;
  }
}

void BlackScholesWorkload::tearDown() {
  for (void *P : {static_cast<void *>(Spot), static_cast<void *>(Strike),
                  static_cast<void *>(Rate), static_cast<void *>(Vol),
                  static_cast<void *>(Time), static_cast<void *>(IsCall)})
    h_dealloc(P, HeapKind::ReadOnly);
  h_dealloc(Prices, HeapKind::Private);
  h_dealloc(RunSummary, HeapKind::Private);
  Spot = Strike = Rate = Vol = Time = Prices = RunSummary = nullptr;
  IsCall = nullptr;
}

void BlackScholesWorkload::body(uint64_t Run) {
  double Shift = rateShift(Run);
  double Sum = 0.0;
  // The output dependence the paper privatizes: every run overwrites the
  // whole shared pricing array — one coalesced ranged check for the
  // unconditional affine writes.  Paper Table 3 reports Priv R = 0 B for
  // blackscholes: the hot loop only writes private memory.
  private_write(Prices, NumOptions * sizeof(double));
  for (uint64_t I = 0; I < NumOptions; ++I) {
    double P = priceOption(Spot[I], Strike[I], Rate[I] + Shift, Vol[I],
                           Time[I], IsCall[I] != 0);
    Prices[I] = P;
    Sum += P;
  }
  private_write(&RunSummary[Run], sizeof(double));
  RunSummary[Run] = Sum;
}

void BlackScholesWorkload::appendLiveOut(std::string &Out) const {
  Out.append(reinterpret_cast<const char *>(RunSummary),
             NumRuns * sizeof(double));
  // The final run's prices remain live-out in the private heap.
  Out.append(reinterpret_cast<const char *>(Prices),
             NumOptions * sizeof(double));
}

std::string BlackScholesWorkload::referenceDigest() const {
  std::vector<double> RefPrices(NumOptions);
  std::vector<double> RefSummary(NumRuns);
  for (uint64_t Run = 0; Run < NumRuns; ++Run) {
    double Shift = rateShift(Run);
    double Sum = 0.0;
    for (uint64_t I = 0; I < NumOptions; ++I) {
      double P = priceOption(Spot[I], Strike[I], Rate[I] + Shift, Vol[I],
                             Time[I], IsCall[I] != 0);
      RefPrices[I] = P;
      Sum += P;
    }
    RefSummary[Run] = Sum;
  }
  std::string LiveOut(reinterpret_cast<const char *>(RefSummary.data()),
                      NumRuns * sizeof(double));
  LiveOut.append(reinterpret_cast<const char *>(RefPrices.data()),
                 NumOptions * sizeof(double));
  return combineDigest(LiveOut, "");
}
