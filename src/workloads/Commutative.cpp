//===- workloads/Commutative.cpp ------------------------------------------===//

#include "workloads/Commutative.h"

#include "runtime/Privateer.h"

#include <cstring>
#include <vector>

using namespace privateer;

namespace {

constexpr int64_t kMinInit = 1'000'000'000;

/// The same mixing recurrence the IR workloads use: a few LCG rounds over
/// a small prime field, deterministic and cheap to reproduce in plain C++.
uint64_t mixKey(uint64_t X, uint64_t Rounds) {
  for (uint64_t R = 0; R < Rounds; ++R)
    X = (X * 1103515245 + 12345) % 1000003;
  return X;
}

} // namespace

CommutativeWorkload::CommutativeWorkload(Kind K, Scale S) : K(K) {
  bool Small = S == Scale::Small;
  Rounds = Small ? 6 : 24;
  switch (K) {
  case Kind::Histogram:
    Iterations = Small ? 3000 : 300000;
    Buckets = Small ? 128 : 4096;
    break;
  case Kind::Degree:
    Iterations = Small ? 3000 : 300000;
    Nodes = Small ? 96 : 4096;
    break;
  case Kind::Dedup:
    Iterations = Small ? 3000 : 300000;
    Words = Small ? 64 : 2048;
    break;
  }
}

const char *CommutativeWorkload::name() const {
  switch (K) {
  case Kind::Histogram:
    return "histogram";
  case Kind::Degree:
    return "degree-count";
  case Kind::Dedup:
    return "dedup";
  }
  return "commutative";
}

HeapSites CommutativeWorkload::ourSites() const {
  HeapSites S;
  switch (K) {
  case Kind::Histogram:
    S.Commutative = 2;
    break;
  case Kind::Degree:
    S.ReadOnly = 2;
    S.Commutative = 1;
    break;
  case Kind::Dedup:
    S.Commutative = 1;
    break;
  }
  return S;
}

void CommutativeWorkload::setUp() {
  switch (K) {
  case Kind::Histogram:
    Hist = static_cast<int64_t *>(
        h_alloc(Buckets * sizeof(int64_t), HeapKind::Commutative));
    HMin = static_cast<int64_t *>(
        h_alloc(Buckets * sizeof(int64_t), HeapKind::Commutative));
    std::memset(Hist, 0, Buckets * sizeof(int64_t));
    for (uint64_t B = 0; B < Buckets; ++B)
      HMin[B] = kMinInit;
    Runtime::get().registerCommutative(Hist, Buckets * sizeof(int64_t),
                                       ComOp::Add, 8);
    Runtime::get().registerCommutative(HMin, Buckets * sizeof(int64_t),
                                       ComOp::Min, 8);
    break;
  case Kind::Degree:
    Src = static_cast<int64_t *>(
        h_alloc(Iterations * sizeof(int64_t), HeapKind::ReadOnly));
    Dst = static_cast<int64_t *>(
        h_alloc(Iterations * sizeof(int64_t), HeapKind::ReadOnly));
    Deg = static_cast<int64_t *>(
        h_alloc(Nodes * sizeof(int64_t), HeapKind::Commutative));
    std::memset(Deg, 0, Nodes * sizeof(int64_t));
    for (uint64_t E = 0; E < Iterations; ++E) {
      Src[E] = static_cast<int64_t>((E * 2654435761u) % Nodes);
      Dst[E] = static_cast<int64_t>((E * 40503 + 17) % Nodes);
    }
    Runtime::get().registerCommutative(Deg, Nodes * sizeof(int64_t),
                                       ComOp::Add, 8);
    break;
  case Kind::Dedup:
    Seen = static_cast<int64_t *>(
        h_alloc(Words * sizeof(int64_t), HeapKind::Commutative));
    std::memset(Seen, 0, Words * sizeof(int64_t));
    Runtime::get().registerCommutative(Seen, Words * sizeof(int64_t),
                                       ComOp::Or, 8);
    break;
  }
}

void CommutativeWorkload::tearDown() {
  for (int64_t *P : {Hist, HMin, Deg, Seen})
    if (P)
      h_dealloc(P, HeapKind::Commutative);
  for (int64_t *P : {Src, Dst})
    if (P)
      h_dealloc(P, HeapKind::ReadOnly);
  Hist = HMin = Src = Dst = Deg = Seen = nullptr;
}

void CommutativeWorkload::body(uint64_t I) {
  uint64_t H = mixKey(I, Rounds);
  switch (K) {
  case Kind::Histogram: {
    uint64_t B = H % Buckets;
    com_update(&Hist[B], ComOp::Add, 8, 1);
    com_update(&HMin[B], ComOp::Min, 8, static_cast<int64_t>(H % 4096));
    break;
  }
  case Kind::Degree:
    com_update(&Deg[Src[I]], ComOp::Add, 8, 1);
    com_update(&Deg[Dst[I]], ComOp::Add, 8, 1);
    break;
  case Kind::Dedup: {
    uint64_t Bit = H % (Words * 64);
    com_update(&Seen[Bit / 64], ComOp::Or, 8,
               static_cast<int64_t>(1ull << (Bit % 64)));
    break;
  }
  }
}

void CommutativeWorkload::appendLiveOut(std::string &Out) const {
  auto Append = [&Out](const int64_t *P, uint64_t Count) {
    Out.append(reinterpret_cast<const char *>(P), Count * sizeof(int64_t));
  };
  switch (K) {
  case Kind::Histogram:
    Append(Hist, Buckets);
    Append(HMin, Buckets);
    break;
  case Kind::Degree:
    Append(Deg, Nodes);
    break;
  case Kind::Dedup:
    Append(Seen, Words);
    break;
  }
}

std::string CommutativeWorkload::referenceDigest() const {
  std::string LiveOut;
  auto Append = [&LiveOut](const std::vector<int64_t> &V) {
    LiveOut.append(reinterpret_cast<const char *>(V.data()),
                   V.size() * sizeof(int64_t));
  };
  switch (K) {
  case Kind::Histogram: {
    std::vector<int64_t> RefHist(Buckets, 0);
    std::vector<int64_t> RefMin(Buckets, kMinInit);
    for (uint64_t I = 0; I < Iterations; ++I) {
      uint64_t H = mixKey(I, Rounds);
      uint64_t B = H % Buckets;
      RefHist[B] += 1;
      int64_t V = static_cast<int64_t>(H % 4096);
      if (V < RefMin[B])
        RefMin[B] = V;
    }
    Append(RefHist);
    Append(RefMin);
    break;
  }
  case Kind::Degree: {
    std::vector<int64_t> RefDeg(Nodes, 0);
    for (uint64_t E = 0; E < Iterations; ++E) {
      RefDeg[(E * 2654435761u) % Nodes] += 1;
      RefDeg[(E * 40503 + 17) % Nodes] += 1;
    }
    Append(RefDeg);
    break;
  }
  case Kind::Dedup: {
    std::vector<int64_t> RefSeen(Words, 0);
    for (uint64_t I = 0; I < Iterations; ++I) {
      uint64_t Bit = mixKey(I, Rounds) % (Words * 64);
      RefSeen[Bit / 64] |= static_cast<int64_t>(1ull << (Bit % 64));
    }
    Append(RefSeen);
    break;
  }
  }
  return combineDigest(LiveOut, "");
}
