//===- workloads/IrPrograms.cpp -------------------------------------------===//

#include "workloads/IrPrograms.h"

#include <cstdio>

using namespace privateer;

std::string privateer::dijkstraIrText(unsigned NumNodes) {
  char Buf[256];
  std::string T;
  auto Emit = [&](const char *Fmt, auto... Args) {
    std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    T += Buf;
    T += "\n";
  };

  unsigned N = NumNodes;
  // Globals: queue (head @0, tail @8), pathcost, result sums, adjacency.
  Emit("global @Q 16");
  Emit("global @pathcost %u", N * 8);
  Emit("global @out %u", N * 8);
  Emit("global @adj %u", N * N * 8);
  T += "\n";

  // Deterministic edge weights: ((u*31 + v*17) mod 97) + 1; 0 diagonal.
  T += "define void @init_adj() {\n"
       "entry:\n"
       "  br uloop\n"
       "uloop:\n"
       "  %u = phi [entry: 0], [ulatch: %unext]\n";
  Emit("  %%uc = icmp lt, %%u, %u", N);
  T += "  condbr %uc, vinit, done\n"
       "vinit:\n"
       "  br vloop\n"
       "vloop:\n"
       "  %v = phi [vinit: 0], [vlatch: %vnext]\n";
  Emit("  %%vc = icmp lt, %%v, %u", N);
  T += "  condbr %vc, vbody, ulatch\n"
       "vbody:\n"
       "  %du = mul %u, 31\n"
       "  %dv = mul %v, 17\n"
       "  %s = add %du, %dv\n"
       "  %m = srem %s, 97\n"
       "  %w0 = add %m, 1\n"
       "  %same = icmp eq, %u, %v\n"
       "  %w = select %same, 0, %w0\n";
  Emit("  %%row = mul %%u, %u", N * 8);
  T += "  %col = mul %v, 8\n"
       "  %off = add %row, %col\n"
       "  %p = gep @adj, %off\n"
       "  store %w, %p, 8\n"
       "  br vlatch\n"
       "vlatch:\n"
       "  %vnext = add %v, 1\n"
       "  br vloop\n"
       "ulatch:\n"
       "  %unext = add %u, 1\n"
       "  br uloop\n"
       "done:\n"
       "  ret\n"
       "}\n\n";

  // enqueueQ (Figure 2a lines 9-21): node {vx @0, next @8} from malloc.
  T += "define void @enqueue(i64 %v) {\n"
       "entry:\n"
       "  %n = malloc 16\n"
       "  store %v, %n, 8\n"
       "  %nextp = gep %n, 8\n"
       "  store 0, %nextp, 8\n"
       "  %tailp = gep @Q, 8\n"
       "  %tail = load ptr, %tailp, 8\n"
       "  %wasempty = icmp eq, %tail, 0\n"
       "  condbr %wasempty, sethead, append\n"
       "sethead:\n"
       "  store %n, @Q, 8\n"
       "  br settail\n"
       "append:\n"
       "  %tnextp = gep %tail, 8\n"
       "  store %n, %tnextp, 8\n"
       "  br settail\n"
       "settail:\n"
       "  store %n, %tailp, 8\n"
       "  ret\n"
       "}\n\n";

  // dequeueQ (Figure 2a lines 23-37).
  T += "define i64 @dequeue() {\n"
       "entry:\n"
       "  %kill = load ptr, @Q, 8\n"
       "  %v = load i64, %kill, 8\n"
       "  %nextp = gep %kill, 8\n"
       "  %next = load ptr, %nextp, 8\n"
       "  store %next, @Q, 8\n"
       "  %islast = icmp eq, %next, 0\n"
       "  condbr %islast, cleartail, done\n"
       "cleartail:\n"
       "  %tailp = gep @Q, 8\n"
       "  store 0, %tailp, 8\n"
       "  br done\n"
       "done:\n"
       "  free %kill\n"
       "  ret %v\n"
       "}\n\n";

  // hot_loop (Figure 2a lines 45-82).
  T += "define void @hot_loop(i64 %n) {\n"
       "entry:\n"
       "  br loop\n"
       "loop:\n"
       "  %src = phi [entry: 0], [latch: %srcnext]\n"
       "  %c = icmp lt, %src, %n\n"
       "  condbr %c, body, exit\n"
       "body:\n"
       "  br initloop\n"
       "initloop:\n"
       "  %i = phi [body: 0], [initlatch: %inext]\n"
       "  %ic = icmp lt, %i, %n\n"
       "  condbr %ic, initbody, seed\n"
       "initbody:\n"
       "  %ioff = mul %i, 8\n"
       "  %ip = gep @pathcost, %ioff\n"
       "  store 1000000000, %ip, 8\n"
       "  br initlatch\n"
       "initlatch:\n"
       "  %inext = add %i, 1\n"
       "  br initloop\n"
       "seed:\n"
       "  %soff = mul %src, 8\n"
       "  %sp = gep @pathcost, %soff\n"
       "  store 0, %sp, 8\n"
       "  call @enqueue(%src)\n"
       "  br qloop\n"
       "qloop:\n"
       "  %head = load ptr, @Q, 8\n"
       "  %empty = icmp eq, %head, 0\n"
       "  condbr %empty, suminit, qbody\n"
       "qbody:\n"
       "  %v = call @dequeue()\n"
       "  %voff = mul %v, 8\n"
       "  %vp = gep @pathcost, %voff\n"
       "  %d = load i64, %vp, 8\n"
       "  br rloop\n"
       "rloop:\n"
       "  %j = phi [qbody: 0], [rlatch: %jnext]\n"
       "  %jc = icmp lt, %j, %n\n"
       "  condbr %jc, rbody, qloop\n"
       "rbody:\n";
  Emit("  %%vrow = mul %%v, %u", N * 8);
  T += "  %jcol = mul %j, 8\n"
       "  %aoff = add %vrow, %jcol\n"
       "  %ap = gep @adj, %aoff\n"
       "  %w = load i64, %ap, 8\n"
       "  %ncost = add %w, %d\n"
       "  %jp = gep @pathcost, %jcol\n"
       "  %pc = load i64, %jp, 8\n"
       "  %better = icmp gt, %pc, %ncost\n"
       "  condbr %better, improve, rlatch\n"
       "improve:\n"
       "  store %ncost, %jp, 8\n"
       "  call @enqueue(%j)\n"
       "  br rlatch\n"
       "rlatch:\n"
       "  %jnext = add %j, 1\n"
       "  br rloop\n"
       "suminit:\n"
       "  br sumloop\n"
       "sumloop:\n"
       "  %k = phi [suminit: 0], [sumlatch: %knext]\n"
       "  %sum = phi [suminit: 0], [sumlatch: %sum2]\n"
       "  %kc = icmp lt, %k, %n\n"
       "  condbr %kc, sumbody, report\n"
       "sumbody:\n"
       "  %koff = mul %k, 8\n"
       "  %kp = gep @pathcost, %koff\n"
       "  %kv = load i64, %kp, 8\n"
       "  %sum2 = add %sum, %kv\n"
       "  br sumlatch\n"
       "sumlatch:\n"
       "  %knext = add %k, 1\n"
       "  br sumloop\n"
       "report:\n"
       "  %op = gep @out, %soff\n"
       "  store %sum, %op, 8\n"
       "  print \"src %d cost %d\\n\", %src, %sum\n"
       "  br latch\n"
       "latch:\n"
       "  %srcnext = add %src, 1\n"
       "  br loop\n"
       "exit:\n"
       "  ret\n"
       "}\n\n";

  Emit("define i64 @main() {\n"
       "entry:\n"
       "  call @init_adj()\n"
       "  call @hot_loop(%u)\n"
       "  ret 0\n"
       "}\n",
       N);
  // Training entry: the same hot loop over a smaller input (paper §6
  // profiles 'train', evaluates 'ref').
  Emit("define i64 @main_train() {\n"
       "entry:\n"
       "  call @init_adj()\n"
       "  call @hot_loop(%u)\n"
       "  ret 0\n"
       "}",
       N / 2 > 0 ? N / 2 : 1);
  return T;
}

std::string privateer::reductionSumIrText(uint64_t N) {
  char Buf[1024];
  std::snprintf(Buf, sizeof(Buf),
                "global @acc 8\n"
                "\n"
                "define void @kernel(i64 %%n) {\n"
                "entry:\n"
                "  br loop\n"
                "loop:\n"
                "  %%i = phi [entry: 0], [latch: %%inext]\n"
                "  %%c = icmp lt, %%i, %%n\n"
                "  condbr %%c, body, exit\n"
                "body:\n"
                "  %%sq = mul %%i, %%i\n"
                "  %%f = srem %%sq, 1000\n"
                "  %%old = load i64, @acc, 8\n"
                "  %%new = add %%old, %%f\n"
                "  store %%new, @acc, 8\n"
                "  br latch\n"
                "latch:\n"
                "  %%inext = add %%i, 1\n"
                "  br loop\n"
                "exit:\n"
                "  ret\n"
                "}\n"
                "\n"
                "define i64 @main() {\n"
                "entry:\n"
                "  call @kernel(%llu)\n"
                "  %%r = load i64, @acc, 8\n"
                "  print \"acc %%d\\n\", %%r\n"
                "  ret %%r\n"
                "}\n",
                static_cast<unsigned long long>(N));
  return Buf;
}

std::string privateer::recurrenceIrText(uint64_t N) {
  char Buf[1024];
  std::snprintf(Buf, sizeof(Buf),
                "global @cell 8\n"
                "\n"
                "define void @kernel(i64 %%n) {\n"
                "entry:\n"
                "  br loop\n"
                "loop:\n"
                "  %%i = phi [entry: 0], [latch: %%inext]\n"
                "  %%c = icmp lt, %%i, %%n\n"
                "  condbr %%c, body, exit\n"
                "body:\n"
                "  %%old = load i64, @cell, 8\n"
                "  %%scaled = mul %%old, 3\n"
                "  %%mixed = xor %%scaled, %%i\n"
                "  %%capped = srem %%mixed, 1000003\n"
                "  store %%capped, @cell, 8\n"
                "  br latch\n"
                "latch:\n"
                "  %%inext = add %%i, 1\n"
                "  br loop\n"
                "exit:\n"
                "  ret\n"
                "}\n"
                "\n"
                "define i64 @main() {\n"
                "entry:\n"
                "  call @kernel(%llu)\n"
                "  %%r = load i64, @cell, 8\n"
                "  ret %%r\n"
                "}\n",
                static_cast<unsigned long long>(N));
  return Buf;
}

std::string privateer::fpPricingIrText(uint64_t N) {
  char Buf[4096];
  std::snprintf(
      Buf, sizeof(Buf),
      "global @spot %llu\n"
      "global @vol %llu\n"
      "global @price %llu\n"
      "\n"
      "define void @fill(i64 %%n) {\n"
      "entry:\n"
      "  br loop\n"
      "loop:\n"
      "  %%i = phi [entry: 0], [latch: %%inext]\n"
      "  %%c = icmp lt, %%i, %%n\n"
      "  condbr %%c, latch, exit\n"
      "latch:\n"
      "  %%h = mul %%i, 2654435761\n"
      "  %%m = srem %%h, 1000\n"
      "  %%f = sitofp %%m\n"
      "  %%s = fadd %%f, 50.0\n"
      "  %%off = mul %%i, 8\n"
      "  %%sp = gep @spot, %%off\n"
      "  store %%s, %%sp, 8\n"
      "  %%vraw = srem %%h, 40\n"
      "  %%vf = sitofp %%vraw\n"
      "  %%v = fmul %%vf, 0.01\n"
      "  %%vp = gep @vol, %%off\n"
      "  store %%v, %%vp, 8\n"
      "  %%inext = add %%i, 1\n"
      "  br loop\n"
      "exit:\n"
      "  ret\n"
      "}\n"
      "\n"
      "define void @kernel(i64 %%n) {\n"
      "entry:\n"
      "  br loop\n"
      "loop:\n"
      "  %%i = phi [entry: 0], [latch: %%inext]\n"
      "  %%c = icmp lt, %%i, %%n\n"
      "  condbr %%c, body, exit\n"
      "body:\n"
      "  %%off = mul %%i, 8\n"
      "  %%sp = gep @spot, %%off\n"
      "  %%s = load f64, %%sp, 8\n"
      "  %%vp = gep @vol, %%off\n"
      "  %%v = load f64, %%vp, 8\n"
      "  %%v2 = fmul %%v, %%v\n"
      "  %%drift = fmul %%v2, 0.5\n"
      "  %%scaled = fmul %%s, %%drift\n"
      "  %%base = fsub %%s, 55.0\n"
      "  %%itm = fcmp gt, %%base, 0.0\n"
      "  ; select copies raw bits: f64 base when in the money, +0.0 else.\n"
      "  %%payoff = select %%itm, %%base, 0\n"
      "  %%p0 = fadd %%scaled, %%payoff\n"
      "  %%p = fadd %%p0, 1.0\n"
      "  %%pp = gep @price, %%off\n"
      "  store %%p, %%pp, 8\n"
      "  br latch\n"
      "latch:\n"
      "  %%inext = add %%i, 1\n"
      "  br loop\n"
      "exit:\n"
      "  ret\n"
      "}\n"
      "\n"
      "define i64 @main() {\n"
      "entry:\n"
      "  call @fill(%llu)\n"
      "  call @kernel(%llu)\n"
      "  br sumloop\n"
      "sumloop:\n"
      "  %%i = phi [entry: 0], [slatch: %%inext]\n"
      "  %%acc = phi [entry: 0.0], [slatch: %%acc2]\n"
      "  %%c = icmp lt, %%i, %llu\n"
      "  condbr %%c, slatch, done\n"
      "slatch:\n"
      "  %%off = mul %%i, 8\n"
      "  %%pp = gep @price, %%off\n"
      "  %%p = load f64, %%pp, 8\n"
      "  %%acc2 = fadd %%acc, %%p\n"
      "  %%inext = add %%i, 1\n"
      "  br sumloop\n"
      "done:\n"
      "  print \"total %%.6f\\n\", %%acc\n"
      "  %%r = fptosi %%acc\n"
      "  ret %%r\n"
      "}\n",
      static_cast<unsigned long long>(N * 8),
      static_cast<unsigned long long>(N * 8),
      static_cast<unsigned long long>(N * 8),
      static_cast<unsigned long long>(N),
      static_cast<unsigned long long>(N),
      static_cast<unsigned long long>(N));
  return Buf;
}

std::string privateer::arrayRecurrenceIrText(uint64_t N, uint64_t Dist) {
  // a[k] = 10 + k for k < Dist, then a[i] = (33*a[i-Dist] + i) mod p.
  std::string S = "global @a " + std::to_string(N * 8) +
                  "\n"
                  "\n"
                  "define void @kernel(i64 %n) {\n"
                  "entry:\n";
  for (uint64_t K = 0; K < Dist; ++K) {
    std::string P = "@a";
    if (K != 0) {
      P = "%p" + std::to_string(K);
      S += "  " + P + " = gep @a, " + std::to_string(K * 8) + "\n";
    }
    S += "  store " + std::to_string(10 + K) + ", " + P + ", 8\n";
  }
  std::string D = std::to_string(Dist);
  S += "  br loop\n"
       "loop:\n"
       "  %i = phi [entry: " + D + "], [latch: %inext]\n"
       "  %c = icmp lt, %i, %n\n"
       "  condbr %c, body, exit\n"
       "body:\n"
       "  %j = sub %i, " + D + "\n"
       "  %offj = mul %j, 8\n"
       "  %pj = gep @a, %offj\n"
       "  %prev = load i64, %pj, 8\n"
       "  %t0 = mul %prev, 33\n"
       "  %t1 = add %t0, %i\n"
       "  %v = srem %t1, 1000003\n"
       "  %offi = mul %i, 8\n"
       "  %pi = gep @a, %offi\n"
       "  store %v, %pi, 8\n"
       "  br latch\n"
       "latch:\n"
       "  %inext = add %i, 1\n"
       "  br loop\n"
       "exit:\n"
       "  ret\n"
       "}\n"
       "\n"
       "define i64 @main() {\n"
       "entry:\n"
       "  call @kernel(" + std::to_string(N) + ")\n"
       "  %p = gep @a, " + std::to_string((N - 1) * 8) + "\n"
       "  %r = load i64, %p, 8\n"
       "  print \"last %d\\n\", %r\n"
       "  ret %r\n"
       "}\n";
  return S;
}

namespace {

/// Shared inner mixing loop: %h = mix^Rounds(%i) starting from the hot
/// loop's IV, heavy enough that the hot loop dominates the profile and a
/// 4-worker run amortizes fork/merge cost.
std::string mixRounds(uint64_t Rounds) {
  std::string R = std::to_string(Rounds);
  return "  br hloop\n"
         "hloop:\n"
         "  %r = phi [body: 0], [hlatch: %rnext]\n"
         "  %h = phi [body: %i], [hlatch: %hnext]\n"
         "  %rc = icmp lt, %r, " + R + "\n"
         "  condbr %rc, hbody, update\n"
         "hbody:\n"
         "  %t0 = mul %h, 1103515245\n"
         "  %t1 = add %t0, 12345\n"
         "  %hnext = srem %t1, 1000003\n"
         "  br hlatch\n"
         "hlatch:\n"
         "  %rnext = add %r, 1\n"
         "  br hloop\n";
}

} // namespace

std::string privateer::histogramIrText(uint64_t N, uint64_t Buckets,
                                       uint64_t Rounds) {
  std::string B = std::to_string(Buckets);
  // The key stream drifts: the first Buckets iterations touch each bucket
  // exactly once (the warmup @train profiles), then the stream
  // concentrates on a hot quarter of the table, colliding across
  // iterations the way production inputs do and training inputs don't.
  std::string Hot = std::to_string(Buckets >= 4 ? Buckets / 4 : 1);
  std::string S = "global @hist " + std::to_string(Buckets * 8) +
                  "\nglobal @hmin " + std::to_string(Buckets * 8) +
                  "\n"
                  "\n"
                  "define void @init() {\n"
                  "entry:\n"
                  "  br loop\n"
                  "loop:\n"
                  "  %k = phi [entry: 0], [latch: %knext]\n"
                  "  %c = icmp lt, %k, " + B + "\n"
                  "  condbr %c, latch, exit\n"
                  "latch:\n"
                  "  %off = mul %k, 8\n"
                  "  %p = gep @hmin, %off\n"
                  "  store 1000000000, %p, 8\n"
                  "  %knext = add %k, 1\n"
                  "  br loop\n"
                  "exit:\n"
                  "  ret\n"
                  "}\n"
                  "\n"
                  "define void @kernel(i64 %n) {\n"
                  "entry:\n"
                  "  br loop\n"
                  "loop:\n"
                  "  %i = phi [entry: 0], [latch: %inext]\n"
                  "  %c = icmp lt, %i, %n\n"
                  "  condbr %c, body, exit\n"
                  "body:\n" +
                  mixRounds(Rounds) +
                  "update:\n"
                  "  %warm = icmp lt, %i, " + B + "\n"
                  "  %bw = srem %i, " + B + "\n"
                  "  %bh = srem %h, " + Hot + "\n"
                  "  %b = select %warm, %bw, %bh\n"
                  "  %off = mul %b, 8\n"
                  "  %p = gep @hist, %off\n"
                  "  %old = load i64, %p, 8\n"
                  "  %new = add %old, 1\n"
                  "  %q = gep @hist, %off\n"
                  "  store %new, %q, 8\n"
                  "  %v = srem %h, 4096\n"
                  "  %mp = gep @hmin, %off\n"
                  "  %mold = load i64, %mp, 8\n"
                  "  %mc = icmp lt, %mold, %v\n"
                  "  %mnew = select %mc, %mold, %v\n"
                  "  %mq = gep @hmin, %off\n"
                  "  store %mnew, %mq, 8\n"
                  "  br latch\n"
                  "latch:\n"
                  "  %inext = add %i, 1\n"
                  "  br loop\n"
                  "exit:\n"
                  "  ret\n"
                  "}\n"
                  "\n"
                  "define i64 @train() {\n"
                  "entry:\n"
                  "  call @init()\n"
                  "  call @kernel(" + B + ")\n"
                  "  ret 0\n"
                  "}\n"
                  "\n"
                  "define i64 @main() {\n"
                  "entry:\n"
                  "  call @init()\n"
                  "  call @kernel(" + std::to_string(N) + ")\n"
                  "  br sumloop\n"
                  "sumloop:\n"
                  "  %k = phi [entry: 0], [slatch: %knext]\n"
                  "  %acc = phi [entry: 0], [slatch: %acc3]\n"
                  "  %c = icmp lt, %k, " + B + "\n"
                  "  condbr %c, slatch, done\n"
                  "slatch:\n"
                  "  %off = mul %k, 8\n"
                  "  %p = gep @hist, %off\n"
                  "  %hv = load i64, %p, 8\n"
                  "  %mp = gep @hmin, %off\n"
                  "  %mv = load i64, %mp, 8\n"
                  "  %acc0 = mul %acc, 31\n"
                  "  %acc1 = add %acc0, %hv\n"
                  "  %acc2 = add %acc1, %mv\n"
                  "  %acc3 = srem %acc2, 1000000007\n"
                  "  %knext = add %k, 1\n"
                  "  br sumloop\n"
                  "done:\n"
                  "  print \"hist %d\\n\", %acc\n"
                  "  ret %acc\n"
                  "}\n";
  return S;
}

std::string privateer::degreeCountIrText(uint64_t Nodes, uint64_t Edges,
                                         uint64_t Rounds) {
  std::string V = std::to_string(Nodes);
  // Edge stream with drift: the first Nodes/2 edges pair up distinct
  // endpoints (2e, 2e+1) — the warmup slice @train profiles — and the
  // rest hash into a hot quarter of the nodes, like hubs in a power-law
  // graph.  Requires an even node count.
  std::string Half = std::to_string(Nodes / 2);
  std::string HotV = std::to_string(Nodes >= 4 ? Nodes / 4 : 1);
  std::string S = "global @src " + std::to_string(Edges * 8) +
                  "\nglobal @dst " + std::to_string(Edges * 8) +
                  "\nglobal @deg " + std::to_string(Nodes * 8) +
                  "\n"
                  "\n"
                  "define void @fill(i64 %m) {\n"
                  "entry:\n"
                  "  br loop\n"
                  "loop:\n"
                  "  %e = phi [entry: 0], [latch: %enext]\n"
                  "  %c = icmp lt, %e, %m\n"
                  "  condbr %c, latch, exit\n"
                  "latch:\n"
                  "  %warm = icmp lt, %e, " + Half + "\n"
                  "  %ws = mul %e, 2\n"
                  "  %wd = add %ws, 1\n"
                  "  %h0 = mul %e, 2654435761\n"
                  "  %hs = srem %h0, " + HotV + "\n"
                  "  %h1 = mul %e, 40503\n"
                  "  %h2 = add %h1, 17\n"
                  "  %hd = srem %h2, " + HotV + "\n"
                  "  %s = select %warm, %ws, %hs\n"
                  "  %d = select %warm, %wd, %hd\n"
                  "  %off = mul %e, 8\n"
                  "  %sp = gep @src, %off\n"
                  "  store %s, %sp, 8\n"
                  "  %dp = gep @dst, %off\n"
                  "  store %d, %dp, 8\n"
                  "  %enext = add %e, 1\n"
                  "  br loop\n"
                  "exit:\n"
                  "  ret\n"
                  "}\n"
                  "\n"
                  "define void @kernel(i64 %m) {\n"
                  "entry:\n"
                  "  br loop\n"
                  "loop:\n"
                  "  %i = phi [entry: 0], [latch: %inext]\n"
                  "  %c = icmp lt, %i, %m\n"
                  "  condbr %c, body, exit\n"
                  "body:\n" +
                  mixRounds(Rounds) +
                  "update:\n"
                  "  %eoff = mul %i, 8\n"
                  "  %srcp = gep @src, %eoff\n"
                  "  %s = load i64, %srcp, 8\n"
                  "  %dstp = gep @dst, %eoff\n"
                  "  %d = load i64, %dstp, 8\n"
                  "  %soff = mul %s, 8\n"
                  "  %p1 = gep @deg, %soff\n"
                  "  %o1 = load i64, %p1, 8\n"
                  "  %n1 = add %o1, 1\n"
                  "  %q1 = gep @deg, %soff\n"
                  "  store %n1, %q1, 8\n"
                  "  %doff = mul %d, 8\n"
                  "  %p2 = gep @deg, %doff\n"
                  "  %o2 = load i64, %p2, 8\n"
                  "  %n2 = add %o2, 1\n"
                  "  %q2 = gep @deg, %doff\n"
                  "  store %n2, %q2, 8\n"
                  "  br latch\n"
                  "latch:\n"
                  "  %inext = add %i, 1\n"
                  "  br loop\n"
                  "exit:\n"
                  "  ret\n"
                  "}\n"
                  "\n"
                  "define i64 @train() {\n"
                  "entry:\n"
                  "  call @fill(" + Half + ")\n"
                  "  call @kernel(" + Half + ")\n"
                  "  ret 0\n"
                  "}\n"
                  "\n"
                  "define i64 @main() {\n"
                  "entry:\n"
                  "  call @fill(" + std::to_string(Edges) + ")\n"
                  "  call @kernel(" + std::to_string(Edges) + ")\n"
                  "  br sumloop\n"
                  "sumloop:\n"
                  "  %k = phi [entry: 0], [slatch: %knext]\n"
                  "  %acc = phi [entry: 0], [slatch: %acc2]\n"
                  "  %c = icmp lt, %k, " + V + "\n"
                  "  condbr %c, slatch, done\n"
                  "slatch:\n"
                  "  %off = mul %k, 8\n"
                  "  %p = gep @deg, %off\n"
                  "  %dv = load i64, %p, 8\n"
                  "  %acc0 = mul %acc, 31\n"
                  "  %acc1 = add %acc0, %dv\n"
                  "  %acc2 = srem %acc1, 1000000007\n"
                  "  %knext = add %k, 1\n"
                  "  br sumloop\n"
                  "done:\n"
                  "  print \"deg %d\\n\", %acc\n"
                  "  ret %acc\n"
                  "}\n";
  return S;
}

std::string privateer::dedupIrText(uint64_t N, uint64_t Words,
                                   uint64_t Rounds) {
  std::string W = std::to_string(Words);
  std::string Bits = std::to_string(Words * 64);
  std::string S = "global @seen " + std::to_string(Words * 8) +
                  "\n"
                  "\n"
                  "define void @kernel(i64 %n) {\n"
                  "entry:\n"
                  "  br loop\n"
                  "loop:\n"
                  "  %i = phi [entry: 0], [latch: %inext]\n"
                  "  %c = icmp lt, %i, %n\n"
                  "  condbr %c, body, exit\n"
                  "body:\n" +
                  mixRounds(Rounds) +
                  "update:\n"
                  "  %w = srem %h, " + Bits + "\n"
                  "  %word = sdiv %w, 64\n"
                  "  %bit = srem %w, 64\n"
                  "  %mask = shl 1, %bit\n"
                  "  %woff = mul %word, 8\n"
                  "  %p = gep @seen, %woff\n"
                  "  %old = load i64, %p, 8\n"
                  "  %new = or %old, %mask\n"
                  "  %q = gep @seen, %woff\n"
                  "  store %new, %q, 8\n"
                  "  br latch\n"
                  "latch:\n"
                  "  %inext = add %i, 1\n"
                  "  br loop\n"
                  "exit:\n"
                  "  ret\n"
                  "}\n"
                  "\n"
                  "define i64 @main() {\n"
                  "entry:\n"
                  "  call @kernel(" + std::to_string(N) + ")\n"
                  "  br sumloop\n"
                  "sumloop:\n"
                  "  %k = phi [entry: 0], [slatch: %knext]\n"
                  "  %acc = phi [entry: 0], [slatch: %acc2]\n"
                  "  %c = icmp lt, %k, " + W + "\n"
                  "  condbr %c, slatch, done\n"
                  "slatch:\n"
                  "  %off = mul %k, 8\n"
                  "  %p = gep @seen, %off\n"
                  "  %sv = load i64, %p, 8\n"
                  "  %m = srem %sv, 1000000007\n"
                  "  %acc0 = mul %acc, 31\n"
                  "  %acc1 = add %acc0, %m\n"
                  "  %acc2 = srem %acc1, 1000000007\n"
                  "  %knext = add %k, 1\n"
                  "  br sumloop\n"
                  "done:\n"
                  "  print \"dedup %d\\n\", %acc\n"
                  "  ret %acc\n"
                  "}\n";
  return S;
}

std::string privateer::scalarCarryIrText(uint64_t N) {
  // acc' = (33*acc + i) mod p, stored to b[i] each iteration.
  std::string S = "global @b " + std::to_string(N * 8) +
                  "\n"
                  "\n"
                  "define void @kernel(i64 %n) {\n"
                  "entry:\n"
                  "  br loop\n"
                  "loop:\n"
                  "  %i = phi [entry: 0], [latch: %inext]\n"
                  "  %acc = phi [entry: 5], [latch: %accn]\n"
                  "  %c = icmp lt, %i, %n\n"
                  "  condbr %c, body, exit\n"
                  "body:\n"
                  "  %t0 = mul %acc, 33\n"
                  "  %t1 = add %t0, %i\n"
                  "  %accn = srem %t1, 1000003\n"
                  "  %off = mul %i, 8\n"
                  "  %p = gep @b, %off\n"
                  "  store %accn, %p, 8\n"
                  "  br latch\n"
                  "latch:\n"
                  "  %inext = add %i, 1\n"
                  "  br loop\n"
                  "exit:\n"
                  "  ret\n"
                  "}\n"
                  "\n"
                  "define i64 @main() {\n"
                  "entry:\n"
                  "  call @kernel(" + std::to_string(N) + ")\n"
                  "  %p = gep @b, " + std::to_string((N - 1) * 8) + "\n"
                  "  %r = load i64, %p, 8\n"
                  "  print \"last %d\\n\", %r\n"
                  "  ret %r\n"
                  "}\n";
  return S;
}
