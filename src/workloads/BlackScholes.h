//===- workloads/BlackScholes.h - PARSEC-style blackscholes -----*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PARSEC-style blackscholes: the hot loop-nest repeats closed-form option
/// pricing over the whole portfolio (PARSEC reruns pricing NUM_RUNS
/// times).  "the inner loop is embarrassingly parallel.  However, the
/// outer loop cannot be parallelized directly because of output
/// dependences on the pricing array, which is allocated in a different
/// function.  Privateer privatizes this array, allowing for parallel
/// execution of the outer loop." (§6.1)
///
/// Here an outer iteration prices the portfolio at a per-run rate shift
/// and overwrites the shared `Prices` array (the output dependence);
/// results accumulate into a per-run summary that is live-out.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_WORKLOADS_BLACKSCHOLES_H
#define PRIVATEER_WORKLOADS_BLACKSCHOLES_H

#include "workloads/Workload.h"

namespace privateer {

class BlackScholesWorkload : public Workload {
public:
  explicit BlackScholesWorkload(Scale S);

  const char *name() const override { return "blackscholes"; }
  PaperRow paperRow() const override {
    return PaperRow{1, 5, "0 B", "4.0 GB", {1, 0, 9, 0, 0}, "Value"};
  }
  HeapSites ourSites() const override { return {2, 0, 6, 0, 0}; }
  const char *extras() const override { return "Value"; }
  DoallOnlyShape doallOnly() const override {
    // "DOALL-only parallelizes a hot inner loop in blackscholes; however,
    // privatization allows the compiler to parallelize a hotter loop.
    // Privatization enables the compiler to parallelize a single
    // invocation, thus reducing spawn/join costs." (§6.1)
    return DoallOnlyShape{true, 0.95, NumRuns};
  }

  uint64_t iterationsPerInvocation() const override { return NumRuns; }

  void setUp() override;
  void tearDown() override;
  void body(uint64_t Run) override;
  void appendLiveOut(std::string &Out) const override;
  std::string referenceDigest() const override;

  /// The closed-form Black-Scholes price; exposed for unit testing against
  /// put-call parity and known values.
  static double priceOption(double Spot, double Strike, double Rate,
                            double Vol, double Time, bool IsCall);

private:
  uint64_t NumOptions;
  uint64_t NumRuns;
  // Read-only portfolio.
  double *Spot = nullptr;
  double *Strike = nullptr;
  double *Rate = nullptr;
  double *Vol = nullptr;
  double *Time = nullptr;
  int *IsCall = nullptr;
  // Private: the reused pricing array and the per-run live-out summary.
  double *Prices = nullptr;
  double *RunSummary = nullptr;
};

} // namespace privateer

#endif // PRIVATEER_WORKLOADS_BLACKSCHOLES_H
