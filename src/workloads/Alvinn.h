//===- workloads/Alvinn.h - SPEC-style 052.alvinn ---------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SPEC-style 052.alvinn: batch backpropagation training of a two-layer
/// network.  "To enable parallelization, Privateer privatizes four
/// stack-allocated arrays ... Additionally, Privateer handles reductions
/// on two global arrays and as well as a scalar local variable." (§6.1)
/// Each training epoch is one parallel invocation over the patterns
/// (Table 3 reports 200 invocations); the weight update between epochs is
/// sequential.
///
/// Weight-delta accumulators use 2^20 fixed-point int64 reductions so the
/// combined result is exactly order-independent — parallel and sequential
/// executions produce bit-identical models (see DESIGN.md substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_WORKLOADS_ALVINN_H
#define PRIVATEER_WORKLOADS_ALVINN_H

#include "workloads/Workload.h"

namespace privateer {

class AlvinnWorkload : public Workload {
public:
  explicit AlvinnWorkload(Scale S);

  const char *name() const override { return "alvinn"; }
  PaperRow paperRow() const override {
    return PaperRow{200, 2600, "8.2 GB", "300 MB", {4, 0, 4, 3, 0}, "-"};
  }
  HeapSites ourSites() const override { return {5, 0, 4, 3, 0}; }
  const char *extras() const override { return "-"; }
  DoallOnlyShape doallOnly() const override {
    // "DOALL-only transforms a deeply nested inner loop.  Performance
    // gains do not outweigh the overhead of dispatching worker threads,
    // and thus DOALL-only experiences slowdown." (§6.1)
    return DoallOnlyShape{true, 0.30, 4000};
  }

  uint64_t invocations() const override { return Epochs; }
  uint64_t iterationsPerInvocation() const override { return Patterns; }

  void setUp() override;
  void tearDown() override;
  void beginInvocation(uint64_t K) override;
  void endInvocation(uint64_t K) override;
  void body(uint64_t P) override;
  void appendLiveOut(std::string &Out) const override;
  std::string referenceDigest() const override;

  static constexpr unsigned kIn = 30;
  static constexpr unsigned kHidden = 16;
  static constexpr unsigned kOut = 8;
  static constexpr int64_t kFixedOne = 1 << 20;

private:
  uint64_t Patterns;
  uint64_t Epochs;

  // Read-only during an invocation (updated sequentially between epochs).
  double *Inputs = nullptr;  // Patterns x kIn.
  double *Targets = nullptr; // Patterns x kOut.
  double *W1 = nullptr;      // kIn x kHidden.
  double *W2 = nullptr;      // kHidden x kOut.
  // Private: the "four stack-allocated arrays" (activations and deltas).
  double *HiddenAct = nullptr;
  double *OutAct = nullptr;
  double *OutDelta = nullptr;
  double *HiddenDelta = nullptr;
  double *EpochError = nullptr; // Private live-out, one per epoch.
  // Reductions: two weight-delta arrays and the scalar error accumulator.
  int64_t *DW1 = nullptr;
  int64_t *DW2 = nullptr;
  int64_t *ErrorAcc = nullptr;
};

} // namespace privateer

#endif // PRIVATEER_WORKLOADS_ALVINN_H
