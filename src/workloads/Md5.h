//===- workloads/Md5.h - From-scratch MD5 -----------------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RFC 1321 MD5, implemented from scratch as the substrate for the
/// Trimaran-style enc-md5 workload.  The context struct is deliberately a
/// plain reusable object so the workload can model the paper's "false
/// dependences on the MD5 state object".
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_WORKLOADS_MD5_H
#define PRIVATEER_WORKLOADS_MD5_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace privateer {

struct Md5Context {
  uint32_t State[4];
  uint64_t BitCount;
  uint8_t Buffer[64];
};

/// Resets \p Ctx to the RFC 1321 initial chaining values.
void md5Init(Md5Context &Ctx);

/// Absorbs \p Len bytes of \p Data.
void md5Update(Md5Context &Ctx, const void *Data, size_t Len);

/// Finalizes into \p Digest16 (16 bytes).  \p Ctx is consumed.
void md5Final(Md5Context &Ctx, uint8_t *Digest16);

/// Convenience: hex digest of a buffer.
std::string md5Hex(const void *Data, size_t Len);

} // namespace privateer

#endif // PRIVATEER_WORKLOADS_MD5_H
