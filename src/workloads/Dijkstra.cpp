//===- workloads/Dijkstra.cpp ---------------------------------------------===//

#include "workloads/Dijkstra.h"

#include "runtime/Privateer.h"
#include "support/Fnv.h"

#include <climits>
#include <cstring>
#include <vector>

using namespace privateer;

namespace {

constexpr int kInfinity = INT_MAX / 2;

/// Deterministic edge weight; 0 on the diagonal (no self edges).
int edgeWeight(unsigned U, unsigned V) {
  if (U == V)
    return 0;
  uint64_t H = U * 2654435761ULL + V * 40503ULL + 12345;
  H ^= H >> 16;
  return static_cast<int>(H % 97) + 1;
}

} // namespace

DijkstraWorkload::DijkstraWorkload(Scale S)
    : NumNodes(S == Scale::Small ? 48 : 128) {}

PaperRow DijkstraWorkload::paperRow() const {
  return PaperRow{1, 5, "84.9 GB", "56.7 GB", {10, 3, 11, 0, 0},
                  "Value, Control, I/O"};
}

void DijkstraWorkload::setUp() {
  // §4.4 Replace Allocation: "Storage for global objects is allocated from
  // the appropriate heap during an initializer which runs before main".
  Q = static_cast<Queue *>(h_alloc(sizeof(Queue), HeapKind::Private));
  Q->Head = Q->Tail = nullptr;
  PathCost = static_cast<int *>(
      h_alloc(NumNodes * sizeof(int), HeapKind::Private));
  TotalCost = static_cast<long *>(
      h_alloc(NumNodes * sizeof(long), HeapKind::Private));
  Adj = static_cast<int *>(
      h_alloc(size_t(NumNodes) * NumNodes * sizeof(int), HeapKind::ReadOnly));
  for (unsigned U = 0; U < NumNodes; ++U)
    for (unsigned V = 0; V < NumNodes; ++V)
      Adj[U * NumNodes + V] = edgeWeight(U, V);
  std::memset(TotalCost, 0, NumNodes * sizeof(long));
}

void DijkstraWorkload::tearDown() {
  h_dealloc(Q, HeapKind::Private);
  h_dealloc(PathCost, HeapKind::Private);
  h_dealloc(TotalCost, HeapKind::Private);
  h_dealloc(Adj, HeapKind::ReadOnly);
  Q = nullptr;
  PathCost = nullptr;
  TotalCost = nullptr;
  Adj = nullptr;
}

void DijkstraWorkload::enqueue(int V) {
  // Figure 2b enqueueQ: nodes come from the short-lived heap.
  auto *N = static_cast<Node *>(h_alloc(sizeof(Node), HeapKind::ShortLived));
  N->Vertex = V;
  N->Next = nullptr;
  private_read(&Q->Tail, sizeof(Node *));
  Node *OldTail = Q->Tail;
  if (OldTail) {
    check_heap(OldTail, HeapKind::ShortLived);
    OldTail->Next = N; // Short-lived store: lifetime-checked, not privacy.
  } else {
    private_write(&Q->Head, sizeof(Node *));
    Q->Head = N;
  }
  private_write(&Q->Tail, sizeof(Node *));
  Q->Tail = N;
}

int DijkstraWorkload::dequeue() {
  private_read(&Q->Head, sizeof(Node *));
  Node *Kill = Q->Head;
  // Figure 2b line 29: separation check on the pointer loaded from Q.
  check_heap(Kill, HeapKind::ShortLived);
  int V = Kill->Vertex;
  private_write(&Q->Head, sizeof(Node *));
  Q->Head = Kill->Next;
  if (!Kill->Next) {
    private_write(&Q->Tail, sizeof(Node *));
    Q->Tail = nullptr;
  }
  h_dealloc(Kill, HeapKind::ShortLived);
  return V;
}

bool DijkstraWorkload::emptyQueue() const {
  private_read(&Q->Head, sizeof(Node *));
  return Q->Head == nullptr;
}

void DijkstraWorkload::body(uint64_t Src) {
  Runtime &Rt = Runtime::get();
  unsigned N = NumNodes;

  // Value prediction (§6.1): "Privateer uses value prediction to speculate
  // that the linked list is empty at the beginning of each iteration."
  // The predicted loads become stores of the predicted value, breaking the
  // cross-iteration flow dependence on Q.
  private_write(&Q->Head, sizeof(Node *));
  Q->Head = nullptr;
  private_write(&Q->Tail, sizeof(Node *));
  Q->Tail = nullptr;

  // Unconditional affine writes coalesce into one ranged check ("other
  // checks are proved successful at compile time and are elided", §4.5).
  private_write(PathCost, N * sizeof(int));
  for (unsigned I = 0; I < N; ++I)
    PathCost[I] = kInfinity;
  private_write(&PathCost[Src], sizeof(int));
  PathCost[Src] = 0;
  enqueue(static_cast<int>(Src));

  while (!emptyQueue()) {
    int V = dequeue();
    private_read(&PathCost[V], sizeof(int));
    int D = PathCost[V];
    // The relaxation scan reads PathCost[0..N) unconditionally: one
    // ranged privacy check; the data-dependent improving writes keep
    // their per-element checks (a ranged write would falsely mark
    // unwritten bytes as defined).
    private_read(PathCost, N * sizeof(int));
    for (unsigned I = 0; I < N; ++I) {
      if (I == static_cast<unsigned>(V))
        continue;
      int NCost = Adj[V * N + I] + D; // Read-only access: check elided.
      if (PathCost[I] > NCost) {
        private_write(&PathCost[I], sizeof(int));
        PathCost[I] = NCost;
        enqueue(static_cast<int>(I));
      }
    }
  }

  private_read(PathCost, N * sizeof(int));
  long Sum = 0;
  for (unsigned I = 0; I < N; ++I)
    Sum += PathCost[I];
  private_write(&TotalCost[Src], sizeof(long));
  TotalCost[Src] = Sum;
  Rt.deferPrintf("src %llu cost %ld\n",
                 static_cast<unsigned long long>(Src), Sum);

  // Figure 2b lines 79-80: validate the value prediction for the next
  // iteration's live-in.
  private_read(&Q->Head, sizeof(Node *));
  speculate(Q->Head == nullptr, "queue not empty at iteration end");
  private_read(&Q->Tail, sizeof(Node *));
  speculate(Q->Tail == nullptr, "queue tail not empty at iteration end");
}

void DijkstraWorkload::appendLiveOut(std::string &Out) const {
  Out.append(reinterpret_cast<const char *>(TotalCost),
             NumNodes * sizeof(long));
}

std::string DijkstraWorkload::referenceDigest() const {
  unsigned N = NumNodes;
  std::vector<int> Cost(N);
  std::vector<long> Total(N);
  std::string Io;
  for (unsigned Src = 0; Src < N; ++Src) {
    for (unsigned I = 0; I < N; ++I)
      Cost[I] = kInfinity;
    Cost[Src] = 0;
    std::vector<int> Queue{static_cast<int>(Src)};
    size_t QHead = 0;
    while (QHead < Queue.size()) {
      int V = Queue[QHead++];
      int D = Cost[V];
      for (unsigned I = 0; I < N; ++I) {
        if (I == static_cast<unsigned>(V))
          continue;
        int NCost = edgeWeight(V, I) + D;
        if (Cost[I] > NCost) {
          Cost[I] = NCost;
          Queue.push_back(static_cast<int>(I));
        }
      }
    }
    long Sum = 0;
    for (unsigned I = 0; I < N; ++I)
      Sum += Cost[I];
    Total[Src] = Sum;
    char Line[64];
    std::snprintf(Line, sizeof(Line), "src %u cost %ld\n", Src, Sum);
    Io += Line;
  }
  std::string LiveOut(reinterpret_cast<const char *>(Total.data()),
                      N * sizeof(long));
  return combineDigest(LiveOut, Io);
}
