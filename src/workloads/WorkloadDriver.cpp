//===- workloads/WorkloadDriver.cpp - Sequential/parallel drivers --------===//

#include "workloads/Workload.h"

#include "support/ErrorHandling.h"
#include "support/Fnv.h"
#include "support/Timing.h"

#include <algorithm>
#include <cstdlib>

using namespace privateer;

namespace {

std::string readAll(std::FILE *F) {
  std::string Out;
  std::rewind(F);
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  return Out;
}

} // namespace

std::string privateer::combineDigest(const std::string &LiveOut,
                                     const std::string &Io) {
  uint64_t H = fnv1a(LiveOut);
  H = fnv1a(Io, H);
  return fnvHex(H);
}

std::string privateer::runWorkloadSequential(Workload &W,
                                             double *ElapsedSec) {
  Runtime &Rt = Runtime::get();
  std::FILE *Io = std::tmpfile();
  if (!Io)
    reportFatalError("tmpfile failed");

  Rt.setSequentialOutput(Io);
  double Start = cpuSeconds();
  for (uint64_t K = 0, E = W.invocations(); K < E; ++K) {
    W.beginInvocation(K);
    Rt.runSequential(0, W.iterationsPerInvocation(),
                     [&](uint64_t I) { W.body(I); });
    W.endInvocation(K);
  }
  if (ElapsedSec)
    *ElapsedSec = cpuSeconds() - Start;
  Rt.setSequentialOutput(nullptr);

  std::string LiveOut;
  W.appendLiveOut(LiveOut);
  std::string IoText = readAll(Io);
  std::fclose(Io);
  return combineDigest(LiveOut, IoText);
}

std::string privateer::runWorkloadParallel(Workload &W,
                                           const ParallelOptions &Options,
                                           InvocationStats *Total) {
  Runtime &Rt = Runtime::get();
  std::FILE *Io = std::tmpfile();
  if (!Io)
    reportFatalError("tmpfile failed");
  ParallelOptions Opt = Options;
  Opt.Out = Io;
  // Environment hook so workload harnesses (bench_fig8, CI sweeps) can be
  // traced without plumbing an option through every call site; an explicit
  // TracePath set by the caller wins.
  if (Opt.TracePath.empty())
    if (const char *Env = std::getenv("PRIVATEER_TRACE"))
      Opt.TracePath = Env;

  Rt.setSequentialOutput(Io);
  for (uint64_t K = 0, E = W.invocations(); K < E; ++K) {
    W.beginInvocation(K);
    InvocationStats S =
        Rt.runParallel(W.iterationsPerInvocation(), Opt,
                       [&](uint64_t I) { W.body(I); });
    W.endInvocation(K);
    if (Total) {
      Total->Iterations += S.Iterations;
      Total->Checkpoints += S.Checkpoints;
      Total->Misspecs += S.Misspecs;
      Total->RecoveredIterations += S.RecoveredIterations;
      Total->Epochs += S.Epochs;
      Total->PrivateReadCalls += S.PrivateReadCalls;
      Total->PrivateReadBytes += S.PrivateReadBytes;
      Total->PrivateWriteCalls += S.PrivateWriteCalls;
      Total->PrivateWriteBytes += S.PrivateWriteBytes;
      Total->SeparationChecks += S.SeparationChecks;
      Total->CheckpointDirtyChunks += S.CheckpointDirtyChunks;
      Total->CheckpointBytesScanned += S.CheckpointBytesScanned;
      Total->CheckpointBytesSkipped += S.CheckpointBytesSkipped;
      Total->PrivateFootprintBytes =
          std::max(Total->PrivateFootprintBytes, S.PrivateFootprintBytes);
      Total->UsefulSec += S.UsefulSec;
      Total->PrivateReadSec += S.PrivateReadSec;
      Total->PrivateWriteSec += S.PrivateWriteSec;
      Total->CheckpointSec += S.CheckpointSec;
      Total->WallSec += S.WallSec;
      if (Total->FirstMisspecReason.empty())
        Total->FirstMisspecReason = S.FirstMisspecReason;
    }
  }
  Rt.setSequentialOutput(nullptr);

  std::string LiveOut;
  W.appendLiveOut(LiveOut);
  std::string IoText = readAll(Io);
  std::fclose(Io);
  return combineDigest(LiveOut, IoText);
}
