//===- workloads/Swaptions.h - PARSEC-style swaptions -----------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PARSEC-style swaptions: each hot-loop iteration prices one swaption
/// with an HJM-style Monte-Carlo simulation.  "It parallelizes the hot
/// loop in the function worker by privatizing 17 memory objects, 15 of
/// which are short-lived.  The short-lived objects include a large number
/// of vectors and matrices (arrays of pointers to row vectors) which are
/// dynamically allocated at various points within worker and its callees,
/// and passed around indirectly through other data structures.  The
/// LRPD-family techniques are inapplicable to this benchmark because of
/// the linked matrix data structures." (§6.1)
///
/// The matrices here are genuine arrays-of-row-pointers allocated from the
/// short-lived heap, so separation checks chase real pointer indirection.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_WORKLOADS_SWAPTIONS_H
#define PRIVATEER_WORKLOADS_SWAPTIONS_H

#include "workloads/Workload.h"

namespace privateer {

class SwaptionsWorkload : public Workload {
public:
  explicit SwaptionsWorkload(Scale S);

  const char *name() const override { return "swaptions"; }
  PaperRow paperRow() const override {
    return PaperRow{1, 17, "288 KB", "169 KB", {2, 15, 5, 0, 0},
                    "Value, Control"};
  }
  HeapSites ourSites() const override { return {2, 4, 4, 0, 0}; }
  const char *extras() const override { return "Value, Control"; }
  DoallOnlyShape doallOnly() const override {
    // "The hot loop in swaptions is parallelizable but could not be proved
    // parallelizable by our static analysis" (§6.1): DOALL-only gets 1x.
    return DoallOnlyShape{false, 0.0, 0};
  }

  uint64_t iterationsPerInvocation() const override { return NumSwaptions; }

  void setUp() override;
  void tearDown() override;
  void body(uint64_t I) override;
  void appendLiveOut(std::string &Out) const override;
  std::string referenceDigest() const override;

private:
  double priceOne(uint64_t I) const;

  uint64_t NumSwaptions;
  unsigned Trials;
  static constexpr unsigned kSteps = 12;
  static constexpr unsigned kTenors = 12;

  // Read-only swaption parameters.
  double *Strike = nullptr;
  double *Maturity = nullptr;
  double *InitialRate = nullptr;
  double *Volatility = nullptr;
  // Private: per-iteration scratch descriptor (reused) and results.
  struct SimDescriptor {
    double Strike;
    double Maturity;
    double Rate;
    double Vol;
    unsigned Trials;
  };
  SimDescriptor *Desc = nullptr;
  double *Results = nullptr;
};

} // namespace privateer

#endif // PRIVATEER_WORKLOADS_SWAPTIONS_H
