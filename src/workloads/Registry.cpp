//===- workloads/Registry.cpp - Workload factory --------------------------===//

#include "workloads/Alvinn.h"
#include "workloads/BlackScholes.h"
#include "workloads/Commutative.h"
#include "workloads/Dijkstra.h"
#include "workloads/EncMd5.h"
#include "workloads/Swaptions.h"

using namespace privateer;

std::vector<std::unique_ptr<Workload>>
privateer::allWorkloads(Workload::Scale S) {
  std::vector<std::unique_ptr<Workload>> Out;
  Out.push_back(std::make_unique<AlvinnWorkload>(S));
  Out.push_back(std::make_unique<DijkstraWorkload>(S));
  Out.push_back(std::make_unique<BlackScholesWorkload>(S));
  Out.push_back(std::make_unique<SwaptionsWorkload>(S));
  Out.push_back(std::make_unique<EncMd5Workload>(S));
  return Out;
}

std::vector<std::unique_ptr<Workload>>
privateer::commutativeWorkloads(Workload::Scale S) {
  std::vector<std::unique_ptr<Workload>> Out;
  Out.push_back(std::make_unique<CommutativeWorkload>(
      CommutativeWorkload::Kind::Histogram, S));
  Out.push_back(std::make_unique<CommutativeWorkload>(
      CommutativeWorkload::Kind::Degree, S));
  Out.push_back(std::make_unique<CommutativeWorkload>(
      CommutativeWorkload::Kind::Dedup, S));
  return Out;
}

std::unique_ptr<Workload> privateer::makeWorkload(const std::string &Name,
                                                  Workload::Scale S) {
  if (Name == "alvinn" || Name == "052.alvinn")
    return std::make_unique<AlvinnWorkload>(S);
  if (Name == "dijkstra")
    return std::make_unique<DijkstraWorkload>(S);
  if (Name == "blackscholes")
    return std::make_unique<BlackScholesWorkload>(S);
  if (Name == "swaptions")
    return std::make_unique<SwaptionsWorkload>(S);
  if (Name == "enc-md5" || Name == "md5")
    return std::make_unique<EncMd5Workload>(S);
  if (Name == "histogram")
    return std::make_unique<CommutativeWorkload>(
        CommutativeWorkload::Kind::Histogram, S);
  if (Name == "degree-count" || Name == "degree")
    return std::make_unique<CommutativeWorkload>(
        CommutativeWorkload::Kind::Degree, S);
  if (Name == "dedup")
    return std::make_unique<CommutativeWorkload>(
        CommutativeWorkload::Kind::Dedup, S);
  return nullptr;
}
