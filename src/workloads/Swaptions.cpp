//===- workloads/Swaptions.cpp --------------------------------------------===//

#include "workloads/Swaptions.h"

#include "runtime/Privateer.h"
#include "support/DeterministicRng.h"

#include <cmath>
#include <vector>

using namespace privateer;

namespace {

/// One HJM-lite Monte-Carlo trial: evolves a forward curve stored in an
/// array-of-row-pointers matrix and values a payer swaption payoff.
/// Templated over the matrix representation so the privatized body (tagged
/// short-lived matrices) and the plain reference share the exact
/// floating-point sequence.
template <typename MatrixT>
double simulateTrial(MatrixT &Fwd, unsigned Steps, unsigned Tenors,
                     double Rate, double Vol, double Maturity, double Strike,
                     DeterministicRng &Rng) {
  double Dt = Maturity / Steps;
  for (unsigned T = 0; T < Tenors; ++T)
    Fwd[0][T] = Rate + 0.001 * T;
  for (unsigned S = 1; S < Steps; ++S) {
    double Shock = Rng.nextGaussian() * Vol * std::sqrt(Dt);
    for (unsigned T = 0; T < Tenors; ++T) {
      double Drift = 0.5 * Vol * Vol * Dt * (T + 1) / Tenors;
      Fwd[S][T] = Fwd[S - 1][T] + Drift + Shock * (1.0 - 0.02 * T);
    }
  }
  // Discount factor along the realized short rate path.
  double Discount = 0.0;
  for (unsigned S = 0; S < Steps; ++S)
    Discount += Fwd[S][0] * Dt;
  // Par-swap-rate proxy at maturity.
  double Swap = 0.0;
  for (unsigned T = 0; T < Tenors; ++T)
    Swap += Fwd[Steps - 1][T];
  Swap /= Tenors;
  double Payoff = Swap > Strike ? (Swap - Strike) : 0.0;
  return Payoff * std::exp(-Discount);
}

} // namespace

SwaptionsWorkload::SwaptionsWorkload(Scale S)
    : NumSwaptions(S == Scale::Small ? 32 : 128),
      Trials(S == Scale::Small ? 16 : 64) {}

void SwaptionsWorkload::setUp() {
  Strike = static_cast<double *>(
      h_alloc(NumSwaptions * sizeof(double), HeapKind::ReadOnly));
  Maturity = static_cast<double *>(
      h_alloc(NumSwaptions * sizeof(double), HeapKind::ReadOnly));
  InitialRate = static_cast<double *>(
      h_alloc(NumSwaptions * sizeof(double), HeapKind::ReadOnly));
  Volatility = static_cast<double *>(
      h_alloc(NumSwaptions * sizeof(double), HeapKind::ReadOnly));
  Desc = static_cast<SimDescriptor *>(
      h_alloc(sizeof(SimDescriptor), HeapKind::Private));
  Results = static_cast<double *>(
      h_alloc(NumSwaptions * sizeof(double), HeapKind::Private));

  DeterministicRng Rng(0x5a9);
  for (uint64_t I = 0; I < NumSwaptions; ++I) {
    Strike[I] = Rng.nextDouble(0.02, 0.08);
    Maturity[I] = Rng.nextDouble(1.0, 10.0);
    InitialRate[I] = Rng.nextDouble(0.01, 0.06);
    Volatility[I] = Rng.nextDouble(0.05, 0.30);
    Results[I] = 0.0;
  }
}

void SwaptionsWorkload::tearDown() {
  h_dealloc(Strike, HeapKind::ReadOnly);
  h_dealloc(Maturity, HeapKind::ReadOnly);
  h_dealloc(InitialRate, HeapKind::ReadOnly);
  h_dealloc(Volatility, HeapKind::ReadOnly);
  h_dealloc(Desc, HeapKind::Private);
  h_dealloc(Results, HeapKind::Private);
  Strike = Maturity = InitialRate = Volatility = Results = nullptr;
  Desc = nullptr;
}

void SwaptionsWorkload::body(uint64_t I) {
  // The reused descriptor object models PARSEC's per-swaption parameter
  // struct: written then read every iteration (a classic false dep).
  private_write(Desc, sizeof(SimDescriptor));
  Desc->Strike = Strike[I];
  Desc->Maturity = Maturity[I];
  Desc->Rate = InitialRate[I];
  Desc->Vol = Volatility[I];
  Desc->Trials = Trials;
  private_read(Desc, sizeof(SimDescriptor));
  SimDescriptor D = *Desc;

  // "arrays of pointers to row vectors ... dynamically allocated":
  // a linked matrix from the short-lived heap.
  auto **Fwd = static_cast<double **>(
      h_alloc(kSteps * sizeof(double *), HeapKind::ShortLived));
  for (unsigned S = 0; S < kSteps; ++S)
    Fwd[S] = static_cast<double *>(
        h_alloc(kTenors * sizeof(double), HeapKind::ShortLived));
  auto *Payoffs = static_cast<double *>(
      h_alloc(D.Trials * sizeof(double), HeapKind::ShortLived));

  DeterministicRng Rng(0x5a9000 + I);
  double Sum = 0.0;
  for (unsigned T = 0; T < D.Trials; ++T) {
    check_heap(Fwd, HeapKind::ShortLived);
    check_heap(Fwd[0], HeapKind::ShortLived);
    Payoffs[T] = simulateTrial(Fwd, kSteps, kTenors, D.Rate, D.Vol,
                               D.Maturity, D.Strike, Rng);
    Sum += Payoffs[T];
  }

  private_write(&Results[I], sizeof(double));
  Results[I] = Sum / D.Trials;

  for (unsigned S = 0; S < kSteps; ++S)
    h_dealloc(Fwd[S], HeapKind::ShortLived);
  h_dealloc(Payoffs, HeapKind::ShortLived);
  h_dealloc(Fwd, HeapKind::ShortLived);
}

void SwaptionsWorkload::appendLiveOut(std::string &Out) const {
  Out.append(reinterpret_cast<const char *>(Results),
             NumSwaptions * sizeof(double));
}

std::string SwaptionsWorkload::referenceDigest() const {
  std::vector<double> Ref(NumSwaptions);
  std::vector<std::vector<double>> Fwd(kSteps,
                                       std::vector<double>(kTenors));
  for (uint64_t I = 0; I < NumSwaptions; ++I) {
    DeterministicRng Rng(0x5a9000 + I);
    double Sum = 0.0;
    for (unsigned T = 0; T < Trials; ++T)
      Sum += simulateTrial(Fwd, kSteps, kTenors, InitialRate[I],
                           Volatility[I], Maturity[I], Strike[I], Rng);
    Ref[I] = Sum / Trials;
  }
  std::string LiveOut(reinterpret_cast<const char *>(Ref.data()),
                      NumSwaptions * sizeof(double));
  return combineDigest(LiveOut, "");
}
