//===- workloads/Md5.cpp - RFC 1321 MD5 -----------------------------------===//

#include "workloads/Md5.h"

#include <cstring>

using namespace privateer;

namespace {

inline uint32_t rotl(uint32_t X, int S) { return (X << S) | (X >> (32 - S)); }

// Per-round shift amounts and sine-derived constants (RFC 1321).
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

constexpr uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

void transform(uint32_t State[4], const uint8_t Block[64]) {
  uint32_t M[16];
  for (int I = 0; I < 16; ++I)
    M[I] = static_cast<uint32_t>(Block[I * 4]) |
           (static_cast<uint32_t>(Block[I * 4 + 1]) << 8) |
           (static_cast<uint32_t>(Block[I * 4 + 2]) << 16) |
           (static_cast<uint32_t>(Block[I * 4 + 3]) << 24);

  uint32_t A = State[0], B = State[1], C = State[2], D = State[3];
  for (int I = 0; I < 64; ++I) {
    uint32_t F;
    int G;
    if (I < 16) {
      F = (B & C) | (~B & D);
      G = I;
    } else if (I < 32) {
      F = (D & B) | (~D & C);
      G = (5 * I + 1) & 15;
    } else if (I < 48) {
      F = B ^ C ^ D;
      G = (3 * I + 5) & 15;
    } else {
      F = C ^ (B | ~D);
      G = (7 * I) & 15;
    }
    uint32_t Tmp = D;
    D = C;
    C = B;
    B = B + rotl(A + F + kSine[I] + M[G], kShift[I]);
    A = Tmp;
  }
  State[0] += A;
  State[1] += B;
  State[2] += C;
  State[3] += D;
}

} // namespace

void privateer::md5Init(Md5Context &Ctx) {
  Ctx.State[0] = 0x67452301;
  Ctx.State[1] = 0xefcdab89;
  Ctx.State[2] = 0x98badcfe;
  Ctx.State[3] = 0x10325476;
  Ctx.BitCount = 0;
}

void privateer::md5Update(Md5Context &Ctx, const void *Data, size_t Len) {
  const auto *P = static_cast<const uint8_t *>(Data);
  size_t Have = (Ctx.BitCount >> 3) & 63;
  Ctx.BitCount += static_cast<uint64_t>(Len) << 3;

  if (Have) {
    size_t Need = 64 - Have;
    size_t Take = Len < Need ? Len : Need;
    std::memcpy(Ctx.Buffer + Have, P, Take);
    P += Take;
    Len -= Take;
    if (Have + Take < 64)
      return;
    transform(Ctx.State, Ctx.Buffer);
  }
  while (Len >= 64) {
    transform(Ctx.State, P);
    P += 64;
    Len -= 64;
  }
  if (Len)
    std::memcpy(Ctx.Buffer, P, Len);
}

void privateer::md5Final(Md5Context &Ctx, uint8_t *Digest16) {
  uint64_t Bits = Ctx.BitCount;
  uint8_t LenBytes[8];
  for (int I = 0; I < 8; ++I)
    LenBytes[I] = static_cast<uint8_t>(Bits >> (8 * I));

  static const uint8_t Pad[64] = {0x80};
  size_t Have = (Ctx.BitCount >> 3) & 63;
  size_t PadLen = (Have < 56) ? (56 - Have) : (120 - Have);
  md5Update(Ctx, Pad, PadLen);
  md5Update(Ctx, LenBytes, 8);

  for (int I = 0; I < 4; ++I) {
    Digest16[I * 4] = static_cast<uint8_t>(Ctx.State[I]);
    Digest16[I * 4 + 1] = static_cast<uint8_t>(Ctx.State[I] >> 8);
    Digest16[I * 4 + 2] = static_cast<uint8_t>(Ctx.State[I] >> 16);
    Digest16[I * 4 + 3] = static_cast<uint8_t>(Ctx.State[I] >> 24);
  }
}

std::string privateer::md5Hex(const void *Data, size_t Len) {
  Md5Context Ctx;
  md5Init(Ctx);
  md5Update(Ctx, Data, Len);
  uint8_t Digest[16];
  md5Final(Ctx, Digest);
  static const char Hex[] = "0123456789abcdef";
  std::string Out(32, '0');
  for (int I = 0; I < 16; ++I) {
    Out[I * 2] = Hex[Digest[I] >> 4];
    Out[I * 2 + 1] = Hex[Digest[I] & 15];
  }
  return Out;
}
