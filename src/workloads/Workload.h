//===- workloads/Workload.h - Evaluation program interface ------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five programs of the paper's evaluation (Table 3), reimplemented
/// from scratch.  Each workload exists in two semantically identical forms:
///
///  - `body(i)`: the *speculatively privatized* iteration, written against
///    the runtime API exactly as the Privateer compiler would emit it
///    (h_alloc with heap kinds, check_heap / private_read / private_write,
///    value-prediction sites, deferred I/O) — the Figure 2b form; and
///  - `referenceDigest()`: an independent plain-C++ computation of the
///    same outputs, used to validate both sequential and parallel runs.
///
/// A workload may span several parallel invocations (alvinn runs one per
/// training epoch) with sequential work between them.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_WORKLOADS_WORKLOAD_H
#define PRIVATEER_WORKLOADS_WORKLOAD_H

#include "runtime/Runtime.h"

#include <memory>
#include <string>
#include <vector>

namespace privateer {

/// Static allocation-site counts per logical heap (Table 3 columns, plus
/// the commutative heap this reproduction adds beyond the paper's five).
struct HeapSites {
  unsigned Private = 0;
  unsigned ShortLived = 0;
  unsigned ReadOnly = 0;
  unsigned Redux = 0;
  unsigned Unrestricted = 0;
  unsigned Commutative = 0;
};

/// The paper's Table 3 row for side-by-side reporting.
struct PaperRow {
  uint64_t Invocations;
  uint64_t Checkpoints;
  const char *PrivR;
  const char *PrivW;
  HeapSites Sites;
  const char *Extras;
};

/// How the non-speculative DOALL baseline (Figure 7) treats this program.
struct DoallOnlyShape {
  /// Whether plain DOALL finds any loop at all.
  bool Parallelizable = false;
  /// Fraction of total work inside the loop DOALL-only parallelizes (the
  /// rest stays sequential; Privateer parallelizes a hotter loop).
  double ParallelFraction = 0.0;
  /// Parallel-region invocations DOALL-only pays spawn/join for (e.g. a
  /// deeply nested inner loop spawns once per outer iteration).
  uint64_t Invocations = 0;
};

class Workload {
public:
  /// Problem sizes: Small keeps unit tests fast; Full drives benches.
  enum class Scale { Small, Full };

  virtual ~Workload() = default;

  virtual const char *name() const = 0;
  virtual PaperRow paperRow() const = 0;
  virtual HeapSites ourSites() const = 0;
  virtual const char *extras() const = 0;
  virtual DoallOnlyShape doallOnly() const = 0;
  virtual RuntimeConfig runtimeConfig() const { return RuntimeConfig(); }

  virtual uint64_t invocations() const { return 1; }
  virtual uint64_t iterationsPerInvocation() const = 0;

  /// Allocates and initializes all program state from the logical heaps
  /// (the runtime must already be initialized).
  virtual void setUp() = 0;
  virtual void tearDown() = 0;

  /// Sequential work before/after parallel invocation \p K (e.g. alvinn's
  /// weight update between epochs).
  virtual void beginInvocation(uint64_t K) { (void)K; }
  virtual void endInvocation(uint64_t K) { (void)K; }

  /// One privatized iteration of the hot loop.
  virtual void body(uint64_t I) = 0;

  /// Serializes the live-out state (results the program keeps in memory).
  virtual void appendLiveOut(std::string &Out) const = 0;

  /// Digest of live-outs plus deferred output computed by an independent
  /// plain-C++ implementation of the same program.
  virtual std::string referenceDigest() const = 0;
};

/// Drives all invocations of \p W sequentially (checks become no-ops);
/// deferred output goes to \p Io (may be nullptr for a temp file).
/// Returns the combined live-out + output digest.
std::string runWorkloadSequential(Workload &W, double *ElapsedSec = nullptr);

/// Drives all invocations speculatively in parallel; accumulates stats
/// across invocations into \p Total when non-null.
std::string runWorkloadParallel(Workload &W, const ParallelOptions &Options,
                                InvocationStats *Total = nullptr);

/// Combines a live-out blob and the deferred-output text the same way
/// referenceDigest() must.
std::string combineDigest(const std::string &LiveOut, const std::string &Io);

/// All five paper workloads at the given scale.
std::vector<std::unique_ptr<Workload>> allWorkloads(Workload::Scale S);

/// The irregular commutative-update workloads (histogram, degree-count,
/// dedup) — beyond the paper's evaluation set, so kept out of
/// allWorkloads() and the paper-figure geomeans.
std::vector<std::unique_ptr<Workload>> commutativeWorkloads(Workload::Scale S);

/// One workload by name ("dijkstra", "blackscholes", "swaptions",
/// "alvinn", "enc-md5", "histogram", "degree-count", "dedup"); null if
/// unknown.
std::unique_ptr<Workload> makeWorkload(const std::string &Name,
                                       Workload::Scale S);

} // namespace privateer

#endif // PRIVATEER_WORKLOADS_WORKLOAD_H
