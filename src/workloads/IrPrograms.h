//===- workloads/IrPrograms.h - IR programs for the pipeline ----*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual IR programs exercising the fully automatic compiler pipeline.
/// `dijkstraIrText` is the paper's Figure 2a, written in this repo's IR:
/// a hot loop whose iterations reuse a global linked-list work queue and a
/// global pathcost array — unparallelizable without speculative
/// privatization, value prediction, and short-lived object speculation.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_WORKLOADS_IRPROGRAMS_H
#define PRIVATEER_WORKLOADS_IRPROGRAMS_H

#include <cstdint>
#include <string>

namespace privateer {

/// Figure 2a in IR form with \p NumNodes graph nodes.  @main fills the
/// adjacency matrix, then runs the hot loop over all sources; each
/// iteration prints "src <s> cost <sum>".
std::string dijkstraIrText(unsigned NumNodes);

/// A small reduction kernel: sums f(i) for i in [0, N) into a global
/// accumulator via a load-add-store — reduction-privatizable.
std::string reductionSumIrText(uint64_t N);

/// A loop with a genuine cross-iteration recurrence through memory (not
/// privatizable); classification must mark the object unrestricted.
std::string recurrenceIrText(uint64_t N);

/// A blackscholes-flavored floating-point kernel: per-iteration pricing
/// of one instrument from read-only f64 parameter arrays into a private
/// result array.  Exercises f64 arithmetic, conversions, and compares
/// through the whole pipeline.
std::string fpPricingIrText(uint64_t N);

/// An array recurrence a[i] = f(a[i - Dist], i) over N elements, with the
/// first Dist elements seeded before the loop.  Not DOALL-parallelizable;
/// the DOACROSS pre-pass proves the fixed distance and forwards the
/// carried values through token rings.  Requires 1 <= Dist < N.
std::string arrayRecurrenceIrText(uint64_t N, uint64_t Dist);

/// A loop-carried scalar recurrence acc = f(acc, i) whose running value
/// is stored to b[i] each iteration.  The extra header phi defeats plain
/// DOALL readiness; DOACROSS rewrites it into distance-one token
/// forwarding.
std::string scalarCarryIrText(uint64_t N);

/// Irregular histogram: each iteration hashes its index for \p Rounds
/// mixing steps, bumps a data-dependent counter in @hist (load-add-store
/// through a recomputed gep), and folds a min into the same bucket of
/// @hmin (load-icmp-select-store).  The recomputed store pointers defeat
/// the reduction recognizer; the commutative recognizer claims both
/// objects (Add + Min clusters) and classification assigns the
/// commutative heap.  The key stream drifts: the first Buckets iterations
/// touch distinct buckets, the rest hammer a hot quarter of the table.
/// @train profiles only the warmup, so under the five-heap fallback the
/// arrays classify private and the drift surfaces as privacy
/// misspeculation — the A/B arm of the commutative bench gate.
std::string histogramIrText(uint64_t N, uint64_t Buckets, uint64_t Rounds);

/// Graph degree counting: edge endpoints come from read-only @src/@dst
/// arrays; the hot loop bumps @deg at both endpoints (two Add clusters on
/// one object).  The first Nodes/2 edges pair distinct endpoints (the
/// warmup @train profiles); later edges concentrate on a hot quarter of
/// the nodes, so under the five-heap fallback privacy validation
/// misspeculates on the hub collisions.  Requires an even \p Nodes.
std::string degreeCountIrText(uint64_t Nodes, uint64_t Edges,
                              uint64_t Rounds);

/// Duplicate detection via a shared bitmap: each iteration ORs one bit
/// into a data-dependent word of @seen (load-or-store).  The bitmap is
/// summed sequentially after the loop, so the hot loop's only accesses to
/// @seen are commutative clusters.
std::string dedupIrText(uint64_t N, uint64_t Words, uint64_t Rounds);

} // namespace privateer

#endif // PRIVATEER_WORKLOADS_IRPROGRAMS_H
