//===- support/Statistics.cpp ---------------------------------------------===//

#include "support/Statistics.h"

#include <cstdio>

using namespace privateer;

StatisticRegistry &StatisticRegistry::instance() {
  static StatisticRegistry Registry;
  return Registry;
}

uint64_t &StatisticRegistry::counter(const std::string &Group,
                                     const std::string &Name) {
  return Counters[{Group, Name}];
}

uint64_t StatisticRegistry::get(const std::string &Group,
                                const std::string &Name) const {
  auto It = Counters.find({Group, Name});
  return It == Counters.end() ? 0 : It->second;
}

double &StatisticRegistry::real(const std::string &Group,
                                const std::string &Name) {
  return RealCounters[{Group, Name}];
}

double StatisticRegistry::getReal(const std::string &Group,
                                  const std::string &Name) const {
  auto It = RealCounters.find({Group, Name});
  return It == RealCounters.end() ? 0.0 : It->second;
}

void StatisticRegistry::reset() {
  Counters.clear();
  RealCounters.clear();
}

std::string StatisticRegistry::toJson() const {
  // Counter names are straight identifiers, but escape defensively so a
  // future name cannot corrupt the document.
  auto Escape = [](const std::string &S) {
    std::string Out;
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out.push_back('\\');
      if (static_cast<unsigned char>(C) >= 0x20)
        Out.push_back(C);
    }
    return Out;
  };

  // group -> "name": value fragments, integer and real planes merged.
  std::map<std::string, std::string> Groups;
  auto Add = [&](const std::string &Group, const std::string &Fragment) {
    std::string &G = Groups[Group];
    if (!G.empty())
      G += ", ";
    G += Fragment;
  };
  for (const auto &[Key, Value] : Counters)
    Add(Key.first,
        "\"" + Escape(Key.second) + "\": " + std::to_string(Value));
  for (const auto &[Key, Value] : RealCounters) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.9g", Value);
    Add(Key.first, "\"" + Escape(Key.second) + "\": " + Buf);
  }

  std::string Out = "{";
  bool FirstGroup = true;
  for (const auto &[Group, Body] : Groups) {
    if (!FirstGroup)
      Out += ", ";
    FirstGroup = false;
    Out += "\"" + Escape(Group) + "\": {" + Body + "}";
  }
  Out += "}";
  return Out;
}
