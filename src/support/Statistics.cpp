//===- support/Statistics.cpp ---------------------------------------------===//

#include "support/Statistics.h"

using namespace privateer;

StatisticRegistry &StatisticRegistry::instance() {
  static StatisticRegistry Registry;
  return Registry;
}

uint64_t &StatisticRegistry::counter(const std::string &Group,
                                     const std::string &Name) {
  return Counters[{Group, Name}];
}

uint64_t StatisticRegistry::get(const std::string &Group,
                                const std::string &Name) const {
  auto It = Counters.find({Group, Name});
  return It == Counters.end() ? 0 : It->second;
}

double &StatisticRegistry::real(const std::string &Group,
                                const std::string &Name) {
  return RealCounters[{Group, Name}];
}

double StatisticRegistry::getReal(const std::string &Group,
                                  const std::string &Name) const {
  auto It = RealCounters.find({Group, Name});
  return It == RealCounters.end() ? 0.0 : It->second;
}

void StatisticRegistry::reset() {
  Counters.clear();
  RealCounters.clear();
}
