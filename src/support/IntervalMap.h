//===- support/IntervalMap.h - Address-range to value map -------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A map from half-open intervals [Lo, Hi) of unsigned 64-bit keys to values.
///
/// The pointer-to-object profiler (paper §4.1) maintains "an interval map
/// from ranges of memory addresses to the name of the memory object which
/// occupies that space".  Insertion of an interval evicts any previously
/// inserted intervals it overlaps (a fresh allocation replaces whatever
/// stale mapping covered those addresses), which matches allocator reuse of
/// freed address ranges.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_SUPPORT_INTERVALMAP_H
#define PRIVATEER_SUPPORT_INTERVALMAP_H

#include <cassert>
#include <cstdint>
#include <map>
#include <optional>

namespace privateer {

template <typename ValueT> class IntervalMap {
public:
  struct Interval {
    uint64_t Lo; ///< Inclusive lower bound.
    uint64_t Hi; ///< Exclusive upper bound.
    ValueT Value;
  };

  /// Maps [Lo, Hi) to \p V, removing or trimming any overlapping intervals.
  void insert(uint64_t Lo, uint64_t Hi, ValueT V) {
    assert(Lo < Hi && "empty or inverted interval");
    erase(Lo, Hi);
    Map.emplace(Lo, Entry{Hi, std::move(V)});
  }

  /// Removes all mappings that intersect [Lo, Hi), trimming intervals that
  /// only partially overlap.
  void erase(uint64_t Lo, uint64_t Hi) {
    assert(Lo < Hi && "empty or inverted interval");
    // Find the first interval whose start is >= Lo; the one before it may
    // still overlap from the left.
    auto It = Map.lower_bound(Lo);
    if (It != Map.begin()) {
      auto Prev = std::prev(It);
      if (Prev->second.Hi > Lo) {
        Entry Old = Prev->second;
        // Keep the left remainder [Prev.Lo, Lo).
        Prev->second.Hi = Lo;
        // Keep the right remainder [Hi, Old.Hi), if any.
        if (Old.Hi > Hi)
          Map.emplace(Hi, Entry{Old.Hi, Old.Value});
      }
    }
    while (It != Map.end() && It->first < Hi) {
      if (It->second.Hi > Hi) {
        // Trim from the left: re-key the tail at Hi.
        Map.emplace(Hi, Entry{It->second.Hi, std::move(It->second.Value)});
      }
      It = Map.erase(It);
    }
  }

  /// Returns the value whose interval contains \p Key, if any.
  std::optional<ValueT> lookup(uint64_t Key) const {
    auto It = Map.upper_bound(Key);
    if (It == Map.begin())
      return std::nullopt;
    --It;
    if (Key < It->second.Hi)
      return It->second.Value;
    return std::nullopt;
  }

  /// Returns the full interval containing \p Key, if any.
  std::optional<Interval> lookupInterval(uint64_t Key) const {
    auto It = Map.upper_bound(Key);
    if (It == Map.begin())
      return std::nullopt;
    --It;
    if (Key < It->second.Hi)
      return Interval{It->first, It->second.Hi, It->second.Value};
    return std::nullopt;
  }

  size_t size() const { return Map.size(); }
  bool empty() const { return Map.empty(); }
  void clear() { Map.clear(); }

  /// Visits every interval in increasing key order.
  template <typename Fn> void forEach(Fn Visit) const {
    for (const auto &[Lo, E] : Map)
      Visit(Lo, E.Hi, E.Value);
  }

private:
  struct Entry {
    uint64_t Hi;
    ValueT Value;
  };
  std::map<uint64_t, Entry> Map;
};

} // namespace privateer

#endif // PRIVATEER_SUPPORT_INTERVALMAP_H
