//===- support/Timing.h - Wall and CPU clocks -------------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Clock helpers used by the runtime's overhead accounting (paper Figure 8
/// categories) and by perfmodel calibration.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_SUPPORT_TIMING_H
#define PRIVATEER_SUPPORT_TIMING_H

#include <cstdint>
#include <cstdlib>
#include <ctime>

namespace privateer {

inline double wallSeconds() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<double>(Ts.tv_sec) + 1e-9 * Ts.tv_nsec;
}

/// Monotonic clock as integer nanoseconds; async-signal-safe and cheap
/// enough for per-iteration worker heartbeats.
inline uint64_t monotonicNanos() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1000000000ULL +
         static_cast<uint64_t>(Ts.tv_nsec);
}

/// CPU time consumed by this thread/process; meaningful even when many
/// worker processes timeshare a single core.
inline double cpuSeconds() {
  timespec Ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &Ts);
  return static_cast<double>(Ts.tv_sec) + 1e-9 * Ts.tv_nsec;
}

/// Multiplier for wall-clock timeouts (watchdog stalls, test deadlines),
/// read once from PRIVATEER_TIMEOUT_SCALE.  Sanitizer builds slow the
/// runtime several-fold, so CI exports e.g. PRIVATEER_TIMEOUT_SCALE=4
/// there; anything unset, unparsable, or non-positive means 1.
inline double timeoutScale() {
  static const double Scale = [] {
    const char *Env = std::getenv("PRIVATEER_TIMEOUT_SCALE");
    if (!Env)
      return 1.0;
    double V = std::atof(Env);
    return V > 0.0 ? V : 1.0;
  }();
  return Scale;
}

/// RAII accumulation of CPU time into a category counter.
class CategoryTimer {
public:
  explicit CategoryTimer(double &Accumulator)
      : Acc(Accumulator), Start(cpuSeconds()) {}
  ~CategoryTimer() { Acc += cpuSeconds() - Start; }
  CategoryTimer(const CategoryTimer &) = delete;
  CategoryTimer &operator=(const CategoryTimer &) = delete;

private:
  double &Acc;
  double Start;
};

} // namespace privateer

#endif // PRIVATEER_SUPPORT_TIMING_H
