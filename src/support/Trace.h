//===- support/Trace.h - Cross-process runtime event tracing ----*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Always-compiled, default-off event tracing for the parallel runtime.
///
/// Workers are forked processes, so their events travel through fixed-size
/// lock-free SPSC rings living in the shared control block (MAP_SHARED
/// memory created before fork).  A producer writes one POD record and
/// bumps one atomic cursor — wait-free, async-signal-safe, and cheap
/// enough to sit next to the private_read/private_write instrumentation;
/// when the ring is full the event is counted as dropped, never blocked
/// on.  The main process is the only consumer: it drains the rings at
/// commit-pump passes and at join, stamps each event with its producer's
/// timeline row, and — when a trace path is set — serializes everything as
/// Chrome `chrome://tracing` / Perfetto JSON: one pid row per worker
/// process plus one for the main process / commit pump.
///
/// Aggregate event counts mirror into StatisticRegistry group `trace`.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_SUPPORT_TRACE_H
#define PRIVATEER_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace privateer {
namespace trace {

/// What happened.  Span kinds carry their start time in Event::A and are
/// rendered as Chrome "X" (complete) events; the rest are instants.
enum class Kind : uint16_t {
  Invocation,      ///< Span: one runParallel call.  B = iterations.
  Epoch,           ///< Span: one fork/join epoch.  B = base iter, Arg = slots.
  WorkerFork,      ///< Arg = worker, A = OS pid.
  WorkerBegin,     ///< Worker row: first event after fork.
  WorkerExit,      ///< Arg = worker, A = wait status, B = clean flag.
  WorkerStallKill, ///< Arg = worker, A = last iter, B = heartbeat age ns.
  Heartbeat,       ///< Worker row: A = current iteration.
  SlotMerge,       ///< Span, worker row: Arg = slot, B = executed flag.
  CheckpointScan,  ///< Worker row: Arg = slot, A = bytes scanned, B = skipped.
  CommitEager,     ///< Span: Arg = slot, B = bytes scanned by the commit.
  CommitPostJoin,  ///< Span: Arg = slot, B = bytes scanned by the commit.
  Misspec,         ///< Arg = reason code, A = iteration, B = period.
  EarlyCutoff,     ///< Arg = period, A = iterations saved.
  RecoveryClamp,   ///< A = classified period end, B = committed frontier.
  Recovery,        ///< Span: A = start ns, B = iterations re-executed.
  Degraded,        ///< Span: B = iterations run sequentially.
  LockBroken,      ///< Arg = slot.
  RingDrops,       ///< Arg = worker, A = events dropped on ring overflow.
  StagePass,       ///< Span, worker row: one pipeline stage's pass over a
                   ///< checkpoint period.  Arg = stage, B = slot index.
  DepPost,         ///< Worker row: Arg = channel, A = iteration, B = value.
  DepWait,         ///< Span, worker row: a dependence wait that left the
                   ///< fast path.  Arg = channel, B = iteration.
  kNumKinds
};

/// Stable lower-case name used for the Chrome event name and the
/// StatisticRegistry counter under group "trace".
const char *kindName(Kind K);

/// True for kinds whose Event::A is a start timestamp (rendered "X").
bool kindIsSpan(Kind K);

/// Compact classification of misspeculation reasons so worker-raised
/// misspecs can cross the process boundary without carrying strings.
enum class Reason : uint32_t {
  Generic,
  Injected,
  FlowDependence,
  SamePeriodConflict,
  SeparationCheck,
  PrivacyBounds,
  ShortLivedEscape,
  IoOverflow,
  ChunkOverflow,
  CorruptSlot,
  TornSlot,
  Watchdog,
  WorkerLost,
  ProtectedStore,
  kNumReasons
};

/// Substring classification of a misspeculation reason message.
Reason reasonCode(const char *Why);
const char *reasonName(Reason R);

/// One trace record.  POD, 32 bytes, stored whole by the producer before
/// one release cursor bump — a consumer never observes a torn record.
struct Event {
  uint64_t TimeNs; ///< monotonicNanos() at emission (span end for spans).
  uint64_t A;      ///< Kind-specific; start ns for span kinds.
  uint64_t B;      ///< Kind-specific payload.
  uint32_t Arg;    ///< Kind-specific small payload (slot, worker, reason).
  uint16_t KindCode;
  uint16_t Worker; ///< Producer row: 0 = main process, 1 + id = worker id.
};
static_assert(std::is_trivially_copyable_v<Event> && sizeof(Event) == 32,
              "trace events must be PODs the ring can memcpy");

inline Event makeEvent(Kind K, uint16_t Worker, uint64_t TimeNs, uint64_t A,
                       uint64_t B, uint32_t Arg) {
  Event E;
  E.TimeNs = TimeNs;
  E.A = A;
  E.B = B;
  E.Arg = Arg;
  E.KindCode = static_cast<uint16_t>(K);
  E.Worker = Worker;
  return E;
}

/// Events one ring holds; must be a power of two.  At 32 bytes per event
/// one ring is 64 KiB; the control block carries one per possible worker,
/// all of it untouched (and therefore physically unallocated) until the
/// first traced event lands.
inline constexpr uint32_t kRingCapacity = 2048;

/// Fixed-size single-producer/single-consumer ring.  The producer is one
/// worker process, the consumer is the main process; both see the same
/// instance through MAP_SHARED memory.  push() is wait-free: one bounds
/// check, one POD store, one release cursor bump — and on overflow it
/// counts the drop instead of waiting, so tracing can never stall or
/// deadlock a worker, no matter how far behind the consumer is.
class Ring {
public:
  bool push(const Event &E) {
    uint32_t H = Head.load(std::memory_order_relaxed);
    uint32_t T = Tail.load(std::memory_order_acquire);
    if (H - T >= kRingCapacity) {
      Dropped.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Events[H & (kRingCapacity - 1)] = E;
    Head.store(H + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: visits every published event once, in order.
  /// Returns the number visited.
  template <typename Fn> uint32_t drain(Fn &&Visit) {
    uint32_t T = Tail.load(std::memory_order_relaxed);
    uint32_t H = Head.load(std::memory_order_acquire);
    uint32_t N = 0;
    for (; T != H; ++T, ++N)
      Visit(Events[T & (kRingCapacity - 1)]);
    Tail.store(T, std::memory_order_release);
    return N;
  }

  uint64_t dropped() const { return Dropped.load(std::memory_order_relaxed); }

  /// Published events not yet drained.
  uint32_t size() const {
    return Head.load(std::memory_order_acquire) -
           Tail.load(std::memory_order_acquire);
  }

private:
  std::atomic<uint32_t> Head{0};
  std::atomic<uint32_t> Tail{0};
  std::atomic<uint64_t> Dropped{0};
  Event Events[kRingCapacity];
};

/// Main-process-side accumulator: receives drained worker events and the
/// main process's own events, mirrors per-kind counts into
/// StatisticRegistry group "trace", and serializes the whole timeline as
/// Chrome-trace JSON.  Not shared across processes — workers only ever
/// touch their ring.
class Collector {
public:
  static Collector &instance();

  /// Arms tracing toward \p Path.  A different path than the current one
  /// resets the accumulated timeline; an empty path disarms.
  void enable(const std::string &Path);
  bool enabled() const { return !Path.empty(); }
  const std::string &path() const { return Path; }

  /// Records one event; \p Note, when non-empty, is attached to the JSON
  /// as args.note (main-process events only — workers cannot pass
  /// strings).  Bounded: beyond kMaxRecords the event still counts in the
  /// registry but is dropped from the timeline.
  void record(const Event &E, const std::string &Note = std::string());

  /// Convenience for the common case.
  void record(Kind K, uint16_t Worker, uint64_t TimeNs, uint64_t A,
              uint64_t B, uint32_t Arg,
              const std::string &Note = std::string()) {
    record(makeEvent(K, Worker, TimeNs, A, B, Arg), Note);
  }

  /// Drains one worker ring into the timeline.
  uint32_t drainRing(Ring &R);

  /// Folds a ring's final drop count into the trace.dropped statistic and
  /// emits a RingDrops event when non-zero.  Call once per ring per epoch.
  void noteDrops(unsigned Worker, uint64_t Count);

  /// Serializes the timeline to path() as Chrome-trace JSON (rewrites the
  /// file, so it is valid after every invocation).  No-op when disabled.
  /// Returns false with \p Err set when the file cannot be written.
  bool flush(std::string &Err);

  /// Drops all accumulated events (keeps the path armed).
  void reset();

  uint64_t eventCount() const { return Records.size(); }
  uint64_t droppedTotal() const { return DroppedEvents; }

  /// Timeline cap: ~128 MiB of records; beyond it events only count.
  static constexpr size_t kMaxRecords = 4u << 20;

private:
  struct Record {
    Event E;
    uint32_t Note; ///< 0 = none, else index + 1 into Notes.
  };
  std::string Path;
  std::vector<Record> Records;
  std::vector<std::string> Notes;
  uint64_t BaseNs = 0; ///< First event's timestamp; JSON times are relative.
  uint64_t DroppedEvents = 0;
};

} // namespace trace
} // namespace privateer

#endif // PRIVATEER_SUPPORT_TRACE_H
