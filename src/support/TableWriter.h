//===- support/TableWriter.h - Aligned console tables -----------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the rows the paper's tables and figure-series report.  Every
/// bench binary prints through this so EXPERIMENTS.md rows are regenerated
/// in one consistent format (aligned text plus optional CSV).
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_SUPPORT_TABLEWRITER_H
#define PRIVATEER_SUPPORT_TABLEWRITER_H

#include <cstdio>
#include <string>
#include <vector>

namespace privateer {

class TableWriter {
public:
  explicit TableWriter(std::vector<std::string> Header)
      : Columns(std::move(Header)) {}

  void addRow(std::vector<std::string> Row);

  /// Convenience: formats arithmetic cells with printf-style precision.
  static std::string cell(double V, int Precision = 2);
  static std::string cell(uint64_t V);
  static std::string cell(int64_t V);

  /// Prints an aligned table to \p Out (defaults to stdout).
  void print(std::FILE *Out = stdout) const;

  /// Prints comma-separated rows (header first) to \p Out.
  void printCsv(std::FILE *Out = stdout) const;

private:
  std::vector<std::string> Columns;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace privateer

#endif // PRIVATEER_SUPPORT_TABLEWRITER_H
