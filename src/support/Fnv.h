//===- support/Fnv.h - FNV-1a hashing ---------------------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a, used to digest workload outputs so sequential and speculative
/// parallel executions can be compared for exact equivalence.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_SUPPORT_FNV_H
#define PRIVATEER_SUPPORT_FNV_H

#include <cstdint>
#include <cstdio>
#include <string>

namespace privateer {

inline uint64_t fnv1a(const void *Data, size_t Bytes,
                      uint64_t Seed = 0xcbf29ce484222325ULL) {
  const auto *P = static_cast<const uint8_t *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Bytes; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ULL;
  }
  return H;
}

inline uint64_t fnv1a(const std::string &S,
                      uint64_t Seed = 0xcbf29ce484222325ULL) {
  return fnv1a(S.data(), S.size(), Seed);
}

inline std::string fnvHex(uint64_t H) {
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

} // namespace privateer

#endif // PRIVATEER_SUPPORT_FNV_H
