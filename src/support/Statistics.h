//===- support/Statistics.h - Named counter registry ------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny analogue of LLVM's Statistic class: named uint64 counters grouped
/// by subsystem.  The runtime's Table 3 counters (invocations, checkpoints,
/// private bytes read/written, allocation-site counts per heap) and the
/// profilers' event counts report through this registry.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_SUPPORT_STATISTICS_H
#define PRIVATEER_SUPPORT_STATISTICS_H

#include <cstdint>
#include <map>
#include <string>

namespace privateer {

/// A process-wide registry of named counters.  Not thread-safe by design:
/// Privateer workers are processes, and each worker accumulates into its own
/// copy; cross-worker totals are merged explicitly through shared memory by
/// the runtime (see runtime/ParallelInvocation).
class StatisticRegistry {
public:
  static StatisticRegistry &instance();

  uint64_t &counter(const std::string &Group, const std::string &Name);
  uint64_t get(const std::string &Group, const std::string &Name) const;

  /// Real-valued counters for quantities that are genuinely fractional
  /// (e.g. `commit.overlap_sec`, wall seconds of commit work overlapped
  /// with live workers); kept in a separate plane so integer counters stay
  /// exact.
  double &real(const std::string &Group, const std::string &Name);
  double getReal(const std::string &Group, const std::string &Name) const;

  void reset();

  /// Serializes every counter (integer and real planes) as a JSON object
  /// keyed group -> name -> value; the daemon's Status reply embeds this.
  std::string toJson() const;

  template <typename Fn> void forEach(Fn Visit) const {
    for (const auto &[Key, Value] : Counters)
      Visit(Key.first, Key.second, Value);
  }

  template <typename Fn> void forEachReal(Fn Visit) const {
    for (const auto &[Key, Value] : RealCounters)
      Visit(Key.first, Key.second, Value);
  }

private:
  std::map<std::pair<std::string, std::string>, uint64_t> Counters;
  std::map<std::pair<std::string, std::string>, double> RealCounters;
};

} // namespace privateer

#endif // PRIVATEER_SUPPORT_STATISTICS_H
