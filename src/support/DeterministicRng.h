//===- support/DeterministicRng.h - Reproducible PRNG -----------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, seedable PRNG (splitmix64 + xorshift) used by workload
/// generators and by the misspeculation injector so every experiment is
/// bit-reproducible across runs and worker counts.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_SUPPORT_DETERMINISTICRNG_H
#define PRIVATEER_SUPPORT_DETERMINISTICRNG_H

#include <cstdint>

namespace privateer {

class DeterministicRng {
public:
  explicit DeterministicRng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding avoids weak low-entropy states.
    uint64_t Z = Seed + 0x9e3779b97f4a7c15ULL;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    State = Z ^ (Z >> 31);
    if (State == 0)
      State = 0x9e3779b97f4a7c15ULL;
  }

  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }

  /// Uniform in [0, Bound).  Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [Lo, Hi).
  double nextDouble(double Lo, double Hi) {
    return Lo + (Hi - Lo) * nextDouble();
  }

  /// Standard normal via Box-Muller (one value per call; simple and
  /// deterministic, speed is irrelevant here).
  double nextGaussian();

private:
  uint64_t State;
};

} // namespace privateer

#endif // PRIVATEER_SUPPORT_DETERMINISTICRNG_H
