//===- support/ErrorHandling.cpp ------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

using namespace privateer;

void privateer::reportFatalError(const std::string &Reason) {
  std::fprintf(stderr, "privateer fatal error: %s\n", Reason.c_str());
  std::fflush(stderr);
  std::abort();
}

void privateer::privateerUnreachableImpl(const char *Msg, const char *File,
                                         unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::fflush(stderr);
  std::abort();
}
