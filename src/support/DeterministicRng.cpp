//===- support/DeterministicRng.cpp ---------------------------------------===//

#include "support/DeterministicRng.h"

#include <cmath>

using namespace privateer;

double DeterministicRng::nextGaussian() {
  // Box-Muller transform; reject U1 == 0 so log() stays finite.
  double U1 = nextDouble();
  while (U1 <= 1e-300)
    U1 = nextDouble();
  double U2 = nextDouble();
  return std::sqrt(-2.0 * std::log(U1)) * std::cos(2.0 * M_PI * U2);
}
