//===- support/Trace.cpp - Cross-process runtime event tracing ------------===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Statistics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace privateer {
namespace trace {

const char *kindName(Kind K) {
  switch (K) {
  case Kind::Invocation:
    return "invocation";
  case Kind::Epoch:
    return "epoch";
  case Kind::WorkerFork:
    return "worker_fork";
  case Kind::WorkerBegin:
    return "worker_begin";
  case Kind::WorkerExit:
    return "worker_exit";
  case Kind::WorkerStallKill:
    return "worker_stall_kill";
  case Kind::Heartbeat:
    return "heartbeat";
  case Kind::SlotMerge:
    return "slot_merge";
  case Kind::CheckpointScan:
    return "checkpoint_scan";
  case Kind::CommitEager:
    return "commit_eager";
  case Kind::CommitPostJoin:
    return "commit_postjoin";
  case Kind::Misspec:
    return "misspec";
  case Kind::EarlyCutoff:
    return "early_cutoff";
  case Kind::RecoveryClamp:
    return "recovery_clamp";
  case Kind::Recovery:
    return "recovery";
  case Kind::Degraded:
    return "degraded";
  case Kind::LockBroken:
    return "lock_broken";
  case Kind::RingDrops:
    return "ring_drops";
  case Kind::StagePass:
    return "stage_pass";
  case Kind::DepPost:
    return "dep_post";
  case Kind::DepWait:
    return "dep_wait";
  case Kind::kNumKinds:
    break;
  }
  return "unknown";
}

bool kindIsSpan(Kind K) {
  switch (K) {
  case Kind::Invocation:
  case Kind::Epoch:
  case Kind::SlotMerge:
  case Kind::CommitEager:
  case Kind::CommitPostJoin:
  case Kind::Recovery:
  case Kind::Degraded:
  case Kind::StagePass:
  case Kind::DepWait:
    return true;
  default:
    return false;
  }
}

Reason reasonCode(const char *Why) {
  if (!Why)
    return Reason::Generic;
  auto Has = [&](const char *Needle) { return std::strstr(Why, Needle); };
  if (Has("inject"))
    return Reason::Injected;
  if (Has("flow dep"))
    return Reason::FlowDependence;
  if (Has("same period") || Has("same-period") || Has("slot conflict"))
    return Reason::SamePeriodConflict;
  if (Has("separation"))
    return Reason::SeparationCheck;
  if (Has("privacy") || Has("bounds"))
    return Reason::PrivacyBounds;
  if (Has("short-lived") || Has("short lived"))
    return Reason::ShortLivedEscape;
  if (Has("io ") || Has("I/O") || Has("io buffer") || Has("io overflow"))
    return Reason::IoOverflow;
  if (Has("chunk"))
    return Reason::ChunkOverflow;
  if (Has("corrupt") || Has("poison") || Has("insane"))
    return Reason::CorruptSlot;
  if (Has("torn"))
    return Reason::TornSlot;
  if (Has("stall") || Has("watchdog"))
    return Reason::Watchdog;
  if (Has("lost") || Has("died") || Has("exit"))
    return Reason::WorkerLost;
  if (Has("protect") || Has("read-only"))
    return Reason::ProtectedStore;
  return Reason::Generic;
}

const char *reasonName(Reason R) {
  switch (R) {
  case Reason::Generic:
    return "generic";
  case Reason::Injected:
    return "injected";
  case Reason::FlowDependence:
    return "flow_dependence";
  case Reason::SamePeriodConflict:
    return "same_period_conflict";
  case Reason::SeparationCheck:
    return "separation_check";
  case Reason::PrivacyBounds:
    return "privacy_bounds";
  case Reason::ShortLivedEscape:
    return "short_lived_escape";
  case Reason::IoOverflow:
    return "io_overflow";
  case Reason::ChunkOverflow:
    return "chunk_overflow";
  case Reason::CorruptSlot:
    return "corrupt_slot";
  case Reason::TornSlot:
    return "torn_slot";
  case Reason::Watchdog:
    return "watchdog";
  case Reason::WorkerLost:
    return "worker_lost";
  case Reason::ProtectedStore:
    return "protected_store";
  case Reason::kNumReasons:
    break;
  }
  return "unknown";
}

Collector &Collector::instance() {
  // Intentionally leaked: Runtime::shutdown() runs from a static
  // destructor and must be able to flush a still-armed collector, so the
  // collector can never be destroyed before the runtime singleton.
  static Collector *C = new Collector;
  return *C;
}

void Collector::enable(const std::string &NewPath) {
  if (NewPath != Path)
    reset();
  Path = NewPath;
}

void Collector::record(const Event &E, const std::string &Note) {
  Kind K = static_cast<Kind>(E.KindCode);
  if (K < Kind::kNumKinds)
    ++StatisticRegistry::instance().counter("trace", kindName(K));
  if (Path.empty())
    return;
  if (Records.size() >= kMaxRecords) {
    ++DroppedEvents;
    return;
  }
  if (Records.empty() || E.TimeNs < BaseNs) {
    uint64_t Start = kindIsSpan(K) && E.A && E.A < E.TimeNs ? E.A : E.TimeNs;
    BaseNs = Records.empty() ? Start : std::min(BaseNs, Start);
  }
  Record R;
  R.E = E;
  R.Note = 0;
  if (!Note.empty()) {
    Notes.push_back(Note);
    R.Note = static_cast<uint32_t>(Notes.size());
  }
  Records.push_back(R);
}

uint32_t Collector::drainRing(Ring &R) {
  return R.drain([this](const Event &E) { record(E); });
}

void Collector::noteDrops(unsigned Worker, uint64_t Count) {
  if (!Count)
    return;
  StatisticRegistry::instance().counter("trace", "dropped") += Count;
  DroppedEvents += Count;
  if (!Path.empty())
    record(makeEvent(Kind::RingDrops, static_cast<uint16_t>(1 + Worker),
                     Records.empty() ? 0 : Records.back().E.TimeNs, Count, 0,
                     Worker));
}

namespace {

/// Escapes a note string for embedding in a JSON string literal.
void writeJsonString(FILE *F, const std::string &S) {
  std::fputc('"', F);
  for (char C : S) {
    switch (C) {
    case '"':
      std::fputs("\\\"", F);
      break;
    case '\\':
      std::fputs("\\\\", F);
      break;
    case '\n':
      std::fputs("\\n", F);
      break;
    case '\t':
      std::fputs("\\t", F);
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        std::fprintf(F, "\\u%04x", C);
      else
        std::fputc(C, F);
    }
  }
  std::fputc('"', F);
}

} // namespace

bool Collector::flush(std::string &Err) {
  if (Path.empty())
    return true;
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    Err = "trace: cannot open " + Path + " for writing";
    return false;
  }

  // Which timeline rows appear, so we only emit metadata for live rows.
  bool RowSeen[1 + 64] = {false};
  RowSeen[0] = true;
  for (const Record &R : Records)
    if (R.E.Worker < sizeof(RowSeen))
      RowSeen[R.E.Worker] = true;

  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", F);
  bool First = true;
  auto Sep = [&] {
    if (!First)
      std::fputs(",\n", F);
    First = false;
  };

  // Chrome metadata rows: pid 0 is the main process (and commit pump),
  // pid 1+w is worker w's process timeline.
  for (unsigned Row = 0; Row < sizeof(RowSeen); ++Row) {
    if (!RowSeen[Row])
      continue;
    Sep();
    std::fprintf(F,
                 "{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
                 "\"args\":{\"name\":",
                 Row);
    if (Row == 0)
      writeJsonString(F, "main (commit pump)");
    else
      writeJsonString(F, "worker " + std::to_string(Row - 1));
    std::fputs("}}", F);
  }

  auto Micro = [&](uint64_t Ns) {
    uint64_t Rel = Ns >= BaseNs ? Ns - BaseNs : 0;
    return static_cast<double>(Rel) / 1000.0;
  };

  for (const Record &R : Records) {
    const Event &E = R.E;
    Kind K = static_cast<Kind>(E.KindCode);
    Sep();
    if (kindIsSpan(K)) {
      // Span: A holds the start timestamp; dur clamps to >= 0.
      double Ts = Micro(E.A && E.A <= E.TimeNs ? E.A : E.TimeNs);
      double Dur = E.A && E.A <= E.TimeNs ? Micro(E.TimeNs) - Ts : 0.0;
      std::fprintf(F,
                   "{\"ph\":\"X\",\"pid\":%u,\"tid\":0,\"name\":\"%s\","
                   "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"b\":%" PRIu64
                   ",\"arg\":%u",
                   E.Worker, kindName(K), Ts, Dur, E.B, E.Arg);
    } else {
      std::fprintf(F,
                   "{\"ph\":\"i\",\"pid\":%u,\"tid\":0,\"s\":\"p\","
                   "\"name\":\"%s\",\"ts\":%.3f,\"args\":{\"a\":%" PRIu64
                   ",\"b\":%" PRIu64 ",\"arg\":%u",
                   E.Worker, kindName(K), Micro(E.TimeNs), E.A, E.B, E.Arg);
    }
    if (K == Kind::Misspec) {
      std::fputs(",\"reason\":", F);
      writeJsonString(F, reasonName(static_cast<Reason>(E.Arg)));
    }
    if (R.Note) {
      std::fputs(",\"note\":", F);
      writeJsonString(F, Notes[R.Note - 1]);
    }
    std::fputs("}}", F);
  }

  std::fprintf(F, "\n],\"otherData\":{\"dropped_events\":%" PRIu64 "}}\n",
               DroppedEvents);
  bool Ok = std::fflush(F) == 0 && !std::ferror(F);
  std::fclose(F);
  if (!Ok)
    Err = "trace: short write to " + Path;
  return Ok;
}

void Collector::reset() {
  Records.clear();
  Notes.clear();
  BaseNs = 0;
  DroppedEvents = 0;
}

} // namespace trace
} // namespace privateer
