//===- support/TableWriter.cpp --------------------------------------------===//

#include "support/TableWriter.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>

using namespace privateer;

void TableWriter::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Columns.size() && "row width mismatch");
  Rows.push_back(std::move(Row));
}

std::string TableWriter::cell(double V, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
  return Buf;
}

std::string TableWriter::cell(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  return Buf;
}

std::string TableWriter::cell(int64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRId64, V);
  return Buf;
}

void TableWriter::print(std::FILE *Out) const {
  std::vector<size_t> Widths(Columns.size());
  for (size_t I = 0; I < Columns.size(); ++I)
    Widths[I] = Columns[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I)
      std::fprintf(Out, "%s%-*s", I ? "  " : "", static_cast<int>(Widths[I]),
                   Row[I].c_str());
    std::fprintf(Out, "\n");
  };

  PrintRow(Columns);
  size_t Total = Columns.size() - 1;
  for (size_t W : Widths)
    Total += W + 1;
  std::string Rule(Total, '-');
  std::fprintf(Out, "%s\n", Rule.c_str());
  for (const auto &Row : Rows)
    PrintRow(Row);
}

void TableWriter::printCsv(std::FILE *Out) const {
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I)
      std::fprintf(Out, "%s%s", I ? "," : "", Row[I].c_str());
    std::fprintf(Out, "\n");
  };
  PrintRow(Columns);
  for (const auto &Row : Rows)
    PrintRow(Row);
}
