//===- support/ErrorHandling.h - Fatal errors and unreachable ---*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting helpers in the spirit of llvm/Support/ErrorHandling.
/// Library code never throws; invariant violations abort with a message.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_SUPPORT_ERRORHANDLING_H
#define PRIVATEER_SUPPORT_ERRORHANDLING_H

#include <string>

namespace privateer {

/// Prints \p Reason to stderr and aborts.  Used for unrecoverable internal
/// errors (failed syscalls backing the runtime, corrupted profiles, ...).
[[noreturn]] void reportFatalError(const std::string &Reason);

/// Marks a point in the code that must never be reached if program
/// invariants hold.
[[noreturn]] void privateerUnreachableImpl(const char *Msg, const char *File,
                                           unsigned Line);

} // namespace privateer

#define PRIVATEER_UNREACHABLE(MSG)                                            \
  ::privateer::privateerUnreachableImpl(MSG, __FILE__, __LINE__)

#endif // PRIVATEER_SUPPORT_ERRORHANDLING_H
