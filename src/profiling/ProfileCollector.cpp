//===- profiling/ProfileCollector.cpp -------------------------------------===//

#include "profiling/ProfileCollector.h"

using namespace privateer;
using namespace privateer::profiling;
using namespace privateer::analysis;
using namespace privateer::ir;

std::string ObjectKey::str() const {
  if (Global)
    return "@" + Global->name();
  std::string S = "site:";
  if (AllocSite) {
    S += AllocSite->parent()->parent()->name() + "/" +
         AllocSite->parent()->name() + "/%" + AllocSite->name();
  }
  if (!Context.empty())
    S += " ctx[" + Context + "]";
  return S;
}

ProfileCollector::LoopSnapshot ProfileCollector::snapshotActivations() const {
  LoopSnapshot Out;
  Out.reserve(ActivationStack.size());
  for (const Activation &A : ActivationStack)
    Out.emplace_back(A.L, A.ActivationId, A.Iteration);
  return Out;
}

const ProfileCollector::Activation *
ProfileCollector::currentActivation(const Loop *L) const {
  for (auto It = ActivationStack.rbegin(); It != ActivationStack.rend();
       ++It)
    if (It->L == L)
      return &*It;
  return nullptr;
}

std::string ProfileCollector::contextString() const {
  // "The dynamic context distinguishes dynamic instances of a static
  // instruction by listing the function and loop invocations which
  // enclose that instruction": the call-site chain is the discriminating
  // part (enqueueQ called at line 60 vs line 74 in Figure 2).
  std::string Out;
  for (const Instruction *Site : CallStack) {
    if (!Out.empty())
      Out += ">";
    // Call site identified by caller function and block (most call
    // instructions have no result name).
    Out += Site->parent()->parent()->name() + "/" + Site->parent()->name();
  }
  return Out;
}

void ProfileCollector::onGlobalAlloc(const GlobalVariable *G, uint64_t Addr,
                                     uint64_t Bytes) {
  ObjectKey K;
  K.Global = G;
  P.Objects.insert(K);
  P.GlobalBases[G] = Addr;
  AddrMap.insert(Addr, Addr + Bytes, K);
}

void ProfileCollector::onAlloc(const Instruction *Site, uint64_t Addr,
                               uint64_t Bytes) {
  ObjectKey K;
  K.AllocSite = Site;
  K.Context = contextString();
  P.Objects.insert(K);
  AddrMap.insert(Addr, Addr + (Bytes ? Bytes : 1), K);
  LiveAllocs[Addr] = LiveAlloc{K, snapshotActivations()};
}

void ProfileCollector::onFree(const Instruction *, uint64_t Addr) {
  auto It = LiveAllocs.find(Addr);
  if (It == LiveAllocs.end())
    return;
  // Lifetime verdict per enclosing loop: short-lived iff freed in the
  // same activation and iteration it was allocated in.
  for (const auto &[L, Act, Iter] : It->second.AtAlloc) {
    auto &Counts = P.Lifetime[{It->second.Key, L}];
    ++Counts.first;
    const Activation *Cur = currentActivation(L);
    if (!Cur || Cur->ActivationId != Act || Cur->Iteration != Iter)
      ++Counts.second;
  }
  auto Interval = AddrMap.lookupInterval(Addr);
  if (Interval)
    AddrMap.erase(Interval->Lo, Interval->Hi);
  LiveAllocs.erase(It);
}

void ProfileCollector::onLoad(const Instruction *I, uint64_t Addr,
                              uint64_t Bytes) {
  if (auto K = AddrMap.lookup(Addr))
    P.InstObjects[I].insert(*K);

  // Memory flow-dependence profiling: does this read observe a value
  // written in an earlier iteration of some active loop?
  for (uint64_t B = 0; B < Bytes; ++B) {
    auto It = LastWriter.find(Addr + B);
    if (It == LastWriter.end())
      continue;
    for (const auto &[L, Act, Iter] : It->second.At) {
      const Activation *Cur = currentActivation(L);
      if (Cur && Cur->ActivationId == Act && Cur->Iteration > Iter) {
        FlowDep D{It->second.Store, I};
        P.FlowDeps[L].insert(D);
        DepDistance &DS = P.DepDistances[{L, D}];
        uint64_t Dist = Cur->Iteration - Iter;
        DS.Min = std::min(DS.Min, Dist);
        DS.Max = std::max(DS.Max, Dist);
        ++DS.Samples;
      }
    }
  }

  // Value-prediction profiling: the first execution of this load in each
  // iteration of each active loop.
  uint64_t Raw = 0;
  std::memcpy(&Raw, reinterpret_cast<const void *>(Addr),
              std::min<uint64_t>(Bytes, 8));
  for (const Activation &A : ActivationStack) {
    PredRec &R = PredState[{I, A.L}];
    if (R.Unpredictable)
      continue;
    if (R.MarkerAct == A.ActivationId && R.MarkerIter == A.Iteration)
      continue; // Not the first read this iteration.
    R.MarkerAct = A.ActivationId;
    R.MarkerIter = A.Iteration;
    if (!R.Seen) {
      R.Seen = true;
      R.Addr = Addr;
      R.Bytes = Bytes;
      R.Raw = Raw;
    } else if (R.Addr != Addr || R.Bytes != Bytes || R.Raw != Raw) {
      R.Unpredictable = true;
    }
  }
}

void ProfileCollector::onStore(const Instruction *I, uint64_t Addr,
                               uint64_t Bytes) {
  if (auto K = AddrMap.lookup(Addr))
    P.InstObjects[I].insert(*K);
  LoopSnapshot Snap = snapshotActivations();
  for (uint64_t B = 0; B < Bytes; ++B)
    LastWriter[Addr + B] = WriteRec{I, Snap};
}

void ProfileCollector::onBlockEnter(const BasicBlock *B,
                                    const BasicBlock *From) {
  // Branch bias (control-speculation profile).
  if (From) {
    const Instruction *T = From->terminator();
    if (T && T->opcode() == Opcode::CondBr) {
      auto &C = P.Branches[T];
      ++C.second;
      if (T->blockRef(0) == B)
        ++C.first;
    }
  }

  const LoopInfo &LI = FA.loops(B->parent());

  // Leave loops this block is outside of (within the current frame).
  size_t Base = FrameBases.back();
  while (ActivationStack.size() > Base &&
         !ActivationStack.back().L->contains(B))
    ActivationStack.pop_back();

  // Enter or iterate a loop whose header this is.
  if (const Loop *L = LI.loopFor(B); L && L->header() == B) {
    bool BackEdge = !ActivationStack.empty() &&
                    ActivationStack.size() > Base &&
                    ActivationStack.back().L == L && From &&
                    L->contains(From);
    if (BackEdge) {
      ++ActivationStack.back().Iteration;
      ++P.Loops[L].Iterations;
    } else {
      ActivationStack.push_back(Activation{L, NextActivationId++, 0});
      ++P.Loops[L].Invocations;
      ++P.Loops[L].Iterations;
    }
  }

  // Execution weight: this block's work counts toward every active loop,
  // across frames (callee work accrues to caller loops).
  uint64_t W = B->instructions().size();
  for (Activation &A : ActivationStack)
    P.Loops[A.L].Weight += W;
}

void ProfileCollector::onCall(const Instruction *Site, const Function *) {
  CallStack.push_back(Site);
  FrameBases.push_back(ActivationStack.size());
}

void ProfileCollector::onReturn(const Function *) {
  ActivationStack.resize(FrameBases.back());
  FrameBases.pop_back();
  CallStack.pop_back();
}

Profile ProfileCollector::finish() {
  // Objects never freed are not short-lived for any loop that was active
  // at their allocation.
  for (const auto &[Addr, Alloc] : LiveAllocs) {
    (void)Addr;
    for (const auto &[L, Act, Iter] : Alloc.AtAlloc) {
      (void)Act;
      (void)Iter;
      auto &Counts = P.Lifetime[{Alloc.Key, L}];
      ++Counts.first;
      ++Counts.second;
    }
  }
  LiveAllocs.clear();

  // Materialize surviving value predictions (sign-extended like Load).
  for (const auto &[Key, R] : PredState) {
    if (!R.Seen || R.Unpredictable)
      continue;
    int64_t V = 0;
    std::memcpy(&V, &R.Raw, 8);
    if (R.Bytes < 8) {
      unsigned Shift = 64 - 8 * static_cast<unsigned>(R.Bytes);
      V = (V << Shift) >> Shift;
    }
    P.Predictables[Key] =
        PredictableLoad{Key.first, R.Addr, R.Bytes, V};
  }
  return std::move(P);
}
