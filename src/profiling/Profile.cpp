//===- profiling/Profile.cpp ----------------------------------------------===//

#include "profiling/Profile.h"

using namespace privateer;
using namespace privateer::profiling;
using namespace privateer::analysis;
using namespace privateer::ir;

const std::set<ObjectKey> &
Profile::objectsAccessedBy(const Instruction *I) const {
  static const std::set<ObjectKey> Empty;
  auto It = InstObjects.find(I);
  return It == InstObjects.end() ? Empty : It->second;
}

bool Profile::isShortLived(const ObjectKey &O, const Loop *L) const {
  auto It = Lifetime.find({O, L});
  if (It == Lifetime.end())
    return false;
  return It->second.first > 0 && It->second.second == 0;
}

const std::set<FlowDep> &
Profile::crossIterationFlowDeps(const Loop *L) const {
  static const std::set<FlowDep> Empty;
  auto It = FlowDeps.find(L);
  return It == FlowDeps.end() ? Empty : It->second;
}

const DepDistance *Profile::flowDepDistance(const Loop *L,
                                            const FlowDep &D) const {
  auto It = DepDistances.find({L, D});
  return It == DepDistances.end() ? nullptr : &It->second;
}

const PredictableLoad *
Profile::predictableFirstRead(const Instruction *Load, const Loop *L) const {
  auto It = Predictables.find({Load, L});
  return It == Predictables.end() ? nullptr : &It->second;
}

LoopStats Profile::loopStats(const Loop *L) const {
  auto It = Loops.find(L);
  return It == Loops.end() ? LoopStats() : It->second;
}

uint64_t Profile::globalBase(const GlobalVariable *G) const {
  auto It = GlobalBases.find(G);
  return It == GlobalBases.end() ? 0 : It->second;
}

double Profile::branchTakenRatio(const Instruction *CondBr) const {
  auto It = Branches.find(CondBr);
  if (It == Branches.end() || It->second.second == 0)
    return -1.0;
  return static_cast<double>(It->second.first) /
         static_cast<double>(It->second.second);
}

std::string Profile::dump() const {
  std::string Out;
  Out += "objects (" + std::to_string(Objects.size()) + "):\n";
  for (const ObjectKey &K : Objects)
    Out += "  " + K.str() + "\n";
  Out += "loops:\n";
  for (const auto &[L, S] : Loops)
    Out += "  loop@" + L->header()->name() +
           " invocations=" + std::to_string(S.Invocations) +
           " iterations=" + std::to_string(S.Iterations) +
           " weight=" + std::to_string(S.Weight) + "\n";
  for (const auto &[L, Deps] : FlowDeps) {
    Out += "cross-iteration flow deps of loop@" + L->header()->name() +
           ":\n";
    for (const FlowDep &D : Deps)
      Out += "  store %" + D.Src->name() + " -> load %" + D.Dst->name() +
             "\n";
  }
  return Out;
}
