//===- profiling/ProfileSerialization.cpp ---------------------------------===//

#include "profiling/ProfileSerialization.h"

#include <algorithm>
#include <sstream>

using namespace privateer;
using namespace privateer::profiling;
using namespace privateer::analysis;
using namespace privateer::ir;

namespace {

/// Stable instruction coordinate: function@block@index.
std::string instRef(const Instruction *I) {
  const BasicBlock *B = I->parent();
  return B->parent()->name() + "@" + B->name() + "@" +
         std::to_string(B->indexOf(I));
}

const Instruction *resolveInst(const Module &M, const std::string &Ref) {
  size_t A = Ref.find('@');
  size_t B = Ref.find('@', A + 1);
  if (A == std::string::npos || B == std::string::npos)
    return nullptr;
  Function *F = M.functionByName(Ref.substr(0, A));
  if (!F)
    return nullptr;
  BasicBlock *Blk = F->blockByName(Ref.substr(A + 1, B - A - 1));
  if (!Blk)
    return nullptr;
  size_t Idx = std::stoull(Ref.substr(B + 1));
  if (Idx >= Blk->instructions().size())
    return nullptr;
  return Blk->instructions()[Idx].get();
}

/// Stable loop coordinate: function@header.
std::string loopRef(const Loop *L) {
  return L->header()->parent()->name() + "@" + L->header()->name();
}

const Loop *resolveLoop(const Module &M, const FunctionAnalyses &FA,
                        const std::string &Ref) {
  size_t A = Ref.find('@');
  if (A == std::string::npos)
    return nullptr;
  Function *F = M.functionByName(Ref.substr(0, A));
  if (!F)
    return nullptr;
  std::string Header = Ref.substr(A + 1);
  for (const auto &L : FA.loops(F).loops())
    if (L->header()->name() == Header)
      return L.get();
  return nullptr;
}

/// Object token: "G:<name>" or "S:<instref>|<context-or-minus>".
std::string objectRef(const ObjectKey &K) {
  if (K.Global)
    return "G:" + K.Global->name();
  return "S:" + instRef(K.AllocSite) + "|" +
         (K.Context.empty() ? "-" : K.Context);
}

std::optional<ObjectKey> resolveObject(const Module &M,
                                       const std::string &Ref) {
  ObjectKey K;
  if (Ref.rfind("G:", 0) == 0) {
    K.Global = M.globalByName(Ref.substr(2));
    if (!K.Global)
      return std::nullopt;
    return K;
  }
  if (Ref.rfind("S:", 0) != 0)
    return std::nullopt;
  size_t Bar = Ref.find('|');
  if (Bar == std::string::npos)
    return std::nullopt;
  K.AllocSite = resolveInst(M, Ref.substr(2, Bar - 2));
  if (!K.AllocSite)
    return std::nullopt;
  std::string Ctx = Ref.substr(Bar + 1);
  K.Context = Ctx == "-" ? "" : Ctx;
  return K;
}

} // namespace

std::string profiling::serializeProfile(const Profile &P, const Module &M) {
  (void)M;
  // The profile's maps are keyed by pointers, whose iteration order is
  // not deterministic across runs; emit records sorted by their textual
  // form so the serialization is canonical.
  std::vector<std::string> Lines;
  for (const ObjectKey &K : P.Objects)
    Lines.push_back("object " + objectRef(K));
  for (const auto &[G, Base] : P.GlobalBases)
    Lines.push_back("globalbase " + G->name() + " " + std::to_string(Base));
  for (const auto &[I, Objs] : P.InstObjects) {
    std::string L = "instobj " + instRef(I);
    // ObjectKey sets are pointer-ordered too; sort their refs.
    std::vector<std::string> Refs;
    for (const ObjectKey &K : Objs)
      Refs.push_back(objectRef(K));
    std::sort(Refs.begin(), Refs.end());
    for (const std::string &R : Refs)
      L += " " + R;
    Lines.push_back(std::move(L));
  }
  for (const auto &[Key, Counts] : P.Lifetime)
    Lines.push_back("lifetime " + objectRef(Key.first) + " " +
                    loopRef(Key.second) + " " +
                    std::to_string(Counts.first) + " " +
                    std::to_string(Counts.second));
  for (const auto &[L, Deps] : P.FlowDeps)
    for (const FlowDep &D : Deps)
      Lines.push_back("flowdep " + loopRef(L) + " " + instRef(D.Src) +
                      " " + instRef(D.Dst));
  for (const auto &[Key, DS] : P.DepDistances)
    Lines.push_back("depdist " + loopRef(Key.first) + " " +
                    instRef(Key.second.Src) + " " + instRef(Key.second.Dst) +
                    " " + std::to_string(DS.Min) + " " +
                    std::to_string(DS.Max) + " " +
                    std::to_string(DS.Samples));
  for (const auto &[Key, PL] : P.Predictables)
    Lines.push_back("pred " + instRef(Key.first) + " " +
                    loopRef(Key.second) + " " + std::to_string(PL.Address) +
                    " " + std::to_string(PL.Bytes) + " " +
                    std::to_string(PL.Value));
  for (const auto &[L, S] : P.Loops)
    Lines.push_back("loop " + loopRef(L) + " " +
                    std::to_string(S.Invocations) + " " +
                    std::to_string(S.Iterations) + " " +
                    std::to_string(S.Weight));
  for (const auto &[I, C] : P.Branches)
    Lines.push_back("branch " + instRef(I) + " " + std::to_string(C.first) +
                    " " + std::to_string(C.second));
  std::sort(Lines.begin(), Lines.end());

  std::string Out = "privateer-profile v1\n";
  for (const std::string &L : Lines) {
    Out += L;
    Out += "\n";
  }
  return Out;
}

std::optional<Profile>
profiling::deserializeProfile(const std::string &Text, const Module &M,
                              const FunctionAnalyses &FA,
                              std::string &Error) {
  Profile P;
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  auto Fail = [&](const std::string &Msg) {
    Error = "line " + std::to_string(LineNo) + ": " + Msg;
    return std::optional<Profile>();
  };

  if (!std::getline(In, Line) || Line.rfind("privateer-profile", 0) != 0) {
    Error = "missing profile header";
    return std::nullopt;
  }
  ++LineNo;

  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::istringstream S(Line);
    std::string Kw;
    S >> Kw;
    if (Kw == "object") {
      std::string Ref;
      S >> Ref;
      auto K = resolveObject(M, Ref);
      if (!K)
        return Fail("unresolved object " + Ref);
      P.Objects.insert(*K);
    } else if (Kw == "globalbase") {
      std::string Name;
      uint64_t Base;
      S >> Name >> Base;
      GlobalVariable *G = M.globalByName(Name);
      if (!G)
        return Fail("unknown global " + Name);
      P.GlobalBases[G] = Base;
    } else if (Kw == "instobj") {
      std::string IRef;
      S >> IRef;
      const Instruction *I = resolveInst(M, IRef);
      if (!I)
        return Fail("unresolved instruction " + IRef);
      std::string ORef;
      while (S >> ORef) {
        auto K = resolveObject(M, ORef);
        if (!K)
          return Fail("unresolved object " + ORef);
        P.InstObjects[I].insert(*K);
      }
    } else if (Kw == "lifetime") {
      std::string ORef, LRef;
      uint64_t Seen, Bad;
      S >> ORef >> LRef >> Seen >> Bad;
      auto K = resolveObject(M, ORef);
      const Loop *L = resolveLoop(M, FA, LRef);
      if (!K || !L)
        return Fail("unresolved lifetime entry");
      P.Lifetime[{*K, L}] = {Seen, Bad};
    } else if (Kw == "flowdep") {
      std::string LRef, SRef, DRef;
      S >> LRef >> SRef >> DRef;
      const Loop *L = resolveLoop(M, FA, LRef);
      const Instruction *Src = resolveInst(M, SRef);
      const Instruction *Dst = resolveInst(M, DRef);
      if (!L || !Src || !Dst)
        return Fail("unresolved flow dep");
      P.FlowDeps[L].insert(FlowDep{Src, Dst});
    } else if (Kw == "depdist") {
      std::string LRef, SRef, DRef;
      DepDistance DS;
      S >> LRef >> SRef >> DRef >> DS.Min >> DS.Max >> DS.Samples;
      const Loop *L = resolveLoop(M, FA, LRef);
      const Instruction *Src = resolveInst(M, SRef);
      const Instruction *Dst = resolveInst(M, DRef);
      if (!L || !Src || !Dst)
        return Fail("unresolved dep distance");
      P.DepDistances[{L, FlowDep{Src, Dst}}] = DS;
    } else if (Kw == "pred") {
      std::string IRef, LRef;
      uint64_t Addr, Bytes;
      int64_t Value;
      S >> IRef >> LRef >> Addr >> Bytes >> Value;
      const Instruction *I = resolveInst(M, IRef);
      const Loop *L = resolveLoop(M, FA, LRef);
      if (!I || !L)
        return Fail("unresolved prediction");
      P.Predictables[{I, L}] = PredictableLoad{I, Addr, Bytes, Value};
    } else if (Kw == "loop") {
      std::string LRef;
      LoopStats St;
      S >> LRef >> St.Invocations >> St.Iterations >> St.Weight;
      const Loop *L = resolveLoop(M, FA, LRef);
      if (!L)
        return Fail("unresolved loop " + LRef);
      P.Loops[L] = St;
    } else if (Kw == "branch") {
      std::string IRef;
      uint64_t Taken, Total;
      S >> IRef >> Taken >> Total;
      const Instruction *I = resolveInst(M, IRef);
      if (!I)
        return Fail("unresolved branch " + IRef);
      P.Branches[I] = {Taken, Total};
    } else {
      return Fail("unknown record '" + Kw + "'");
    }
  }
  return P;
}
