//===- profiling/ProfileCollector.h - Profiling observer --------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumented-training-run half of §4.1, as one InterpObserver.
/// Maintains "an interval map from ranges of memory addresses to the name
/// of the memory object which occupies that space", tracks loop activations
/// (invocation + iteration counters per dynamic loop entry), object
/// lifetimes, per-byte last writers for memory flow-dependence profiling,
/// branch bias, per-loop execution weight, and first-read-per-iteration
/// value predictability.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_PROFILING_PROFILECOLLECTOR_H
#define PRIVATEER_PROFILING_PROFILECOLLECTOR_H

#include "analysis/FunctionAnalyses.h"
#include "interp/Interpreter.h"
#include "profiling/Profile.h"
#include "support/IntervalMap.h"

#include <unordered_map>

namespace privateer {
namespace profiling {

class ProfileCollector : public interp::InterpObserver {
public:
  explicit ProfileCollector(const analysis::FunctionAnalyses &FA) : FA(FA) {}

  // InterpObserver implementation.
  void onGlobalAlloc(const ir::GlobalVariable *G, uint64_t Addr,
                     uint64_t Bytes) override;
  void onAlloc(const ir::Instruction *Site, uint64_t Addr,
               uint64_t Bytes) override;
  void onFree(const ir::Instruction *I, uint64_t Addr) override;
  void onLoad(const ir::Instruction *I, uint64_t Addr,
              uint64_t Bytes) override;
  void onStore(const ir::Instruction *I, uint64_t Addr,
               uint64_t Bytes) override;
  void onBlockEnter(const ir::BasicBlock *B,
                    const ir::BasicBlock *From) override;
  void onCall(const ir::Instruction *Site, const ir::Function *F) override;
  void onReturn(const ir::Function *F) override;

  /// Finalizes lifetime of still-live objects and value predictability,
  /// and hands over the accumulated profile.
  Profile finish();

private:
  struct Activation {
    const analysis::Loop *L;
    uint64_t ActivationId;
    uint64_t Iteration;
  };
  using LoopSnapshot =
      std::vector<std::tuple<const analysis::Loop *, uint64_t, uint64_t>>;

  LoopSnapshot snapshotActivations() const;
  const Activation *currentActivation(const analysis::Loop *L) const;
  std::string contextString() const;

  const analysis::FunctionAnalyses &FA;
  Profile P;

  std::vector<Activation> ActivationStack;
  std::vector<size_t> FrameBases{0};
  std::vector<const ir::Instruction *> CallStack;
  uint64_t NextActivationId = 1;

  IntervalMap<ObjectKey> AddrMap;
  struct LiveAlloc {
    ObjectKey Key;
    LoopSnapshot AtAlloc;
  };
  std::unordered_map<uint64_t, LiveAlloc> LiveAllocs;

  struct WriteRec {
    const ir::Instruction *Store;
    LoopSnapshot At;
  };
  std::unordered_map<uint64_t, WriteRec> LastWriter;

  struct PredRec {
    bool Seen = false;
    bool Unpredictable = false;
    uint64_t Addr = 0;
    uint64_t Bytes = 0;
    uint64_t Raw = 0;
    uint64_t MarkerAct = ~0ULL;
    uint64_t MarkerIter = ~0ULL;
  };
  std::map<std::pair<const ir::Instruction *, const analysis::Loop *>,
           PredRec>
      PredState;
};

} // namespace profiling
} // namespace privateer

#endif // PRIVATEER_PROFILING_PROFILECOLLECTOR_H
