//===- profiling/Profile.h - Profile data model -----------------*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile information Privateer's compiler consumes (§4.1):
///
///  - the pointer-to-object map: which named memory objects each static
///    load/store touched during the training run.  "The profiler assigns
///    static names to the memory objects of global or constant variables.
///    The profiler names dynamic objects (e.g. malloc or new) or stack
///    slots according to the instruction which allocates them and a
///    dynamic context";
///  - object lifetimes (short-lived w.r.t. a loop);
///  - cross-iteration memory flow dependences per loop;
///  - branch bias and loop trip counts (control speculation);
///  - first-read-per-iteration value predictability (value prediction);
///  - per-loop execution weight (hot-loop selection).
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_PROFILING_PROFILE_H
#define PRIVATEER_PROFILING_PROFILE_H

#include "analysis/LoopInfo.h"
#include "ir/IR.h"

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace privateer {
namespace analysis {
class FunctionAnalyses;
} // namespace analysis

namespace profiling {

/// Static identity of a memory object: a global, or an allocation site
/// plus the dynamic (call-site chain) context that reached it.
struct ObjectKey {
  const ir::GlobalVariable *Global = nullptr;
  const ir::Instruction *AllocSite = nullptr;
  std::string Context;

  bool operator<(const ObjectKey &O) const {
    if (Global != O.Global)
      return Global < O.Global;
    if (AllocSite != O.AllocSite)
      return AllocSite < O.AllocSite;
    return Context < O.Context;
  }
  bool operator==(const ObjectKey &O) const {
    return Global == O.Global && AllocSite == O.AllocSite &&
           Context == O.Context;
  }
  std::string str() const;
};

/// A profiled loop-carried memory flow dependence (write in an earlier
/// iteration of the loop, read in a later one).
struct FlowDep {
  const ir::Instruction *Src; ///< The store.
  const ir::Instruction *Dst; ///< The load.
  bool operator<(const FlowDep &O) const {
    if (Src != O.Src)
      return Src < O.Src;
    return Dst < O.Dst;
  }
};

/// Observed iteration-distance statistics of one profiled flow dependence
/// (distance = reader's iteration - writer's iteration).  The DOACROSS
/// planner consumes these: a dependence whose every observed instance had
/// the same distance is a candidate for token forwarding, and the minimum
/// distance bounds how much pipeline slack the loop offers.
struct DepDistance {
  uint64_t Min = UINT64_MAX;
  uint64_t Max = 0;
  uint64_t Samples = 0;
  bool fixed() const { return Samples > 0 && Min == Max; }
};

/// Value-prediction candidate: the first read a load makes in each
/// iteration of a loop always returned the same value from the same
/// address.
struct PredictableLoad {
  const ir::Instruction *Load;
  uint64_t Address;
  uint64_t Bytes;
  int64_t Value;
};

struct LoopStats {
  uint64_t Invocations = 0;
  uint64_t Iterations = 0;
  /// Dynamic instructions executed while the loop was active (nested
  /// work included) — the hot-loop ranking weight.
  uint64_t Weight = 0;
};

class Profile {
public:
  /// Profile.mapPointerToObjects for a static memory instruction.
  const std::set<ObjectKey> &objectsAccessedBy(const ir::Instruction *I) const;

  /// Profile.isShortLived(o, L): every dynamic instance of \p O observed
  /// during training was allocated and freed within a single iteration of
  /// \p L (and at least one instance existed).
  bool isShortLived(const ObjectKey &O, const analysis::Loop *L) const;

  const std::set<FlowDep> &
  crossIterationFlowDeps(const analysis::Loop *L) const;

  /// Distance statistics for one profiled flow dependence of \p L, or
  /// nullptr when the dependence was never observed (e.g. a profile
  /// deserialized from a pre-distance text).
  const DepDistance *flowDepDistance(const analysis::Loop *L,
                                     const FlowDep &D) const;

  /// Was every first-read-per-iteration of \p Load in \p L the same value
  /// at the same address?
  const PredictableLoad *predictableFirstRead(const ir::Instruction *Load,
                                              const analysis::Loop *L) const;

  LoopStats loopStats(const analysis::Loop *L) const;

  /// Fraction of executions in which this conditional branch was taken;
  /// -1 when never executed.
  double branchTakenRatio(const ir::Instruction *CondBr) const;

  /// Every object observed during profiling.
  const std::set<ObjectKey> &allObjects() const { return Objects; }

  /// Base address a global occupied during the profiling run (used to
  /// turn predicted-load addresses into global+offset).
  uint64_t globalBase(const ir::GlobalVariable *G) const;

  /// Human-readable dump (for tests and debugging).
  std::string dump() const;

private:
  friend class ProfileCollector;
  friend std::string serializeProfile(const Profile &P, const ir::Module &M);
  friend std::optional<Profile>
  deserializeProfile(const std::string &Text, const ir::Module &M,
                     const analysis::FunctionAnalyses &FA,
                     std::string &Error);

  std::set<ObjectKey> Objects;
  std::map<const ir::Instruction *, std::set<ObjectKey>> InstObjects;
  /// (object, loop) -> [0]=instances seen, [1]=instances violating
  /// one-iteration lifetime.
  std::map<std::pair<ObjectKey, const analysis::Loop *>,
           std::pair<uint64_t, uint64_t>>
      Lifetime;
  std::map<const analysis::Loop *, std::set<FlowDep>> FlowDeps;
  std::map<std::pair<const analysis::Loop *, FlowDep>, DepDistance>
      DepDistances;
  std::map<std::pair<const ir::Instruction *, const analysis::Loop *>,
           PredictableLoad>
      Predictables;
  std::map<const analysis::Loop *, LoopStats> Loops;
  std::map<const ir::Instruction *, std::pair<uint64_t, uint64_t>> Branches;
  std::map<const ir::GlobalVariable *, uint64_t> GlobalBases;
};

} // namespace profiling
} // namespace privateer

#endif // PRIVATEER_PROFILING_PROFILE_H
