//===- profiling/ProfileSerialization.h - Profile save/load -----*- C++ -*-===//
//
// Part of the Privateer reproduction of "Speculative Separation for
// Privatization and Reductions" (PLDI 2012).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization of training profiles, enabling the paper's workflow
/// of profiling once on a training input and compiling later ("Each
/// benchmark is profiled with a training input (train)", §6).  Entities
/// are identified by stable names — functions and blocks by name,
/// instructions by their index within a block, loops by their header —
/// so a profile saved against a module can be re-attached to a freshly
/// parsed copy of the same module.
///
//===----------------------------------------------------------------------===//

#ifndef PRIVATEER_PROFILING_PROFILESERIALIZATION_H
#define PRIVATEER_PROFILING_PROFILESERIALIZATION_H

#include "analysis/FunctionAnalyses.h"
#include "profiling/Profile.h"

#include <optional>
#include <string>

namespace privateer {
namespace profiling {

/// Renders \p P as text.  Instruction and loop references use stable
/// coordinates within \p M.
std::string serializeProfile(const Profile &P, const ir::Module &M);

/// Parses a serialized profile against \p M / \p FA.  Returns nullopt and
/// sets \p Error if any reference fails to resolve (the module changed).
std::optional<Profile> deserializeProfile(const std::string &Text,
                                          const ir::Module &M,
                                          const analysis::FunctionAnalyses &FA,
                                          std::string &Error);

} // namespace profiling
} // namespace privateer

#endif // PRIVATEER_PROFILING_PROFILESERIALIZATION_H
