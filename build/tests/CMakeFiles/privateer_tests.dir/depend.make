# Empty dependencies file for privateer_tests.
# This may be replaced when dependencies are built.
