
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AnalysisTest.cpp" "tests/CMakeFiles/privateer_tests.dir/AnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/AnalysisTest.cpp.o.d"
  "/root/repo/tests/ClassificationTest.cpp" "tests/CMakeFiles/privateer_tests.dir/ClassificationTest.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/ClassificationTest.cpp.o.d"
  "/root/repo/tests/InterpreterTest.cpp" "tests/CMakeFiles/privateer_tests.dir/InterpreterTest.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/InterpreterTest.cpp.o.d"
  "/root/repo/tests/IrTest.cpp" "tests/CMakeFiles/privateer_tests.dir/IrTest.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/IrTest.cpp.o.d"
  "/root/repo/tests/Md5Test.cpp" "tests/CMakeFiles/privateer_tests.dir/Md5Test.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/Md5Test.cpp.o.d"
  "/root/repo/tests/PerfModelTest.cpp" "tests/CMakeFiles/privateer_tests.dir/PerfModelTest.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/PerfModelTest.cpp.o.d"
  "/root/repo/tests/PipelineTest.cpp" "tests/CMakeFiles/privateer_tests.dir/PipelineTest.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/PipelineTest.cpp.o.d"
  "/root/repo/tests/ProfileSerializationTest.cpp" "tests/CMakeFiles/privateer_tests.dir/ProfileSerializationTest.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/ProfileSerializationTest.cpp.o.d"
  "/root/repo/tests/ProfilerTest.cpp" "tests/CMakeFiles/privateer_tests.dir/ProfilerTest.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/ProfilerTest.cpp.o.d"
  "/root/repo/tests/RandomizedEquivalenceTest.cpp" "tests/CMakeFiles/privateer_tests.dir/RandomizedEquivalenceTest.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/RandomizedEquivalenceTest.cpp.o.d"
  "/root/repo/tests/RuntimeSmokeTest.cpp" "tests/CMakeFiles/privateer_tests.dir/RuntimeSmokeTest.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/RuntimeSmokeTest.cpp.o.d"
  "/root/repo/tests/RuntimeUnitTest.cpp" "tests/CMakeFiles/privateer_tests.dir/RuntimeUnitTest.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/RuntimeUnitTest.cpp.o.d"
  "/root/repo/tests/ShadowMetadataTest.cpp" "tests/CMakeFiles/privateer_tests.dir/ShadowMetadataTest.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/ShadowMetadataTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/privateer_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/TransformTest.cpp" "tests/CMakeFiles/privateer_tests.dir/TransformTest.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/TransformTest.cpp.o.d"
  "/root/repo/tests/WorkloadEquivalenceTest.cpp" "tests/CMakeFiles/privateer_tests.dir/WorkloadEquivalenceTest.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/WorkloadEquivalenceTest.cpp.o.d"
  "/root/repo/tests/WorkloadUnitTest.cpp" "tests/CMakeFiles/privateer_tests.dir/WorkloadUnitTest.cpp.o" "gcc" "tests/CMakeFiles/privateer_tests.dir/WorkloadUnitTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/privateer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
