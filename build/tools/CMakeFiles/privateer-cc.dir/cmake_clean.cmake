file(REMOVE_RECURSE
  "CMakeFiles/privateer-cc.dir/privateer-cc.cpp.o"
  "CMakeFiles/privateer-cc.dir/privateer-cc.cpp.o.d"
  "privateer-cc"
  "privateer-cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privateer-cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
