# Empty compiler generated dependencies file for privateer-cc.
# This may be replaced when dependencies are built.
