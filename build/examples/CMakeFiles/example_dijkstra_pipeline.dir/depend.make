# Empty dependencies file for example_dijkstra_pipeline.
# This may be replaced when dependencies are built.
