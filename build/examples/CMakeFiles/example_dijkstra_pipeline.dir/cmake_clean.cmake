file(REMOVE_RECURSE
  "CMakeFiles/example_dijkstra_pipeline.dir/dijkstra_pipeline.cpp.o"
  "CMakeFiles/example_dijkstra_pipeline.dir/dijkstra_pipeline.cpp.o.d"
  "example_dijkstra_pipeline"
  "example_dijkstra_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dijkstra_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
