# Empty compiler generated dependencies file for example_misspec_recovery.
# This may be replaced when dependencies are built.
