file(REMOVE_RECURSE
  "CMakeFiles/example_misspec_recovery.dir/misspec_recovery.cpp.o"
  "CMakeFiles/example_misspec_recovery.dir/misspec_recovery.cpp.o.d"
  "example_misspec_recovery"
  "example_misspec_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_misspec_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
