file(REMOVE_RECURSE
  "CMakeFiles/example_reduction_sum.dir/reduction_sum.cpp.o"
  "CMakeFiles/example_reduction_sum.dir/reduction_sum.cpp.o.d"
  "example_reduction_sum"
  "example_reduction_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_reduction_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
