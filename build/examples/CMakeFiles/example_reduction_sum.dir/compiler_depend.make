# Empty compiler generated dependencies file for example_reduction_sum.
# This may be replaced when dependencies are built.
