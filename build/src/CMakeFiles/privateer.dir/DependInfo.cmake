
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CallGraph.cpp" "src/CMakeFiles/privateer.dir/analysis/CallGraph.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/analysis/CallGraph.cpp.o.d"
  "/root/repo/src/analysis/Cfg.cpp" "src/CMakeFiles/privateer.dir/analysis/Cfg.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/analysis/Cfg.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/CMakeFiles/privateer.dir/analysis/Dominators.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/analysis/Dominators.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/CMakeFiles/privateer.dir/analysis/LoopInfo.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/analysis/LoopInfo.cpp.o.d"
  "/root/repo/src/classify/Classification.cpp" "src/CMakeFiles/privateer.dir/classify/Classification.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/classify/Classification.cpp.o.d"
  "/root/repo/src/interp/Interpreter.cpp" "src/CMakeFiles/privateer.dir/interp/Interpreter.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/interp/Interpreter.cpp.o.d"
  "/root/repo/src/interp/MemoryManager.cpp" "src/CMakeFiles/privateer.dir/interp/MemoryManager.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/interp/MemoryManager.cpp.o.d"
  "/root/repo/src/ir/IR.cpp" "src/CMakeFiles/privateer.dir/ir/IR.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/ir/IR.cpp.o.d"
  "/root/repo/src/ir/IRParser.cpp" "src/CMakeFiles/privateer.dir/ir/IRParser.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/ir/IRParser.cpp.o.d"
  "/root/repo/src/ir/IRPrinter.cpp" "src/CMakeFiles/privateer.dir/ir/IRPrinter.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/ir/IRPrinter.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/privateer.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/ir/Verifier.cpp.o.d"
  "/root/repo/src/perfmodel/PerfModel.cpp" "src/CMakeFiles/privateer.dir/perfmodel/PerfModel.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/perfmodel/PerfModel.cpp.o.d"
  "/root/repo/src/profiling/Profile.cpp" "src/CMakeFiles/privateer.dir/profiling/Profile.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/profiling/Profile.cpp.o.d"
  "/root/repo/src/profiling/ProfileCollector.cpp" "src/CMakeFiles/privateer.dir/profiling/ProfileCollector.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/profiling/ProfileCollector.cpp.o.d"
  "/root/repo/src/profiling/ProfileSerialization.cpp" "src/CMakeFiles/privateer.dir/profiling/ProfileSerialization.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/profiling/ProfileSerialization.cpp.o.d"
  "/root/repo/src/runtime/Checkpoint.cpp" "src/CMakeFiles/privateer.dir/runtime/Checkpoint.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/runtime/Checkpoint.cpp.o.d"
  "/root/repo/src/runtime/DeferredIO.cpp" "src/CMakeFiles/privateer.dir/runtime/DeferredIO.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/runtime/DeferredIO.cpp.o.d"
  "/root/repo/src/runtime/ParallelInvocation.cpp" "src/CMakeFiles/privateer.dir/runtime/ParallelInvocation.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/runtime/ParallelInvocation.cpp.o.d"
  "/root/repo/src/runtime/Reduction.cpp" "src/CMakeFiles/privateer.dir/runtime/Reduction.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/runtime/Reduction.cpp.o.d"
  "/root/repo/src/runtime/Runtime.cpp" "src/CMakeFiles/privateer.dir/runtime/Runtime.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/runtime/Runtime.cpp.o.d"
  "/root/repo/src/runtime/SharedHeap.cpp" "src/CMakeFiles/privateer.dir/runtime/SharedHeap.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/runtime/SharedHeap.cpp.o.d"
  "/root/repo/src/support/DeterministicRng.cpp" "src/CMakeFiles/privateer.dir/support/DeterministicRng.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/support/DeterministicRng.cpp.o.d"
  "/root/repo/src/support/ErrorHandling.cpp" "src/CMakeFiles/privateer.dir/support/ErrorHandling.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/support/ErrorHandling.cpp.o.d"
  "/root/repo/src/support/Statistics.cpp" "src/CMakeFiles/privateer.dir/support/Statistics.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/support/Statistics.cpp.o.d"
  "/root/repo/src/support/TableWriter.cpp" "src/CMakeFiles/privateer.dir/support/TableWriter.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/support/TableWriter.cpp.o.d"
  "/root/repo/src/transform/Pipeline.cpp" "src/CMakeFiles/privateer.dir/transform/Pipeline.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/transform/Pipeline.cpp.o.d"
  "/root/repo/src/transform/Privatizer.cpp" "src/CMakeFiles/privateer.dir/transform/Privatizer.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/transform/Privatizer.cpp.o.d"
  "/root/repo/src/workloads/Alvinn.cpp" "src/CMakeFiles/privateer.dir/workloads/Alvinn.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/workloads/Alvinn.cpp.o.d"
  "/root/repo/src/workloads/BlackScholes.cpp" "src/CMakeFiles/privateer.dir/workloads/BlackScholes.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/workloads/BlackScholes.cpp.o.d"
  "/root/repo/src/workloads/Dijkstra.cpp" "src/CMakeFiles/privateer.dir/workloads/Dijkstra.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/workloads/Dijkstra.cpp.o.d"
  "/root/repo/src/workloads/EncMd5.cpp" "src/CMakeFiles/privateer.dir/workloads/EncMd5.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/workloads/EncMd5.cpp.o.d"
  "/root/repo/src/workloads/IrPrograms.cpp" "src/CMakeFiles/privateer.dir/workloads/IrPrograms.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/workloads/IrPrograms.cpp.o.d"
  "/root/repo/src/workloads/Md5.cpp" "src/CMakeFiles/privateer.dir/workloads/Md5.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/workloads/Md5.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/CMakeFiles/privateer.dir/workloads/Registry.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/workloads/Registry.cpp.o.d"
  "/root/repo/src/workloads/Swaptions.cpp" "src/CMakeFiles/privateer.dir/workloads/Swaptions.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/workloads/Swaptions.cpp.o.d"
  "/root/repo/src/workloads/WorkloadDriver.cpp" "src/CMakeFiles/privateer.dir/workloads/WorkloadDriver.cpp.o" "gcc" "src/CMakeFiles/privateer.dir/workloads/WorkloadDriver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
