file(REMOVE_RECURSE
  "libprivateer.a"
)
