# Empty dependencies file for privateer.
# This may be replaced when dependencies are built.
