# Empty compiler generated dependencies file for privateer.
# This may be replaced when dependencies are built.
