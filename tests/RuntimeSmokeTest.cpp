//===- tests/RuntimeSmokeTest.cpp - End-to-end runtime smoke tests -------===//
//
// Exercises the full speculative pipeline on small synthetic loops: heap
// tagging, privatization, reductions, short-lived arenas, deferred output,
// misspeculation injection and recovery.
//
//===----------------------------------------------------------------------===//

#include "runtime/Privateer.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace privateer;

namespace {

class RuntimeSmokeTest : public ::testing::Test {
protected:
  void SetUp() override {
    RuntimeConfig C;
    C.PrivateBytes = 1u << 20;
    C.ReadOnlyBytes = 1u << 20;
    C.ReduxBytes = 1u << 20;
    C.ShortLivedBytes = 1u << 20;
    C.UnrestrictedBytes = 1u << 20;
    Runtime::get().initialize(C);
  }
  void TearDown() override { Runtime::get().shutdown(); }
};

TEST_F(RuntimeSmokeTest, AllocatedPointersCarryHeapTags) {
  for (HeapKind K : {HeapKind::ReadOnly, HeapKind::Private, HeapKind::Redux,
                     HeapKind::ShortLived, HeapKind::Unrestricted}) {
    void *P = h_alloc(64, K);
    ASSERT_NE(P, nullptr);
    EXPECT_TRUE(addressInHeap(reinterpret_cast<uint64_t>(P), K))
        << heapKindName(K);
    h_dealloc(P, K);
  }
}

TEST_F(RuntimeSmokeTest, PrivatizedLoopMatchesSequential) {
  constexpr uint64_t N = 200;
  constexpr int Width = 64;
  // A reuse-limited loop: every iteration scribbles over the same private
  // array, then publishes one live-out element per iteration.
  auto *Scratch =
      static_cast<int *>(h_alloc(Width * sizeof(int), HeapKind::Private));
  auto *Out =
      static_cast<long *>(h_alloc(N * sizeof(long), HeapKind::Private));

  auto Body = [&](uint64_t I) {
    Runtime &Rt = Runtime::get();
    for (int J = 0; J < Width; ++J) {
      private_write(&Scratch[J], sizeof(int));
      Scratch[J] = static_cast<int>(I) + J;
    }
    long Sum = 0;
    for (int J = 0; J < Width; ++J) {
      private_read(&Scratch[J], sizeof(int));
      Sum += Scratch[J];
    }
    private_write(&Out[I], sizeof(long));
    Out[I] = Sum;
    (void)Rt;
  };

  ParallelOptions Opt;
  Opt.NumWorkers = 4;
  Opt.CheckpointPeriod = 16;
  InvocationStats Stats = Runtime::get().runParallel(N, Opt, Body);

  EXPECT_EQ(Stats.Misspecs, 0u);
  EXPECT_GT(Stats.Checkpoints, 0u);
  for (uint64_t I = 0; I < N; ++I) {
    long Expect = 0;
    for (int J = 0; J < Width; ++J)
      Expect += static_cast<long>(I) + J;
    EXPECT_EQ(Out[I], Expect) << "iteration " << I;
  }
}

TEST_F(RuntimeSmokeTest, SumReductionAcrossWorkers) {
  constexpr uint64_t N = 500;
  auto *Acc = static_cast<long *>(h_alloc(sizeof(long), HeapKind::Redux));
  *Acc = 17; // Pre-loop live-in value must survive.
  Runtime::get().registerReduction(Acc, sizeof(long), ReduxElem::I64,
                                   ReduxOp::Add);

  ParallelOptions Opt;
  Opt.NumWorkers = 3;
  Opt.CheckpointPeriod = 32;
  InvocationStats Stats = Runtime::get().runParallel(
      N, Opt, [&](uint64_t I) { *Acc += static_cast<long>(I); });

  EXPECT_EQ(Stats.Misspecs, 0u);
  long Expect = 17 + static_cast<long>(N * (N - 1) / 2);
  EXPECT_EQ(*Acc, Expect);
}

TEST_F(RuntimeSmokeTest, ShortLivedObjectsRecycledPerIteration) {
  constexpr uint64_t N = 100;
  auto *Out =
      static_cast<long *>(h_alloc(N * sizeof(long), HeapKind::Private));
  auto Body = [&](uint64_t I) {
    auto *Node =
        static_cast<long *>(h_alloc(3 * sizeof(long), HeapKind::ShortLived));
    Node[0] = static_cast<long>(I);
    Node[1] = 2;
    Node[2] = Node[0] * Node[1];
    private_write(&Out[I], sizeof(long));
    Out[I] = Node[2];
    h_dealloc(Node, HeapKind::ShortLived);
  };
  ParallelOptions Opt;
  Opt.NumWorkers = 4;
  InvocationStats Stats = Runtime::get().runParallel(N, Opt, Body);
  EXPECT_EQ(Stats.Misspecs, 0u);
  for (uint64_t I = 0; I < N; ++I)
    EXPECT_EQ(Out[I], static_cast<long>(2 * I));
}

TEST_F(RuntimeSmokeTest, LeakedShortLivedObjectMisspeculatesAndRecovers) {
  constexpr uint64_t N = 60;
  auto *Out =
      static_cast<long *>(h_alloc(N * sizeof(long), HeapKind::Private));
  auto Body = [&](uint64_t I) {
    void *Node = h_alloc(16, HeapKind::ShortLived);
    private_write(&Out[I], sizeof(long));
    Out[I] = static_cast<long>(I);
    // Iteration 23 leaks its node: lifetime speculation fails there.
    if (I != 23)
      h_dealloc(Node, HeapKind::ShortLived);
  };
  ParallelOptions Opt;
  Opt.NumWorkers = 4;
  Opt.CheckpointPeriod = 8;
  InvocationStats Stats = Runtime::get().runParallel(N, Opt, Body);
  EXPECT_GE(Stats.Misspecs, 1u);
  // Recovery must still produce the exact sequential result.
  for (uint64_t I = 0; I < N; ++I)
    EXPECT_EQ(Out[I], static_cast<long>(I));
}

TEST_F(RuntimeSmokeTest, InjectedMisspeculationStillComputesExactResult) {
  constexpr uint64_t N = 300;
  auto *Out =
      static_cast<long *>(h_alloc(N * sizeof(long), HeapKind::Private));
  auto Body = [&](uint64_t I) {
    private_write(&Out[I], sizeof(long));
    Out[I] = static_cast<long>(I * I);
  };
  ParallelOptions Opt;
  Opt.NumWorkers = 4;
  Opt.CheckpointPeriod = 16;
  Opt.InjectMisspecRate = 0.05;
  InvocationStats Stats = Runtime::get().runParallel(N, Opt, Body);
  EXPECT_GE(Stats.Misspecs, 1u);
  EXPECT_GT(Stats.RecoveredIterations, 0u);
  for (uint64_t I = 0; I < N; ++I)
    EXPECT_EQ(Out[I], static_cast<long>(I * I));
}

TEST_F(RuntimeSmokeTest, GenuineLoopCarriedFlowIsDetected) {
  constexpr uint64_t N = 40;
  auto *Cell = static_cast<long *>(h_alloc(sizeof(long), HeapKind::Private));
  *Cell = 0;
  // A true recurrence: iteration I reads the value iteration I-1 wrote.
  // Privatization is unsound here; validation must catch it, and recovery
  // must still deliver the sequential answer.
  auto Body = [&](uint64_t I) {
    private_read(Cell, sizeof(long));
    long V = *Cell;
    private_write(Cell, sizeof(long));
    *Cell = V + static_cast<long>(I);
  };
  ParallelOptions Opt;
  Opt.NumWorkers = 4;
  Opt.CheckpointPeriod = 8;
  InvocationStats Stats = Runtime::get().runParallel(N, Opt, Body);
  EXPECT_GE(Stats.Misspecs, 1u);
  EXPECT_EQ(*Cell, static_cast<long>(N * (N - 1) / 2));
}

TEST_F(RuntimeSmokeTest, DeferredOutputCommitsInIterationOrder) {
  constexpr uint64_t N = 64;
  std::FILE *Tmp = std::tmpfile();
  ASSERT_NE(Tmp, nullptr);
  ParallelOptions Opt;
  Opt.NumWorkers = 4;
  Opt.CheckpointPeriod = 8;
  Opt.Out = Tmp;
  InvocationStats Stats = Runtime::get().runParallel(N, Opt, [&](uint64_t I) {
    Runtime::get().deferPrintf("iter %llu\n",
                               static_cast<unsigned long long>(I));
  });
  EXPECT_EQ(Stats.Misspecs, 0u);
  std::rewind(Tmp);
  char Line[64];
  for (uint64_t I = 0; I < N; ++I) {
    ASSERT_NE(std::fgets(Line, sizeof(Line), Tmp), nullptr) << "line " << I;
    char Expect[64];
    std::snprintf(Expect, sizeof(Expect), "iter %llu\n",
                  static_cast<unsigned long long>(I));
    EXPECT_STREQ(Line, Expect);
  }
  std::fclose(Tmp);
}

TEST_F(RuntimeSmokeTest, SeparationCheckCatchesWrongHeapPointer) {
  constexpr uint64_t N = 30;
  auto *Good = static_cast<long *>(h_alloc(sizeof(long), HeapKind::Private));
  auto *Wrong =
      static_cast<long *>(h_alloc(sizeof(long), HeapKind::Unrestricted));
  auto Body = [&](uint64_t I) {
    // Iteration 11's pointer computation escapes its assumed heap.
    long *P = (I == 11) ? Wrong : Good;
    check_heap(P, HeapKind::Private);
    private_write(Good, sizeof(long));
    *Good = static_cast<long>(I);
  };
  ParallelOptions Opt;
  Opt.NumWorkers = 4;
  Opt.CheckpointPeriod = 8;
  InvocationStats Stats = Runtime::get().runParallel(N, Opt, Body);
  EXPECT_GE(Stats.Misspecs, 1u);
  EXPECT_EQ(*Good, static_cast<long>(N - 1));
}

} // namespace
