//===- tests/ShadowMetadataTest.cpp - Table 2 property tests --------------===//
//
// Exhaustive and randomized validation of the shadow-metadata transition
// rules (paper Table 2) and of the word-at-a-time range fast paths, which
// must be observationally identical to the per-byte reference rules.
//
//===----------------------------------------------------------------------===//

#include "runtime/ShadowMetadata.h"
#include "support/DeterministicRng.h"

#include <gtest/gtest.h>

#include <vector>

using namespace privateer;
using namespace privateer::shadow;

namespace {

TEST(ShadowMetadata, Table2ReadRows) {
  uint8_t B = timestampFor(9, 0);
  uint8_t A = timestampFor(2, 0);
  // Read 0 -> 2.
  EXPECT_FALSE(applyRead(kLiveIn, B).Misspec);
  EXPECT_EQ(applyRead(kLiveIn, B).After, kReadLiveIn);
  // Read 1 -> misspec.
  EXPECT_TRUE(applyRead(kOldWrite, B).Misspec);
  // Read 2 -> 2.
  EXPECT_FALSE(applyRead(kReadLiveIn, B).Misspec);
  EXPECT_EQ(applyRead(kReadLiveIn, B).After, kReadLiveIn);
  // Read a (earlier) -> misspec.
  EXPECT_TRUE(applyRead(A, B).Misspec);
  // Read B -> B (intra-iteration flow).
  EXPECT_FALSE(applyRead(B, B).Misspec);
  EXPECT_EQ(applyRead(B, B).After, B);
}

TEST(ShadowMetadata, Table2WriteRows) {
  uint8_t B = timestampFor(9, 0);
  uint8_t A = timestampFor(2, 0);
  EXPECT_FALSE(applyWrite(kLiveIn, B).Misspec);
  EXPECT_EQ(applyWrite(kLiveIn, B).After, B);
  EXPECT_FALSE(applyWrite(kOldWrite, B).Misspec);
  EXPECT_EQ(applyWrite(kOldWrite, B).After, B);
  // Write to read-live-in: the conservative false positive.
  EXPECT_TRUE(applyWrite(kReadLiveIn, B).Misspec);
  EXPECT_FALSE(applyWrite(A, B).Misspec);
  EXPECT_EQ(applyWrite(A, B).After, B);
  EXPECT_FALSE(applyWrite(B, B).Misspec);
}

TEST(ShadowMetadata, TimestampEncodingAndPeriodCeiling) {
  EXPECT_EQ(timestampFor(0, 0), kFirstTimestamp);
  EXPECT_EQ(timestampFor(5, 3), kFirstTimestamp + 2);
  // The 253-iteration ceiling keeps the code within a byte.
  EXPECT_EQ(static_cast<unsigned>(
                timestampFor(kMaxCheckpointPeriod - 1, 0)),
            255u);
}

TEST(ShadowMetadata, ResetAgesWritesAndRevertsReads) {
  uint8_t B = timestampFor(7, 0);
  EXPECT_EQ(resetAtCheckpoint(B), kOldWrite);
  EXPECT_EQ(resetAtCheckpoint(kFirstTimestamp), kOldWrite);
  EXPECT_EQ(resetAtCheckpoint(kReadLiveIn), kLiveIn);
  EXPECT_EQ(resetAtCheckpoint(kLiveIn), kLiveIn);
  EXPECT_EQ(resetAtCheckpoint(kOldWrite), kOldWrite);
}

/// Per-byte reference implementations for the range fast paths.
bool refReadRange(std::vector<uint8_t> &Meta, uint8_t Ts) {
  for (uint8_t &M : Meta) {
    Transition T = applyRead(M, Ts);
    if (T.Misspec)
      return false;
    M = T.After;
  }
  return true;
}

bool refWriteRange(std::vector<uint8_t> &Meta, uint8_t Ts) {
  for (uint8_t &M : Meta) {
    Transition T = applyWrite(M, Ts);
    if (T.Misspec)
      return false;
    M = T.After;
  }
  return true;
}

class RangeFastPathProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RangeFastPathProperty, MatchesPerByteReference) {
  DeterministicRng Rng(GetParam());
  for (int Trial = 0; Trial < 200; ++Trial) {
    size_t N = 1 + Rng.nextBelow(70);
    size_t Pad = Rng.nextBelow(8); // Unaligned starts too.
    std::vector<uint8_t> A(N + Pad), B;
    for (size_t I = 0; I < A.size(); ++I) {
      // Bias toward the interesting codes.
      switch (Rng.nextBelow(6)) {
      case 0:
        A[I] = kLiveIn;
        break;
      case 1:
        A[I] = kOldWrite;
        break;
      case 2:
        A[I] = kReadLiveIn;
        break;
      default:
        A[I] = static_cast<uint8_t>(kFirstTimestamp + Rng.nextBelow(12));
      }
    }
    B = A;
    uint8_t Ts = static_cast<uint8_t>(kFirstTimestamp + Rng.nextBelow(12));
    bool IsRead = Rng.next() & 1;

    std::vector<uint8_t> RefSlice(A.begin() + Pad, A.end());
    bool RefOk = IsRead ? refReadRange(RefSlice, Ts)
                        : refWriteRange(RefSlice, Ts);
    bool FastOk = IsRead ? applyReadRange(B.data() + Pad, N, Ts)
                         : applyWriteRange(B.data() + Pad, N, Ts);
    ASSERT_EQ(FastOk, RefOk) << "trial " << Trial;
    if (RefOk) {
      // On success the resulting metadata must match byte for byte.
      for (size_t I = 0; I < N; ++I)
        ASSERT_EQ(B[Pad + I], RefSlice[I]) << "trial " << Trial << " byte "
                                           << I;
    }
    // Prefix bytes before the range must never be touched.
    for (size_t I = 0; I < Pad; ++I)
      ASSERT_EQ(B[I], A[I]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeFastPathProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(ShadowMetadata, ResetRangeMatchesPerByte) {
  DeterministicRng Rng(99);
  for (int Trial = 0; Trial < 100; ++Trial) {
    size_t N = 1 + Rng.nextBelow(100);
    std::vector<uint8_t> A(N), B;
    for (auto &V : A)
      V = static_cast<uint8_t>(Rng.nextBelow(256));
    B = A;
    resetRangeAtCheckpoint(B.data(), N);
    for (size_t I = 0; I < N; ++I)
      ASSERT_EQ(B[I], resetAtCheckpoint(A[I]));
  }
}

} // namespace
