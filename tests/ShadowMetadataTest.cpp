//===- tests/ShadowMetadataTest.cpp - Table 2 property tests --------------===//
//
// Exhaustive and randomized validation of the shadow-metadata transition
// rules (paper Table 2) and of the word-at-a-time range fast paths, which
// must be observationally identical to the per-byte reference rules.
//
//===----------------------------------------------------------------------===//

#include "runtime/ShadowMetadata.h"
#include "support/DeterministicRng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace privateer;
using namespace privateer::shadow;

namespace {

TEST(ShadowMetadata, Table2ReadRows) {
  uint8_t B = timestampFor(9, 0);
  uint8_t A = timestampFor(2, 0);
  // Read 0 -> 2.
  EXPECT_FALSE(applyRead(kLiveIn, B).Misspec);
  EXPECT_EQ(applyRead(kLiveIn, B).After, kReadLiveIn);
  // Read 1 -> misspec.
  EXPECT_TRUE(applyRead(kOldWrite, B).Misspec);
  // Read 2 -> 2.
  EXPECT_FALSE(applyRead(kReadLiveIn, B).Misspec);
  EXPECT_EQ(applyRead(kReadLiveIn, B).After, kReadLiveIn);
  // Read a (earlier) -> misspec.
  EXPECT_TRUE(applyRead(A, B).Misspec);
  // Read B -> B (intra-iteration flow).
  EXPECT_FALSE(applyRead(B, B).Misspec);
  EXPECT_EQ(applyRead(B, B).After, B);
}

TEST(ShadowMetadata, Table2WriteRows) {
  uint8_t B = timestampFor(9, 0);
  uint8_t A = timestampFor(2, 0);
  EXPECT_FALSE(applyWrite(kLiveIn, B).Misspec);
  EXPECT_EQ(applyWrite(kLiveIn, B).After, B);
  EXPECT_FALSE(applyWrite(kOldWrite, B).Misspec);
  EXPECT_EQ(applyWrite(kOldWrite, B).After, B);
  // Write to read-live-in: the conservative false positive.
  EXPECT_TRUE(applyWrite(kReadLiveIn, B).Misspec);
  EXPECT_FALSE(applyWrite(A, B).Misspec);
  EXPECT_EQ(applyWrite(A, B).After, B);
  EXPECT_FALSE(applyWrite(B, B).Misspec);
}

TEST(ShadowMetadata, TimestampEncodingAndPeriodCeiling) {
  EXPECT_EQ(timestampFor(0, 0), kFirstTimestamp);
  EXPECT_EQ(timestampFor(5, 3), kFirstTimestamp + 2);
  // The 253-iteration ceiling keeps the code within a byte.
  EXPECT_EQ(static_cast<unsigned>(
                timestampFor(kMaxCheckpointPeriod - 1, 0)),
            255u);
}

TEST(ShadowMetadata, ResetAgesWritesAndRevertsReads) {
  uint8_t B = timestampFor(7, 0);
  EXPECT_EQ(resetAtCheckpoint(B), kOldWrite);
  EXPECT_EQ(resetAtCheckpoint(kFirstTimestamp), kOldWrite);
  EXPECT_EQ(resetAtCheckpoint(kReadLiveIn), kLiveIn);
  EXPECT_EQ(resetAtCheckpoint(kLiveIn), kLiveIn);
  EXPECT_EQ(resetAtCheckpoint(kOldWrite), kOldWrite);
}

/// Per-byte reference implementations for the range fast paths.
bool refReadRange(std::vector<uint8_t> &Meta, uint8_t Ts) {
  for (uint8_t &M : Meta) {
    Transition T = applyRead(M, Ts);
    if (T.Misspec)
      return false;
    M = T.After;
  }
  return true;
}

bool refWriteRange(std::vector<uint8_t> &Meta, uint8_t Ts) {
  for (uint8_t &M : Meta) {
    Transition T = applyWrite(M, Ts);
    if (T.Misspec)
      return false;
    M = T.After;
  }
  return true;
}

class RangeFastPathProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RangeFastPathProperty, MatchesPerByteReference) {
  DeterministicRng Rng(GetParam());
  for (int Trial = 0; Trial < 200; ++Trial) {
    size_t N = 1 + Rng.nextBelow(70);
    size_t Pad = Rng.nextBelow(8); // Unaligned starts too.
    std::vector<uint8_t> A(N + Pad), B;
    for (size_t I = 0; I < A.size(); ++I) {
      // Bias toward the interesting codes.
      switch (Rng.nextBelow(6)) {
      case 0:
        A[I] = kLiveIn;
        break;
      case 1:
        A[I] = kOldWrite;
        break;
      case 2:
        A[I] = kReadLiveIn;
        break;
      default:
        A[I] = static_cast<uint8_t>(kFirstTimestamp + Rng.nextBelow(12));
      }
    }
    B = A;
    uint8_t Ts = static_cast<uint8_t>(kFirstTimestamp + Rng.nextBelow(12));
    bool IsRead = Rng.next() & 1;

    std::vector<uint8_t> RefSlice(A.begin() + Pad, A.end());
    bool RefOk = IsRead ? refReadRange(RefSlice, Ts)
                        : refWriteRange(RefSlice, Ts);
    bool FastOk = IsRead ? applyReadRange(B.data() + Pad, N, Ts)
                         : applyWriteRange(B.data() + Pad, N, Ts);
    ASSERT_EQ(FastOk, RefOk) << "trial " << Trial;
    if (RefOk) {
      // On success the resulting metadata must match byte for byte.
      for (size_t I = 0; I < N; ++I)
        ASSERT_EQ(B[Pad + I], RefSlice[I]) << "trial " << Trial << " byte "
                                           << I;
    }
    // Prefix bytes before the range must never be touched.
    for (size_t I = 0; I < Pad; ++I)
      ASSERT_EQ(B[I], A[I]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeFastPathProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- Word-boundary properties of the range fast paths ------------------
//
// The fast paths consume an unaligned head byte-by-byte, then whole
// aligned words, then a tail; the checkpoint merge loops lean on the same
// structure.  These tests pin the boundary behavior deterministically:
// every head alignment, mixed words straddling the head/tail seams, and a
// misspeculating byte planted inside a word the fast path would otherwise
// consume in one compare.

/// Fills [0, N) with a deterministic mix of every code class.
void fillMixed(uint8_t *Meta, size_t N, uint8_t Ts) {
  for (size_t I = 0; I < N; ++I) {
    switch (I % 5) {
    case 0:
      Meta[I] = kLiveIn;
      break;
    case 1:
      Meta[I] = kOldWrite;
      break;
    case 2:
      Meta[I] = kReadLiveIn;
      break;
    case 3:
      Meta[I] = Ts;
      break;
    default:
      Meta[I] = static_cast<uint8_t>(kFirstTimestamp + (I % 7));
    }
  }
}

TEST(ShadowMetadataBoundary, AllEightHeadAlignmentsMatchReference) {
  uint8_t Ts = timestampFor(5, 0);
  alignas(8) uint8_t Buf[96];
  for (size_t Pad = 0; Pad < 8; ++Pad) {
    for (size_t N : {size_t(1), size_t(7), size_t(8), size_t(9), size_t(15),
                     size_t(16), size_t(17), size_t(40)}) {
      for (bool IsRead : {true, false}) {
        std::memset(Buf, 0xEE, sizeof(Buf)); // Canary outside the range.
        // Only writable codes inside, so both paths succeed: live-in,
        // old-write (write-only rows handled below), current timestamp.
        for (size_t I = 0; I < N; ++I)
          Buf[Pad + I] = (I % 3 == 0) ? kLiveIn
                         : (I % 3 == 1 && !IsRead) ? kOldWrite
                                                   : Ts;
        std::vector<uint8_t> Ref(Buf + Pad, Buf + Pad + N);
        bool RefOk = IsRead ? refReadRange(Ref, Ts) : refWriteRange(Ref, Ts);
        bool FastOk = IsRead ? applyReadRange(Buf + Pad, N, Ts)
                             : applyWriteRange(Buf + Pad, N, Ts);
        ASSERT_TRUE(RefOk);
        ASSERT_EQ(FastOk, RefOk) << "pad " << Pad << " n " << N;
        for (size_t I = 0; I < N; ++I)
          ASSERT_EQ(Buf[Pad + I], Ref[I])
              << "pad " << Pad << " n " << N << " byte " << I;
        // The fast path must not touch a byte outside [Pad, Pad+N).
        for (size_t I = 0; I < Pad; ++I)
          ASSERT_EQ(Buf[I], 0xEE);
        for (size_t I = Pad + N; I < sizeof(Buf); ++I)
          ASSERT_EQ(Buf[I], 0xEE);
      }
    }
  }
}

TEST(ShadowMetadataBoundary, MixedWordsStraddlingHeadAndTailMatchReference) {
  // Layout: unaligned mixed head, one uniform fast-path word, a mixed
  // word, another uniform word, then a mixed partial tail — so the loop
  // transitions head->fast->slow->fast->tail in one invocation.
  uint8_t Ts = timestampFor(9, 0);
  for (size_t Pad = 1; Pad < 8; ++Pad) {
    alignas(8) uint8_t Buf[64];
    size_t N = 8 - Pad /*head*/ + 8 + 8 + 8 + 5 /*tail*/;
    fillMixed(Buf + Pad, N, Ts);
    // Second full word uniform all-live-in (fast), third mixed (slow).
    size_t W0 = 8; // First aligned offset in Buf.
    std::memset(Buf + W0, kLiveIn, 8);
    fillMixed(Buf + W0 + 8, 8, Ts);
    std::memset(Buf + W0 + 16, kLiveIn, 8);

    std::vector<uint8_t> RefBuf(Buf, Buf + sizeof(Buf));
    // Each direction rejects some codes; patch those out so the success
    // path is exercised across every seam in one invocation.
    for (bool IsRead : {true, false}) {
      std::vector<uint8_t> A(RefBuf);
      std::vector<uint8_t> R;
      if (IsRead) {
        // Reads misspeculate on old-write and stale timestamps: keep only
        // live-in / read-live-in / current-Ts bytes.
        for (size_t I = 0; I < N; ++I)
          if (A[Pad + I] == kOldWrite || (isTimestamp(A[Pad + I]) &&
                                          A[Pad + I] != Ts))
            A[Pad + I] = kReadLiveIn;
      } else {
        for (size_t I = 0; I < N; ++I)
          if (A[Pad + I] == kReadLiveIn)
            A[Pad + I] = kOldWrite;
      }
      R.assign(A.begin() + Pad, A.begin() + Pad + N);
      bool RefOk = IsRead ? refReadRange(R, Ts) : refWriteRange(R, Ts);
      ASSERT_TRUE(RefOk);
      bool FastOk = IsRead ? applyReadRange(A.data() + Pad, N, Ts)
                           : applyWriteRange(A.data() + Pad, N, Ts);
      ASSERT_TRUE(FastOk) << "pad " << Pad;
      for (size_t I = 0; I < N; ++I)
        ASSERT_EQ(A[Pad + I], R[I]) << "pad " << Pad << " byte " << I;
    }
  }
}

TEST(ShadowMetadataBoundary, MisspecByteInsideFastPathWordIsCaught) {
  // A word that is uniform except for one misspeculating byte must not be
  // consumed by the whole-word compare; the per-byte fallback has to stop
  // exactly where the reference stops, leaving identical partial state.
  uint8_t Ts = timestampFor(4, 0);
  for (size_t Bad = 0; Bad < 8; ++Bad) {
    for (bool IsRead : {true, false}) {
      alignas(8) uint8_t Buf[24];
      std::memset(Buf, kLiveIn, sizeof(Buf));
      // Word 1 carries the poison byte; words 0 and 2 are fast-path.
      Buf[8 + Bad] = IsRead ? kOldWrite : kReadLiveIn;
      std::vector<uint8_t> Ref(Buf, Buf + sizeof(Buf));

      bool FastOk = IsRead ? applyReadRange(Buf, sizeof(Buf), Ts)
                           : applyWriteRange(Buf, sizeof(Buf), Ts);
      std::vector<uint8_t> R(Ref);
      bool RefOk = IsRead ? refReadRange(R, Ts) : refWriteRange(R, Ts);
      EXPECT_FALSE(FastOk) << "bad byte " << Bad;
      EXPECT_FALSE(RefOk);
      // Both stop at the poison byte; everything before it transitioned,
      // everything at and after it is untouched.
      std::vector<uint8_t> Expect(Ref);
      for (size_t I = 0; I < 8 + Bad; ++I)
        Expect[I] = IsRead ? applyRead(Ref[I], Ts).After
                           : applyWrite(Ref[I], Ts).After;
      for (size_t I = 0; I < sizeof(Buf); ++I)
        ASSERT_EQ(Buf[I], Expect[I])
            << (IsRead ? "read" : "write") << " bad " << Bad << " byte "
            << I;
    }
  }
}

TEST(ShadowMetadata, ResetRangeMatchesPerByte) {
  DeterministicRng Rng(99);
  for (int Trial = 0; Trial < 100; ++Trial) {
    size_t N = 1 + Rng.nextBelow(100);
    std::vector<uint8_t> A(N), B;
    for (auto &V : A)
      V = static_cast<uint8_t>(Rng.nextBelow(256));
    B = A;
    resetRangeAtCheckpoint(B.data(), N);
    for (size_t I = 0; I < N; ++I)
      ASSERT_EQ(B[I], resetAtCheckpoint(A[I]));
  }
}

} // namespace
