//===- tests/TraceTest.cpp - Runtime tracing tests ------------------------===//
//
// Unit tests for the SPSC trace ring (overflow accounting, wraparound,
// no-tearing under a concurrent producer) and an end-to-end smoke test
// that traces a speculative parallel run of the reduction workload and
// checks the emitted Chrome-trace JSON is loadable and contains the
// kinds of events a timeline is useless without.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "runtime/Privateer.h"
#include "support/Statistics.h"
#include "transform/Pipeline.h"
#include "workloads/IrPrograms.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/wait.h>

using namespace privateer;

namespace {

// Self-consistent payload so a consumer can detect a torn record: every
// field is a fixed function of the sequence number.
trace::Event sealedEvent(uint64_t Seq) {
  return trace::makeEvent(trace::Kind::Heartbeat, 3, /*TimeNs=*/Seq,
                          /*A=*/Seq * 0x9E3779B97F4A7C15ULL,
                          /*B=*/Seq ^ 0xDEADBEEFCAFEF00DULL,
                          /*Arg=*/static_cast<uint32_t>(Seq * 2654435761u));
}

::testing::AssertionResult eventIsSealed(const trace::Event &E) {
  uint64_t Seq = E.TimeNs;
  if (E.A != Seq * 0x9E3779B97F4A7C15ULL)
    return ::testing::AssertionFailure() << "torn A at seq " << Seq;
  if (E.B != (Seq ^ 0xDEADBEEFCAFEF00DULL))
    return ::testing::AssertionFailure() << "torn B at seq " << Seq;
  if (E.Arg != static_cast<uint32_t>(Seq * 2654435761u))
    return ::testing::AssertionFailure() << "torn Arg at seq " << Seq;
  if (E.KindCode != static_cast<uint16_t>(trace::Kind::Heartbeat) ||
      E.Worker != 3)
    return ::testing::AssertionFailure() << "torn kind/worker at seq " << Seq;
  return ::testing::AssertionSuccess();
}

TEST(TraceRing, OverflowCountsDropsWithoutCorruptingEarlierEvents) {
  auto R = std::make_unique<trace::Ring>(); // 64 KiB: keep off the stack.
  // Fill to capacity: every push lands.
  for (uint64_t I = 0; I < trace::kRingCapacity; ++I)
    ASSERT_TRUE(R->push(sealedEvent(I))) << I;
  EXPECT_EQ(R->size(), trace::kRingCapacity);
  EXPECT_EQ(R->dropped(), 0u);

  // 100 more: all dropped, counted, and the resident events untouched.
  for (uint64_t I = 0; I < 100; ++I)
    EXPECT_FALSE(R->push(sealedEvent(trace::kRingCapacity + I)));
  EXPECT_EQ(R->dropped(), 100u);
  EXPECT_EQ(R->size(), trace::kRingCapacity);

  uint64_t Next = 0;
  uint32_t Seen = R->drain([&](const trace::Event &E) {
    EXPECT_TRUE(eventIsSealed(E));
    EXPECT_EQ(E.TimeNs, Next) << "order violated or overflow overwrote";
    ++Next;
  });
  EXPECT_EQ(Seen, trace::kRingCapacity);
  EXPECT_EQ(R->size(), 0u);
  // The drop counter is cumulative; draining does not reset it.
  EXPECT_EQ(R->dropped(), 100u);
}

TEST(TraceRing, WrapAroundPreservesOrderAcrossManyCycles) {
  auto R = std::make_unique<trace::Ring>();
  uint64_t Pushed = 0, Expect = 0;
  // Push/drain in ragged batches for several multiples of the capacity so
  // the cursors wrap the index mask repeatedly.
  for (int Round = 0; Round < 23; ++Round) {
    uint64_t Batch = 1 + (100 + 997 * Round) % trace::kRingCapacity;
    for (uint64_t I = 0; I < Batch; ++I)
      ASSERT_TRUE(R->push(sealedEvent(Pushed++)));
    R->drain([&](const trace::Event &E) {
      ASSERT_TRUE(eventIsSealed(E));
      ASSERT_EQ(E.TimeNs, Expect);
      ++Expect;
    });
  }
  EXPECT_EQ(Expect, Pushed);
  EXPECT_EQ(R->dropped(), 0u);
}

TEST(TraceRing, ConcurrentProducerNeverTearsARecord) {
  // In production the producer is a forked process and the ring lives in
  // MAP_SHARED memory; a thread exercises the same acquire/release
  // protocol through genuinely concurrent memory accesses.
  auto R = std::make_unique<trace::Ring>();
  constexpr uint64_t kTotal = 200000;
  std::atomic<bool> Done{false};

  std::thread Producer([&] {
    for (uint64_t I = 0; I < kTotal; ++I)
      R->push(sealedEvent(I)); // Overflow drops are fine; tearing is not.
    Done.store(true, std::memory_order_release);
  });

  uint64_t Consumed = 0;
  uint64_t LastSeq = 0;
  bool First = true;
  auto Visit = [&](const trace::Event &E) {
    ASSERT_TRUE(eventIsSealed(E));
    if (!First)
      ASSERT_GT(E.TimeNs, LastSeq) << "sequence must strictly increase";
    First = false;
    LastSeq = E.TimeNs;
    ++Consumed;
  };
  while (!Done.load(std::memory_order_acquire))
    R->drain(Visit);
  R->drain(Visit); // Final sweep after the producer finished.

  Producer.join();
  EXPECT_EQ(Consumed + R->dropped(), kTotal);
  EXPECT_GT(Consumed, 0u);
}

// --- Collector + end-to-end traced run ----------------------------------

std::string readWholeFile(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

std::string readAll(std::FILE *F) {
  std::string Out;
  std::rewind(F);
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  return Out;
}

bool haveCommand(const char *Probe) {
  int Rc = std::system(Probe);
  return Rc != -1 && WIFEXITED(Rc) && WEXITSTATUS(Rc) == 0;
}

TEST(TraceCollector, FlushWritesValidJsonWithSpansAndInstants) {
  trace::Collector &Tc = trace::Collector::instance();
  std::string Path = ::testing::TempDir() + "privateer-collector-unit.json";
  Tc.enable(Path);
  Tc.reset();

  // One span, one instant, one note needing JSON escaping.
  Tc.record(trace::Kind::Epoch, 0, 2000, /*A=start*/ 1000, 7, 2);
  Tc.record(trace::Kind::Misspec, 2, 1500, 42, 1,
            (uint32_t)trace::Reason::Injected, "quote \" slash \\ tab \t");
  EXPECT_EQ(Tc.eventCount(), 2u);

  std::string Err;
  ASSERT_TRUE(Tc.flush(Err)) << Err;
  Tc.enable(std::string()); // Disarm before other tests run.

  std::string Json = readWholeFile(Path);
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"epoch\""), std::string::npos);
  EXPECT_NE(Json.find("\"misspec\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos); // Epoch span.
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos); // Misspec instant.
  EXPECT_NE(Json.find("injected"), std::string::npos);     // Reason name.
  EXPECT_NE(Json.find("\\\""), std::string::npos);         // Escaped quote.
  EXPECT_NE(Json.find("\\t"), std::string::npos);          // Escaped tab.

  if (haveCommand("python3 -c '' > /dev/null 2>&1")) {
    std::string Cmd = "python3 -m json.tool < " + Path + " > /dev/null";
    int Rc = std::system(Cmd.c_str());
    EXPECT_TRUE(WIFEXITED(Rc) && WEXITSTATUS(Rc) == 0)
        << "python3 -m json.tool rejected " << Path;
  }
  std::remove(Path.c_str());
}

TEST(TraceSmoke, TracedParallelRunEmitsLoadableTimeline) {
  // Trace a speculative run of the reduction workload — long enough to
  // produce checkpoints and commits — with deterministic misspeculation
  // injection so the timeline has every load-bearing event kind.
  std::string TracePath = ::testing::TempDir() + "privateer-trace-smoke.json";
  std::remove(TracePath.c_str());

  std::string Text = reductionSumIrText(1000);
  std::string Err;

  // Reference output from plain sequential interpretation.
  std::string Expected;
  {
    auto M = ir::parseModule(Text, Err);
    ASSERT_NE(M, nullptr) << Err;
    std::FILE *Out = std::tmpfile();
    transform::executeSequential(*M, transform::PipelineOptions(), Out);
    Expected = readAll(Out);
    std::fclose(Out);
  }

  auto M = ir::parseModule(Text, Err);
  ASSERT_NE(M, nullptr) << Err;
  ASSERT_TRUE(ir::verifyModule(*M).empty());
  analysis::FunctionAnalyses FA(*M);
  transform::PipelineOptions Opt;
  std::FILE *TrainSink = std::tmpfile();
  Runtime::get().setSequentialOutput(TrainSink);
  transform::PipelineResult R = transform::runPrivateerPipeline(*M, FA, Opt);
  Runtime::get().setSequentialOutput(nullptr);
  std::fclose(TrainSink);
  ASSERT_TRUE(R.Transformed) << (R.Log.empty() ? "" : R.Log.back());

  ParallelOptions Par;
  Par.NumWorkers = 4;
  Par.CheckpointPeriod = 16;
  Par.InjectMisspecRate = 0.01;
  Par.InjectSeed = 7;
  Par.TracePath = TracePath;

  std::FILE *Out = std::tmpfile();
  transform::ExecutionResult E = transform::executePrivatized(
      *M, FA, R.Assignment, Opt, Par, RuntimeConfig(), Out);
  std::string Got = readAll(Out);
  std::fclose(Out);

  // Tracing must not perturb results.
  EXPECT_EQ(Got, Expected);
  ASSERT_GT(E.Stats.Misspecs, 0u)
      << "injection produced no misspec; the timeline check below would "
         "be vacuous";
  ASSERT_GT(E.Stats.Checkpoints, 0u);

  std::string Json = readWholeFile(TracePath);
  ASSERT_FALSE(Json.empty()) << "trace file missing: " << TracePath;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"displayTimeUnit\""), std::string::npos);
  // The timeline is useless without these; assert each kind appears.
  EXPECT_NE(Json.find("\"epoch\""), std::string::npos);
  EXPECT_NE(Json.find("\"slot_merge\""), std::string::npos);
  EXPECT_NE(Json.find("\"commit_"), std::string::npos);
  EXPECT_NE(Json.find("\"misspec\""), std::string::npos);
  EXPECT_NE(Json.find("\"worker_fork\""), std::string::npos);
  EXPECT_NE(Json.find("\"invocation\""), std::string::npos);
  // Process-name metadata rows for the main process and worker 0.
  EXPECT_NE(Json.find("main (commit pump)"), std::string::npos);
  EXPECT_NE(Json.find("worker 0"), std::string::npos);

  // Aggregate counts mirrored into the statistic registry.
  StatisticRegistry &Sr = StatisticRegistry::instance();
  EXPECT_GT(Sr.counter("trace", "epoch"), 0u);
  EXPECT_GT(Sr.counter("trace", "slot_merge"), 0u);
  EXPECT_GT(Sr.counter("trace", "misspec"), 0u);

  if (haveCommand("python3 -c '' > /dev/null 2>&1")) {
    std::string Cmd = "python3 -m json.tool < " + TracePath + " > /dev/null";
    int Rc = std::system(Cmd.c_str());
    EXPECT_TRUE(WIFEXITED(Rc) && WEXITSTATUS(Rc) == 0)
        << "python3 -m json.tool rejected " << TracePath;
  }

  trace::Collector::instance().enable(std::string()); // Disarm.
  std::remove(TracePath.c_str());
}

TEST(TraceSmoke, UntracedRunRecordsNoTimeline) {
  trace::Collector &Tc = trace::Collector::instance();
  Tc.enable(std::string());
  Tc.reset();
  std::string Text = reductionSumIrText(200);
  std::string Err;
  auto M = ir::parseModule(Text, Err);
  ASSERT_NE(M, nullptr) << Err;
  analysis::FunctionAnalyses FA(*M);
  transform::PipelineOptions Opt;
  std::FILE *TrainSink = std::tmpfile();
  Runtime::get().setSequentialOutput(TrainSink);
  transform::PipelineResult R = transform::runPrivateerPipeline(*M, FA, Opt);
  Runtime::get().setSequentialOutput(nullptr);
  std::fclose(TrainSink);
  ASSERT_TRUE(R.Transformed);

  ParallelOptions Par;
  Par.NumWorkers = 2;
  Par.CheckpointPeriod = 16; // TracePath left empty: tracing fully off.
  std::FILE *Out = std::tmpfile();
  transform::executePrivatized(*M, FA, R.Assignment, Opt, Par,
                               RuntimeConfig(), Out);
  std::fclose(Out);

  EXPECT_FALSE(Tc.enabled());
  EXPECT_EQ(Tc.eventCount(), 0u);
}

TEST(TraceSmoke, StagedRunEmitsStageBoundaryEvents) {
  // A traced pipeline run must land stage_pass spans (one per stage per
  // checkpoint period) and dep_post instants on the timeline, so stage
  // skew and fill/drain are visible per worker row.
  std::string TracePath = ::testing::TempDir() + "privateer-trace-staged.json";
  std::remove(TracePath.c_str());

  RuntimeConfig C;
  C.PrivateBytes = 1u << 20;
  C.ReadOnlyBytes = 1u << 16;
  C.ReduxBytes = 1u << 16;
  C.ShortLivedBytes = 1u << 16;
  C.UnrestrictedBytes = 1u << 16;
  Runtime::get().initialize(C);

  constexpr uint64_t N = 128;
  auto *Out =
      static_cast<long *>(h_alloc(N * sizeof(long), HeapKind::Private));
  ParallelOptions Par;
  Par.NumWorkers = 3;
  Par.NumStages = 3;
  Par.CheckpointPeriod = 8;
  Par.TracePath = TracePath;
  InvocationStats S = Runtime::get().runParallelStaged(
      N, Par, [Out](uint64_t I, uint32_t St, uint64_t In) -> uint64_t {
        if (St == 0)
          return I + 3;
        if (St == 1)
          return In * 5;
        private_write(&Out[I], sizeof(long));
        Out[I] = static_cast<long>(In);
        return In;
      });
  EXPECT_EQ(S.Misspecs, 0u) << S.FirstMisspecReason;
  for (uint64_t I = 0; I < N; ++I)
    ASSERT_EQ(Out[I], static_cast<long>((I + 3) * 5)) << "iteration " << I;

  std::string Json = readWholeFile(TracePath);
  ASSERT_FALSE(Json.empty()) << "trace file missing: " << TracePath;
  EXPECT_NE(Json.find("\"stage_pass\""), std::string::npos);
  EXPECT_NE(Json.find("\"dep_post\""), std::string::npos);
  StatisticRegistry &Sr = StatisticRegistry::instance();
  EXPECT_GT(Sr.counter("trace", "stage_pass"), 0u);
  EXPECT_GT(Sr.counter("trace", "dep_post"), 0u);

  trace::Collector::instance().enable(std::string()); // Disarm.
  Runtime::get().shutdown();
  std::remove(TracePath.c_str());
}

} // namespace
