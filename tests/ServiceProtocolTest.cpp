//===- tests/ServiceProtocolTest.cpp - Wire-protocol robustness -----------===//
//
// The invocation service's length-prefixed binary protocol: field-level
// round trips, bounds-checked decoding of truncated bodies, incremental
// frame reassembly, and — against a live forked daemon — the requirement
// that junk bytes, oversized length prefixes, and truncated frames get
// the offending connection dropped with a clean error while every other
// client keeps being served.
//
//===----------------------------------------------------------------------===//

#include "ServiceTestUtil.h"
#include "runtime/Runtime.h"
#include "service/Client.h"
#include "service/Protocol.h"
#include "service/Server.h"
#include "workloads/IrPrograms.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/un.h>
#include <unistd.h>

using namespace privateer;
using namespace privateer::service;
using namespace privateer::servicetest;

namespace {

JobRequest sampleRequest() {
  JobRequest R;
  R.ModuleText = "func @main() {\n}\n";
  R.Mode = JobMode::Sequential;
  R.Engine = 1;
  R.NumWorkers = 7;
  R.CheckpointPeriod = 48;
  R.MaxSlotsPerEpoch = 12;
  R.InjectMisspecRate = 0.125;
  R.InjectSeed = 42;
  R.EagerCommit = false;
  R.StallTimeoutSec = 2.5;
  R.DeadlineSec = 9.75;
  R.TracePath = "/tmp/trace.json";
  R.FaultKillSupervisor = true;
  R.FaultKillWorker = 3;
  R.FaultKillAtIter = 1234567;
  R.FaultStallWorker = 1;
  R.FaultStallAtIter = 89;
  R.FaultStallSeconds = 6.5;
  R.FaultKillRate = 0.001;
  R.FaultSeed = 99;
  R.IdempotencyKey = 0xdeadbeefcafef00dULL;
  R.MaxMemoryBytes = 3ULL << 30;
  R.MaxCpuSec = 17;
  R.MaxOpenFiles = 256;
  R.FaultSupervisorSignal = 11;
  R.FaultSupervisorExit = 42;
  R.FaultOomAttempts = 2;
  R.FaultAllocBytes = 1ULL << 47;
  R.FaultBurnCpuSec = 0.75;
  R.TenantId = "tenant-42";
  R.Submit = static_cast<uint8_t>(SubmitMode::InBand);
  R.Strat = static_cast<uint8_t>(Strategy::Pipeline);
  R.NumStages = 5;
  return R;
}

JobReply sampleReply() {
  JobReply R;
  R.Status = JobStatus::Ok;
  R.Cause = FailureCause::CpuLimit;
  R.TermSignal = 24;
  R.SupExitCode = 3;
  R.Attempts = 2;
  R.IdempotentReplay = true;
  R.Error = "none";
  R.Output = std::string("line1\nline2\n\0binary", 19);
  R.ExitValue = -77;
  R.CacheHit = true;
  R.Iterations = 1000;
  R.Checkpoints = 31;
  R.Misspecs = 2;
  R.RecoveredIterations = 64;
  R.MisspecReason = "private_read of unwritten byte";
  R.PipelineSec = 0.25;
  R.ExecSec = 1.5;
  R.QueueSec = 0.0625;
  R.WallSec = 1.8125;
  return R;
}

TEST(ServiceProtocol, JobRequestRoundTrip) {
  JobRequest In = sampleRequest();
  std::string Body = encodeJobRequest(In);
  JobRequest Out;
  std::string Err;
  ASSERT_TRUE(decodeJobRequest(Body, Out, Err)) << Err;
  EXPECT_EQ(Out.ModuleText, In.ModuleText);
  EXPECT_EQ(Out.Mode, In.Mode);
  EXPECT_EQ(Out.Engine, In.Engine);
  EXPECT_EQ(Out.NumWorkers, In.NumWorkers);
  EXPECT_EQ(Out.CheckpointPeriod, In.CheckpointPeriod);
  EXPECT_EQ(Out.MaxSlotsPerEpoch, In.MaxSlotsPerEpoch);
  EXPECT_DOUBLE_EQ(Out.InjectMisspecRate, In.InjectMisspecRate);
  EXPECT_EQ(Out.InjectSeed, In.InjectSeed);
  EXPECT_EQ(Out.EagerCommit, In.EagerCommit);
  EXPECT_DOUBLE_EQ(Out.StallTimeoutSec, In.StallTimeoutSec);
  EXPECT_DOUBLE_EQ(Out.DeadlineSec, In.DeadlineSec);
  EXPECT_EQ(Out.TracePath, In.TracePath);
  EXPECT_EQ(Out.FaultKillSupervisor, In.FaultKillSupervisor);
  EXPECT_EQ(Out.FaultKillWorker, In.FaultKillWorker);
  EXPECT_EQ(Out.FaultKillAtIter, In.FaultKillAtIter);
  EXPECT_EQ(Out.FaultStallWorker, In.FaultStallWorker);
  EXPECT_EQ(Out.FaultStallAtIter, In.FaultStallAtIter);
  EXPECT_DOUBLE_EQ(Out.FaultStallSeconds, In.FaultStallSeconds);
  EXPECT_DOUBLE_EQ(Out.FaultKillRate, In.FaultKillRate);
  EXPECT_EQ(Out.FaultSeed, In.FaultSeed);
  EXPECT_EQ(Out.IdempotencyKey, In.IdempotencyKey);
  EXPECT_EQ(Out.MaxMemoryBytes, In.MaxMemoryBytes);
  EXPECT_EQ(Out.MaxCpuSec, In.MaxCpuSec);
  EXPECT_EQ(Out.MaxOpenFiles, In.MaxOpenFiles);
  EXPECT_EQ(Out.FaultSupervisorSignal, In.FaultSupervisorSignal);
  EXPECT_EQ(Out.FaultSupervisorExit, In.FaultSupervisorExit);
  EXPECT_EQ(Out.FaultOomAttempts, In.FaultOomAttempts);
  EXPECT_EQ(Out.FaultAllocBytes, In.FaultAllocBytes);
  EXPECT_DOUBLE_EQ(Out.FaultBurnCpuSec, In.FaultBurnCpuSec);
  EXPECT_EQ(Out.TenantId, In.TenantId);
  EXPECT_EQ(Out.Submit, In.Submit);
  EXPECT_EQ(Out.Strat, In.Strat);
  EXPECT_EQ(Out.NumStages, In.NumStages);
}

// A strategy byte beyond the defined enum must not pass validation.
TEST(ServiceProtocol, BadStrategyByteRejected) {
  JobRequest In = sampleRequest();
  In.Strat = static_cast<uint8_t>(Strategy::Pipeline) + 1;
  std::string Body = encodeJobRequest(In);
  JobRequest Out;
  std::string Err;
  EXPECT_FALSE(decodeJobRequest(Body, Out, Err));
  EXPECT_NE(Err.find("strategy"), std::string::npos) << Err;
}

TEST(ServiceProtocol, JobReplyRoundTrip) {
  JobReply In = sampleReply();
  std::string Body = encodeJobReply(In);
  JobReply Out;
  std::string Err;
  ASSERT_TRUE(decodeJobReply(Body, Out, Err)) << Err;
  EXPECT_EQ(Out.Status, In.Status);
  EXPECT_EQ(Out.Cause, In.Cause);
  EXPECT_EQ(Out.TermSignal, In.TermSignal);
  EXPECT_EQ(Out.SupExitCode, In.SupExitCode);
  EXPECT_EQ(Out.Attempts, In.Attempts);
  EXPECT_EQ(Out.IdempotentReplay, In.IdempotentReplay);
  EXPECT_EQ(Out.Error, In.Error);
  EXPECT_EQ(Out.Output, In.Output);
  EXPECT_EQ(Out.ExitValue, In.ExitValue);
  EXPECT_EQ(Out.CacheHit, In.CacheHit);
  EXPECT_EQ(Out.Iterations, In.Iterations);
  EXPECT_EQ(Out.Checkpoints, In.Checkpoints);
  EXPECT_EQ(Out.Misspecs, In.Misspecs);
  EXPECT_EQ(Out.RecoveredIterations, In.RecoveredIterations);
  EXPECT_EQ(Out.MisspecReason, In.MisspecReason);
  EXPECT_DOUBLE_EQ(Out.PipelineSec, In.PipelineSec);
  EXPECT_DOUBLE_EQ(Out.ExecSec, In.ExecSec);
  EXPECT_DOUBLE_EQ(Out.QueueSec, In.QueueSec);
  EXPECT_DOUBLE_EQ(Out.WallSec, In.WallSec);
}

// Every strict prefix of a valid body must decode to a clean error — the
// cursor is bounds-checked, never out-of-range.
TEST(ServiceProtocol, TruncatedBodiesRejected) {
  std::string Req = encodeJobRequest(sampleRequest());
  for (size_t Len = 0; Len < Req.size(); ++Len) {
    JobRequest Out;
    std::string Err;
    EXPECT_FALSE(decodeJobRequest(Req.substr(0, Len), Out, Err))
        << "prefix of " << Len << " bytes decoded";
    EXPECT_FALSE(Err.empty());
  }
  std::string Rep = encodeJobReply(sampleReply());
  for (size_t Len = 0; Len < Rep.size(); ++Len) {
    JobReply Out;
    std::string Err;
    EXPECT_FALSE(decodeJobReply(Rep.substr(0, Len), Out, Err))
        << "prefix of " << Len << " bytes decoded";
  }
}

// A string field whose length prefix points past the end of the body must
// not be honored.
TEST(ServiceProtocol, LyingStringLengthRejected) {
  std::string Body;
  Body.push_back(static_cast<char>(kProtocolVersion));
  // ModuleText claims 1 GiB but carries 3 bytes.
  uint32_t Lie = 1u << 30;
  for (int I = 0; I < 4; ++I)
    Body.push_back(static_cast<char>((Lie >> (8 * I)) & 0xff));
  Body += "abc";
  JobRequest Out;
  std::string Err;
  EXPECT_FALSE(decodeJobRequest(Body, Out, Err));
}

TEST(ServiceProtocol, AssemblerReassemblesByteByByte) {
  std::string Payload = "\x02" + encodeJobReply(sampleReply());
  std::string Frame;
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I < 4; ++I)
    Frame.push_back(static_cast<char>((Len >> (8 * I)) & 0xff));
  Frame += Payload;

  FrameAssembler A;
  MsgType Type;
  std::string Body, Err;
  for (size_t I = 0; I + 1 < Frame.size(); ++I) {
    A.feed(&Frame[I], 1);
    EXPECT_EQ(A.next(Type, Body, Err), FrameAssembler::Result::NeedMore);
  }
  A.feed(&Frame[Frame.size() - 1], 1);
  ASSERT_EQ(A.next(Type, Body, Err), FrameAssembler::Result::Frame);
  EXPECT_EQ(Type, MsgType::JobResult);
  JobReply Out;
  ASSERT_TRUE(decodeJobReply(Body, Out, Err)) << Err;
  EXPECT_EQ(Out.Output, sampleReply().Output);
  // Nothing left over.
  EXPECT_EQ(A.next(Type, Body, Err), FrameAssembler::Result::NeedMore);
  EXPECT_EQ(A.buffered(), 0u);
}

TEST(ServiceProtocol, AssemblerRejectsBadLengthPrefixes) {
  {
    FrameAssembler A;
    const char Zero[4] = {0, 0, 0, 0};
    A.feed(Zero, 4);
    MsgType T;
    std::string B, E;
    EXPECT_EQ(A.next(T, B, E), FrameAssembler::Result::Malformed);
  }
  {
    FrameAssembler A;
    const char Huge[4] = {'\xff', '\xff', '\xff', '\xff'};
    A.feed(Huge, 4);
    MsgType T;
    std::string B, E;
    EXPECT_EQ(A.next(T, B, E), FrameAssembler::Result::Malformed);
    EXPECT_NE(E.find("length"), std::string::npos);
  }
}

// --- Live-daemon robustness ----------------------------------------------

int rawConnect(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Sends raw bytes and returns true once the daemon closes the
/// connection (EOF after at most a courtesy Error frame).
bool sendJunkAndExpectClose(const std::string &Socket, const void *Bytes,
                            size_t Len) {
  int Fd = rawConnect(Socket);
  if (Fd < 0)
    return false;
  ::signal(SIGPIPE, SIG_IGN);
  (void)!::write(Fd, Bytes, Len);
  char Buf[4096];
  double Deadline = wallSeconds() + 10 * timeoutScale();
  bool Closed = false;
  while (wallSeconds() < Deadline) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N == 0) {
      Closed = true;
      break;
    }
    if (N < 0 && errno != EINTR && errno != EAGAIN) {
      Closed = true; // reset counts as closed
      break;
    }
  }
  ::close(Fd);
  return Closed;
}

TEST(ServiceProtocol, DaemonSurvivesGarbageAndKeepsServing) {
  ServerOptions Opts;
  Opts.SocketPath = uniqueSocketPath();
  Opts.WorkerBudget = 8;
  ForkedDaemon D(Opts);
  ASSERT_TRUE(D.forked());

  {
    service::Client Ready;
    std::string Err;
    ASSERT_TRUE(Ready.connect(D.socket(), Err, 10 * timeoutScale())) << Err;
  }

  // (a) An HTTP request: "GET " decodes as a ~542 MB length prefix.
  const char Http[] = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_TRUE(sendJunkAndExpectClose(D.socket(), Http, sizeof(Http) - 1));

  // (b) An oversized length prefix.
  const unsigned char Huge[5] = {0xff, 0xff, 0xff, 0xff, 0x01};
  EXPECT_TRUE(sendJunkAndExpectClose(D.socket(), Huge, sizeof(Huge)));

  // (c) A zero-length frame.
  const unsigned char Zero[4] = {0, 0, 0, 0};
  EXPECT_TRUE(sendJunkAndExpectClose(D.socket(), Zero, sizeof(Zero)));

  // (d) A truncated frame: valid header promising 100 bytes, then EOF.
  {
    int Fd = rawConnect(D.socket());
    ASSERT_GE(Fd, 0);
    const unsigned char Trunc[10] = {100, 0, 0, 0, 1, 'x', 'x', 'x', 'x', 'x'};
    (void)!::write(Fd, Trunc, sizeof(Trunc));
    ::close(Fd);
  }

  // (e) A syntactically valid frame of an impossible type.
  const unsigned char BadType[5] = {1, 0, 0, 0, 0x7f};
  EXPECT_TRUE(sendJunkAndExpectClose(D.socket(), BadType, sizeof(BadType)));

  // The daemon is still alive and still serves real jobs.
  ASSERT_TRUE(D.alive());
  service::Client C;
  std::string Err;
  ASSERT_TRUE(C.connect(D.socket(), Err)) << Err;
  JobRequest Req;
  Req.ModuleText = reductionSumIrText(200);
  Req.NumWorkers = 2;
  JobReply R;
  ASSERT_TRUE(C.submit(Req, R, Err, 60 * timeoutScale())) << Err;
  EXPECT_EQ(R.Status, JobStatus::Ok) << R.Error;

  std::string Json;
  ASSERT_TRUE(C.status(Json, Err)) << Err;
  EXPECT_GE(jsonInt(Json, "malformed_frames"), 4);
  EXPECT_EQ(jsonInt(Json, "jobs_completed"), 1);
  EXPECT_EQ(jsonInt(Json, "pid"), D.pid());
}

// --- Cross-version compatibility -----------------------------------------
//
// The wire encodings of protocol v2 (no Engine byte) and v3 (Engine, no
// tenant/submit tail) are pinned here byte-for-byte; a v4 daemon must
// decode both with the documented defaults, and must reject versions
// outside [kMinProtocolVersion, kProtocolVersion].

void putU8(std::string &B, uint8_t V) { B.push_back(static_cast<char>(V)); }
void putU32(std::string &B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}
void putU64(std::string &B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}
void putF64(std::string &B, double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, 8);
  putU64(B, Bits);
}
void putStr(std::string &B, const std::string &S) {
  putU32(B, static_cast<uint32_t>(S.size()));
  B += S;
}

/// Encodes \p R exactly as a v2 or v3 client would have.
std::string encodeLegacyRequest(const JobRequest &R, uint8_t Version) {
  std::string B;
  putU8(B, Version);
  putStr(B, R.ModuleText);
  putU8(B, static_cast<uint8_t>(R.Mode));
  if (Version >= 3)
    putU8(B, R.Engine);
  putU32(B, R.NumWorkers);
  putU64(B, R.CheckpointPeriod);
  putU64(B, R.MaxSlotsPerEpoch);
  putF64(B, R.InjectMisspecRate);
  putU64(B, R.InjectSeed);
  putU8(B, R.EagerCommit ? 1 : 0);
  putF64(B, R.StallTimeoutSec);
  putF64(B, R.DeadlineSec);
  putStr(B, R.TracePath);
  putU64(B, R.IdempotencyKey);
  putU64(B, R.MaxMemoryBytes);
  putU32(B, R.MaxCpuSec);
  putU32(B, R.MaxOpenFiles);
  putU8(B, R.FaultKillSupervisor ? 1 : 0);
  putU32(B, R.FaultKillWorker);
  putU64(B, R.FaultKillAtIter);
  putU32(B, R.FaultStallWorker);
  putU64(B, R.FaultStallAtIter);
  putF64(B, R.FaultStallSeconds);
  putF64(B, R.FaultKillRate);
  putU64(B, R.FaultSeed);
  putU32(B, R.FaultSupervisorSignal);
  putU32(B, R.FaultSupervisorExit);
  putU32(B, R.FaultOomAttempts);
  putU64(B, R.FaultAllocBytes);
  putF64(B, R.FaultBurnCpuSec);
  if (Version >= 4) {
    putStr(B, R.TenantId);
    putU8(B, R.Submit);
  }
  return B;
}

TEST(ServiceProtocol, CrossVersionRequestsDecode) {
  JobRequest In = sampleRequest();
  In.Engine = 1;

  // v2: Engine defaults to the bytecode VM, tenancy to anonymous in-band.
  {
    JobRequest Out;
    std::string Err;
    ASSERT_TRUE(decodeJobRequest(encodeLegacyRequest(In, 2), Out, Err))
        << Err;
    EXPECT_EQ(Out.ModuleText, In.ModuleText);
    EXPECT_EQ(Out.Mode, In.Mode);
    EXPECT_EQ(Out.Engine, 0) << "v2 has no Engine byte";
    EXPECT_EQ(Out.NumWorkers, In.NumWorkers);
    EXPECT_EQ(Out.IdempotencyKey, In.IdempotencyKey);
    EXPECT_DOUBLE_EQ(Out.FaultBurnCpuSec, In.FaultBurnCpuSec);
    EXPECT_TRUE(Out.TenantId.empty());
    EXPECT_EQ(Out.Submit, static_cast<uint8_t>(SubmitMode::InBand));
  }

  // v3: Engine travels, tenancy still defaults.
  {
    JobRequest Out;
    std::string Err;
    ASSERT_TRUE(decodeJobRequest(encodeLegacyRequest(In, 3), Out, Err))
        << Err;
    EXPECT_EQ(Out.Engine, In.Engine);
    EXPECT_TRUE(Out.TenantId.empty());
    EXPECT_EQ(Out.Submit, static_cast<uint8_t>(SubmitMode::InBand));
  }

  // v4: tenancy travels, scheduling strategy defaults to DOALL.
  {
    JobRequest Out;
    std::string Err;
    ASSERT_TRUE(decodeJobRequest(encodeLegacyRequest(In, 4), Out, Err))
        << Err;
    EXPECT_EQ(Out.TenantId, In.TenantId);
    EXPECT_EQ(Out.Submit, In.Submit);
    EXPECT_EQ(Out.Strat, static_cast<uint8_t>(Strategy::Doall))
        << "v4 has no strategy byte";
    EXPECT_EQ(Out.NumStages, 0u);
  }

  // Versions outside the supported window are rejected outright.
  for (uint8_t V : {uint8_t(0), uint8_t(1), uint8_t(kProtocolVersion + 1)}) {
    std::string Body = encodeJobRequest(In);
    Body[0] = static_cast<char>(V);
    JobRequest Out;
    std::string Err;
    EXPECT_FALSE(decodeJobRequest(Body, Out, Err)) << "version " << int(V);
    EXPECT_NE(Err.find("version"), std::string::npos) << Err;
  }
}

// A byte-exact v2 client frame against a live v4 daemon: served in-band,
// reply decodable, output correct.
TEST(ServiceProtocol, LegacyV2ClientIsServed) {
  ServerOptions Opts;
  Opts.SocketPath = uniqueSocketPath();
  ForkedDaemon D(Opts);
  ASSERT_TRUE(D.forked());
  {
    service::Client Ready;
    std::string Err;
    ASSERT_TRUE(Ready.connect(D.socket(), Err, 10 * timeoutScale())) << Err;
  }

  JobRequest Req;
  Req.ModuleText = reductionSumIrText(250);
  Req.NumWorkers = 2;
  std::string Body = encodeLegacyRequest(Req, 2);

  int Fd = rawConnect(D.socket());
  ASSERT_GE(Fd, 0);
  std::string Err;
  ASSERT_TRUE(writeFrame(Fd, MsgType::SubmitJob, Body, Err)) << Err;
  MsgType Type;
  std::string ReplyBody;
  ASSERT_EQ(readFrame(Fd, Type, ReplyBody, Err, 300 * timeoutScale()),
            ReadStatus::Ok)
      << Err;
  ::close(Fd);
  ASSERT_EQ(Type, MsgType::JobResult);
  JobReply R;
  ASSERT_TRUE(decodeJobReply(ReplyBody, R, Err)) << Err;
  EXPECT_EQ(R.Status, JobStatus::Ok) << R.Error;
  EXPECT_NE(R.Output.find("acc"), std::string::npos);
}

// --- Zero-copy submission edge cases -------------------------------------

TEST(ServiceProtocol, HelloNegotiatesTenantAndMemfd) {
  ServerOptions Opts;
  Opts.SocketPath = uniqueSocketPath();
  ForkedDaemon D(Opts);
  ASSERT_TRUE(D.forked());

  service::Client C;
  C.Tenant = "hello-test";
  C.UseMemfd = true;
  std::string Err;
  ASSERT_TRUE(C.connect(D.socket(), Err, 10 * timeoutScale())) << Err;
  EXPECT_TRUE(C.memfdNegotiated());

  // A client that never asked keeps the in-band default.
  service::Client Plain;
  ASSERT_TRUE(Plain.connect(D.socket(), Err, 10 * timeoutScale())) << Err;
  EXPECT_FALSE(Plain.memfdNegotiated());
}

// A Memfd-mode submission whose SCM_RIGHTS payload is absent must be
// rejected with a typed ParseError — and must not wedge the connection.
TEST(ServiceProtocol, MemfdSubmissionWithoutFdRejected) {
  ServerOptions Opts;
  Opts.SocketPath = uniqueSocketPath();
  ForkedDaemon D(Opts);
  ASSERT_TRUE(D.forked());
  {
    service::Client Ready;
    std::string Err;
    ASSERT_TRUE(Ready.connect(D.socket(), Err, 10 * timeoutScale())) << Err;
  }

  JobRequest Req;
  Req.Submit = static_cast<uint8_t>(SubmitMode::Memfd);
  int Fd = rawConnect(D.socket());
  ASSERT_GE(Fd, 0);
  std::string Err;
  ASSERT_TRUE(writeFrame(Fd, MsgType::SubmitJob, encodeJobRequest(Req), Err))
      << Err;
  MsgType Type;
  std::string ReplyBody;
  ASSERT_EQ(readFrame(Fd, Type, ReplyBody, Err, 60 * timeoutScale()),
            ReadStatus::Ok)
      << Err;
  ASSERT_EQ(Type, MsgType::JobResult);
  JobReply R;
  ASSERT_TRUE(decodeJobReply(ReplyBody, R, Err)) << Err;
  EXPECT_EQ(R.Status, JobStatus::ParseError);
  EXPECT_NE(R.Error.find("file descriptor"), std::string::npos) << R.Error;

  // Same connection still serves an honest in-band job.
  JobRequest Ok;
  Ok.ModuleText = reductionSumIrText(260);
  Ok.NumWorkers = 2;
  ASSERT_TRUE(writeFrame(Fd, MsgType::SubmitJob, encodeJobRequest(Ok), Err))
      << Err;
  ASSERT_EQ(readFrame(Fd, Type, ReplyBody, Err, 300 * timeoutScale()),
            ReadStatus::Ok)
      << Err;
  ::close(Fd);
  JobReply R2;
  ASSERT_TRUE(decodeJobReply(ReplyBody, R2, Err)) << Err;
  EXPECT_EQ(R2.Status, JobStatus::Ok) << R2.Error;
  ASSERT_TRUE(D.alive());
}

// An unsealed memfd is untrusted input — the submitter could mutate it
// after the daemon's size check — and must be rejected.
TEST(ServiceProtocol, UnsealedMemfdRejected) {
  ServerOptions Opts;
  Opts.SocketPath = uniqueSocketPath();
  ForkedDaemon D(Opts);
  ASSERT_TRUE(D.forked());
  {
    service::Client Ready;
    std::string Err;
    ASSERT_TRUE(Ready.connect(D.socket(), Err, 10 * timeoutScale())) << Err;
  }

  std::string Text = reductionSumIrText(270);
  int MemFd = static_cast<int>(
      ::syscall(SYS_memfd_create, "unsealed-module", MFD_CLOEXEC));
  if (MemFd < 0)
    GTEST_SKIP() << "memfd_create unavailable";
  ASSERT_EQ(::write(MemFd, Text.data(), Text.size()),
            static_cast<ssize_t>(Text.size()));

  JobRequest Req;
  Req.Submit = static_cast<uint8_t>(SubmitMode::Memfd);
  int Fd = rawConnect(D.socket());
  ASSERT_GE(Fd, 0);
  std::string Err;
  ASSERT_TRUE(writeFrameWithFds(Fd, MsgType::SubmitJob,
                                encodeJobRequest(Req), &MemFd, 1, Err))
      << Err;
  ::close(MemFd);
  MsgType Type;
  std::string ReplyBody;
  ASSERT_EQ(readFrame(Fd, Type, ReplyBody, Err, 60 * timeoutScale()),
            ReadStatus::Ok)
      << Err;
  ::close(Fd);
  ASSERT_EQ(Type, MsgType::JobResult);
  JobReply R;
  ASSERT_TRUE(decodeJobReply(ReplyBody, R, Err)) << Err;
  EXPECT_EQ(R.Status, JobStatus::ParseError);
  EXPECT_NE(R.Error.find("sealed"), std::string::npos) << R.Error;

  // A properly sealed memfd on a fresh connection is accepted.
  std::string MErr;
  int Sealed = sealedMemfd("sealed-module", Text.data(), Text.size(), MErr);
  ASSERT_GE(Sealed, 0) << MErr;
  int Fd2 = rawConnect(D.socket());
  ASSERT_GE(Fd2, 0);
  JobRequest Req2;
  Req2.Submit = static_cast<uint8_t>(SubmitMode::Memfd);
  Req2.NumWorkers = 2;
  ASSERT_TRUE(writeFrameWithFds(Fd2, MsgType::SubmitJob,
                                encodeJobRequest(Req2), &Sealed, 1, Err))
      << Err;
  ::close(Sealed);
  ASSERT_EQ(readFrame(Fd2, Type, ReplyBody, Err, 300 * timeoutScale()),
            ReadStatus::Ok)
      << Err;
  ::close(Fd2);
  JobReply R2;
  ASSERT_TRUE(decodeJobReply(ReplyBody, R2, Err)) << Err;
  EXPECT_EQ(R2.Status, JobStatus::Ok) << R2.Error;
  ASSERT_TRUE(D.alive());
}

} // namespace
