//===- tests/DoacrossTest.cpp - Speculative DOACROSS scheduling -----------===//
//
// End-to-end tests of the DOACROSS pre-pass: dependence-distance planning
// (analysis/DepDistance.h), the token-forwarding rewrite
// (transform/Doacross.h), and parallel execution over shared-memory token
// rings, checked for exact equivalence against sequential interpretation
// of the original program.
//
//===----------------------------------------------------------------------===//

#include "analysis/DepDistance.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "transform/Pipeline.h"
#include "workloads/IrPrograms.h"

#include <gtest/gtest.h>

using namespace privateer;
using namespace privateer::ir;
using namespace privateer::transform;

namespace {

std::string readAll(std::FILE *F) {
  std::string Out;
  std::rewind(F);
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  return Out;
}

std::unique_ptr<Module> parseOrDie(const std::string &Text) {
  std::string Err;
  auto M = parseModule(Text, Err);
  EXPECT_NE(M, nullptr) << Err;
  if (M) {
    auto Diags = verifyModule(*M);
    EXPECT_TRUE(Diags.empty()) << Diags.front();
  }
  return M;
}

/// Sequential interpretation of the original program: the oracle.
std::string sequentialOutput(const std::string &IrText, int64_t *Ret) {
  auto M = parseOrDie(IrText);
  std::FILE *Out = std::tmpfile();
  PipelineOptions Opt;
  interp::Cell R = executeSequential(*M, Opt, Out);
  if (Ret)
    *Ret = R.asInt();
  std::string Text = readAll(Out);
  std::fclose(Out);
  return Text;
}

/// Runs the full pipeline with \p Strat over the caller's analyses (the
/// returned assignment's loop pointer lives in \p FA).
PipelineResult runPipeline(Module &M, analysis::FunctionAnalyses &FA,
                           Strategy Strat,
                           ExecEngine Engine = ExecEngine::Bytecode) {
  PipelineOptions Opt;
  Opt.Strat = Strat;
  Opt.Engine = Engine;
  std::FILE *Sink = std::tmpfile();
  Runtime::get().setSequentialOutput(Sink);
  PipelineResult R = runPrivateerPipeline(M, FA, Opt);
  Runtime::get().setSequentialOutput(nullptr);
  std::fclose(Sink);
  return R;
}

TEST(Doacross, PlannerProvesFixedDistances) {
  for (uint64_t Dist : {1ull, 3ull}) {
    auto M = parseOrDie(arrayRecurrenceIrText(120, Dist));
    analysis::FunctionAnalyses FA(*M);
    PipelineOptions Opt;
    std::FILE *Sink = std::tmpfile();
    Runtime::get().setSequentialOutput(Sink);
    PipelineResult R = runPrivateerPipeline(*M, FA, Opt); // Profile only.
    Runtime::get().setSequentialOutput(nullptr);
    std::fclose(Sink);
    EXPECT_FALSE(R.Transformed) << "DOALL must reject the recurrence";

    // The hottest profiled loop is the kernel loop; plan it directly.
    const analysis::Loop *Kernel = nullptr;
    for (analysis::Loop *L : FA.allLoops())
      if (L->header()->parent()->name() == "kernel")
        Kernel = L;
    ASSERT_NE(Kernel, nullptr);
    analysis::DoacrossPlan DP =
        analysis::planDoacross(*Kernel, FA, R.TrainingProfile);
    ASSERT_TRUE(DP.viable())
        << (DP.WhyNot.empty() ? "?" : DP.WhyNot.front());
    EXPECT_EQ(DP.Arrays.size(), 1u);
    EXPECT_EQ(DP.NumChannels, 1u);
    EXPECT_EQ(DP.MinDistance, Dist);
    EXPECT_EQ(DP.Covered.size(), 1u);
  }
}

TEST(Doacross, PlannerRejectsUnprovableDistance) {
  // The @cell recurrence reads and writes one scalar address: no gep
  // indexed by the IV, so no distance proof.
  auto M = parseOrDie(recurrenceIrText(200));
  analysis::FunctionAnalyses FA(*M);
  PipelineOptions Opt;
  Opt.Strat = Strategy::Doacross;
  std::FILE *Sink = std::tmpfile();
  Runtime::get().setSequentialOutput(Sink);
  PipelineResult R = runPrivateerPipeline(*M, FA, Opt);
  Runtime::get().setSequentialOutput(nullptr);
  std::fclose(Sink);
  EXPECT_FALSE(R.Transformed);
  // The loop must be left untouched: no postdep/waitdep anywhere.
  for (const auto &F : M->functions())
    for (const auto &B : F->blocks())
      for (const auto &I : B->instructions())
        EXPECT_TRUE(I->opcode() != Opcode::PostDep &&
                    I->opcode() != Opcode::WaitDep);
}

TEST(Doacross, StrategyKnobGatesTheRewrite) {
  // Same program, Strategy::Doall: stays untransformed.
  auto M = parseOrDie(arrayRecurrenceIrText(200, 1));
  analysis::FunctionAnalyses FA(*M);
  PipelineResult R = runPipeline(*M, FA, Strategy::Doall);
  EXPECT_FALSE(R.Transformed);

  // Strategy::Doacross: rewritten, classified, transformed.
  auto M2 = parseOrDie(arrayRecurrenceIrText(200, 1));
  analysis::FunctionAnalyses FA2(*M2);
  PipelineResult R2 = runPipeline(*M2, FA2, Strategy::Doacross);
  ASSERT_TRUE(R2.Transformed) << (R2.Log.empty() ? "" : R2.Log.back());
  EXPECT_EQ(R2.Assignment.DoacrossChannels, 1u);
  EXPECT_EQ(R2.Assignment.DoacrossMinDistance, 1u);
  EXPECT_EQ(R2.Assignment.PrivacyElides.size(), 1u);

  // The rewritten module still verifies and round-trips through text.
  auto Diags = verifyModule(*M2);
  EXPECT_TRUE(Diags.empty()) << Diags.front();
  std::string Text = printModule(*M2);
  ASSERT_NE(Text.find("postdep"), std::string::npos);
  ASSERT_NE(Text.find("waitdep"), std::string::npos);
  std::string Err;
  auto Reparsed = parseModule(Text, Err);
  EXPECT_NE(Reparsed, nullptr) << Err;
}

TEST(Doacross, ArrayRecurrenceParallelOutputIsExact) {
  constexpr uint64_t N = 400;
  for (uint64_t Dist : {1ull, 3ull}) {
    int64_t ExpectedRet = 0;
    std::string Expected =
        sequentialOutput(arrayRecurrenceIrText(N, Dist), &ExpectedRet);
    ASSERT_NE(Expected.find("last "), std::string::npos);

    for (ExecEngine Engine : {ExecEngine::Bytecode, ExecEngine::Interp}) {
      auto M = parseOrDie(arrayRecurrenceIrText(N, Dist));
      analysis::FunctionAnalyses FA(*M);
      PipelineResult R = runPipeline(*M, FA, Strategy::Doacross, Engine);
      ASSERT_TRUE(R.Transformed) << (R.Log.empty() ? "" : R.Log.back());

      for (unsigned Workers : {2u, 4u}) {
        std::FILE *Out = std::tmpfile();
        ParallelOptions Par;
        Par.NumWorkers = Workers;
        Par.CheckpointPeriod = 8;
        Par.Strat = Strategy::Doacross;
        PipelineOptions Opt;
        Opt.Strat = Strategy::Doacross;
        Opt.Engine = Engine;
        ExecutionResult E = executePrivatized(*M, FA, R.Assignment, Opt,
                                              Par, RuntimeConfig(), Out);
        std::string Got = readAll(Out);
        std::fclose(Out);
        EXPECT_EQ(Got, Expected)
            << execEngineName(Engine) << ", " << Workers << " workers, "
            << "dist " << Dist;
        EXPECT_EQ(E.ReturnValue.asInt(), ExpectedRet);
        EXPECT_EQ(E.Stats.Misspecs, 0u) << E.Stats.FirstMisspecReason;
        EXPECT_GT(E.Stats.DepPosts, 0u);
        EXPECT_GT(E.Stats.DepWaits, 0u);
      }
    }
  }
}

TEST(Doacross, ScalarCarryParallelOutputIsExact) {
  constexpr uint64_t N = 400;
  int64_t ExpectedRet = 0;
  std::string Expected = sequentialOutput(scalarCarryIrText(N), &ExpectedRet);

  for (ExecEngine Engine : {ExecEngine::Bytecode, ExecEngine::Interp}) {
    auto M = parseOrDie(scalarCarryIrText(N));
    analysis::FunctionAnalyses FA(*M);
    PipelineResult R = runPipeline(*M, FA, Strategy::Doacross, Engine);
    ASSERT_TRUE(R.Transformed) << (R.Log.empty() ? "" : R.Log.back());
    EXPECT_EQ(R.Assignment.DoacrossChannels, 1u);

    std::FILE *Out = std::tmpfile();
    ParallelOptions Par;
    Par.NumWorkers = 4;
    Par.CheckpointPeriod = 8;
    Par.Strat = Strategy::Doacross;
    PipelineOptions Opt;
    Opt.Strat = Strategy::Doacross;
    Opt.Engine = Engine;
    ExecutionResult E = executePrivatized(*M, FA, R.Assignment, Opt, Par,
                                          RuntimeConfig(), Out);
    std::string Got = readAll(Out);
    std::fclose(Out);
    EXPECT_EQ(Got, Expected) << execEngineName(Engine);
    EXPECT_EQ(E.ReturnValue.asInt(), ExpectedRet);
    EXPECT_EQ(E.Stats.Misspecs, 0u) << E.Stats.FirstMisspecReason;
    EXPECT_GT(E.Stats.DepPosts, 0u);
  }
}

TEST(Doacross, RecoversFromInjectedMisspeculation) {
  constexpr uint64_t N = 300;
  int64_t ExpectedRet = 0;
  std::string Expected =
      sequentialOutput(arrayRecurrenceIrText(N, 1), &ExpectedRet);

  auto M = parseOrDie(arrayRecurrenceIrText(N, 1));
  analysis::FunctionAnalyses FA(*M);
  PipelineResult R = runPipeline(*M, FA, Strategy::Doacross);
  ASSERT_TRUE(R.Transformed) << (R.Log.empty() ? "" : R.Log.back());

  std::FILE *Out = std::tmpfile();
  ParallelOptions Par;
  Par.NumWorkers = 4;
  Par.CheckpointPeriod = 8;
  Par.Strat = Strategy::Doacross;
  Par.InjectMisspecRate = 0.05;
  PipelineOptions Opt;
  Opt.Strat = Strategy::Doacross;
  ExecutionResult E = executePrivatized(*M, FA, R.Assignment, Opt, Par,
                                        RuntimeConfig(), Out);
  std::string Got = readAll(Out);
  std::fclose(Out);
  EXPECT_EQ(Got, Expected);
  EXPECT_EQ(E.ReturnValue.asInt(), ExpectedRet);
  EXPECT_GE(E.Stats.Misspecs, 1u);
}

TEST(Doacross, PipelineStrategyDegradesToTokenScheduling) {
  // Strategy::Pipeline over an IR loop (monolithic body) runs the same
  // token-forwarded schedule; NumStages is ignored by the planned-loop
  // path rather than mis-scheduling whole iterations per stage worker.
  constexpr uint64_t N = 300;
  int64_t ExpectedRet = 0;
  std::string Expected =
      sequentialOutput(arrayRecurrenceIrText(N, 2), &ExpectedRet);

  auto M = parseOrDie(arrayRecurrenceIrText(N, 2));
  analysis::FunctionAnalyses FA(*M);
  PipelineResult R = runPipeline(*M, FA, Strategy::Pipeline);
  ASSERT_TRUE(R.Transformed) << (R.Log.empty() ? "" : R.Log.back());

  std::FILE *Out = std::tmpfile();
  ParallelOptions Par;
  Par.NumWorkers = 4;
  Par.CheckpointPeriod = 8;
  Par.Strat = Strategy::Pipeline;
  Par.NumStages = 4;
  PipelineOptions Opt;
  Opt.Strat = Strategy::Pipeline;
  ExecutionResult E = executePrivatized(*M, FA, R.Assignment, Opt, Par,
                                        RuntimeConfig(), Out);
  std::string Got = readAll(Out);
  std::fclose(Out);
  EXPECT_EQ(Got, Expected);
  EXPECT_EQ(E.ReturnValue.asInt(), ExpectedRet);
  EXPECT_EQ(E.Stats.Misspecs, 0u) << E.Stats.FirstMisspecReason;
}

} // namespace
